package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", nil)
	c.Inc()
	c.Add(2.5)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %g, want 3.5", got)
	}
	g := r.Gauge("watts", Labels{"machine": "m0"})
	g.Set(41)
	g.Add(1)
	if got := g.Value(); got != 42 {
		t.Errorf("gauge = %g, want 42", got)
	}
	// Same name+labels returns the same instrument.
	if r.Counter("reqs_total", nil) != c {
		t.Error("counter get-or-create returned a new instance")
	}
	if r.NumSeries() != 2 {
		t.Errorf("NumSeries = %d, want 2", r.NumSeries())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", nil, []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Errorf("sum = %g, want 556.5", h.Sum())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE lat histogram",
		`lat_bucket{le="1"} 2`, // 0.5 and 1 (le is inclusive)
		`lat_bucket{le="10"} 3`,
		`lat_bucket{le="100"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		"lat_sum 556.5",
		"lat_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusFormatLabelsAndTypes(t *testing.T) {
	r := NewRegistry()
	r.Counter("ev_total", Labels{"event": "drift"}).Inc()
	r.Counter("ev_total", Labels{"event": `x"y`}).Inc()
	r.Gauge("frac", nil).Set(0.01)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "# TYPE ev_total counter") != 1 {
		t.Errorf("want exactly one TYPE line for ev_total:\n%s", out)
	}
	for _, want := range []string{
		`ev_total{event="drift"} 1`,
		`ev_total{event="x\"y"} 1`, // escaped quote
		"frac 0.01",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on kind mismatch")
		}
	}()
	r.Gauge("x", nil)
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", nil).Add(2)
	r.Gauge("g", Labels{"a": "b"}).Set(7)
	r.Histogram("h", nil, []float64{1}).Observe(3)
	snap := r.Snapshot()
	if snap["c"] != 2 || snap["g{a=b}"] != 7 || snap["h_count"] != 1 || snap["h_sum"] != 3 {
		t.Errorf("snapshot = %v", snap)
	}
}

// TestRegistryConcurrency exercises get-or-create and updates from many
// goroutines; run with -race.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("hits_total", nil).Inc()
				r.Gauge("level", nil).Set(float64(i))
				r.Histogram("obs", nil, []float64{1, 2, 4}).Observe(float64(i % 5))
				if i%100 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Error(err)
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total", nil).Value(); got != 4000 {
		t.Errorf("concurrent counter = %g, want 4000", got)
	}
	if got := r.Histogram("obs", nil, nil).Count(); got != 4000 {
		t.Errorf("concurrent histogram count = %d, want 4000", got)
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if exp[i] != want[i] {
			t.Errorf("ExpBuckets[%d] = %g, want %g", i, exp[i], want[i])
		}
	}
	lin := LinearBuckets(0, 0.5, 3)
	wantLin := []float64{0, 0.5, 1}
	for i := range wantLin {
		if lin[i] != wantLin[i] {
			t.Errorf("LinearBuckets[%d] = %g, want %g", i, lin[i], wantLin[i])
		}
	}
	// Degenerate parameters fall back to a single bucket, never panic.
	if got := ExpBuckets(-1, 0.5, 0); len(got) != 1 {
		t.Errorf("degenerate ExpBuckets = %v", got)
	}
	if got := LinearBuckets(0, 1, -2); len(got) != 1 {
		t.Errorf("degenerate LinearBuckets = %v", got)
	}
}

func TestAtomicFloatAccumulates(t *testing.T) {
	var f atomicFloat
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				f.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got := f.Load(); math.Abs(got-2000) > 1e-9 {
		t.Errorf("atomicFloat = %g, want 2000", got)
	}
}

// TestServeWritePrometheusDeterministic locks the /metrics ordering
// contract the serving layer relies on: repeated renders of the same
// registry are byte-identical, names come out sorted with one TYPE line
// each, and a name's series group together sorted by label set — even
// when registration order is adversarial and bare names interleave with
// labeled and suffixed ones ('{' sorts after '_', so naive whole-key
// sorting would split the foo group around foo_bar).
func TestServeWritePrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	// Adversarial registration order.
	r.Counter("foo_bar", nil).Add(7)
	r.Counter("foo", Labels{"m": "z"}).Add(3)
	r.Gauge("zzz", nil).Set(9)
	r.Counter("foo", nil).Add(1)
	r.Counter("foo", Labels{"m": "a"}).Add(2)
	r.Histogram("bar", Labels{"shard": "1"}, []float64{1, 2}).Observe(1.5)
	r.Histogram("bar", Labels{"shard": "0"}, []float64{1, 2}).Observe(0.5)

	var first strings.Builder
	if err := r.WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		var again strings.Builder
		if err := r.WritePrometheus(&again); err != nil {
			t.Fatal(err)
		}
		if again.String() != first.String() {
			t.Fatalf("render %d differs:\n--- first\n%s--- again\n%s", i, first.String(), again.String())
		}
	}

	out := first.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Expected full order: bar group (shard 0 before shard 1), then the
	// foo group (bare, then m=a, then m=z), then foo_bar, then zzz.
	wantOrder := []string{
		"# TYPE bar histogram",
		`bar_bucket{shard="0",le="1"}`,
		`bar_bucket{shard="1",le="1"}`,
		"# TYPE foo counter",
		"foo 1",
		`foo{m="a"} 2`,
		`foo{m="z"} 3`,
		"# TYPE foo_bar counter",
		"foo_bar 7",
		"# TYPE zzz gauge",
		"zzz 9",
	}
	pos := -1
	for _, want := range wantOrder {
		found := -1
		for i, line := range lines {
			if strings.HasPrefix(line, want) {
				found = i
				break
			}
		}
		if found < 0 {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
		if found <= pos {
			t.Errorf("%q appears at line %d, before the preceding expected entry (line %d)", want, found, pos)
		}
		pos = found
	}
	// Exactly one TYPE line per metric name.
	if n := strings.Count(out, "# TYPE foo counter\n"); n != 1 {
		t.Errorf("foo has %d TYPE lines, want 1", n)
	}
	// Base label keys stay sorted (the histogram le bound is appended
	// after them by design).
	if strings.Contains(out, `{le="1",shard=`) {
		t.Error("histogram base labels not sorted before le")
	}
}
