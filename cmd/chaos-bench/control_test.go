package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestControlBenchRunAndCheck: -control closes the capping loop at two
// fleet sizes, holds the budgets against ground truth, and produces a
// reproducible document that -check accepts.
func TestControlBenchRunAndCheck(t *testing.T) {
	out := filepath.Join(t.TempDir(), "control.json")
	var stdout, stderr bytes.Buffer
	args := []string{"-control", "-control-machines", "100,1000", "-control-seconds", "300", "-out", out}
	if code := realMain(args, &stdout, &stderr); code != 0 {
		t.Fatalf("chaos-bench -control exited %d: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc ControlDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != ControlSchema || !doc.ReproVerified || len(doc.Cells) != 2 {
		t.Fatalf("document malformed: schema=%q repro=%v cells=%d", doc.Schema, doc.ReproVerified, len(doc.Cells))
	}
	for _, c := range doc.Cells {
		if c.CompliancePct < 95 {
			t.Fatalf("%d machines: compliance %.2f%%", c.Machines, c.CompliancePct)
		}
		if c.ThroughputRetention < 0.80 || c.ThroughputRetention > 1 {
			t.Fatalf("%d machines: retention %v", c.Machines, c.ThroughputRetention)
		}
		if c.FreqActuations <= 0 || c.Decisions <= 0 || len(c.Digest) != 64 {
			t.Fatalf("bad cell: %+v", c)
		}
	}
	stdout.Reset()
	if code := realMain([]string{"-check", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("-check rejected fresh control doc: %s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "ok") {
		t.Fatalf("check output: %s", stdout.String())
	}
}

// TestControlBenchCheckRejectsBadDocs: schema drift, missing repro
// proof, low compliance, and throughput collapse all fail -check.
func TestControlBenchCheckRejectsBadDocs(t *testing.T) {
	dir := t.TempDir()
	digest := strings.Repeat("cd", 32)
	cell := func(n int, compliance, retention float64) ControlCell {
		return ControlCell{Machines: n, Budgets: 2, CompliancePct: compliance,
			ThroughputRetention: retention, Ticks: 20, Decisions: 100,
			FreqActuations: 10, DecisionsPerSec: 1000, SimSecondsPerSec: 100,
			Digest: digest}
	}
	cases := map[string]ControlDoc{
		"schema.json": {Schema: "chaos-bench-control/v0", ReproVerified: true,
			Cells: []ControlCell{cell(100, 100, 0.95), cell(1000, 100, 0.95)}},
		"repro.json": {Schema: ControlSchema,
			Cells: []ControlCell{cell(100, 100, 0.95), cell(1000, 100, 0.95)}},
		"violations.json": {Schema: ControlSchema, ReproVerified: true,
			Cells: []ControlCell{cell(100, 100, 0.95), cell(1000, 88, 0.95)}},
		"retention.json": {Schema: ControlSchema, ReproVerified: true,
			Cells: []ControlCell{cell(100, 100, 0.55), cell(1000, 100, 0.95)}},
		"onecell.json": {Schema: ControlSchema, ReproVerified: true,
			Cells: []ControlCell{cell(100, 100, 0.95)}},
		"idle.json": {Schema: ControlSchema, ReproVerified: true,
			Cells: []ControlCell{cell(100, 100, 0.95), func() ControlCell {
				c := cell(1000, 100, 0.95)
				c.FreqActuations = 0
				return c
			}()}},
	}
	for name, doc := range cases {
		data, _ := json.Marshal(doc)
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var stdout, stderr bytes.Buffer
		if code := realMain([]string{"-check", p}, &stdout, &stderr); code == 0 {
			t.Errorf("%s: -check accepted a bad control document", name)
		}
	}
}
