package mathx

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFromRowsAndAccessors(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatalf("FromRows: %v", err)
	}
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("dims = %dx%d, want 2x3", m.Rows, m.Cols)
	}
	if m.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %v, want 6", m.At(1, 2))
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Errorf("Set/At round trip failed")
	}
	row := m.Row(1)
	if row[0] != 4 || row[2] != 6 {
		t.Errorf("Row(1) = %v", row)
	}
	col := m.Col(1)
	if col[0] != 2 || col[1] != 5 {
		t.Errorf("Col(1) = %v", col)
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m, err := FromRows(nil)
	if err != nil {
		t.Fatalf("FromRows(nil): %v", err)
	}
	if m.Rows != 0 || m.Cols != 0 {
		t.Errorf("empty matrix dims = %dx%d", m.Rows, m.Cols)
	}
}

func TestCloneIndependence(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestSelectCols(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	s := m.SelectCols([]int{2, 0})
	if s.Rows != 2 || s.Cols != 2 {
		t.Fatalf("dims = %dx%d", s.Rows, s.Cols)
	}
	if s.At(0, 0) != 3 || s.At(0, 1) != 1 || s.At(1, 0) != 6 || s.At(1, 1) != 4 {
		t.Errorf("SelectCols = %+v", s)
	}
}

func TestSelectRows(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	s := m.SelectRows([]int{2, 0})
	if s.At(0, 0) != 5 || s.At(1, 1) != 2 {
		t.Errorf("SelectRows = %+v", s)
	}
}

func TestMulVec(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	y, err := m.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	if y[0] != 3 || y[1] != 7 {
		t.Errorf("MulVec = %v, want [3 7]", y)
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Error("expected dimension error")
	}
}

func TestMulAndTranspose(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul(%d,%d) = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	at := a.Transpose()
	if at.At(0, 1) != 3 || at.At(1, 0) != 2 {
		t.Errorf("Transpose = %+v", at)
	}
	if _, err := a.Mul(NewMatrix(3, 3)); err == nil {
		t.Error("expected dimension error from Mul")
	}
}

func TestAppendCol(t *testing.T) {
	m, _ := FromRows([][]float64{{1}, {2}})
	out, err := m.AppendCol([]float64{10, 20})
	if err != nil {
		t.Fatalf("AppendCol: %v", err)
	}
	if out.Cols != 2 || out.At(0, 1) != 10 || out.At(1, 1) != 20 {
		t.Errorf("AppendCol = %+v", out)
	}
	if _, err := m.AppendCol([]float64{1}); err == nil {
		t.Error("expected length error")
	}
	empty := &Matrix{}
	out2, err := empty.AppendCol([]float64{1, 2, 3})
	if err != nil {
		t.Fatalf("AppendCol to empty: %v", err)
	}
	if out2.Rows != 3 || out2.Cols != 1 {
		t.Errorf("AppendCol to empty dims = %dx%d", out2.Rows, out2.Cols)
	}
}

func TestQRSolveExact(t *testing.T) {
	// Square well-conditioned system with a known solution.
	a, _ := FromRows([][]float64{{2, 1}, {1, 3}})
	f, err := QR(a)
	if err != nil {
		t.Fatalf("QR: %v", err)
	}
	x, err := f.Solve([]float64{5, 10})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// 2x + y = 5, x + 3y = 10 -> x = 1, y = 3.
	if !almostEqual(x[0], 1, 1e-10) || !almostEqual(x[1], 3, 1e-10) {
		t.Errorf("Solve = %v, want [1 3]", x)
	}
}

func TestQRRejectsWide(t *testing.T) {
	if _, err := QR(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error for wide matrix")
	}
}

func TestQRLeastSquaresOverdetermined(t *testing.T) {
	// y = 2 + 3x with exact data; least squares must recover it.
	n := 50
	x := NewMatrix(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		xv := float64(i) / 10
		x.Set(i, 0, 1)
		x.Set(i, 1, xv)
		y[i] = 2 + 3*xv
	}
	f, err := QR(x)
	if err != nil {
		t.Fatalf("QR: %v", err)
	}
	beta, err := f.Solve(y)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almostEqual(beta[0], 2, 1e-9) || !almostEqual(beta[1], 3, 1e-9) {
		t.Errorf("beta = %v, want [2 3]", beta)
	}
}

func TestQRSingularDetection(t *testing.T) {
	// Duplicate columns are singular.
	a, _ := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	f, err := QR(a)
	if err != nil {
		t.Fatalf("QR: %v", err)
	}
	if f.IsFullRank() {
		t.Error("IsFullRank = true for rank-1 matrix")
	}
	if _, err := f.Solve([]float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Errorf("Solve error = %v, want ErrSingular", err)
	}
}

func TestSolveLeastSquaresRidgeFallback(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	beta, ridged, err := SolveLeastSquares(a, []float64{2, 4, 6})
	if err != nil {
		t.Fatalf("SolveLeastSquares: %v", err)
	}
	if !ridged {
		t.Error("expected ridge fallback for singular system")
	}
	// Prediction should still be near-perfect even though individual
	// coefficients are regularized.
	pred := beta[0]*1 + beta[1]*1
	if !almostEqual(pred, 2, 1e-3) {
		t.Errorf("ridged prediction = %v, want ~2", pred)
	}
}

func TestRidgeSolveValidation(t *testing.T) {
	a, _ := FromRows([][]float64{{1}, {2}})
	if _, err := RidgeSolve(a, []float64{1, 2}, 0); err == nil {
		t.Error("expected error for non-positive lambda")
	}
}

func TestRidgeShrinksTowardZero(t *testing.T) {
	n := 30
	x := NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, float64(i))
		y[i] = 5 * float64(i)
	}
	small, err := RidgeSolve(x, y, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	big, err := RidgeSolve(x, y, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(small[0], 5, 1e-6) {
		t.Errorf("tiny-lambda ridge = %v, want ~5", small[0])
	}
	if math.Abs(big[0]) >= math.Abs(small[0]) {
		t.Errorf("large lambda should shrink coefficient: %v vs %v", big[0], small[0])
	}
}

func TestXtXInverse(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 0}, {0, 2}, {1, 1}})
	inv, err := XtXInverse(a)
	if err != nil {
		t.Fatalf("XtXInverse: %v", err)
	}
	// XtX = [[2,1],[1,5]]; inverse = 1/9 [[5,-1],[-1,2]].
	want := [][]float64{{5.0 / 9, -1.0 / 9}, {-1.0 / 9, 2.0 / 9}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !almostEqual(inv.At(i, j), want[i][j], 1e-10) {
				t.Errorf("inv(%d,%d) = %v, want %v", i, j, inv.At(i, j), want[i][j])
			}
		}
	}
}

// Property: QR solve reproduces the coefficients of randomly generated
// well-conditioned linear systems.
func TestQRSolveProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(1))}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, p := 40, 4
		x := NewMatrix(n, p)
		trueBeta := make([]float64, p)
		for j := 0; j < p; j++ {
			trueBeta[j] = r.NormFloat64() * 3
		}
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < p; j++ {
				x.Set(i, j, r.NormFloat64())
			}
			for j := 0; j < p; j++ {
				y[i] += x.At(i, j) * trueBeta[j]
			}
		}
		f, err := QR(x)
		if err != nil {
			return false
		}
		beta, err := f.Solve(y)
		if err != nil {
			return false
		}
		for j := 0; j < p; j++ {
			if !almostEqual(beta[j], trueBeta[j], 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: residuals of a least-squares fit are orthogonal to the column
// space of X (the normal equations hold).
func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(2))}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, p := 30, 3
		x := NewMatrix(n, p)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < p; j++ {
				x.Set(i, j, r.NormFloat64())
			}
			y[i] = r.NormFloat64() * 5
		}
		beta, _, err := SolveLeastSquares(x, y)
		if err != nil {
			return false
		}
		pred, _ := x.MulVec(beta)
		for j := 0; j < p; j++ {
			dot := 0.0
			for i := 0; i < n; i++ {
				dot += x.At(i, j) * (y[i] - pred[i])
			}
			if math.Abs(dot) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
