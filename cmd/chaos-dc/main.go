// chaos-dc simulates a datacenter-scale fleet event-drivenly and streams
// its hierarchically composed power series: per-rack, per-row, and
// whole-datacenter watts, each an incremental aggregate that recomputes
// only the subtrees events actually touched (Eq. 5 composability at 20k
// machines).
//
// The topology comes from a chaos-topology/v1 JSON document (see
// examples/dc-20k.json): either an explicit tree (datacenter → row →
// rack → machines) or a grid generator with weighted platform and
// workload-profile mixes. The same document and seed always replay the
// same fleet, burst for burst.
//
// With -feed, chaos-dc additionally samples a subset of machines at a
// fixed cadence, expands their OS counter signals into full counter
// vectors, and POSTs the snapshot to a running chaos-serve /
// chaos-dist /v1/estimate/cluster endpoint — closing the loop from
// simulated fleet to served estimates.
//
// With -capping, chaos-dc closes the outer loop: it bootstraps Eq. 4
// switching models for the fleet's platforms, admits them into a model
// registry, and runs the internal/control model-predictive capping
// controller against the simulation under the given chaos-capping/v1
// policy. Budgeted levels stream cap/actual/headroom series alongside
// the power series, cap_violation / cap_recovered events are emitted as
// JSON lines, and the chaos_cap_{budget,actual,headroom}_watts gauges
// plus chaos_actuations_total counters are served on -listen.
//
// Usage:
//
//	chaos-dc -topology examples/dc-20k.json -duration 1h
//	chaos-dc -topology dc.json -interval 60 -levels rack -json
//	chaos-dc -topology dc.json -feed http://localhost:8080 -feed-machines 50
//	chaos-dc -topology examples/dc-20k.json -capping examples/capping-row0.json -listen :9090
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/control"
	"repro/internal/counters"
	"repro/internal/faults"
	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/serve"
)

func main() {
	if err := realMain(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "chaos-dc:", err)
		os.Exit(1)
	}
}

type options struct {
	topology     string
	duration     time.Duration
	interval     int64
	levels       string
	jsonOut      bool
	feed         string
	feedMachines int
	feedInterval int64
	seed         int64
	capping      string
	listen       string
}

// tick is one streamed aggregate observation.
type tick struct {
	T     int64   `json:"t"`
	Level string  `json:"level"` // "datacenter", "row", "rack"
	Name  string  `json:"name"`
	Watts float64 `json:"watts"`
}

// summary is the final line of a run.
type summary struct {
	Topology       string  `json:"topology"`
	Machines       int     `json:"machines"`
	SimSeconds     int64   `json:"sim_seconds"`
	Events         int64   `json:"events"`
	Steps          int64   `json:"steps"`
	EventsPerSec   float64 `json:"events_per_sec"`
	SimSecPerSec   float64 `json:"sim_seconds_per_sec"`
	ActiveEnd      int     `json:"active_machines_end"`
	DatacenterW    float64 `json:"datacenter_watts_end"`
	Digest         string  `json:"digest"`
	FedSnapshots   int     `json:"fed_snapshots,omitempty"`
	FeedClusterW   float64 `json:"feed_cluster_watts_last,omitempty"`
	FeedSimW       float64 `json:"feed_sim_watts_last,omitempty"`
	FeedRelErrLast float64 `json:"feed_rel_err_last,omitempty"`

	CapPolicy     string  `json:"cap_policy,omitempty"`
	CapTicks      int64   `json:"cap_ticks,omitempty"`
	CapDecisions  int64   `json:"cap_decisions,omitempty"`
	CapFreqActs   int64   `json:"cap_freq_actuations,omitempty"`
	CapMigrations int64   `json:"cap_migrations,omitempty"`
	// CapCompliance is the fraction of budgeted (level, second) samples
	// whose hidden ground-truth power stayed within budget × 1.015 (the
	// meter-error allowance), outside a two-interval settling window.
	CapCompliance float64 `json:"cap_compliance,omitempty"`
	ServedCPU     float64 `json:"served_cpu_core_s,omitempty"`
}

func realMain(argv []string, out io.Writer) error {
	fs := flag.NewFlagSet("chaos-dc", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.topology, "topology", "", "chaos-topology/v1 JSON document (required)")
	fs.DurationVar(&o.duration, "duration", time.Hour, "simulated duration")
	fs.Int64Var(&o.interval, "interval", 300, "reporting interval in simulated seconds")
	fs.StringVar(&o.levels, "levels", "datacenter,row", "comma-separated levels to stream: datacenter,row,rack")
	fs.BoolVar(&o.jsonOut, "json", false, "emit JSON lines instead of text")
	fs.StringVar(&o.feed, "feed", "", "base URL of a /v1/estimate/cluster endpoint to feed sampled snapshots")
	fs.IntVar(&o.feedMachines, "feed-machines", 20, "machines per fed snapshot (evenly spread over the fleet)")
	fs.Int64Var(&o.feedInterval, "feed-interval", 600, "simulated seconds between fed snapshots")
	fs.Int64Var(&o.seed, "seed", 0, "override the topology document's seed (0 keeps it)")
	fs.StringVar(&o.capping, "capping", "", "chaos-capping/v1 policy JSON enabling the power-capping control loop")
	fs.StringVar(&o.listen, "listen", "", "serve /metrics, /healthz, and pprof on this address (e.g. :9090)")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if o.topology == "" {
		return fmt.Errorf("-topology is required")
	}
	if o.interval < 1 || o.duration < time.Second {
		return fmt.Errorf("-interval and -duration must cover at least one simulated second")
	}

	data, err := os.ReadFile(o.topology)
	if err != nil {
		return err
	}
	spec, err := cluster.ParseSpec(data)
	if err != nil {
		return err
	}
	if o.seed != 0 {
		spec.Seed = o.seed
	}
	topo, err := cluster.Build(spec)
	if err != nil {
		return err
	}
	cs := cluster.NewSimulator(topo)

	want := map[string]bool{}
	for _, l := range strings.Split(o.levels, ",") {
		l = strings.TrimSpace(l)
		if l == "" {
			continue
		}
		if l != "datacenter" && l != "row" && l != "rack" {
			return fmt.Errorf("unknown level %q (want datacenter, row, or rack)", l)
		}
		want[l] = true
	}

	var feeder *feeder
	if o.feed != "" {
		feeder, err = newFeeder(cs, o)
		if err != nil {
			return err
		}
	}

	var capr *capper
	if o.capping != "" {
		capr, err = newCapper(cs, topo, o, out)
		if err != nil {
			return err
		}
	}

	if o.listen != "" {
		srv, err := obs.Serve(o.listen, obs.Default())
		if err != nil {
			return err
		}
		defer srv.Close()
	}

	end := int64(o.duration / time.Second)
	start := time.Now()
	var fed summary
	for now := int64(0); now < end; {
		next := now + o.interval
		if next > end {
			next = end
		}
		if feeder != nil {
			// Feed snapshots on their own cadence inside the interval.
			for ft := feeder.next; ft <= next; ft += o.feedInterval {
				cs.RunUntil(ft)
				if err := feeder.snapshot(&fed); err != nil {
					return fmt.Errorf("feeding %s at t=%d: %w", o.feed, ft, err)
				}
				feeder.next = ft + o.feedInterval
			}
		}
		if capr != nil {
			// Advance second by second so cap compliance is scored against
			// ground truth at every simulated second, not just interval
			// boundaries.
			for ts := now + 1; ts <= next; ts++ {
				cs.RunUntil(ts)
				capr.score(ts)
			}
		} else {
			cs.RunUntil(next)
		}
		now = next
		emit(out, o.jsonOut, now, topo, want)
		if capr != nil {
			capr.emit(out, o.jsonOut, now)
		}
	}
	wall := time.Since(start).Seconds()

	s := summary{
		Topology:     spec.Name,
		Machines:     len(topo.Machines),
		SimSeconds:   end,
		Events:       cs.Events(),
		Steps:        cs.Steps(),
		ActiveEnd:    cs.ActiveMachines(),
		DatacenterW:  topo.Root.Watts(),
		Digest:       cs.Digest(),
		FedSnapshots: fed.FedSnapshots,
	}
	if wall > 0 {
		s.EventsPerSec = float64(cs.Events()) / wall
		s.SimSecPerSec = float64(end) / wall
	}
	if fed.FedSnapshots > 0 {
		s.FeedClusterW = fed.FeedClusterW
		s.FeedSimW = fed.FeedSimW
		s.FeedRelErrLast = fed.FeedRelErrLast
	}
	if capr != nil {
		s.CapPolicy = capr.pol.Name
		s.CapTicks, s.CapDecisions, s.CapFreqActs, s.CapMigrations = capr.ctl.Stats()
		s.CapCompliance = capr.compliance()
		s.ServedCPU = cs.ServedCPU()
	}
	if o.jsonOut {
		return json.NewEncoder(out).Encode(map[string]any{"summary": s})
	}
	fmt.Fprintf(out, "done: %s, %d machines, %ds simulated, %d events (%d steps), %.0f events/s, %.0f sim-s/s, %.0fW, digest %s\n",
		s.Topology, s.Machines, s.SimSeconds, s.Events, s.Steps, s.EventsPerSec, s.SimSecPerSec, s.DatacenterW, s.Digest[:16])
	if fed.FedSnapshots > 0 {
		fmt.Fprintf(out, "fed %d snapshots: served %.0fW vs simulated %.0fW on sampled machines (rel err %.3f)\n",
			fed.FedSnapshots, s.FeedClusterW, s.FeedSimW, s.FeedRelErrLast)
	}
	if capr != nil {
		fmt.Fprintf(out, "capping %s: compliance %.4f over %d budget(s), %d ticks, %d decisions, %d freq caps, %d migrations\n",
			s.CapPolicy, s.CapCompliance, len(capr.targets), s.CapTicks, s.CapDecisions, s.CapFreqActs, s.CapMigrations)
	}
	return nil
}

func emit(out io.Writer, jsonOut bool, now int64, topo *cluster.Topology, want map[string]bool) {
	for _, l := range topo.Levels {
		name := levelKind(l)
		if !want[name] {
			continue
		}
		t := tick{T: now, Level: name, Name: l.Name, Watts: l.Watts()}
		if jsonOut {
			b, _ := json.Marshal(t)
			fmt.Fprintln(out, string(b))
		} else {
			fmt.Fprintf(out, "t=%-7d %-10s %-18s %10.1f W\n", t.T, t.Level, t.Name, t.Watts)
		}
	}
}

// levelKind names a level for streaming filters: the root is the
// datacenter, any level holding machines is a rack, everything between
// is a row — which also does the right thing for trees shallower than
// the full four levels.
func levelKind(l *cluster.Level) string {
	if l.Depth == 1 {
		return "datacenter"
	}
	if len(l.Machines) > 0 {
		return "rack"
	}
	return "row"
}

// capper wires the model-predictive capping controller into the driver:
// bootstrapped Eq. 4 switching models for every platform in the fleet,
// a dedicated model registry, the internal/control loop, and per-second
// ground-truth compliance scoring (the verification side the controller
// itself never sees).
type capper struct {
	ctl     *control.Controller
	pol     *control.Policy
	targets []capTarget
	settle  int64
}

// capTarget tracks one budgeted level's compliance.
type capTarget struct {
	name                string
	level               *cluster.Level
	budget              float64
	samples, violations int64
}

// capTick is one streamed cap observation for a budgeted level.
type capTick struct {
	T             int64   `json:"t"`
	Level         string  `json:"level"` // always "cap"
	Name          string  `json:"name"`
	BudgetWatts   float64 `json:"budget_watts"`
	ActualWatts   float64 `json:"actual_watts"` // metered aggregate (what the controller sees)
	HeadroomWatts float64 `json:"headroom_watts"`
}

func newCapper(cs *cluster.ClusterSimulator, topo *cluster.Topology, o options, out io.Writer) (*capper, error) {
	pdata, err := os.ReadFile(o.capping)
	if err != nil {
		return nil, err
	}
	pol, err := control.ParsePolicy(pdata)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var platforms []string
	for _, mn := range topo.Machines {
		if p := mn.Machine.Spec.Name; !seen[p] {
			seen[p] = true
			platforms = append(platforms, p)
		}
	}
	sort.Strings(platforms)
	cm, err := control.Bootstrap(platforms, topo.Seed)
	if err != nil {
		return nil, err
	}
	reg := registry.New()
	if err := reg.Add("boot-1", cm, registry.Meta{Description: "chaos-dc bootstrap switching model"}); err != nil {
		return nil, err
	}
	// cap_violation / cap_recovered events stream as JSON lines among the
	// series in either output mode.
	ctl, err := control.New(cs, control.Config{Policy: pol, Registry: reg, Events: obs.NewEventSink(out)})
	if err != nil {
		return nil, err
	}
	cp := &capper{ctl: ctl, pol: pol, settle: 2 * pol.IntervalS}
	for _, b := range pol.Budgets {
		l, ok := topo.FindLevel(b.Level)
		if !ok { // control.New already resolved these; belt and braces
			return nil, fmt.Errorf("budget level %q not in topology", b.Level)
		}
		cp.targets = append(cp.targets, capTarget{name: b.Level, level: l, budget: b.Watts})
	}
	ctl.Start()
	return cp, nil
}

// score samples ground truth against every budget at simulated second
// ts, outside a two-interval settling window.
func (cp *capper) score(ts int64) {
	if ts <= cp.settle {
		return
	}
	for i := range cp.targets {
		t := &cp.targets[i]
		t.samples++
		if t.level.GroundTruthWatts() > t.budget*1.015 {
			t.violations++
		}
	}
}

// compliance returns the fraction of scored (budget, second) samples
// that stayed within budget × 1.015.
func (cp *capper) compliance() float64 {
	var samples, viols int64
	for i := range cp.targets {
		samples += cp.targets[i].samples
		viols += cp.targets[i].violations
	}
	if samples == 0 {
		return 1
	}
	return 1 - float64(viols)/float64(samples)
}

// emit streams one cap/actual/headroom observation per budgeted level.
func (cp *capper) emit(out io.Writer, jsonOut bool, now int64) {
	for i := range cp.targets {
		t := &cp.targets[i]
		actual := t.level.Watts()
		ct := capTick{
			T: now, Level: "cap", Name: t.name,
			BudgetWatts: t.budget, ActualWatts: actual, HeadroomWatts: t.budget - actual,
		}
		if jsonOut {
			b, _ := json.Marshal(ct)
			fmt.Fprintln(out, string(b))
		} else {
			fmt.Fprintf(out, "t=%-7d %-10s %-18s budget %9.1f W actual %9.1f W headroom %8.1f W\n",
				ct.T, ct.Level, ct.Name, ct.BudgetWatts, ct.ActualWatts, ct.HeadroomWatts)
		}
	}
}

// feeder POSTs sampled machine snapshots to a /v1/estimate/cluster
// endpoint. Each sampled machine gets its own counter Expander (the
// expander is stateful), seeded off the topology seed and machine id.
type feeder struct {
	cs        *cluster.ClusterSimulator
	url       string
	client    *http.Client
	indices   []int
	expanders []*counters.Expander
	next      int64
}

func newFeeder(cs *cluster.ClusterSimulator, o options) (*feeder, error) {
	topo := cs.Topology()
	n := o.feedMachines
	if n < 1 {
		return nil, fmt.Errorf("-feed-machines must be ≥ 1")
	}
	if n > len(topo.Machines) {
		n = len(topo.Machines)
	}
	if o.feedInterval < 1 {
		return nil, fmt.Errorf("-feed-interval must be ≥ 1")
	}
	f := &feeder{
		cs:     cs,
		url:    strings.TrimRight(o.feed, "/") + "/v1/estimate/cluster",
		client: &http.Client{Timeout: 30 * time.Second},
		next:   o.feedInterval,
	}
	reg := counters.StandardRegistry()
	stride := len(topo.Machines) / n
	for i := 0; i < n; i++ {
		idx := i * stride
		if err := cs.SetCapture(idx); err != nil {
			return nil, err
		}
		f.indices = append(f.indices, idx)
		f.expanders = append(f.expanders,
			counters.NewExpander(reg, mathx.DeriveSeed(topo.Seed, "exp:"+topo.Machines[idx].ID)))
	}
	return f, nil
}

func (f *feeder) snapshot(fed *summary) error {
	topo := f.cs.Topology()
	req := serve.EstimateRequest{}
	var simWatts float64
	for i, idx := range f.indices {
		sig, watts, err := f.cs.SampleSignals(idx)
		if err != nil {
			return err
		}
		vec, err := f.expanders[i].Sample(sig)
		if err != nil {
			return fmt.Errorf("expanding machine %s: %w", topo.Machines[idx].ID, err)
		}
		w := watts
		simWatts += w
		req.Samples = append(req.Samples, serve.SampleJSON{
			MachineID:    topo.Machines[idx].ID,
			Platform:     topo.Machines[idx].Machine.Spec.Name,
			Counters:     vec,
			MeteredWatts: &w,
		})
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	cr, status, retryAfter, err := f.post(body)
	if err != nil {
		return err
	}
	if status == http.StatusTooManyRequests {
		// The server is shedding load and told us when to come back
		// (Retry-After, in seconds). One bounded, jittered retry instead
		// of dropping the snapshot on the floor.
		base := 50.0 // ms floor when the hint is missing or zero
		if s, aerr := strconv.Atoi(strings.TrimSpace(retryAfter)); aerr == nil && s > 0 {
			base = float64(s) * 1000
		}
		if base > 5000 {
			base = 5000
		}
		rp := faults.RetryPolicy{MaxAttempts: 2, BackoffMS: base, Jitter: 0.25}
		time.Sleep(time.Duration(rp.BackoffFor(f.cs.Topology().Seed, "feed", 1) * float64(time.Millisecond)))
		cr, status, _, err = f.post(body)
		if err != nil {
			return err
		}
	}
	if status != http.StatusOK {
		return fmt.Errorf("status %d: %s", status, cr.Error)
	}
	fed.FedSnapshots++
	fed.FeedClusterW = cr.ClusterWatts
	fed.FeedSimW = simWatts
	if simWatts > 0 {
		rel := (cr.ClusterWatts - simWatts) / simWatts
		if rel < 0 {
			rel = -rel
		}
		fed.FeedRelErrLast = rel
	}
	return nil
}

// clusterResp is the subset of the /v1/estimate/cluster response the
// feeder reads.
type clusterResp struct {
	Status       int     `json:"status"`
	ClusterWatts float64 `json:"cluster_watts"`
	Error        string  `json:"error"`
}

// post performs one POST of the snapshot and decodes the JSON body
// whatever the status, returning the Retry-After hint alongside.
func (f *feeder) post(body []byte) (clusterResp, int, string, error) {
	var cr clusterResp
	resp, err := f.client.Post(f.url, "application/json", bytes.NewReader(body))
	if err != nil {
		return cr, 0, "", err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		return cr, resp.StatusCode, "", fmt.Errorf("decoding response: %w", err)
	}
	return cr, resp.StatusCode, resp.Header.Get("Retry-After"), nil
}
