package control

import (
	"fmt"
	"math"

	"repro/internal/counters"
	"repro/internal/models"
	"repro/internal/sim"
)

// rowBuilder turns the two control-plane signals a governor actually
// exposes — mean core utilization and mean core frequency — into a model
// input row for one platform's admitted model. The mapping is resolved
// once per (model version, platform) and the row is reused, so the tick
// loop predicts without allocating.
//
// Only counters derivable from (util, freq) are accepted: the controller
// senses machines from outside, it does not run collectors on them. An
// admitted model wanting any other counter is unusable for control and
// is rejected up front rather than fed garbage.
type rowBuilder struct {
	row     []float64
	utilIdx []int // slots receiving util × 100 (% Processor Time)
	freqIdx []int // slots receiving the frequency in MHz, incl. lag slots
}

func newRowBuilder(spec models.FeatureSpec) (*rowBuilder, error) {
	rb := &rowBuilder{row: make([]float64, spec.NumInputs())}
	for i, c := range spec.Counters {
		switch c {
		case counters.CPUTotal:
			rb.utilIdx = append(rb.utilIdx, i)
		case counters.CPUFreqCore0:
			rb.freqIdx = append(rb.freqIdx, i)
		default:
			return nil, fmt.Errorf("control: model input %q is not derivable from control-plane signals (util, freq)", c)
		}
	}
	// Lagged-frequency slots get the current frequency: the controller's
	// what-if question is about the settled state, not the transition.
	for k := len(spec.Counters); k < spec.NumInputs(); k++ {
		rb.freqIdx = append(rb.freqIdx, k)
	}
	return rb, nil
}

// predict evaluates the model at (util in [0,1], freq in MHz).
func (rb *rowBuilder) predict(m models.Model, util, freqMHz float64) float64 {
	for _, i := range rb.utilIdx {
		rb.row[i] = util * 100
	}
	for _, i := range rb.freqIdx {
		rb.row[i] = freqMHz
	}
	return m.Predict(rb.row)
}

// whatIf answers the ranking question for one machine: if its governor
// were clamped to P-state k, what power does the admitted model predict
// and how much served throughput (in core-units) would the clamp cost?
//
// The throughput proxy follows the sim's capacity law: a core at
// frequency f serves work proportional to f/fTop, so current service is
// util·(fNow/fTop)·cores and the clamped capacity ceiling is
// (fK/fTop)·cores. Demand that no longer fits is lost.
func whatIf(rb *rowBuilder, m models.Model, spec *sim.PlatformSpec, util, freqNow float64, k int) (watts, lossCores float64) {
	states := spec.FreqStatesMHz
	fTop := states[len(states)-1]
	fK := states[k]
	if freqNow <= 0 {
		// Parked (C1): model the machine at its lowest state, zero load.
		freqNow = states[0]
		util = 0
	}
	// The same demand at a lower frequency fills more of each second.
	utilK := util * freqNow / fK
	if utilK > 1 {
		utilK = 1
	}
	watts = rb.predict(m, utilK, fK)
	cores := float64(spec.Cores)
	servedNow := util * (freqNow / fTop) * cores
	capacityK := (fK / fTop) * cores
	lossCores = math.Max(0, servedNow-capacityK)
	return watts, lossCores
}
