package telemetry

import (
	"repro/internal/dryad"
	"repro/internal/workloads"
)

// workloadJob builds a named workload job sized for the cluster. It is a
// seam tests can use to substitute tiny jobs.
func workloadJob(name string, nMachines int) (*dryad.Job, error) {
	return workloads.Build(name, nMachines)
}
