package lifecycle

import (
	"encoding/json"
	"fmt"

	"repro/internal/online"
)

// Checkpointing: the orchestrator's closed-loop progress — held-out
// window, retrain buffers, probation bookkeeping, counters — serializes
// to one JSON document so a restart resumes the loop where it left off
// instead of forgetting a promotion it was mid-way through vetting. The
// document is written atomically by the serving binary (store.Checkpointer);
// this file only defines what the state is and how it restores.
//
// Restore rules per phase: training collapses to idle (the in-flight fit
// died with the process; its trigger re-fires from the restored buffers),
// shadowing re-arms the live mirror when Start binds the engine, and
// probation resumes with its accumulated evidence — a restart must not
// let a bad promotion skip the rest of its probation window.

// checkpointDoc is the serialized orchestrator state.
type checkpointDoc struct {
	State        string     `json:"state"`
	Names        []string   `json:"names"`
	HeldOut      []Snapshot `json:"held_out,omitempty"` // oldest first
	SinceRetrain int        `json:"since_retrain"`

	Challenger string `json:"challenger,omitempty"`
	Champion   string `json:"champion,omitempty"`
	HeldChamp  Score  `json:"held_champ,omitempty"`
	HeldChall  Score  `json:"held_chall,omitempty"`

	LiveN        int     `json:"live_n,omitempty"`
	LiveChampSSE float64 `json:"live_champ_sse,omitempty"`
	LiveChallSSE float64 `json:"live_chall_sse,omitempty"`
	LiveMinA     float64 `json:"live_min_a,omitempty"`
	LiveMaxA     float64 `json:"live_max_a,omitempty"`

	PromotedVersion string  `json:"promoted_version,omitempty"`
	PromotedPrev    string  `json:"promoted_prev,omitempty"`
	ShadowRMSE      float64 `json:"shadow_rmse,omitempty"`
	ProbationN      int     `json:"probation_n,omitempty"`
	ProbationSSE    float64 `json:"probation_sse,omitempty"`

	Seq         int     `json:"seq"`
	Retrains    int     `json:"retrains"`
	Promotions  int     `json:"promotions"`
	Rollbacks   int     `json:"rollbacks"`
	LastTrigger string  `json:"last_trigger,omitempty"`
	LastVerdict string  `json:"last_verdict,omitempty"`
	LastRatio   float64 `json:"last_ratio,omitempty"`
	LastErr     string  `json:"last_err,omitempty"`

	Retrainer online.RetrainerState `json:"retrainer"`
}

// MarshalCheckpoint serializes the orchestrator's current state. It is
// safe to call concurrently with ingestion and the background loop — the
// natural checkpoint source function.
func (o *Orchestrator) MarshalCheckpoint() ([]byte, error) {
	rtState := o.rt.State()
	o.mu.Lock()
	doc := checkpointDoc{
		State:        o.state.String(),
		Names:        append([]string(nil), o.cfg.Names...),
		HeldOut:      o.windowLocked(),
		SinceRetrain: o.sinceRetrain,

		Challenger: o.challenger,
		Champion:   o.champion,
		HeldChamp:  o.heldChamp,
		HeldChall:  o.heldChall,

		LiveN:        o.live.n,
		LiveChampSSE: o.live.champSSE,
		LiveChallSSE: o.live.challSSE,
		LiveMinA:     o.live.minA,
		LiveMaxA:     o.live.maxA,

		PromotedVersion: o.promotedVersion,
		PromotedPrev:    o.promotedPrev,
		ShadowRMSE:      o.shadowRMSE,
		ProbationN:      o.probation.n,
		ProbationSSE:    o.probation.sse,

		Seq:         o.seq,
		Retrains:    o.retrains,
		Promotions:  o.promotions,
		Rollbacks:   o.rollbacks,
		LastTrigger: o.lastTrigger,
		LastVerdict: o.lastVerdict,
		LastRatio:   o.lastRatio,
		LastErr:     o.lastErr,

		Retrainer: rtState,
	}
	o.mu.Unlock()
	return json.Marshal(doc)
}

// windowLocked is window() with o.mu already held.
func (o *Orchestrator) windowLocked() []Snapshot {
	if !o.heldFull {
		return append([]Snapshot(nil), o.heldout[:o.heldNext]...)
	}
	out := make([]Snapshot, 0, len(o.heldout))
	out = append(out, o.heldout[o.heldNext:]...)
	out = append(out, o.heldout[:o.heldNext]...)
	return out
}

// RestoreCheckpoint loads a checkpoint produced by MarshalCheckpoint.
// It must be called after New and before Start: restoring into a running
// loop would race the state machine. The counter-name order must match
// the current configuration.
func (o *Orchestrator) RestoreCheckpoint(data []byte) error {
	var doc checkpointDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("lifecycle: parsing checkpoint: %w", err)
	}
	if len(doc.Names) != len(o.cfg.Names) {
		return fmt.Errorf("lifecycle: checkpoint has %d counters, config expects %d", len(doc.Names), len(o.cfg.Names))
	}
	for i, n := range doc.Names {
		if n != o.cfg.Names[i] {
			return fmt.Errorf("lifecycle: checkpoint counter %d is %q, config expects %q", i, n, o.cfg.Names[i])
		}
	}
	if err := o.rt.Restore(doc.Retrainer); err != nil {
		return err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.eng != nil {
		return fmt.Errorf("lifecycle: cannot restore a checkpoint after Start")
	}
	if o.closed {
		return fmt.Errorf("lifecycle: orchestrator closed")
	}

	// Refill the held-out ring oldest-first, capped to the configured
	// window (a checkpoint from a larger HeldOut keeps the newest).
	o.heldNext, o.heldFull = 0, false
	held := doc.HeldOut
	if len(held) > len(o.heldout) {
		held = held[len(held)-len(o.heldout):]
	}
	for _, s := range held {
		o.heldout[o.heldNext] = s
		o.heldNext++
		if o.heldNext == len(o.heldout) {
			o.heldNext = 0
			o.heldFull = true
		}
	}
	o.sinceRetrain = doc.SinceRetrain

	switch doc.State {
	case stateShadowing.String():
		// The mirror itself died with the process; Start re-arms it.
		o.state = stateShadowing
		o.challenger = doc.Challenger
		o.champion = doc.Champion
		o.heldChamp = doc.HeldChamp
		o.heldChall = doc.HeldChall
		o.live = accum{
			n: doc.LiveN, champSSE: doc.LiveChampSSE, challSSE: doc.LiveChallSSE,
			minA: doc.LiveMinA, maxA: doc.LiveMaxA,
		}
	case stateProbation.String():
		// Resume, never skip: the promoted model serves the rest of its
		// probation window with the evidence gathered so far.
		o.state = stateProbation
		o.promotedVersion = doc.PromotedVersion
		o.promotedPrev = doc.PromotedPrev
		o.shadowRMSE = doc.ShadowRMSE
		o.probation = probAccum{n: doc.ProbationN, sse: doc.ProbationSSE}
	default:
		// idle stays idle; a checkpoint taken mid-training restores to
		// idle — the fit was lost with the process and re-triggers from
		// the restored buffers.
		o.state = stateIdle
	}

	o.seq = doc.Seq
	o.retrains = doc.Retrains
	o.promotions = doc.Promotions
	o.rollbacks = doc.Rollbacks
	o.lastTrigger = doc.LastTrigger
	o.lastVerdict = doc.LastVerdict
	o.lastRatio = doc.LastRatio
	o.lastErr = doc.LastErr
	return nil
}
