package metrics_test

import (
	"fmt"

	"repro/internal/metrics"
)

// The paper's Table III point: the same absolute error reads very
// differently on systems with different dynamic ranges.
func ExampleDRE() {
	// 0.6 W rMSE on an Atom-class machine (22-26 W range)...
	atom, _ := metrics.DRE(0.6, 26, 22)
	// ...and on a Core 2 Duo-class machine (25-46 W range).
	core2, _ := metrics.DRE(0.6, 46, 25)
	fmt.Printf("Atom DRE %.0f%%, Core2 DRE %.0f%%\n", atom*100, core2*100)
	// Output: Atom DRE 15%, Core2 DRE 3%
}

func ExampleEvaluate() {
	actual := []float64{30, 35, 40, 45, 50}
	pred := []float64{31, 34, 41, 44, 52}
	s, _ := metrics.Evaluate(pred, actual, 25) // idle = 25 W
	fmt.Printf("rMSE %.2f W, DRE %.1f%%, median abs err %.1f W\n",
		s.RMSE, s.DRE*100, s.MedAbsE)
	// Output: rMSE 1.26 W, DRE 5.1%, median abs err 1.0 W
}

func ExampleEnergyWh() {
	// Half an hour at a constant 200 W.
	power := make([]float64, 1800)
	for i := range power {
		power[i] = 200
	}
	fmt.Printf("%.0f Wh\n", metrics.EnergyWh(power))
	// Output: 100 Wh
}
