package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/overload"
	"repro/internal/serve"
)

var errNilLocal = fmt.Errorf("dist: node needs a local serving engine")

// Hedge outcome counters: won (hedge beat the primary), lost (primary
// beat a launched hedge), denied (the rate budget refused a hedge).
var (
	hedgesWonCtr    = obs.Default().Counter("chaos_hedges_total", obs.Labels{"outcome": "won"})
	hedgesLostCtr   = obs.Default().Counter("chaos_hedges_total", obs.Labels{"outcome": "lost"})
	hedgesDeniedCtr = obs.Default().Counter("chaos_hedges_total", obs.Labels{"outcome": "denied"})
)

// ClusterResponse is the merged result of one scatter-gather. The
// degradation contract: the response is 200 whenever at least one
// requested machine was served; machines on dead, slow, or overloaded
// peers are listed in missing_machines and excluded from cluster_watts,
// and coverage reports the served fraction — the PR-2 coverage semantics
// lifted from per-machine predictors to whole nodes. 503 only when
// nothing at all could be served.
type ClusterResponse struct {
	Status          int                `json:"status"`
	ClusterWatts    float64            `json:"cluster_watts"`
	PerMachine      map[string]float64 `json:"per_machine,omitempty"`
	Coverage        float64            `json:"coverage"`
	MissingMachines []string           `json:"missing_machines,omitempty"`
	ModelVersions   []string           `json:"model_versions,omitempty"`
	// Peers maps each peer that was scattered to, to its outcome:
	// "ok", "local", "open" (breaker), "down", "degraded: <why>",
	// "budget_exhausted" (no deadline budget left to call it), or
	// "brownout" (the front door is at the local-only rung).
	Peers map[string]string `json:"peers"`
	// PeerBudgetMS records the sub-deadline forwarded to each remote
	// peer: min(remaining budget − margin, peer deadline), so the budget
	// observably shrinks hop by hop.
	PeerBudgetMS map[string]float64 `json:"peer_budget_ms,omitempty"`
	// BrownoutLevel is the front door's brownout rung at answer time;
	// at the partial rung the answer is local-only.
	BrownoutLevel int    `json:"brownout_level,omitempty"`
	Error         string `json:"error,omitempty"`
}

// peerResult is one peer's slice of the gather.
type peerResult struct {
	peerID   string
	outcome  string
	perMach  map[string]float64
	versions []string
}

// handleCluster is the /v1/estimate/cluster front door: split the
// snapshot by owner, serve the local slice directly, scatter the rest
// with per-peer deadlines, and merge whatever came back.
func (n *Node) handleCluster(w http.ResponseWriter, r *http.Request) {
	var req serve.EstimateRequest
	body, err := readBody(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ClusterResponse{Status: http.StatusBadRequest, Error: err.Error()})
		return
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, ClusterResponse{Status: http.StatusBadRequest, Error: "parsing body: " + err.Error()})
		return
	}
	if len(req.Samples) == 0 {
		writeJSON(w, http.StatusBadRequest, ClusterResponse{Status: http.StatusBadRequest, Error: "no samples"})
		return
	}
	// The whole-request deadline budget every hop draws down. Each
	// remote call gets min(remaining − margin, peer deadline); a peer the
	// budget can no longer cover is refused up front instead of fanned
	// out to and abandoned.
	start := time.Now()
	budget := time.Duration(req.DeadlineMS * float64(time.Millisecond))
	if budget <= 0 {
		budget = n.cfg.ClusterDeadline
	}
	prio := req.Priority
	if prio == "" {
		prio = r.Header.Get(serve.PriorityHeader)
	}
	level := overload.LevelNormal
	if n.cfg.Level != nil {
		level = n.cfg.Level()
	}

	// Split the snapshot by owning peer.
	byPeer := map[string][]serve.SampleJSON{}
	for _, s := range req.Samples {
		owner := n.part.Owner(s.MachineID).ID
		byPeer[owner] = append(byPeer[owner], s)
	}

	peerBudget := map[string]float64{}
	results := make(chan peerResult, len(byPeer))
	var wg sync.WaitGroup
	for peerID, samples := range byPeer {
		if peerID != n.part.Self() {
			// Brownout partial rung: stop fanning out, serve the local
			// slice only — a coverage-partial answer beats a timeout.
			if level >= overload.LevelPartial {
				results <- peerResult{peerID: peerID, outcome: "brownout"}
				continue
			}
			remaining := budget - time.Since(start) - n.cfg.BudgetMargin
			sub := remaining
			if sub > n.cfg.PeerDeadline {
				sub = n.cfg.PeerDeadline
			}
			if sub <= 0 {
				peerBudget[peerID] = 0
				results <- peerResult{peerID: peerID, outcome: "budget_exhausted"}
				continue
			}
			peerBudget[peerID] = sub.Seconds() * 1e3
			wg.Add(1)
			go func(peerID string, samples []serve.SampleJSON, sub time.Duration) {
				defer wg.Done()
				results <- n.gatherRemote(peerID, samples, sub, prio)
			}(peerID, samples, sub)
			continue
		}
		wg.Add(1)
		go func(samples []serve.SampleJSON) {
			defer wg.Done()
			results <- n.gatherLocal(samples, budget, prio)
		}(samples)
	}
	wg.Wait()
	close(results)

	resp := ClusterResponse{
		PerMachine: map[string]float64{}, Peers: map[string]string{},
		PeerBudgetMS: peerBudget, BrownoutLevel: level,
	}
	versions := map[string]bool{}
	for pr := range results {
		resp.Peers[pr.peerID] = pr.outcome
		for m, watts := range pr.perMach {
			resp.PerMachine[m] = watts
			resp.ClusterWatts += watts
		}
		for _, v := range pr.versions {
			if v != "" {
				versions[v] = true
			}
		}
	}
	for v := range versions {
		resp.ModelVersions = append(resp.ModelVersions, v)
	}
	sort.Strings(resp.ModelVersions)
	for _, s := range req.Samples {
		if _, ok := resp.PerMachine[s.MachineID]; !ok {
			resp.MissingMachines = append(resp.MissingMachines, s.MachineID)
		}
	}
	sort.Strings(resp.MissingMachines)
	resp.Coverage = float64(len(resp.PerMachine)) / float64(len(req.Samples))
	coverageGauge.Set(resp.Coverage)

	if len(resp.PerMachine) == 0 {
		resp.Status = http.StatusServiceUnavailable
		resp.Error = "no peer could serve any requested machine"
	} else {
		resp.Status = http.StatusOK
	}
	writeJSON(w, resp.Status, resp)
}

// gatherLocal serves this node's own slice through the local engine.
// Overload and deadline failures degrade exactly like a slow peer: the
// machines go missing, the rest of the cluster answer survives.
func (n *Node) gatherLocal(samples []serve.SampleJSON, budget time.Duration, prio string) peerResult {
	pr := peerResult{peerID: n.part.Self(), outcome: "local"}
	in := make([]online.Sample, len(samples))
	for i, s := range samples {
		in[i] = online.Sample{MachineID: s.MachineID, Platform: s.Platform, Counters: s.Counters}
	}
	res, err := n.cfg.Local.EstimatePriority(in, budget, nil, nil, overload.ParsePriority(prio))
	if res != nil {
		pr.perMach = res.PerMachine
		pr.versions = res.Versions
	}
	if err != nil {
		pr.outcome = "degraded: " + err.Error()
	}
	return pr
}

// attempt is one call's outcome plus what hedging needs to pick a winner.
type attempt struct {
	pr      peerResult
	elapsed time.Duration
	hedge   bool
}

// gatherRemote calls one owning peer within the sub-deadline the budget
// allows, guarded by its breaker. When the primary call outlives the
// peer's rolling HedgeQuantile latency and the hedge budget has a token,
// a backup call races it; the first 200 wins and the loser is canceled.
// Breaker and health accounting apply to the winning attempt only, so a
// canceled loser never fakes a peer-down transition.
func (n *Node) gatherRemote(peerID string, samples []serve.SampleJSON, sub time.Duration, prio string) peerResult {
	brk := n.breaker(peerID)
	if brk != nil && !brk.Allow() {
		return peerResult{peerID: peerID, outcome: "open"}
	}
	if n.hedge != nil {
		n.hedge.NotePrimary()
	}
	// Arm the hedge at the rolling quantile, clamped into [1ms, sub/2]
	// so a hedge always has at least half the sub-deadline to finish.
	var hedgeDelay time.Duration
	if n.hedge != nil {
		if tr := n.trackers[peerID]; tr != nil {
			if q := tr.Quantile(n.cfg.HedgeQuantile); q > 0 {
				hedgeDelay = q
				if hedgeDelay < time.Millisecond {
					hedgeDelay = time.Millisecond
				}
				if hedgeDelay > sub/2 {
					hedgeDelay = sub / 2
				}
			}
		}
	}

	resCh := make(chan attempt, 2) // buffered: a canceled loser never blocks
	run := func(ctx context.Context, hedge bool) {
		t0 := time.Now()
		pr := n.callPeer(ctx, peerID, samples, sub, prio)
		resCh <- attempt{pr: pr, elapsed: time.Since(t0), hedge: hedge}
	}
	primCtx, primCancel := context.WithTimeout(context.Background(), sub)
	defer primCancel()
	go run(primCtx, false)

	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if hedgeDelay > 0 {
		hedgeTimer = time.NewTimer(hedgeDelay)
		defer hedgeTimer.Stop()
		hedgeC = hedgeTimer.C
	}
	var hedgeCancel context.CancelFunc
	launched := false
	pending := 1
	var winner *attempt
	var first *attempt
	for pending > 0 {
		select {
		case a := <-resCh:
			pending--
			if first == nil {
				cp := a
				first = &cp
			}
			if a.pr.outcome == "ok" {
				cp := a
				winner = &cp
				pending = 0 // the loser is canceled below and drains into the buffer
			}
		case <-hedgeC:
			hedgeC = nil
			if n.hedge.Allow() {
				launched = true
				pending++
				var hctx context.Context
				hctx, hedgeCancel = context.WithTimeout(context.Background(), sub)
				go run(hctx, true)
			} else {
				n.hDenied.Add(1)
				hedgesDeniedCtr.Inc()
			}
		}
	}
	primCancel()
	if hedgeCancel != nil {
		hedgeCancel()
	}
	if winner == nil {
		winner = first // no attempt succeeded; report the first failure
	}
	if launched {
		if winner.pr.outcome == "ok" && winner.hedge {
			n.hWon.Add(1)
			hedgesWonCtr.Inc()
		} else {
			n.hLost.Add(1)
			hedgesLostCtr.Inc()
		}
	}

	// Health and breaker accounting on the winning attempt only.
	switch {
	case winner.pr.outcome == "ok":
		if tr := n.trackers[peerID]; tr != nil {
			tr.Observe(winner.elapsed)
		}
		n.ok(peerID, brk)
	case winner.pr.outcome == "down":
		n.fail(peerID, brk)
	default:
		n.ok(peerID, brk) // degraded: the peer answered, it is alive
	}
	return winner.pr
}

// callPeer performs one HTTP attempt against a peer, subject to injected
// node-level chaos, with no breaker or health side effects (the caller
// accounts the winning attempt). Failure taxonomy: transport errors and
// 5xx report "down" (the peer itself is sick); 429/503/504 report
// "degraded" (the peer answered — overloaded, not dead).
func (n *Node) callPeer(ctx context.Context, peerID string, samples []serve.SampleJSON, sub time.Duration, prio string) peerResult {
	pr := peerResult{peerID: peerID}
	peer, _ := n.part.Peer(peerID)

	// Node-level chaos rides the same second index as machine faults;
	// the call sequence decorrelates a hedge's latency draw from its
	// primary's within the same second.
	if inj := n.cfg.Injector; inj != nil {
		t := n.simSecond()
		call := int(n.callSeq.Add(1))
		if inj.PeerDown(peerID, t) {
			pr.outcome = "down"
			return pr
		}
		if inj.PeerPartitioned(peerID, t) {
			<-ctx.Done() // partition: the call hangs until its deadline
			pr.outcome = "down"
			return pr
		}
		if ms := inj.PeerLatencyMS(peerID, t, call); ms > 0 {
			select {
			case <-time.After(time.Duration(ms) * time.Millisecond):
			case <-ctx.Done():
				pr.outcome = "down"
				return pr
			}
		}
	}

	reqBody, err := json.Marshal(serve.EstimateRequest{
		Samples: samples, DeadlineMS: sub.Seconds() * 1e3, Priority: prio,
	})
	if err != nil {
		pr.outcome = "degraded: " + err.Error()
		return pr
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+peer.Addr+"/v1/estimate", bytes.NewReader(reqBody))
	if err != nil {
		pr.outcome = "degraded: " + err.Error()
		return pr
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if prio != "" {
		httpReq.Header.Set(serve.PriorityHeader, prio)
	}
	httpResp, err := n.cfg.Client.Do(httpReq)
	if err != nil {
		pr.outcome = "down"
		return pr
	}
	defer httpResp.Body.Close()

	var er serve.EstimateResponse
	decodeErr := json.NewDecoder(httpResp.Body).Decode(&er)
	switch {
	case httpResp.StatusCode == http.StatusOK && decodeErr == nil:
		pr.perMach = er.PerMachine
		pr.versions = []string{er.ModelVersion}
		pr.outcome = "ok"
	case httpResp.StatusCode >= http.StatusInternalServerError &&
		httpResp.StatusCode != http.StatusServiceUnavailable &&
		httpResp.StatusCode != http.StatusGatewayTimeout:
		pr.outcome = "down"
	default:
		// The peer answered: overloaded (429), model-less (503), late
		// (504), or misdirected (421, stale partition view). Its machines
		// are missing from this snapshot but the node is alive.
		pr.outcome = fmt.Sprintf("degraded: peer status %d", httpResp.StatusCode)
	}
	return pr
}

// ok and fail update breaker plus health gauge together.
func (n *Node) ok(peerID string, brk *Breaker) {
	if brk != nil {
		brk.Success()
	}
	n.notePeer(peerID, true)
}

func (n *Node) fail(peerID string, brk *Breaker) {
	if brk != nil {
		brk.Failure()
	}
	n.notePeer(peerID, false)
}

// readBody caps and reads one request body.
func readBody(r *http.Request) ([]byte, error) {
	defer r.Body.Close()
	buf := &bytes.Buffer{}
	if _, err := buf.ReadFrom(http.MaxBytesReader(nil, r.Body, 64<<20)); err != nil {
		return nil, fmt.Errorf("reading body: %w", err)
	}
	return buf.Bytes(), nil
}

// writeJSON mirrors the serve package's response helper.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone
}
