// chaos-train builds a cluster power model from trace CSVs: it runs
// Algorithm 1 feature selection (unless an explicit feature list is
// given), fits the chosen technique on pooled training data, evaluates it
// with run-based cross-validation, and writes the model as JSON.
//
// Usage:
//
//	chaos-train -in traces/ -tech quadratic -out model.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/featsel"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/trace"
)

func main() {
	var (
		in       = flag.String("in", "traces", "directory of trace CSVs from chaos-collect")
		tech     = flag.String("tech", "quadratic", "technique: linear, piecewise, quadratic, switching")
		features = flag.String("features", "auto", `"auto" (Algorithm 1), "cpu-only", or a comma-separated counter list`)
		out      = flag.String("out", "model.json", "output model file")
		listen   = flag.String("listen", "", "serve /metrics, /healthz, and pprof on this address while training")
	)
	flag.Parse()
	if err := run(*in, *tech, *features, *out, *listen); err != nil {
		fmt.Fprintln(os.Stderr, "chaos-train:", err)
		os.Exit(1)
	}
}

func loadTraces(dir string) ([]*trace.Trace, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no trace CSVs in %s", dir)
	}
	var out []*trace.Trace
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		t, err := trace.ReadCSV(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		out = append(out, t)
	}
	return out, nil
}

func run(in, techName, features, out, listen string) error {
	if listen != "" {
		obs.RegisterBuildInfo(obs.Default())
		srv, err := obs.Serve(listen, obs.Default())
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("metrics listening on http://%s/metrics\n", srv.Addr())
	}
	span := obs.StartSpan("train.run", obs.String("tech", techName))
	defer span.End()
	traces, err := loadTraces(in)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %d traces (%s)\n", len(traces), in)

	var spec models.FeatureSpec
	switch features {
	case "auto":
		reg := counters.StandardRegistry()
		res, err := featsel.SelectCluster(traces, reg, featsel.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("Algorithm 1: %d -> %d -> %d -> %d features (threshold %.0f)\n",
			res.Funnel.Candidates, res.Funnel.AfterCorr, res.Funnel.AfterCoDep,
			res.Funnel.Final, res.Threshold)
		feats := res.Features
		if models.Technique(techName) == models.TechSwitching {
			feats = ensure(feats, counters.CPUFreqCore0)
		}
		spec = core.ClusterSpec(feats)
	case "cpu-only":
		spec = models.CPUOnlySpec()
	default:
		spec = core.ClusterSpec(strings.Split(features, ","))
	}
	fmt.Printf("features (%d): %s\n", len(spec.Counters), strings.Join(spec.Counters, "; "))

	cfg := core.CVConfig{Tech: models.Technique(techName), Spec: spec}
	cv, err := core.CrossValidate(traces, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("cross-validation: cluster DRE %.1f%%, rMSE %.2f W, machine median relative error %.2f%%\n",
		cv.Cluster.DRE*100, cv.Cluster.RMSE, cv.Machine.MedRelE*100)

	// Final model: fit on every run (deployment-style).
	byPlatform := map[string][]*trace.Trace{}
	for _, t := range traces {
		byPlatform[t.Platform] = append(byPlatform[t.Platform], trace.Subsample(t, 2))
	}
	var mms []*models.MachineModel
	for p, ts := range byPlatform {
		mm, err := models.FitMachineModel(models.Technique(techName), ts, spec,
			models.FitOptions{FreqCol: spec.FreqInputIndex(), MaxKnots: 8})
		if err != nil {
			return fmt.Errorf("platform %s: %w", p, err)
		}
		mms = append(mms, mm)
	}
	cm, err := models.NewClusterModel(mms...)
	if err != nil {
		return err
	}
	// Report each platform model's feature influence (watts of output
	// swing across the feature's observed range).
	for p, ts := range byPlatform {
		mm := cm.ByPlatform[p]
		imp, err := models.FeatureImportance(mm, ts)
		if err != nil {
			return err
		}
		fmt.Printf("feature influence (%s, %d terms):\n", p, models.UsedTerms(mm.Model))
		for _, e := range imp {
			fmt.Printf("  %6.2f W  %s\n", e.Weight, e.Feature)
		}
	}
	data, err := json.MarshalIndent(cm, "", "  ")
	if err != nil {
		return err
	}
	// Atomic replacement: a crash mid-write must never leave a truncated
	// model file where a previous good one stood.
	if err := store.WriteFileAtomic(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes)\n", out, len(data))
	return nil
}

func ensure(fs []string, name string) []string {
	for _, f := range fs {
		if f == name {
			return fs
		}
	}
	return append(fs, name)
}
