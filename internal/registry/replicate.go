package registry

import (
	"encoding/json"
	"fmt"

	"repro/internal/models"
)

// parseModel unmarshals and re-validates a replicated model document: the
// CRC proved the bytes arrived intact, validation proves they are a
// servable model.
func parseModel(raw json.RawMessage) (*models.ClusterModel, error) {
	var cm models.ClusterModel
	if err := json.Unmarshal(raw, &cm); err != nil {
		return nil, err
	}
	if err := cm.Validate(); err != nil {
		return nil, err
	}
	return &cm, nil
}

// Replication surface: a persistent registry's journal doubles as a
// replication log. A leader exposes the journal's bytes (the dist package
// serves them verbatim, CRC frames intact) plus a consistent snapshot for
// bootstrap; a follower applies replicated records through the same
// journaled mutation path it uses locally, so its own state directory
// recovers identically after a crash. Every apply is idempotent — replay
// already dedupes admissions by version — which is what makes offset
// resync after a torn tail or a leader restart safe.

// ReplicationStatus reports the journal's replication coordinates under
// one lock acquisition: its path, current byte size, record count, and
// epoch. The epoch counts compactions — when it advances, every
// follower's byte offset into the journal is invalid and the follower
// must resync from a snapshot. ok is false for in-memory registries.
func (r *Registry) ReplicationStatus() (path string, size int64, records, epoch int, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.persist == nil {
		return "", 0, 0, 0, false
	}
	return r.persist.j.Path(), r.persist.j.Size(), r.persist.records, r.persist.compactions, true
}

// JournalPath returns the journal file path, "" for in-memory registries.
func (r *Registry) JournalPath() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.persist == nil {
		return ""
	}
	return r.persist.j.Path()
}

// ReplicaSnapshot marshals the full state for follower bootstrap together
// with the journal coordinates the follower should resume tailing from.
// State and coordinates are captured under one lock acquisition, so the
// offset is exactly the journal position the snapshot reflects.
func (r *Registry) ReplicaSnapshot() (snapshot []byte, size int64, records, epoch int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.persist == nil {
		return nil, 0, 0, 0, fmt.Errorf("registry: in-memory registry cannot serve replication snapshots")
	}
	data, err := r.snapshotLocked()
	if err != nil {
		return nil, 0, 0, 0, err
	}
	return data, r.persist.j.Size(), r.persist.records, r.persist.compactions, nil
}

// ApplyReplicated applies one leader journal record to this registry,
// journaling it locally so the follower's own state directory stays
// recoverable. It is idempotent: a duplicate admission or a no-op
// re-activation applies cleanly and reports applied="". An activation of
// a version this registry has never seen is an error — the follower is
// behind or diverged and must resync from a snapshot.
func (r *Registry) ApplyReplicated(payload []byte) (applied string, err error) {
	var rc record
	if err := json.Unmarshal(payload, &rc); err != nil {
		return "", fmt.Errorf("registry: parsing replicated record: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch rc.Op {
	case "admit":
		return r.applyReplicatedAdmitLocked(&rc)
	case "activate":
		if _, ok := r.versions[rc.Version]; !ok {
			return "", fmt.Errorf("registry: replicated activation of unknown version %q", rc.Version)
		}
		swapped, err := r.activateLocked(rc.Version)
		if err != nil || !swapped {
			return "", err
		}
		return "activate:" + rc.Version, r.journalActivateLocked(rc.Version)
	default:
		return "", fmt.Errorf("registry: replicated record with unknown op %q", rc.Op)
	}
}

// applyReplicatedAdmitLocked admits one replicated version, preserving
// the leader's metadata and creation time so List() output is
// bit-identical across the fleet. Caller holds r.mu.
func (r *Registry) applyReplicatedAdmitLocked(rc *record) (string, error) {
	if rc.Version == "" || len(rc.Model) == 0 {
		return "", fmt.Errorf("registry: replicated admit missing version or model")
	}
	if _, dup := r.versions[rc.Version]; dup {
		return "", nil // idempotent re-apply after resync or restart
	}
	cm, err := parseModel(rc.Model)
	if err != nil {
		return "", fmt.Errorf("registry: replicated admit %s: %w", rc.Version, err)
	}
	r.seq++
	e := &Entry{Version: rc.Version, Meta: rc.Meta, Model: cm, CreatedAt: rc.CreatedAt, seq: r.seq}
	r.versions[rc.Version] = e
	versionsGauge.Set(float64(len(r.versions)))
	if r.active.Load() == nil {
		// Mirror Add's first-admission auto-activation: the leader's first
		// admit activated without a journal record, so the follower must
		// reproduce that rule to converge on the same active version.
		r.active.Store(e)
		activationsTotal.Inc()
	}
	return "admit:" + rc.Version, r.journalAdmitLocked(e)
}

// ApplySnapshot bootstraps (or repairs) this registry from a leader
// snapshot: admissions apply in the leader's order, duplicates are
// skipped, and the leader's active version and rollback target are
// adopted. Everything routes through the journaled mutation path, so a
// freshly bootstrapped follower is durable immediately.
func (r *Registry) ApplySnapshot(data []byte) error {
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("registry: parsing replication snapshot: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range snap.Admits {
		if _, err := r.applyReplicatedAdmitLocked(&snap.Admits[i]); err != nil {
			return err
		}
	}
	if snap.Active != "" && snap.Active != r.activeVersionLocked() {
		swapped, err := r.activateLocked(snap.Active)
		if err != nil {
			return fmt.Errorf("registry: snapshot active version: %w", err)
		}
		if swapped {
			if err := r.journalActivateLocked(snap.Active); err != nil {
				return err
			}
		}
	}
	r.previous = snap.Previous
	return nil
}

// activeVersionLocked is ActiveVersion without re-entering the lock.
func (r *Registry) activeVersionLocked() string {
	if e := r.active.Load(); e != nil {
		return e.Version
	}
	return ""
}
