package dist

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestOverloadBreakerHalfOpenSingleProbe locks in the half-open contract
// under concurrency: once the cooldown elapses, exactly one caller wins
// the probe slot until that probe's Success or Failure settles the state.
// Many goroutines hammer Allow at the same fake instant; only one may
// pass per probe cycle.
func TestOverloadBreakerHalfOpenSingleProbe(t *testing.T) {
	var clock atomic.Int64 // unix nanos, shared fake clock
	now := func() time.Time { return time.Unix(0, clock.Load()) }
	b := NewBreaker(1, time.Second, now)
	b.Failure() // trip it: open, probe at t=1s
	clock.Store(int64(2 * time.Second))
	if got := b.State(); got != "half-open" {
		t.Fatalf("state after cooldown = %q, want half-open", got)
	}

	const goroutines = 32
	var admitted atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if b.Allow() {
				admitted.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("half-open admitted %d concurrent probes, want exactly 1", got)
	}

	// A failed probe re-arms the cooldown: nobody gets in before it ends,
	// exactly one probe after.
	b.Failure()
	if b.Allow() {
		t.Fatal("breaker admitted a call during the re-armed cooldown")
	}
	clock.Store(int64(4 * time.Second))
	admitted.Store(0)
	var wg2 sync.WaitGroup
	start2 := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			<-start2
			if b.Allow() {
				admitted.Add(1)
			}
		}()
	}
	close(start2)
	wg2.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("second probe cycle admitted %d, want exactly 1", got)
	}

	// A successful probe closes the breaker for everyone.
	b.Success()
	if !b.Allow() || b.State() != "closed" {
		t.Fatalf("breaker did not close after a successful probe (state %q)", b.State())
	}
}

// TestOverloadBreakerConcurrentTransitions races Allow/Success/Failure
// from many goroutines across moving fake time. The assertions are the
// invariants the race detector cannot see: the breaker always lands in a
// legal state, and a closed breaker always admits.
func TestOverloadBreakerConcurrentTransitions(t *testing.T) {
	var clock atomic.Int64
	now := func() time.Time { return time.Unix(0, clock.Load()) }
	b := NewBreaker(3, 50*time.Millisecond, now)

	const goroutines = 8
	const opsEach = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				clock.Add(int64(time.Millisecond))
				if b.Allow() {
					// Mixed outcomes keep the state machine cycling
					// through closed → open → half-open → closed.
					if (g+i)%3 == 0 {
						b.Failure()
					} else {
						b.Success()
					}
				}
				switch s := b.State(); s {
				case "closed", "open", "half-open":
				default:
					t.Errorf("illegal breaker state %q", s)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// Settle: one success must always yield a closed, admitting breaker.
	b.Success()
	if b.State() != "closed" || !b.Allow() {
		t.Fatalf("breaker not closed after final success (state %q)", b.State())
	}
}
