package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/serve"
)

func writeTopology(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "topo.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const smallGrid = `{
  "version": "chaos-topology/v1",
  "name": "mini-dc",
  "seed": 7,
  "grid": {
    "rows": 2, "racks_per_row": 2, "machines_per_rack": 5,
    "platforms": [{"name": "Opteron", "weight": 1}],
    "profiles": [{"name": "bursty", "weight": 0.7}, {"name": "idle", "weight": 0.3}]
  }
}`

// TestClusterDCStreamsSeries: the driver streams per-level series and a
// summary, and the run is deterministic (same digest twice).
func TestClusterDCStreamsSeries(t *testing.T) {
	path := writeTopology(t, smallGrid)
	run := func() (lines []map[string]any, digest string) {
		var out bytes.Buffer
		err := realMain([]string{
			"-topology", path, "-duration", "10m", "-interval", "120",
			"-levels", "datacenter,row,rack", "-json",
		}, &out)
		if err != nil {
			t.Fatal(err)
		}
		for _, ln := range strings.Split(strings.TrimSpace(out.String()), "\n") {
			var m map[string]any
			if err := json.Unmarshal([]byte(ln), &m); err != nil {
				t.Fatalf("non-JSON line %q: %v", ln, err)
			}
			lines = append(lines, m)
		}
		last := lines[len(lines)-1]
		sum, ok := last["summary"].(map[string]any)
		if !ok {
			t.Fatalf("last line is not a summary: %v", last)
		}
		if sum["machines"].(float64) != 20 || sum["sim_seconds"].(float64) != 600 {
			t.Fatalf("summary = %v", sum)
		}
		if sum["events"].(float64) <= 0 || sum["datacenter_watts_end"].(float64) <= 0 {
			t.Fatalf("empty run: %v", sum)
		}
		return lines, sum["digest"].(string)
	}
	lines, d1 := run()
	_, d2 := run()
	if d1 != d2 || len(d1) != 64 {
		t.Fatalf("digests differ or malformed: %s vs %s", d1, d2)
	}
	byLevel := map[string]int{}
	for _, m := range lines[:len(lines)-1] {
		byLevel[m["level"].(string)]++
		if m["watts"].(float64) <= 0 {
			t.Fatalf("non-positive watts in %v", m)
		}
	}
	// 5 ticks × (1 datacenter + 2 rows + 4 racks).
	if byLevel["datacenter"] != 5 || byLevel["row"] != 10 || byLevel["rack"] != 20 {
		t.Fatalf("series counts off: %v", byLevel)
	}
}

// TestClusterDCFeedsEstimateEndpoint: with -feed, sampled machine
// snapshots arrive at /v1/estimate/cluster as well-formed
// serve.EstimateRequest documents with full counter vectors.
func TestClusterDCFeedsEstimateEndpoint(t *testing.T) {
	path := writeTopology(t, smallGrid)
	var (
		requests  int
		samples   int
		lastWatts float64
	)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/estimate/cluster" {
			t.Errorf("unexpected path %s", r.URL.Path)
			http.NotFound(w, r)
			return
		}
		var req serve.EstimateRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("bad request body: %v", err)
		}
		requests++
		var sum float64
		for _, s := range req.Samples {
			samples++
			if s.MachineID == "" || s.Platform == "" || len(s.Counters) == 0 {
				t.Errorf("malformed sample: %+v", s)
			}
			if s.MeteredWatts == nil || *s.MeteredWatts <= 0 {
				t.Errorf("sample %s missing metered watts", s.MachineID)
			} else {
				sum += *s.MeteredWatts
			}
		}
		lastWatts = sum
		json.NewEncoder(w).Encode(map[string]any{"status": 200, "cluster_watts": sum * 1.02})
	}))
	defer srv.Close()

	var out bytes.Buffer
	err := realMain([]string{
		"-topology", path, "-duration", "10m", "-interval", "300", "-levels", "datacenter",
		"-feed", srv.URL, "-feed-machines", "4", "-feed-interval", "150", "-json",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if requests != 4 { // t = 150, 300, 450, 600
		t.Fatalf("requests = %d, want 4", requests)
	}
	if samples != 4*4 {
		t.Fatalf("samples = %d, want 16", samples)
	}
	if lastWatts <= 0 {
		t.Fatal("no metered watts fed")
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	var last map[string]any
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	sum := last["summary"].(map[string]any)
	if sum["fed_snapshots"].(float64) != 4 {
		t.Fatalf("summary fed_snapshots = %v", sum["fed_snapshots"])
	}
	if rel := sum["feed_rel_err_last"].(float64); rel < 0.015 || rel > 0.025 {
		t.Fatalf("feed_rel_err_last = %v, want ~0.02 (fake server inflates by 2%%)", rel)
	}
}

// TestClusterDCRejectsBadInput: flag and document errors surface instead
// of running a wrong fleet.
func TestClusterDCRejectsBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := realMain([]string{"-duration", "1m"}, &out); err == nil {
		t.Error("missing -topology accepted")
	}
	bad := writeTopology(t, `{"version":"chaos-topology/v1","name":"x","grid":{"rows":1}}`)
	if err := realMain([]string{"-topology", bad}, &out); err == nil {
		t.Error("invalid topology accepted")
	}
	good := writeTopology(t, smallGrid)
	if err := realMain([]string{"-topology", good, "-levels", "continent"}, &out); err == nil {
		t.Error("unknown level accepted")
	}
	if err := realMain([]string{"-topology", good, "-feed", "http://x", "-feed-machines", "0"}, &out); err == nil {
		t.Error("zero feed machines accepted")
	}
}

const heavyGrid = `{
  "version": "chaos-topology/v1",
  "name": "cap-dc",
  "seed": 11,
  "grid": {
    "rows": 1, "racks_per_row": 2, "machines_per_rack": 10,
    "platforms": [{"name": "Core2", "weight": 1}],
    "profiles": [{"name": "heavy", "weight": 0.6}, {"name": "idle", "weight": 0.4}]
  }
}`

// TestControlDCCappingEndToEnd: -capping runs the model-predictive
// control loop inside the driver — cap/actual/headroom series stream for
// the budgeted rack, the summary reports compliance and actuations, and
// the whole capped run (fleet + control actions) reproduces bit-for-bit.
func TestControlDCCappingEndToEnd(t *testing.T) {
	topoPath := writeTopology(t, heavyGrid)

	// Find the rack's uncapped ground-truth peak so the policy is a real
	// constraint (85% of peak) rather than a guess.
	spec, err := cluster.ParseSpec([]byte(heavyGrid))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := cluster.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	cs := cluster.NewSimulator(topo)
	rack, ok := topo.FindLevel("row-0/rack-0")
	if !ok {
		t.Fatal("rack not found")
	}
	peak := 0.0
	for ts := int64(1); ts <= 900; ts++ {
		cs.RunUntil(ts)
		if gt := rack.GroundTruthWatts(); gt > peak {
			peak = gt
		}
	}

	budget := peak * 0.85
	policy := map[string]any{
		"version": "chaos-capping/v1", "name": "dc-test",
		"interval_s": 15, "hysteresis_watts": budget * 0.04,
		"max_actuations_per_tick": 12,
		"budgets":                 []map[string]any{{"level": "row-0/rack-0", "watts": budget}},
		"migration":               map[string]any{"enabled": true, "max_per_tick": 6},
	}
	pdata, err := json.Marshal(policy)
	if err != nil {
		t.Fatal(err)
	}
	polPath := filepath.Join(t.TempDir(), "policy.json")
	if err := os.WriteFile(polPath, pdata, 0o644); err != nil {
		t.Fatal(err)
	}

	run := func() (capTicks int, sum map[string]any) {
		var out bytes.Buffer
		err := realMain([]string{
			"-topology", topoPath, "-duration", "15m", "-interval", "100",
			"-levels", "datacenter", "-capping", polPath, "-json",
		}, &out)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(out.String()), "\n")
		for _, ln := range lines {
			var m map[string]any
			if err := json.Unmarshal([]byte(ln), &m); err != nil {
				t.Fatalf("non-JSON line %q: %v", ln, err)
			}
			if m["level"] == "cap" {
				capTicks++
				if m["name"] != "row-0/rack-0" || m["budget_watts"].(float64) != budget {
					t.Fatalf("cap tick %v", m)
				}
				if m["actual_watts"].(float64) <= 0 {
					t.Fatalf("cap tick without actual watts: %v", m)
				}
			}
			if s, ok := m["summary"].(map[string]any); ok {
				sum = s
			}
		}
		return capTicks, sum
	}

	capTicks, sum := run()
	if capTicks != 9 { // one per reporting interval
		t.Fatalf("cap ticks = %d, want 9", capTicks)
	}
	if sum == nil {
		t.Fatal("no summary line")
	}
	if sum["cap_policy"] != "dc-test" {
		t.Fatalf("cap_policy = %v", sum["cap_policy"])
	}
	if c := sum["cap_compliance"].(float64); c < 0.95 {
		t.Fatalf("cap_compliance = %v, want ≥ 0.95", c)
	}
	if sum["cap_ticks"].(float64) < 50 || sum["cap_freq_actuations"].(float64) <= 0 {
		t.Fatalf("controller barely ran: %v", sum)
	}
	if sum["served_cpu_core_s"].(float64) <= 0 {
		t.Fatal("no served throughput recorded")
	}

	_, sum2 := run()
	if sum["digest"] != sum2["digest"] {
		t.Fatalf("capped run not reproducible: %v vs %v", sum["digest"], sum2["digest"])
	}
}

// TestControlDCCappingRejectsBadPolicy: malformed or unresolvable
// policies fail fast before any simulation runs.
func TestControlDCCappingRejectsBadPolicy(t *testing.T) {
	topoPath := writeTopology(t, heavyGrid)
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version":"chaos-capping/v1"`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := realMain([]string{"-topology", topoPath, "-duration", "1m", "-capping", bad}, &out); err == nil {
		t.Fatal("truncated policy accepted")
	}
	ghost := filepath.Join(dir, "ghost.json")
	doc := `{"version":"chaos-capping/v1","name":"g","interval_s":15,"budgets":[{"level":"no-such-rack","watts":100}]}`
	if err := os.WriteFile(ghost, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := realMain([]string{"-topology", topoPath, "-duration", "1m", "-capping", ghost}, &out); err == nil {
		t.Fatal("policy with unknown level accepted")
	}
}
