package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// acceptsOpenMetrics reports whether the scraper's Accept header
// negotiates the OpenMetrics exposition format. A substring check is
// enough: we serve exactly two formats, and a scraper that lists
// OpenMetrics at all (Prometheus puts its preferred format first) can
// parse it — exemplars are only legal there.
func acceptsOpenMetrics(accept string) bool {
	return strings.Contains(strings.ToLower(accept), "application/openmetrics-text")
}

// NewMux returns an HTTP mux exposing the registry at /metrics
// (classic Prometheus text format, or OpenMetrics with exemplars when
// the Accept header asks for it), a liveness probe at /healthz, and the
// standard pprof handlers under /debug/pprof/.
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		var err error
		if acceptsOpenMetrics(r.Header.Get("Accept")) {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			err = reg.WriteOpenMetrics(w)
		} else {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			err = reg.WritePrometheus(w)
		}
		if err != nil {
			// Headers are gone; nothing to do but note it.
			reg.Counter("chaos_metrics_write_errors_total", nil).Inc()
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running metrics endpoint.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Serve binds addr (e.g. ":9090" or "127.0.0.1:0") and serves the
// registry's mux in a background goroutine. Close the returned server to
// stop it.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           NewMux(reg),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on Close
	return &Server{srv: srv, ln: ln}, nil
}

// Addr returns the bound address (with the real port when addr used :0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }
