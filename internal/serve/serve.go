// Package serve is the power-prediction serving layer: an HTTP JSON API
// over the versioned model registry, backed by a sharded worker pool
// (sharded by machine ID so per-machine lag history never contends across
// shards) with request batching, bounded queues, 429 backpressure, and
// per-request deadlines. Estimates feed the online drift monitor and the
// obs metrics registry, and model versions hot-swap under load without
// dropping a request: every batch predicts with whichever registry entry
// was active when it was picked up, via one atomic pointer load.
package serve

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/overload"
	"repro/internal/registry"
)

// Serving-path instruments, resolved once; the per-request path pays only
// atomic updates.
var (
	samplesServed  = obs.Default().Counter("chaos_serve_samples_total", nil)
	shedTotal      = obs.Default().Counter("chaos_serve_shed_total", nil)
	deadlineTotal  = obs.Default().Counter("chaos_serve_deadline_exceeded_total", nil)
	batchSizeHist  = obs.Default().Histogram("chaos_serve_batch_size", nil, obs.ExpBuckets(1, 2, 10))
	serveDrift     = obs.Default().Counter("chaos_serve_drift_alarms_total", nil)
	swapPredictors = obs.Default().Counter("chaos_serve_predictor_builds_total", nil)
)

// Config tunes the serving engine. Zero values take defaults.
type Config struct {
	// Shards is the number of worker shards; samples route to a shard by
	// machine-ID hash so one machine's lag history lives on one shard.
	Shards int
	// QueueDepth bounds each shard's queue. A full queue sheds (429).
	QueueDepth int
	// BatchWindow is how long a worker waits to accumulate more samples
	// after the first arrives.
	BatchWindow time.Duration
	// BatchMax caps samples per predictor batch.
	BatchMax int
	// Deadline is the default per-request deadline (overridable per
	// request); samples still queued past it are answered with a
	// deadline-exceeded error instead of occupying the pool.
	Deadline time.Duration
	// Names is the counter order of incoming sample rows.
	Names []string
	// BaselineRMSE, when positive, enables the drift monitor over
	// requests that carry metered watts.
	BaselineRMSE float64
	// DriftThreshold is the monitor alarm level in baseline units
	// (default 16).
	DriftThreshold float64
	// Events, when set, receives drift/activation events as JSON lines.
	Events *obs.EventSink
	// Labeled, when set, receives every fully-served snapshot that carried
	// complete meter readings: the samples, the per-machine metered watts,
	// the cluster estimate answered, and the model version that served it
	// (so a post-swap consumer can tell which model earned the residual).
	// The lifecycle orchestrator hangs its retrain buffers, held-out
	// scoring window, and probation accounting off this hook. It is called
	// from the request goroutine after the response is complete, so it
	// must be cheap (the lifecycle hook copies and returns).
	Labeled func(samples []online.Sample, metered []float64, estimated float64, version string)
	// ShadowObserve, when set, receives one mirrored score per fully
	// shadowed metered snapshot: the champion's cluster estimate, the
	// shadow challenger's (computed in the shards, never returned to
	// clients), and the metered cluster watts.
	ShadowObserve func(champion, challenger, actual float64)
	// Traces, when set, enables request-scoped tracing: sampled requests
	// (and every request carrying a traceparent header) record queue /
	// batch / predict / respond spans into this store, retrievable at
	// /debug/traces.
	Traces *obs.TraceStore
	// TraceSample traces 1 in N requests that did not supply their own
	// traceparent. 0 takes the default (16); negative disables sampling
	// (caller-identified requests still trace).
	TraceSample int
	// Observer, when set, receives per-request latencies and per-machine
	// labeled outcomes — the SLO tracker's feed. Calls happen on the
	// request goroutine, so implementations must be cheap.
	Observer Observer
	// Overload, when set, enables adaptive admission control: one AIMD
	// concurrency limiter per shard (gradient on observed queue+predict
	// latency against a rolling baseline), strict-priority shedding, and
	// the brownout ladder. When nil the engine keeps the static behavior:
	// the bounded queue is the only defense.
	Overload *overload.Config
	// PredictStall, when positive, sleeps this long inside every batch
	// predict. It is a chaos/benchmark knob that pins the engine's
	// capacity analytically (≈ Shards × BatchMax / PredictStall samples
	// per second) so overload experiments are deterministic across
	// hardware. Never set it in production configs.
	PredictStall time.Duration
	// Owner, when set, is the distributed-mode partition check: it reports
	// which peer owns a machine ID and whether that peer is this node.
	// Direct estimates for non-owned machines are rejected with 421 and a
	// redirect hint instead of being served from predictors whose lag
	// history lives on another node.
	Owner func(machineID string) (peer, addr string, local bool)
}

// Observer is the serving engine's outcome feed: request latencies per
// endpoint and fully-labeled snapshots with their per-machine estimates.
// The slo package implements it; keeping it an interface here means serve
// never imports slo.
type Observer interface {
	// ObserveRequest is called once per HTTP estimation request with the
	// endpoint name ("estimate" or "estimate_batch"), the handler
	// duration, and the HTTP status answered.
	ObserveRequest(endpoint string, d time.Duration, status int)
	// ObserveLabeled is called for every fully-served snapshot that
	// carried complete meter readings, with aligned per-machine slices.
	ObserveLabeled(machineIDs []string, estimated, metered []float64, clusterEst float64, version string)
}

func (c Config) withDefaults() (Config, error) {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 64
	}
	if c.Deadline <= 0 {
		c.Deadline = 250 * time.Millisecond
	}
	if len(c.Names) == 0 {
		return c, fmt.Errorf("serve: config needs the counter name order")
	}
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = 16
	}
	if c.TraceSample == 0 {
		c.TraceSample = 16
	}
	return c, nil
}

// taskResult is one sample's outcome. shadowWatts carries the shadow
// challenger's prediction for the same sample when a mirror is active; it
// never reaches the response payload.
type taskResult struct {
	watts       float64
	version     string
	err         error
	shed        bool
	late        bool
	shadowWatts float64
	shadowOK    bool
}

// pending is the gather side of one estimate request: tasks write their
// slot and signal the WaitGroup; the handler waits for all of them.
type pending struct {
	wg      sync.WaitGroup
	results []taskResult
}

// task is one sample queued on a shard. enqueued/dequeued bound the queue
// wait; at, when non-nil, is the request trace the worker records span
// timings into.
type task struct {
	sample   online.Sample
	deadline time.Time
	idx      int
	req      *pending
	enqueued time.Time
	dequeued time.Time
	at       *obs.ActiveTrace
	// acquired means this sample holds one unit of its shard's adaptive
	// limiter and must release it exactly once on completion.
	acquired bool
}

// shard is one worker's queue plus its per-version predictor cache. Each
// machine hashes to exactly one shard, so the shard's predictors own that
// machine's lag history without cross-shard contention.
type shard struct {
	id    int
	queue chan *task
	depth *obs.Gauge

	// preds caches one predictor per model version; only the worker
	// goroutine touches it.
	preds map[string]*online.Predictor
}

// Server is the serving engine. Create with New, stop with Close.
type Server struct {
	reg    *registry.Registry
	cfg    Config
	shards []*shard

	monitor *online.Monitor
	drifted atomic.Bool

	// ov, when non-nil, owns the per-shard adaptive limiters and the
	// brownout ladder (Config.Overload).
	ov *overload.Controller

	// shadow, when non-nil, is the challenger entry every shard mirrors:
	// workers predict it alongside the champion (one extra batch predict on
	// the shard's own goroutine — no new locks) and the gathered cluster
	// score flows to cfg.ShadowObserve. One atomic load per batch.
	shadow atomic.Pointer[registry.Entry]

	lcMu sync.RWMutex // guards lc
	lc   Lifecycle

	ctlMu sync.RWMutex // guards ctl
	ctl   Control

	closeMu sync.RWMutex // guards shard sends vs Close
	closed  bool
	drained int // tasks still queued when Close began, all answered
	wg      sync.WaitGroup
}

// New builds a serving engine over the registry and starts its workers.
func New(reg *registry.Registry, cfg Config) (*Server, error) {
	if reg == nil {
		return nil, fmt.Errorf("serve: nil registry")
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Server{reg: reg, cfg: cfg}
	if cfg.BaselineRMSE > 0 {
		if s.monitor, err = online.NewMonitor(cfg.BaselineRMSE, cfg.DriftThreshold); err != nil {
			return nil, err
		}
	}
	if cfg.Overload != nil {
		ovcfg := *cfg.Overload
		if ovcfg.Events == nil {
			ovcfg.Events = cfg.Events
		}
		s.ov = overload.NewController(cfg.Shards, ovcfg)
		s.ov.Start()
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{
			id:    i,
			queue: make(chan *task, cfg.QueueDepth),
			depth: obs.Default().Gauge("chaos_serve_queue_depth", obs.Labels{"shard": strconv.Itoa(i)}),
			preds: map[string]*online.Predictor{},
		}
		s.shards = append(s.shards, sh)
		s.wg.Add(1)
		go s.worker(sh)
	}
	return s, nil
}

// Close stops the workers after draining queued tasks (every queued task
// still gets an answer) and makes further estimates fail fast.
func (s *Server) Close() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	for _, sh := range s.shards {
		s.drained += len(sh.queue)
		close(sh.queue)
	}
	s.closeMu.Unlock()
	s.wg.Wait()
	if s.ov != nil {
		s.ov.Close()
	}
}

// Overload exposes the adaptive admission controller, or nil when
// Config.Overload was unset.
func (s *Server) Overload() *overload.Controller { return s.ov }

// BrownoutLevel returns the current brownout rung (0 when adaptive
// admission is disabled).
func (s *Server) BrownoutLevel() int {
	if s.ov == nil {
		return overload.LevelNormal
	}
	return s.ov.Level()
}

// Drained reports how many tasks were still queued when Close began; all
// of them were answered before Close returned (the ordered-shutdown
// accounting the shutdown event reports).
func (s *Server) Drained() int {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	return s.drained
}

// RetryAfterHint estimates how long a shed client should wait before
// retrying: the deepest shard queue, expressed in batch drains (each
// drain clears up to BatchMax samples per BatchWindow). The hint tracks
// actual backlog, so a briefly-full queue asks for a short pause while a
// deep one spreads the retry storm out.
func (s *Server) RetryAfterHint() time.Duration {
	deepest := 0
	for _, sh := range s.shards {
		if d := len(sh.queue); d > deepest {
			deepest = d
		}
	}
	return time.Duration(deepest/s.cfg.BatchMax+1) * s.cfg.BatchWindow
}

// shardFor routes a machine ID to its shard.
func (s *Server) shardFor(machineID string) *shard {
	h := fnv.New32a()
	h.Write([]byte(machineID))
	return s.shards[int(h.Sum32())%len(s.shards)]
}

// Estimate runs one cluster snapshot — one sample per machine — through
// the sharded pool and gathers the per-machine watts. It returns the
// summed cluster estimate, the per-machine map, and the model version(s)
// used. Queue overflow surfaces as ErrOverloaded, an expired deadline as
// ErrDeadline.
func (s *Server) Estimate(samples []online.Sample, deadline time.Duration, metered []float64) (*Result, error) {
	return s.EstimateTraced(samples, deadline, metered, nil)
}

// EstimateTraced is Estimate with a request trace riding along: each
// queued task carries the trace, and the shard workers record
// queue/batch/predict spans into it as the sample moves through the
// pipeline. at may be nil (untraced). The request is admitted at
// Interactive priority.
func (s *Server) EstimateTraced(samples []online.Sample, deadline time.Duration, metered []float64, at *obs.ActiveTrace) (*Result, error) {
	return s.EstimatePriority(samples, deadline, metered, at, overload.Interactive)
}

// EstimatePriority is EstimateTraced with an explicit priority class.
// With adaptive admission enabled the whole snapshot is admitted or shed
// atomically against each touched shard's limiter, so a partially-shed
// request never burns predictor capacity on samples it cannot answer.
func (s *Server) EstimatePriority(samples []online.Sample, deadline time.Duration, metered []float64, at *obs.ActiveTrace, prio overload.Priority) (*Result, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("serve: no samples")
	}
	if deadline <= 0 {
		deadline = s.cfg.Deadline
	}
	now := time.Now()
	due := now.Add(deadline)
	p := &pending{results: make([]taskResult, len(samples))}
	p.wg.Add(len(samples))

	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return nil, fmt.Errorf("serve: server closed")
	}
	if s.ov != nil {
		// All-or-nothing admission: count this snapshot's samples per
		// shard, then acquire each shard's share atomically. On any
		// refusal, roll back what was acquired and shed the request with
		// the limiter's backoff hint.
		counts := make([]int, len(s.shards))
		for i := range samples {
			counts[s.shardFor(samples[i].MachineID).id]++
		}
		for id, n := range counts {
			if n == 0 {
				continue
			}
			dec := s.ov.LimiterFor(id).AcquireN(prio, n)
			if dec.Admit {
				continue
			}
			for j := 0; j < id; j++ {
				if counts[j] > 0 {
					s.ov.LimiterFor(j).Cancel(counts[j])
				}
			}
			s.closeMu.RUnlock()
			shedTotal.Add(float64(len(samples)))
			at.Span("shed", now, 0, obs.String("reason", "limiter"),
				obs.String("priority", prio.String()))
			return &Result{Shed: len(samples), RetryAfter: dec.RetryAfter}, ErrOverloaded
		}
	}
	for i := range samples {
		t := &task{sample: samples[i], deadline: due, idx: i, req: p, enqueued: now, at: at, acquired: s.ov != nil}
		sh := s.shardFor(samples[i].MachineID)
		select {
		case sh.queue <- t:
			sh.depth.Set(float64(len(sh.queue)))
		default:
			// Bounded queue full: shed instead of queueing unboundedly.
			if t.acquired {
				s.ov.LimiterFor(sh.id).Cancel(1)
			}
			shedTotal.Inc()
			at.Span("shed", now, 0, obs.String("machine", samples[i].MachineID))
			p.results[i] = taskResult{shed: true}
			p.wg.Done()
		}
	}
	s.closeMu.RUnlock()
	p.wg.Wait()

	res := &Result{PerMachine: make(map[string]float64, len(samples))}
	versions := map[string]bool{}
	var shadowSum float64
	shadowN := 0
	for i, tr := range p.results {
		switch {
		case tr.shed:
			res.Shed++
		case tr.late:
			res.Late++
		case tr.err != nil:
			res.Err = tr.err
		default:
			res.PerMachine[samples[i].MachineID] = tr.watts
			res.ClusterWatts += tr.watts
			versions[tr.version] = true
			if tr.shadowOK {
				shadowSum += tr.shadowWatts
				shadowN++
			}
		}
	}
	for v := range versions {
		res.Versions = append(res.Versions, v)
	}
	sort.Strings(res.Versions)
	if res.Shed > 0 {
		return res, ErrOverloaded
	}
	if res.Late > 0 {
		return res, ErrDeadline
	}
	if res.Err != nil {
		return res, res.Err
	}
	s.observe(res, samples, metered, shadowSum, shadowN)
	return res, nil
}

// observe feeds a fully-served snapshot with complete meter readings into
// the drift monitor, the shadow-mirror score stream, and the labeled-
// snapshot hook.
func (s *Server) observe(res *Result, samples []online.Sample, metered []float64, shadowSum float64, shadowN int) {
	if len(metered) != len(samples) {
		return
	}
	var actual float64
	for _, w := range metered {
		actual += w
	}
	if s.monitor != nil && s.monitor.Observe(res.ClusterWatts, actual) && !s.drifted.Swap(true) {
		serveDrift.Inc()
		if s.cfg.Events != nil {
			s.cfg.Events.Emit("drift", map[string]any{ //nolint:errcheck // telemetry only
				"residual_x": s.monitor.EWMA(),
				"source":     "serve",
			})
		}
	}
	// Only fully mirrored snapshots score the shadow: a partial mirror
	// (mirror started mid-snapshot, or one shard's shadow predictor failed)
	// would bias the cluster-level comparison.
	if s.cfg.ShadowObserve != nil && shadowN == len(samples) {
		s.cfg.ShadowObserve(res.ClusterWatts, shadowSum, actual)
	}
	if s.cfg.Labeled != nil {
		s.cfg.Labeled(samples, metered, res.ClusterWatts, res.Version())
	}
	if s.cfg.Observer != nil {
		// Same feed point as Labeled, but with the per-machine estimates
		// broken out — the accuracy-SLO tracker scores machines
		// individually.
		ids := make([]string, len(samples))
		est := make([]float64, len(samples))
		for i := range samples {
			ids[i] = samples[i].MachineID
			est[i] = res.PerMachine[ids[i]]
		}
		s.cfg.Observer.ObserveLabeled(ids, est, metered, res.ClusterWatts, res.Version())
	}
}

// Drifted reports whether the serve-path drift monitor has alarmed.
func (s *Server) Drifted() bool { return s.drifted.Load() }

// ResetDrift clears the drift alarm and re-arms the monitor on fresh
// residuals (the lifecycle orchestrator calls this after each verdict so
// a resolved drift does not immediately re-trigger).
func (s *Server) ResetDrift() {
	if s.monitor != nil {
		s.monitor.Reset()
	}
	s.drifted.Store(false)
}

// StartShadow begins mirroring live traffic against the named registry
// version: every shard predicts it alongside the champion, and fully
// mirrored metered snapshots flow to Config.ShadowObserve. Shadow
// predictions are never returned to clients.
func (s *Server) StartShadow(version string) error {
	e, ok := s.reg.Get(version)
	if !ok {
		return fmt.Errorf("serve: unknown shadow version %q", version)
	}
	if err := s.ValidateCompatible(e); err != nil {
		return err
	}
	s.shadow.Store(e)
	return nil
}

// StopShadow ends the mirror.
func (s *Server) StopShadow() { s.shadow.Store(nil) }

// ShadowVersion returns the version being mirrored, or "" when none.
func (s *Server) ShadowVersion() string {
	if e := s.shadow.Load(); e != nil {
		return e.Version
	}
	return ""
}

// Result is the outcome of one Estimate call.
type Result struct {
	ClusterWatts float64
	PerMachine   map[string]float64
	Versions     []string // model versions that served this snapshot (1 unless a swap landed mid-flight)
	Shed         int
	Late         int
	Err          error
	// RetryAfter is the adaptive limiter's backoff hint when the request
	// was shed by admission control; zero otherwise (the HTTP layer falls
	// back to the queue-depth hint).
	RetryAfter time.Duration
}

// Version returns the single serving version, or a "+"-joined list when a
// hot-swap landed mid-snapshot.
func (r *Result) Version() string {
	switch len(r.Versions) {
	case 0:
		return ""
	case 1:
		return r.Versions[0]
	}
	out := r.Versions[0]
	for _, v := range r.Versions[1:] {
		out += "+" + v
	}
	return out
}

// Sentinel errors the HTTP layer maps to status codes.
var (
	ErrOverloaded = fmt.Errorf("serve: queue full, request shed")
	ErrDeadline   = fmt.Errorf("serve: deadline exceeded before processing")
	ErrNoModel    = fmt.Errorf("serve: no active model")
)

// worker drains one shard: it picks up the first queued task, widens the
// batch for up to BatchWindow (or BatchMax samples), then predicts the
// whole batch under one predictor lock — amortizing queue wakeups, the
// registry load, and feature-row construction bookkeeping across every
// sample that arrived in the window.
func (s *Server) worker(sh *shard) {
	defer s.wg.Done()
	for {
		t, ok := <-sh.queue
		if !ok {
			return
		}
		t.dequeued = time.Now()
		batch := []*task{t}
		window := s.cfg.BatchWindow
		if s.ov != nil && s.ov.Level() >= overload.LevelTrim {
			// Brownout rung 1: shrink the fill window so queued work
			// drains with less artificial batching latency.
			window /= 4
			if window < 50*time.Microsecond {
				window = 50 * time.Microsecond
			}
		}
		timer := time.NewTimer(window)
	fill:
		for len(batch) < s.cfg.BatchMax {
			select {
			case t2, ok := <-sh.queue:
				if !ok {
					break fill
				}
				t2.dequeued = time.Now()
				batch = append(batch, t2)
			case <-timer.C:
				break fill
			}
		}
		timer.Stop()
		sh.depth.Set(float64(len(sh.queue)))
		s.process(sh, batch)
	}
}

// finish answers one task and returns its limiter admission, feeding the
// sample's observed queue+predict latency into the shard's gradient (late
// and failed tasks included — their latency is exactly the congestion
// signal the limiter adapts on).
func (s *Server) finish(sh *shard, t *task, r taskResult) {
	if t.acquired {
		s.ov.LimiterFor(sh.id).Release(time.Since(t.enqueued))
	}
	t.req.results[t.idx] = r
	t.req.wg.Done()
}

// process predicts one batch against the currently active model version.
func (s *Server) process(sh *shard, batch []*task) {
	batchSizeHist.Observe(float64(len(batch)))
	entry := s.reg.Active()
	now := time.Now()

	// Answer expired and model-less tasks without touching the predictor.
	live := batch[:0]
	for _, t := range batch {
		switch {
		case now.After(t.deadline):
			deadlineTotal.Inc()
			t.at.Span("queue", t.enqueued, t.dequeued.Sub(t.enqueued),
				obs.String("machine", t.sample.MachineID), obs.Int("shard", sh.id),
				obs.String("outcome", "late"))
			s.finish(sh, t, taskResult{late: true})
		case entry == nil:
			s.finish(sh, t, taskResult{err: ErrNoModel})
		default:
			live = append(live, t)
		}
	}
	if len(live) == 0 {
		return
	}

	pred, err := s.predictorFor(sh, entry)
	if err != nil {
		for _, t := range live {
			s.finish(sh, t, taskResult{err: err})
		}
		return
	}
	samples := make([]online.Sample, len(live))
	traced := false
	for i, t := range live {
		samples[i] = t.sample
		if t.at != nil {
			traced = true
		}
	}
	predictStart := time.Now()
	if s.cfg.PredictStall > 0 {
		time.Sleep(s.cfg.PredictStall)
	}
	items := pred.PredictBatch(samples)
	predictDur := time.Since(predictStart)
	if traced {
		// One queue/batch/predict span chain per traced machine-sample:
		// queue is this task's own wait, batch the window it sat in while
		// the worker widened the pickup, predict the shared batch predict.
		for _, t := range live {
			if t.at == nil {
				continue
			}
			machine := obs.String("machine", t.sample.MachineID)
			t.at.Span("queue", t.enqueued, t.dequeued.Sub(t.enqueued),
				machine, obs.Int("shard", sh.id))
			t.at.Span("batch", t.dequeued, predictStart.Sub(t.dequeued),
				machine, obs.Int("batch_size", len(batch)))
			t.at.Span("predict", predictStart, predictDur,
				machine, obs.String("version", entry.Version))
		}
	}

	// Mirror the batch against the shadow challenger, if one is active.
	// Same samples, same shard goroutine, its own per-shard predictor (own
	// lag history) — one extra PredictBatch, no new lock contention. A
	// shadow predictor failure silently skips the mirror for this batch;
	// the serving path is never affected.
	// Brownout rung 2 pauses the mirror: under pressure, the champion's
	// capacity must not be spent double-predicting for the challenger.
	var shadowItems []online.BatchItem
	if se := s.shadow.Load(); se != nil && se.Version != entry.Version &&
		(s.ov == nil || s.ov.Level() < overload.LevelShedAux) {
		if sp, err := s.predictorFor(sh, se); err == nil {
			shadowItems = sp.PredictBatch(samples)
		}
	}
	for i, t := range live {
		if items[i].Err != nil {
			s.finish(sh, t, taskResult{err: items[i].Err})
		} else {
			samplesServed.Inc()
			tr := taskResult{watts: items[i].Watts, version: entry.Version}
			if shadowItems != nil && shadowItems[i].Err == nil {
				tr.shadowWatts = shadowItems[i].Watts
				tr.shadowOK = true
			}
			s.finish(sh, t, tr)
		}
	}
}

// predictorFor returns the shard's predictor for the entry's version,
// building (and caching) it on first use after a hot-swap. Old versions'
// predictors are pruned lazily so an activate/rollback ping-pong cannot
// grow the cache without bound.
func (s *Server) predictorFor(sh *shard, entry *registry.Entry) (*online.Predictor, error) {
	if p, ok := sh.preds[entry.Version]; ok {
		return p, nil
	}
	p, err := online.NewPredictor(entry.Model, s.cfg.Names)
	if err != nil {
		return nil, fmt.Errorf("serve: model %s incompatible with stream: %w", entry.Version, err)
	}
	swapPredictors.Inc()
	if len(sh.preds) >= 8 {
		// Prune everything except the versions still in play: the entry
		// being built, the active champion, and the shadow challenger (so
		// mirroring never evicts the mirror's own lag history).
		keep := map[string]bool{entry.Version: true}
		if ae := s.reg.Active(); ae != nil {
			keep[ae.Version] = true
		}
		if se := s.shadow.Load(); se != nil {
			keep[se.Version] = true
		}
		for v := range sh.preds {
			if !keep[v] {
				delete(sh.preds, v)
			}
		}
	}
	sh.preds[entry.Version] = p
	return p, nil
}

// ValidateCompatible checks that a model can serve the configured counter
// stream — run at admission time so activation can never install a model
// the shards would reject.
func (s *Server) ValidateCompatible(e *registry.Entry) error {
	_, err := online.NewPredictor(e.Model, s.cfg.Names)
	if err != nil {
		return fmt.Errorf("serve: model %s incompatible with stream: %w", e.Version, err)
	}
	return nil
}

// Registry exposes the underlying model registry (for the HTTP layer).
func (s *Server) Registry() *registry.Registry { return s.reg }
