// chaos-serve is the power-prediction serving daemon: it loads (or
// bootstraps) cluster power models into a versioned registry and serves
// the /v1 estimation API — single-snapshot and batched endpoints, model
// listing, and atomic hot-swap/rollback — on one listener together with
// /metrics, /healthz, and pprof. Requests fan out over a worker pool
// sharded by machine ID, batch inside a short window, and shed with 429
// when the bounded queues fill.
//
// With -lifecycle the daemon closes the loop: labeled traffic feeds
// retrain buffers, drift (or -lifecycle-interval / -lifecycle-samples /
// POST /v1/lifecycle/retrain) triggers a challenger fit off the hot path,
// the challenger is shadow-scored against the live champion on mirrored
// traffic, promoted only if it wins by -promote-margin, and rolled back
// automatically if it regresses inside the -probation window. Poll
// /v1/lifecycle/status for the state machine.
//
// With -loadgen the process instead replays simulated cluster telemetry
// against its own API at a configurable rate multiplier and prints
// throughput, tail latency, shed counts, and accuracy — the in-repo way
// to measure the serving path. -swap-every rotates model versions
// mid-load; -faults routes the replay through the resilient client-side
// collector.
//
// Usage:
//
//	chaos-serve -listen :8080 -model model.json
//	chaos-serve -loadgen -machines 3 -workloads Prime,Sort -snapshots 2000 -batch 16
//	chaos-serve -loadgen -swap-every 200 -faults examples/faults-crashy.json -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/dist"
	"repro/internal/faults"
	"repro/internal/lifecycle"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/registry"
	"repro/internal/serve"
	"repro/internal/slo"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// config collects one chaos-serve invocation.
type config struct {
	Listen string
	Models []string // model JSON files; empty bootstraps from simulation
	JSON   bool

	// Engine tuning.
	Shards      int
	Queue       int
	BatchWindow time.Duration
	BatchMax    int
	Deadline    time.Duration
	// Overload turns on adaptive admission: per-shard AIMD concurrency
	// limits, strict-priority shedding, and the brownout ladder.
	Overload bool

	// Bootstrap simulation (when no -model given) and loadgen substrate.
	Platform  string
	Machines  int
	Workloads []string
	Seed      int64
	Tech      string

	// Load generator.
	Loadgen   bool
	Rate      float64
	Snapshots int
	Clients   int
	Batch     int
	SwapEvery int
	Faults    string
	// Priorities is the loadgen tier mix "interactive,batch,background"
	// (integer weights); empty sends everything interactive.
	Priorities string

	// Closed-loop model lifecycle.
	Lifecycle         bool
	LifecycleInterval time.Duration
	LifecycleSamples  int
	PromoteMargin     float64
	Probation         int

	// Distributed serving: a static peer fleet with rendezvous
	// partitioning, a scatter-gather front door, and journal replication.
	Peers         string
	NodeID        string
	ReplicateFrom string
	PeerDeadline  time.Duration
	// Deadline-budget propagation and hedged scatter-gather.
	ClusterDeadline time.Duration
	BudgetMargin    time.Duration
	HedgeRate       float64

	// Durable state: when StateDir is set the registry journals to disk
	// and the lifecycle checkpoints, so a crash or restart resumes the
	// exact pre-crash model state.
	StateDir           string
	CheckpointInterval time.Duration

	// Request tracing: every request carrying a traceparent header is
	// traced; the rest are sampled 1-in-TraceSample.
	TraceSample int
	TraceBuffer int
	TraceSlow   time.Duration

	// Live accuracy/latency SLOs (0 disables each objective).
	SLODre    float64
	SLOP99    time.Duration
	SLOWindow int

	// EventLog tees JSON events into a size-capped rotating file,
	// independent of the console format.
	EventLog         string
	EventLogMaxBytes int64

	// holdOpen, when set, runs after the server is up (daemon mode) in
	// place of waiting for a signal — tests probe the API through it.
	holdOpen func(addr string)
	// scenario overrides Faults (tests inject without a file).
	scenario *faults.Scenario
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("chaos-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen      = fs.String("listen", "127.0.0.1:8080", "serve the /v1 API, /metrics, /healthz, and pprof on this address")
		model       = fs.String("model", "", "comma-separated model JSON files (versions v1,v2,...); empty trains a bootstrap model from simulation")
		jsonOut     = fs.Bool("json", false, "emit machine-readable JSON event lines")
		shards      = fs.Int("shards", 4, "worker shards (machine-ID hash)")
		queue       = fs.Int("queue", 256, "per-shard bounded queue depth (full = 429)")
		batchWindow = fs.Duration("batch-window", 2*time.Millisecond, "how long a worker widens a batch after the first sample")
		batchMax    = fs.Int("batch-max", 64, "max samples per predictor batch")
		deadline    = fs.Duration("deadline", 250*time.Millisecond, "default per-request deadline")
		platform    = fs.String("platform", "Core2", "bootstrap/loadgen platform class")
		machines    = fs.Int("machines", 3, "bootstrap/loadgen cluster size")
		workloads   = fs.String("workloads", "Prime,Sort", "bootstrap/loadgen workload sequence")
		seed        = fs.Int64("seed", 7, "simulation seed")
		tech        = fs.String("tech", "linear", "bootstrap model technique: linear, piecewise, quadratic, switching")
		loadgen     = fs.Bool("loadgen", false, "replay simulated telemetry against the API and print throughput/latency stats")
		rate        = fs.Float64("rate", 0, "loadgen snapshots/sec (0 = as fast as the API absorbs)")
		snapshots   = fs.Int("snapshots", 2000, "loadgen snapshots to send")
		clients     = fs.Int("clients", 4, "loadgen concurrent senders")
		batch       = fs.Int("batch", 1, "loadgen snapshots per request (1 = /v1/estimate, >1 = /v1/estimate/batch)")
		swapEvery   = fs.Int("swap-every", 0, "loadgen: hot-swap model versions every N snapshots (0 = off)")
		faultsArg   = fs.String("faults", "", "loadgen: fault scenario JSON for the client-side feeder")
		overloadOn  = fs.Bool("overload", false, "adaptive overload control: per-shard AIMD admission, strict-priority shedding, brownout ladder")
		priorities  = fs.String("priorities", "", "loadgen tier mix as integer weights interactive,batch,background (e.g. 1,2,2); empty = all interactive")

		lcEnable   = fs.Bool("lifecycle", false, "run the closed-loop model lifecycle: drift-triggered retraining, shadow evaluation, gated promotion")
		lcInterval = fs.Duration("lifecycle-interval", 0, "lifecycle: also retrain every wall-clock period (0 = drift/samples/manual only)")
		lcSamples  = fs.Int("lifecycle-samples", 0, "lifecycle: also retrain every N labeled snapshots (0 = off)")
		lcMargin   = fs.Float64("promote-margin", 0.05, "lifecycle: challenger must beat the champion's dynamic-range error by this fraction to promote")
		lcProbe    = fs.Int("probation", 64, "lifecycle: labeled snapshots the promoted model is watched for before rollback is off the table (0 = no probation)")

		peersArg      = fs.String("peers", "", "static fleet list id=host:port,... — enables distributed serving (requires -node-id naming this node)")
		nodeIDArg     = fs.String("node-id", "", "this node's peer ID within -peers")
		replicateFrom = fs.String("replicate-from", "", "leader base URL (http://host:port) to replicate the model registry from; requires -state-dir")
		peerDeadline  = fs.Duration("peer-deadline", 500*time.Millisecond, "scatter-gather per-peer deadline (a slower peer's machines go missing from the merged answer)")
		clusterDL     = fs.Duration("cluster-deadline", 2*time.Second, "whole-request budget for /v1/estimate/cluster when the client sends no deadline_ms")
		budgetMargin  = fs.Duration("budget-margin", 25*time.Millisecond, "per-hop deadline budget reserved for merging; withheld from every forwarded sub-deadline")
		hedgeRate     = fs.Float64("hedge-rate", 0.1, "hedged scatter-gather: backup calls per primary call the token budget allows (negative disables hedging)")

		stateDir   = fs.String("state-dir", "", "durable state directory: journal model admissions/activations and checkpoint the lifecycle so restarts resume the pre-crash state")
		ckInterval = fs.Duration("checkpoint-interval", 10*time.Second, "how often the lifecycle state checkpoints to -state-dir")

		traceSample = fs.Int("trace-sample", 16, "trace 1 in N requests (traceparent-carrying requests always trace; <0 traces none)")
		traceBuffer = fs.Int("trace-buffer", 256, "recent traces kept for /debug/traces (slow/error traces keep an extra reserved ring)")
		traceSlow   = fs.Duration("trace-slow", 250*time.Millisecond, "traces at least this slow are retained past the recent ring")

		sloDre    = fs.Float64("slo-dre", 0, "accuracy SLO: max rolling cluster dynamic-range error (0 = off)")
		sloP99    = fs.Duration("slo-p99", 0, "latency SLO: max rolling p99 request latency (0 = off)")
		sloWindow = fs.Int("slo-window", 64, "SLO fast-window observation count (slow window is 4x)")

		eventLog      = fs.String("event-log", "", "also write JSON events to this file, rotated by size (keeps one .1 generation)")
		eventLogBytes = fs.Int64("event-log-max-bytes", 8<<20, "rotate -event-log after this many bytes")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	cfg := config{
		Listen: *listen, JSON: *jsonOut,
		Shards: *shards, Queue: *queue, BatchWindow: *batchWindow, BatchMax: *batchMax, Deadline: *deadline,
		Platform: *platform, Machines: *machines, Workloads: strings.Split(*workloads, ","), Seed: *seed, Tech: *tech,
		Loadgen: *loadgen, Rate: *rate, Snapshots: *snapshots, Clients: *clients, Batch: *batch,
		SwapEvery: *swapEvery, Faults: *faultsArg, Overload: *overloadOn, Priorities: *priorities,
		Peers: *peersArg, NodeID: *nodeIDArg, ReplicateFrom: *replicateFrom, PeerDeadline: *peerDeadline,
		ClusterDeadline: *clusterDL, BudgetMargin: *budgetMargin, HedgeRate: *hedgeRate,
		Lifecycle: *lcEnable, LifecycleInterval: *lcInterval, LifecycleSamples: *lcSamples,
		PromoteMargin: *lcMargin, Probation: *lcProbe,
		StateDir: *stateDir, CheckpointInterval: *ckInterval,
		TraceSample: *traceSample, TraceBuffer: *traceBuffer, TraceSlow: *traceSlow,
		SLODre: *sloDre, SLOP99: *sloP99, SLOWindow: *sloWindow,
		EventLog: *eventLog, EventLogMaxBytes: *eventLogBytes,
	}
	if *model != "" {
		cfg.Models = strings.Split(*model, ",")
	}
	if err := run(stdout, cfg); err != nil {
		fmt.Fprintln(stderr, "chaos-serve:", err)
		return 1
	}
	return 0
}

// emitter mirrors chaos-live: text lines and/or JSON events. Both
// outputs can be live at once — a text console with a JSON -event-log.
type emitter struct {
	w    io.Writer
	sink *obs.EventSink
}

func (e *emitter) event(name, text string, fields map[string]any) error {
	if e.sink != nil {
		if err := e.sink.Emit(name, fields); err != nil {
			return err
		}
	}
	if e.w != nil {
		_, err := fmt.Fprintln(e.w, text)
		return err
	}
	return nil
}

func run(w io.Writer, cfg config) error {
	obs.RegisterBuildInfo(obs.Default())

	if cfg.Peers != "" && cfg.NodeID == "" {
		return fmt.Errorf("-peers requires -node-id naming this node in the fleet")
	}
	if cfg.ReplicateFrom != "" && cfg.StateDir == "" {
		return fmt.Errorf("-replicate-from requires -state-dir: the follower journals replicated state locally")
	}

	// Events flow to the console (text or JSON) and, independently, to a
	// size-capped rotating JSON log when -event-log is set.
	em := &emitter{w: w}
	var sinkWriters []io.Writer
	if cfg.JSON {
		sinkWriters = append(sinkWriters, w)
	}
	if cfg.EventLog != "" {
		rw, err := obs.NewRotatingWriter(cfg.EventLog, cfg.EventLogMaxBytes, nil)
		if err != nil {
			return err
		}
		defer rw.Close()
		sinkWriters = append(sinkWriters, rw)
	}
	var sink *obs.EventSink
	if len(sinkWriters) > 0 {
		sink = obs.NewEventSink(io.MultiWriter(sinkWriters...))
		em.sink = sink
		if cfg.JSON {
			em.w = nil // the console already receives JSON via the sink
		}
	}

	// The registry: journal-backed when -state-dir is set, in-memory
	// otherwise. A populated state dir recovers the pre-crash model set
	// and active version instead of re-bootstrapping.
	var reg *registry.Registry
	var recov *registry.Recovery
	if cfg.StateDir != "" {
		var err error
		reg, recov, err = registry.Open(filepath.Join(cfg.StateDir, "models"), registry.OpenOptions{})
		if err != nil {
			return err
		}
		defer reg.Close()
		if recov.Journal.TruncatedRecords > 0 || recov.Journal.TruncatedBytes > 0 {
			if err := em.event("journal_truncated",
				fmt.Sprintf("recovery truncated a torn journal tail: %d record(s), %d byte(s)",
					recov.Journal.TruncatedRecords, recov.Journal.TruncatedBytes),
				map[string]any{"records": recov.Journal.TruncatedRecords,
					"bytes": recov.Journal.TruncatedBytes}); err != nil {
				return err
			}
		}
		if recov.Journal.QuarantineFile != "" {
			if err := em.event("segment_quarantined",
				fmt.Sprintf("recovery quarantined a corrupt journal segment: %d byte(s) preserved in %s",
					recov.Journal.QuarantinedBytes, recov.Journal.QuarantineFile),
				map[string]any{"file": recov.Journal.QuarantineFile,
					"bytes": recov.Journal.QuarantinedBytes}); err != nil {
				return err
			}
		}
	} else {
		reg = registry.New()
	}
	recovered := recov != nil && recov.Versions > 0

	var names []string
	var traces []*trace.Trace
	var baseline float64

	switch {
	case recovered:
		// The models came back from the journal; the counter order and
		// drift baseline come from the meta document written at first boot.
		meta, err := readStateMeta(cfg.StateDir)
		if err != nil {
			return err
		}
		names = meta.Names
		baseline = meta.BaselineRMSE
		if cfg.Loadgen {
			if traces, err = simTraces(cfg); err != nil {
				return err
			}
		}
	case len(cfg.Models) > 0:
		// Daemon with pre-trained models: v1, v2, ... in flag order; the
		// first admitted version serves.
		for i, path := range cfg.Models {
			version := fmt.Sprintf("v%d", i+1)
			if err := reg.LoadFile(version, path); err != nil {
				return err
			}
		}
		// The counter stream order is the standard registry's.
		names = counters.StandardRegistry().Names()
		if cfg.Loadgen {
			var err error
			if traces, err = simTraces(cfg); err != nil {
				return err
			}
			names = traces[0].Names
		}
	case cfg.ReplicateFrom != "":
		// Replica first boot: every model arrives through replication, so
		// nothing is bootstrapped here. The counter order is the standard
		// registry's — the same order the simulation substrate emits, so a
		// sim-bootstrapped leader and its replicas interpret rows alike.
		names = counters.StandardRegistry().Names()
	default:
		// Bootstrap: simulate the cluster, fit v1 with the chosen
		// technique and v2 linear (the swap/rollback partner), admit both.
		var err error
		if traces, err = simTraces(cfg); err != nil {
			return err
		}
		names = traces[0].Names
		if baseline, err = bootstrapModels(reg, traces, models.Technique(cfg.Tech)); err != nil {
			return err
		}
		if err := em.event("trained",
			fmt.Sprintf("bootstrapped %s model v1 (+linear v2) on %s; baseline rMSE %.2f W",
				cfg.Tech, strings.Join(cfg.Workloads, "+"), baseline),
			map[string]any{"technique": cfg.Tech, "baseline_rmse_w": round2(baseline),
				"versions": reg.Len()}); err != nil {
			return err
		}
	}
	if cfg.StateDir != "" && !recovered {
		// First boot on this state dir: persist what recovery will need.
		if err := writeStateMeta(cfg.StateDir, stateMeta{
			Names: names, BaselineRMSE: baseline, Tech: cfg.Tech,
		}); err != nil {
			return err
		}
	}

	// Request tracing: the store always exists so /debug/traces is live;
	// -trace-sample governs how much untagged traffic lands in it.
	traceStore := obs.NewTraceStore(cfg.TraceBuffer, cfg.TraceSlow)

	scfg := serve.Config{
		Shards: cfg.Shards, QueueDepth: cfg.Queue,
		BatchWindow: cfg.BatchWindow, BatchMax: cfg.BatchMax, Deadline: cfg.Deadline,
		Names: names, BaselineRMSE: baseline, Events: sink,
		Traces: traceStore, TraceSample: cfg.TraceSample,
	}
	if cfg.Overload {
		scfg.Overload = &overload.Config{Events: sink}
	}
	// Distributed mode: the partition decides which machines this node
	// answers for; the engine rejects the rest with a 421 redirect hint.
	var peers []dist.Peer
	var part *dist.Partition
	if cfg.Peers != "" {
		var err error
		if peers, err = dist.ParsePeers(cfg.Peers); err != nil {
			return err
		}
		if part, err = dist.NewPartition(cfg.NodeID, peers); err != nil {
			return err
		}
		scfg.Owner = func(machineID string) (string, string, bool) {
			p := part.Owner(machineID)
			return p.ID, p.Addr, p.ID == cfg.NodeID
		}
	}
	// Live SLOs ride the serving path's own observation streams.
	if cfg.SLODre > 0 || cfg.SLOP99 > 0 {
		scfg.Observer = slo.NewTracker(slo.Config{
			DREObjective: cfg.SLODre, P99Objective: cfg.SLOP99,
			FastWindow: cfg.SLOWindow, Events: sink,
		})
	}
	// The orchestrator is built before the engine so its Ingest and
	// ObserveShadow hooks can ride along in the serve config; it is started
	// (and bound to the engine) right after. With a state dir, the last
	// checkpoint restores BEFORE Start so a mid-probation restart resumes
	// probation instead of skipping it.
	var orch *lifecycle.Orchestrator
	var ck *store.Checkpointer
	lifecycleState := ""
	if cfg.Lifecycle {
		fromFiles := len(cfg.Models) > 0 || recovered
		spec, err := lifecycleSpec(reg, fromFiles)
		if err != nil {
			return err
		}
		orch, err = lifecycle.New(reg, lifecycle.Config{
			Tech: models.Technique(cfg.Tech), Spec: spec, Names: names,
			Interval: cfg.LifecycleInterval, TriggerSamples: cfg.LifecycleSamples,
			PromoteMargin: cfg.PromoteMargin, ProbationSnapshots: cfg.Probation,
			Events: sink,
		})
		if err != nil {
			return err
		}
		if cfg.StateDir != "" {
			ckPath := filepath.Join(cfg.StateDir, "lifecycle.ckpt")
			if data, err := os.ReadFile(ckPath); err == nil {
				if rerr := orch.RestoreCheckpoint(data); rerr != nil {
					// A stale or incompatible checkpoint must not block boot;
					// the loop restarts fresh and the fact is reported.
					if err := em.event("lifecycle_error",
						"lifecycle checkpoint not restored: "+rerr.Error(),
						map[string]any{"stage": "restore", "error": rerr.Error()}); err != nil {
						return err
					}
				} else {
					lifecycleState = orch.Status().State
				}
			} else if !os.IsNotExist(err) {
				return fmt.Errorf("reading lifecycle checkpoint: %w", err)
			}
			interval := cfg.CheckpointInterval
			if interval <= 0 {
				interval = 10 * time.Second
			}
			if ck, err = store.NewCheckpointer(ckPath, interval, orch.MarshalCheckpoint); err != nil {
				return err
			}
			defer ck.Close()
		}
		scfg.Labeled = orch.Ingest
		scfg.ShadowObserve = orch.ObserveShadow
	}
	if recovered {
		if err := em.event("recovered",
			fmt.Sprintf("recovered %d model version(s) from %s; active %s",
				recov.Versions, cfg.StateDir, recov.Active),
			map[string]any{"versions": recov.Versions, "active": recov.Active,
				"from_snapshot": recov.FromSnapshot, "skipped_records": recov.SkippedRecords,
				"truncated_records": recov.Journal.TruncatedRecords,
				"lifecycle_state":   lifecycleState}); err != nil {
			return err
		}
	}
	srv, err := serve.New(reg, scfg)
	if err != nil {
		return err
	}
	defer srv.Close()
	if orch != nil {
		if err := orch.Start(srv); err != nil {
			return err
		}
		defer orch.Close()
		srv.AttachLifecycle(orch)
	}
	// One mux carries the whole node: the /v1 serving API plus, in
	// distributed mode, the cluster front door and — on any persistent
	// node — the replication endpoints (leadership is just being the node
	// others point -replicate-from at).
	mux := serve.NewMux(srv)
	if part != nil {
		scen := cfg.scenario
		if scen == nil && cfg.Faults != "" && !cfg.Loadgen {
			var err error
			if scen, err = faults.LoadScenario(cfg.Faults); err != nil {
				return err
			}
		}
		var inj *faults.Injector
		if scen != nil {
			var err error
			if inj, err = faults.NewInjector(scen, cfg.Seed); err != nil {
				return err
			}
		}
		node, err := dist.NewNode(dist.Config{
			Self: cfg.NodeID, Peers: peers, Local: srv,
			PeerDeadline: cfg.PeerDeadline, ClusterDeadline: cfg.ClusterDeadline,
			BudgetMargin: cfg.BudgetMargin, HedgeRate: cfg.HedgeRate,
			Level: srv.BrownoutLevel, Events: sink, Injector: inj,
		})
		if err != nil {
			return err
		}
		node.Mount(mux)
	}
	if reg.Persistent() {
		dist.MountReplication(mux, reg)
	}
	httpSrv, err := serve.ServeHandler(cfg.Listen, mux)
	if err != nil {
		return err
	}
	defer httpSrv.Close()

	if cfg.ReplicateFrom != "" {
		fol, err := dist.StartFollower(dist.FollowerConfig{
			LeaderURL: cfg.ReplicateFrom, Registry: reg,
			CheckpointPath: filepath.Join(cfg.StateDir, "replication.ckpt"),
			Seed:           cfg.Seed, NodeID: cfg.NodeID, Events: sink,
		})
		if err != nil {
			return err
		}
		// Deferred before the registry's own deferred Close, so the tail
		// loop stops applying before the journal is released.
		defer fol.Close()
	}

	if err := em.event("serving",
		fmt.Sprintf("serving /v1 API and /metrics on http://%s (active model %s)",
			httpSrv.Addr(), reg.ActiveVersion()),
		map[string]any{"addr": httpSrv.Addr(), "active": reg.ActiveVersion(),
			"shards": cfg.Shards, "queue": cfg.Queue, "node": cfg.NodeID}); err != nil {
		return err
	}

	if cfg.Loadgen {
		return runLoadgen(em, httpSrv.Addr(), reg, traces, cfg)
	}
	if cfg.holdOpen != nil {
		cfg.holdOpen(httpSrv.Addr())
		return nil
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig

	// Ordered graceful shutdown: stop intake, drain the shards (every
	// queued request still gets an answer), stop the lifecycle loop, take
	// the final checkpoint, and only then let the deferred reg.Close
	// release the journal. Every step is idempotent against the deferred
	// closes that follow the return.
	httpSrv.Close()
	srv.Close()
	if orch != nil {
		orch.Close()
	}
	ckBytes := 0
	if ck != nil {
		ck.Close()
		n, err := ck.Flush()
		if err != nil {
			return fmt.Errorf("final checkpoint: %w", err)
		}
		ckBytes = n
	}
	return em.event("shutdown",
		fmt.Sprintf("shut down cleanly: drained %d queued sample(s), checkpointed %d byte(s), active model %s",
			srv.Drained(), ckBytes, reg.ActiveVersion()),
		map[string]any{"drained_samples": srv.Drained(), "checkpoint_bytes": ckBytes,
			"active": reg.ActiveVersion()})
}

// stateMeta is the small document beside the journal that recovery needs
// but the journal does not carry: the counter-stream order and the drift
// baseline the serving engine was configured with at first boot.
type stateMeta struct {
	Names        []string `json:"names"`
	BaselineRMSE float64  `json:"baseline_rmse"`
	Tech         string   `json:"tech,omitempty"`
}

func writeStateMeta(dir string, m stateMeta) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return store.WriteFileAtomic(filepath.Join(dir, "meta.json"), data, 0o644)
}

func readStateMeta(dir string) (stateMeta, error) {
	var m stateMeta
	data, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return m, fmt.Errorf("state dir has models but no readable meta.json: %w", err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("parsing %s/meta.json: %w", dir, err)
	}
	if len(m.Names) == 0 {
		return m, fmt.Errorf("%s/meta.json carries no counter names", dir)
	}
	return m, nil
}

// lifecycleSpec picks the feature spec lifecycle challengers are fitted
// on: the bootstrap spec when simulating, otherwise the active model's
// own spec (platforms of one version share a spec; the lowest-sorted
// platform's copy is representative).
func lifecycleSpec(reg *registry.Registry, fromFiles bool) (models.FeatureSpec, error) {
	if !fromFiles {
		return core.ClusterSpec([]string{counters.CPUTotal, counters.CPUFreqCore0}), nil
	}
	e := reg.Active()
	if e == nil {
		return models.FeatureSpec{}, fmt.Errorf("lifecycle needs an active model to derive the retrain spec")
	}
	platforms := make([]string, 0, len(e.Model.ByPlatform))
	for p := range e.Model.ByPlatform {
		platforms = append(platforms, p)
	}
	sort.Strings(platforms)
	return e.Model.ByPlatform[platforms[0]].Spec, nil
}

// simTraces runs the workload sequence on a simulated cluster, giving the
// loadgen its replay substrate (and the bootstrap its training data).
func simTraces(cfg config) ([]*trace.Trace, error) {
	cluster, err := telemetry.New(cfg.Platform, cfg.Machines, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return cluster.RunSequence(cfg.Workloads, 10, 3000, 0)
}

// bootstrapModels fits v1 (requested technique) and v2 (linear) on the
// simulated traces and admits both; v1 serves. Returns v1's training-set
// rMSE as the drift-monitor baseline.
func bootstrapModels(reg *registry.Registry, traces []*trace.Trace, tech models.Technique) (float64, error) {
	spec := core.ClusterSpec([]string{counters.CPUTotal, counters.CPUFreqCore0})
	var train []*trace.Trace
	for _, t := range traces {
		train = append(train, trace.Subsample(t, 2))
	}
	fit := func(tech models.Technique) (*models.ClusterModel, error) {
		mm, err := models.FitMachineModel(tech, train, spec,
			models.FitOptions{FreqCol: spec.FreqInputIndex(), MaxKnots: 8})
		if err != nil {
			return nil, err
		}
		return models.NewClusterModel(mm)
	}
	v1, err := fit(tech)
	if err != nil {
		return 0, err
	}
	if err := reg.Add("v1", v1, registry.Meta{Description: string(tech) + " bootstrap", Source: "sim"}); err != nil {
		return 0, err
	}
	v2, err := fit(models.TechLinear)
	if err != nil {
		return 0, err
	}
	if err := reg.Add("v2", v2, registry.Meta{Description: "linear bootstrap", Source: "sim"}); err != nil {
		return 0, err
	}
	pred, actual, err := v1.PredictCluster(traces)
	if err != nil {
		return 0, err
	}
	return rmse(pred, actual), nil
}

// runLoadgen replays the traces against the freshly started API and
// reports the stats.
func runLoadgen(em *emitter, addr string, reg *registry.Registry, traces []*trace.Trace, cfg config) error {
	scen := cfg.scenario
	if scen == nil && cfg.Faults != "" {
		var err error
		if scen, err = faults.LoadScenario(cfg.Faults); err != nil {
			return err
		}
	}
	weights, err := parsePriorities(cfg.Priorities)
	if err != nil {
		return err
	}
	lg := serve.LoadGenConfig{
		TargetURL:       "http://" + addr,
		Traces:          traces,
		Snapshots:       cfg.Snapshots,
		Rate:            cfg.Rate,
		Clients:         cfg.Clients,
		Batch:           cfg.Batch,
		IncludeMeter:    true,
		SwapEvery:       cfg.SwapEvery,
		Scenario:        scen,
		Seed:            cfg.Seed,
		PriorityWeights: weights,
	}
	if cfg.SwapEvery > 0 {
		for _, info := range reg.List() {
			lg.SwapVersions = append(lg.SwapVersions, info.Version)
		}
	}
	stats, err := serve.RunLoadGen(lg)
	if err != nil {
		return err
	}
	satNote := ""
	if stats.ServerTailSaturated {
		satNote = ", p99 saturated: true tail exceeds the top histogram bucket"
	}
	// Per-status split: the JSON map keys statuses as strings ("200",
	// "429", "0" for transport errors) so overload experiments can tell
	// shed from timeout from breakage without re-deriving from rollups.
	byStatus := make(map[string]int, len(stats.ByStatus))
	for code, n := range stats.ByStatus {
		byStatus[strconv.Itoa(code)] = n
	}
	tiers := make(map[string]any, len(stats.Tiers))
	for i, t := range stats.Tiers {
		if t.Sent == 0 {
			continue
		}
		tiers[overload.Priority(i).String()] = map[string]any{
			"sent": t.Sent, "ok": t.OK, "shed": t.Shed, "late": t.Late, "failed": t.Failed,
			"latency_p50_ms": round2(float64(t.P50) / float64(time.Millisecond)),
			"latency_p99_ms": round2(float64(t.P99) / float64(time.Millisecond)),
		}
	}
	return em.event("loadgen_complete",
		fmt.Sprintf("loadgen: %d snapshots (%d samples) in %.2fs — %.0f snap/s, %.0f samples/s\n"+
			"  latency p50 %s p99 %s (server-side %s / %s over %d requests"+satNote+")\n"+
			"  ok %d  shed %d  late %d  failed %d  skipped rows %d  swaps %d\n"+
			"  mean abs cluster err %.2f W over %d metered snapshots",
			stats.Snapshots, stats.Samples, stats.Duration.Seconds(),
			stats.SnapshotsPerSec, stats.SamplesPerSec,
			stats.LatencyP50, stats.LatencyP99,
			stats.ServerP50, stats.ServerP99, stats.ServerRequests,
			stats.OK, stats.Shed, stats.Late, stats.Failed, stats.SkippedRows, stats.Swaps,
			stats.MeanAbsErr(), stats.MeterOK),
		map[string]any{
			"snapshots": stats.Snapshots, "samples": stats.Samples,
			"duration_s":            round2(stats.Duration.Seconds()),
			"snapshots_per_s":       round2(stats.SnapshotsPerSec),
			"samples_per_s":         round2(stats.SamplesPerSec),
			"latency_p50_ms":        round2(float64(stats.LatencyP50) / float64(time.Millisecond)),
			"latency_p99_ms":        round2(float64(stats.LatencyP99) / float64(time.Millisecond)),
			"server_p50_ms":         round2(float64(stats.ServerP50) / float64(time.Millisecond)),
			"server_p99_ms":         round2(float64(stats.ServerP99) / float64(time.Millisecond)),
			"server_tail_saturated": stats.ServerTailSaturated,
			"server_requests":       stats.ServerRequests,
			"ok":                    stats.OK, "shed": stats.Shed, "late": stats.Late, "failed": stats.Failed,
			"transport_errors": stats.TransportErrors, "by_status": byStatus, "tiers": tiers,
			"skipped_rows": stats.SkippedRows, "swaps": stats.Swaps,
			"mean_abs_err_w": round2(stats.MeanAbsErr()), "metered": stats.MeterOK,
		})
}

// parsePriorities turns "-priorities 1,2,2" into the loadgen weight
// vector {interactive, batch, background}.
func parsePriorities(s string) ([overload.NumPriorities]int, error) {
	var w [overload.NumPriorities]int
	if s == "" {
		return w, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != overload.NumPriorities {
		return w, fmt.Errorf("-priorities wants %d comma-separated weights, got %q", overload.NumPriorities, s)
	}
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			return w, fmt.Errorf("-priorities weight %q must be a non-negative integer", p)
		}
		w[i] = v
	}
	return w, nil
}

func rmse(pred, actual []float64) float64 {
	var s float64
	for i := range pred {
		d := pred[i] - actual[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }
