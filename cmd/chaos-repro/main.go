// chaos-repro regenerates every table and figure of the paper's evaluation
// on the simulated infrastructure and prints a consolidated report.
//
// Usage:
//
//	chaos-repro                 # full paper-scale run (several minutes)
//	chaos-repro -fast           # reduced configuration (seconds to ~a minute)
//	chaos-repro -only table4    # one experiment
//	chaos-repro -out report.txt # also write the report to a file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		fast = flag.Bool("fast", false, "use the reduced configuration")
		only = flag.String("only", "", "run one experiment: table1, table2, table3, table4, fig1, fig2, fig3, fig4, fig5, hetero, overhead, ablations, calibration, variability")
		out  = flag.String("out", "", "also write the report to this file")
		seed = flag.Int64("seed", 2012, "simulation seed")
	)
	flag.Parse()
	cfg := experiments.Default()
	if *fast {
		cfg = experiments.Fast()
	}
	cfg.Seed = *seed

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos-repro:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}
	if err := run(w, cfg, strings.ToLower(*only)); err != nil {
		fmt.Fprintln(os.Stderr, "chaos-repro:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, cfg experiments.Config, only string) error {
	s := experiments.NewSuite(cfg)
	fmt.Fprintf(w, "CHAOS reproduction: %d machines/cluster, %d runs/workload, platforms %v, workloads %v\n",
		s.Cfg.Machines, s.Cfg.Runs, s.Cfg.Platforms, s.Cfg.Workloads)

	want := func(id string) bool { return only == "" || only == id }
	type step struct {
		id string
		fn func() error
	}
	steps := []step{
		{"table1", func() error { experiments.TableI(w); return nil }},
		{"fig1", func() error { _, err := s.Figure1(w, s.PickPlatform("Core2")); return err }},
		{"table2", func() error { _, err := s.TableII(w); return err }},
		{"fig2", func() error { _, _, err := s.Figure2(w, s.PickPlatform("Opteron")); return err }},
		{"table3", func() error { _, err := s.TableIII(w, "Core2", "Atom"); return err }},
		{"fig3", func() error { _, err := s.Figure3(w); return err }},
		{"fig4", func() error { _, err := s.Figure4(w); return err }},
		{"table4", func() error {
			cells, err := s.TableIV(w)
			if err != nil {
				return err
			}
			worst := 0.0
			for _, c := range cells {
				if c.ClusterDRE > worst {
					worst = c.ClusterDRE
				}
			}
			hist := experiments.BestLabelHistogram(cells)
			fmt.Fprintf(w, "worst cell DRE %.1f%% (paper bound: 12%%); winning models: %v\n", worst*100, hist)
			return nil
		}},
		{"fig5", func() error { _, err := s.Figure5(w); return err }},
		{"multiworkload", func() error { _, err := s.MultiWorkload(w, s.PickPlatform("Core2")); return err }},
		{"generality", func() error { _, err := s.Generality(w, s.PickPlatform("Core2"), nil); return err }},
		{"hetero", func() error { _, err := s.Heterogeneous(w); return err }},
		{"overhead", func() error { _, err := s.Overhead(w); return err }},
		{"ablations", func() error {
			p0 := s.PickPlatform("Opteron")
			w0 := s.PickWorkload("Sort")
			if _, _, err := s.AblationPooling(w, p0, w0); err != nil {
				return err
			}
			if _, err := s.AblationCorrThreshold(w, p0, nil); err != nil {
				return err
			}
			if _, err := s.AblationMachineCount(w, p0, w0); err != nil {
				return err
			}
			if _, err := s.AblationLagWindow(w, p0, s.PickWorkload("PageRank"), nil); err != nil {
				return err
			}
			if _, _, err := s.AblationPerCoreFreq(w, p0, s.PickWorkload("Prime")); err != nil {
				return err
			}
			return nil
		}},
		{"calibration", func() error {
			_, err := s.CalibrationTraining(w, s.PickPlatform("Core2"))
			return err
		}},
		{"sensitivity", func() error {
			_, err := s.SensitivityNoise(w, s.PickPlatform("Core2"), s.PickWorkload("Prime"), nil)
			return err
		}},
		{"variability", func() error {
			_, _, err := experiments.VariabilityStudy(w, s.PickPlatform("Core2"), 20, s.Cfg.Seed)
			return err
		}},
	}
	ran := false
	for _, st := range steps {
		if !want(st.id) {
			continue
		}
		ran = true
		if err := st.fn(); err != nil {
			return fmt.Errorf("%s: %w", st.id, err)
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", only)
	}
	return nil
}
