package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournal mirrors faults.FuzzScenario for the durability layer:
// arbitrary bytes on disk must never panic the journal reader, every
// record it accepts must carry a matching checksum by construction, the
// repaired journal must reopen cleanly and idempotently, and appends on
// top of any recovered state must round-trip.
func FuzzJournal(f *testing.F) {
	// Seed corpus: empty, a valid journal, torn tails, flipped bytes,
	// garbage headers, and an adversarial length field.
	valid := func(payloads ...string) []byte {
		var buf bytes.Buffer
		for _, p := range payloads {
			var hdr [frameHeader]byte
			binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
			binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum([]byte(p), crcTable))
			buf.Write(hdr[:])
			buf.WriteString(p)
		}
		return buf.Bytes()
	}
	f.Add([]byte{})
	f.Add(valid("hello", "world"))
	f.Add(valid("hello", "world")[:13])
	f.Add(valid("a"))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	f.Add(append(valid("keep"), 0xDE, 0xAD))
	f.Add(bytes.Repeat([]byte{0}, 64))
	corrupted := valid("first", "second")
	corrupted[frameHeader] ^= 0x80
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var recs [][]byte
		j, rec, err := OpenJournal(path, func(r []byte) error {
			recs = append(recs, append([]byte(nil), r...))
			return nil
		})
		if err != nil {
			return // I/O-level failure is allowed; panics are not
		}
		if rec.Records != len(recs) {
			t.Fatalf("recovery reports %d records, replayed %d", rec.Records, len(recs))
		}
		// Every accepted record must be re-verifiable against the raw
		// bytes: its frame sits where the reader said, checksum intact.
		off := 0
		for i, r := range recs {
			n := int(binary.LittleEndian.Uint32(data[off:]))
			if n != len(r) {
				t.Fatalf("record %d: frame length %d vs replayed %d", i, n, len(r))
			}
			if crc32.Checksum(r, crcTable) != binary.LittleEndian.Uint32(data[off+4:]) {
				t.Fatalf("record %d accepted with mismatched checksum", i)
			}
			off += frameHeader + n
		}
		// Appending on the recovered journal round-trips.
		if err := j.Append([]byte("fuzz-append")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		j.Close()
		var recs2 [][]byte
		j2, rec2, err := OpenJournal(path, func(r []byte) error {
			recs2 = append(recs2, append([]byte(nil), r...))
			return nil
		})
		if err != nil {
			t.Fatalf("reopen after repair: %v", err)
		}
		defer j2.Close()
		// The first open repaired the file, so the second must be clean and
		// see exactly the accepted records plus the append.
		if !rec2.Clean() {
			t.Fatalf("second open not clean: %+v", rec2)
		}
		if len(recs2) != len(recs)+1 {
			t.Fatalf("second open replayed %d records, want %d", len(recs2), len(recs)+1)
		}
		for i := range recs {
			if !bytes.Equal(recs2[i], recs[i]) {
				t.Fatalf("record %d changed across repair: %q vs %q", i, recs2[i], recs[i])
			}
		}
		if string(recs2[len(recs2)-1]) != "fuzz-append" {
			t.Fatalf("appended record = %q", recs2[len(recs2)-1])
		}
	})
}
