package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/trace"
)

// syncWriter is a race-clean event sink target; read it only after the
// writers have quiesced.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

// events parses the sink's JSON lines and counts them by event name.
func (w *syncWriter) events(t *testing.T) map[string]int {
	t.Helper()
	w.mu.Lock()
	defer w.mu.Unlock()
	counts := map[string]int{}
	sc := bufio.NewScanner(bytes.NewReader(w.buf.Bytes()))
	for sc.Scan() {
		var ev struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		counts[ev.Event]++
	}
	return counts
}

// stormTrace builds a flat synthetic replay trace: every second is a=1,
// b=1 (13 W under the v1 test model).
func stormTrace(machine string, seconds int) *trace.Trace {
	x := mathx.NewMatrix(seconds, len(testNames))
	power := make([]float64, seconds)
	for s := 0; s < seconds; s++ {
		x.Data[s*2] = 1
		x.Data[s*2+1] = 1
		power[s] = 13
	}
	return &trace.Trace{MachineID: machine, Platform: "p", Names: testNames, X: x, Power: power}
}

// runStorm replays the seeded surge scenario — 1 s at half capacity, a
// 10x storm for 2 s (5x engine capacity), then a 3 s recovery tail —
// against one engine. PredictStall pins predict capacity at
// Shards x BatchMax / PredictStall = 400 samples/s on any hardware, so
// the load multipliers mean the same thing everywhere.
func runStorm(t *testing.T, adaptive bool, sink *obs.EventSink) (*LoadStats, *Server) {
	t.Helper()
	cfg := Config{
		Shards: 1, QueueDepth: 256,
		BatchWindow: 500 * time.Microsecond, BatchMax: 4,
		Deadline:     100 * time.Millisecond,
		PredictStall: 10 * time.Millisecond,
	}
	if adaptive {
		cfg.Overload = &overload.Config{
			Limiter: overload.LimiterConfig{
				// Min keeps two full batches in flight so the drain rate
				// never collapses below engine capacity; Tolerance places
				// the latency target (~4x the 12ms uncongested floor)
				// under the 100ms deadline so admitted work still
				// finishes in time; the tight bulk fractions reserve most
				// of the limit for tier 0, whose storm arrival rate is a
				// large slice of capacity.
				Min: 8, Tolerance: 3,
				TierFrac: [overload.NumPriorities]float64{1, 0.25, 0.1},
			},
			Events: sink,
		}
		cfg.Events = sink
	}
	srv, base := newTestServer(t, cfg)
	stats, err := RunLoadGen(LoadGenConfig{
		TargetURL: base,
		Traces:    []*trace.Trace{stormTrace("m1", 30)},
		// Enough concurrent senders that the offered storm stays open-loop:
		// with few clients, every sender ends up blocked behind the queue
		// and the "overload" throttles itself away.
		Snapshots: 4800, Rate: 200, Clients: 256, Batch: 1,
		Scenario: &faults.Scenario{
			Load: []faults.LoadSurge{{StartS: 1, EndS: 3, Multiplier: 10}},
		},
		Seed:            42,
		PriorityWeights: [overload.NumPriorities]int{1, 3, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return stats, srv
}

// TestOverloadStormGoodput drives the same 5x overload storm into a
// static-shed engine (bounded queue only) and an adaptive one (AIMD
// limiter + strict-priority shedding + brownout ladder) and checks the
// tentpole contract: interactive goodput at least doubles, no priority
// inversions, and the brownout ladder enters under pressure and fully
// exits through hysteresis after the storm passes.
func TestOverloadStormGoodput(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second storm replay")
	}

	baseStats, _ := runStorm(t, false, nil)
	w := &syncWriter{}
	adStats, srv := runStorm(t, true, obs.NewEventSink(w))

	// The storm must actually overload both engines.
	if baseStats.Shed+baseStats.Late == 0 {
		t.Fatal("static baseline never shed or timed out; the storm did not overload it")
	}
	if adStats.Shed == 0 {
		t.Fatal("adaptive engine never shed; the limiter did not engage")
	}

	// Interactive goodput: the adaptive engine keeps serving tier 0 while
	// shedding the bulk tiers; the static queue sheds and times out
	// blindly across tiers.
	baseOK := baseStats.Tiers[overload.Interactive].OK
	adOK := adStats.Tiers[overload.Interactive].OK
	floor := baseOK
	if floor < 1 {
		floor = 1
	}
	t.Logf("interactive goodput: static=%d adaptive=%d (sent %d/%d)",
		baseOK, adOK, baseStats.Tiers[overload.Interactive].Sent, adStats.Tiers[overload.Interactive].Sent)
	t.Logf("static interactive: %+v", baseStats.Tiers[overload.Interactive])
	t.Logf("adaptive interactive: %+v", adStats.Tiers[overload.Interactive])
	t.Logf("adaptive batch: %+v", adStats.Tiers[overload.Batch])
	t.Logf("adaptive background: %+v", adStats.Tiers[overload.Background])
	if adOK < 2*floor {
		t.Errorf("adaptive interactive goodput %d < 2x static baseline %d", adOK, baseOK)
	}

	// Zero priority inversions: no tick shed tier 0 while admitting tier 2.
	if inv := srv.Overload().InversionTicks(); inv != 0 {
		t.Errorf("priority inversions in %d tick(s), want 0", inv)
	}

	// Brownout lifecycle: the ladder must have entered during the storm
	// and must fully unwind to normal through exit hysteresis once load
	// falls back to half capacity.
	deadline := time.Now().Add(10 * time.Second)
	for srv.BrownoutLevel() != overload.LevelNormal && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if lvl := srv.BrownoutLevel(); lvl != overload.LevelNormal {
		t.Fatalf("brownout level %d after the storm, want full exit to %d", lvl, overload.LevelNormal)
	}
	evs := w.events(t)
	if evs["brownout_enter"] == 0 {
		t.Error("no brownout_enter event during the storm")
	}
	if evs["brownout_exit"] == 0 {
		t.Error("no brownout_exit event after the storm")
	}

	// Per-status split (loadgen satellite): every snapshot outcome is
	// accounted under an explicit status code, and the rollups agree.
	for _, stats := range []*LoadStats{baseStats, adStats} {
		total := 0
		for _, n := range stats.ByStatus {
			total += n
		}
		if got := stats.OK + stats.Shed + stats.Late + stats.Failed; total != got {
			t.Errorf("by_status sum %d != rollup sum %d", total, got)
		}
		if stats.ByStatus[http.StatusOK] != stats.OK {
			t.Errorf("by_status[200] = %d, want %d", stats.ByStatus[http.StatusOK], stats.OK)
		}
		if stats.TransportErrors != 0 {
			t.Errorf("transport errors %d, want 0 (server stayed up)", stats.TransportErrors)
		}
	}
}

// TestOverloadRetryAfterHeaders locks in the backpressure-header
// satellite: 429 (overload shed) and 504 (deadline) responses both carry
// a Retry-After hint.
func TestOverloadRetryAfterHeaders(t *testing.T) {
	// 429: a one-slot limiter with a slow predictor sheds concurrent
	// surplus immediately.
	_, base := newTestServer(t, Config{
		Shards: 1, QueueDepth: 64, BatchMax: 1, BatchWindow: 100 * time.Microsecond,
		PredictStall: 200 * time.Millisecond,
		Overload: &overload.Config{
			Limiter: overload.LimiterConfig{Initial: 1, Min: 1, Max: 1},
		},
	})
	client := &http.Client{}
	body, _ := json.Marshal(EstimateRequest{Samples: []SampleJSON{sample("m1", 1, 1)}})
	var mu sync.Mutex
	got429 := 0
	retryAfterOK := true
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := client.Post(base+"/v1/estimate", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				mu.Lock()
				got429++
				if resp.Header.Get("Retry-After") == "" {
					retryAfterOK = false
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if got429 == 0 {
		t.Fatal("no 429 from a one-slot limiter under 6 concurrent requests")
	}
	if !retryAfterOK {
		t.Fatal("429 response missing Retry-After header")
	}

	// 504: an impossible per-request deadline always expires in the
	// batch window + predictor stall.
	_, base2 := newTestServer(t, Config{
		Shards: 1, BatchMax: 4, PredictStall: 30 * time.Millisecond,
	})
	req, _ := json.Marshal(EstimateRequest{
		Samples: []SampleJSON{sample("m1", 1, 1)}, DeadlineMS: 1,
	})
	resp, err := client.Post(base2+"/v1/estimate", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 under a 1ms deadline", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("504 response missing Retry-After header")
	}
}
