// Package online is the deployment path of CHAOS: streaming cluster power
// estimation from live OS counter samples, residual monitoring against an
// occasionally-available meter, drift detection, and retraining — the
// "online power prediction" use the paper builds its models for, plus the
// adaptation loop its automatic-framework motivation calls for ("rapidly
// and easily build new models for applications, thus adapting to new
// characteristics and workloads", §IV-A).
package online

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Streaming-path instruments, resolved once at import so the per-second
// loop pays only atomic updates.
var (
	predictLatency = obs.Default().Histogram("chaos_predict_seconds", nil, obs.ExpBuckets(1e-7, 4, 14))
	estimateGauge  = obs.Default().Gauge("chaos_cluster_watts_estimate", nil)
	estimatesTotal = obs.Default().Counter("chaos_estimates_total", nil)
	residualHist   = obs.Default().Histogram("chaos_residual_watts", nil, obs.LinearBuckets(0, 2, 25))
	residualEWMA   = obs.Default().Gauge("chaos_residual_ewma_baseline_units", nil)
	driftAlarms    = obs.Default().Counter("chaos_drift_alarms_total", nil)
	retrainsTotal  = obs.Default().Counter("chaos_retrains_total", nil)
	invalidSamples = obs.Default().Counter("chaos_invalid_samples_total", nil)
)

// finiteRow reports whether every value in the row is finite — the guard
// that keeps NaN/Inf counter corruption out of Model.Predict and the
// chaos_cluster_watts_estimate gauge.
func finiteRow(row []float64) bool {
	for _, v := range row {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Sample is one machine's counter vector for one second, in the counter
// order the Predictor was configured with.
type Sample struct {
	MachineID string
	Platform  string
	Counters  []float64
}

// Estimate is the output of one prediction step.
type Estimate struct {
	ClusterWatts float64
	PerMachine   map[string]float64
}

// Predictor turns per-second counter samples into power estimates using a
// fitted cluster model. It keeps per-machine frequency history so feature
// specs with lagged inputs work in streaming mode. Predictor is safe for
// concurrent use (samples from independent collection goroutines).
type Predictor struct {
	mu    sync.Mutex
	model *models.ClusterModel
	// names is the incoming counter order; indexes below are derived
	// from it per platform spec.
	names   []string
	byName  map[string]int
	history map[string][]float64 // machineID -> recent freq values (newest last)
}

// NewPredictor builds a streaming predictor over the cluster model.
// names is the counter order of incoming Sample.Counters (typically the
// full registry order from the collector).
func NewPredictor(model *models.ClusterModel, names []string) (*Predictor, error) {
	if model == nil || len(model.ByPlatform) == 0 {
		return nil, fmt.Errorf("online: nil or empty cluster model")
	}
	p := &Predictor{
		model:   model,
		names:   append([]string(nil), names...),
		byName:  map[string]int{},
		history: map[string][]float64{},
	}
	for i, n := range p.names {
		p.byName[n] = i
	}
	// Verify every platform's features are resolvable up front.
	for platform, mm := range model.ByPlatform {
		for _, c := range mm.Spec.Counters {
			if _, ok := p.byName[c]; !ok {
				return nil, fmt.Errorf("online: model for %s needs counter %q not present in the stream", platform, c)
			}
		}
	}
	return p, nil
}

// maxLagWindow bounds the frequency history we need to keep.
const maxLagWindow = 16

// Step consumes one second of samples (one per machine) and returns the
// cluster estimate. Samples carrying NaN/Inf counters (a corrupt
// collector read) are skipped and counted in chaos_invalid_samples_total
// rather than poisoning the cluster sum; an error is returned only if no
// valid sample remains. Structural problems — unknown platform, wrong
// counter count — are still hard errors.
func (p *Predictor) Step(samples []Sample) (*Estimate, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("online: no samples")
	}
	start := time.Now()
	defer func() { predictLatency.Observe(time.Since(start).Seconds()) }()
	est := &Estimate{PerMachine: make(map[string]float64, len(samples))}
	rejected := 0
	for _, s := range samples {
		if !finiteRow(s.Counters) {
			invalidSamples.Inc()
			rejected++
			continue
		}
		w, err := p.predictOne(s)
		if err != nil {
			return nil, err
		}
		est.PerMachine[s.MachineID] = w
		est.ClusterWatts += w
	}
	if len(est.PerMachine) == 0 {
		return nil, fmt.Errorf("online: all %d samples rejected (non-finite counters)", rejected)
	}
	estimateGauge.Set(est.ClusterWatts)
	estimatesTotal.Inc()
	return est, nil
}

// predictOne validates one sample and predicts its machine's power,
// maintaining the machine's lag history.
func (p *Predictor) predictOne(s Sample) (float64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.predictLocked(s)
}

// predictLocked is predictOne with p.mu already held, so batched callers
// pay the lock once per batch instead of once per sample.
func (p *Predictor) predictLocked(s Sample) (float64, error) {
	mm, ok := p.model.ByPlatform[s.Platform]
	if !ok {
		return 0, fmt.Errorf("online: no machine model for platform %q", s.Platform)
	}
	if len(s.Counters) != len(p.names) {
		return 0, fmt.Errorf("online: sample from %s has %d counters, want %d", s.MachineID, len(s.Counters), len(p.names))
	}
	row, err := p.buildRow(mm.Spec, s)
	if err != nil {
		return 0, err
	}
	return mm.Model.Predict(row), nil
}

// BatchItem is one sample's outcome within a batched prediction.
type BatchItem struct {
	Watts float64
	Err   error
}

// PredictBatch predicts each sample in order under a single lock
// acquisition and a single latency observation — the serving layer's
// amortized hot path. Unlike Step, per-sample problems (unknown platform,
// wrong counter count, non-finite counters) are reported per item and
// never fail the rest of the batch; samples may belong to different
// machines, the same machine, or different clusters of requests entirely.
func (p *Predictor) PredictBatch(samples []Sample) []BatchItem {
	start := time.Now()
	defer func() { predictLatency.Observe(time.Since(start).Seconds()) }()
	out := make([]BatchItem, len(samples))
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range samples {
		s := samples[i]
		if !finiteRow(s.Counters) {
			invalidSamples.Inc()
			out[i].Err = fmt.Errorf("online: sample from %s has non-finite counters", s.MachineID)
			continue
		}
		w, err := p.predictLocked(s)
		if err != nil {
			out[i].Err = err
			continue
		}
		out[i].Watts = w
		estimatesTotal.Inc()
	}
	return out
}

// buildRow assembles the model input for one sample, maintaining lag
// history.
func (p *Predictor) buildRow(spec models.FeatureSpec, s Sample) ([]float64, error) {
	row := make([]float64, 0, spec.NumInputs())
	for _, c := range spec.Counters {
		row = append(row, s.Counters[p.byName[c]])
	}
	w := spec.NumInputs() - len(spec.Counters)
	if w > 0 {
		fi := spec.FreqInputIndex()
		if fi < 0 {
			return nil, fmt.Errorf("online: spec %q has lagged inputs but no frequency counter", spec.Name)
		}
		cur := row[fi]
		hist := p.history[s.MachineID]
		for k := 1; k <= w; k++ {
			idx := len(hist) - k
			if idx < 0 {
				row = append(row, cur) // cold start: clamp to current
			} else {
				row = append(row, hist[idx])
			}
		}
		hist = append(hist, cur)
		if len(hist) > maxLagWindow {
			hist = hist[len(hist)-maxLagWindow:]
		}
		p.history[s.MachineID] = hist
	}
	return row, nil
}

// Monitor tracks prediction residuals against metered power and raises a
// drift signal when the error level departs from the trained regime — the
// cue to rebuild the model for a new workload.
type Monitor struct {
	mu sync.Mutex
	// baseline is the expected residual scale (e.g. the training rMSE).
	baseline float64
	// threshold is the CUSUM alarm level in baseline units.
	threshold float64
	// slack is the CUSUM drift allowance in baseline units.
	slack float64

	cusum   float64
	ewma    float64
	alpha   float64
	n       int
	drifted bool
}

// NewMonitor creates a residual monitor. baselineRMSE is the model's
// validated error scale; threshold (in multiples of the baseline,
// typically 8–32) sets alarm sensitivity.
func NewMonitor(baselineRMSE, threshold float64) (*Monitor, error) {
	if baselineRMSE <= 0 {
		return nil, fmt.Errorf("online: baseline rMSE must be positive, got %g", baselineRMSE)
	}
	if threshold <= 0 {
		threshold = 16
	}
	return &Monitor{
		baseline:  baselineRMSE,
		threshold: threshold,
		slack:     0.5,
		alpha:     0.05,
	}, nil
}

// Observe feeds one prediction/measurement pair. It returns true if the
// observation tripped the drift alarm.
func (m *Monitor) Observe(pred, actual float64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	residualHist.Observe(math.Abs(pred - actual))
	r := math.Abs(pred-actual) / m.baseline
	m.n++
	m.ewma = (1-m.alpha)*m.ewma + m.alpha*r
	residualEWMA.Set(m.ewma)
	// One-sided CUSUM on the standardized residual magnitude: grows when
	// errors systematically exceed (1 + slack) baselines.
	m.cusum += r - 1 - m.slack
	if m.cusum < 0 {
		m.cusum = 0
	}
	if m.cusum > m.threshold && !m.drifted {
		m.drifted = true
		driftAlarms.Inc()
	}
	return m.drifted
}

// Drifted reports whether the alarm has fired since the last Reset.
func (m *Monitor) Drifted() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.drifted
}

// EWMA returns the smoothed residual level in baseline units.
func (m *Monitor) EWMA() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ewma
}

// Observations returns the number of pairs observed.
func (m *Monitor) Observations() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.n
}

// Reset clears the alarm and statistics (call after retraining).
func (m *Monitor) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cusum, m.ewma, m.n = 0, 0, 0
	m.drifted = false
}

// Retrainer accumulates recent labeled samples (counters + metered power)
// per machine and rebuilds the cluster model on demand.
type Retrainer struct {
	mu       sync.Mutex
	names    []string
	capacity int
	buffers  map[string]*ring // machineID -> recent samples
	platform map[string]string
}

type ring struct {
	rows  [][]float64
	power []float64
	next  int
	full  bool
}

func newRing(capacity int) *ring {
	return &ring{rows: make([][]float64, capacity), power: make([]float64, capacity)}
}

func (r *ring) add(row []float64, watts float64) {
	r.rows[r.next] = append([]float64(nil), row...)
	r.power[r.next] = watts
	r.next++
	if r.next == len(r.rows) {
		r.next = 0
		r.full = true
	}
}

func (r *ring) snapshot() ([][]float64, []float64) {
	n := r.next
	if r.full {
		n = len(r.rows)
	}
	rows := make([][]float64, 0, n)
	power := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, r.rows[i])
		power = append(power, r.power[i])
	}
	return rows, power
}

// NewRetrainer buffers up to capacity seconds per machine.
func NewRetrainer(names []string, capacity int) (*Retrainer, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("online: retrainer capacity must be positive, got %d", capacity)
	}
	return &Retrainer{
		names:    append([]string(nil), names...),
		capacity: capacity,
		buffers:  map[string]*ring{},
		platform: map[string]string{},
	}, nil
}

// Add records one labeled second from a machine. Samples with non-finite
// counters or a non-finite meter reading are skipped (and counted in
// chaos_invalid_samples_total) so a corrupt second cannot poison a later
// retraining fit.
func (rt *Retrainer) Add(s Sample, meteredWatts float64) error {
	if len(s.Counters) != len(rt.names) {
		return fmt.Errorf("online: sample has %d counters, want %d", len(s.Counters), len(rt.names))
	}
	if !finiteRow(s.Counters) || math.IsNaN(meteredWatts) || math.IsInf(meteredWatts, 0) {
		invalidSamples.Inc()
		return nil
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	b := rt.buffers[s.MachineID]
	if b == nil {
		b = newRing(rt.capacity)
		rt.buffers[s.MachineID] = b
	}
	rt.platform[s.MachineID] = s.Platform
	b.add(s.Counters, meteredWatts)
	return nil
}

// Buffered returns the number of labeled seconds currently held for a
// machine.
func (rt *Retrainer) Buffered(machineID string) int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	b := rt.buffers[machineID]
	if b == nil {
		return 0
	}
	rows, _ := b.snapshot()
	return len(rows)
}

// Retrain fits a fresh cluster model of the given technique and spec from
// the buffered samples, pooling machines per platform like the offline
// pipeline does.
func (rt *Retrainer) Retrain(tech models.Technique, spec models.FeatureSpec) (*models.ClusterModel, error) {
	span := obs.StartSpan("online.retrain", obs.String("tech", string(tech)))
	defer span.End()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	// A machine with fewer rows than the design width would make the
	// normal equations rank-deficient and the fit degenerate (an exact
	// interpolation of noise at best; regress.OLS itself demands strictly
	// more rows than parameters). Fail fast with the machine named rather
	// than hand a garbage model or a cryptic solver error to the caller.
	minRows := spec.NumInputs() + 2
	byPlatform := map[string][]*trace.Trace{}
	for id, b := range rt.buffers {
		rows, power := b.snapshot()
		if len(rows) == 0 {
			continue
		}
		if len(rows) < minRows {
			return nil, fmt.Errorf("online: machine %s has %d buffered samples, need at least %d (features + intercept + 1) to retrain",
				id, len(rows), minRows)
		}
		builder := trace.NewBuilder(rt.platform[id], "online", id, 0, rt.names, 0)
		for i := range rows {
			if err := builder.Add(rows[i], power[i], power[i]); err != nil {
				return nil, err
			}
		}
		t, err := builder.Build()
		if err != nil {
			return nil, err
		}
		p := rt.platform[id]
		byPlatform[p] = append(byPlatform[p], t)
	}
	if len(byPlatform) == 0 {
		return nil, fmt.Errorf("online: no buffered samples to retrain from")
	}
	var mms []*models.MachineModel
	for p, ts := range byPlatform {
		mm, err := models.FitMachineModel(tech, ts, spec,
			models.FitOptions{FreqCol: spec.FreqInputIndex(), MaxKnots: 8})
		if err != nil {
			return nil, fmt.Errorf("online: retraining %s: %w", p, err)
		}
		mms = append(mms, mm)
	}
	cm, err := models.NewClusterModel(mms...)
	if err == nil {
		retrainsTotal.Inc()
	}
	return cm, err
}
