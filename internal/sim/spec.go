// Package sim is the hardware substrate: it simulates the six platform
// classes of the paper's Table I — machines with cores, DVFS P-states, a
// C1 idle state, disks, a NIC, and memory — together with a *hidden*
// nonlinear ground-truth power model and a WattsUp-style wall-power meter.
//
// The modeling layers never see the ground truth; they observe only the
// OS counter vector (via internal/counters) and the metered power, exactly
// the black-box position the paper's framework is in.
package sim

import (
	"fmt"
	"math"
)

// DVFSKind describes a platform's frequency-scaling capability.
type DVFSKind int

const (
	// DVFSNone: single fixed frequency (the Atom platform).
	DVFSNone DVFSKind = iota
	// DVFSShared: all cores share one P-state (mobile/desktop parts; the
	// paper observed both cores at the same frequency 99.8% of the time).
	DVFSShared
	// DVFSPerCore: each core picks its own P-state, and the package can
	// enter C1 (frequency 0) when every core is idle (the server parts).
	DVFSPerCore
)

// DiskType identifies the storage technology, which drives both the power
// contribution and the throughput caps.
type DiskType int

const (
	DiskSSD DiskType = iota
	DiskSATA7K
	DiskSATA10K
	DiskSAS15K
)

// diskParams holds per-technology characteristics.
type diskParams struct {
	idleW       float64 // spindle/static power per disk
	activeW     float64 // additional power at 100% busy
	maxBytesSec float64 // sustained throughput per disk
	maxOpsSec   float64 // IOPS ceiling per disk
}

var diskTable = map[DiskType]diskParams{
	DiskSSD:     {idleW: 0.6, activeW: 2.2, maxBytesSec: 230e6, maxOpsSec: 30000},
	DiskSATA7K:  {idleW: 6.0, activeW: 5.5, maxBytesSec: 90e6, maxOpsSec: 120},
	DiskSATA10K: {idleW: 7.5, activeW: 6.5, maxBytesSec: 120e6, maxOpsSec: 180},
	DiskSAS15K:  {idleW: 9.5, activeW: 8.0, maxBytesSec: 160e6, maxOpsSec: 250},
}

// DiskSpec is a homogeneous group of disks in a machine.
type DiskSpec struct {
	Type  DiskType
	Count int
}

// PlatformSpec describes one platform class from Table I.
type PlatformSpec struct {
	Name     string // short key: Atom, Core2, Athlon, Opteron, XeonSATA, XeonSAS
	Class    string // Embedded / Mobile / Desktop / Server
	CPUModel string
	Cores    int // total cores across sockets
	Sockets  int
	TDPWatts float64

	// FreqStatesMHz lists the P-state frequencies ascending; the last is
	// nominal. DVFSNone platforms have a single entry.
	FreqStatesMHz []float64
	DVFS          DVFSKind
	HasC1         bool

	MemGB   int
	Disks   []DiskSpec
	NetMbps float64

	// IdlePowerW and MaxPowerW are the wall-power range from Table I the
	// ground-truth model is calibrated to.
	IdlePowerW float64
	MaxPowerW  float64

	// Dynamic power split across components (fractions of the dynamic
	// range attributable to each subsystem at full activity; they should
	// sum to ~1).
	CPUWeight, MemWeight, DiskWeight, NetWeight float64
}

// MaxFreqMHz returns the nominal (highest) frequency.
func (p *PlatformSpec) MaxFreqMHz() float64 {
	return p.FreqStatesMHz[len(p.FreqStatesMHz)-1]
}

// TotalDisks returns the number of physical disks.
func (p *PlatformSpec) TotalDisks() int {
	n := 0
	for _, d := range p.Disks {
		n += d.Count
	}
	return n
}

// DiskBytesPerSec returns the platform's total sustained disk throughput
// across all spindles, for sizing workload demand against capability.
func (p *PlatformSpec) DiskBytesPerSec() float64 {
	total := 0.0
	for _, d := range p.Disks {
		total += diskTable[d.Type].maxBytesSec * float64(d.Count)
	}
	return total
}

// DiskOpsPerSec returns the platform's total IOPS ceiling.
func (p *PlatformSpec) DiskOpsPerSec() float64 {
	total := 0.0
	for _, d := range p.Disks {
		total += diskTable[d.Type].maxOpsSec * float64(d.Count)
	}
	return total
}

// NetBytesPerSec returns the NIC's line rate in bytes per second.
func (p *PlatformSpec) NetBytesPerSec() float64 { return p.NetMbps / 8 * 1e6 }

// MemBandwidthBytesPerSec returns the modeled memory bandwidth (the same
// sizing rule machines calibrate with: it grows with the square root of
// installed memory, standing in for channel count).
func (p *PlatformSpec) MemBandwidthBytesPerSec() float64 {
	return 2.0e9 * math.Sqrt(float64(p.MemGB))
}

// Validate checks internal consistency of the spec.
func (p *PlatformSpec) Validate() error {
	if p.Cores <= 0 {
		return fmt.Errorf("sim: platform %q has %d cores", p.Name, p.Cores)
	}
	if len(p.FreqStatesMHz) == 0 {
		return fmt.Errorf("sim: platform %q has no P-states", p.Name)
	}
	for i := 1; i < len(p.FreqStatesMHz); i++ {
		if p.FreqStatesMHz[i] <= p.FreqStatesMHz[i-1] {
			return fmt.Errorf("sim: platform %q P-states not ascending", p.Name)
		}
	}
	if p.DVFS == DVFSNone && len(p.FreqStatesMHz) != 1 {
		return fmt.Errorf("sim: platform %q has DVFSNone but %d P-states", p.Name, len(p.FreqStatesMHz))
	}
	if p.IdlePowerW <= 0 || p.MaxPowerW <= p.IdlePowerW {
		return fmt.Errorf("sim: platform %q power range [%g, %g] invalid", p.Name, p.IdlePowerW, p.MaxPowerW)
	}
	if p.TotalDisks() == 0 {
		return fmt.Errorf("sim: platform %q has no disks", p.Name)
	}
	w := p.CPUWeight + p.MemWeight + p.DiskWeight + p.NetWeight
	if w < 0.95 || w > 1.05 {
		return fmt.Errorf("sim: platform %q component weights sum to %g, want ~1", p.Name, w)
	}
	return nil
}

// Platforms returns the six platform classes of Table I, keyed by short
// name, calibrated to the paper's power ranges.
func Platforms() map[string]*PlatformSpec {
	ps := []*PlatformSpec{
		{
			Name: "Atom", Class: "Embedded", CPUModel: "Intel Atom N330 2-core 1.6 GHz",
			Cores: 2, Sockets: 1, TDPWatts: 8,
			FreqStatesMHz: []float64{1600}, DVFS: DVFSNone, HasC1: false,
			MemGB: 4, Disks: []DiskSpec{{Type: DiskSSD, Count: 1}}, NetMbps: 1000,
			IdlePowerW: 22, MaxPowerW: 26,
			CPUWeight: 0.62, MemWeight: 0.20, DiskWeight: 0.08, NetWeight: 0.10,
		},
		{
			Name: "Core2", Class: "Mobile", CPUModel: "Intel Core 2 Duo 2-core 2.26 GHz",
			Cores: 2, Sockets: 1, TDPWatts: 25,
			FreqStatesMHz: []float64{800, 1600, 2260}, DVFS: DVFSShared, HasC1: false,
			MemGB: 4, Disks: []DiskSpec{{Type: DiskSSD, Count: 1}}, NetMbps: 1000,
			IdlePowerW: 25, MaxPowerW: 46,
			CPUWeight: 0.60, MemWeight: 0.20, DiskWeight: 0.08, NetWeight: 0.12,
		},
		{
			Name: "Athlon", Class: "Desktop", CPUModel: "AMD Athlon 2-core 2.8 GHz",
			Cores: 2, Sockets: 1, TDPWatts: 65,
			FreqStatesMHz: []float64{800, 1800, 2800}, DVFS: DVFSShared, HasC1: false,
			MemGB: 8, Disks: []DiskSpec{{Type: DiskSSD, Count: 1}}, NetMbps: 1000,
			IdlePowerW: 54, MaxPowerW: 104,
			CPUWeight: 0.60, MemWeight: 0.20, DiskWeight: 0.07, NetWeight: 0.13,
		},
		{
			Name: "Opteron", Class: "Server", CPUModel: "AMD Opteron 4-core dual-socket 2.0 GHz",
			Cores: 8, Sockets: 2, TDPWatts: 50,
			FreqStatesMHz: []float64{1000, 1500, 2000}, DVFS: DVFSPerCore, HasC1: true,
			MemGB: 32, Disks: []DiskSpec{{Type: DiskSATA10K, Count: 2}}, NetMbps: 1000,
			IdlePowerW: 135, MaxPowerW: 190,
			CPUWeight: 0.52, MemWeight: 0.22, DiskWeight: 0.12, NetWeight: 0.14,
		},
		{
			Name: "XeonSATA", Class: "Server", CPUModel: "Intel Xeon 4-core dual-socket 2.33 GHz",
			Cores: 8, Sockets: 2, TDPWatts: 80,
			FreqStatesMHz: []float64{1333, 1867, 2330}, DVFS: DVFSPerCore, HasC1: true,
			MemGB: 16, Disks: []DiskSpec{{Type: DiskSATA7K, Count: 4}}, NetMbps: 1000,
			IdlePowerW: 250, MaxPowerW: 375,
			CPUWeight: 0.46, MemWeight: 0.18, DiskWeight: 0.26, NetWeight: 0.10,
		},
		{
			Name: "XeonSAS", Class: "Server", CPUModel: "Intel Xeon 4-core dual-socket 2.67 GHz",
			Cores: 8, Sockets: 2, TDPWatts: 80,
			FreqStatesMHz: []float64{1600, 2133, 2670}, DVFS: DVFSPerCore, HasC1: true,
			MemGB: 16, Disks: []DiskSpec{{Type: DiskSAS15K, Count: 6}}, NetMbps: 1000,
			IdlePowerW: 260, MaxPowerW: 380,
			CPUWeight: 0.42, MemWeight: 0.17, DiskWeight: 0.31, NetWeight: 0.10,
		},
	}
	out := make(map[string]*PlatformSpec, len(ps))
	for _, p := range ps {
		out[p.Name] = p
	}
	return out
}

// PlatformNames returns the canonical platform ordering used in the
// paper's tables.
func PlatformNames() []string {
	return []string{"Atom", "Core2", "Athlon", "Opteron", "XeonSATA", "XeonSAS"}
}

// Platform returns the named platform spec or an error.
func Platform(name string) (*PlatformSpec, error) {
	p, ok := Platforms()[name]
	if !ok {
		return nil, fmt.Errorf("sim: unknown platform %q (want one of %v)", name, PlatformNames())
	}
	return p, nil
}
