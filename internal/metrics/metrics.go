// Package metrics implements the error measures the paper evaluates power
// models with — most importantly the Dynamic Range Error (DRE, Eq. 6):
// root-mean-squared error divided by the dynamic power range, a stricter
// and platform-independent alternative to percent-of-total-power errors.
package metrics

import (
	"fmt"
	"math"

	"repro/internal/mathx"
)

// Summary collects the error measures for one prediction series.
type Summary struct {
	N        int     // samples
	RMSE     float64 // watts
	PctErr   float64 // RMSE / mean actual power (the common "% error")
	MedAbsE  float64 // median absolute error, watts
	MedRelE  float64 // median absolute error / actual, per sample
	DRE      float64 // RMSE / (max actual - idle)
	DynRange float64 // max actual - idle, watts
	MaxErr   float64 // worst absolute error, watts
}

// MSE returns the mean squared error between pred and actual.
func MSE(pred, actual []float64) (float64, error) {
	if len(pred) != len(actual) {
		return 0, fmt.Errorf("metrics: %d predictions vs %d actuals", len(pred), len(actual))
	}
	if len(pred) == 0 {
		return 0, fmt.Errorf("metrics: empty series")
	}
	s := 0.0
	for i := range pred {
		d := pred[i] - actual[i]
		s += d * d
	}
	return s / float64(len(pred)), nil
}

// RMSE returns the root-mean-squared error.
func RMSE(pred, actual []float64) (float64, error) {
	m, err := MSE(pred, actual)
	return math.Sqrt(m), err
}

// DRE computes Eq. 6: rmse / (pmax - pidle). It errors if the range is
// not positive, which indicates a degenerate evaluation set.
func DRE(rmse, pmax, pidle float64) (float64, error) {
	if pmax <= pidle {
		return 0, fmt.Errorf("metrics: dynamic range [%g, %g] is empty", pidle, pmax)
	}
	return rmse / (pmax - pidle), nil
}

// Evaluate computes the full summary for a prediction series. idleWatts is
// the measured at-rest power of the machine (or summed for a cluster); the
// dynamic range is max(actual) - idleWatts.
func Evaluate(pred, actual []float64, idleWatts float64) (Summary, error) {
	rmse, err := RMSE(pred, actual)
	if err != nil {
		return Summary{}, err
	}
	_, pmax := mathx.MinMax(actual)
	dre, err := DRE(rmse, pmax, idleWatts)
	if err != nil {
		return Summary{}, err
	}
	absErr := make([]float64, len(pred))
	relErr := make([]float64, len(pred))
	maxErr := 0.0
	for i := range pred {
		a := math.Abs(pred[i] - actual[i])
		absErr[i] = a
		if actual[i] != 0 {
			relErr[i] = a / actual[i]
		}
		if a > maxErr {
			maxErr = a
		}
	}
	mean := mathx.Mean(actual)
	pct := 0.0
	if mean != 0 {
		pct = rmse / mean
	}
	return Summary{
		N:        len(pred),
		RMSE:     rmse,
		PctErr:   pct,
		MedAbsE:  mathx.Median(absErr),
		MedRelE:  mathx.Median(relErr),
		DRE:      dre,
		DynRange: pmax - idleWatts,
		MaxErr:   maxErr,
	}, nil
}

// EnergyWh integrates a 1 Hz power series (watts) into watt-hours — the
// per-run energy accounting some related work models directly.
func EnergyWh(power []float64) float64 {
	s := 0.0
	for _, p := range power {
		s += p
	}
	return s / 3600
}

// Average returns the field-wise mean of several summaries (the paper
// reports fold- and machine-averaged figures). N is summed.
func Average(ss []Summary) Summary {
	if len(ss) == 0 {
		return Summary{}
	}
	var out Summary
	for _, s := range ss {
		out.N += s.N
		out.RMSE += s.RMSE
		out.PctErr += s.PctErr
		out.MedAbsE += s.MedAbsE
		out.MedRelE += s.MedRelE
		out.DRE += s.DRE
		out.DynRange += s.DynRange
		if s.MaxErr > out.MaxErr {
			out.MaxErr = s.MaxErr
		}
	}
	k := float64(len(ss))
	out.RMSE /= k
	out.PctErr /= k
	out.MedAbsE /= k
	out.MedRelE /= k
	out.DRE /= k
	out.DynRange /= k
	return out
}
