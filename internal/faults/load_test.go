package faults

import (
	"strings"
	"testing"
)

func TestOverloadLoadSurgeValidation(t *testing.T) {
	ok := func(js string) {
		t.Helper()
		if _, err := ParseScenario(strings.NewReader(js)); err != nil {
			t.Fatalf("valid scenario rejected: %v\n%s", err, js)
		}
	}
	bad := func(js, wantSub string) {
		t.Helper()
		_, err := ParseScenario(strings.NewReader(js))
		if err == nil {
			t.Fatalf("invalid scenario accepted:\n%s", js)
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("error %q does not mention %q", err, wantSub)
		}
	}

	ok(`{"load": [{"start_s": 0, "end_s": 10, "multiplier": 5}]}`)
	ok(`{"load": [{"start_s": 10, "end_s": 20, "multiplier": 0.25},
	            {"start_s": 20, "end_s": 30, "multiplier": 8}]}`)
	bad(`{"load": [{"start_s": 0, "end_s": 10, "multiplier": 0}]}`, "multiplier")
	bad(`{"load": [{"start_s": 0, "end_s": 10, "multiplier": -1}]}`, "multiplier")
	bad(`{"load": [{"start_s": 0, "end_s": 10, "multiplier": 1e999}]}`, "multiplier")
	bad(`{"load": [{"start_s": 5, "end_s": 5, "multiplier": 2}]}`, "empty or inverted")
	bad(`{"load": [{"start_s": -1, "end_s": 5, "multiplier": 2}]}`, "negative")
	bad(`{"load": [{"start_s": 0, "end_s": 10, "multiplier": 2},
	             {"start_s": 5, "end_s": 15, "multiplier": 3}]}`, "overlap")
	bad(`{"load": [{"start_s": 0, "end_s": 10, "multiplier": 2, "extra": 1}]}`, "unknown field")
}

func TestOverloadLoadMultiplierWindows(t *testing.T) {
	sc := &Scenario{Load: []LoadSurge{
		{StartS: 5, EndS: 10, Multiplier: 5},
		{StartS: 20, EndS: 25, Multiplier: 0.5},
	}}
	in, err := NewInjector(sc, 42)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]float64{0: 1, 4: 1, 5: 5, 9: 5, 10: 1, 20: 0.5, 24: 0.5, 25: 1, 1000: 1}
	for sec, m := range want {
		if got := in.LoadMultiplier(sec); got != m {
			t.Errorf("LoadMultiplier(%d) = %g, want %g", sec, got, m)
		}
	}
	// Determinism: two injectors over the same scenario agree everywhere.
	in2, err := NewInjector(sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	for sec := 0; sec < 30; sec++ {
		if in.LoadMultiplier(sec) != in2.LoadMultiplier(sec) {
			t.Fatalf("multiplier at second %d depends on the seed", sec)
		}
	}
	// An empty scenario means no surge anywhere.
	none, err := NewInjector(&Scenario{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := none.LoadMultiplier(3); got != 1 {
		t.Fatalf("empty scenario multiplier = %g, want 1", got)
	}
}
