package models

import (
	"encoding/json"
	"fmt"

	"repro/internal/mars"
)

// modelEnvelope is the JSON wire form of a Model: a technique tag plus the
// matching payload.
type modelEnvelope struct {
	Technique Technique   `json:"technique"`
	Linear    *Linear     `json:"linear,omitempty"`
	MARS      *mars.Model `json:"mars,omitempty"`
	Means     []float64   `json:"means,omitempty"`  // MARS input scaler
	Scales    []float64   `json:"scales,omitempty"` // MARS input scaler
	Lo        []float64   `json:"lo,omitempty"`     // MARS input clamps
	Hi        []float64   `json:"hi,omitempty"`     // MARS input clamps
	Switching *Switching  `json:"switching,omitempty"`
}

func envelope(m Model) (*modelEnvelope, error) {
	switch v := m.(type) {
	case *Linear:
		return &modelEnvelope{Technique: TechLinear, Linear: v}, nil
	case *marsModel:
		return &modelEnvelope{Technique: v.tech, MARS: v.m, Means: v.means, Scales: v.scales, Lo: v.lo, Hi: v.hi}, nil
	case *Switching:
		return &modelEnvelope{Technique: TechSwitching, Switching: v}, nil
	default:
		return nil, fmt.Errorf("models: cannot serialize model type %T", m)
	}
}

func (e *modelEnvelope) model() (Model, error) {
	switch e.Technique {
	case TechLinear:
		if e.Linear == nil {
			return nil, fmt.Errorf("models: linear envelope missing payload")
		}
		return e.Linear, nil
	case TechPiecewise, TechQuadratic:
		if e.MARS == nil {
			return nil, fmt.Errorf("models: %s envelope missing MARS payload", e.Technique)
		}
		if len(e.Means) != len(e.Scales) {
			return nil, fmt.Errorf("models: %s envelope scaler mismatch (%d means, %d scales)",
				e.Technique, len(e.Means), len(e.Scales))
		}
		return &marsModel{m: e.MARS, tech: e.Technique, means: e.Means, scales: e.Scales, lo: e.Lo, hi: e.Hi}, nil
	case TechSwitching:
		if e.Switching == nil {
			return nil, fmt.Errorf("models: switching envelope missing payload")
		}
		return e.Switching, nil
	default:
		return nil, fmt.Errorf("models: unknown technique %q in envelope", e.Technique)
	}
}

// machineModelJSON is the wire form of MachineModel.
type machineModelJSON struct {
	Platform string         `json:"platform"`
	Spec     FeatureSpec    `json:"feature_spec"`
	Model    *modelEnvelope `json:"model"`
}

// MarshalJSON implements json.Marshaler.
func (mm *MachineModel) MarshalJSON() ([]byte, error) {
	env, err := envelope(mm.Model)
	if err != nil {
		return nil, err
	}
	return json.Marshal(machineModelJSON{Platform: mm.Platform, Spec: mm.Spec, Model: env})
}

// UnmarshalJSON implements json.Unmarshaler.
func (mm *MachineModel) UnmarshalJSON(data []byte) error {
	var w machineModelJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.Model == nil {
		return fmt.Errorf("models: machine model JSON missing model")
	}
	m, err := w.Model.model()
	if err != nil {
		return err
	}
	mm.Platform = w.Platform
	mm.Spec = w.Spec
	mm.Model = m
	return nil
}

// MarshalJSON implements json.Marshaler.
func (cm *ClusterModel) MarshalJSON() ([]byte, error) {
	return json.Marshal(cm.ByPlatform)
}

// UnmarshalJSON implements json.Unmarshaler.
func (cm *ClusterModel) UnmarshalJSON(data []byte) error {
	byPlatform := map[string]*MachineModel{}
	if err := json.Unmarshal(data, &byPlatform); err != nil {
		return err
	}
	if len(byPlatform) == 0 {
		return fmt.Errorf("models: cluster model JSON has no machine models")
	}
	cm.ByPlatform = byPlatform
	return nil
}
