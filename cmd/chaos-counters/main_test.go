package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/counters"
)

func capture(t *testing.T, category string, deps bool) (string, error) {
	t.Helper()
	f, err := os.Create(filepath.Join(t.TempDir(), "out"))
	if err != nil {
		t.Fatal(err)
	}
	runErr := run(f, category, deps)
	f.Close()
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestListAll(t *testing.T) {
	out, err := capture(t, "", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) < 1000 {
		t.Error("inventory looks truncated")
	}
	for _, want := range []string{"Processor", "Memory", "signal", "sum", "noise"} {
		if !contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestListCategory(t *testing.T) {
	out, err := capture(t, "Memory", false)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(out, counters.MemPages) {
		t.Error("Memory listing missing Pages/sec")
	}
	if contains(out, counters.NetDatagrams) {
		t.Error("Memory listing leaked network counters")
	}
	if _, err := capture(t, "NoSuchCategory", false); err == nil {
		t.Error("expected error for unknown category")
	}
}

func TestListDeps(t *testing.T) {
	out, err := capture(t, "", true)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(out, counters.MemPages+" =") {
		t.Error("deps listing missing Pages/sec identity")
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
