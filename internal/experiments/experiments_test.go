package experiments

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"
)

// The fast suite is shared across tests: collection and grids are
// deterministic and expensive, so they are computed once.
var (
	suiteOnce sync.Once
	suiteVal  *Suite
)

func fastSuite(t *testing.T) *Suite {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment suite in -short mode")
	}
	suiteOnce.Do(func() { suiteVal = NewSuite(Fast()) })
	return suiteVal
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Machines != 5 || cfg.Runs != 5 || len(cfg.Platforms) != 6 || len(cfg.Workloads) != 4 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	d := Default()
	if d.Machines != 5 || d.Runs != 5 {
		t.Errorf("Default() = %+v", d)
	}
	f := Fast()
	if f.Machines >= d.Machines {
		t.Error("Fast should be smaller than Default")
	}
}

func TestTableIRendering(t *testing.T) {
	var buf bytes.Buffer
	TableI(&buf)
	out := buf.String()
	for _, p := range []string{"Atom", "Core2", "Athlon", "Opteron", "XeonSATA", "XeonSAS"} {
		if !strings.Contains(out, p) {
			t.Errorf("Table I missing platform %s", p)
		}
	}
}

func TestTableII(t *testing.T) {
	s := fastSuite(t)
	var buf bytes.Buffer
	res, err := s.TableII(&buf)
	if err != nil {
		t.Fatalf("TableII: %v", err)
	}
	for _, p := range s.Cfg.Platforms {
		n := len(res.Selected[p])
		if n < 3 || n > 25 {
			t.Errorf("%s selected %d features, want a 10-20ish set: %v", p, n, res.Selected[p])
		}
	}
	if len(res.General) < 4 {
		t.Errorf("general set too small: %v", res.General)
	}
	if !strings.Contains(buf.String(), "General") {
		t.Error("rendering missing General column")
	}
}

func TestTableIIIDREStricterThanPctErr(t *testing.T) {
	s := fastSuite(t)
	rows, err := s.TableIII(io.Discard, "Core2")
	if err != nil {
		t.Fatalf("TableIII: %v", err)
	}
	if len(rows) != len(s.Cfg.Workloads) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The paper's Table III point: DRE is always the stricter metric.
		if r.DRE <= r.PctErr {
			t.Errorf("%s/%s: DRE %.3f should exceed %%Err %.3f", r.Platform, r.Workload, r.DRE, r.PctErr)
		}
		if r.RMSE <= 0 {
			t.Errorf("%s/%s: non-positive rMSE", r.Platform, r.Workload)
		}
	}
}

func TestTableIVAllCellsUnderBound(t *testing.T) {
	s := fastSuite(t)
	cells, err := s.TableIV(io.Discard)
	if err != nil {
		t.Fatalf("TableIV: %v", err)
	}
	want := len(s.Cfg.Platforms) * len(s.Cfg.Workloads)
	if len(cells) != want {
		t.Fatalf("cells = %d, want %d", len(cells), want)
	}
	within12 := 0
	for _, c := range cells {
		if c.ClusterDRE > 0.15 {
			t.Errorf("%s/%s best DRE %.1f%% exceeds 15%%", c.Platform, c.Workload, c.ClusterDRE*100)
		}
		if c.ClusterDRE <= 0.12 {
			within12++
		}
		if c.MachineMedRelE > 0.05 {
			t.Errorf("%s/%s median relative error %.1f%% exceeds 5%%", c.Platform, c.Workload, c.MachineMedRelE*100)
		}
	}
	if within12*2 < len(cells) {
		t.Errorf("only %d/%d cells within the paper's 12%% bound", within12, len(cells))
	}
	hist := BestLabelHistogram(cells)
	if len(hist) == 0 {
		t.Error("empty label histogram")
	}
}

func TestFigure1(t *testing.T) {
	s := fastSuite(t)
	var buf bytes.Buffer
	runs, err := s.Figure1(&buf, s.Cfg.Platforms[0])
	if err != nil {
		t.Fatalf("Figure1: %v", err)
	}
	if len(runs) != len(s.Cfg.Workloads)*s.Cfg.Runs {
		t.Fatalf("runs = %d, want %d", len(runs), len(s.Cfg.Workloads)*s.Cfg.Runs)
	}
	for _, r := range runs {
		if r.MaxW <= r.MinW || r.Seconds != len(r.Series) {
			t.Errorf("degenerate run summary: %+v", r)
		}
	}
}

func TestFigure2(t *testing.T) {
	s := fastSuite(t)
	hist, threshold, err := s.Figure2(io.Discard, s.Cfg.Platforms[len(s.Cfg.Platforms)-1])
	if err != nil {
		t.Fatalf("Figure2: %v", err)
	}
	if len(hist) == 0 {
		t.Error("empty histogram")
	}
	if threshold < 2 {
		t.Errorf("threshold %v below the scaled starting value", threshold)
	}
}

func TestFigures3And4Shapes(t *testing.T) {
	s := fastSuite(t)
	rows3, err := s.Figure3(io.Discard)
	if err != nil {
		t.Fatalf("Figure3: %v", err)
	}
	rows4, err := s.Figure4(io.Discard)
	if err != nil {
		t.Fatalf("Figure4: %v", err)
	}
	if len(rows3) != 16 || len(rows4) != 16 {
		t.Fatalf("grid sizes %d/%d, want 16 (4 techniques x 4 feature sets)", len(rows3), len(rows4))
	}
	find := func(rows []FigureGridRow, tech, label string) *FigureGridRow {
		for i := range rows {
			if string(rows[i].Technique) == tech && rows[i].SpecLabel == label {
				return &rows[i]
			}
		}
		return nil
	}
	// Figure 4's claim (Prime): piecewise with CPU-only already beats the
	// linear CPU-only model; technique matters.
	linU := find(rows4, "linear", "U")
	pwU := find(rows4, "piecewise", "U")
	if linU == nil || pwU == nil || linU.Skipped != "" || pwU.Skipped != "" {
		t.Fatal("missing U-column entries in Figure 4")
	}
	if pwU.DRE >= linU.DRE {
		t.Errorf("Prime: piecewise-U DRE %.3f should beat linear-U %.3f", pwU.DRE, linU.DRE)
	}
	// Figure 3's claim (PageRank-like workload): richer feature sets beat
	// CPU-only for the same technique.
	linU3 := find(rows3, "linear", "U")
	linC3 := find(rows3, "linear", "C")
	if linU3 == nil || linC3 == nil {
		t.Fatal("missing entries in Figure 3")
	}
	if linC3.DRE >= linU3.DRE {
		t.Errorf("feature selection should help: linear-C %.3f vs linear-U %.3f", linC3.DRE, linU3.DRE)
	}
}

func TestFigure5StrawmanFailsAtTheTop(t *testing.T) {
	s := fastSuite(t)
	res, err := s.Figure5(io.Discard)
	if err != nil {
		t.Fatalf("Figure5: %v", err)
	}
	if res.StrawmanSummary.DRE <= res.ModelSummary.DRE {
		t.Errorf("strawman DRE %.3f should exceed model DRE %.3f",
			res.StrawmanSummary.DRE, res.ModelSummary.DRE)
	}
	if res.StrawmanTopMiss <= res.ModelTopMiss {
		t.Errorf("strawman should miss the top of the range more: %.2f vs %.2f",
			res.StrawmanTopMiss, res.ModelTopMiss)
	}
}

func TestHeterogeneousComposability(t *testing.T) {
	s := fastSuite(t)
	res, err := s.Heterogeneous(io.Discard)
	if err != nil {
		t.Fatalf("Heterogeneous: %v", err)
	}
	if len(res.PerRunDRE) != s.Cfg.Runs {
		t.Fatalf("per-run DREs = %d", len(res.PerRunDRE))
	}
	if res.WorstDRE > 0.15 {
		t.Errorf("heterogeneous worst DRE %.1f%% exceeds 15%% (paper: 12%%)", res.WorstDRE*100)
	}
}

func TestOverheadUnderOnePercent(t *testing.T) {
	s := fastSuite(t)
	out, err := s.Overhead(io.Discard)
	if err != nil {
		t.Fatalf("Overhead: %v", err)
	}
	for p, f := range out {
		if f <= 0 || f >= 0.01 {
			t.Errorf("%s overhead %.4f%% out of (0, 1%%)", p, f*100)
		}
	}
}

func TestAblations(t *testing.T) {
	s := fastSuite(t)
	pooled, single, err := s.AblationPooling(io.Discard, s.Cfg.Platforms[0], s.Cfg.Workloads[0])
	if err != nil {
		t.Fatalf("AblationPooling: %v", err)
	}
	if pooled <= 0 || single <= 0 {
		t.Error("ablation DREs missing")
	}
	counts, err := s.AblationCorrThreshold(io.Discard, s.Cfg.Platforms[0], []float64{0.9, 0.95})
	if err != nil {
		t.Fatalf("AblationCorrThreshold: %v", err)
	}
	if len(counts) != 2 {
		t.Errorf("threshold sweep = %v", counts)
	}
}

func TestAblationMachineCount(t *testing.T) {
	s := fastSuite(t)
	out, err := s.AblationMachineCount(io.Discard, s.Cfg.Platforms[0], s.Cfg.Workloads[0])
	if err != nil {
		t.Fatalf("AblationMachineCount: %v", err)
	}
	if len(out) != s.Cfg.Machines {
		t.Fatalf("entries = %d", len(out))
	}
	// Sampling all machines should not be (much) worse than sampling one:
	// pooling absorbs machine variability.
	if out[s.Cfg.Machines] > out[1]*1.5+0.02 {
		t.Errorf("full pooling DRE %.3f much worse than single machine %.3f", out[s.Cfg.Machines], out[1])
	}
}

func TestAblationLagWindow(t *testing.T) {
	s := fastSuite(t)
	out, err := s.AblationLagWindow(io.Discard, s.Cfg.Platforms[0], s.Cfg.Workloads[0], []int{0, 1})
	if err != nil {
		t.Fatalf("AblationLagWindow: %v", err)
	}
	// The paper: frequency history does not significantly change accuracy.
	d := out[1] - out[0]
	if d > 0.05 || d < -0.05 {
		t.Errorf("lag window swings DRE by %.3f; expected a small effect (%v)", d, out)
	}
}

func TestSensitivityNoiseMonotone(t *testing.T) {
	s := fastSuite(t)
	out, err := s.SensitivityNoise(io.Discard, s.Cfg.Platforms[0], "Prime", []float64{0.5, 2})
	if err != nil {
		t.Fatalf("SensitivityNoise: %v", err)
	}
	lo, hi := out[0.5], out[2]
	if lo <= 0 || hi <= 0 {
		t.Fatal("missing DREs")
	}
	// More substrate noise must mean more (or at least not less) model
	// error: the absolute accuracy is noise-bound, not method-bound.
	if hi <= lo {
		t.Errorf("DRE should grow with noise: x0.5 -> %.3f, x2 -> %.3f", lo, hi)
	}
}

func TestGeneralityBeyondTrainingMix(t *testing.T) {
	s := fastSuite(t)
	res, err := s.Generality(io.Discard, s.Cfg.Platforms[0], []string{"Analytics"})
	if err != nil {
		t.Fatalf("Generality: %v", err)
	}
	if res.TrainedMix <= 0 || res.TrainedMix > 0.15 {
		t.Errorf("training-mix DRE %.3f out of range", res.TrainedMix)
	}
	unseen := res.Unseen["Analytics"]
	retrained := res.Retrained["Analytics"]
	if unseen <= 0 || retrained <= 0 {
		t.Fatal("missing DREs")
	}
	// Retraining with one run of the unseen workload must recover most
	// of the gap (the paper's prescribed remedy).
	if retrained > unseen+0.02 {
		t.Errorf("retraining did not help: unseen %.3f -> retrained %.3f", unseen, retrained)
	}
	if retrained > 0.15 {
		t.Errorf("retrained DRE %.3f still above bound", retrained)
	}
}

func TestMultiWorkloadSingleModel(t *testing.T) {
	s := fastSuite(t)
	res, err := s.MultiWorkload(io.Discard, s.Cfg.Platforms[0])
	if err != nil {
		t.Fatalf("MultiWorkload: %v", err)
	}
	if len(res.PerWorkload) != len(s.Cfg.Workloads) {
		t.Fatalf("per-workload entries = %d", len(res.PerWorkload))
	}
	// The single model must stay within the paper's bound on every
	// workload simultaneously.
	for wl, dre := range res.PerWorkload {
		if dre > 0.15 {
			t.Errorf("%s: single-model DRE %.1f%% exceeds 15%%", wl, dre*100)
		}
	}
	if res.Overall <= 0 || res.Overall > 0.15 {
		t.Errorf("overall DRE %.3f out of range", res.Overall)
	}
}

func TestAblationPerCoreFreq(t *testing.T) {
	s := fastSuite(t)
	p := s.PickPlatform("Opteron") // per-core DVFS
	proxy, perCore, err := s.AblationPerCoreFreq(io.Discard, p, s.Cfg.Workloads[0])
	if err != nil {
		t.Fatalf("AblationPerCoreFreq: %v", err)
	}
	if proxy <= 0 || perCore <= 0 {
		t.Error("missing DREs")
	}
	// The paper used core 0 as a proxy because core frequencies were
	// highly correlated; per-core features should not be dramatically
	// better or worse here either.
	if d := perCore - proxy; d > 0.08 || d < -0.08 {
		t.Errorf("per-core frequencies swing DRE by %.3f; expected a modest effect", d)
	}
}

func TestCalibrationTraining(t *testing.T) {
	s := fastSuite(t)
	res, err := s.CalibrationTraining(io.Discard, s.Cfg.Platforms[0])
	if err != nil {
		t.Fatalf("CalibrationTraining: %v", err)
	}
	for wl, dre := range res.PerWorkload {
		if dre <= 0 || dre > 0.5 {
			t.Errorf("%s calibration-trained DRE %.3f out of sane range", wl, dre)
		}
	}
}

func TestVariabilityStudy(t *testing.T) {
	idle, max, err := VariabilityStudy(io.Discard, "Core2", 20, 7)
	if err != nil {
		t.Fatalf("VariabilityStudy: %v", err)
	}
	// The paper observed up to 10% machine-to-machine variation.
	if idle < 0.01 || idle > 0.25 {
		t.Errorf("idle spread %.3f outside plausible range", idle)
	}
	if max < 0.01 || max > 0.25 {
		t.Errorf("full-load spread %.3f outside plausible range", max)
	}
	if _, _, err := VariabilityStudy(io.Discard, "VAX", 5, 1); err == nil {
		t.Error("expected error for unknown platform")
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline(nil, 10); got != "" {
		t.Errorf("empty series sparkline = %q", got)
	}
	s := sparkline([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 4)
	if len([]rune(s)) != 4 {
		t.Errorf("sparkline width = %d, want 4", len([]rune(s)))
	}
	flat := sparkline([]float64{5, 5, 5}, 3)
	if len([]rune(flat)) != 3 {
		t.Errorf("flat sparkline = %q", flat)
	}
}

func TestTruncate(t *testing.T) {
	if truncate("short", 10) != "short" {
		t.Error("truncate should pass short strings")
	}
	if got := truncate("abcdefghij", 5); len([]rune(got)) != 5 {
		t.Errorf("truncate = %q", got)
	}
}
