package mathx

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the minimum and maximum of xs. It returns (0, 0) for an
// empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Correlation returns the Pearson correlation coefficient between xs and
// ys. It returns 0 when either input is constant or the lengths differ.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// CorrelationMatrix returns the Pearson correlation matrix of the columns
// of x.
func CorrelationMatrix(x *Matrix) *Matrix {
	n := x.Cols
	cols := make([][]float64, n)
	for j := 0; j < n; j++ {
		cols[j] = x.Col(j)
	}
	out := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		out.Set(i, i, 1)
		for j := i + 1; j < n; j++ {
			r := Correlation(cols[i], cols[j])
			out.Set(i, j, r)
			out.Set(j, i, r)
		}
	}
	return out
}

// Standardize centers and scales xs to zero mean and unit standard
// deviation, returning the transformed copy along with the mean and
// standard deviation used. A constant column is returned as all zeros with
// scale 1 so downstream solvers see a harmless column.
func Standardize(xs []float64) (z []float64, mean, scale float64) {
	mean = Mean(xs)
	scale = StdDev(xs)
	if scale == 0 {
		scale = 1
	}
	z = make([]float64, len(xs))
	for i, x := range xs {
		z[i] = (x - mean) / scale
	}
	return z, mean, scale
}

// NormalSurvival returns P(Z > z) for a standard normal variable, used by
// the Wald significance test. It relies on the complementary error
// function for numerical stability in the tails.
func NormalSurvival(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// WaldPValue returns the two-sided p-value of the Wald z-statistic
// |coef/se|. A zero or non-finite standard error yields p = 1 (no
// evidence the coefficient differs from zero).
func WaldPValue(coef, se float64) float64 {
	if se <= 0 || math.IsNaN(se) || math.IsInf(se, 0) {
		return 1
	}
	z := math.Abs(coef / se)
	return 2 * NormalSurvival(z)
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
