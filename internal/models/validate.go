package models

import (
	"fmt"
	"math"
	"sort"
)

// ModelInfo is the deploy-time metadata of one machine model — what a
// model registry lists about a version without touching the fitted
// coefficients.
type ModelInfo struct {
	Platform  string    `json:"platform"`
	Technique Technique `json:"technique"`
	Inputs    int       `json:"inputs"`
	Features  []string  `json:"features"`
}

// Validate checks that a machine model is deployable: platform and model
// present, the feature spec's input width matching the fitted model, and a
// probe prediction that comes back finite. The model registry runs this
// before admitting a version, so a truncated or hand-mangled model file
// can never become the serving model.
func (mm *MachineModel) Validate() error {
	if mm.Platform == "" {
		return fmt.Errorf("models: machine model has no platform")
	}
	if mm.Model == nil {
		return fmt.Errorf("models: machine model for %s has no fitted model", mm.Platform)
	}
	n := mm.Model.NumInputs()
	if n <= 0 {
		return fmt.Errorf("models: %s model reports %d inputs", mm.Platform, n)
	}
	if want := mm.Spec.NumInputs(); want != n {
		return fmt.Errorf("models: %s spec implies %d inputs but model wants %d", mm.Platform, want, n)
	}
	if sw, ok := mm.Model.(*Switching); ok {
		if sw.FreqCol < 0 || sw.FreqCol >= n {
			return fmt.Errorf("models: %s switching model frequency column %d out of range [0,%d)", mm.Platform, sw.FreqCol, n)
		}
	}
	probe := make([]float64, n)
	if w := mm.Model.Predict(probe); math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("models: %s model predicts non-finite power (%g) on probe row", mm.Platform, w)
	}
	return nil
}

// Info returns the machine model's registry metadata.
func (mm *MachineModel) Info() ModelInfo {
	return ModelInfo{
		Platform:  mm.Platform,
		Technique: mm.Model.Technique(),
		Inputs:    mm.Model.NumInputs(),
		Features:  append([]string(nil), mm.Spec.Counters...),
	}
}

// Validate checks that every machine model in the cluster model is
// deployable and keyed consistently.
func (cm *ClusterModel) Validate() error {
	if cm == nil || len(cm.ByPlatform) == 0 {
		return fmt.Errorf("models: empty cluster model")
	}
	for platform, mm := range cm.ByPlatform {
		if mm == nil {
			return fmt.Errorf("models: nil machine model for platform %q", platform)
		}
		if mm.Platform != platform {
			return fmt.Errorf("models: machine model keyed %q but built for %q", platform, mm.Platform)
		}
		if err := mm.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Platforms returns the cluster model's platform names, sorted.
func (cm *ClusterModel) Platforms() []string {
	out := make([]string, 0, len(cm.ByPlatform))
	for p := range cm.ByPlatform {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Infos returns per-platform metadata, sorted by platform.
func (cm *ClusterModel) Infos() []ModelInfo {
	out := make([]ModelInfo, 0, len(cm.ByPlatform))
	for _, p := range cm.Platforms() {
		out = append(out, cm.ByPlatform[p].Info())
	}
	return out
}
