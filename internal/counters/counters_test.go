package counters

import (
	"strings"
	"testing"

	"repro/internal/mathx"
)

func TestStandardRegistrySize(t *testing.T) {
	r := StandardRegistry()
	if r.Len() < 230 {
		t.Errorf("registry has %d counters, want >= 230 (paper starts from ~250)", r.Len())
	}
	if r.Len() > 320 {
		t.Errorf("registry has %d counters, want a curated set not the whole namespace", r.Len())
	}
}

func TestStandardRegistryTableIICounters(t *testing.T) {
	r := StandardRegistry()
	// Every counter the paper's Table II lists must exist.
	for _, name := range []string{
		CPUTotal, CPUFreqCore0, CPUInterrupts, CPUDPCTime,
		MemPageFaults, MemCommitted, MemCacheFaults, MemPages, MemPageReads, MemPoolNonpaged,
		DiskTimePct, DiskBytes, ProcPageFaults, ProcIOBytes, NetDatagrams,
		FSDataMapPins, FSPinReads, FSPinReadHits, FSCopyReads, FSFastReadsNP, FSLazyFlushes,
		JobPageFilePeak,
	} {
		if _, ok := r.Index(name); !ok {
			t.Errorf("Table II counter %q missing from registry", name)
		}
	}
}

func TestRegistryCategoriesCovered(t *testing.T) {
	r := StandardRegistry()
	seen := map[Category]int{}
	for _, d := range r.Defs {
		seen[d.Category]++
	}
	for _, cat := range []Category{CatProcessor, CatProcessorPerf, CatMemory,
		CatPhysicalDisk, CatProcess, CatJobObject, CatFSCache, CatNetwork} {
		if seen[cat] == 0 {
			t.Errorf("category %s has no counters", cat)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate counter name")
		}
	}()
	r := NewRegistry()
	r.Add(Def{Name: "x", Kind: KindConstant})
	r.Add(Def{Name: "x", Kind: KindConstant})
}

func TestRegistryIndexAndNames(t *testing.T) {
	r := StandardRegistry()
	names := r.Names()
	if len(names) != r.Len() {
		t.Fatalf("Names length %d != Len %d", len(names), r.Len())
	}
	for i, n := range names {
		j, ok := r.Index(n)
		if !ok || j != i {
			t.Fatalf("Index(%q) = %d,%v want %d", n, j, ok, i)
		}
	}
	if _, ok := r.Index("no such counter"); ok {
		t.Error("Index should miss unknown names")
	}
}

func TestMustIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown counter")
		}
	}()
	StandardRegistry().MustIndex("nope")
}

func TestCoDependenciesDeclared(t *testing.T) {
	r := StandardRegistry()
	deps := r.CoDependencies()
	if len(deps) < 5 {
		t.Errorf("registry declares %d co-dependencies, want several (a=b+c counters)", len(deps))
	}
	// Pages/sec = Pages Input/sec + Pages Output/sec must be among them.
	pages := r.MustIndex(MemPages)
	found := false
	for _, d := range deps {
		if d.Sum == pages && len(d.Parts) == 2 {
			found = true
		}
	}
	if !found {
		t.Error("Pages/sec co-dependency not declared")
	}
	// Sources must precede dependents so expansion is single-pass.
	for _, d := range r.Defs {
		idx := r.MustIndex(d.Name)
		for _, s := range d.Sources {
			if s >= idx {
				t.Errorf("counter %q depends on later counter %d", d.Name, s)
			}
		}
	}
}

// fakeSignals returns a complete signal map with value v for every signal
// the registry references.
func fakeSignals(r *Registry, v float64) Signals {
	sig := Signals{}
	for _, d := range r.Defs {
		if d.Kind == KindSignal {
			sig[d.Signal] = v
		}
	}
	return sig
}

func TestExpanderProducesFullVector(t *testing.T) {
	r := StandardRegistry()
	e := NewExpander(r, 1)
	out, err := e.Sample(fakeSignals(r, 50))
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	if len(out) != r.Len() {
		t.Fatalf("vector length %d, want %d", len(out), r.Len())
	}
	if e.SampleCount() != 1 {
		t.Errorf("SampleCount = %d", e.SampleCount())
	}
}

func TestExpanderMissingSignal(t *testing.T) {
	r := StandardRegistry()
	e := NewExpander(r, 1)
	if _, err := e.Sample(Signals{}); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("expected missing-signal error, got %v", err)
	}
}

func TestExpanderSumsAreExact(t *testing.T) {
	r := StandardRegistry()
	e := NewExpander(r, 2)
	out, err := e.Sample(fakeSignals(r, 123))
	if err != nil {
		t.Fatal(err)
	}
	for _, dep := range r.CoDependencies() {
		sum := 0.0
		for _, p := range dep.Parts {
			sum += out[p]
		}
		if diff := out[dep.Sum] - sum; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("co-dependent counter %q != sum of parts (diff %g)", r.Defs[dep.Sum].Name, diff)
		}
	}
}

func TestExpanderLaggedCounters(t *testing.T) {
	r := StandardRegistry()
	e := NewExpander(r, 3)
	var lagIdx, srcIdx int
	for i, d := range r.Defs {
		if d.Kind == KindLagged {
			lagIdx, srcIdx = i, d.Sources[0]
			break
		}
	}
	first, err := e.Sample(fakeSignals(r, 10))
	if err != nil {
		t.Fatal(err)
	}
	if first[lagIdx] != 0 {
		t.Errorf("first lagged value = %v, want 0", first[lagIdx])
	}
	second, err := e.Sample(fakeSignals(r, 99))
	if err != nil {
		t.Fatal(err)
	}
	if second[lagIdx] != first[srcIdx] {
		t.Errorf("lagged value = %v, want previous source %v", second[lagIdx], first[srcIdx])
	}
}

func TestExpanderDeterminism(t *testing.T) {
	r := StandardRegistry()
	run := func() [][]float64 {
		e := NewExpander(r, 42)
		var out [][]float64
		for i := 0; i < 5; i++ {
			v, err := e.Sample(fakeSignals(r, float64(i*10)))
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, v)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("non-deterministic counter %d at t=%d", j, i)
			}
		}
	}
}

func TestExpanderScaledCountersCorrelate(t *testing.T) {
	r := StandardRegistry()
	e := NewExpander(r, 5)
	// Vary the cpu_util signal and confirm the scaled per-core copy of
	// the process CPU counter tracks the total closely.
	procIdx := r.MustIndex(`Process(_Total)\% Processor Time`)
	cpuIdx := r.MustIndex(CPUTotal)
	var cpuVals, procVals []float64
	for i := 0; i < 200; i++ {
		sig := fakeSignals(r, 10)
		sig["cpu_util"] = float64(i % 100)
		out, err := e.Sample(sig)
		if err != nil {
			t.Fatal(err)
		}
		cpuVals = append(cpuVals, out[cpuIdx])
		procVals = append(procVals, out[procIdx])
	}
	if corr := mathx.Correlation(cpuVals, procVals); corr < 0.95 {
		t.Errorf("scaled counter correlation = %v, want > 0.95", corr)
	}
}

func TestExpanderConstantCounters(t *testing.T) {
	r := StandardRegistry()
	e := NewExpander(r, 6)
	idx := r.MustIndex(`Memory\Commit Limit`)
	a, _ := e.Sample(fakeSignals(r, 1))
	b, _ := e.Sample(fakeSignals(r, 1000))
	if a[idx] != b[idx] {
		t.Error("constant counter changed between samples")
	}
}

// Property: for non-negative base signals, every non-inverse counter the
// expander produces is non-negative (Perfmon rates cannot go below zero).
func TestExpanderNonNegativeProperty(t *testing.T) {
	r := StandardRegistry()
	e := NewExpander(r, 11)
	rng := mathx.NewRand(12)
	for iter := 0; iter < 200; iter++ {
		sig := Signals{}
		for _, d := range r.Defs {
			if d.Kind == KindSignal {
				sig[d.Signal] = rng.Float64() * 1e9
			}
		}
		out, err := e.Sample(sig)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			d := r.Defs[i]
			// Inverse counters (negative Scale with an Offset) may dip
			// below zero when the source saturates; everything else is a
			// rate or level and must be non-negative.
			if d.Kind == KindScaled && d.Scale < 0 {
				continue
			}
			if d.Kind == KindSum {
				continue // sums of parts that may include inverses
			}
			if v < 0 {
				t.Fatalf("counter %q went negative: %v", d.Name, v)
			}
		}
	}
}

func TestExpanderNoiseCountersBoundedAndMoving(t *testing.T) {
	r := StandardRegistry()
	e := NewExpander(r, 7)
	var noiseIdx int
	for i, d := range r.Defs {
		if d.Kind == KindNoise {
			noiseIdx = i
			break
		}
	}
	var vals []float64
	for i := 0; i < 300; i++ {
		out, _ := e.Sample(fakeSignals(r, 5))
		vals = append(vals, out[noiseIdx])
	}
	if mathx.Variance(vals) == 0 {
		t.Error("noise counter never moved")
	}
	for _, v := range vals {
		if v < 0 {
			t.Fatalf("noise counter went negative: %v", v)
		}
	}
}
