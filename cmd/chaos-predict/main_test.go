package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/models"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// fixtureDir simulates a cluster, writes trace CSVs, trains a model, and
// returns the directory and model path.
func fixtureDir(t *testing.T) (dir, modelPath string) {
	t.Helper()
	dir = t.TempDir()
	c, err := telemetry.New("Core2", 2, 23)
	if err != nil {
		t.Fatal(err)
	}
	traces, err := c.RunWorkload("Prime", 2, 3000)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range traces {
		f, err := os.Create(filepath.Join(dir, "t"+string(rune('a'+i))+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteCSV(f, tr); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	spec := core.ClusterSpec([]string{counters.CPUTotal, counters.CPUFreqCore0})
	var train []*trace.Trace
	for _, tr := range traces {
		if tr.Run == 0 {
			train = append(train, trace.Subsample(tr, 2))
		}
	}
	mm, err := models.FitMachineModel(models.TechQuadratic, train, spec, models.FitOptions{MaxKnots: 8})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := models.NewClusterModel(mm)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(cm)
	if err != nil {
		t.Fatal(err)
	}
	modelPath = filepath.Join(dir, "model.json")
	if err := os.WriteFile(modelPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir, modelPath
}

func TestPredictAllRuns(t *testing.T) {
	dir, modelPath := fixtureDir(t)
	if err := doPredict(modelPath, dir, -1, false); err != nil {
		t.Fatalf("doPredict: %v", err)
	}
}

func TestPredictSingleRunWithSeries(t *testing.T) {
	dir, modelPath := fixtureDir(t)
	if err := doPredict(modelPath, dir, 1, true); err != nil {
		t.Fatalf("doPredict: %v", err)
	}
}

func TestPredictErrors(t *testing.T) {
	dir, modelPath := fixtureDir(t)
	if err := doPredict(filepath.Join(dir, "missing.json"), dir, -1, false); err == nil {
		t.Error("expected error for missing model")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if err := doPredict(bad, dir, -1, false); err == nil {
		t.Error("expected error for corrupt model JSON")
	}
	if err := doPredict(modelPath, t.TempDir(), -1, false); err == nil {
		t.Error("expected error for empty trace dir")
	}
	if err := doPredict(modelPath, dir, 99, false); err == nil {
		t.Error("expected error for nonexistent run filter")
	}
}
