package overload

import (
	"math"
	"sync"
	"time"

	"repro/internal/obs"
)

// LimiterConfig tunes one adaptive concurrency limiter. The zero value is
// usable: withDefaults fills every field.
type LimiterConfig struct {
	// Initial is the starting concurrency limit (admitted samples in
	// flight). Default 32.
	Initial float64
	// Min and Max clamp the adapted limit. Defaults 2 and 1024.
	Min, Max float64
	// TierFrac[p] is the fraction of the current limit available to tier
	// p and every tier above it. Fractions must be non-increasing so
	// admission is strictly prioritized: with the defaults {1, 0.75, 0.5}
	// background traffic stops being admitted at half the limit, batch at
	// three quarters, and interactive may use all of it.
	TierFrac [NumPriorities]float64
	// Tick is the accounting window for the AIMD update and the
	// inversion guards. Default 100ms.
	Tick time.Duration
	// Tolerance is the latency budget as a multiple of the rolling
	// baseline: while the short-term latency EWMA stays under
	// baseline*Tolerance the limit grows additively, beyond it the limit
	// shrinks multiplicatively. Default 2.
	Tolerance float64
}

func (c LimiterConfig) withDefaults() LimiterConfig {
	if c.Initial <= 0 {
		c.Initial = 32
	}
	if c.Min <= 0 {
		c.Min = 2
	}
	if c.Max <= 0 {
		c.Max = 1024
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	zero := true
	for _, f := range c.TierFrac {
		if f != 0 {
			zero = false
		}
	}
	if zero {
		c.TierFrac = [NumPriorities]float64{1, 0.75, 0.5}
	}
	if c.Tick <= 0 {
		c.Tick = 100 * time.Millisecond
	}
	if c.Tolerance <= 1 {
		c.Tolerance = 2
	}
	return c
}

// Decision is the outcome of one admission attempt.
type Decision struct {
	// Admit reports whether the work may proceed. The caller must call
	// Release (or Cancel) exactly once per admitted unit.
	Admit bool
	// RetryAfter is the shed backoff hint derived from the limiter
	// state: roughly how long until the current excess drains. Zero when
	// admitted.
	RetryAfter time.Duration
}

// tick accumulates per-window admission accounting used by the priority
// inversion guards and the pressure signal.
type tick struct {
	admitted [NumPriorities]uint64
	shed     [NumPriorities]uint64
	// maxInflight is the tick's concurrency high-water mark, gating
	// additive increase on the limit actually being exercised.
	maxInflight int
	// maxAdmittedTier is the numerically largest (least important) tier
	// admitted so far this tick, -1 when none.
	maxAdmittedTier int
	// minShedTier is the numerically smallest (most important) tier shed
	// so far this tick, NumPriorities when none.
	minShedTier int
}

// Limiter is an adaptive concurrency limiter with strict-priority
// admission. The limit follows an AIMD/gradient rule on observed
// completion latency (queue wait + predict) against a rolling baseline of
// uncongested latency, so shedding starts before queue latency collapses
// into deadline misses.
//
// Two tick-scoped guards make priority inversions structurally
// impossible within an accounting tick:
//
//   - if a tier would be shed but a strictly less important tier was
//     already admitted this tick, the request is admitted past the limit
//     (bounded overshoot beats an inversion);
//   - once a tier is shed, every strictly less important tier is refused
//     for the remainder of the tick.
//
// Together with non-increasing TierFrac thresholds these guarantee that
// a tier-0 request is never rejected in a tick that admitted tier-2.
type Limiter struct {
	cfg LimiterConfig

	mu        sync.Mutex
	limit     float64
	inflight  int
	tickStart time.Time
	cur       tick

	// Latency EWMAs in seconds. baseline approximates the uncongested
	// floor: it absorbs improvements quickly and regressions very slowly.
	baseline float64
	short    float64

	totalAdmitted  [NumPriorities]uint64
	totalShed      [NumPriorities]uint64
	guardAdmits    uint64
	guardBlocks    uint64
	inversionTicks uint64

	// lastPressure is the shed fraction of the most recently completed
	// tick, read by the brownout controller.
	lastPressure float64

	now func() time.Time
}

// NewLimiter builds a limiter with cfg (zero value ⇒ defaults).
func NewLimiter(cfg LimiterConfig) *Limiter {
	return newLimiterAt(cfg, time.Now)
}

func newLimiterAt(cfg LimiterConfig, now func() time.Time) *Limiter {
	cfg = cfg.withDefaults()
	l := &Limiter{cfg: cfg, limit: cfg.Initial, now: now}
	l.tickStart = now()
	l.cur = tick{maxAdmittedTier: -1, minShedTier: NumPriorities}
	return l
}

// Acquire attempts to admit one unit of work at priority p.
func (l *Limiter) Acquire(p Priority) Decision { return l.AcquireN(p, 1) }

// AcquireN attempts to admit n units (e.g. every sample of one request
// that maps to this shard) atomically: all are admitted or none.
func (l *Limiter) AcquireN(p Priority, n int) Decision {
	if n <= 0 {
		return Decision{Admit: true}
	}
	p = clampPriority(p)
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.roll(now)

	// Shed guard: a more important tier was already refused this tick,
	// so less important work must not slip in behind it.
	if int(p) > l.cur.minShedTier {
		l.guardBlocks++
		return l.shedLocked(p, n)
	}
	threshold := l.limit * l.cfg.TierFrac[p]
	if float64(l.inflight+n) <= threshold {
		return l.admitLocked(p, n)
	}
	// Inversion guard: capacity existed for a less important tier this
	// tick, so refusing p now would invert priorities. Admit past the
	// limit; the overshoot is bounded by one tick of arrivals and the
	// shard queue behind the limiter.
	if int(p) < l.cur.maxAdmittedTier {
		l.guardAdmits++
		return l.admitLocked(p, n)
	}
	return l.shedLocked(p, n)
}

func (l *Limiter) admitLocked(p Priority, n int) Decision {
	l.inflight += n
	if l.inflight > l.cur.maxInflight {
		l.cur.maxInflight = l.inflight
	}
	l.cur.admitted[p] += uint64(n)
	l.totalAdmitted[p] += uint64(n)
	if int(p) > l.cur.maxAdmittedTier {
		l.cur.maxAdmittedTier = int(p)
	}
	admittedCtr[p].Add(float64(n))
	return Decision{Admit: true}
}

func (l *Limiter) shedLocked(p Priority, n int) Decision {
	l.cur.shed[p] += uint64(n)
	l.totalShed[p] += uint64(n)
	if int(p) < l.cur.minShedTier {
		l.cur.minShedTier = int(p)
	}
	shedCtr[p].Add(float64(n))
	return Decision{Admit: false, RetryAfter: l.retryAfterLocked(p, n)}
}

// retryAfterLocked estimates how long until the excess above this tier's
// threshold drains, assuming roughly half the limit turns over per tick.
func (l *Limiter) retryAfterLocked(p Priority, n int) time.Duration {
	threshold := l.limit * l.cfg.TierFrac[p]
	excess := float64(l.inflight+n) - threshold
	if excess < 0 {
		excess = 0
	}
	drainPerTick := l.limit / 2
	if drainPerTick < 1 {
		drainPerTick = 1
	}
	ticks := excess/drainPerTick + 1
	d := time.Duration(ticks * float64(l.cfg.Tick))
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	if d < l.cfg.Tick {
		d = l.cfg.Tick
	}
	return d
}

// Release completes one admitted unit, feeding its observed latency
// (queue wait + service) into the gradient.
func (l *Limiter) Release(latency time.Duration) {
	now := l.now()
	lat := latency.Seconds()
	if lat < 0 {
		lat = 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.roll(now)
	if l.inflight > 0 {
		l.inflight--
	}
	if l.short == 0 && l.baseline == 0 {
		l.short, l.baseline = lat, lat
		return
	}
	l.short += 0.25 * (lat - l.short)
	if lat < l.baseline {
		// Improvements pull the floor down quickly.
		l.baseline += 0.25 * (lat - l.baseline)
	} else {
		// Regressions leak in very slowly so a congested burst cannot
		// redefine "normal", while a genuine regime change eventually can.
		l.baseline += 0.002 * (lat - l.baseline)
	}
}

// Cancel returns one admitted unit without a latency observation (the
// work was dropped before it ran, e.g. the shard queue was full).
func (l *Limiter) Cancel(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inflight -= n
	if l.inflight < 0 {
		l.inflight = 0
	}
}

// roll closes the current accounting tick if its window elapsed: records
// inversion accounting, updates the AIMD limit from the latency gradient,
// and resets the tick-scoped guards. Callers hold l.mu.
func (l *Limiter) roll(now time.Time) {
	if now.Sub(l.tickStart) < l.cfg.Tick {
		return
	}
	// A tick that shed tier 0 while admitting tier 2 is a priority
	// inversion. The guards above make this unreachable; the counter
	// exists so tests can assert it stays zero.
	if l.cur.shed[Interactive] > 0 && l.cur.admitted[Background] > 0 {
		l.inversionTicks++
	}
	var admitted, shed uint64
	for p := 0; p < NumPriorities; p++ {
		admitted += l.cur.admitted[p]
		shed += l.cur.shed[p]
	}
	if admitted+shed > 0 {
		l.lastPressure = float64(shed) / float64(admitted+shed)
	} else {
		l.lastPressure = 0
	}

	if l.short > 0 && l.baseline > 0 {
		target := l.baseline * l.cfg.Tolerance
		if l.short <= target {
			// Healthy: additive increase, gated on the limit actually
			// being exercised so an idle limiter does not drift to Max.
			if float64(l.cur.maxInflight) >= l.limit/2 || shed > 0 {
				step := l.limit * 0.05
				if step < 1 {
					step = 1
				}
				l.limit += step
			}
		} else {
			// Over budget: multiplicative decrease proportional to the
			// overshoot, at most halving per tick.
			ratio := target / l.short
			if ratio < 0.5 {
				ratio = 0.5
			}
			l.limit *= ratio
		}
		if l.limit < l.cfg.Min {
			l.limit = l.cfg.Min
		}
		if l.limit > l.cfg.Max {
			l.limit = l.cfg.Max
		}
	}

	l.tickStart = now
	l.cur = tick{maxAdmittedTier: -1, minShedTier: NumPriorities}
}

// Pressure returns the shed fraction of the most recently completed tick
// (0 = no shedding, 1 = everything shed).
func (l *Limiter) Pressure() float64 {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.roll(now)
	return l.lastPressure
}

// InversionTicks returns the number of completed ticks that shed tier 0
// while admitting tier 2. Structurally always zero.
func (l *Limiter) InversionTicks() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inversionTicks
}

// LimiterState is a point-in-time snapshot for status endpoints.
type LimiterState struct {
	Limit      float64               `json:"limit"`
	Inflight   int                   `json:"inflight"`
	BaselineMS float64               `json:"baseline_ms"`
	ShortMS    float64               `json:"short_ms"`
	Admitted   [NumPriorities]uint64 `json:"admitted"`
	Shed       [NumPriorities]uint64 `json:"shed"`
}

// Snapshot returns the limiter's current state.
func (l *Limiter) Snapshot() LimiterState {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LimiterState{
		Limit:      math.Round(l.limit*100) / 100,
		Inflight:   l.inflight,
		BaselineMS: l.baseline * 1e3,
		ShortMS:    l.short * 1e3,
		Admitted:   l.totalAdmitted,
		Shed:       l.totalShed,
	}
}

// totals returns cumulative admitted/shed counts per tier plus guard
// activity, for the controller's pressure diffing.
func (l *Limiter) totals() (admitted, shed [NumPriorities]uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.totalAdmitted, l.totalShed
}

// Package-level resolved metric handles: label resolution happens once,
// the hot path only touches atomics.
var (
	admittedCtr = [NumPriorities]*obs.Counter{
		obs.Default().Counter("chaos_admitted_total", obs.Labels{"priority": "interactive"}),
		obs.Default().Counter("chaos_admitted_total", obs.Labels{"priority": "batch"}),
		obs.Default().Counter("chaos_admitted_total", obs.Labels{"priority": "background"}),
	}
	shedCtr = [NumPriorities]*obs.Counter{
		obs.Default().Counter("chaos_shed_total", obs.Labels{"priority": "interactive"}),
		obs.Default().Counter("chaos_shed_total", obs.Labels{"priority": "batch"}),
		obs.Default().Counter("chaos_shed_total", obs.Labels{"priority": "background"}),
	}
)
