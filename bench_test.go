package repro

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus micro-benchmarks for the online-path costs (collector
// sampling, model prediction) and ablation benches for the design choices
// DESIGN.md calls out.
//
// The table/figure benches run the Fast experiment configuration. The
// expensive trace collection is done once and shared (it is deterministic);
// each bench iteration then measures its own experiment's computation —
// feature selection, model grids, series prediction — from fresh caches.
//
// Run with:
//
//	go test -bench=. -benchmem

import (
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/experiments"
	"repro/internal/lifecycle"
	"repro/internal/models"
	"repro/internal/online"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workloads"
)

var (
	benchOnce sync.Once
	benchData map[string]*core.Dataset
)

// benchSuite returns a fresh Suite backed by the shared collected datasets.
func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	benchOnce.Do(func() {
		s := experiments.NewSuite(experiments.Fast())
		for _, p := range s.Cfg.Platforms {
			if _, err := s.Dataset(p); err != nil {
				b.Fatalf("collecting %s: %v", p, err)
			}
		}
		benchData = s.Datasets()
	})
	s := experiments.NewSuite(experiments.Fast())
	s.SeedDatasets(benchData)
	return s
}

// BenchmarkFigure1 regenerates the cluster power trace summaries (paper
// Fig. 1), including the underlying trace collection.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := s.Figure1(io.Discard, s.Cfg.Platforms[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII regenerates the per-cluster and general feature sets
// (paper Table II): the full Algorithm 1 run for every platform.
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := s.TableII(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 regenerates the feature-significance histogram (paper
// Fig. 2): Algorithm 1 on the server-class cluster.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, _, err := s.Figure2(io.Discard, s.PickPlatform("Opteron")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIII regenerates the rMSE / %Err / DRE comparison (paper
// Table III) for the first configured platform.
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := s.TableIII(io.Discard, s.Cfg.Platforms[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3 regenerates the model x feature-set DRE grid for the
// network-heavy workload (paper Fig. 3).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := s.Figure3(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4 regenerates the grid for the CPU-bound workload (paper
// Fig. 4).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := s.Figure4(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIV regenerates the best-model search over every workload
// and cluster (paper Table IV) — the heaviest experiment.
func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := s.TableIV(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5 regenerates the worst-case trace comparison against the
// scaled CPU-linear strawman (paper Fig. 5).
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := s.Figure5(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeterogeneous regenerates the mixed-cluster composability
// experiment (paper §V-B), including collecting the mixed cluster.
func BenchmarkHeterogeneous(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := s.Heterogeneous(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiWorkload regenerates the single multi-workload cluster
// model evaluation (the paper's Fig. 1 premise).
func BenchmarkMultiWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := s.MultiWorkload(io.Discard, s.Cfg.Platforms[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPooling measures the pooled-vs-single-machine fitting
// comparison.
func BenchmarkAblationPooling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, _, err := s.AblationPooling(io.Discard, s.Cfg.Platforms[0], s.Cfg.Workloads[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCorrThreshold sweeps Algorithm 1's correlation
// threshold.
func BenchmarkAblationCorrThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := s.AblationCorrThreshold(io.Discard, s.Cfg.Platforms[0], nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectorOverhead measures the per-sample cost of expanding the
// full ~250-counter vector — the online collection path whose cost the
// paper bounds below 1% of a mobile-class CPU at 1 Hz.
func BenchmarkCollectorOverhead(b *testing.B) {
	reg := counters.StandardRegistry()
	col := telemetry.NewCollector(reg, 1)
	sig := counters.Signals{}
	for _, d := range reg.Defs {
		if d.Kind == counters.KindSignal {
			sig[d.Signal] = 42
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := col.Sample(sig); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	frac := col.OverheadFraction(time.Second)
	b.ReportMetric(frac*100, "%of-1Hz-interval")
	if frac >= 0.01 {
		b.Fatalf("collector overhead %.4f exceeds the paper's 1%% bound", frac)
	}
}

// BenchmarkOnlinePredict measures one second of online cluster power
// prediction: building the model inputs from counter rows and evaluating
// the quadratic model for every machine.
func BenchmarkOnlinePredict(b *testing.B) {
	s := benchSuite(b)
	p := s.Cfg.Platforms[0]
	ds, err := s.Dataset(p)
	if err != nil {
		b.Fatal(err)
	}
	fr, err := s.Features(p)
	if err != nil {
		b.Fatal(err)
	}
	wl := s.Cfg.Workloads[0]
	traces := ds.ByWorkload[wl]
	spec := core.ClusterSpec(fr.Features)
	var train []*trace.Trace
	for _, t := range trace.ByRun(traces)[0] {
		train = append(train, trace.Subsample(t, 2))
	}
	mm, err := models.FitMachineModel(models.TechQuadratic, train, spec, models.FitOptions{MaxKnots: 8})
	if err != nil {
		b.Fatal(err)
	}
	cm, err := models.NewClusterModel(mm)
	if err != nil {
		b.Fatal(err)
	}
	test := trace.ByRun(traces)[1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cm.PredictCluster(test); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulationRun measures executing one full workload run on a
// 5-machine cluster (scheduling, machine dynamics, counter expansion,
// metering), reporting the simulated-to-real time ratio.
func BenchmarkSimulationRun(b *testing.B) {
	c, err := telemetry.New("Opteron", 5, 3)
	if err != nil {
		b.Fatal(err)
	}
	job, err := workloads.Build("Prime", 5)
	if err != nil {
		b.Fatal(err)
	}
	simSeconds := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traces, err := c.RunJob(job, i, 1200)
		if err != nil {
			b.Fatal(err)
		}
		simSeconds += traces[0].Len() * len(traces)
	}
	b.StopTimer()
	if e := b.Elapsed().Seconds(); e > 0 {
		b.ReportMetric(float64(simSeconds)/e, "sim-machine-seconds/s")
	}
}

// BenchmarkRetrain measures one lifecycle retrain: pooling the buffered
// labeled samples of a 4-machine cluster (512 snapshots each) into
// platform traces and fitting a fresh linear cluster model — the
// off-hot-path cost of producing a challenger.
func BenchmarkRetrain(b *testing.B) {
	names := []string{"a", "b", "c"}
	spec := models.FeatureSpec{Name: "bench", Counters: names}
	rt, err := online.NewRetrainer(names, 1024)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		a := float64(i % 37)
		c := float64((i * 5) % 23)
		d := float64((i * 11) % 17)
		for m := 0; m < 4; m++ {
			s := online.Sample{
				MachineID: "m" + string(rune('0'+m)),
				Platform:  "Core2",
				Counters:  []float64{a + float64(m), c, d},
			}
			if err := rt.Add(s, 20+2*a+0.5*c+d); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Retrain(models.TechLinear, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShadowScore measures scoring one contender over a 256-snapshot
// held-out window of a 4-machine cluster — the per-contender cost of a
// lifecycle shadow verdict.
func BenchmarkShadowScore(b *testing.B) {
	names := []string{"a", "b", "c"}
	mm := &models.MachineModel{
		Platform: "Core2",
		Spec:     models.FeatureSpec{Name: "bench", Counters: names},
		Model:    &models.Linear{Intercept: 20, Coef: []float64{2, 0.5, 1}},
	}
	cm, err := models.NewClusterModel(mm)
	if err != nil {
		b.Fatal(err)
	}
	win := make([]lifecycle.Snapshot, 256)
	for i := range win {
		samples := make([]online.Sample, 4)
		var actual float64
		for m := range samples {
			row := []float64{float64((i + m) % 37), float64((i * 5) % 23), float64((i * 11) % 17)}
			samples[m] = online.Sample{
				MachineID: "m" + string(rune('0'+m)),
				Platform:  "Core2",
				Counters:  row,
			}
			actual += 20 + 2*row[0] + 0.5*row[1] + row[2]
		}
		win[i] = lifecycle.Snapshot{Samples: samples, Actual: actual}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, err := lifecycle.ScoreWindow(cm, names, win)
		if err != nil {
			b.Fatal(err)
		}
		if sc.N != len(win) {
			b.Fatalf("scored %d of %d snapshots", sc.N, len(win))
		}
	}
}
