// Heterogeneous: composing cluster power models for mixed clusters
// "essentially for free" (paper §V-B). Machine models are trained on small
// homogeneous clusters, then summed per Eq. 5 over a larger mixed cluster
// they have never seen — including machines whose individual power
// multipliers differ from the training machines'.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/featsel"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/trace"
)

func main() {
	const workload = "Sort"

	// Train one machine model per platform on its own homogeneous cluster.
	var machineModels []*models.MachineModel
	for _, platform := range []string{"Core2", "Opteron"} {
		ds, err := core.Collect(platform, 3, []string{workload}, 2, 11)
		if err != nil {
			log.Fatal(err)
		}
		sel, err := ds.SelectFeatures(featsel.Options{})
		if err != nil {
			log.Fatal(err)
		}
		var train []*trace.Trace
		for _, t := range ds.ByWorkload[workload] {
			train = append(train, trace.Subsample(t, 2))
		}
		mm, err := models.FitMachineModel(models.TechQuadratic, train,
			core.ClusterSpec(sel.Features), models.FitOptions{MaxKnots: 8})
		if err != nil {
			log.Fatal(err)
		}
		machineModels = append(machineModels, mm)
		fmt.Printf("trained %s machine model on %d features\n", platform, len(sel.Features))
	}
	cm, err := models.NewClusterModel(machineModels...)
	if err != nil {
		log.Fatal(err)
	}

	// Apply, unchanged, to a 6-machine mixed cluster (different machine
	// instances, different scheduler seed, scaled data).
	mixed, err := core.CollectHeterogeneous("Hetero",
		[]string{"Core2", "Core2", "Core2", "Opteron", "Opteron", "Opteron"},
		[]string{workload}, 2, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmixed cluster idle %.0f W\n", mixed.ClusterIdle)
	for _, run := range trace.Runs(mixed.ByWorkload[workload]) {
		ts := trace.ByRun(mixed.ByWorkload[workload])[run]
		pred, actual, err := cm.PredictCluster(ts)
		if err != nil {
			log.Fatal(err)
		}
		sum, err := metrics.Evaluate(pred, actual, mixed.ClusterIdle)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run %d: cluster DRE %.1f%% (rMSE %.1f W over %d samples)\n",
			run, sum.DRE*100, sum.RMSE, sum.N)
	}
	fmt.Println("\nNo refitting was needed for the mixed cluster: Eq. 5 composes")
	fmt.Println("per-machine predictions, dispatching each machine to its")
	fmt.Println("platform's model.")
}
