package mathx

import (
	"math"
	"testing"
)

// TestSplitMixDeterminismAndRanges: same seed, same stream; draws stay in
// their documented ranges.
func TestSplitMixDeterminismAndRanges(t *testing.T) {
	a, b := NewSplitMix(42), NewSplitMix(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("draw %d diverged for identical seeds", i)
		}
	}
	r := NewSplitMix(7)
	for i := 0; i < 10000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		if n := r.Intn(13); n < 0 || n >= 13 {
			t.Fatalf("Intn out of range: %d", n)
		}
		if e := r.ExpFloat64(); e < 0 || math.IsInf(e, 0) || math.IsNaN(e) {
			t.Fatalf("ExpFloat64 out of range: %v", e)
		}
	}
}

// TestSplitMixNormalMoments: NormFloat64 has approximately standard
// moments and never produces non-finite values.
func TestSplitMixNormalMoments(t *testing.T) {
	r := NewSplitMix(3)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite normal draw %v", v)
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %v, want ~1", variance)
	}
}

// TestSplitMixDerivedStreamsDecorrelated: streams derived from adjacent
// seeds through DeriveSeed must be uncorrelated from the first draw —
// the property math/rand's lagged-Fibonacci source lacks.
func TestSplitMixDerivedStreamsDecorrelated(t *testing.T) {
	const draws = 2048
	base := int64(12345)
	var prev []float64
	for i := 0; i < 8; i++ {
		r := NewSplitMix(DeriveSeed(base, "stream:"+string(rune('a'+i))))
		cur := make([]float64, draws)
		for j := range cur {
			cur[j] = r.Float64()
		}
		if prev != nil {
			if rho := pearson(prev, cur); math.Abs(rho) > 0.08 {
				t.Errorf("adjacent derived streams correlate: rho=%v", rho)
			}
		}
		prev = cur
	}
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, syy, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		syy += y[i] * y[i]
		sxy += x[i] * y[i]
	}
	cov := sxy/n - sx/n*sy/n
	vx := sxx/n - sx/n*sx/n
	vy := syy/n - sy/n*sy/n
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}
