package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// Record framing: a 4-byte little-endian payload length, a 4-byte
// CRC32-Castagnoli of the payload, then the payload. The checksum is what
// lets recovery tell a half-written tail from a complete record — a torn
// append can truncate the frame or scramble bytes, but it cannot forge a
// matching checksum.
const frameHeader = 8

// MaxRecord bounds one record's payload. A length field above it is
// treated as corruption, not an allocation request — a flipped bit in the
// length prefix must never make recovery try to read gigabytes.
const MaxRecord = 16 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Recovery describes what OpenJournal found and repaired. A journal that
// was closed cleanly reports zero everywhere except Records.
type Recovery struct {
	// Records is the number of valid records replayed.
	Records int
	// TruncatedBytes were dropped from the tail: a partial or
	// checksum-corrupt final record (the classic kill -9 mid-append).
	TruncatedBytes int64
	// TruncatedRecords counts the dropped tail frames (0 or 1).
	TruncatedRecords int
	// QuarantineFile, when set, holds bytes removed from the middle of the
	// journal: a complete-but-corrupt record with valid-looking data after
	// it. Replay stops at the corruption; the suffix is preserved for
	// forensics rather than silently deleted.
	QuarantineFile   string
	QuarantinedBytes int64
}

// Clean reports whether recovery found nothing to repair.
func (r Recovery) Clean() bool {
	return r.TruncatedBytes == 0 && r.TruncatedRecords == 0 && r.QuarantineFile == ""
}

// Journal is an append-only record log. Appends are serialized and
// fsynced; OpenJournal replays existing records and repairs any damage
// before handing the journal back for appending.
type Journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
	size int64
}

// OpenJournal opens (creating if absent) the journal at path, replays
// every valid record through replay in order, repairs the file — torn
// tails are truncated, mid-file corruption quarantined — and returns the
// journal ready for appends. replay errors abort the open.
func OpenJournal(path string, replay func(rec []byte) error) (*Journal, Recovery, error) {
	var rec Recovery
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, rec, fmt.Errorf("store: reading journal %s: %w", path, err)
	}

	off := 0
	corrupt := -1 // offset of the first bad frame, -1 when none
	tornTail := false
	for off < len(data) {
		rem := len(data) - off
		if rem < frameHeader {
			corrupt, tornTail = off, true
			break
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		end := off + frameHeader + n
		if n > MaxRecord {
			// A torn append leaves a prefix of a valid frame, so its length
			// bytes are either missing or sane — a length beyond MaxRecord
			// means the prefix itself is corrupt. Quarantine the suffix (it
			// may hold valid records we can no longer find the boundaries
			// of) rather than silently truncating it, and never size an
			// allocation from the corrupt field.
			corrupt, tornTail = off, false
			break
		}
		if end > len(data) {
			// The frame claims to extend past EOF: a torn append.
			corrupt, tornTail = off, true
			break
		}
		payload := data[off+frameHeader : end]
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(data[off+4:]) {
			// Complete frame, bad checksum. At EOF it is a torn/flipped
			// tail; mid-file it means later records are unreachable and the
			// whole suffix is quarantined.
			corrupt, tornTail = off, end == len(data)
			break
		}
		if err := replay(payload); err != nil {
			return nil, rec, fmt.Errorf("store: replaying journal %s record %d: %w", path, rec.Records, err)
		}
		rec.Records++
		off = end
	}

	if corrupt >= 0 {
		dropped := data[corrupt:]
		if tornTail {
			rec.TruncatedBytes = int64(len(dropped))
			rec.TruncatedRecords = 1
			truncatedRecords.Inc()
		} else {
			qpath, err := quarantine(path, dropped)
			if err != nil {
				return nil, rec, err
			}
			rec.QuarantineFile = qpath
			rec.QuarantinedBytes = int64(len(dropped))
			quarantinesTotal.Inc()
		}
		if err := os.Truncate(path, int64(corrupt)); err != nil {
			return nil, rec, fmt.Errorf("store: truncating journal %s: %w", path, err)
		}
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, rec, fmt.Errorf("store: opening journal %s: %w", path, err)
	}
	if corrupt >= 0 {
		// Make the repair durable before anything is appended after it.
		if err := f.Sync(); err != nil {
			f.Close() //nolint:errcheck // already failing
			return nil, rec, fmt.Errorf("store: fsync repaired journal %s: %w", path, err)
		}
		fsyncsTotal.Inc()
	}
	st, err := f.Stat()
	if err != nil {
		f.Close() //nolint:errcheck // already failing
		return nil, rec, fmt.Errorf("store: stat journal %s: %w", path, err)
	}
	return &Journal{path: path, f: f, size: st.Size()}, rec, nil
}

// quarantine preserves corrupt journal bytes in a sidecar file next to
// the journal, picking the first free .quarantine-N name.
func quarantine(path string, data []byte) (string, error) {
	for i := 0; ; i++ {
		qpath := fmt.Sprintf("%s.quarantine-%d", path, i)
		f, err := os.OpenFile(qpath, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if os.IsExist(err) {
			continue
		}
		if err != nil {
			return "", fmt.Errorf("store: creating quarantine %s: %w", qpath, err)
		}
		if _, err := f.Write(data); err != nil {
			f.Close() //nolint:errcheck // already failing
			return "", fmt.Errorf("store: writing quarantine %s: %w", qpath, err)
		}
		if err := f.Sync(); err != nil {
			f.Close() //nolint:errcheck // already failing
			return "", fmt.Errorf("store: fsync quarantine %s: %w", qpath, err)
		}
		fsyncsTotal.Inc()
		if err := f.Close(); err != nil {
			return "", fmt.Errorf("store: closing quarantine %s: %w", qpath, err)
		}
		return qpath, syncDir(filepath.Dir(path))
	}
}

// Append frames, writes, and fsyncs one record. When Append returns nil
// the record survives a crash; when it returns an error the journal may
// hold a torn frame, which the next OpenJournal repairs.
func (j *Journal) Append(payload []byte) error {
	if len(payload) > MaxRecord {
		return fmt.Errorf("store: record of %d bytes exceeds MaxRecord", len(payload))
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	copy(frame[frameHeader:], payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("store: journal %s is closed", j.path)
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("store: appending to %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("store: fsync %s: %w", j.path, err)
	}
	fsyncsTotal.Inc()
	bytesTotal.Add(float64(len(frame)))
	j.size += int64(len(frame))
	return nil
}

// Size returns the journal's current byte size (the compaction trigger).
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Reset empties the journal (after its contents have been compacted into
// a snapshot elsewhere) and makes the truncation durable.
func (j *Journal) Reset() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("store: journal %s is closed", j.path)
	}
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("store: truncating %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("store: fsync %s: %w", j.path, err)
	}
	fsyncsTotal.Inc()
	j.size = 0
	return nil
}

// ErrCorruptFrame reports that a frame prefix cannot be a valid record:
// its length field exceeds MaxRecord or its checksum does not match. The
// replication follower resynchronizes from a snapshot when it sees this.
var ErrCorruptFrame = fmt.Errorf("store: corrupt frame")

// DecodeFrames parses complete, checksum-valid frames from the front of
// buf — the journal bytes a replication tail response carries verbatim.
// It returns the record payloads (sub-slices of buf; copy before holding)
// and the bytes consumed. A trailing partial frame is not an error: it is
// simply left unconsumed for the caller to complete on the next read. The
// length field is bounded against MaxRecord and the remaining buffer
// before it can size anything, so a corrupted length prefix yields
// ErrCorruptFrame, never a huge allocation.
func DecodeFrames(buf []byte) (payloads [][]byte, consumed int, err error) {
	off := 0
	for len(buf)-off >= frameHeader {
		n := int(binary.LittleEndian.Uint32(buf[off:]))
		if n > MaxRecord {
			return payloads, off, fmt.Errorf("%w: length %d exceeds MaxRecord at offset %d", ErrCorruptFrame, n, off)
		}
		end := off + frameHeader + n
		if end > len(buf) {
			break // partial tail frame: wait for more bytes
		}
		payload := buf[off+frameHeader : end]
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(buf[off+4:]) {
			return payloads, off, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorruptFrame, off)
		}
		payloads = append(payloads, payload)
		off = end
	}
	return payloads, off, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close closes the journal file. Append and Reset fail afterwards.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
