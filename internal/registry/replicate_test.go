package registry

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"repro/internal/store"
)

// sameReplicatedState compares two registries through their serialized
// listing plus rollback target — the wire-level contract replication
// promises. (reflect.DeepEqual would trip over the leader's in-process
// monotonic clock readings, which never cross the wire.)
func sameReplicatedState(t *testing.T, got, want *Registry, context string) {
	t.Helper()
	gl, gp := stateOf(got)
	wl, wp := stateOf(want)
	gj, err := json.Marshal(gl)
	if err != nil {
		t.Fatal(err)
	}
	wj, err := json.Marshal(wl)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gj, wj) {
		t.Fatalf("%s: List() diverged:\n got %s\nwant %s", context, gj, wj)
	}
	if gp != wp {
		t.Fatalf("%s: rollback target %q, want %q", context, gp, wp)
	}
}

// leaderJournalPayloads reads the leader's journal file and decodes its
// record payloads — exactly what the replication tail endpoint ships.
func leaderJournalPayloads(t *testing.T, r *Registry) [][]byte {
	t.Helper()
	path, _, _, _, ok := r.ReplicationStatus()
	if !ok {
		t.Fatal("leader registry is not persistent")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	payloads, consumed, err := store.DecodeFrames(data)
	if err != nil || consumed != len(data) {
		t.Fatalf("leader journal decode: consumed %d/%d, err %v", consumed, len(data), err)
	}
	out := make([][]byte, len(payloads))
	for i, p := range payloads {
		out[i] = append([]byte(nil), p...)
	}
	return out
}

// TestDistRegistryApplyReplicatedIdempotent replays a leader journal into
// a follower twice over: the first pass converges the follower onto the
// leader's exact state, the second pass (the post-restart re-fetch) must
// be a clean no-op — no duplicate admissions, no state drift.
func TestDistRegistryApplyReplicatedIdempotent(t *testing.T) {
	leader, _ := mustOpen(t, t.TempDir(), OpenOptions{})
	defer leader.Close()
	if err := leader.Add("v1", mkCluster(t, "p", 1), Meta{Description: "first"}); err != nil {
		t.Fatal(err)
	}
	if err := leader.Add("v2", mkCluster(t, "p", 2), Meta{Source: "retrain"}); err != nil {
		t.Fatal(err)
	}
	if err := leader.Activate("v2"); err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Rollback(); err != nil {
		t.Fatal(err)
	}

	follower, _ := mustOpen(t, t.TempDir(), OpenOptions{})
	defer follower.Close()
	payloads := leaderJournalPayloads(t, leader)
	applied := 0
	for _, p := range payloads {
		what, err := follower.ApplyReplicated(p)
		if err != nil {
			t.Fatalf("apply %s: %v", p, err)
		}
		if what != "" {
			applied++
		}
	}
	if applied == 0 {
		t.Fatal("no records applied")
	}
	sameReplicatedState(t, follower, leader, "after first replay")

	// The restart case: the whole batch arrives again. Re-admissions must
	// dedupe to nothing; re-activations are last-writer-wins and converge,
	// so the batch as a whole leaves the state untouched.
	for _, p := range payloads {
		what, err := follower.ApplyReplicated(p)
		if err != nil {
			t.Fatalf("re-apply: %v", err)
		}
		if strings.HasPrefix(what, "admit:") {
			t.Fatalf("second replay duplicated admission %q", what)
		}
	}
	sameReplicatedState(t, follower, leader, "after duplicate replay")
	if follower.Len() != 2 {
		t.Fatalf("follower has %d versions after duplicate replay, want 2", follower.Len())
	}

	// An activation for a version the follower never admitted signals
	// divergence and must error (the follower resyncs from a snapshot).
	if _, err := follower.ApplyReplicated([]byte(`{"op":"activate","version":"ghost"}`)); err == nil {
		t.Fatal("activation of unknown version applied silently")
	}
	// The follower's own journal must recover the replicated state.
	follower.Close()
	reopened, rec := mustOpen(t, follower.persist.dir, OpenOptions{})
	defer reopened.Close()
	if !rec.Journal.Clean() {
		t.Fatalf("follower journal not clean after replication: %+v", rec.Journal)
	}
	sameReplicatedState(t, reopened, leader, "follower reopened from its own journal")
}

// TestDistRegistrySnapshotBootstrap bootstraps a follower from
// ReplicaSnapshot and checks the returned offset coordinates line up
// with the leader journal, so tailing can resume exactly where the
// snapshot left off.
func TestDistRegistrySnapshotBootstrap(t *testing.T) {
	leader, _ := mustOpen(t, t.TempDir(), OpenOptions{})
	defer leader.Close()
	for _, v := range []string{"v1", "v2", "v3"} {
		if err := leader.Add(v, mkCluster(t, "p", 1), Meta{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := leader.Activate("v3"); err != nil {
		t.Fatal(err)
	}

	snap, size, records, epoch, err := leader.ReplicaSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	path, wantSize, wantRecords, wantEpoch, _ := leader.ReplicationStatus()
	if size != wantSize || records != wantRecords || epoch != wantEpoch {
		t.Fatalf("snapshot coordinates (%d, %d, %d) disagree with status (%d, %d, %d)",
			size, records, epoch, wantSize, wantRecords, wantEpoch)
	}
	if st, err := os.Stat(path); err != nil || st.Size() != size {
		t.Fatalf("journal file is %v/%v bytes, snapshot says %d", st, err, size)
	}

	follower, _ := mustOpen(t, t.TempDir(), OpenOptions{})
	defer follower.Close()
	if err := follower.ApplySnapshot(snap); err != nil {
		t.Fatal(err)
	}
	sameReplicatedState(t, follower, leader, "after snapshot bootstrap")
	// Applying the same snapshot again is the resync path — idempotent.
	if err := follower.ApplySnapshot(snap); err != nil {
		t.Fatal(err)
	}
	sameReplicatedState(t, follower, leader, "after snapshot re-apply")
}

// TestDistRegistryReplicationEpochAdvancesOnCompaction locks the offset
// invalidation signal: compaction resets the journal, so the record
// count drops to zero and the epoch advances — a follower holding a byte
// offset into the old journal must notice and resync.
func TestDistRegistryReplicationEpochAdvancesOnCompaction(t *testing.T) {
	r, _ := mustOpen(t, t.TempDir(), OpenOptions{CompactBytes: 256})
	defer r.Close()
	if _, _, records, epoch, ok := r.ReplicationStatus(); !ok || records != 0 || epoch != 0 {
		t.Fatalf("fresh registry status: records %d epoch %d ok %v", records, epoch, ok)
	}
	if err := r.Add("v1", mkCluster(t, "p", 1), Meta{}); err != nil {
		t.Fatal(err)
	}
	// One admission record overflows the tiny bound, so compaction has run.
	_, size, records, epoch, _ := r.ReplicationStatus()
	if epoch == 0 {
		t.Fatalf("compaction did not advance epoch (journal %d bytes, %d records)", size, records)
	}
	if records != 0 || size != 0 {
		t.Fatalf("post-compaction journal not reset: %d bytes, %d records", size, records)
	}
}
