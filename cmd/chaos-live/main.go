// chaos-live runs the whole online loop against a live simulated cluster:
// train a model on the first workload, then stream a day-in-the-life
// sequence of jobs through the predictor, printing per-minute power
// summaries, drift alarms when the workload mix leaves the trained
// regime, and retrain events that restore accuracy.
//
// With -listen the process also serves /metrics (Prometheus text format),
// /healthz, and /debug/pprof while streaming; with -json every event is
// emitted as one machine-readable JSON line instead of free-form text.
//
// Usage:
//
//	chaos-live -platform Core2 -machines 3 -train Prime -stream Prime,Sort,PageRank
//	chaos-live -listen :9090 -json
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/featsel"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// config collects the run parameters of one chaos-live invocation.
type config struct {
	Platform string
	Machines int
	Train    string
	Stream   []string
	Seed     int64
	Listen   string // "" disables the metrics endpoint
	JSON     bool   // emit JSON event lines instead of human text

	// holdOpen, when set, is called after the stream completes but before
	// the metrics server shuts down, so tests can probe the endpoints
	// without racing the end of the run.
	holdOpen func()
}

func main() {
	var (
		platform = flag.String("platform", "Core2", "platform class")
		machines = flag.Int("machines", 3, "machines in the cluster")
		train    = flag.String("train", "Prime", "workload to train on")
		stream   = flag.String("stream", "Prime,Sort", "comma-separated workload sequence to stream")
		seed     = flag.Int64("seed", 7, "simulation seed")
		listen   = flag.String("listen", "", "serve /metrics, /healthz, and pprof on this address (e.g. :9090)")
		jsonOut  = flag.Bool("json", false, "emit machine-readable JSON event lines instead of text")
	)
	flag.Parse()
	cfg := config{
		Platform: *platform, Machines: *machines, Train: *train,
		Stream: strings.Split(*stream, ","), Seed: *seed,
		Listen: *listen, JSON: *jsonOut,
	}
	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "chaos-live:", err)
		os.Exit(1)
	}
}

// emitter routes run output either to the human text log or, in -json
// mode, through an obs.EventSink as one JSON line per event.
type emitter struct {
	w    io.Writer
	sink *obs.EventSink // nil in text mode
}

func (e *emitter) event(name, text string, fields map[string]any) error {
	if e.sink != nil {
		return e.sink.Emit(name, fields)
	}
	_, err := fmt.Fprintln(e.w, text)
	return err
}

func run(w io.Writer, cfg config) error {
	em := &emitter{w: w}
	if cfg.JSON {
		em.sink = obs.NewEventSink(w)
	}
	if cfg.Listen != "" {
		srv, err := obs.Serve(cfg.Listen, obs.Default())
		if err != nil {
			return err
		}
		defer srv.Close()
		if err := em.event("listening",
			fmt.Sprintf("metrics listening on http://%s/metrics", srv.Addr()),
			map[string]any{"addr": srv.Addr()}); err != nil {
			return err
		}
	}

	// Train.
	ds, err := core.Collect(cfg.Platform, cfg.Machines, []string{cfg.Train}, 2, cfg.Seed)
	if err != nil {
		return err
	}
	sel, err := ds.SelectFeatures(featsel.Options{})
	if err != nil {
		return err
	}
	spec := core.ClusterSpec(sel.Features)
	byRun := trace.ByRun(ds.ByWorkload[cfg.Train])
	var trainTraces []*trace.Trace
	for _, t := range byRun[0] {
		trainTraces = append(trainTraces, trace.Subsample(t, 2))
	}
	mm, err := models.FitMachineModel(models.TechQuadratic, trainTraces, spec,
		models.FitOptions{MaxKnots: 8})
	if err != nil {
		return err
	}
	cm, err := models.NewClusterModel(mm)
	if err != nil {
		return err
	}
	pred, actual, err := cm.PredictCluster(byRun[1])
	if err != nil {
		return err
	}
	baseline := rmse(pred, actual)
	if err := em.event("train",
		fmt.Sprintf("trained quadratic model on %s (%d features); held-out rMSE %.2f W",
			cfg.Train, len(sel.Features), baseline),
		map[string]any{
			"workload": cfg.Train, "features": len(sel.Features),
			"baseline_rmse_w": round2(baseline), "technique": "quadratic",
		}); err != nil {
		return err
	}

	// Stream the sequence on the same cluster instances the model was
	// trained for (same seed -> same machines; a deployed model monitors
	// the machines it was fitted on).
	cluster, err := telemetry.New(cfg.Platform, cfg.Machines, cfg.Seed)
	if err != nil {
		return err
	}
	seq, err := cluster.RunSequence(cfg.Stream, 20, 3000, 0)
	if err != nil {
		return err
	}
	predictor, err := online.NewPredictor(cm, seq[0].Names)
	if err != nil {
		return err
	}
	monitor, err := online.NewMonitor(baseline, 16)
	if err != nil {
		return err
	}
	retrainer, err := online.NewRetrainer(seq[0].Names, 4000)
	if err != nil {
		return err
	}

	n := seq[0].Len()
	if err := em.event("stream_start",
		fmt.Sprintf("streaming %s (%d s total)", strings.Join(cfg.Stream, " -> "), n),
		map[string]any{"sequence": cfg.Stream, "seconds": n}); err != nil {
		return err
	}
	var drifted bool
	var driftCount, retrainCount int
	var minuteErr, minuteActual float64
	for i := 0; i < n; i++ {
		var samples []online.Sample
		var clusterActual float64
		for _, t := range seq {
			samples = append(samples, online.Sample{
				MachineID: t.MachineID, Platform: t.Platform, Counters: t.X.Row(i)})
			clusterActual += t.Power[i]
		}
		est, err := predictor.Step(samples)
		if err != nil {
			return err
		}
		for k, t := range seq {
			if err := retrainer.Add(samples[k], t.Power[i]); err != nil {
				return err
			}
		}
		minuteErr += math.Abs(est.ClusterWatts - clusterActual)
		minuteActual += clusterActual
		if i%60 == 59 {
			if err := em.event("estimate",
				fmt.Sprintf("t=%4ds  cluster %6.1f W  mean abs err %5.2f W  residual %.1fx baseline",
					i+1, minuteActual/60, minuteErr/60, monitor.EWMA()),
				map[string]any{
					"t_s": i + 1, "cluster_w": round2(minuteActual / 60),
					"mean_abs_err_w": round2(minuteErr / 60),
					"residual_x":     round2(monitor.EWMA()),
				}); err != nil {
				return err
			}
			minuteErr, minuteActual = 0, 0
		}
		if monitor.Observe(est.ClusterWatts, clusterActual) && !drifted {
			drifted = true
			driftCount++
			if err := em.event("drift",
				fmt.Sprintf("t=%4ds  *** DRIFT: residual %.1fx baseline — scheduling retrain",
					i, monitor.EWMA()),
				map[string]any{"t_s": i, "residual_x": round2(monitor.EWMA())}); err != nil {
				return err
			}
		}
		// Retrain once enough post-drift samples are buffered.
		if drifted && i%120 == 119 {
			cm2, err := retrainer.Retrain(models.TechQuadratic, spec)
			if err != nil {
				return err
			}
			p2, err := online.NewPredictor(cm2, seq[0].Names)
			if err != nil {
				return err
			}
			predictor = p2
			monitor.Reset()
			drifted = false
			retrainCount++
			if err := em.event("retrain",
				fmt.Sprintf("t=%4ds  *** retrained on %d buffered seconds; monitor reset",
					i, retrainer.Buffered(seq[0].MachineID)),
				map[string]any{"t_s": i, "buffered_s": retrainer.Buffered(seq[0].MachineID)}); err != nil {
				return err
			}
		}
	}
	if err := em.event("complete", "stream complete",
		map[string]any{"seconds": n, "drift_alarms": driftCount, "retrains": retrainCount}); err != nil {
		return err
	}
	if cfg.holdOpen != nil {
		cfg.holdOpen()
	}
	return nil
}

func rmse(pred, actual []float64) float64 {
	var s float64
	for i := range pred {
		d := pred[i] - actual[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// round2 keeps event payloads readable (two decimals is plenty for watts).
func round2(v float64) float64 { return math.Round(v*100) / 100 }
