package slo

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// fixedClock returns a deterministic obs event clock.
func fixedClock() func() time.Time {
	t0 := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * time.Second)
	}
}

// newTestTracker builds a tracker with small deterministic windows and a
// buffered event sink.
func newTestTracker(t *testing.T, cfg Config) (*Tracker, *bytes.Buffer, *obs.Registry) {
	t.Helper()
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	cfg.Events = obs.NewEventSinkAt(&buf, fixedClock(), reg)
	cfg.Reg = reg
	return NewTracker(cfg), &buf, reg
}

// events decodes the sink buffer into one map per emitted event.
func events(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

// feedLabeled pushes n cluster snapshots of 3 machines whose metered
// power walks a 90 W range; shift is added to every estimate, so shift=0
// is a perfect model and shift=50 is a gross accuracy regression.
func feedLabeled(tr *Tracker, n int, shift float64, version string) {
	ids := []string{"m0", "m1", "m2"}
	for i := 0; i < n; i++ {
		met := []float64{100 + float64(i%10)*10, 80, 120}
		est := []float64{met[0] + shift, met[1], met[2]}
		cluster := est[0] + est[1] + est[2]
		tr.ObserveLabeled(ids, est, met, cluster, version)
	}
}

// TestSLOViolationAndRecovery is the acceptance scenario: a label shift
// trips slo_violation within one evaluation window, and recovery after
// the shift clears emits slo_recovered. Count-driven evaluation makes
// the whole sequence deterministic.
func TestSLOViolationAndRecovery(t *testing.T) {
	tr, buf, reg := newTestTracker(t, Config{
		DREObjective: 0.1,
		FastWindow:   8,
		SlowWindow:   16,
		EvalEvery:    2,
	})

	// Healthy phase: perfect model over a full slow window. No events.
	feedLabeled(tr, 16, 0, "v1")
	if got := events(t, buf); len(got) != 0 {
		t.Fatalf("healthy phase emitted %d events: %v", len(got), got)
	}
	if s := tr.Snapshot(); s.AccuracyViolated || s.ClusterDREFast > 1e-12 {
		t.Fatalf("healthy snapshot wrong: %+v", s)
	}

	// Label shift: +50 W on one machine. DRE over the 90 W range jumps
	// to ~0.55, far past the 0.1 objective, so both windows burn at the
	// first evaluation — within one EvalEvery of the shift.
	feedLabeled(tr, 2, 50, "v1")
	got := events(t, buf)
	if len(got) != 1 || got[0]["event"] != "slo_violation" {
		t.Fatalf("want exactly one slo_violation after one eval window, got %v", got)
	}
	v := got[0]
	if v["slo"] != "accuracy" || v["version"] != "v1" {
		t.Fatalf("violation fields wrong: %v", v)
	}
	if v["machine"] != "m0" {
		t.Fatalf("worst machine %v, want m0 (the shifted one)", v["machine"])
	}
	if bf := v["burn_fast"].(float64); bf < 1 {
		t.Fatalf("burn_fast %v should exceed threshold", bf)
	}
	if s := tr.Snapshot(); !s.AccuracyViolated || s.AccuracyTrips != 1 {
		t.Fatalf("snapshot after violation: %+v", s)
	}
	if g := reg.Snapshot()[`chaos_slo_violation{slo=accuracy}`]; g != 1 {
		t.Fatalf("chaos_slo_violation gauge %v, want 1", g)
	}

	// Still violating: no duplicate events while the state holds.
	feedLabeled(tr, 4, 50, "v1")
	if got := events(t, buf); len(got) != 1 {
		t.Fatalf("violation re-emitted: %v", got)
	}

	// Recovery: a full slow window of accurate labels flushes the bad
	// observations out of both windows.
	feedLabeled(tr, 16, 0, "v2")
	got = events(t, buf)
	if len(got) != 2 || got[1]["event"] != "slo_recovered" {
		t.Fatalf("want slo_recovered after windows clear, got %v", got)
	}
	if got[1]["slo"] != "accuracy" {
		t.Fatalf("recovery fields wrong: %v", got[1])
	}
	s := tr.Snapshot()
	if s.AccuracyViolated || s.AccuracyRecovers != 1 || s.AccuracyTrips != 1 {
		t.Fatalf("snapshot after recovery: %+v", s)
	}
	if g := reg.Snapshot()[`chaos_slo_violation{slo=accuracy}`]; g != 0 {
		t.Fatalf("chaos_slo_violation gauge %v, want 0", g)
	}
}

// TestSLOLatencyBurn checks the latency objective: slow (or failed)
// requests burn the 1% budget in both windows and trip the latency SLO;
// fast requests recover it.
func TestSLOLatencyBurn(t *testing.T) {
	tr, buf, reg := newTestTracker(t, Config{
		P99Objective: 10 * time.Millisecond,
		FastWindow:   8,
		SlowWindow:   16,
		EvalEvery:    2,
	})
	for i := 0; i < 16; i++ {
		tr.ObserveRequest("estimate", time.Millisecond, 200)
	}
	if got := events(t, buf); len(got) != 0 {
		t.Fatalf("fast traffic emitted events: %v", got)
	}
	// Two slow requests: fast-window bad fraction 2/8 = 25% vs the 1%
	// budget — burn 25 — and slow-window 2/16 — burn 12.5.
	tr.ObserveRequest("estimate", 100*time.Millisecond, 200)
	tr.ObserveRequest("estimate", 100*time.Millisecond, 200)
	got := events(t, buf)
	if len(got) != 1 || got[0]["event"] != "slo_violation" || got[0]["slo"] != "latency" {
		t.Fatalf("want latency slo_violation, got %v", got)
	}
	if p99 := reg.Snapshot()["chaos_slo_p99_seconds"]; p99 < 0.09 {
		t.Fatalf("p99 gauge %v should reflect the slow requests", p99)
	}
	// A slow window of fast requests evicts the outliers.
	for i := 0; i < 16; i++ {
		tr.ObserveRequest("estimate", time.Millisecond, 200)
	}
	got = events(t, buf)
	if len(got) != 2 || got[1]["event"] != "slo_recovered" {
		t.Fatalf("want latency slo_recovered, got %v", got)
	}
}

// TestSLOErrorStatusBurnsBudget: a non-2xx answer burns latency budget no
// matter how quickly it failed.
func TestSLOErrorStatusBurnsBudget(t *testing.T) {
	tr, buf, _ := newTestTracker(t, Config{
		P99Objective: 10 * time.Millisecond,
		FastWindow:   4,
		SlowWindow:   8,
		EvalEvery:    1,
	})
	for i := 0; i < 8; i++ {
		tr.ObserveRequest("estimate", time.Millisecond, 200)
	}
	tr.ObserveRequest("estimate", time.Microsecond, 429)
	got := events(t, buf)
	if len(got) != 1 || got[0]["event"] != "slo_violation" {
		t.Fatalf("shed request did not burn budget: %v", got)
	}
}

// TestSLOPerMachineDRE: per-machine gauges track each machine's own
// window, and the cluster window scores the summed estimate.
func TestSLOPerMachineDRE(t *testing.T) {
	tr, _, reg := newTestTracker(t, Config{
		DREObjective: 0.5,
		FastWindow:   8,
		SlowWindow:   16,
		EvalEvery:    4,
	})
	feedLabeled(tr, 8, 20, "v1")
	s := tr.Snapshot()
	if len(s.MachineDRE) != 3 {
		t.Fatalf("machine windows: %v", s.MachineDRE)
	}
	if s.MachineDRE["m0"] <= 0 {
		t.Fatalf("shifted machine m0 has DRE %v", s.MachineDRE["m0"])
	}
	snap := reg.Snapshot()
	if snap[`chaos_slo_machine_dre{machine=m0}`] <= 0 {
		t.Fatalf("machine gauge missing: %v", snap)
	}
	if snap[`chaos_slo_objective{slo=accuracy}`] != 0.5 {
		t.Fatalf("objective gauge: %v", snap)
	}
}

// TestSLODisabledAndNil: zero objectives never evaluate (no events), and
// a nil tracker absorbs observations, so serve can call unconditionally.
func TestSLODisabledAndNil(t *testing.T) {
	tr, buf, _ := newTestTracker(t, Config{})
	feedLabeled(tr, 64, 1000, "v1")
	for i := 0; i < 64; i++ {
		tr.ObserveRequest("estimate", time.Hour, 500)
	}
	if got := events(t, buf); len(got) != 0 {
		t.Fatalf("disabled tracker emitted: %v", got)
	}
	var nilTr *Tracker
	nilTr.ObserveRequest("estimate", time.Second, 200)
	nilTr.ObserveLabeled([]string{"m"}, []float64{1}, []float64{1}, 1, "v")
}
