package featsel

import (
	"fmt"
	"sort"

	"repro/internal/mathx"
	"repro/internal/regress"
	"repro/internal/trace"
)

// NaiveResult reports the paper's rejected first strategy (§IV-A): pool
// every machine's counters into one wide design predicting *cluster*
// power, and let the regression pick features. Because MapReduce machines
// behave almost identically, a parsimonious selector keeps one machine's
// counter and discards its twins — eliminating entire machines from the
// model and producing run-specific, fragile fits. CHAOS's Algorithm 1
// exists to avoid exactly this.
type NaiveResult struct {
	// SelectedPerMachine counts how many of each machine's counters the
	// selector kept.
	SelectedPerMachine map[string]int
	// EliminatedMachines lists machines that contributed zero features.
	EliminatedMachines []string
	// TotalSelected is the overall kept-feature count.
	TotalSelected int
	// SelectedColumns lists the kept (machine, feature) pairs as
	// "machine/feature" labels, in column order.
	SelectedColumns []string
}

// NaivePooledSelection runs the naive strategy over one cluster's traces:
// the design has one column per (machine, feature) pair and the response
// is the summed cluster power. features names the per-machine counters to
// include (e.g. a post-step-2 subset); targetK is the lasso's desired
// survivor count.
func NaivePooledSelection(traces []*trace.Trace, features []string, targetK int) (*NaiveResult, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("featsel: no traces")
	}
	if len(features) == 0 {
		return nil, fmt.Errorf("featsel: no features")
	}
	if targetK <= 0 {
		targetK = 10
	}
	byRun := trace.ByRun(traces)
	runs := trace.Runs(traces)

	var machines []string
	seen := map[string]bool{}
	for _, t := range traces {
		if !seen[t.MachineID] {
			seen[t.MachineID] = true
			machines = append(machines, t.MachineID)
		}
	}
	sort.Strings(machines)

	// Build the wide design run by run: rows are seconds, columns are
	// (machine, feature) pairs in machine-major order.
	cols := len(machines) * len(features)
	var rows [][]float64
	var y []float64
	for _, run := range runs {
		group := byRun[run]
		byMachine := map[string]*trace.Trace{}
		n := -1
		for _, t := range group {
			byMachine[t.MachineID] = t
			if n < 0 || t.Len() < n {
				n = t.Len()
			}
		}
		if len(byMachine) != len(machines) {
			return nil, fmt.Errorf("featsel: run %d misses machines (%d of %d)", run, len(byMachine), len(machines))
		}
		subs := make([]*trace.Trace, len(machines))
		for mi, id := range machines {
			sub, err := trace.SelectColumns(byMachine[id], features)
			if err != nil {
				return nil, err
			}
			subs[mi] = sub
		}
		for i := 0; i < n; i++ {
			row := make([]float64, 0, cols)
			power := 0.0
			for mi := range machines {
				row = append(row, subs[mi].X.Data[i*len(features):(i+1)*len(features)]...)
				power += subs[mi].Power[i]
			}
			rows = append(rows, row)
			y = append(y, power)
		}
	}
	x, err := mathx.FromRows(rows)
	if err != nil {
		return nil, err
	}
	cx, cy := capRows(x, y, 4000)
	sel, err := regress.LassoSelect(cx, cy, targetK)
	if err != nil {
		return nil, err
	}

	res := &NaiveResult{SelectedPerMachine: map[string]int{}, TotalSelected: len(sel)}
	for _, m := range machines {
		res.SelectedPerMachine[m] = 0
	}
	for _, j := range sel {
		m := machines[j/len(features)]
		res.SelectedPerMachine[m]++
		res.SelectedColumns = append(res.SelectedColumns, m+"/"+features[j%len(features)])
	}
	for _, m := range machines {
		if res.SelectedPerMachine[m] == 0 {
			res.EliminatedMachines = append(res.EliminatedMachines, m)
		}
	}
	return res, nil
}
