package overload

// Brownout levels. Each rung sheds progressively more auxiliary work so
// the estimate path itself keeps answering.
const (
	// LevelNormal: no degradation.
	LevelNormal = 0
	// LevelTrim: shrink the batch fill window so queued work drains with
	// less artificial latency (smaller batches, faster turnaround).
	LevelTrim = 1
	// LevelShedAux: additionally pause shadow mirroring and stop
	// sampling new traces — auxiliary work is the first real casualty.
	LevelShedAux = 2
	// LevelPartial: additionally stop fanning out /v1/estimate/cluster
	// to peers and serve coverage-partial local-slice answers.
	LevelPartial = 3

	// MaxLevel is the deepest brownout rung.
	MaxLevel = LevelPartial
)

// LadderConfig tunes brownout entry/exit. The zero value is usable.
type LadderConfig struct {
	// Enter[i] is the limiter pressure (shed fraction) at or above which
	// level i moves toward level i+1. Defaults {0.05, 0.25, 0.5}.
	Enter [MaxLevel]float64
	// Exit[i] is the pressure strictly below which level i+1 moves back
	// toward level i. Exit[i] < Enter[i] provides hysteresis.
	// Defaults {0.02, 0.10, 0.25}.
	Exit [MaxLevel]float64
	// EnterTicks is how many consecutive ticks the pressure must sit at
	// or above Enter before a rung is climbed. Default 2.
	EnterTicks int
	// ExitTicks is how many consecutive ticks the pressure must sit
	// below Exit before a rung is descended. Default 8 — exiting is
	// deliberately slower than entering so the ladder cannot flap.
	ExitTicks int
}

func (c LadderConfig) withDefaults() LadderConfig {
	zero := true
	for _, v := range c.Enter {
		if v != 0 {
			zero = false
		}
	}
	if zero {
		c.Enter = [MaxLevel]float64{0.05, 0.25, 0.5}
	}
	zero = true
	for _, v := range c.Exit {
		if v != 0 {
			zero = false
		}
	}
	if zero {
		c.Exit = [MaxLevel]float64{0.02, 0.10, 0.25}
	}
	if c.EnterTicks <= 0 {
		c.EnterTicks = 2
	}
	if c.ExitTicks <= 0 {
		c.ExitTicks = 8
	}
	return c
}

// Ladder is the brownout state machine. It is driven from a single
// controller goroutine via Observe; the current level is read lock-free
// from the hot path via the controller's atomic.
type Ladder struct {
	cfg   LadderConfig
	level int
	up    int
	down  int
}

// NewLadder builds a ladder at LevelNormal.
func NewLadder(cfg LadderConfig) *Ladder {
	return &Ladder{cfg: cfg.withDefaults()}
}

// Observe feeds one tick's pressure sample and returns the (possibly
// changed) level. Rungs move one at a time, each transition requiring
// the configured number of consecutive qualifying ticks.
func (b *Ladder) Observe(pressure float64) (level int, changed bool) {
	switch {
	case b.level < MaxLevel && pressure >= b.cfg.Enter[b.level]:
		b.up++
		b.down = 0
		if b.up >= b.cfg.EnterTicks {
			b.level++
			b.up = 0
			return b.level, true
		}
	case b.level > LevelNormal && pressure < b.cfg.Exit[b.level-1]:
		b.down++
		b.up = 0
		if b.down >= b.cfg.ExitTicks {
			b.level--
			b.down = 0
			return b.level, true
		}
	default:
		// Pressure sits in the hysteresis band: hold position and reset
		// both streaks.
		b.up, b.down = 0, 0
	}
	return b.level, false
}

// Level returns the current rung.
func (b *Ladder) Level() int { return b.level }
