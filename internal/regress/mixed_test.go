package regress

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mathx"
)

// mixedData generates grouped data with per-group intercepts and shared
// slopes.
func mixedData(seed int64, perGroup int, intercepts map[string]float64, slope float64, noise float64) (*mathx.Matrix, []float64, []string) {
	r := rand.New(rand.NewSource(seed))
	var rows [][]float64
	var y []float64
	var groups []string
	for g, a := range map[string]float64(intercepts) {
		for i := 0; i < perGroup; i++ {
			x := r.Float64() * 10
			rows = append(rows, []float64{x})
			y = append(y, a+slope*x+r.NormFloat64()*noise)
			groups = append(groups, g)
		}
	}
	m, _ := mathx.FromRows(rows)
	return m, y, groups
}

func TestMixedOLSRecoversStructure(t *testing.T) {
	intercepts := map[string]float64{"m0": 20, "m1": 22, "m2": 18}
	x, y, groups := mixedData(1, 200, intercepts, 1.5, 0.1)
	fit, err := MixedOLS(x, y, groups)
	if err != nil {
		t.Fatalf("MixedOLS: %v", err)
	}
	if math.Abs(fit.Coef[0]-1.5) > 0.02 {
		t.Errorf("slope = %v, want ~1.5", fit.Coef[0])
	}
	for g, want := range intercepts {
		if got := fit.Intercepts[g]; math.Abs(got-want) > 0.1 {
			t.Errorf("intercept[%s] = %v, want ~%v", g, got, want)
		}
	}
	if math.Abs(fit.GrandIntercept-20) > 0.1 {
		t.Errorf("grand intercept = %v, want ~20", fit.GrandIntercept)
	}
	// Between-group variance of {18,20,22} is 4.
	if math.Abs(fit.InterceptVar-4) > 0.5 {
		t.Errorf("intercept variance = %v, want ~4", fit.InterceptVar)
	}
}

func TestMixedOLSPredictGroup(t *testing.T) {
	x, y, groups := mixedData(2, 150, map[string]float64{"a": 10, "b": 30}, 2, 0.1)
	fit, err := MixedOLS(x, y, groups)
	if err != nil {
		t.Fatal(err)
	}
	pa := fit.PredictGroup("a", []float64{5})
	pb := fit.PredictGroup("b", []float64{5})
	if math.Abs(pa-20) > 0.5 || math.Abs(pb-40) > 0.5 {
		t.Errorf("group predictions = %v, %v; want ~20, ~40", pa, pb)
	}
	// Unknown group falls back to the grand intercept (~20 for {10,30}).
	pu := fit.PredictGroup("zzz", []float64{5})
	if math.Abs(pu-30) > 0.5 {
		t.Errorf("unknown-group prediction = %v, want ~30", pu)
	}
}

func TestMixedOLSValidation(t *testing.T) {
	x := mathx.NewMatrix(5, 1)
	if _, err := MixedOLS(x, make([]float64, 4), make([]string, 5)); err == nil {
		t.Error("expected length mismatch error")
	}
	if _, err := MixedOLS(x, make([]float64, 5), make([]string, 4)); err == nil {
		t.Error("expected group length error")
	}
	if _, err := MixedOLS(mathx.NewMatrix(2, 3), make([]float64, 2), make([]string, 2)); err == nil {
		t.Error("expected too-few-rows error")
	}
}

func TestPoolingAdequate(t *testing.T) {
	// Small machine-to-machine variation vs residual noise: poolable.
	x, y, groups := mixedData(3, 150, map[string]float64{"a": 20, "b": 20.2}, 1, 1.0)
	fit, err := MixedOLS(x, y, groups)
	if err != nil {
		t.Fatal(err)
	}
	ratio, ok := fit.PoolingAdequate(1.0)
	if !ok {
		t.Errorf("nearly identical machines should be poolable (ratio %v)", ratio)
	}
	// Huge intercept spread vs tiny noise: pooling loses accuracy.
	x2, y2, groups2 := mixedData(4, 150, map[string]float64{"a": 10, "b": 60}, 1, 0.2)
	fit2, err := MixedOLS(x2, y2, groups2)
	if err != nil {
		t.Fatal(err)
	}
	ratio2, ok2 := fit2.PoolingAdequate(1.0)
	if ok2 {
		t.Errorf("widely varying machines should not be poolable (ratio %v)", ratio2)
	}
	if ratio2 <= ratio {
		t.Errorf("ratios should order by heterogeneity: %v vs %v", ratio, ratio2)
	}
}
