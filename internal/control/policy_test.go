package control

import (
	"strings"
	"testing"
)

func validPolicyJSON() string {
	return `{
		"version": "chaos-capping/v1",
		"name": "test-cap",
		"interval_s": 30,
		"hysteresis_watts": 20,
		"budgets": [
			{"level": "row-0/rack-0", "watts": 1200},
			{"level": "row-1", "watts": 5000}
		],
		"migration": {"enabled": true}
	}`
}

func TestControlPolicyParseAndDefaults(t *testing.T) {
	p, err := ParsePolicy([]byte(validPolicyJSON()))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "test-cap" || p.IntervalS != 30 || len(p.Budgets) != 2 {
		t.Fatalf("parsed policy %+v", p)
	}
	if p.MaxActuationsPerTick != 8 {
		t.Fatalf("MaxActuationsPerTick default = %d, want 8", p.MaxActuationsPerTick)
	}
	if p.CooldownTicks != 2 {
		t.Fatalf("CooldownTicks default = %d, want 2", p.CooldownTicks)
	}
	if p.Migration.MaxPerTick != 2 {
		t.Fatalf("Migration.MaxPerTick default = %d, want 2", p.Migration.MaxPerTick)
	}
}

func TestControlPolicyRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":    `{"version":"chaos-capping/v1","name":"x","interval_s":1,"budgets":[{"level":"a","watts":1}],"oops":1}`,
		"trailing garbage": validPolicyJSON() + `{"more": true}`,
		"wrong version":    `{"version":"chaos-capping/v2","name":"x","interval_s":1,"budgets":[{"level":"a","watts":1}]}`,
		"no name":          `{"version":"chaos-capping/v1","interval_s":1,"budgets":[{"level":"a","watts":1}]}`,
		"zero interval":    `{"version":"chaos-capping/v1","name":"x","interval_s":0,"budgets":[{"level":"a","watts":1}]}`,
		"no budgets":       `{"version":"chaos-capping/v1","name":"x","interval_s":1,"budgets":[]}`,
		"duplicate budget": `{"version":"chaos-capping/v1","name":"x","interval_s":1,"budgets":[{"level":"a","watts":1},{"level":"a","watts":2}]}`,
		"zero watts":       `{"version":"chaos-capping/v1","name":"x","interval_s":1,"budgets":[{"level":"a","watts":0}]}`,
		"negative hyst":    `{"version":"chaos-capping/v1","name":"x","interval_s":1,"hysteresis_watts":-1,"budgets":[{"level":"a","watts":1}]}`,
		"unnamed budget":   `{"version":"chaos-capping/v1","name":"x","interval_s":1,"budgets":[{"watts":1}]}`,
		"not json":         `nope`,
	}
	for what, doc := range cases {
		if _, err := ParsePolicy([]byte(doc)); err == nil {
			t.Errorf("%s: accepted", what)
		}
	}
}

func TestControlPolicyErrorsAreDescriptive(t *testing.T) {
	_, err := ParsePolicy([]byte(`{"version":"chaos-capping/v1","name":"x","interval_s":1,"budgets":[{"level":"rack-9","watts":-5}]}`))
	if err == nil || !strings.Contains(err.Error(), "rack-9") {
		t.Fatalf("error %v does not name the offending level", err)
	}
}
