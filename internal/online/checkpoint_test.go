package online

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestRecoveryRetrainerState round-trips the retrain buffers through the
// serialized checkpoint form, including a wrapped ring whose chronological
// order must be preserved, and locks the mismatch guards.
func TestRecoveryRetrainerState(t *testing.T) {
	names := []string{"a", "b"}
	rt, err := NewRetrainer(names, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 6 adds into a capacity-4 ring: the ring wraps, keeping seconds 2..5.
	for i := 0; i < 6; i++ {
		s := Sample{MachineID: "m0", Platform: "p", Counters: []float64{float64(i), float64(i * 2)}}
		if err := rt.Add(s, float64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Add(Sample{MachineID: "m1", Platform: "q", Counters: []float64{7, 8}}, 50); err != nil {
		t.Fatal(err)
	}

	st := rt.State()
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var decoded RetrainerState
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}

	m0 := decoded.Machines["m0"]
	wantRows := [][]float64{{2, 4}, {3, 6}, {4, 8}, {5, 10}}
	wantPower := []float64{102, 103, 104, 105}
	if !reflect.DeepEqual(m0.Rows, wantRows) || !reflect.DeepEqual(m0.Power, wantPower) {
		t.Fatalf("wrapped ring state = %+v / %+v, want %+v / %+v (oldest first)",
			m0.Rows, m0.Power, wantRows, wantPower)
	}
	if decoded.Machines["m1"].Platform != "q" {
		t.Fatalf("platform lost: %+v", decoded.Machines["m1"])
	}

	rt2, err := NewRetrainer(names, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt2.Restore(decoded); err != nil {
		t.Fatal(err)
	}
	if got := rt2.Buffered("m0"); got != 4 {
		t.Fatalf("restored m0 buffered = %d, want 4", got)
	}
	if got := rt2.Buffered("m1"); got != 1 {
		t.Fatalf("restored m1 buffered = %d, want 1", got)
	}
	// The restored ring continues in order: one more add evicts the oldest.
	if err := rt2.Add(Sample{MachineID: "m0", Platform: "p", Counters: []float64{9, 9}}, 200); err != nil {
		t.Fatal(err)
	}
	st2 := rt2.State()
	if got := st2.Machines["m0"]; got.Power[0] != 103 || got.Power[3] != 200 {
		t.Fatalf("post-restore add broke ring order: %+v", got)
	}

	// Mismatched counter order must be refused.
	bad, err := NewRetrainer([]string{"b", "a"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.Restore(decoded); err == nil {
		t.Fatal("counter-order mismatch accepted")
	}
	// Row/label length mismatch must be refused.
	broken := decoded
	mb := broken.Machines["m0"]
	mb.Power = mb.Power[:2]
	broken.Machines = map[string]MachineBuffer{"m0": mb}
	rt3, _ := NewRetrainer(names, 4)
	if err := rt3.Restore(broken); err == nil {
		t.Fatal("row/label mismatch accepted")
	}
}
