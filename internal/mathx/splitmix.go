package mathx

import "math"

// SplitMix64 is a tiny allocation-free PRNG with 64-bit state.
//
// math/rand's lagged-Fibonacci source seeds a 607-word table with a weak
// linear recurrence, so streams built from nearby DeriveSeed values stay
// visibly correlated for many draws — exactly the failure PR 2 found in
// fault scheduling. splitmix64's finalizer avalanches every state bit on
// every draw, so two streams whose seeds differ in a single bit are
// decorrelated from the first output. Use one SplitMix64 per independent
// stream (per machine, per channel), seeded via DeriveSeed.
type SplitMix64 struct {
	s uint64
	// Box–Muller produces normals in pairs; the spare is cached so
	// NormFloat64 consumes a deterministic number of raw draws.
	spare    float64
	hasSpare bool
}

// NewSplitMix returns a SplitMix64 stream for the given seed.
func NewSplitMix(seed int64) *SplitMix64 { return &SplitMix64{s: uint64(seed)} }

// Uint64 returns the next raw 64-bit draw.
func (r *SplitMix64) Uint64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1).
func (r *SplitMix64) Float64() float64 { return float64(r.Uint64()>>11) / (1 << 53) }

// Intn returns a uniform draw in [0, n). It panics if n <= 0, matching
// math/rand.
func (r *SplitMix64) Intn(n int) int {
	if n <= 0 {
		panic("mathx: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal draw (Marsaglia polar method).
func (r *SplitMix64) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			f := math.Sqrt(-2 * math.Log(s) / s)
			r.spare, r.hasSpare = v*f, true
			return u * f
		}
	}
}

// ExpFloat64 returns an exponential draw with mean 1.
func (r *SplitMix64) ExpFloat64() float64 {
	// 1-Float64 is in (0, 1], so the log is finite.
	return -math.Log(1 - r.Float64())
}
