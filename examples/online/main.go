// Online: streaming cluster power estimation with drift detection and
// automatic retraining — the deployment loop CHAOS models exist for. A
// quadratic model trained on the CPU-bound Prime workload monitors a live
// cluster; when the cluster switches to the I/O-heavy Sort workload the
// residual monitor raises a drift alarm, the framework retrains from the
// buffered samples, and accuracy recovers.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/featsel"
	"repro/internal/models"
	"repro/internal/online"
	"repro/internal/trace"
)

func main() {
	ds, err := core.Collect("Core2", 3, []string{"Prime", "Sort"}, 2, 17)
	if err != nil {
		log.Fatal(err)
	}
	sel, err := ds.SelectFeatures(featsel.Options{})
	if err != nil {
		log.Fatal(err)
	}
	spec := core.ClusterSpec(sel.Features)

	// Train on Prime run 0.
	var train []*trace.Trace
	for _, t := range trace.ByRun(ds.ByWorkload["Prime"])[0] {
		train = append(train, trace.Subsample(t, 2))
	}
	mm, err := models.FitMachineModel(models.TechQuadratic, train, spec,
		models.FitOptions{MaxKnots: 8})
	if err != nil {
		log.Fatal(err)
	}
	cm, err := models.NewClusterModel(mm)
	if err != nil {
		log.Fatal(err)
	}

	// Baseline error on held-out Prime.
	holdout := trace.ByRun(ds.ByWorkload["Prime"])[1]
	pred, actual, err := cm.PredictCluster(holdout)
	if err != nil {
		log.Fatal(err)
	}
	baseline := rmse(pred, actual)
	fmt.Printf("model trained on Prime: held-out rMSE %.2f W\n", baseline)

	predictor, err := online.NewPredictor(cm, train[0].Names)
	if err != nil {
		log.Fatal(err)
	}
	monitor, err := online.NewMonitor(baseline, 16)
	if err != nil {
		log.Fatal(err)
	}
	retrainer, err := online.NewRetrainer(train[0].Names, 4000)
	if err != nil {
		log.Fatal(err)
	}

	// Stream: first held-out Prime (in regime), then Sort (new regime).
	// After a drift alarm we keep streaming — the buffer must fill with
	// the *new* regime before retraining is worthwhile.
	stream := func(name string, ts []*trace.Trace) int {
		n := ts[0].Len()
		driftAt := -1
		for i := 0; i < n; i++ {
			var samples []online.Sample
			var clusterActual float64
			for _, t := range ts {
				samples = append(samples, online.Sample{
					MachineID: t.MachineID, Platform: t.Platform, Counters: t.X.Row(i)})
				clusterActual += t.Power[i]
			}
			est, err := predictor.Step(samples)
			if err != nil {
				log.Fatal(err)
			}
			for k, t := range ts {
				if err := retrainer.Add(samples[k], t.Power[i]); err != nil {
					log.Fatal(err)
				}
			}
			if monitor.Observe(est.ClusterWatts, clusterActual) && driftAt < 0 {
				driftAt = i
				fmt.Printf("  DRIFT detected %ds into %s (EWMA residual %.1fx baseline); continuing to buffer the new regime\n",
					i, name, monitor.EWMA())
			}
		}
		if driftAt < 0 {
			fmt.Printf("  %s streamed %ds: no drift (EWMA residual %.1fx baseline)\n",
				name, n, monitor.EWMA())
		}
		return driftAt
	}

	fmt.Println("streaming held-out Prime...")
	if at := stream("Prime", holdout); at >= 0 {
		log.Fatalf("unexpected drift on the trained workload at %ds", at)
	}
	fmt.Println("cluster switches to Sort...")
	sortRun := trace.ByRun(ds.ByWorkload["Sort"])[0]
	if at := stream("Sort", sortRun); at < 0 {
		log.Fatal("expected drift on the unmodeled workload")
	}

	// Retrain from the buffer and verify recovery on the second Sort run.
	fmt.Println("retraining from buffered samples...")
	cm2, err := retrainer.Retrain(models.TechQuadratic, spec)
	if err != nil {
		log.Fatal(err)
	}
	monitor.Reset()
	sort2 := trace.ByRun(ds.ByWorkload["Sort"])[1]
	stale, actual2, _ := cm.PredictCluster(sort2)
	fresh, _, _ := cm2.PredictCluster(sort2)
	fmt.Printf("Sort run 1: stale model rMSE %.2f W, retrained rMSE %.2f W\n",
		rmse(stale, actual2), rmse(fresh, actual2))
}

func rmse(pred, actual []float64) float64 {
	var s float64
	for i := range pred {
		d := pred[i] - actual[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}
