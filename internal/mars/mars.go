// Package mars implements Friedman's Multivariate Adaptive Regression
// Splines (Annals of Statistics, 1991), the fitting engine behind the
// paper's piecewise linear (Eq. 2) and quadratic (Eq. 3) power models.
//
// A MARS model is a weighted sum of basis terms; each term is a product of
// hinge functions max(0, ±(x_v − t)). The forward pass greedily adds hinge
// pairs that most reduce residual sum of squares; the backward pass prunes
// terms using generalized cross-validation (GCV).
//
// Degree 1 yields a continuous piecewise-linear additive model; degree 2
// permits pairwise products of hinges, which is exactly the paper's
// "quadratic" model.
package mars

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mathx"
	"repro/internal/obs"
)

// Hinge is one factor of a basis term: max(0, x−Knot) when Sign > 0, or
// max(0, Knot−x) when Sign < 0, applied to input variable Var.
type Hinge struct {
	Var  int     `json:"var"`
	Knot float64 `json:"knot"`
	Sign int     `json:"sign"`
}

// Eval evaluates the hinge at x (the value of variable Var).
func (h Hinge) Eval(x float64) float64 {
	if h.Sign >= 0 {
		if x > h.Knot {
			return x - h.Knot
		}
		return 0
	}
	if x < h.Knot {
		return h.Knot - x
	}
	return 0
}

// Term is a product of hinge factors. An empty factor list is the
// intercept term (constant 1).
type Term struct {
	Factors []Hinge `json:"factors"`
}

// Eval evaluates the term on a full input row.
func (t Term) Eval(row []float64) float64 {
	v := 1.0
	for _, h := range t.Factors {
		v *= h.Eval(row[h.Var])
		if v == 0 {
			return 0
		}
	}
	return v
}

// Degree returns the number of hinge factors in the term.
func (t Term) Degree() int { return len(t.Factors) }

// usesVar reports whether the term already contains variable v.
func (t Term) usesVar(v int) bool {
	for _, h := range t.Factors {
		if h.Var == v {
			return true
		}
	}
	return false
}

// Model is a fitted MARS model: ŷ = Σ Coef[i]·Terms[i](x).
type Model struct {
	Terms []Term    `json:"terms"`
	Coef  []float64 `json:"coef"`
	GCV   float64   `json:"gcv"`
	// NumInputs is the width of rows the model expects.
	NumInputs int `json:"num_inputs"`
}

// Predict evaluates the model on one input row.
func (m *Model) Predict(row []float64) float64 {
	y := 0.0
	for i, t := range m.Terms {
		y += m.Coef[i] * t.Eval(row)
	}
	return y
}

// NumTerms returns the number of basis terms including the intercept.
func (m *Model) NumTerms() int { return len(m.Terms) }

// Options controls the MARS fit.
type Options struct {
	// MaxDegree is the largest number of hinge factors per term: 1 for
	// piecewise linear, 2 for the quadratic model. Default 1.
	MaxDegree int
	// MaxTerms bounds the number of basis terms grown in the forward
	// pass (including the intercept). Default 15.
	MaxTerms int
	// MaxKnots bounds candidate knots per variable, taken at quantiles
	// of the observed values. Default 10.
	MaxKnots int
	// Penalty is the GCV cost per knot (Friedman's d). Default 3 for
	// interaction models, 2 for additive models.
	Penalty float64
	// SelfInteraction permits a degree-2 term to reuse the same
	// variable with a different knot, giving x² style curvature as in
	// the paper's Eq. 3. Only meaningful when MaxDegree >= 2.
	SelfInteraction bool
	// Ridge is a relative L2 penalty on basis coefficients (fraction of
	// the mean Gram diagonal). Hinge bases can be nearly collinear, and
	// unpenalized least squares then picks huge cancelling coefficients
	// that extrapolate terribly; a small ridge selects the small-norm
	// solution instead. Default 1e-3.
	Ridge float64
}

func (o Options) withDefaults() Options {
	if o.MaxDegree <= 0 {
		o.MaxDegree = 1
	}
	if o.MaxTerms <= 0 {
		o.MaxTerms = 15
	}
	if o.MaxKnots <= 0 {
		o.MaxKnots = 10
	}
	if o.Penalty <= 0 {
		if o.MaxDegree > 1 {
			o.Penalty = 3
		} else {
			o.Penalty = 2
		}
	}
	if o.Ridge <= 0 {
		o.Ridge = 1e-3
	}
	return o
}

// Fit builds a MARS model for responses y over the rows of x.
func Fit(x *mathx.Matrix, y []float64, opts Options) (*Model, error) {
	opts = opts.withDefaults()
	n, p := x.Rows, x.Cols
	if n != len(y) {
		return nil, fmt.Errorf("mars: %d rows but %d responses", n, len(y))
	}
	if n < 10 {
		return nil, fmt.Errorf("mars: need at least 10 observations, got %d", n)
	}
	if p == 0 {
		return nil, fmt.Errorf("mars: no input variables")
	}

	span := obs.StartSpan("mars.fit", obs.Int("n", n), obs.Int("p", p), obs.Int("degree", opts.MaxDegree))
	f := &fitter{x: x, y: y, opts: opts, n: n, p: p}
	f.prepareKnots()
	f.forward()
	model := f.backward()
	model.NumInputs = p
	span.SetAttr(obs.Int("terms", len(model.Terms)))
	span.End()
	return model, nil
}

// fitter carries the working state of one MARS fit.
type fitter struct {
	x    *mathx.Matrix
	y    []float64
	opts Options
	n, p int

	knots [][]float64 // candidate knots per variable

	terms []Term      // current basis
	cols  [][]float64 // evaluated basis columns, cols[i][row]
	yty   float64
}

// prepareKnots picks candidate knots at quantiles of each variable's
// observed values, skipping duplicates and extremes.
func (f *fitter) prepareKnots() {
	f.knots = make([][]float64, f.p)
	for v := 0; v < f.p; v++ {
		vals := f.x.Col(v)
		sort.Float64s(vals)
		uniq := vals[:0]
		for i, x := range vals {
			if i == 0 || x != uniq[len(uniq)-1] {
				uniq = append(uniq, x)
			}
		}
		if len(uniq) < 3 {
			// Constant or near-constant variable: no usable knots.
			continue
		}
		k := f.opts.MaxKnots
		if k > len(uniq)-2 {
			k = len(uniq) - 2
		}
		ks := make([]float64, 0, k)
		for i := 1; i <= k; i++ {
			idx := i * (len(uniq) - 1) / (k + 1)
			if idx == 0 || idx == len(uniq)-1 {
				continue
			}
			kv := uniq[idx]
			if len(ks) == 0 || kv != ks[len(ks)-1] {
				ks = append(ks, kv)
			}
		}
		f.knots[v] = ks
	}
}

// forward grows the basis with the greedy RSS-minimizing hinge pairs.
func (f *fitter) forward() {
	f.terms = []Term{{}} // intercept
	ones := make([]float64, f.n)
	for i := range ones {
		ones[i] = 1
	}
	f.cols = [][]float64{ones}
	for _, yi := range f.y {
		f.yty += yi * yi
	}

	for len(f.terms) < f.opts.MaxTerms {
		bestRSS := math.Inf(1)
		var bestParent int
		var bestVar int
		var bestKnot float64
		found := false

		gram, xty := f.gram()
		baseRSS, ok := f.rssFor(gram, xty, nil, nil)
		if !ok {
			break
		}

		for parent := 0; parent < len(f.terms); parent++ {
			pt := f.terms[parent]
			if pt.Degree() >= f.opts.MaxDegree {
				continue
			}
			pcol := f.cols[parent]
			for v := 0; v < f.p; v++ {
				if pt.usesVar(v) && !f.opts.SelfInteraction {
					continue
				}
				for _, knot := range f.knots[v] {
					u, w := f.hingePair(pcol, v, knot)
					if u == nil {
						continue
					}
					rss, ok := f.rssFor(gram, xty, u, w)
					if !ok {
						continue
					}
					if rss < bestRSS {
						bestRSS, bestParent, bestVar, bestKnot = rss, parent, v, knot
						found = true
					}
				}
			}
		}
		// Require a meaningful relative improvement to keep growing.
		if !found || bestRSS > baseRSS*(1-1e-4) {
			break
		}
		pt := f.terms[bestParent]
		pos := Term{Factors: append(append([]Hinge(nil), pt.Factors...), Hinge{Var: bestVar, Knot: bestKnot, Sign: +1})}
		neg := Term{Factors: append(append([]Hinge(nil), pt.Factors...), Hinge{Var: bestVar, Knot: bestKnot, Sign: -1})}
		u, w := f.hingePair(f.cols[bestParent], bestVar, bestKnot)
		f.terms = append(f.terms, pos, neg)
		f.cols = append(f.cols, u, w)
	}
}

// hingePair returns the two candidate columns parent·max(0,x−t) and
// parent·max(0,t−x), or nils when either column is all zeros (degenerate).
func (f *fitter) hingePair(parent []float64, v int, knot float64) (u, w []float64) {
	u = make([]float64, f.n)
	w = make([]float64, f.n)
	var su, sw float64
	for i := 0; i < f.n; i++ {
		if parent[i] == 0 {
			continue
		}
		xv := f.x.At(i, v)
		if xv > knot {
			u[i] = parent[i] * (xv - knot)
			su += u[i] * u[i]
		} else if xv < knot {
			w[i] = parent[i] * (knot - xv)
			sw += w[i] * w[i]
		}
	}
	if su == 0 || sw == 0 {
		return nil, nil
	}
	return u, w
}

// gram returns the Gram matrix BᵀB and vector Bᵀy of the current basis.
func (f *fitter) gram() (*mathx.Matrix, []float64) {
	m := len(f.cols)
	g := mathx.NewMatrix(m, m)
	xty := make([]float64, m)
	for a := 0; a < m; a++ {
		ca := f.cols[a]
		for b := a; b < m; b++ {
			cb := f.cols[b]
			s := 0.0
			for i := 0; i < f.n; i++ {
				s += ca[i] * cb[i]
			}
			g.Set(a, b, s)
			g.Set(b, a, s)
		}
		s := 0.0
		for i := 0; i < f.n; i++ {
			s += ca[i] * f.y[i]
		}
		xty[a] = s
	}
	return g, xty
}

// rssFor computes the residual sum of squares of the least-squares fit on
// the current basis optionally augmented with columns u and w. gram/xty
// describe the current basis only.
func (f *fitter) rssFor(gram *mathx.Matrix, xty []float64, u, w []float64) (float64, bool) {
	m := len(f.cols)
	extra := 0
	if u != nil {
		extra = 2
	}
	g := mathx.NewMatrix(m+extra, m+extra)
	rhs := make([]float64, m+extra)
	for a := 0; a < m; a++ {
		copy(g.Data[a*(m+extra):a*(m+extra)+m], gram.Data[a*m:(a+1)*m])
		rhs[a] = xty[a]
	}
	if extra == 2 {
		newCols := [][]float64{u, w}
		for k, nc := range newCols {
			col := m + k
			for a := 0; a < m; a++ {
				s := dot(f.cols[a], nc)
				g.Set(a, col, s)
				g.Set(col, a, s)
			}
			for l := 0; l <= k; l++ {
				s := dot(newCols[l], nc)
				g.Set(m+l, col, s)
				g.Set(col, m+l, s)
			}
			rhs[col] = dot(nc, f.y)
		}
	}
	lambda := f.applyRidge(g)
	beta, err := mathx.CholeskySolve(g, rhs, 1e-3)
	if err != nil {
		return 0, false
	}
	rss := ridgedRSS(f.yty, beta, rhs, lambda)
	return rss, true
}

// ridgedRSS recovers the exact residual sum of squares of a ridge
// solution: for (G0+λI')β = rhs (intercept unpenalized), the true RSS is
// yᵀy − βᵀrhs − λ·Σ_{a≥1} β_a².
func ridgedRSS(yty float64, beta, rhs []float64, lambda float64) float64 {
	rss := yty
	for a := range beta {
		rss -= beta[a] * rhs[a]
	}
	for a := 1; a < len(beta); a++ {
		rss -= lambda * beta[a] * beta[a]
	}
	if rss < 0 {
		rss = 0
	}
	return rss
}

// applyRidge adds the relative L2 penalty to a Gram matrix diagonal and
// returns the absolute penalty used. The first basis (the intercept) is
// left unpenalized so constant fits remain exact.
func (f *fitter) applyRidge(g *mathx.Matrix) float64 {
	n := g.Rows
	if n < 2 || f.opts.Ridge <= 0 {
		return 0
	}
	mean := 0.0
	for i := 1; i < n; i++ {
		mean += g.At(i, i)
	}
	mean /= float64(n - 1)
	add := f.opts.Ridge * mean
	for i := 1; i < n; i++ {
		g.Set(i, i, g.At(i, i)+add)
	}
	return add
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// gcv computes Friedman's generalized cross-validation criterion for a
// model with the given RSS and number of terms.
func (f *fitter) gcv(rss float64, nTerms int) float64 {
	c := float64(nTerms) + f.opts.Penalty*float64(nTerms-1)/2
	nf := float64(f.n)
	d := 1 - c/nf
	if d <= 0 {
		return math.Inf(1)
	}
	return rss / nf / (d * d)
}

// backward prunes terms one at a time, keeping the subset with the best
// GCV, then fits final coefficients on that subset.
func (f *fitter) backward() *Model {
	type subset struct {
		idx []int // indices into f.terms
		gcv float64
	}
	all := make([]int, len(f.terms))
	for i := range all {
		all[i] = i
	}
	rssOf := func(idx []int) (float64, []float64, bool) {
		m := len(idx)
		g := mathx.NewMatrix(m, m)
		rhs := make([]float64, m)
		for a := 0; a < m; a++ {
			for b := a; b < m; b++ {
				s := dot(f.cols[idx[a]], f.cols[idx[b]])
				g.Set(a, b, s)
				g.Set(b, a, s)
			}
			rhs[a] = dot(f.cols[idx[a]], f.y)
		}
		lambda := f.applyRidge(g)
		beta, err := mathx.CholeskySolve(g, rhs, 1e-3)
		if err != nil {
			return 0, nil, false
		}
		return ridgedRSS(f.yty, beta, rhs, lambda), beta, true
	}

	best := subset{idx: all, gcv: math.Inf(1)}
	if rss, _, ok := rssOf(all); ok {
		best.gcv = f.gcv(rss, len(all))
	}
	cur := append([]int(nil), all...)
	for len(cur) > 1 {
		// Try removing each non-intercept term; keep the removal with
		// the lowest GCV.
		bestLocal := subset{gcv: math.Inf(1)}
		for drop := 0; drop < len(cur); drop++ {
			if cur[drop] == 0 {
				continue // never drop the intercept
			}
			trial := make([]int, 0, len(cur)-1)
			trial = append(trial, cur[:drop]...)
			trial = append(trial, cur[drop+1:]...)
			rss, _, ok := rssOf(trial)
			if !ok {
				continue
			}
			if g := f.gcv(rss, len(trial)); g < bestLocal.gcv {
				bestLocal = subset{idx: trial, gcv: g}
			}
		}
		if bestLocal.idx == nil {
			break
		}
		cur = bestLocal.idx
		if bestLocal.gcv < best.gcv {
			best = subset{idx: append([]int(nil), cur...), gcv: bestLocal.gcv}
		}
	}

	_, beta, ok := rssOf(best.idx)
	if !ok || beta == nil {
		// Degenerate: fall back to the intercept-only model.
		mean := mathx.Mean(f.y)
		return &Model{Terms: []Term{{}}, Coef: []float64{mean}, GCV: best.gcv}
	}
	terms := make([]Term, len(best.idx))
	for i, id := range best.idx {
		terms[i] = f.terms[id]
	}
	return &Model{Terms: terms, Coef: beta, GCV: best.gcv}
}
