// Package lifecycle closes the loop the paper's automatic-framework
// motivation calls for (§IV-A: "rapidly and easily build new models for
// applications, thus adapting to new characteristics and workloads"): a
// background orchestrator that watches the serving layer's drift monitor
// and labeled-sample buffers, retrains a challenger model off the hot
// path when triggered, shadow-scores it against the live champion on a
// held-out recent window plus mirrored live traffic (challenger
// predictions are computed but never returned to clients), and promotes
// it through the registry's atomic hot-swap only when it beats the
// champion on dynamic-range error by a configurable margin — with
// automatic rollback if post-promotion error regresses inside a
// probation window.
//
// The orchestrator never touches the request path: the serving layer
// feeds it labeled snapshots and mirrored shadow scores through cheap
// callbacks, and every heavy step (fitting, window scoring) runs on the
// orchestrator's own goroutine.
package lifecycle

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/registry"
)

// Lifecycle instruments, resolved once at import.
var (
	lcRetrains    = obs.Default().Counter("chaos_lifecycle_retrains_total", nil)
	lcPromotions  = obs.Default().Counter("chaos_lifecycle_promotions_total", nil)
	lcRollbacks   = obs.Default().Counter("chaos_lifecycle_rollbacks_total", nil)
	lcShadowRatio = obs.Default().Gauge("chaos_shadow_error_ratio", nil)
)

// Engine is the serving surface the orchestrator drives: the serve-side
// drift alarm, and shadow mirroring of live traffic against a challenger
// version. *serve.Server implements it; lifecycle stays decoupled from
// the HTTP layer.
type Engine interface {
	// Drifted reports whether the serve-path drift monitor has alarmed.
	Drifted() bool
	// ResetDrift clears the drift alarm after a retrain resolves (or
	// fails to resolve) it, so the monitor re-arms on fresh residuals.
	ResetDrift()
	// StartShadow begins mirroring live traffic against the named
	// registry version: challenger predictions are computed in the worker
	// shards but never returned to clients.
	StartShadow(version string) error
	// StopShadow ends the mirror.
	StopShadow()
}

// Config tunes the orchestrator. Zero values take defaults.
type Config struct {
	// Tech is the technique challengers are fitted with (default linear).
	Tech models.Technique
	// Spec is the feature spec challengers are fitted on. Required.
	Spec models.FeatureSpec
	// Names is the counter order of incoming sample rows. Required.
	Names []string
	// RetrainCapacity bounds the per-machine labeled ring (default 2048).
	RetrainCapacity int
	// HeldOut is how many recent labeled snapshots the held-out scoring
	// window keeps (default 256).
	HeldOut int
	// CheckInterval is the orchestrator loop cadence (default 250ms).
	CheckInterval time.Duration
	// Interval, when positive, triggers a retrain every wall-clock period
	// regardless of drift.
	Interval time.Duration
	// TriggerSamples, when positive, triggers a retrain after this many
	// labeled snapshots have arrived since the last one.
	TriggerSamples int
	// MinTrainSnapshots gates automatic triggers until the held-out
	// window holds at least this many snapshots (default 64). Manual
	// triggers bypass it.
	MinTrainSnapshots int
	// ShadowSnapshots is how many live mirrored metered snapshots must
	// accumulate before the verdict (default 32). Zero decides on the
	// held-out window alone.
	ShadowSnapshots int
	// PromoteMargin is the fraction by which the challenger's
	// dynamic-range error must beat the champion's to promote
	// (default 0.05): promote iff challDRE <= champDRE * (1 - margin).
	PromoteMargin float64
	// ProbationSnapshots is how many metered snapshots the freshly
	// promoted model is watched for after the swap (default 64). Zero
	// disables probation.
	ProbationSnapshots int
	// RollbackRatio triggers automatic rollback when the post-promotion
	// live RMSE exceeds RollbackRatio * shadowRMSE + RMSEFloor
	// (default 2).
	RollbackRatio float64
	// RMSEFloor is the absolute slack added to the rollback bound so a
	// near-perfect shadow fit does not make probation hair-triggered
	// (default 1 watt).
	RMSEFloor float64
	// Cooldown is the minimum gap between automatic retrains
	// (default 30s). Manual triggers bypass it, and so does the first
	// automatic retrain after startup: until a retrain has actually run
	// there is nothing to cool down from, and only the minimum-window
	// gate should delay reacting to early drift.
	Cooldown time.Duration
	// Events, when set, receives the lifecycle JSON events:
	// retrain_triggered, challenger_trained, shadow_verdict, promoted,
	// rolled_back (plus lifecycle_error on failures).
	Events *obs.EventSink
}

func (c Config) withDefaults() (Config, error) {
	if c.Tech == "" {
		c.Tech = models.TechLinear
	}
	if len(c.Spec.Counters) == 0 {
		return c, fmt.Errorf("lifecycle: config needs a feature spec")
	}
	if len(c.Names) == 0 {
		return c, fmt.Errorf("lifecycle: config needs the counter name order")
	}
	if c.RetrainCapacity <= 0 {
		c.RetrainCapacity = 2048
	}
	if c.HeldOut <= 0 {
		c.HeldOut = 256
	}
	if c.CheckInterval <= 0 {
		c.CheckInterval = 250 * time.Millisecond
	}
	if c.MinTrainSnapshots <= 0 {
		c.MinTrainSnapshots = 64
	}
	if c.ShadowSnapshots < 0 {
		c.ShadowSnapshots = 0
	}
	if c.ShadowSnapshots == 0 && c.PromoteMargin == 0 {
		// keep default margin below
	}
	if c.PromoteMargin <= 0 {
		c.PromoteMargin = 0.05
	}
	if c.ProbationSnapshots < 0 {
		c.ProbationSnapshots = 0
	}
	if c.RollbackRatio <= 0 {
		c.RollbackRatio = 2
	}
	if c.RMSEFloor <= 0 {
		c.RMSEFloor = 1
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	return c, nil
}

// state is the orchestrator's phase.
type state int

const (
	stateIdle state = iota
	stateTraining
	stateShadowing
	stateProbation
)

func (s state) String() string {
	switch s {
	case stateIdle:
		return "idle"
	case stateTraining:
		return "training"
	case stateShadowing:
		return "shadowing"
	case stateProbation:
		return "probation"
	}
	return "unknown"
}

// accum accumulates mirrored live scoring: squared errors of champion and
// challenger against the metered cluster watts.
type accum struct {
	n        int
	champSSE float64
	challSSE float64
	minA     float64
	maxA     float64
}

func (a *accum) add(champ, chall, actual float64) {
	if a.n == 0 {
		a.minA, a.maxA = actual, actual
	} else {
		if actual < a.minA {
			a.minA = actual
		}
		if actual > a.maxA {
			a.maxA = actual
		}
	}
	a.n++
	dc := champ - actual
	dl := chall - actual
	a.champSSE += dc * dc
	a.challSSE += dl * dl
}

// probAccum accumulates the promoted model's post-swap live error.
type probAccum struct {
	n   int
	sse float64
}

// Orchestrator is the closed-loop model lifecycle driver. Create with
// New, wire its Ingest/ObserveShadow hooks into the serving layer, call
// Start with the engine, and Close on shutdown.
type Orchestrator struct {
	reg *registry.Registry
	cfg Config
	rt  *online.Retrainer

	mu    sync.Mutex
	eng   Engine
	state state
	// heldout is a ring of recent labeled snapshots (chronological
	// extraction via window()).
	heldout  []Snapshot
	heldNext int
	heldFull bool

	sinceRetrain int
	lastRetrain  time.Time // zero until the first retrain runs
	startedAt    time.Time // interval-trigger anchor before any retrain
	manual       []string

	// shadow evaluation
	challenger string
	champion   string
	heldChamp  Score
	heldChall  Score
	live       accum

	// probation
	promotedVersion string
	promotedPrev    string
	shadowRMSE      float64
	probation       probAccum

	// status
	seq         int
	retrains    int
	promotions  int
	rollbacks   int
	lastTrigger string
	lastVerdict string
	lastRatio   float64
	lastErr     string
	closed      bool

	kick chan struct{}
	stop chan struct{}
	done chan struct{}
	now  func() time.Time
}

// New builds an orchestrator over the registry. Start must be called with
// the serving engine before any trigger can resolve.
func New(reg *registry.Registry, cfg Config) (*Orchestrator, error) {
	if reg == nil {
		return nil, fmt.Errorf("lifecycle: nil registry")
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rt, err := online.NewRetrainer(cfg.Names, cfg.RetrainCapacity)
	if err != nil {
		return nil, err
	}
	o := &Orchestrator{
		reg:     reg,
		cfg:     cfg,
		rt:      rt,
		heldout: make([]Snapshot, cfg.HeldOut),
		kick:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		now:     time.Now,
	}
	// lastRetrain stays zero until the first retrain actually runs: the
	// cooldown gate never blocks the first trigger after startup (the
	// min-window gate is what paces the warmup).
	return o, nil
}

// Start binds the serving engine and launches the background loop. When a
// restored checkpoint left the machine shadowing, the live mirror is
// re-armed here — the mirror itself died with the old process; only the
// accumulated scores survived.
func (o *Orchestrator) Start(eng Engine) error {
	if eng == nil {
		return fmt.Errorf("lifecycle: nil engine")
	}
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return fmt.Errorf("lifecycle: orchestrator closed")
	}
	if o.eng != nil {
		o.mu.Unlock()
		return fmt.Errorf("lifecycle: already started")
	}
	o.eng = eng
	o.startedAt = o.now()
	rearm := ""
	if o.state == stateShadowing && o.challenger != "" {
		rearm = o.challenger
	}
	o.mu.Unlock()
	if rearm != "" {
		if err := eng.StartShadow(rearm); err != nil {
			// The challenger may be gone (e.g. its admission was the lost
			// journal tail). Fall back to idle rather than refuse to boot.
			o.mu.Lock()
			o.state = stateIdle
			o.challenger = ""
			o.lastErr = "restore-shadow: " + err.Error()
			o.mu.Unlock()
			o.emit("lifecycle_error", map[string]any{"stage": "restore-shadow", "error": err.Error()})
		}
	}
	go o.run()
	return nil
}

// Close stops the loop and any active shadow mirror. Safe to call more
// than once, and before Start.
func (o *Orchestrator) Close() {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return
	}
	o.closed = true
	started := o.eng != nil
	eng := o.eng
	wasShadowing := o.state == stateShadowing
	o.mu.Unlock()
	close(o.stop)
	if started {
		<-o.done
	}
	if wasShadowing && eng != nil {
		eng.StopShadow()
	}
}

// Ingest receives one fully-served metered snapshot from the serving
// layer: the samples, the per-machine metered watts, the cluster estimate
// answered, and the version that served it. It feeds the retrain buffers,
// the held-out scoring window, and — during probation — the promoted
// model's live error (only snapshots the promoted version itself served
// count: requests in flight across the swap were answered by the old
// champion and say nothing about the new model). Counter rows are copied;
// callers may reuse them.
func (o *Orchestrator) Ingest(samples []online.Sample, metered []float64, estimated float64, version string) {
	if len(samples) == 0 || len(metered) != len(samples) {
		return
	}
	cp := make([]online.Sample, 0, len(samples))
	var actual float64
	for i, s := range samples {
		if len(s.Counters) != len(o.cfg.Names) {
			return // structurally incompatible snapshot; drop it whole
		}
		c := online.Sample{
			MachineID: s.MachineID,
			Platform:  s.Platform,
			Counters:  append([]float64(nil), s.Counters...),
		}
		cp = append(cp, c)
		actual += metered[i]
		// Non-finite rows/labels are rejected (and counted) inside Add.
		_ = o.rt.Add(c, metered[i]) //nolint:errcheck // width checked above
	}
	if math.IsNaN(actual) || math.IsInf(actual, 0) {
		return
	}
	o.mu.Lock()
	o.heldout[o.heldNext] = Snapshot{Samples: cp, Actual: actual}
	o.heldNext++
	if o.heldNext == len(o.heldout) {
		o.heldNext = 0
		o.heldFull = true
	}
	o.sinceRetrain++
	if o.state == stateProbation && version == o.promotedVersion &&
		!math.IsNaN(estimated) && !math.IsInf(estimated, 0) {
		d := estimated - actual
		o.probation.n++
		o.probation.sse += d * d
	}
	o.mu.Unlock()
}

// ObserveShadow receives one mirrored snapshot score from the serving
// layer: the champion's cluster estimate, the shadow challenger's (never
// returned to clients), and the metered cluster watts.
func (o *Orchestrator) ObserveShadow(champ, chall, actual float64) {
	for _, v := range []float64{champ, chall, actual} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return
		}
	}
	o.mu.Lock()
	if o.state == stateShadowing {
		o.live.add(champ, chall, actual)
	}
	o.mu.Unlock()
}

// TriggerRetrain requests an explicit retrain (the /v1/lifecycle/retrain
// path). Manual triggers bypass the cooldown and minimum-window gates;
// the retrain itself still fails cleanly when too little is buffered.
func (o *Orchestrator) TriggerRetrain(reason string) error {
	if reason == "" {
		reason = "manual"
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return fmt.Errorf("lifecycle: orchestrator closed")
	}
	if o.eng == nil {
		return fmt.Errorf("lifecycle: orchestrator not started")
	}
	if len(o.manual) >= 8 {
		return fmt.Errorf("lifecycle: too many pending retrain requests")
	}
	o.manual = append(o.manual, reason)
	select {
	case o.kick <- struct{}{}:
	default:
	}
	return nil
}

// Status is the machine-readable orchestrator state (the
// /v1/lifecycle/status payload).
type Status struct {
	State                 string  `json:"state"`
	Champion              string  `json:"champion"`
	Challenger            string  `json:"challenger,omitempty"`
	Retrains              int     `json:"retrains"`
	Promotions            int     `json:"promotions"`
	Rollbacks             int     `json:"rollbacks"`
	SnapshotsSinceRetrain int     `json:"snapshots_since_retrain"`
	HeldOutSnapshots      int     `json:"held_out_snapshots"`
	LiveShadowSnapshots   int     `json:"live_shadow_snapshots"`
	ProbationSnapshots    int     `json:"probation_snapshots"`
	LastTrigger           string  `json:"last_trigger,omitempty"`
	LastVerdict           string  `json:"last_verdict,omitempty"`
	ShadowErrorRatio      float64 `json:"shadow_error_ratio,omitempty"`
	LastError             string  `json:"last_error,omitempty"`
}

// Status returns a snapshot of the orchestrator state.
func (o *Orchestrator) Status() Status {
	o.mu.Lock()
	defer o.mu.Unlock()
	held := o.heldNext
	if o.heldFull {
		held = len(o.heldout)
	}
	return Status{
		State:                 o.state.String(),
		Champion:              o.reg.ActiveVersion(),
		Challenger:            o.challenger,
		Retrains:              o.retrains,
		Promotions:            o.promotions,
		Rollbacks:             o.rollbacks,
		SnapshotsSinceRetrain: o.sinceRetrain,
		HeldOutSnapshots:      held,
		LiveShadowSnapshots:   o.live.n,
		ProbationSnapshots:    o.probation.n,
		LastTrigger:           o.lastTrigger,
		LastVerdict:           o.lastVerdict,
		ShadowErrorRatio:      o.lastRatio,
		LastError:             o.lastErr,
	}
}

// StatusJSON adapts Status to the serve.Lifecycle interface.
func (o *Orchestrator) StatusJSON() any { return o.Status() }

// run is the orchestrator loop: one tick per CheckInterval (or sooner on
// a manual kick), each tick advancing the state machine at most one step.
func (o *Orchestrator) run() {
	defer close(o.done)
	t := time.NewTicker(o.cfg.CheckInterval)
	defer t.Stop()
	for {
		select {
		case <-o.stop:
			return
		case <-t.C:
		case <-o.kick:
		}
		o.tick()
	}
}

// tick advances the state machine. Heavy work (fitting, scoring) runs
// with the mutex released so Ingest/ObserveShadow never block on it.
func (o *Orchestrator) tick() {
	o.mu.Lock()
	switch o.state {
	case stateIdle:
		reason, ok := o.triggerLocked()
		if !ok {
			o.mu.Unlock()
			return
		}
		o.state = stateTraining
		o.lastTrigger = reason
		o.sinceRetrain = 0
		o.lastRetrain = o.now()
		o.lastErr = ""
		o.mu.Unlock()
		o.emit("retrain_triggered", map[string]any{"reason": reason})
		o.train(reason)
	case stateShadowing:
		if o.cfg.ShadowSnapshots > 0 && o.live.n < o.cfg.ShadowSnapshots {
			o.mu.Unlock()
			return
		}
		o.mu.Unlock()
		o.verdict()
	case stateProbation:
		o.mu.Unlock()
		o.checkProbation()
	default:
		o.mu.Unlock()
	}
}

// triggerLocked decides whether a retrain should start now. Caller holds
// o.mu.
func (o *Orchestrator) triggerLocked() (string, bool) {
	if len(o.manual) > 0 {
		r := o.manual[0]
		o.manual = o.manual[1:]
		return r, true
	}
	held := o.heldNext
	if o.heldFull {
		held = len(o.heldout)
	}
	if held < o.cfg.MinTrainSnapshots {
		return "", false
	}
	now := o.now()
	// The cooldown spaces retrains apart; before the first one there is
	// nothing to cool down from, so only the min-window gate above paces
	// the warmup and early drift is acted on immediately.
	if !o.lastRetrain.IsZero() && now.Sub(o.lastRetrain) < o.cfg.Cooldown {
		return "", false
	}
	if o.eng != nil && o.eng.Drifted() {
		return "drift", true
	}
	if o.cfg.TriggerSamples > 0 && o.sinceRetrain >= o.cfg.TriggerSamples {
		return "samples", true
	}
	if o.cfg.Interval > 0 {
		ref := o.lastRetrain
		if ref.IsZero() {
			ref = o.startedAt
		}
		if now.Sub(ref) >= o.cfg.Interval {
			return "interval", true
		}
	}
	return "", false
}

// fail records a lifecycle error and returns the machine to idle.
func (o *Orchestrator) fail(stage string, err error) {
	o.mu.Lock()
	o.lastErr = stage + ": " + err.Error()
	o.state = stateIdle
	o.challenger = ""
	o.mu.Unlock()
	o.emit("lifecycle_error", map[string]any{"stage": stage, "error": err.Error()})
}

// train fits the challenger from the retrain buffers, admits it to the
// registry (inactive), scores the held-out window for both contenders,
// and starts the live shadow mirror.
func (o *Orchestrator) train(reason string) {
	start := time.Now()
	cm, err := o.rt.Retrain(o.cfg.Tech, o.cfg.Spec)
	if err != nil {
		o.fail("retrain", err)
		return
	}
	champion := o.reg.ActiveVersion()
	if champion == "" {
		o.fail("retrain", fmt.Errorf("lifecycle: no active champion to challenge"))
		return
	}
	var version string
	admitted := false
	for attempt := 0; attempt < 100; attempt++ {
		o.mu.Lock()
		o.seq++
		version = fmt.Sprintf("auto-%d", o.seq)
		o.mu.Unlock()
		if err = o.reg.Add(version, cm, registry.Meta{
			Description: "lifecycle challenger (" + reason + ")",
			Source:      "lifecycle",
		}); err == nil {
			admitted = true
			break
		}
	}
	if !admitted {
		o.fail("admit", err)
		return
	}
	lcRetrains.Inc()
	champEntry, ok := o.reg.Get(champion)
	if !ok {
		o.fail("score", fmt.Errorf("lifecycle: champion %q vanished", champion))
		return
	}
	win := o.window()
	champScore, err := ScoreWindow(champEntry.Model, o.cfg.Names, win)
	if err != nil {
		o.fail("score", err)
		return
	}
	challScore, err := ScoreWindow(cm, o.cfg.Names, win)
	if err != nil {
		o.fail("score", err)
		return
	}
	if err := o.eng.StartShadow(version); err != nil {
		o.fail("shadow", err)
		return
	}
	o.mu.Lock()
	o.state = stateShadowing
	o.challenger = version
	o.champion = champion
	o.heldChamp = champScore
	o.heldChall = challScore
	o.live = accum{}
	o.retrains++
	o.mu.Unlock()
	o.emit("challenger_trained", map[string]any{
		"version": version, "champion": champion,
		"technique": string(o.cfg.Tech),
		"train_ms":  float64(time.Since(start).Milliseconds()),
		"heldout":   champScore.N,
	})
}

// verdict combines the held-out and live-mirror scores into the
// promotion decision and either hot-swaps the challenger in or leaves
// the champion serving.
func (o *Orchestrator) verdict() {
	o.mu.Lock()
	version, champion := o.challenger, o.champion
	hc, hl, live := o.heldChamp, o.heldChall, o.live
	o.mu.Unlock()

	champErr, challErr, rng := combinedError(hc, hl, live)
	// The live-mirror gate: the challenger must not be worse than the
	// champion on the traffic it actually mirrored, regardless of how the
	// held-out window reads — a corrupted label stretch in the buffers
	// makes a garbage challenger look like a perfect fit on the held-out
	// window, but it cannot fake the live mirror. The reported error ratio
	// follows the same logic: live when mirrored, held-out otherwise.
	liveOK := true
	ratio := errorRatio(challErr, champErr)
	if live.n > 0 {
		champLive := math.Sqrt(live.champSSE / float64(live.n))
		challLive := math.Sqrt(live.challSSE / float64(live.n))
		liveOK = challLive <= champLive+1e-12
		ratio = errorRatio(challLive, champLive)
	}
	promote := challErr <= champErr*(1-o.cfg.PromoteMargin) && liveOK &&
		(hc.N+live.n) > 0

	o.eng.StopShadow()
	lcShadowRatio.Set(ratio)
	o.emit("shadow_verdict", map[string]any{
		"champion": champion, "challenger": version,
		"promote":   promote,
		"champ_dre": champErr, "chall_dre": challErr, "ratio": ratio,
		"dynamic_range_w": rng,
		"heldout":         hc.N, "live": live.n,
	})

	if !promote {
		o.eng.ResetDrift()
		o.mu.Lock()
		o.state = stateIdle
		o.lastVerdict = "rejected"
		o.lastRatio = ratio
		o.challenger = ""
		o.mu.Unlock()
		return
	}
	if err := o.reg.Activate(version); err != nil {
		o.fail("promote", err)
		return
	}
	lcPromotions.Inc()
	o.eng.ResetDrift()
	// The challenger's combined RMSE is the error level probation holds
	// the promoted model to.
	n := hc.N + live.n
	shadowRMSE := math.Sqrt((hl.SSE + live.challSSE) / float64(n))
	o.mu.Lock()
	o.promotions++
	o.lastVerdict = "promoted"
	o.lastRatio = ratio
	o.promotedVersion = version
	o.promotedPrev = champion
	o.shadowRMSE = shadowRMSE
	o.probation = probAccum{}
	o.challenger = ""
	if o.cfg.ProbationSnapshots > 0 {
		o.state = stateProbation
	} else {
		o.state = stateIdle
	}
	o.mu.Unlock()
	o.emit("promoted", map[string]any{
		"version": version, "previous": champion, "shadow_rmse_w": shadowRMSE,
	})
}

// checkProbation watches the promoted model's live error and rolls back
// if it regresses past the bound — without waiting for the full window
// once enough evidence has accumulated.
func (o *Orchestrator) checkProbation() {
	o.mu.Lock()
	n, sse := o.probation.n, o.probation.sse
	version, prev, shadowRMSE := o.promotedVersion, o.promotedPrev, o.shadowRMSE
	o.mu.Unlock()

	minCheck := o.cfg.ProbationSnapshots / 4
	if minCheck < 8 {
		minCheck = 8
	}
	if minCheck > o.cfg.ProbationSnapshots {
		minCheck = o.cfg.ProbationSnapshots
	}
	if n < minCheck {
		return
	}
	liveRMSE := math.Sqrt(sse / float64(n))
	limit := o.cfg.RollbackRatio*shadowRMSE + o.cfg.RMSEFloor
	if liveRMSE > limit {
		// Only roll back if the promoted version is still serving — an
		// operator activating something else mid-probation wins.
		if o.reg.ActiveVersion() == version {
			to, err := o.reg.Rollback()
			if err != nil {
				o.fail("rollback", err)
				return
			}
			prev = to
			lcRollbacks.Inc()
		}
		o.eng.ResetDrift()
		o.mu.Lock()
		o.rollbacks++
		o.state = stateIdle
		o.lastVerdict = "rolled_back"
		o.mu.Unlock()
		o.emit("rolled_back", map[string]any{
			"from": version, "to": prev,
			"live_rmse_w": liveRMSE, "shadow_rmse_w": shadowRMSE, "snapshots": n,
		})
		return
	}
	if n >= o.cfg.ProbationSnapshots {
		o.mu.Lock()
		o.state = stateIdle
		o.mu.Unlock()
	}
}

// window returns the held-out snapshots oldest-first (lag-bearing specs
// need chronological scoring).
func (o *Orchestrator) window() []Snapshot {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.windowLocked()
}

// emit sends one lifecycle event when a sink is configured.
func (o *Orchestrator) emit(event string, fields map[string]any) {
	if o.cfg.Events != nil {
		o.cfg.Events.Emit(event, fields) //nolint:errcheck // telemetry only
	}
}

// combinedError merges the held-out scores with the live mirror into one
// dynamic-range error per contender. Both contenders score the same
// actuals, so the shared dynamic range makes DRE and RMSE order
// identically — DRE is still reported because it is the paper's
// platform-independent measure.
func combinedError(hc, hl Score, live accum) (champErr, challErr, rng float64) {
	champN, challN := hc.N+live.n, hl.N+live.n
	if champN == 0 || challN == 0 {
		return math.Inf(1), math.Inf(1), 0
	}
	champRMSE := math.Sqrt((hc.SSE + live.champSSE) / float64(champN))
	challRMSE := math.Sqrt((hl.SSE + live.challSSE) / float64(challN))
	minA, maxA := math.Inf(1), math.Inf(-1)
	if hc.N > 0 {
		minA, maxA = hc.MinActual, hc.MaxActual
	}
	if live.n > 0 {
		if live.minA < minA {
			minA = live.minA
		}
		if live.maxA > maxA {
			maxA = live.maxA
		}
	}
	rng = maxA - minA
	if rng > 0 {
		return champRMSE / rng, challRMSE / rng, rng
	}
	return champRMSE, challRMSE, 0
}

// errorRatio is challenger error over champion error, guarding zeros.
func errorRatio(chall, champ float64) float64 {
	switch {
	case champ > 0:
		return chall / champ
	case chall == 0:
		return 1
	}
	return math.Inf(1)
}
