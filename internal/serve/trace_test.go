package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// getJSON fetches url and decodes the body into v.
func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

// TestTraceEndToEndPropagation drives the acceptance criterion: a request
// issued with a caller-supplied trace ID is retrievable from
// /debug/traces with queue/batch/predict/respond spans whose breakdown
// sums to within the measured total, and the latency histogram carries
// the trace ID as an exemplar.
func TestTraceEndToEndPropagation(t *testing.T) {
	ts := obs.NewTraceStore(64, time.Second)
	_, base := newTestServer(t, Config{Traces: ts, TraceSample: -1})

	traceID := obs.NewTraceID()
	parent := obs.NewSpanID()
	body, _ := json.Marshal(EstimateRequest{Samples: []SampleJSON{
		sample("m0", 1, 2), sample("m1", 3, 4), sample("m2", 5, 6),
	}})
	req, err := http.NewRequest("POST", base+"/v1/estimate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", obs.FormatTraceparent(traceID, parent))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// The response echoes the trace: header and body both carry the ID.
	gotT, _, ok := obs.ParseTraceparent(resp.Header.Get("traceparent"))
	if !ok || gotT != traceID {
		t.Fatalf("response traceparent %q does not carry trace %s", resp.Header.Get("traceparent"), traceID)
	}
	var er EstimateResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.TraceID != traceID {
		t.Fatalf("response trace_id %q, want %s", er.TraceID, traceID)
	}

	// Retrieve the trace and check the span breakdown.
	var td obs.TraceData
	if code := getJSON(t, base+"/debug/traces/"+traceID, &td); code != 200 {
		t.Fatalf("trace fetch status %d", code)
	}
	if !td.External || td.Status != "ok" {
		t.Fatalf("trace external=%v status=%q", td.External, td.Status)
	}
	// Per machine: queue, batch, predict. Plus one respond span.
	byName := map[string]int{}
	perMachine := map[string]time.Duration{}
	for _, sp := range td.Spans {
		byName[sp.Name]++
		if sp.TraceID != traceID {
			t.Fatalf("span %s carries trace %s", sp.Name, sp.TraceID)
		}
		for _, a := range sp.Attrs {
			if a.Key == "machine" {
				perMachine[a.Value.(string)] += sp.Duration
			}
		}
	}
	for _, name := range []string{"queue", "batch", "predict", "respond"} {
		if byName[name] == 0 {
			t.Fatalf("missing %q span; got %v", name, byName)
		}
	}
	if byName["queue"] != 3 || byName["predict"] != 3 {
		t.Fatalf("want one queue+predict span per machine, got %v", byName)
	}
	// Breakdown consistency: each machine's queue→predict chain fits
	// inside the measured request total.
	for m, sum := range perMachine {
		if sum > td.Duration+time.Millisecond {
			t.Fatalf("machine %s breakdown %v exceeds request total %v", m, sum, td.Duration)
		}
	}

	// The latency histogram carries the trace ID as an exemplar — but
	// only for scrapers that negotiate OpenMetrics, where exemplars are
	// legal syntax.
	omReq, err := http.NewRequest("GET", base+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	omReq.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	resp2, err := http.DefaultClient.Do(omReq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Fatalf("negotiated Content-Type %q, want OpenMetrics", ct)
	}
	sb, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(sb), `# {trace_id="`+traceID+`"}`) {
		t.Fatalf("histogram exemplar for trace %s missing from OpenMetrics /metrics", traceID)
	}
	if !strings.HasSuffix(string(sb), "# EOF\n") {
		t.Fatalf("OpenMetrics scrape missing # EOF trailer")
	}

	// A classic-format scrape (no Accept negotiation — what a default
	// Prometheus text parser consumes) must stay free of exemplar
	// annotations: a mid-line '#' after the value would fail the whole
	// scrape.
	resp3, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if ct := resp3.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("classic Content-Type %q, want text/plain", ct)
	}
	classic, err := io.ReadAll(resp3.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(classic), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Contains(line, "#") {
			t.Fatalf("classic /metrics line carries a mid-line '#': %s", line)
		}
	}
}

// recordingObserver captures ObserveRequest calls — a stand-in for the
// SLO tracker.
type recordingObserver struct {
	mu       sync.Mutex
	statuses map[string][]int
}

func (o *recordingObserver) ObserveRequest(endpoint string, d time.Duration, status int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.statuses == nil {
		o.statuses = map[string][]int{}
	}
	o.statuses[endpoint] = append(o.statuses[endpoint], status)
}

func (o *recordingObserver) ObserveLabeled([]string, []float64, []float64, float64, string) {}

// TestTraceBatchObserverSeesWorstStatus locks the SLO feed contract for
// the batch endpoint: even though the HTTP envelope answers 200 whenever
// it parses, the observer must see the worst sub-result status so that
// degradation on /v1/estimate/batch burns the same error budget it would
// on /v1/estimate.
func TestTraceBatchObserverSeesWorstStatus(t *testing.T) {
	obsr := &recordingObserver{}
	_, base := newTestServer(t, Config{Observer: obsr})
	client := &http.Client{}

	// One valid snapshot plus one invalid (no samples → 400): the
	// envelope is 200, the worst sub-result is not.
	code, body := postJSON(t, client, base+"/v1/estimate/batch", BatchRequest{
		Requests: []EstimateRequest{
			{Samples: []SampleJSON{sample("m0", 1, 2)}},
			{},
		},
	})
	if code != 200 {
		t.Fatalf("batch envelope status %d: %s", code, body)
	}
	obsr.mu.Lock()
	got := append([]int(nil), obsr.statuses["estimate_batch"]...)
	obsr.mu.Unlock()
	if len(got) != 1 || got[0] != http.StatusBadRequest {
		t.Fatalf("observer saw %v for estimate_batch, want [400]", got)
	}

	// An all-OK batch still reports 200.
	code, body = postJSON(t, client, base+"/v1/estimate/batch", BatchRequest{
		Requests: []EstimateRequest{{Samples: []SampleJSON{sample("m0", 1, 2)}}},
	})
	if code != 200 {
		t.Fatalf("batch envelope status %d: %s", code, body)
	}
	obsr.mu.Lock()
	got = append([]int(nil), obsr.statuses["estimate_batch"]...)
	obsr.mu.Unlock()
	if len(got) != 2 || got[1] != http.StatusOK {
		t.Fatalf("observer saw %v for estimate_batch, want trailing 200", got)
	}
}

// TestTraceSampledRequestsAndList checks default sampling: with
// TraceSample=1 every request traces even without a traceparent, IDs are
// server-generated, and the list view serves them.
func TestTraceSampledRequestsAndList(t *testing.T) {
	ts := obs.NewTraceStore(64, time.Second)
	_, base := newTestServer(t, Config{Traces: ts, TraceSample: 1})
	client := &http.Client{}
	for i := 0; i < 5; i++ {
		code, body := postJSON(t, client, base+"/v1/estimate", EstimateRequest{
			Samples: []SampleJSON{sample("m0", 1, 1)},
		})
		if code != 200 {
			t.Fatalf("status %d: %s", code, body)
		}
		var er EstimateResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatal(err)
		}
		if er.TraceID == "" {
			t.Fatal("sampled request carries no trace_id")
		}
	}
	var list struct {
		Count  int                `json:"count"`
		Traces []obs.TraceSummary `json:"traces"`
	}
	if code := getJSON(t, base+"/debug/traces?limit=3", &list); code != 200 {
		t.Fatalf("list status %d", code)
	}
	if list.Count != 3 {
		t.Fatalf("limit ignored: %d", list.Count)
	}
	for _, s := range list.Traces {
		if s.External {
			t.Fatal("sampled trace flagged external")
		}
	}
}

// TestTraceBatchEndpointShared checks that a traced batch request records
// its snapshots under one trace and answers with the traceparent header.
func TestTraceBatchEndpointShared(t *testing.T) {
	ts := obs.NewTraceStore(64, time.Second)
	_, base := newTestServer(t, Config{Traces: ts, TraceSample: -1})
	traceID := obs.NewTraceID()
	breq := BatchRequest{Requests: []EstimateRequest{
		{Samples: []SampleJSON{sample("m0", 1, 1)}},
		{Samples: []SampleJSON{sample("m1", 2, 2)}},
	}}
	body, _ := json.Marshal(breq)
	req, _ := http.NewRequest("POST", base+"/v1/estimate/batch", bytes.NewReader(body))
	req.Header.Set("traceparent", obs.FormatTraceparent(traceID, obs.NewSpanID()))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	td := ts.Get(traceID)
	if td == nil {
		t.Fatalf("batch trace %s not stored", traceID)
	}
	predicts := 0
	for _, sp := range td.Spans {
		if sp.Name == "predict" {
			predicts++
		}
	}
	if predicts != 2 {
		t.Fatalf("want 2 predict spans (one per snapshot machine), got %d", predicts)
	}
}

// TestTraceConcurrentScrapeSwapTraffic is the race-coverage satellite:
// /metrics scrapes and /debug/traces reads run concurrently with
// hot-swaps and shard traffic; nothing may race or fail.
func TestTraceConcurrentScrapeSwapTraffic(t *testing.T) {
	ts := obs.NewTraceStore(128, 50*time.Millisecond)
	s, base := newTestServer(t, Config{Traces: ts, TraceSample: 2})
	client := &http.Client{}
	var fails atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Traffic: estimation requests, half carrying traceparent.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				body, _ := json.Marshal(EstimateRequest{Samples: []SampleJSON{
					sample(fmt.Sprintf("m%d", i%4), float64(i%7), 1),
				}})
				req, _ := http.NewRequest("POST", base+"/v1/estimate", bytes.NewReader(body))
				if i%2 == 0 {
					req.Header.Set("traceparent", obs.FormatTraceparent(obs.NewTraceID(), obs.NewSpanID()))
				}
				resp, err := client.Do(req)
				if err != nil {
					fails.Add(1)
					continue
				}
				if resp.StatusCode != 200 {
					fails.Add(1)
				}
				resp.Body.Close()
			}
		}(g)
	}
	// Hot-swap loop through the API.
	wg.Add(1)
	go func() {
		defer wg.Done()
		versions := []string{"v1", "v2"}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			code, _ := postJSON(t, client, base+"/v1/models/activate", ActivateRequest{Version: versions[i%2]})
			if code != 200 {
				fails.Add(1)
			}
			time.Sleep(time.Millisecond)
		}
	}()
	// Scrapers: /metrics and /debug/traces (list + single).
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(base + "/metrics")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				var list struct {
					Traces []obs.TraceSummary `json:"traces"`
				}
				resp, err = client.Get(base + "/debug/traces?limit=8")
				if err == nil {
					json.NewDecoder(resp.Body).Decode(&list)
					resp.Body.Close()
				}
				for _, tr := range list.Traces {
					resp, err := client.Get(base + "/debug/traces/" + tr.TraceID)
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}
		}()
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if n := fails.Load(); n > 0 {
		t.Fatalf("%d failed operations under concurrent scrape+swap+traffic", n)
	}
	if ts.Len() == 0 {
		t.Fatal("no traces recorded under load")
	}
	_ = s
}

// TestTraceOverheadDisabledPath locks the zero-config behavior: without a
// store every request runs untraced, responses carry no trace IDs, and
// /debug/traces is absent from the mux.
func TestTraceOverheadDisabledPath(t *testing.T) {
	_, base := newTestServer(t, Config{})
	client := &http.Client{}
	code, body := postJSON(t, client, base+"/v1/estimate", EstimateRequest{
		Samples: []SampleJSON{sample("m0", 1, 1)},
	})
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	var er EstimateResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.TraceID != "" {
		t.Fatalf("untraced server answered trace_id %q", er.TraceID)
	}
	resp, err := client.Get(base + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("/debug/traces mounted without a store: %d", resp.StatusCode)
	}
}

// TestServeLoadgenServerLatencyConsistency is the loadgen satellite: the
// summary's server-side p50/p99 must come from the same histogram the
// server exports, so the request-count delta matches the client's sends
// exactly and the quantiles agree within one factor-4 bucket.
func TestServeLoadgenServerLatencyConsistency(t *testing.T) {
	_, base := newTestServer(t, Config{Shards: 2, QueueDepth: 4096, BatchMax: 256})
	traces := syntheticTraces(t, 3, 100)
	stats, err := RunLoadGen(LoadGenConfig{
		TargetURL: base,
		Traces:    traces,
		Snapshots: 400,
		Clients:   4,
		Batch:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 0 {
		t.Fatalf("%d failed snapshots", stats.Failed)
	}
	// Batch=1: one HTTP request per snapshot, every one observed by the
	// server histogram — the count delta must match exactly.
	if stats.ServerRequests != uint64(stats.Snapshots) {
		t.Fatalf("server histogram counted %d requests, client sent %d", stats.ServerRequests, stats.Snapshots)
	}
	if stats.ServerP50 <= 0 || stats.ServerP99 < stats.ServerP50 {
		t.Fatalf("server quantiles inconsistent: p50=%v p99=%v", stats.ServerP50, stats.ServerP99)
	}
	// The server quantile is a bucket upper bound (factor-4 geometry) on
	// time spent inside the handler, which the client-measured round trip
	// contains; allow one bucket of overestimate plus scheduler slack.
	limit := 4*stats.LatencyP99 + 2*time.Millisecond
	if stats.ServerP99 > limit {
		t.Fatalf("server p99 %v exceeds client p99 %v beyond bucket tolerance", stats.ServerP99, stats.LatencyP99)
	}
	t.Logf("client p50=%v p99=%v; server p50=%v p99=%v over %d requests",
		stats.LatencyP50, stats.LatencyP99, stats.ServerP50, stats.ServerP99, stats.ServerRequests)
}
