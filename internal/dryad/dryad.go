// Package dryad is a minimal Dryad/DryadLINQ-style distributed job
// executor: jobs are DAGs of stages, stages contain tasks with resource
// work amounts, and a seeded non-deterministic scheduler places tasks on
// machines with free slots. Different seeds partition work differently
// across machines and runs — the property that forced the paper to design
// Algorithm 1 around per-machine models rather than naive pooling, and that
// makes its train/test runs genuinely different.
package dryad

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mathx"
	"repro/internal/sim"
)

// TaskSpec describes one task's total work and the rates at which it
// demands resources while running. Zero rates disable that resource.
type TaskSpec struct {
	Name string

	// Total work amounts.
	CPUWork        float64 // nominal core-seconds
	DiskReadBytes  float64
	DiskWriteBytes float64
	NetSendBytes   float64
	NetRecvBytes   float64
	MemTouchBytes  float64

	// Demand rates while the task runs.
	CPURate       float64 // cores (default 1 if CPUWork > 0)
	DiskReadRate  float64 // bytes/sec (default 64 MB/s if work > 0)
	DiskWriteRate float64
	NetSendRate   float64 // bytes/sec (default 40 MB/s if work > 0)
	NetRecvRate   float64
	MemTouchRate  float64 // bytes/sec (default 200 MB/s if work > 0)

	// WorkingSet is the resident memory while the task runs.
	WorkingSet float64
	// MinSeconds is a floor on task duration (startup, serialization).
	MinSeconds float64
	// AvgIOBytes sets the average I/O size used to derive op counts from
	// byte counts (default 128 KiB).
	AvgIOBytes float64
}

func (t TaskSpec) withDefaults() TaskSpec {
	def := func(v *float64, work, d float64) {
		if *v == 0 && work > 0 {
			*v = d
		}
	}
	def(&t.CPURate, t.CPUWork, 1)
	def(&t.DiskReadRate, t.DiskReadBytes, 64e6)
	def(&t.DiskWriteRate, t.DiskWriteBytes, 64e6)
	def(&t.NetSendRate, t.NetSendBytes, 40e6)
	def(&t.NetRecvRate, t.NetRecvBytes, 40e6)
	def(&t.MemTouchRate, t.MemTouchBytes, 200e6)
	if t.AvgIOBytes == 0 {
		t.AvgIOBytes = 128 * 1024
	}
	if t.MinSeconds == 0 {
		t.MinSeconds = 1
	}
	return t
}

// Stage is a set of tasks that may run once all DependsOn stages finish.
type Stage struct {
	Name      string
	Tasks     []TaskSpec
	DependsOn []int
}

// Job is a DAG of stages.
type Job struct {
	Name   string
	Stages []Stage
}

// Validate checks the stage DAG.
func (j *Job) Validate() error {
	if len(j.Stages) == 0 {
		return fmt.Errorf("dryad: job %q has no stages", j.Name)
	}
	for i, st := range j.Stages {
		if len(st.Tasks) == 0 {
			return fmt.Errorf("dryad: job %q stage %q has no tasks", j.Name, st.Name)
		}
		for _, d := range st.DependsOn {
			if d < 0 || d >= len(j.Stages) {
				return fmt.Errorf("dryad: job %q stage %q depends on invalid stage %d", j.Name, st.Name, d)
			}
			if d >= i {
				return fmt.Errorf("dryad: job %q stage %q has forward/self dependency on %d", j.Name, st.Name, d)
			}
		}
	}
	return nil
}

// TotalTasks returns the number of tasks in the job.
func (j *Job) TotalTasks() int {
	n := 0
	for _, s := range j.Stages {
		n += len(s.Tasks)
	}
	return n
}

// task is the runtime state of one scheduled task.
type task struct {
	spec    TaskSpec
	stage   int
	machine int
	age     float64

	remCPU, remDR, remDW, remNS, remNR, remMem float64
}

func (t *task) done() bool {
	const eps = 1e-6
	return t.age >= t.spec.MinSeconds &&
		t.remCPU < eps && t.remDR < eps && t.remDW < eps &&
		t.remNS < eps && t.remNR < eps && t.remMem < eps
}

// demand returns what the task asks of its machine for one second.
func (t *task) demand() sim.Demand {
	d := sim.Demand{
		CPU:            math.Min(t.remCPU, t.spec.CPURate),
		DiskReadBytes:  math.Min(t.remDR, t.spec.DiskReadRate),
		DiskWriteBytes: math.Min(t.remDW, t.spec.DiskWriteRate),
		NetSendBytes:   math.Min(t.remNS, t.spec.NetSendRate),
		NetRecvBytes:   math.Min(t.remNR, t.spec.NetRecvRate),
		MemTouchBytes:  math.Min(t.remMem, t.spec.MemTouchRate),
		WorkingSet:     t.spec.WorkingSet,
		RunningTasks:   1,
	}
	d.DiskReadOps = d.DiskReadBytes / t.spec.AvgIOBytes
	d.DiskWriteOps = d.DiskWriteBytes / t.spec.AvgIOBytes
	return d
}

// Scheduler places a job's tasks on a cluster of machines and tracks work
// progress. It is deliberately non-deterministic across seeds (greedy
// placement with randomized tie-breaking and per-task work jitter), like
// the Dryad/Quincy scheduler whose run-to-run variation the paper must
// tolerate.
type Scheduler struct {
	job   *Job
	rng   *rand.Rand
	slots []int // free slots per machine

	pending   []*task   // ready, unplaced tasks (in randomized order)
	running   [][]*task // per machine
	remaining []int     // unfinished tasks per stage
	started   []bool    // stage released to pending
	finished  int
	total     int

	// lastDemand remembers each running task's demand so served amounts
	// can be apportioned back proportionally.
	lastDemand [][]sim.Demand
}

// NewScheduler prepares a run of job over nMachines machines with the
// given slots per machine. Seed drives placement order and work jitter.
func NewScheduler(job *Job, slotsPerMachine []int, seed int64) (*Scheduler, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	if len(slotsPerMachine) == 0 {
		return nil, fmt.Errorf("dryad: no machines")
	}
	for i, s := range slotsPerMachine {
		if s <= 0 {
			return nil, fmt.Errorf("dryad: machine %d has %d slots", i, s)
		}
	}
	s := &Scheduler{
		job:        job,
		rng:        mathx.NewRand(mathx.DeriveSeed(seed, "sched:"+job.Name)),
		slots:      append([]int(nil), slotsPerMachine...),
		running:    make([][]*task, len(slotsPerMachine)),
		lastDemand: make([][]sim.Demand, len(slotsPerMachine)),
		remaining:  make([]int, len(job.Stages)),
		started:    make([]bool, len(job.Stages)),
		total:      job.TotalTasks(),
	}
	for i, st := range job.Stages {
		s.remaining[i] = len(st.Tasks)
	}
	s.releaseReadyStages()
	return s, nil
}

// releaseReadyStages moves tasks of newly-runnable stages into the pending
// queue in randomized order with per-task work jitter.
func (s *Scheduler) releaseReadyStages() {
	for i, st := range s.job.Stages {
		if s.started[i] {
			continue
		}
		ready := true
		for _, d := range st.DependsOn {
			if s.remaining[d] > 0 {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		s.started[i] = true
		for _, spec := range st.Tasks {
			sp := spec.withDefaults()
			jit := func(v float64) float64 { return v * (0.9 + 0.2*s.rng.Float64()) }
			t := &task{
				spec:   sp,
				stage:  i,
				remCPU: jit(sp.CPUWork), remDR: jit(sp.DiskReadBytes), remDW: jit(sp.DiskWriteBytes),
				remNS: jit(sp.NetSendBytes), remNR: jit(sp.NetRecvBytes), remMem: jit(sp.MemTouchBytes),
			}
			s.pending = append(s.pending, t)
		}
		s.rng.Shuffle(len(s.pending), func(a, b int) {
			s.pending[a], s.pending[b] = s.pending[b], s.pending[a]
		})
	}
}

// Done reports whether every task has completed.
func (s *Scheduler) Done() bool { return s.finished == s.total }

// Finished returns the number of completed tasks.
func (s *Scheduler) Finished() int { return s.finished }

// Tick assigns pending tasks to machines with free slots: most-free-slots
// first with random tie-breaking.
func (s *Scheduler) Tick() {
	for len(s.pending) > 0 {
		best, bestFree := -1, 0
		order := s.rng.Perm(len(s.slots))
		for _, m := range order {
			if s.slots[m] > bestFree {
				best, bestFree = m, s.slots[m]
			}
		}
		if best < 0 {
			return
		}
		t := s.pending[0]
		s.pending = s.pending[1:]
		t.machine = best
		s.slots[best]--
		s.running[best] = append(s.running[best], t)
	}
}

// Demand aggregates the demand of machine m's running tasks for this
// second, remembering the per-task split for Apply.
func (s *Scheduler) Demand(m int) sim.Demand {
	var agg sim.Demand
	s.lastDemand[m] = s.lastDemand[m][:0]
	for _, t := range s.running[m] {
		d := t.demand()
		s.lastDemand[m] = append(s.lastDemand[m], d)
		agg.CPU += d.CPU
		agg.DiskReadBytes += d.DiskReadBytes
		agg.DiskWriteBytes += d.DiskWriteBytes
		agg.DiskReadOps += d.DiskReadOps
		agg.DiskWriteOps += d.DiskWriteOps
		agg.NetSendBytes += d.NetSendBytes
		agg.NetRecvBytes += d.NetRecvBytes
		agg.MemTouchBytes += d.MemTouchBytes
		agg.WorkingSet += d.WorkingSet
		agg.RunningTasks++
	}
	return agg
}

// Apply distributes what machine m actually served back to its tasks
// proportionally to their demands, advances task ages, retires completed
// tasks, and releases any newly-unblocked stages.
func (s *Scheduler) Apply(m int, served sim.Served) {
	run := s.running[m]
	if len(run) == 0 {
		return
	}
	var agg sim.Demand
	for _, d := range s.lastDemand[m] {
		agg.CPU += d.CPU
		agg.DiskReadBytes += d.DiskReadBytes
		agg.DiskWriteBytes += d.DiskWriteBytes
		agg.NetSendBytes += d.NetSendBytes
		agg.NetRecvBytes += d.NetRecvBytes
		agg.MemTouchBytes += d.MemTouchBytes
	}
	frac := func(got, want float64) float64 {
		if want <= 0 {
			return 0
		}
		return math.Min(1, got/want)
	}
	fCPU := frac(served.CPU, agg.CPU)
	fDR := frac(served.DiskReadBytes, agg.DiskReadBytes)
	fDW := frac(served.DiskWriteBytes, agg.DiskWriteBytes)
	fNS := frac(served.NetSendBytes, agg.NetSendBytes)
	fNR := frac(served.NetRecvBytes, agg.NetRecvBytes)
	fMem := frac(served.MemTouchBytes, agg.MemTouchBytes)

	keep := run[:0]
	for i, t := range run {
		d := s.lastDemand[m][i]
		t.remCPU -= d.CPU * fCPU
		t.remDR -= d.DiskReadBytes * fDR
		t.remDW -= d.DiskWriteBytes * fDW
		t.remNS -= d.NetSendBytes * fNS
		t.remNR -= d.NetRecvBytes * fNR
		t.remMem -= d.MemTouchBytes * fMem
		clampNonNeg(&t.remCPU, &t.remDR, &t.remDW, &t.remNS, &t.remNR, &t.remMem)
		t.age++
		if t.done() {
			s.finished++
			s.remaining[t.stage]--
			s.slots[m]++
		} else {
			keep = append(keep, t)
		}
	}
	s.running[m] = keep
	s.releaseReadyStages()
}

// RunningTasks returns the number of tasks currently placed on machine m.
func (s *Scheduler) RunningTasks(m int) int { return len(s.running[m]) }

func clampNonNeg(vs ...*float64) {
	for _, v := range vs {
		if *v < 0 {
			*v = 0
		}
	}
}
