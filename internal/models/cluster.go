package models

import (
	"fmt"

	"repro/internal/trace"
)

// MachineModel is a deployable machine-level power model: the technique,
// the feature spec describing its inputs, and the fitted model. It is the
// "abstract machine" model Algorithm 1 produces — one per platform class,
// applied to every machine of that class.
type MachineModel struct {
	Platform string
	Spec     FeatureSpec
	Model    Model
}

// FitMachineModel pools the given traces (all machines and runs of one
// platform) and fits the technique on the spec's features.
func FitMachineModel(tech Technique, ts []*trace.Trace, spec FeatureSpec, opts FitOptions) (*MachineModel, error) {
	if len(ts) == 0 {
		return nil, fmt.Errorf("models: no training traces")
	}
	x, y, err := BuildPooledDesign(ts, spec)
	if err != nil {
		return nil, err
	}
	if tech == TechSwitching && opts.FreqCol == 0 {
		opts.FreqCol = spec.FreqInputIndex()
		if opts.FreqCol < 0 {
			return nil, fmt.Errorf("models: switching model needs the frequency counter in its feature set")
		}
	}
	m, err := Fit(tech, x, y, opts)
	if err != nil {
		return nil, err
	}
	return &MachineModel{Platform: ts[0].Platform, Spec: spec, Model: m}, nil
}

// PredictTrace returns the per-second power prediction for one machine's
// trace.
func (mm *MachineModel) PredictTrace(t *trace.Trace) ([]float64, error) {
	x, _, err := BuildDesign(t, mm.Spec)
	if err != nil {
		return nil, err
	}
	out := make([]float64, x.Rows)
	for i := 0; i < x.Rows; i++ {
		out[i] = mm.Model.Predict(x.Data[i*x.Cols : (i+1)*x.Cols])
	}
	return out, nil
}

// ClusterModel composes machine models into a cluster power model (Eq. 5):
// cluster power is the sum of per-machine predictions, each machine using
// the model of its platform class. Heterogeneous clusters work by
// construction.
type ClusterModel struct {
	ByPlatform map[string]*MachineModel
}

// NewClusterModel builds a cluster model from machine models.
func NewClusterModel(mms ...*MachineModel) (*ClusterModel, error) {
	if len(mms) == 0 {
		return nil, fmt.Errorf("models: no machine models")
	}
	cm := &ClusterModel{ByPlatform: map[string]*MachineModel{}}
	for _, mm := range mms {
		if _, dup := cm.ByPlatform[mm.Platform]; dup {
			return nil, fmt.Errorf("models: duplicate machine model for platform %q", mm.Platform)
		}
		cm.ByPlatform[mm.Platform] = mm
	}
	return cm, nil
}

// PredictCluster sums per-machine predictions over time for one run's
// aligned machine traces. All traces must have equal length (they are
// sampled on the same 1 Hz clock).
func (cm *ClusterModel) PredictCluster(ts []*trace.Trace) (pred, actual []float64, err error) {
	if len(ts) == 0 {
		return nil, nil, fmt.Errorf("models: no traces to predict")
	}
	n := ts[0].Len()
	pred = make([]float64, n)
	actual = make([]float64, n)
	for _, t := range ts {
		if t.Len() != n {
			return nil, nil, fmt.Errorf("models: trace lengths differ (%d vs %d); cluster traces must be aligned", t.Len(), n)
		}
		mm, ok := cm.ByPlatform[t.Platform]
		if !ok {
			return nil, nil, fmt.Errorf("models: no machine model for platform %q", t.Platform)
		}
		p, err := mm.PredictTrace(t)
		if err != nil {
			return nil, nil, err
		}
		for i := 0; i < n; i++ {
			pred[i] += p[i]
			actual[i] += t.Power[i]
		}
	}
	return pred, actual, nil
}
