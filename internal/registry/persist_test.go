package registry

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/models"
)

// mustOpen opens a persistent registry, failing the test on error.
func mustOpen(t testing.TB, dir string, opts OpenOptions) (*Registry, *Recovery) {
	t.Helper()
	r, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return r, rec
}

// stateOf captures the externally observable registry state for
// equivalence checks: full listing (order, versions, active flag) plus
// the rollback target.
func stateOf(r *Registry) (list []Info, previous string) {
	list = r.List()
	r.mu.Lock()
	previous = r.previous
	r.mu.Unlock()
	return list, previous
}

func sameState(t *testing.T, got, want *Registry, context string) {
	t.Helper()
	gl, gp := stateOf(got)
	wl, wp := stateOf(want)
	if !reflect.DeepEqual(gl, wl) {
		t.Fatalf("%s: List() diverged:\n got %+v\nwant %+v", context, gl, wl)
	}
	if gp != wp {
		t.Fatalf("%s: rollback target %q, want %q", context, gp, wp)
	}
	if got.ActiveVersion() != want.ActiveVersion() {
		t.Fatalf("%s: active %q, want %q", context, got.ActiveVersion(), want.ActiveVersion())
	}
}

func TestRecoveryRegistryBasic(t *testing.T) {
	dir := t.TempDir()
	r, rec := mustOpen(t, dir, OpenOptions{})
	if !rec.Journal.Clean() || rec.Versions != 0 {
		t.Fatalf("fresh open recovery = %+v", rec)
	}
	if !r.Persistent() {
		t.Fatal("Open must return a persistent registry")
	}
	if err := r.Add("v1", mkCluster(t, "p", 10), Meta{Description: "first"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("v2", mkCluster(t, "p", 20), Meta{Source: "retrain"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Activate("v2"); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2, rec2 := mustOpen(t, dir, OpenOptions{})
	defer r2.Close()
	if !rec2.Journal.Clean() || rec2.SkippedRecords != 0 {
		t.Fatalf("reopen recovery = %+v", rec2)
	}
	if rec2.Versions != 2 || rec2.Active != "v2" {
		t.Fatalf("recovery report = %+v, want 2 versions active v2", rec2)
	}
	if got := r2.ActiveVersion(); got != "v2" {
		t.Fatalf("active after reopen = %q", got)
	}
	// The rollback target survives too: roll back to v1.
	prev, err := r2.Rollback()
	if err != nil || prev != "v1" {
		t.Fatalf("Rollback after reopen = %q, %v", prev, err)
	}
	// Models round-trip bit-identically through JSON: same predictions.
	e, ok := r2.Get("v1")
	if !ok {
		t.Fatal("v1 missing after reopen")
	}
	mm, ok := e.Model.ByPlatform["p"]
	if !ok {
		t.Fatal("platform p missing")
	}
	if got, want := mm.Model.Predict([]float64{3, 4}), 10+1*3.0+2*4.0; got != want {
		t.Fatalf("recovered model predicts %v, want %v", got, want)
	}
}

// TestRecoveryEquivalenceProperty drives random Add/Activate/Rollback
// sequences against a persistent registry and an in-memory mirror, then
// reopens the persistent one: every observable — List order, versions,
// active version, rollback target — must match the mirror exactly.
func TestRecoveryEquivalenceProperty(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial-%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial) * 7919))
			dir := t.TempDir()
			persisted, _ := mustOpen(t, dir, OpenOptions{})
			mirror := New()
			// Freeze time so CreatedAt compares equal across the pair and
			// across the JSON round trip (Unix-second UTC survives exactly).
			fixed := time.Unix(1700000000, 0).UTC()
			persisted.now = func() time.Time { return fixed }
			mirror.now = persisted.now

			var admitted []string
			for op := 0; op < 30; op++ {
				switch k := rng.Intn(10); {
				case k < 5: // admit a new version
					v := fmt.Sprintf("v%d", len(admitted)+1)
					cm1 := mkCluster(t, "p", float64(10+len(admitted)))
					cm2 := mkCluster(t, "p", float64(10+len(admitted)))
					if err := persisted.Add(v, cm1, Meta{Description: v}); err != nil {
						t.Fatal(err)
					}
					if err := mirror.Add(v, cm2, Meta{Description: v}); err != nil {
						t.Fatal(err)
					}
					admitted = append(admitted, v)
				case k < 8: // activate a random known (or unknown) version
					v := "nope"
					if len(admitted) > 0 && k != 7 {
						v = admitted[rng.Intn(len(admitted))]
					}
					e1 := persisted.Activate(v)
					e2 := mirror.Activate(v)
					if (e1 == nil) != (e2 == nil) {
						t.Fatalf("Activate(%s) diverged: %v vs %v", v, e1, e2)
					}
				default: // rollback
					p1, e1 := persisted.Rollback()
					p2, e2 := mirror.Rollback()
					if p1 != p2 || (e1 == nil) != (e2 == nil) {
						t.Fatalf("Rollback diverged: (%q,%v) vs (%q,%v)", p1, e1, p2, e2)
					}
				}
			}
			sameState(t, persisted, mirror, "live")
			if err := persisted.Close(); err != nil {
				t.Fatal(err)
			}
			reopened, rec := mustOpen(t, dir, OpenOptions{})
			defer reopened.Close()
			if !rec.Journal.Clean() || rec.SkippedRecords != 0 {
				t.Fatalf("reopen not clean: %+v", rec)
			}
			sameState(t, reopened, mirror, "reopened")
		})
	}
}

// TestRecoveryTornTailRegistry runs the byte-level crash sweep at the
// registry level: with the final journal record truncated at every offset
// or any of its bytes flipped, Open must recover the state as of the
// previous record — never panic, never a partial model.
func TestRecoveryTornTailRegistry(t *testing.T) {
	// Build a master journal: admit v1, admit v2, activate v2. The final
	// record is the activation, so every damaged variant must recover to
	// "v1 active, both admitted" or better-formed prefixes thereof.
	master := t.TempDir()
	r, _ := mustOpen(t, master, OpenOptions{})
	if err := r.Add("v1", mkCluster(t, "p", 10), Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("v2", mkCluster(t, "p", 20), Meta{}); err != nil {
		t.Fatal(err)
	}
	sizeBefore := r.JournalSize()
	if err := r.Activate("v2"); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(master, "journal.log"))
	if err != nil {
		t.Fatal(err)
	}
	lastOff := int(sizeBefore)

	check := func(name string, mutated []byte, wantDamage bool, wantActive string) {
		t.Helper()
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "journal.log"), mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		r, rec := mustOpen(t, dir, OpenOptions{})
		defer r.Close()
		if r.Len() != 2 {
			t.Fatalf("%s: %d versions recovered, want 2", name, r.Len())
		}
		active := r.ActiveVersion()
		if wantDamage && rec.Journal.Clean() {
			t.Fatalf("%s: damage not reported", name)
		}
		if !wantDamage && !rec.Journal.Clean() {
			t.Fatalf("%s: spurious damage report %+v", name, rec.Journal)
		}
		if active != wantActive {
			t.Fatalf("%s: active %q, want %q", name, active, wantActive)
		}
		// The recovered registry still serves: the active model predicts.
		e := r.Active()
		mm, ok := e.Model.ByPlatform["p"]
		if !ok {
			t.Fatalf("%s: active model lost platform", name)
		}
		want := 10 + 3.0 // v1: intercept 10, coefs {1,2} on inputs {1,1}
		if active == "v2" {
			want = 20 + 3.0
		}
		if got := mm.Model.Predict([]float64{1, 1}); got != want {
			t.Fatalf("%s: recovered model predicts %v, want %v", name, got, want)
		}
	}

	// Truncating exactly at the last frame boundary leaves a clean journal
	// missing the activation; any cut inside the frame is a torn tail. In
	// both cases the activation is lost, so v1 (the auto-activated first
	// admit) must be serving.
	for cut := lastOff; cut < len(data); cut++ {
		check(fmt.Sprintf("trunc-%d", cut), append([]byte(nil), data[:cut]...), cut != lastOff, "v1")
	}
	// Any single flipped byte in the final frame fails its checksum (or
	// breaks the frame): the activation must be dropped, never misapplied.
	for i := lastOff; i < len(data); i++ {
		mutated := append([]byte(nil), data...)
		mutated[i] ^= 0xFF
		check(fmt.Sprintf("flip-%d", i), mutated, true, "v1")
	}
	// The undamaged journal recovers v2 active, for contrast.
	check("intact", append([]byte(nil), data...), false, "v2")
}

// TestRecoveryCompaction forces compaction with a tiny size bound: the
// journal must stay bounded, the snapshot must appear, and reopening from
// snapshot+journal must reproduce the exact state.
func TestRecoveryCompaction(t *testing.T) {
	dir := t.TempDir()
	const bound = 8 << 10
	r, _ := mustOpen(t, dir, OpenOptions{CompactBytes: bound})
	mirror := New()
	r.now = mirror.now
	for i := 0; i < 60; i++ {
		v := fmt.Sprintf("v%d", i)
		if err := r.Add(v, mkCluster(t, "p", float64(i)), Meta{Description: v}); err != nil {
			t.Fatal(err)
		}
		if err := mirror.Add(v, mkCluster(t, "p", float64(i)), Meta{Description: v}); err != nil {
			t.Fatal(err)
		}
		if i%7 == 3 {
			target := fmt.Sprintf("v%d", i/2)
			if err := r.Activate(target); err != nil {
				t.Fatal(err)
			}
			if err := mirror.Activate(target); err != nil {
				t.Fatal(err)
			}
		}
		if sz := r.JournalSize(); sz > bound {
			t.Fatalf("journal grew to %d, bound %d", sz, bound)
		}
	}
	if r.Compactions() == 0 {
		t.Fatal("no compaction ran despite tiny bound")
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.json")); err != nil {
		t.Fatalf("snapshot missing: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, rec := mustOpen(t, dir, OpenOptions{CompactBytes: bound})
	defer reopened.Close()
	if !rec.FromSnapshot {
		t.Fatal("reopen did not load the snapshot")
	}
	// CreatedAt flows through the journal, so the mirror (which shares a
	// clock only in-memory) can't be compared on timestamps; compare the
	// rest field by field.
	gl, _ := stateOf(reopened)
	wl, _ := stateOf(mirror)
	if len(gl) != len(wl) {
		t.Fatalf("reopened %d versions, want %d", len(gl), len(wl))
	}
	for i := range gl {
		gl[i].CreatedAt = wl[i].CreatedAt
		if !reflect.DeepEqual(gl[i], wl[i]) {
			t.Fatalf("version %d diverged:\n got %+v\nwant %+v", i, gl[i], wl[i])
		}
	}
	if reopened.ActiveVersion() != mirror.ActiveVersion() {
		t.Fatalf("active %q, want %q", reopened.ActiveVersion(), mirror.ActiveVersion())
	}
}

// TestRecoveryInterruptedCompaction simulates a crash between the snapshot
// write and the journal reset — the one window where both files hold the
// full state. It saves the journal bytes, runs compaction (snapshot +
// reset), closes, then restores the saved journal: the disk now looks
// exactly like the crash left it. Replay must dedupe the overlap, not
// error or double-admit.
func TestRecoveryInterruptedCompaction(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.log")
	r, _ := mustOpen(t, dir, OpenOptions{})
	for i := 0; i < 5; i++ {
		if err := r.Add(fmt.Sprintf("v%d", i), mkCluster(t, "p", float64(i)), Meta{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Activate("v3"); err != nil {
		t.Fatal(err)
	}
	preReset, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	r.mu.Lock()
	cerr := r.compactLocked()
	r.mu.Unlock()
	if cerr != nil {
		t.Fatal(cerr)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jpath, preReset, 0o644); err != nil {
		t.Fatal(err)
	}

	reopened, rec := mustOpen(t, dir, OpenOptions{})
	defer reopened.Close()
	if !rec.FromSnapshot {
		t.Fatal("snapshot not used")
	}
	if reopened.Len() != 5 || reopened.ActiveVersion() != "v3" {
		t.Fatalf("recovered %d versions active %q, want 5 active v3", reopened.Len(), reopened.ActiveVersion())
	}
	// Every journaled admit duplicated the snapshot and must be skipped.
	if rec.SkippedRecords < 5 {
		t.Fatalf("only %d duplicate records skipped, want >= 5", rec.SkippedRecords)
	}
	// List order survives the overlap: v0..v4 in admission order.
	list := reopened.List()
	versions := make([]string, len(list))
	for i, inf := range list {
		versions[i] = inf.Version
	}
	if !sort.StringsAreSorted(versions) || len(versions) != 5 {
		t.Fatalf("admission order lost: %v", versions)
	}
}

// TestRecoveryRejectsInvalidModelRecord admits a hand-corrupted model
// document (valid JSON, fails validation) straight into the journal: Open
// must skip it and report the skip rather than serve an unservable model.
func TestRecoveryRejectsInvalidModelRecord(t *testing.T) {
	dir := t.TempDir()
	r, _ := mustOpen(t, dir, OpenOptions{})
	if err := r.Add("good", mkCluster(t, "p", 1), Meta{}); err != nil {
		t.Fatal(err)
	}
	// Append a syntactically valid admit whose model fails validation.
	r.mu.Lock()
	err := r.appendLocked(record{Op: "admit", Version: "bad", Model: []byte(`{"models":{}}`)})
	r.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, rec := mustOpen(t, dir, OpenOptions{})
	defer reopened.Close()
	if reopened.Len() != 1 || rec.SkippedRecords != 1 {
		t.Fatalf("invalid model not skipped: %d versions, %d skipped", reopened.Len(), rec.SkippedRecords)
	}
	if _, ok := reopened.Get("bad"); ok {
		t.Fatal("unvalidatable model was admitted on replay")
	}
}

// BenchmarkRegistryOpen replays a journal holding 100 admitted models —
// the acceptance bound is "well under a second" for a restart at that
// scale.
func BenchmarkRegistryOpen(b *testing.B) {
	dir := b.TempDir()
	r, _, err := Open(dir, OpenOptions{})
	if err != nil {
		b.Fatal(err)
	}
	mm := &models.MachineModel{
		Platform: "p",
		Spec:     models.FeatureSpec{Name: "bench", Counters: []string{"a", "b"}},
		Model:    &models.Linear{Intercept: 5, Coef: []float64{1, 2}},
	}
	cm, err := models.NewClusterModel(mm)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := r.Add(fmt.Sprintf("v%d", i), cm, Meta{Description: "bench"}); err != nil {
			b.Fatal(err)
		}
	}
	if err := r.Activate("v50"); err != nil {
		b.Fatal(err)
	}
	if err := r.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r2, rec, err := Open(dir, OpenOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if rec.Versions != 100 || rec.Active != "v50" {
			b.Fatalf("recovered %d versions active %s", rec.Versions, rec.Active)
		}
		r2.Close()
	}
}
