package regress

import (
	"fmt"
	"sort"

	"repro/internal/mathx"
)

// MixedResult is a fixed-slope / per-group-intercept linear model — the
// simplest useful member of the hierarchical/mixed-model family the paper
// considers as an alternative to pooling (§IV). Groups are machines: each
// machine gets its own intercept (absorbing static power variation), while
// slopes are shared across the cluster.
type MixedResult struct {
	// Intercepts maps group label to its intercept.
	Intercepts map[string]float64
	// GrandIntercept is the mean intercept, used for unseen groups.
	GrandIntercept float64
	Coef           []float64
	// InterceptVar is the variance of the per-group intercepts: the
	// between-machine variance component. Comparing it against the
	// residual variance is the paper's §IV test for whether simple
	// pooling loses accuracy.
	InterceptVar float64
	Sigma2       float64 // residual variance
	N            int
}

// MixedOLS fits y = a_g + Σ b_j x_j with one intercept per group. It is
// equivalent to OLS with group dummy variables, implemented by within-group
// centering (the fixed-effects estimator) for numerical economy.
func MixedOLS(x *mathx.Matrix, y []float64, groups []string) (*MixedResult, error) {
	n, p := x.Rows, x.Cols
	if n != len(y) || n != len(groups) {
		return nil, fmt.Errorf("regress: mixed dims: %d rows, %d responses, %d groups", n, len(y), len(groups))
	}
	if n <= p+1 {
		return nil, fmt.Errorf("%w: n=%d, p=%d", ErrTooFewRows, n, p)
	}
	// Group means.
	type acc struct {
		n    int
		y    float64
		x    []float64
		rows []int
	}
	byGroup := map[string]*acc{}
	for i, g := range groups {
		a := byGroup[g]
		if a == nil {
			a = &acc{x: make([]float64, p)}
			byGroup[g] = a
		}
		a.n++
		a.y += y[i]
		for j := 0; j < p; j++ {
			a.x[j] += x.At(i, j)
		}
		a.rows = append(a.rows, i)
	}
	for _, a := range byGroup {
		a.y /= float64(a.n)
		for j := range a.x {
			a.x[j] /= float64(a.n)
		}
	}
	// Within-group centered regression for the shared slopes.
	cx := mathx.NewMatrix(n, p)
	cy := make([]float64, n)
	for g, a := range byGroup {
		_ = g
		for _, i := range a.rows {
			cy[i] = y[i] - a.y
			for j := 0; j < p; j++ {
				cx.Set(i, j, x.At(i, j)-a.x[j])
			}
		}
	}
	fit, err := OLS(cx, cy)
	if err != nil {
		return nil, err
	}
	res := &MixedResult{
		Intercepts: make(map[string]float64, len(byGroup)),
		Coef:       fit.Coef,
		N:          n,
	}
	// Per-group intercepts: a_g = ȳ_g − Σ b_j x̄_gj.
	var labels []string
	for g := range byGroup {
		labels = append(labels, g)
	}
	sort.Strings(labels)
	var sum float64
	for _, g := range labels {
		a := byGroup[g]
		ig := a.y
		for j := 0; j < p; j++ {
			ig -= fit.Coef[j] * a.x[j]
		}
		res.Intercepts[g] = ig
		sum += ig
	}
	res.GrandIntercept = sum / float64(len(labels))
	var vsum float64
	for _, g := range labels {
		d := res.Intercepts[g] - res.GrandIntercept
		vsum += d * d
	}
	if len(labels) > 1 {
		res.InterceptVar = vsum / float64(len(labels)-1)
	}
	// Residual variance over the full model.
	var rss float64
	for i := 0; i < n; i++ {
		pred := res.PredictGroup(groups[i], x.Data[i*p:(i+1)*p])
		d := y[i] - pred
		rss += d * d
	}
	res.Sigma2 = rss / float64(n-p-len(labels))
	return res, nil
}

// PredictGroup predicts for a row belonging to the named group; unknown
// groups fall back to the grand intercept.
func (m *MixedResult) PredictGroup(group string, row []float64) float64 {
	a, ok := m.Intercepts[group]
	if !ok {
		a = m.GrandIntercept
	}
	for j, c := range m.Coef {
		a += c * row[j]
	}
	return a
}

// PoolingAdequate applies the paper's §IV criterion: pooling (one shared
// intercept) is adequate when the between-machine intercept variance is
// small relative to the residual variance. ratio is InterceptVar/Sigma2;
// the fit is considered poolable below the threshold.
func (m *MixedResult) PoolingAdequate(threshold float64) (ratio float64, ok bool) {
	if threshold <= 0 {
		threshold = 1.0
	}
	if m.Sigma2 <= 0 {
		return 0, true
	}
	ratio = m.InterceptVar / m.Sigma2
	return ratio, ratio < threshold
}
