package dist

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/serve"
)

// Distributed-serving instruments. Coverage is the fleet-health headline:
// 1.0 means every requested machine was served, 2/3 means one of three
// nodes is dark.
var coverageGauge = obs.Default().Gauge("chaos_cluster_coverage_ratio", nil)

// Config wires one serving node into the fleet. Zero values take
// defaults.
type Config struct {
	// Self is this node's peer ID; it must appear in Peers.
	Self string
	// Peers is the static fleet list (identical on every node).
	Peers []Peer
	// Local is this node's serving engine, answering for owned machines.
	Local *serve.Server
	// PeerDeadline bounds one scatter call to one peer (default 500ms).
	// The front door degrades past it: the peer's machines go missing
	// from the merged response rather than stalling the whole request.
	PeerDeadline time.Duration
	// ClusterDeadline is the whole-request budget for
	// /v1/estimate/cluster when the client sends no deadline_ms
	// (default 2s). Each hop forwards min(remaining budget − margin,
	// PeerDeadline) and refuses fan-out that cannot finish.
	ClusterDeadline time.Duration
	// BudgetMargin is the per-hop slice of budget reserved for merging
	// and serialization, withheld from every forwarded sub-deadline
	// (default 25ms).
	BudgetMargin time.Duration
	// HedgeQuantile arms a backup request to a slow peer once its
	// primary call outlives this rolling latency quantile (default
	// 0.95). Negative disables hedging.
	HedgeQuantile float64
	// HedgeRate bounds hedges to roughly this fraction of primary calls
	// via a token bucket (default 0.1, burst 8). Negative disables
	// hedging.
	HedgeRate float64
	// Level, when set, reports the local brownout rung
	// (overload.Level*). At overload.LevelPartial the front door stops
	// fanning out and serves coverage-partial local-only answers.
	Level func() int
	// FailThreshold and Cooldown tune the per-peer circuit breaker
	// (defaults 3 failures, 5s cooldown).
	FailThreshold int
	Cooldown      time.Duration
	// Client performs peer HTTP calls (default http.DefaultClient).
	Client *http.Client
	// Events, when set, receives peer_down / peer_recovered transitions.
	Events *obs.EventSink
	// Injector, when set, injects node-level chaos (peer crash windows,
	// partitions, slow-peer latency) into the scatter path, keyed by
	// seconds since the node started.
	Injector *faults.Injector
}

// Node is the scatter-gather front door plus per-peer health tracking.
type Node struct {
	cfg   Config
	part  *Partition
	start time.Time

	// Hedging state: a rolling latency window per peer arms the hedge
	// timer; one token bucket bounds total hedge volume; callSeq
	// decorrelates injected latency draws between a primary and its
	// hedge.
	trackers map[string]*overload.LatencyTracker
	hedge    *overload.HedgeBudget
	callSeq  atomic.Uint64
	hWon     atomic.Uint64
	hLost    atomic.Uint64
	hDenied  atomic.Uint64

	mu       sync.Mutex
	breakers map[string]*Breaker
	lastUp   map[string]bool
}

// HedgeStats is the node's hedge ledger: launched hedges that beat the
// primary (Won), launched hedges the primary beat (Lost), and hedges the
// rate budget refused (Denied).
type HedgeStats struct {
	Won    uint64 `json:"won"`
	Lost   uint64 `json:"lost"`
	Denied uint64 `json:"denied"`
}

// HedgeStats reports the node's hedge outcomes so far.
func (n *Node) HedgeStats() HedgeStats {
	return HedgeStats{Won: n.hWon.Load(), Lost: n.hLost.Load(), Denied: n.hDenied.Load()}
}

// NewNode validates the config and builds the node.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Local == nil {
		return nil, errNilLocal
	}
	part, err := NewPartition(cfg.Self, cfg.Peers)
	if err != nil {
		return nil, err
	}
	if cfg.PeerDeadline <= 0 {
		cfg.PeerDeadline = 500 * time.Millisecond
	}
	if cfg.ClusterDeadline <= 0 {
		cfg.ClusterDeadline = 2 * time.Second
	}
	if cfg.BudgetMargin <= 0 {
		cfg.BudgetMargin = 25 * time.Millisecond
	}
	if cfg.HedgeQuantile == 0 {
		cfg.HedgeQuantile = 0.95
	}
	if cfg.HedgeRate == 0 {
		cfg.HedgeRate = 0.1
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	n := &Node{
		cfg:      cfg,
		part:     part,
		start:    time.Now(),
		trackers: map[string]*overload.LatencyTracker{},
		breakers: map[string]*Breaker{},
		lastUp:   map[string]bool{},
	}
	if cfg.HedgeQuantile > 0 && cfg.HedgeRate > 0 {
		n.hedge = overload.NewHedgeBudget(cfg.HedgeRate, 0)
	}
	for _, p := range part.Peers() {
		if p.ID == cfg.Self {
			continue
		}
		n.breakers[p.ID] = NewBreaker(cfg.FailThreshold, cfg.Cooldown, nil)
		n.lastUp[p.ID] = true
		n.trackers[p.ID] = overload.NewLatencyTracker(0)
		peerUpGauge(p.ID).Set(1)
	}
	return n, nil
}

// Partition exposes the node's partition map (the serve.Config.Owner
// hook closes over it).
func (n *Node) Partition() *Partition { return n.part }

// Mount registers the distributed endpoints on the serving mux.
func (n *Node) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/v1/estimate/cluster", n.handleCluster)
	mux.HandleFunc("/v1/dist/status", n.handleStatus)
}

// simSecond maps wall time onto the injector's second index.
func (n *Node) simSecond() int { return int(time.Since(n.start) / time.Second) }

// breaker returns the peer's breaker (nil for self).
func (n *Node) breaker(peerID string) *Breaker {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.breakers[peerID]
}

// peerUpGauge resolves chaos_peer_up{peer=...}.
func peerUpGauge(peerID string) *obs.Gauge {
	return obs.Default().Gauge("chaos_peer_up", obs.Labels{"peer": peerID})
}

// notePeer records one call outcome for peer health: the gauge flips and
// a peer_down / peer_recovered event fires on transitions only.
func (n *Node) notePeer(peerID string, up bool) {
	n.mu.Lock()
	was := n.lastUp[peerID]
	n.lastUp[peerID] = up
	n.mu.Unlock()
	if up {
		peerUpGauge(peerID).Set(1)
	} else {
		peerUpGauge(peerID).Set(0)
	}
	if was == up || n.cfg.Events == nil {
		return
	}
	event := "peer_recovered"
	if !up {
		event = "peer_down"
	}
	n.cfg.Events.Emit(event, map[string]any{"peer": peerID}) //nolint:errcheck // telemetry only
}

// handleStatus reports the node's view of the fleet: its own ID, the
// partition, and each peer's breaker state.
func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	type peerStatus struct {
		Addr    string `json:"addr"`
		Breaker string `json:"breaker,omitempty"`
		Up      bool   `json:"up"`
	}
	n.mu.Lock()
	peers := map[string]peerStatus{}
	for _, p := range n.part.Peers() {
		ps := peerStatus{Addr: p.Addr, Up: true}
		if b := n.breakers[p.ID]; b != nil {
			ps.Breaker = b.State()
			ps.Up = n.lastUp[p.ID]
		}
		peers[p.ID] = ps
	}
	n.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"self": n.part.Self(), "peers": peers, "hedges": n.HedgeStats(),
	})
}
