// Package dist is the coordinator-free multi-node serving layer. The
// paper's composability result (Eq. 5: cluster power is the sum of
// independent per-machine predictions) means the fleet can be split
// across serving nodes with no shared state at estimation time: each
// machine's predictor lives on exactly one node, chosen by rendezvous
// hashing over a static peer list that every node computes identically.
// Three pieces ride on that: a partition map (this file), a
// scatter-gather front door that fans a cluster snapshot out to the
// owning peers and merges partial results (gather.go), and registry
// replication that tails the leader's journal so every node serves the
// same model versions (replicate.go, follower.go).
package dist

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mathx"
)

// Peer is one serving node in the static peer list.
type Peer struct {
	ID   string `json:"id"`
	Addr string `json:"addr"` // host:port of the peer's serve API
}

// ParsePeers parses the -peers flag format: "id=host:port,id=host:port".
// Every node must be given the identical list (order does not matter —
// rendezvous hashing is order-independent).
func ParsePeers(s string) ([]Peer, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("dist: empty peer list")
	}
	var peers []Peer
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("dist: peer %q is not id=host:port", part)
		}
		if seen[id] {
			return nil, fmt.Errorf("dist: duplicate peer ID %q", id)
		}
		seen[id] = true
		peers = append(peers, Peer{ID: id, Addr: addr})
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("dist: empty peer list")
	}
	return peers, nil
}

// Partition assigns machines to peers by rendezvous (highest-random-
// weight) hashing: every node scores each (peer, machine) pair with the
// same deterministic hash and the highest score owns the machine. No
// coordination, no assignment table — and when a peer leaves the list,
// only the machines it owned move.
type Partition struct {
	self  string
	peers []Peer
}

// NewPartition builds the partition map for one node. self must appear
// in peers.
func NewPartition(self string, peers []Peer) (*Partition, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("dist: no peers")
	}
	sorted := append([]Peer(nil), peers...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	found := false
	for _, p := range sorted {
		if p.ID == self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("dist: node ID %q not in peer list", self)
	}
	return &Partition{self: self, peers: sorted}, nil
}

// score is the rendezvous weight of machine on peer: a splitmix64
// scramble of a seed derived from both names. DeriveSeed alone is a weak
// (fnv-based) mix; one splitmix64 step decorrelates adjacent inputs, the
// same discipline the fault injector uses.
func score(peerID, machineID string) uint64 {
	r := splitmixScore(uint64(mathx.DeriveSeed(0, peerID+"\x00"+machineID)))
	return r
}

// splitmixScore is one splitmix64 output step.
func splitmixScore(s uint64) uint64 {
	s += 0x9e3779b97f4a7c15
	z := s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Owner returns the peer that owns machineID.
func (p *Partition) Owner(machineID string) Peer {
	best := p.peers[0]
	bestScore := score(best.ID, machineID)
	for _, peer := range p.peers[1:] {
		if s := score(peer.ID, machineID); s > bestScore || (s == bestScore && peer.ID < best.ID) {
			best, bestScore = peer, s
		}
	}
	return best
}

// Local reports whether this node owns machineID.
func (p *Partition) Local(machineID string) bool {
	return p.Owner(machineID).ID == p.self
}

// Self returns this node's peer ID.
func (p *Partition) Self() string { return p.self }

// Peers returns the sorted peer list.
func (p *Partition) Peers() []Peer { return p.peers }

// Peer looks up a peer by ID.
func (p *Partition) Peer(id string) (Peer, bool) {
	for _, peer := range p.peers {
		if peer.ID == id {
			return peer, true
		}
	}
	return Peer{}, false
}
