package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

func TestRunCollectHomogeneous(t *testing.T) {
	dir := t.TempDir()
	if err := run("Atom", 2, "Prime", 1, 7, dir); err != nil {
		t.Fatalf("run: %v", err)
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("wrote %d CSVs, want 2 (machines x runs)", len(paths))
	}
	f, err := os.Open(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadCSV(f)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if tr.Platform != "Atom" || tr.Workload != "Prime" {
		t.Errorf("metadata: %s %s", tr.Platform, tr.Workload)
	}
	if tr.Len() < 10 {
		t.Errorf("trace too short: %d", tr.Len())
	}
}

func TestRunCollectHeterogeneousList(t *testing.T) {
	dir := t.TempDir()
	if err := run("Atom,Core2", 0, "Prime", 1, 9, dir); err != nil {
		t.Fatalf("run: %v", err)
	}
	paths, _ := filepath.Glob(filepath.Join(dir, "*.csv"))
	if len(paths) != 2 {
		t.Fatalf("wrote %d CSVs, want 2", len(paths))
	}
}

func TestRunCollectErrors(t *testing.T) {
	if err := run("PDP11", 2, "Prime", 1, 1, t.TempDir()); err == nil {
		t.Error("expected error for unknown platform")
	}
	if err := run("Atom", 2, "FizzBuzz", 1, 1, t.TempDir()); err == nil {
		t.Error("expected error for unknown workload")
	}
}
