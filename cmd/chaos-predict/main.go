// chaos-predict applies a trained cluster power model (chaos-train) to new
// trace CSVs, printing the per-second cluster power prediction and, since
// the traces carry metered power, the achieved accuracy — the online
// prediction path of the CHAOS framework.
//
// Usage:
//
//	chaos-predict -model model.json -in traces/ [-run 0] [-series]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/trace"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stderr))
}

// realMain is main minus os.Exit, so tests can assert the exit code and
// the shape of the error output. A bad -model must produce exactly one
// clear stderr line and exit 1, never a panic or stack trace.
func realMain(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("chaos-predict", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		modelPath = fs.String("model", "model.json", "model JSON from chaos-train")
		in        = fs.String("in", "traces", "directory of trace CSVs")
		run       = fs.Int("run", -1, "restrict to one run number (-1 = all)")
		series    = fs.Bool("series", false, "print the per-second prediction series")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := doPredict(*modelPath, *in, *run, *series); err != nil {
		// One line, no stack: strip any embedded newlines a wrapped error
		// might carry.
		msg := strings.ReplaceAll(err.Error(), "\n", " ")
		fmt.Fprintln(stderr, "chaos-predict:", msg)
		return 1
	}
	return 0
}

func doPredict(modelPath, in string, runFilter int, printSeries bool) error {
	data, err := os.ReadFile(modelPath)
	if err != nil {
		return fmt.Errorf("loading model: %w", err)
	}
	var cm models.ClusterModel
	if err := json.Unmarshal(data, &cm); err != nil {
		return fmt.Errorf("model file %s is not a valid cluster model: %w", modelPath, err)
	}
	if err := cm.Validate(); err != nil {
		return fmt.Errorf("model file %s failed validation: %w", modelPath, err)
	}
	paths, err := filepath.Glob(filepath.Join(in, "*.csv"))
	if err != nil {
		return err
	}
	var traces []*trace.Trace
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		t, err := trace.ReadCSV(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		if runFilter >= 0 && t.Run != runFilter {
			continue
		}
		traces = append(traces, t)
	}
	if len(traces) == 0 {
		return fmt.Errorf("no matching traces in %s", in)
	}
	var all []metrics.Summary
	for _, run := range trace.Runs(traces) {
		runTraces := trace.ByRun(traces)[run]
		pred, actual, err := cm.PredictCluster(runTraces)
		if err != nil {
			return err
		}
		idle := 0.0
		for _, t := range runTraces {
			idle += t.IdleWatts
		}
		sum, err := metrics.Evaluate(pred, actual, idle)
		if err != nil {
			return err
		}
		all = append(all, sum)
		fmt.Printf("run %d: %d samples, cluster DRE %.1f%%, rMSE %.2f W, worst error %.2f W\n",
			run, sum.N, sum.DRE*100, sum.RMSE, sum.MaxErr)
		if printSeries {
			for i := range pred {
				fmt.Printf("%6d  pred %8.2f W  actual %8.2f W\n", i, pred[i], actual[i])
			}
		}
	}
	avg := metrics.Average(all)
	fmt.Printf("overall: cluster DRE %.1f%%, rMSE %.2f W, %%Err %.2f%%\n",
		avg.DRE*100, avg.RMSE, avg.PctErr*100)
	return nil
}
