package regress

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func synthData(seed int64, n int, trueBeta []float64, noise float64) (*mathx.Matrix, []float64) {
	r := rand.New(rand.NewSource(seed))
	p := len(trueBeta)
	x := mathx.NewMatrix(n, p)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = 1.5 // intercept
		for j := 0; j < p; j++ {
			v := r.NormFloat64()
			x.Set(i, j, v)
			y[i] += trueBeta[j] * v
		}
		y[i] += r.NormFloat64() * noise
	}
	return x, y
}

func TestOLSRecoversCoefficients(t *testing.T) {
	x, y := synthData(1, 500, []float64{2, -3, 0.5}, 0.01)
	fit, err := OLS(x, y)
	if err != nil {
		t.Fatalf("OLS: %v", err)
	}
	if math.Abs(fit.Intercept-1.5) > 0.01 {
		t.Errorf("intercept = %v, want ~1.5", fit.Intercept)
	}
	want := []float64{2, -3, 0.5}
	for j, w := range want {
		if math.Abs(fit.Coef[j]-w) > 0.01 {
			t.Errorf("coef[%d] = %v, want ~%v", j, fit.Coef[j], w)
		}
	}
	if fit.R2 < 0.999 {
		t.Errorf("R2 = %v, want ~1", fit.R2)
	}
	if fit.Ridged {
		t.Error("well-conditioned fit should not need ridge")
	}
}

func TestOLSPredict(t *testing.T) {
	fit := &OLSResult{Intercept: 1, Coef: []float64{2, 3}}
	if got := fit.Predict([]float64{1, 2}); got != 9 {
		t.Errorf("Predict = %v, want 9", got)
	}
}

func TestOLSSignificance(t *testing.T) {
	// Column 0 strongly predicts y; column 1 is pure noise.
	x, y := synthData(2, 300, []float64{5, 0}, 0.5)
	fit, err := OLS(x, y)
	if err != nil {
		t.Fatalf("OLS: %v", err)
	}
	if fit.PValues[1] > 1e-6 {
		t.Errorf("true predictor p = %v, want tiny", fit.PValues[1])
	}
	if fit.PValues[2] < 0.01 {
		t.Errorf("noise predictor p = %v, want large", fit.PValues[2])
	}
}

func TestOLSErrors(t *testing.T) {
	x := mathx.NewMatrix(3, 5)
	if _, err := OLS(x, []float64{1, 2, 3}); !errors.Is(err, ErrTooFewRows) {
		t.Errorf("err = %v, want ErrTooFewRows", err)
	}
	if _, err := OLS(mathx.NewMatrix(4, 1), []float64{1, 2}); err == nil {
		t.Error("expected length mismatch error")
	}
}

func TestOLSCollinearFallsBackToRidge(t *testing.T) {
	// Two identical columns.
	n := 50
	x := mathx.NewMatrix(n, 2)
	y := make([]float64, n)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		x.Set(i, 0, v)
		x.Set(i, 1, v)
		y[i] = 4 * v
	}
	fit, err := OLS(x, y)
	if err != nil {
		t.Fatalf("OLS: %v", err)
	}
	if !fit.Ridged {
		t.Error("expected ridge fallback on collinear design")
	}
	// Combined effect should still predict well.
	if got := fit.Predict([]float64{1, 1}); math.Abs(got-4) > 0.1 {
		t.Errorf("collinear prediction = %v, want ~4", got)
	}
}

func TestStepwiseDropsNoise(t *testing.T) {
	// 2 real predictors + 4 noise predictors.
	r := rand.New(rand.NewSource(4))
	n, p := 400, 6
	x := mathx.NewMatrix(n, p)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			x.Set(i, j, r.NormFloat64())
		}
		y[i] = 3*x.At(i, 0) - 2*x.At(i, 1) + r.NormFloat64()*0.3
	}
	res, err := Stepwise(x, y, 0.01, 1)
	if err != nil {
		t.Fatalf("Stepwise: %v", err)
	}
	if len(res.Kept) != 2 || res.Kept[0] != 0 || res.Kept[1] != 1 {
		t.Errorf("Kept = %v, want [0 1]", res.Kept)
	}
	if len(res.Dropped) != 4 {
		t.Errorf("Dropped = %v, want 4 noise columns", res.Dropped)
	}
	if res.Fit == nil || res.Fit.R2 < 0.9 {
		t.Errorf("final fit R2 = %+v", res.Fit)
	}
}

func TestStepwiseMinKeep(t *testing.T) {
	// All noise: stepwise would drop everything, but minKeep floors it.
	r := rand.New(rand.NewSource(5))
	n, p := 200, 4
	x := mathx.NewMatrix(n, p)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			x.Set(i, j, r.NormFloat64())
		}
		y[i] = r.NormFloat64()
	}
	res, err := Stepwise(x, y, 0.05, 2)
	if err != nil {
		t.Fatalf("Stepwise: %v", err)
	}
	if len(res.Kept) < 2 {
		t.Errorf("Kept = %v, want at least 2 (minKeep)", res.Kept)
	}
}

func TestStepwiseAlphaValidation(t *testing.T) {
	x := mathx.NewMatrix(10, 1)
	if _, err := Stepwise(x, make([]float64, 10), 0, 1); err == nil {
		t.Error("expected alpha validation error")
	}
	if _, err := Stepwise(x, make([]float64, 10), 1.5, 1); err == nil {
		t.Error("expected alpha validation error")
	}
}

// Property: OLS R2 lies in [0, 1] for random data, and predictions on the
// training data have RSS no worse than the intercept-only model.
func TestOLSR2Property(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(6))}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, p := 60, 3
		x := mathx.NewMatrix(n, p)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < p; j++ {
				x.Set(i, j, r.NormFloat64())
			}
			y[i] = r.NormFloat64() * 10
		}
		fit, err := OLS(x, y)
		if err != nil {
			return false
		}
		return fit.R2 >= -1e-10 && fit.R2 <= 1+1e-10
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
