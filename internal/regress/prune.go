package regress

import (
	"fmt"

	"repro/internal/mathx"
)

// CorrelationPrune implements step 1 of the paper's Algorithm 1: among
// groups of columns whose pairwise Pearson correlation exceeds threshold in
// absolute value, keep one representative (the lowest index in each group)
// and drop the rest. It returns the indices of surviving columns in
// ascending order and the indices removed.
func CorrelationPrune(x *mathx.Matrix, threshold float64) (kept, removed []int, err error) {
	if threshold <= 0 || threshold > 1 {
		return nil, nil, fmt.Errorf("regress: correlation threshold %g out of (0,1]", threshold)
	}
	cm := mathx.CorrelationMatrix(x)
	n := x.Cols
	dropped := make([]bool, n)
	for i := 0; i < n; i++ {
		if dropped[i] {
			continue
		}
		for j := i + 1; j < n; j++ {
			if dropped[j] {
				continue
			}
			r := cm.At(i, j)
			if r > threshold || r < -threshold {
				dropped[j] = true
			}
		}
	}
	for j := 0; j < n; j++ {
		if dropped[j] {
			removed = append(removed, j)
		} else {
			kept = append(kept, j)
		}
	}
	return kept, removed, nil
}

// CoDependency declares that column Sum is (approximately) the sum of the
// Parts columns, mirroring performance-counter definitions like
// "Total IO Bytes = IO Read Bytes + IO Write Bytes".
type CoDependency struct {
	Sum   int
	Parts []int
}

// CoDependentPrune implements step 2 of Algorithm 1: for each declared
// co-dependency a = b + c (+ ...), remove the aggregate column and all but
// the last part, following the paper's rule of dropping features a and b
// when a = b + c. Indices are over the original column space; the returned
// kept slice is ascending.
func CoDependentPrune(nCols int, deps []CoDependency) (kept, removed []int) {
	dropped := make([]bool, nCols)
	for _, d := range deps {
		if d.Sum >= 0 && d.Sum < nCols {
			dropped[d.Sum] = true
		}
		// Keep only the final part of each identity; the rest are
		// redundant given the aggregate's definition.
		for k := 0; k+1 < len(d.Parts); k++ {
			if p := d.Parts[k]; p >= 0 && p < nCols {
				dropped[p] = true
			}
		}
	}
	for j := 0; j < nCols; j++ {
		if dropped[j] {
			removed = append(removed, j)
		} else {
			kept = append(kept, j)
		}
	}
	return kept, removed
}

// DropConstant returns the indices of columns in x whose variance is
// nonzero. Constant counters carry no information about dynamic power and
// destabilize standardization, so the pipeline removes them first.
func DropConstant(x *mathx.Matrix) (kept, removed []int) {
	for j := 0; j < x.Cols; j++ {
		if mathx.Variance(x.Col(j)) > 0 {
			kept = append(kept, j)
		} else {
			removed = append(removed, j)
		}
	}
	return kept, removed
}
