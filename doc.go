// Package repro is a from-scratch Go reproduction of "CHAOS: Composable
// Highly Accurate OS-based Power Models" (Davis, Rivoire, Goldszmidt,
// Ardestani — IISWC 2012).
//
// The paper builds full-system power models for machines and clusters from
// OS-level performance counters alone, using an automatic feature-selection
// pipeline (Algorithm 1) and four modeling techniques (linear, piecewise
// linear via MARS, quadratic, and frequency-switching), composes machine
// models into cluster models by summation (Eq. 5), and evaluates everything
// under the Dynamic Range Error metric (Eq. 6).
//
// Because the original hardware (six instrumented Windows clusters with
// WattsUp meters running Dryad) is unavailable, this repository implements
// a faithful simulated substrate — platform-accurate machines with DVFS and
// C1 states, a hidden nonlinear ground-truth power function, a Perfmon-style
// counter namespace, a Dryad-style scheduler, and the paper's four
// MapReduce workloads — and then builds the actual CHAOS contribution (the
// statistics, feature selection, models, and evaluation) on top of it.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// paper-vs-measured results, and cmd/chaos-repro to regenerate every table
// and figure.
package repro
