package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/trace"
)

// MultiWorkloadResult reports the paper's central premise (Fig. 1): a
// single cluster power model that stays accurate across all workloads at
// once.
type MultiWorkloadResult struct {
	Platform string
	// PerWorkload maps workload -> cluster DRE of the single shared model
	// on that workload's held-out runs.
	PerWorkload map[string]float64
	// Overall is the DRE over all held-out runs of all workloads.
	Overall float64
	// PerWorkloadBest is each workload's own Table IV best DRE, for the
	// cost-of-generality comparison.
	PerWorkloadBest map[string]float64
}

// MultiWorkload trains one quadratic model on pooled training runs from
// every workload and evaluates it per workload: the multi-application
// validity the paper's feature selection is designed for ("pushing the
// model's validity beyond a single application to a group of
// applications", §I).
func (s *Suite) MultiWorkload(w io.Writer, platform string) (*MultiWorkloadResult, error) {
	ds, err := s.Dataset(platform)
	if err != nil {
		return nil, err
	}
	fr, err := s.Features(platform)
	if err != nil {
		return nil, err
	}
	spec := core.ClusterSpec(fr.Features)

	// Training set: run 0 of every workload, subsampled; test: all other
	// runs of every workload.
	var train []*trace.Trace
	testByWorkload := map[string]map[int][]*trace.Trace{}
	for _, wl := range s.Cfg.Workloads {
		traces := ds.ByWorkload[wl]
		byRun := trace.ByRun(traces)
		runs := trace.Runs(traces)
		for _, t := range byRun[runs[0]] {
			train = append(train, trace.Subsample(t, 2))
		}
		testByWorkload[wl] = map[int][]*trace.Trace{}
		for _, r := range runs[1:] {
			testByWorkload[wl][r] = byRun[r]
		}
	}
	mm, err := models.FitMachineModel(models.TechQuadratic, capTracesForFit(train, 2400), spec,
		models.FitOptions{MaxKnots: 8})
	if err != nil {
		return nil, err
	}
	cm, err := models.NewClusterModel(mm)
	if err != nil {
		return nil, err
	}

	res := &MultiWorkloadResult{Platform: platform,
		PerWorkload: map[string]float64{}, PerWorkloadBest: map[string]float64{}}
	var all []metrics.Summary
	section(w, fmt.Sprintf("Single multi-workload cluster model (%s, quadratic, cluster features)", platform))
	for _, wl := range s.Cfg.Workloads {
		var sums []metrics.Summary
		for _, rt := range testByWorkload[wl] {
			pred, actual, err := cm.PredictCluster(rt)
			if err != nil {
				return nil, err
			}
			idle := 0.0
			for _, t := range rt {
				idle += t.IdleWatts
			}
			sum, err := metrics.Evaluate(pred, actual, idle)
			if err != nil {
				return nil, err
			}
			sums = append(sums, sum)
			all = append(all, sum)
		}
		res.PerWorkload[wl] = metrics.Average(sums).DRE
		best, err := s.Best(platform, wl)
		if err != nil {
			return nil, err
		}
		res.PerWorkloadBest[wl] = best.CV.Cluster.DRE
		fmt.Fprintf(w, "%-10s single-model DRE %5.1f%%  (per-workload best %5.1f%%)\n",
			wl, res.PerWorkload[wl]*100, res.PerWorkloadBest[wl]*100)
	}
	res.Overall = metrics.Average(all).DRE
	fmt.Fprintf(w, "overall DRE %.1f%% across %d workloads with ONE model\n",
		res.Overall*100, len(s.Cfg.Workloads))
	return res, nil
}

// capTracesForFit evenly subsamples a trace set down to roughly maxRows
// pooled rows.
func capTracesForFit(ts []*trace.Trace, maxRows int) []*trace.Trace {
	total := 0
	for _, t := range ts {
		total += t.Len()
	}
	if total <= maxRows {
		return ts
	}
	step := (total + maxRows - 1) / maxRows
	out := make([]*trace.Trace, len(ts))
	for i, t := range ts {
		out[i] = trace.Subsample(t, step)
	}
	return out
}
