package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock advances a fixed step on every call, making span durations
// deterministic.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.step)
	return c.t
}

func TestSpanRecordsHistogramAndSink(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg)
	clock := &fakeClock{t: time.Unix(1754000000, 0), step: 10 * time.Millisecond}
	tr.now = clock.now

	var got []SpanData
	tr.SetSink(func(d SpanData) { got = append(got, d) })

	root := tr.Start("pipeline", String("job", "Prime"))
	child := root.Child("fit", Int("features", 12))
	child.SetAttr(Float("rmse", 1.5))
	if d := child.End(); d != 10*time.Millisecond {
		t.Errorf("child duration = %v, want 10ms", d)
	}
	root.End()

	if len(got) != 2 {
		t.Fatalf("sink received %d spans, want 2", len(got))
	}
	if got[0].Name != "fit" || got[0].Parent != "pipeline" {
		t.Errorf("child SpanData = %+v", got[0])
	}
	if got[1].Name != "pipeline" || got[1].Parent != "" {
		t.Errorf("root SpanData = %+v", got[1])
	}
	if len(got[0].Attrs) != 2 {
		t.Errorf("child attrs = %v", got[0].Attrs)
	}
	snap := reg.Snapshot()
	if snap["chaos_span_seconds{span=fit}_count"] != 1 {
		t.Errorf("span histogram not recorded: %v", snap)
	}
	if snap["chaos_span_seconds{span=pipeline}_count"] != 1 {
		t.Errorf("root span histogram not recorded: %v", snap)
	}
}

func TestSpanDoubleEndAndNil(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg)
	s := tr.Start("x")
	s.End()
	if d := s.End(); d != 0 {
		t.Errorf("second End = %v, want 0", d)
	}
	var nilSpan *Span
	if d := nilSpan.End(); d != 0 {
		t.Errorf("nil End = %v, want 0", d)
	}
	if got := reg.Histogram("chaos_span_seconds", Labels{"span": "x"}, nil).Count(); got != 1 {
		t.Errorf("span recorded %d times, want 1", got)
	}
}

func TestDefaultTracerWritesDefaultRegistry(t *testing.T) {
	before := Default().Histogram("chaos_span_seconds", Labels{"span": "obs.test"}, nil).Count()
	StartSpan("obs.test").End()
	after := Default().Histogram("chaos_span_seconds", Labels{"span": "obs.test"}, nil).Count()
	if after != before+1 {
		t.Errorf("default span count %d -> %d, want +1", before, after)
	}
}

func TestConcurrentSpans(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := tr.Start("worker")
				s.Child("inner").End()
				s.End()
			}
		}()
	}
	wg.Wait()
	if got := reg.Histogram("chaos_span_seconds", Labels{"span": "worker"}, nil).Count(); got != 1600 {
		t.Errorf("worker spans = %d, want 1600", got)
	}
}

func TestAttrString(t *testing.T) {
	s := AttrString([]Attr{String("a", "b"), Int("n", 3)})
	if !strings.Contains(s, "a=b") || !strings.Contains(s, "n=3") {
		t.Errorf("AttrString = %q", s)
	}
}
