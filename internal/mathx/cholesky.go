package mathx

import (
	"fmt"
	"math"
)

// CholeskySolve solves the symmetric positive-definite system G·x = b via
// Cholesky factorization. If the factorization fails (G not positive
// definite to working precision), it retries with progressively larger
// diagonal jitter up to maxJitter. It is used for normal-equation solves on
// small Gram matrices where speed matters more than ultimate precision
// (e.g. MARS forward-pass candidate scoring).
func CholeskySolve(g *Matrix, b []float64, maxJitter float64) ([]float64, error) {
	n := g.Rows
	if g.Cols != n {
		return nil, fmt.Errorf("mathx: CholeskySolve needs square matrix, got %dx%d", g.Rows, g.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("mathx: CholeskySolve rhs length %d, want %d", len(b), n)
	}
	if n == 0 {
		return nil, nil
	}
	// Scale jitter to the matrix magnitude.
	maxDiag := 0.0
	for i := 0; i < n; i++ {
		if d := math.Abs(g.At(i, i)); d > maxDiag {
			maxDiag = d
		}
	}
	if maxDiag == 0 {
		maxDiag = 1
	}
	jitter := 0.0
	for attempt := 0; attempt < 8; attempt++ {
		l, ok := cholesky(g, jitter)
		if ok {
			return choleskyBackSolve(l, b), nil
		}
		if jitter == 0 {
			jitter = maxDiag * 1e-12
		} else {
			jitter *= 100
		}
		if maxJitter > 0 && jitter > maxJitter*maxDiag {
			break
		}
	}
	return nil, ErrSingular
}

// cholesky returns the lower-triangular factor of g + jitter·I, or ok=false
// if a non-positive pivot is encountered.
func cholesky(g *Matrix, jitter float64) (*Matrix, bool) {
	n := g.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := g.At(j, j) + jitter
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, false
		}
		l.Set(j, j, math.Sqrt(d))
		for i := j + 1; i < n; i++ {
			s := g.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/l.At(j, j))
		}
	}
	return l, true
}

// choleskyBackSolve solves L·Lᵀ·x = b.
func choleskyBackSolve(l *Matrix, b []float64) []float64 {
	n := l.Rows
	x := make([]float64, n)
	// Forward: L·z = b.
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	// Backward: Lᵀ·x = z.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}
