package dist

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"repro/internal/registry"
)

// Replication wire protocol. The leader's registry journal is already a
// replication log — append-only, CRC-framed, idempotent to replay — so
// the tail endpoint ships its bytes verbatim and the follower reuses the
// store package's frame decoder. Offsets are plain byte positions in the
// journal file; the epoch (compaction count) invalidates them: when the
// journal resets, every outstanding offset answers 410 Gone and the
// follower re-bootstraps from a snapshot.
const (
	// tailChunkBytes caps one tail response, bounding follower memory no
	// matter how far behind it is.
	tailChunkBytes = 1 << 20
	// tailPollInterval is the long-poll re-check cadence on the leader.
	tailPollInterval = 25 * time.Millisecond
	// tailMaxWait caps a long-poll wait regardless of the client's ask.
	tailMaxWait = 30 * time.Second

	// Replication response headers: the journal coordinates the body
	// corresponds to.
	HeaderEpoch   = "X-Chaos-Replication-Epoch"
	HeaderRecords = "X-Chaos-Replication-Records"
	HeaderSize    = "X-Chaos-Replication-Size"
)

// SnapshotResponse is the /v1/replicate/snapshot payload: the full
// registry state plus the journal coordinates to resume tailing from.
type SnapshotResponse struct {
	Snapshot json.RawMessage `json:"snapshot"`
	Offset   int64           `json:"offset"`
	Records  int             `json:"records"`
	Epoch    int             `json:"epoch"`
}

// MountReplication registers the leader-side replication endpoints for a
// persistent registry.
func MountReplication(mux *http.ServeMux, reg *registry.Registry) {
	h := &replicationHandler{reg: reg}
	mux.HandleFunc("/v1/replicate/tail", h.handleTail)
	mux.HandleFunc("/v1/replicate/snapshot", h.handleSnapshot)
}

type replicationHandler struct{ reg *registry.Registry }

// handleTail serves journal bytes from ?offset=N (long-polling via
// ?wait_ms=W when caught up): 200 with raw CRC frames when bytes exist
// past the offset, 204 when the wait expired with nothing new, 410 when
// the offset or ?epoch=E no longer matches the journal (compaction or a
// repaired torn tail shrank it) and the follower must resync.
func (h *replicationHandler) handleTail(w http.ResponseWriter, r *http.Request) {
	offset, err := strconv.ParseInt(r.URL.Query().Get("offset"), 10, 64)
	if err != nil || offset < 0 {
		http.Error(w, "offset must be a non-negative integer", http.StatusBadRequest)
		return
	}
	wantEpoch := -1
	if e := r.URL.Query().Get("epoch"); e != "" {
		if wantEpoch, err = strconv.Atoi(e); err != nil {
			http.Error(w, "epoch must be an integer", http.StatusBadRequest)
			return
		}
	}
	wait := time.Second
	if ms := r.URL.Query().Get("wait_ms"); ms != "" {
		n, err := strconv.Atoi(ms)
		if err != nil || n < 0 {
			http.Error(w, "wait_ms must be a non-negative integer", http.StatusBadRequest)
			return
		}
		wait = time.Duration(n) * time.Millisecond
	}
	if wait > tailMaxWait {
		wait = tailMaxWait
	}

	deadline := time.Now().Add(wait)
	for {
		path, size, records, epoch, ok := h.reg.ReplicationStatus()
		if !ok {
			http.Error(w, "registry is not persistent", http.StatusServiceUnavailable)
			return
		}
		setCoords(w, size, records, epoch)
		if (wantEpoch >= 0 && epoch != wantEpoch) || offset > size {
			// The follower's offset points into a journal that no longer
			// exists in that shape.
			w.WriteHeader(http.StatusGone)
			return
		}
		if size > offset {
			h.serveChunk(w, r, path, offset, size, epoch)
			return
		}
		if !time.Now().Before(deadline) {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(tailPollInterval):
		}
	}
}

// serveChunk reads journal bytes [offset, min(size, offset+chunk)) and
// ships them verbatim. Compaction can reset the file between the status
// check and the read; the post-read epoch check turns that race into the
// 410 the follower already handles.
func (h *replicationHandler) serveChunk(w http.ResponseWriter, r *http.Request, path string, offset, size int64, epoch int) {
	end := size
	if end > offset+tailChunkBytes {
		end = offset + tailChunkBytes
	}
	f, err := os.Open(path)
	if err != nil {
		http.Error(w, "opening journal: "+err.Error(), http.StatusInternalServerError)
		return
	}
	defer f.Close()
	buf := make([]byte, end-offset)
	read, err := io.ReadFull(io.NewSectionReader(f, offset, end-offset), buf)
	_, _, _, nowEpoch, _ := h.reg.ReplicationStatus()
	if nowEpoch != epoch {
		w.WriteHeader(http.StatusGone)
		return
	}
	if err != nil && read == 0 {
		http.Error(w, "reading journal: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	w.Write(buf[:read]) //nolint:errcheck // client gone
}

// handleSnapshot serves the bootstrap document.
func (h *replicationHandler) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	snap, size, records, epoch, err := h.reg.ReplicaSnapshot()
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	setCoords(w, size, records, epoch)
	writeJSON(w, http.StatusOK, SnapshotResponse{Snapshot: snap, Offset: size, Records: records, Epoch: epoch})
}

func setCoords(w http.ResponseWriter, size int64, records, epoch int) {
	w.Header().Set(HeaderEpoch, strconv.Itoa(epoch))
	w.Header().Set(HeaderRecords, strconv.Itoa(records))
	w.Header().Set(HeaderSize, strconv.FormatInt(size, 10))
}
