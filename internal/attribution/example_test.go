package attribution_test

import (
	"fmt"

	"repro/internal/attribution"
)

// Split one second of a machine's power between two workers by CPU share.
func ExampleAttribute() {
	shares, osWatts, _ := attribution.Attribute(50, 30, []attribution.ProcessActivity{
		{Name: "indexer", CPUPercent: 150}, // 1.5 cores
		{Name: "web", CPUPercent: 50},      // 0.5 cores
	}, attribution.Weights{CPU: 1})
	for _, s := range shares {
		fmt.Printf("%s %.0f W\n", s.Name, s.Watts)
	}
	fmt.Printf("os %.0f W\n", osWatts)
	// Output:
	// indexer 15 W
	// web 5 W
	// os 0 W
}
