// chaos-predict applies a trained cluster power model (chaos-train) to new
// trace CSVs, printing the per-second cluster power prediction and, since
// the traces carry metered power, the achieved accuracy — the online
// prediction path of the CHAOS framework.
//
// Usage:
//
//	chaos-predict -model model.json -in traces/ [-run 0] [-series]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/trace"
)

func main() {
	var (
		modelPath = flag.String("model", "model.json", "model JSON from chaos-train")
		in        = flag.String("in", "traces", "directory of trace CSVs")
		run       = flag.Int("run", -1, "restrict to one run number (-1 = all)")
		series    = flag.Bool("series", false, "print the per-second prediction series")
	)
	flag.Parse()
	if err := doPredict(*modelPath, *in, *run, *series); err != nil {
		fmt.Fprintln(os.Stderr, "chaos-predict:", err)
		os.Exit(1)
	}
}

func doPredict(modelPath, in string, runFilter int, printSeries bool) error {
	data, err := os.ReadFile(modelPath)
	if err != nil {
		return err
	}
	var cm models.ClusterModel
	if err := json.Unmarshal(data, &cm); err != nil {
		return fmt.Errorf("parsing %s: %w", modelPath, err)
	}
	paths, err := filepath.Glob(filepath.Join(in, "*.csv"))
	if err != nil {
		return err
	}
	var traces []*trace.Trace
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		t, err := trace.ReadCSV(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		if runFilter >= 0 && t.Run != runFilter {
			continue
		}
		traces = append(traces, t)
	}
	if len(traces) == 0 {
		return fmt.Errorf("no matching traces in %s", in)
	}
	var all []metrics.Summary
	for _, run := range trace.Runs(traces) {
		runTraces := trace.ByRun(traces)[run]
		pred, actual, err := cm.PredictCluster(runTraces)
		if err != nil {
			return err
		}
		idle := 0.0
		for _, t := range runTraces {
			idle += t.IdleWatts
		}
		sum, err := metrics.Evaluate(pred, actual, idle)
		if err != nil {
			return err
		}
		all = append(all, sum)
		fmt.Printf("run %d: %d samples, cluster DRE %.1f%%, rMSE %.2f W, worst error %.2f W\n",
			run, sum.N, sum.DRE*100, sum.RMSE, sum.MaxErr)
		if printSeries {
			for i := range pred {
				fmt.Printf("%6d  pred %8.2f W  actual %8.2f W\n", i, pred[i], actual[i])
			}
		}
	}
	avg := metrics.Average(all)
	fmt.Printf("overall: cluster DRE %.1f%%, rMSE %.2f W, %%Err %.2f%%\n",
		avg.DRE*100, avg.RMSE, avg.PctErr*100)
	return nil
}
