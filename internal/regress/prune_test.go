package regress

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/mathx"
)

func TestCorrelationPrune(t *testing.T) {
	// col1 = 2*col0 (perfectly correlated), col2 independent.
	r := rand.New(rand.NewSource(20))
	n := 100
	x := mathx.NewMatrix(n, 3)
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		x.Set(i, 0, v)
		x.Set(i, 1, 2*v)
		x.Set(i, 2, r.NormFloat64())
	}
	kept, removed, err := CorrelationPrune(x, 0.95)
	if err != nil {
		t.Fatalf("CorrelationPrune: %v", err)
	}
	if !reflect.DeepEqual(kept, []int{0, 2}) {
		t.Errorf("kept = %v, want [0 2]", kept)
	}
	if !reflect.DeepEqual(removed, []int{1}) {
		t.Errorf("removed = %v, want [1]", removed)
	}
}

func TestCorrelationPruneNegativeCorrelation(t *testing.T) {
	n := 50
	x := mathx.NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		x.Set(i, 0, float64(i))
		x.Set(i, 1, -float64(i))
	}
	kept, _, err := CorrelationPrune(x, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 1 {
		t.Errorf("kept = %v, want one of a perfectly anti-correlated pair removed", kept)
	}
}

func TestCorrelationPruneTransitiveGroups(t *testing.T) {
	// Three copies of the same signal: keep exactly one.
	r := rand.New(rand.NewSource(21))
	n := 80
	x := mathx.NewMatrix(n, 4)
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		x.Set(i, 0, v)
		x.Set(i, 1, v*3+1)
		x.Set(i, 2, v*-2)
		x.Set(i, 3, r.NormFloat64())
	}
	kept, _, err := CorrelationPrune(x, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(kept, []int{0, 3}) {
		t.Errorf("kept = %v, want [0 3]", kept)
	}
}

func TestCorrelationPruneValidation(t *testing.T) {
	x := mathx.NewMatrix(5, 2)
	if _, _, err := CorrelationPrune(x, 0); err == nil {
		t.Error("expected threshold validation error")
	}
	if _, _, err := CorrelationPrune(x, 1.5); err == nil {
		t.Error("expected threshold validation error")
	}
}

func TestCoDependentPrune(t *testing.T) {
	// 5 columns; col 4 = col 1 + col 2: drop the aggregate (4) and all
	// parts except the last (drop 1, keep 2).
	kept, removed := CoDependentPrune(5, []CoDependency{{Sum: 4, Parts: []int{1, 2}}})
	if !reflect.DeepEqual(kept, []int{0, 2, 3}) {
		t.Errorf("kept = %v, want [0 2 3]", kept)
	}
	if !reflect.DeepEqual(removed, []int{1, 4}) {
		t.Errorf("removed = %v, want [1 4]", removed)
	}
}

func TestCoDependentPruneBoundsAndEmpty(t *testing.T) {
	kept, removed := CoDependentPrune(3, []CoDependency{{Sum: 99, Parts: []int{-1, 2}}})
	if !reflect.DeepEqual(kept, []int{0, 1, 2}) || removed != nil {
		t.Errorf("out-of-range deps should be ignored: kept=%v removed=%v", kept, removed)
	}
	kept, removed = CoDependentPrune(2, nil)
	if len(kept) != 2 || removed != nil {
		t.Errorf("no deps: kept=%v removed=%v", kept, removed)
	}
}

func TestDropConstant(t *testing.T) {
	x, _ := mathx.FromRows([][]float64{
		{1, 5, 2},
		{2, 5, 3},
		{3, 5, 4},
	})
	kept, removed := DropConstant(x)
	if !reflect.DeepEqual(kept, []int{0, 2}) {
		t.Errorf("kept = %v, want [0 2]", kept)
	}
	if !reflect.DeepEqual(removed, []int{1}) {
		t.Errorf("removed = %v, want [1]", removed)
	}
}
