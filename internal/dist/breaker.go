package dist

import (
	"sync"
	"time"
)

// Breaker is a wall-clock circuit breaker guarding calls to one peer —
// the same closed / open / half-open discipline faults.Collector applies
// in simulation time. After FailThreshold consecutive failures the
// breaker opens for Cooldown: every scatter-gather in that window skips
// the peer outright, so a dead node costs the fleet one timeout, not one
// per request. After the cooldown a single probe call decides between
// closing and another cooldown.
type Breaker struct {
	failThreshold int
	cooldown      time.Duration
	now           func() time.Time

	mu          sync.Mutex
	consecFails int
	open        bool
	probeAt     time.Time
	probing     bool
}

// NewBreaker builds a breaker; now may be nil (wall clock).
func NewBreaker(failThreshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if failThreshold <= 0 {
		failThreshold = 3
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{failThreshold: failThreshold, cooldown: cooldown, now: now}
}

// Allow reports whether a call may proceed. While open it returns false
// until the cooldown elapses, then admits exactly one half-open probe at
// a time; the probe's Success or Failure decides the next state.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if b.now().Before(b.probeAt) || b.probing {
		return false
	}
	b.probing = true
	return true
}

// Success records a successful call and closes the breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails = 0
	b.open = false
	b.probing = false
}

// Failure records a failed call, opening (or re-arming) the breaker once
// the threshold is reached.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails++
	b.probing = false
	if b.open || b.consecFails >= b.failThreshold {
		b.open = true
		b.probeAt = b.now().Add(b.cooldown)
	}
}

// State reports "closed", "open", or "half-open" (cooldown elapsed, next
// call is the probe).
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case !b.open:
		return "closed"
	case !b.now().Before(b.probeAt):
		return "half-open"
	default:
		return "open"
	}
}
