// Package cluster simulates datacenter-scale fleets event-drivenly and
// composes their power hierarchically — the paper's Eq. 5 (cluster power
// is the sum of per-machine predictions) pushed from 5-machine clusters
// to tens of thousands of machines.
//
// Two ideas carry the scale:
//
//   - Event-driven time. Machines schedule their next state change
//     (burst start, per-second step while active, burst end) on a shared
//     clock instead of being stepped in per-second lockstep, so a fleet
//     that is 90% idle costs ~10% of the lockstep work. The leaf
//     evaluator is the unchanged sim.Machine step.
//
//   - Hierarchical incremental composition. Machines aggregate into a
//     topology tree (machine → rack → row → datacenter); each level
//     stores its children's summed watts, and an event dirties only its
//     machine's path to the root. Re-reading the datacenter total after
//     an event recomputes O(path · fan-out) sums, not O(machines)
//     predictions — and, because clean subtree sums are reused unchanged
//     and dirty ones re-add the same children in the same order, the
//     incremental total is bit-identical to a full recompute (the
//     property test holds this exactly).
package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/mathx"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// SpecVersion identifies the topology document schema.
const SpecVersion = "chaos-topology/v1"

// MaxDepth bounds the topology tree: datacenter → row → rack → machine.
const MaxDepth = 4

// MaxMachines bounds a single simulated fleet.
const MaxMachines = 1 << 20

// Spec is the JSON topology document. Exactly one of Grid (a uniform
// generator for large fleets) or Tree (an explicit hierarchy) describes
// the layout.
type Spec struct {
	Version string `json:"version"`
	Name    string `json:"name"`
	// Seed drives every derived stream: machine variability, burst
	// schedules, platform/profile assignment.
	Seed int64 `json:"seed"`
	Grid *Grid `json:"grid,omitempty"`
	Tree *Node `json:"tree,omitempty"`
}

// Grid generates Rows × RacksPerRow × MachinesPerRack machines with
// platforms and profiles drawn from weighted mixes.
type Grid struct {
	Rows            int        `json:"rows"`
	RacksPerRow     int        `json:"racks_per_row"`
	MachinesPerRack int        `json:"machines_per_rack"`
	Platforms       []Weighted `json:"platforms"`
	Profiles        []Weighted `json:"profiles"`
}

// Weighted is one entry of a weighted mix.
type Weighted struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
}

// Node is one level of an explicit topology tree. Interior nodes carry
// children; the innermost nodes (racks) carry machines. A node never
// carries both.
type Node struct {
	Name     string        `json:"name"`
	Children []*Node       `json:"children,omitempty"`
	Machines []MachineSpec `json:"machines,omitempty"`
}

// MachineSpec places one machine in an explicit tree.
type MachineSpec struct {
	ID       string `json:"id"`
	Platform string `json:"platform"`
	// Profile defaults to "bursty" when empty.
	Profile string `json:"profile,omitempty"`
}

// ParseSpec decodes and validates a topology document. Unknown fields are
// rejected so typos fail loudly instead of silently shrinking a fleet.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("cluster: parsing topology: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("cluster: trailing data after topology document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the document against the schema rules: version and
// name present, exactly one layout, platform/profile names known, tree
// depth ≤ MaxDepth, no duplicate or empty machine IDs, no empty racks.
func (s *Spec) Validate() error {
	if s.Version != SpecVersion {
		return fmt.Errorf("cluster: topology version %q, want %q", s.Version, SpecVersion)
	}
	if s.Name == "" {
		return fmt.Errorf("cluster: topology needs a name")
	}
	if (s.Grid == nil) == (s.Tree == nil) {
		return fmt.Errorf("cluster: topology needs exactly one of grid or tree")
	}
	if s.Grid != nil {
		return s.Grid.validate()
	}
	seen := make(map[string]bool)
	n, err := s.Tree.validate(1, seen)
	if err != nil {
		return err
	}
	if n > MaxMachines {
		return fmt.Errorf("cluster: %d machines exceeds the %d limit", n, MaxMachines)
	}
	return nil
}

func (g *Grid) validate() error {
	if g.Rows < 1 || g.RacksPerRow < 1 || g.MachinesPerRack < 1 {
		return fmt.Errorf("cluster: grid dimensions %dx%dx%d must all be ≥ 1",
			g.Rows, g.RacksPerRow, g.MachinesPerRack)
	}
	if n := g.Rows * g.RacksPerRow * g.MachinesPerRack; n > MaxMachines {
		return fmt.Errorf("cluster: grid of %d machines exceeds the %d limit", n, MaxMachines)
	}
	if err := validateMix("platforms", g.Platforms, validPlatform); err != nil {
		return err
	}
	return validateMix("profiles", g.Profiles, validProfile)
}

func validPlatform(name string) error {
	_, err := sim.Platform(name)
	return err
}

func validProfile(name string) error {
	_, err := workloads.FleetProfileByName(name)
	return err
}

func validateMix(what string, mix []Weighted, check func(string) error) error {
	if len(mix) == 0 {
		return fmt.Errorf("cluster: grid needs a non-empty %s mix", what)
	}
	for _, w := range mix {
		if err := check(w.Name); err != nil {
			return fmt.Errorf("cluster: %s mix: %w", what, err)
		}
		if !(w.Weight > 0) || w.Weight > 1e9 {
			return fmt.Errorf("cluster: %s mix entry %q has weight %v, want (0, 1e9]", what, w.Name, w.Weight)
		}
	}
	return nil
}

// validate walks the explicit tree. depth counts levels from the root
// (root = 1); machines under a node sit one level below it.
func (n *Node) validate(depth int, seen map[string]bool) (machines int, err error) {
	if n == nil {
		return 0, fmt.Errorf("cluster: null topology node")
	}
	if n.Name == "" {
		return 0, fmt.Errorf("cluster: topology node at depth %d needs a name", depth)
	}
	if len(n.Children) > 0 && len(n.Machines) > 0 {
		return 0, fmt.Errorf("cluster: node %q mixes child nodes and machines", n.Name)
	}
	if len(n.Children) == 0 && len(n.Machines) == 0 {
		return 0, fmt.Errorf("cluster: node %q is empty (a rack needs machines, an interior node needs children)", n.Name)
	}
	if len(n.Machines) > 0 && depth+1 > MaxDepth {
		return 0, fmt.Errorf("cluster: machines under %q sit at depth %d, deeper than %d (machine → rack → row → datacenter)",
			n.Name, depth+1, MaxDepth)
	}
	if len(n.Children) > 0 && depth+1 >= MaxDepth {
		// A child at MaxDepth could hold nothing legally: its machines
		// would exceed MaxDepth and empty nodes are rejected.
		return 0, fmt.Errorf("cluster: node %q nests deeper than %d levels", n.Name, MaxDepth)
	}
	for _, m := range n.Machines {
		if m.ID == "" {
			return 0, fmt.Errorf("cluster: machine in rack %q needs an id", n.Name)
		}
		if seen[m.ID] {
			return 0, fmt.Errorf("cluster: duplicate machine id %q", m.ID)
		}
		seen[m.ID] = true
		if err := validPlatform(m.Platform); err != nil {
			return 0, fmt.Errorf("cluster: machine %q: %w", m.ID, err)
		}
		if m.Profile != "" {
			if err := validProfile(m.Profile); err != nil {
				return 0, fmt.Errorf("cluster: machine %q: %w", m.ID, err)
			}
		}
	}
	machines = len(n.Machines)
	for _, c := range n.Children {
		cm, err := c.validate(depth+1, seen)
		if err != nil {
			return 0, err
		}
		machines += cm
	}
	return machines, nil
}

// MachineCount returns the number of machines the spec describes. The
// spec must already be valid.
func (s *Spec) MachineCount() int {
	if s.Grid != nil {
		return s.Grid.Rows * s.Grid.RacksPerRow * s.Grid.MachinesPerRack
	}
	return s.Tree.machineCount()
}

func (n *Node) machineCount() int {
	total := len(n.Machines)
	for _, c := range n.Children {
		total += c.machineCount()
	}
	return total
}

// expandTree renders a Grid spec as the explicit tree it generates, so
// both layouts build through one path. Machine platforms and profiles are
// drawn per machine from streams derived off (seed, machine id): stable
// under re-runs and independent of assignment order.
func (g *Grid) expandTree(name string, seed int64) *Node {
	root := &Node{Name: name}
	for r := 0; r < g.Rows; r++ {
		row := &Node{Name: fmt.Sprintf("row-%d", r)}
		for k := 0; k < g.RacksPerRow; k++ {
			rack := &Node{Name: fmt.Sprintf("row-%d/rack-%d", r, k)}
			for m := 0; m < g.MachinesPerRack; m++ {
				id := fmt.Sprintf("r%dk%dm%d", r, k, m)
				rng := mathx.NewSplitMix(mathx.DeriveSeed(seed, "assign:"+id))
				rack.Machines = append(rack.Machines, MachineSpec{
					ID:       id,
					Platform: pickWeighted(rng, g.Platforms),
					Profile:  pickWeighted(rng, g.Profiles),
				})
			}
			row.Children = append(row.Children, rack)
		}
		root.Children = append(root.Children, row)
	}
	return root
}

func pickWeighted(rng *mathx.SplitMix64, mix []Weighted) string {
	total := 0.0
	for _, w := range mix {
		total += w.Weight
	}
	x := rng.Float64() * total
	for _, w := range mix {
		x -= w.Weight
		if x < 0 {
			return w.Name
		}
	}
	return mix[len(mix)-1].Name
}
