// Package overload implements graceful degradation for the serving path:
// per-shard adaptive concurrency limiters with strict-priority admission,
// a brownout ladder driven by sustained limiter pressure, and the hedging
// primitives (rolling latency quantiles, hedge-rate budget) used by the
// distributed scatter-gather.
//
// The package is self-contained and stdlib-only; internal/serve and
// internal/dist thread it through the request path.
package overload

import "strings"

// Priority is a request class. Lower values are more important: tier 0
// (interactive) is shed last, tier 2 (background) is shed first.
type Priority int

const (
	// Interactive is user-facing traffic: single estimates and cluster
	// snapshots a human or control loop is waiting on. Shed last.
	Interactive Priority = iota
	// Batch is throughput-oriented traffic: bulk estimate batches,
	// backfill, scheduled re-scoring. Shed when interactive is at risk.
	Batch
	// Background is best-effort traffic: load generators, mirrors,
	// speculative prefetch. Shed first.
	Background

	// NumPriorities is the number of priority tiers.
	NumPriorities = 3
)

// String returns the wire name carried in the priority request field and
// the X-Chaos-Priority header.
func (p Priority) String() string {
	switch p {
	case Interactive:
		return "interactive"
	case Batch:
		return "batch"
	case Background:
		return "background"
	}
	return "interactive"
}

// ParsePriority maps a wire name to a Priority. Empty and unknown values
// default to Interactive: an unlabeled request is assumed to have a user
// waiting on it, and a typo in a client must never silently demote it.
func ParsePriority(s string) Priority {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "batch":
		return Batch
	case "background":
		return Background
	}
	return Interactive
}

// clampPriority normalizes out-of-range tiers from internal callers.
func clampPriority(p Priority) Priority {
	if p < Interactive {
		return Interactive
	}
	if p > Background {
		return Background
	}
	return p
}
