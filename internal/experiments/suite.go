// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) on the simulated infrastructure: Table I (platforms),
// Table II (selected features), Table III (error metrics comparison),
// Table IV (best DRE per workload and cluster), Figures 1–5, the
// heterogeneous-cluster result, and the collector-overhead claim.
//
// A Suite lazily collects and caches per-cluster datasets and feature
// selections so experiments that share inputs (Fig. 2/3/4, Tables II/IV)
// pay for them once.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/featsel"
	"repro/internal/models"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Config sizes the experiment suite.
type Config struct {
	// Machines per homogeneous cluster (paper: 5).
	Machines int
	// Runs per workload (paper: 5).
	Runs int
	// Seed drives all simulation randomness.
	Seed int64
	// Platforms and Workloads restrict the grid (defaults: all).
	Platforms []string
	Workloads []string
}

// Default returns the paper-scale configuration.
func Default() Config {
	return Config{Machines: 5, Runs: 5, Seed: 2012,
		Platforms: sim.PlatformNames(), Workloads: workloads.Names()}
}

// Fast returns a reduced configuration for tests and benchmarks: fewer
// machines, runs, platforms, and workloads.
func Fast() Config {
	return Config{Machines: 3, Runs: 3, Seed: 2012,
		Platforms: []string{"Core2", "Opteron"},
		Workloads: []string{"PageRank", "Prime"}}
}

func (c Config) withDefaults() Config {
	if c.Machines == 0 {
		c.Machines = 5
	}
	if c.Runs == 0 {
		c.Runs = 5
	}
	if c.Seed == 0 {
		c.Seed = 2012
	}
	if len(c.Platforms) == 0 {
		c.Platforms = sim.PlatformNames()
	}
	if len(c.Workloads) == 0 {
		c.Workloads = workloads.Names()
	}
	return c
}

// Suite runs experiments over cached datasets.
type Suite struct {
	Cfg Config

	datasets map[string]*core.Dataset
	features map[string]*featsel.Result
	general  []string
	grids    map[string][]core.GridEntry
}

// NewSuite returns a Suite for the configuration.
func NewSuite(cfg Config) *Suite {
	return &Suite{
		Cfg:      cfg.withDefaults(),
		datasets: map[string]*core.Dataset{},
		features: map[string]*featsel.Result{},
	}
}

// SeedDatasets pre-populates the dataset cache. Benchmarks use it to share
// one deterministic collection across many suites so each bench measures
// only its own experiment's computation.
func (s *Suite) SeedDatasets(ds map[string]*core.Dataset) {
	for k, v := range ds {
		s.datasets[k] = v
	}
}

// Datasets exposes the cache for sharing via SeedDatasets.
func (s *Suite) Datasets() map[string]*core.Dataset { return s.datasets }

// Dataset returns (collecting on first use) the named platform's dataset.
func (s *Suite) Dataset(platform string) (*core.Dataset, error) {
	if ds, ok := s.datasets[platform]; ok {
		return ds, nil
	}
	ds, err := core.Collect(platform, s.Cfg.Machines, s.Cfg.Workloads, s.Cfg.Runs, s.Cfg.Seed)
	if err != nil {
		return nil, err
	}
	s.datasets[platform] = ds
	return ds, nil
}

// Features returns (computing on first use) the platform's
// cluster-specific feature selection.
func (s *Suite) Features(platform string) (*featsel.Result, error) {
	if res, ok := s.features[platform]; ok {
		return res, nil
	}
	ds, err := s.Dataset(platform)
	if err != nil {
		return nil, err
	}
	res, err := ds.SelectFeatures(featsel.Options{})
	if err != nil {
		return nil, err
	}
	// The switching technique and the QCP variant need the frequency
	// counter; guarantee it is present (it is a dominant feature on
	// every DVFS platform anyway).
	res.Features = ensureCounter(res.Features, counters.CPUFreqCore0)
	res.Features = ensureCounter(res.Features, counters.CPUTotal)
	sort.Strings(res.Features)
	s.features[platform] = res
	return res, nil
}

// General returns (computing on first use) the cross-platform general
// feature set built from every configured platform's selection.
func (s *Suite) General() ([]string, error) {
	if s.general != nil {
		return s.general, nil
	}
	byCluster := map[string]*featsel.Result{}
	var reg *counters.Registry
	for _, p := range s.Cfg.Platforms {
		res, err := s.Features(p)
		if err != nil {
			return nil, err
		}
		byCluster[p] = res
		ds, _ := s.Dataset(p)
		reg = ds.Registry
	}
	gen, err := featsel.General(byCluster, reg, 0)
	if err != nil {
		return nil, err
	}
	s.general = gen
	return gen, nil
}

// Specs returns the feature-set axis for the platform: CPU-only, cluster,
// general, cluster+lagged-MHz.
func (s *Suite) Specs(platform string) ([]models.FeatureSpec, error) {
	res, err := s.Features(platform)
	if err != nil {
		return nil, err
	}
	gen, err := s.General()
	if err != nil {
		return nil, err
	}
	return core.DefaultSpecs(res.Features, gen), nil
}

func ensureCounter(features []string, name string) []string {
	for _, f := range features {
		if f == name {
			return features
		}
	}
	return append(features, name)
}

// section prints a report header.
func section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n", title)
	for range title {
		fmt.Fprint(w, "=")
	}
	fmt.Fprintln(w)
}
