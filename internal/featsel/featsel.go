// Package featsel implements the paper's Algorithm 1: the six-step
// feature-reduction pipeline that turns the ~250-counter candidate set
// into a cluster-specific model feature set of 10–20 counters, and the
// cross-cluster procedure that yields the general feature set of Table II.
//
// Steps (paper §IV-A):
//  1. prune pairwise correlations |r| > 0.95,
//  2. remove co-dependent counters (a = b + c) from counter definitions,
//  3. per machine+workload, L1 (lasso) regularization keeps ~10 features,
//  4. per machine+workload, backward stepwise elimination by Wald test,
//  5. weighted union histogram over machines and workloads, thresholded,
//  6. stepwise elimination on pooled cluster data; if features fall out,
//     raise the threshold and repeat until the set is stable.
package featsel

import (
	"fmt"
	"sort"

	"repro/internal/counters"
	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/regress"
	"repro/internal/trace"
)

// Options tunes Algorithm 1. Zero values take the paper's defaults.
type Options struct {
	CorrThreshold    float64 // step 1 (default 0.95)
	LassoTargetK     int     // step 3: minimum survivors per machine model (default 12)
	StepwiseAlpha    float64 // steps 4/6 Wald significance level (default 0.01)
	InitialThreshold float64 // step 5 histogram threshold (default 5)
	DroppedWeight    float64 // step 5 weight for lasso-kept-but-stepwise-dropped (default 0.4)
	MaxRows          int     // per-fit row subsample cap for speed (default 1200)
	MinKeep          int     // stepwise floor per machine model (default 3)
}

func (o Options) withDefaults() Options {
	if o.CorrThreshold == 0 {
		o.CorrThreshold = 0.95
	}
	if o.LassoTargetK == 0 {
		o.LassoTargetK = 12
	}
	if o.StepwiseAlpha == 0 {
		o.StepwiseAlpha = 0.01
	}
	// InitialThreshold defaults per dataset size in SelectCluster: the
	// paper starts at 5 with 20 machine x workload combinations (25%).
	if o.DroppedWeight == 0 {
		o.DroppedWeight = 0.4
	}
	if o.MaxRows == 0 {
		o.MaxRows = 1200
	}
	if o.MinKeep == 0 {
		o.MinKeep = 3
	}
	return o
}

// Result reports a cluster feature selection.
type Result struct {
	// Features is the final cluster-specific feature set (counter names).
	Features []string
	// Histogram maps counter name to its step-5 weighted occurrence count.
	Histogram map[string]float64
	// Threshold is the final step-5/6 cut the selection stabilized at.
	Threshold float64
	// Funnel records the candidate-count at each reduction step.
	Funnel Funnel
}

// Funnel counts surviving features after each stage of Algorithm 1.
type Funnel struct {
	Candidates    int // registry size
	AfterConstant int // non-constant counters observed
	AfterCorr     int // after step 1
	AfterCoDep    int // after step 2
	PerMachineAvg float64
	Final         int
}

// SelectCluster runs Algorithm 1 for one cluster. traces must contain the
// cluster's machines across all workloads and runs; reg supplies counter
// definitions for step 2.
func SelectCluster(traces []*trace.Trace, reg *counters.Registry, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if len(traces) == 0 {
		return nil, fmt.Errorf("featsel: no traces")
	}
	names := traces[0].Names
	if len(names) != reg.Len() {
		return nil, fmt.Errorf("featsel: traces carry %d counters but registry has %d", len(names), reg.Len())
	}
	span := obs.StartSpan("featsel.select_cluster", obs.Int("traces", len(traces)))
	defer span.End()
	funnel := Funnel{Candidates: reg.Len()}

	pooledX, pooledY, err := trace.Pool(traces)
	if err != nil {
		return nil, err
	}
	pooledX, pooledY = capRows(pooledX, pooledY, opts.MaxRows*4)

	// Pre-step: drop constant counters (dead instances, config values).
	kept, _ := regress.DropConstant(pooledX)
	funnel.AfterConstant = len(kept)

	// Step 1: correlation pruning on pooled data across all workloads.
	s1 := span.Child("featsel.step1_corr_prune")
	sub := pooledX.SelectCols(kept)
	k1, _, err := regress.CorrelationPrune(sub, opts.CorrThreshold)
	if err != nil {
		return nil, err
	}
	kept = indexThrough(kept, k1)
	funnel.AfterCorr = len(kept)
	s1.SetAttr(obs.Int("kept", len(kept)))
	s1.End()

	// Step 2: co-dependent counters from definitions.
	s2 := span.Child("featsel.step2_codep_prune")
	keptSet := map[int]bool{}
	for _, j := range kept {
		keptSet[j] = true
	}
	var deps []regress.CoDependency
	for _, d := range reg.CoDependencies() {
		deps = append(deps, regress.CoDependency{Sum: d.Sum, Parts: d.Parts})
	}
	drop := coDependentDrops(reg.Len(), deps)
	kept = kept[:0]
	for j := 0; j < reg.Len(); j++ {
		if keptSet[j] && !drop[j] {
			kept = append(kept, j)
		}
	}
	funnel.AfterCoDep = len(kept)
	s2.SetAttr(obs.Int("kept", len(kept)))
	s2.End()
	if len(kept) == 0 {
		return nil, fmt.Errorf("featsel: all counters eliminated before regression steps")
	}

	// Steps 3-4 per machine and workload; step 5 accumulates the
	// weighted histogram over the union of selections.
	s34 := span.Child("featsel.step3_4_per_machine")
	hist := make(map[int]float64)
	groups := groupByMachineWorkload(traces)
	var perMachineSizes []float64
	for _, g := range groups {
		x, y, err := trace.Pool(g)
		if err != nil {
			return nil, err
		}
		x, y = capRows(x, y, opts.MaxRows)
		sub := x.SelectCols(kept)

		// Step 3: lasso selection.
		lsel, err := regress.LassoSelect(sub, y, opts.LassoTargetK)
		if err != nil {
			return nil, err
		}
		if len(lsel) == 0 {
			continue
		}
		// Step 4: stepwise elimination over the lasso survivors.
		sub2 := sub.SelectCols(lsel)
		sw, err := regress.Stepwise(sub2, y, opts.StepwiseAlpha, opts.MinKeep)
		if err != nil {
			return nil, err
		}
		perMachineSizes = append(perMachineSizes, float64(len(sw.Kept)))
		// Step 5 weights: 1 for stepwise survivors, DroppedWeight for
		// lasso picks that stepwise discarded.
		survived := map[int]bool{}
		for _, j := range sw.Kept {
			hist[kept[lsel[j]]] += 1
			survived[lsel[j]] = true
		}
		for _, j := range lsel {
			if !survived[j] {
				hist[kept[j]] += opts.DroppedWeight
			}
		}
	}
	s34.SetAttr(obs.Int("groups", len(groups)), obs.Int("survivors", len(hist)))
	s34.End()
	if len(hist) == 0 {
		return nil, fmt.Errorf("featsel: no features survived per-machine selection")
	}
	funnel.PerMachineAvg = mathx.Mean(perMachineSizes)

	// Steps 5-6: threshold the histogram, then run stepwise on the full
	// cluster data; if stepwise rejects features, raise the threshold
	// and repeat until the selected set is stepwise-stable.
	s56 := span.Child("featsel.step5_6_threshold")
	threshold := opts.InitialThreshold
	if threshold == 0 {
		// The paper starts at a weighted occurrence count of 5 out of 20
		// machine x workload combinations; scale that 25% to this
		// dataset, with a floor of 2.
		threshold = float64(int(0.25*float64(len(groups)) + 0.5))
		if threshold < 2 {
			threshold = 2
		}
	}
	var final []int
	var lastSurvivors []int
	for {
		var sel []int
		for j := 0; j < reg.Len(); j++ {
			if hist[j] >= threshold {
				sel = append(sel, j)
			}
		}
		if len(sel) <= opts.MinKeep {
			// The threshold rose past the point of usefulness: keep the
			// thresholded set itself, the last cluster-stepwise
			// survivors, or as a last resort the top-weighted features.
			switch {
			case len(sel) > 0:
				final = sel
			case len(lastSurvivors) > 0:
				final = lastSurvivors
			default:
				final = topK(hist, opts.MinKeep)
			}
			break
		}
		sub := pooledX.SelectCols(sel)
		sw, err := regress.Stepwise(sub, pooledY, opts.StepwiseAlpha, opts.MinKeep)
		if err != nil {
			return nil, err
		}
		if len(sw.Dropped) == 0 {
			final = sel
			break
		}
		lastSurvivors = indexThrough(sel, sw.Kept)
		threshold++
	}
	sort.Ints(final)
	funnel.Final = len(final)
	s56.SetAttr(obs.Int("final", len(final)), obs.Float("threshold", threshold))
	s56.End()
	span.SetAttr(obs.Int("features", len(final)))
	obs.Default().Gauge("chaos_featsel_selected_features", nil).Set(float64(len(final)))

	res := &Result{
		Histogram: map[string]float64{},
		Threshold: threshold,
		Funnel:    funnel,
	}
	for j, w := range hist {
		res.Histogram[names[j]] = w
	}
	for _, j := range final {
		res.Features = append(res.Features, names[j])
	}
	return res, nil
}

// indexThrough composes index selections: outer[inner[i]].
func indexThrough(outer, inner []int) []int {
	out := make([]int, len(inner))
	for i, j := range inner {
		out[i] = outer[j]
	}
	return out
}

// coDependentDrops marks the columns step 2 removes.
func coDependentDrops(n int, deps []regress.CoDependency) []bool {
	_, removed := regress.CoDependentPrune(n, deps)
	drop := make([]bool, n)
	for _, j := range removed {
		drop[j] = true
	}
	return drop
}

// groupByMachineWorkload partitions traces into (machine, workload) groups
// pooled over runs, in deterministic order.
func groupByMachineWorkload(traces []*trace.Trace) [][]*trace.Trace {
	type key struct{ m, w string }
	idx := map[key]int{}
	var out [][]*trace.Trace
	for _, t := range traces {
		k := key{t.MachineID, t.Workload}
		i, ok := idx[k]
		if !ok {
			i = len(out)
			idx[k] = i
			out = append(out, nil)
		}
		out[i] = append(out[i], t)
	}
	return out
}

// capRows subsamples x/y evenly down to at most maxRows rows.
func capRows(x *mathx.Matrix, y []float64, maxRows int) (*mathx.Matrix, []float64) {
	if maxRows <= 0 || x.Rows <= maxRows {
		return x, y
	}
	step := (x.Rows + maxRows - 1) / maxRows
	var rows []int
	for i := 0; i < x.Rows; i += step {
		rows = append(rows, i)
	}
	suby := make([]float64, len(rows))
	for k, i := range rows {
		suby[k] = y[i]
	}
	return x.SelectRows(rows), suby
}

// topK returns the k highest-weighted feature indices.
func topK(hist map[int]float64, k int) []int {
	type kv struct {
		j int
		w float64
	}
	all := make([]kv, 0, len(hist))
	for j, w := range hist {
		all = append(all, kv{j, w})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].w != all[b].w {
			return all[a].w > all[b].w
		}
		return all[a].j < all[b].j
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].j
	}
	return out
}
