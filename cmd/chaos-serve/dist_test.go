package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/dist"
)

// reserveAddrs picks n free loopback addresses. The listeners close
// before the children bind, so a port could in principle be stolen in
// between — the children fail loudly on bind if so.
func reserveAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// postCluster sends one full-fleet snapshot to a node's cluster front
// door and returns the merged answer.
func postCluster(t *testing.T, base string, machines []string, row []float64) dist.ClusterResponse {
	t.Helper()
	samples := make([]map[string]any, len(machines))
	for i, m := range machines {
		samples[i] = map[string]any{"machine_id": m, "platform": "Core2", "counters": row}
	}
	body, err := json.Marshal(map[string]any{"samples": samples})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/estimate/cluster", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cr dist.ClusterResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	return cr
}

// getBody fetches one URL's raw bytes.
func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, data)
	}
	return data
}

// TestDistThreeNodeKillCatchUp is the distributed-serving headline e2e:
// a three-node fleet (leader + two journal-replicating followers) under
// cluster-snapshot load loses one node to SIGKILL. Every request during
// the outage must still answer 200 with every survivor-owned machine
// served and coverage >= 2/3; a model activated on the leader while the
// node is down must reach it after restart, leaving its registry
// bit-identical to the leader's; and full coverage must return once its
// breaker re-probes.
func TestDistThreeNodeKillCatchUp(t *testing.T) {
	addrs := reserveAddrs(t, 3)
	peerSpec := fmt.Sprintf("n1=%s,n2=%s,n3=%s", addrs[0], addrs[1], addrs[2])
	peers, err := dist.ParsePeers(peerSpec)
	if err != nil {
		t.Fatal(err)
	}
	part, err := dist.NewPartition("n1", peers)
	if err != nil {
		t.Fatal(err)
	}

	// Four machines per node, so killing any one node costs exactly 1/3
	// of coverage. Ownership is a pure function of IDs, so the test can
	// pick the fixture deterministically.
	byNode := map[string][]string{}
	for i := 0; len(byNode["n1"]) < 4 || len(byNode["n2"]) < 4 || len(byNode["n3"]) < 4; i++ {
		if i > 10000 {
			t.Fatal("could not find a balanced machine fixture")
		}
		m := fmt.Sprintf("mc-%03d", i)
		if o := part.Owner(m).ID; len(byNode[o]) < 4 {
			byNode[o] = append(byNode[o], m)
		}
	}
	var machines []string
	for _, n := range []string{"n1", "n2", "n3"} {
		machines = append(machines, byNode[n]...)
	}
	survivors := map[string]bool{}
	for _, m := range byNode["n1"] {
		survivors[m] = true
	}
	for _, m := range byNode["n3"] {
		survivors[m] = true
	}
	row := probeRows()[0]

	// Leader n1 bootstraps v1+v2 from simulation; n2 and n3 replicate.
	leaderDir := t.TempDir()
	leaderArgs := []string{
		"-listen", addrs[0], "-json",
		"-machines", "2", "-workloads", "Prime", "-seed", "7",
		"-state-dir", leaderDir, "-peers", peerSpec, "-node-id", "n1",
	}
	c1 := startChild(t, leaderArgs...)
	c1.waitEvent("serving", 90*time.Second)
	base1 := "http://" + addrs[0]

	replicaArgs := func(id, dir string) []string {
		return []string{
			"-listen", addrs[map[string]int{"n2": 1, "n3": 2}[id]], "-json",
			"-state-dir", dir, "-peers", peerSpec, "-node-id", id,
			"-replicate-from", base1,
		}
	}
	n2Dir, n3Dir := t.TempDir(), t.TempDir()
	c2 := startChild(t, replicaArgs("n2", n2Dir)...)
	c3 := startChild(t, replicaArgs("n3", n3Dir)...)
	c2.waitEvent("replica_caught_up", 90*time.Second)
	c3.waitEvent("replica_caught_up", 90*time.Second)

	// Healthy fleet: full coverage through the leader's front door.
	cr := postCluster(t, base1, machines, row)
	if cr.Status != http.StatusOK || cr.Coverage != 1.0 || len(cr.PerMachine) != len(machines) {
		t.Fatalf("healthy fleet: status=%d coverage=%v served=%d", cr.Status, cr.Coverage, len(cr.PerMachine))
	}

	// SIGKILL n2 and keep the load going. Bounded degradation: every
	// in-outage request answers 200 with all survivor machines present.
	if err := c2.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	c2.waitExit(30 * time.Second)
	for i := 0; i < 15; i++ {
		cr = postCluster(t, base1, machines, row)
		if cr.Status != http.StatusOK {
			t.Fatalf("request %d during outage failed: %+v", i, cr)
		}
		if cr.Coverage < 2.0/3.0 {
			t.Fatalf("request %d coverage %v < 2/3", i, cr.Coverage)
		}
		for m := range survivors {
			if _, ok := cr.PerMachine[m]; !ok {
				t.Fatalf("request %d missing survivor machine %s: %+v", i, m, cr)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A version activated while n2 is down must reach it after restart.
	actBody, _ := json.Marshal(map[string]any{"version": "v2"})
	resp, err := http.Post(base1+"/v1/models/activate", "application/json", bytes.NewReader(actBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("activate v2 on leader = %d", resp.StatusCode)
	}

	// Restart n2 on its state dir: it resumes from its replication
	// checkpoint, catches up (lag -> 0), and its registry document is
	// bit-identical to the leader's — same versions, same order, same
	// creation times, same active model.
	c2b := startChild(t, replicaArgs("n2", n2Dir)...)
	c2b.waitEvent("replica_caught_up", 90*time.Second)
	deadline := time.Now().Add(30 * time.Second)
	for {
		leaderModels := getBody(t, base1+"/v1/models")
		n2Models := getBody(t, "http://"+addrs[1]+"/v1/models")
		if bytes.Equal(leaderModels, n2Models) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("registries diverge after catch-up:\nleader %s\nn2     %s", leaderModels, n2Models)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Full coverage returns once the leader's breaker re-probes n2.
	deadline = time.Now().Add(30 * time.Second)
	for {
		cr = postCluster(t, base1, machines, row)
		if cr.Coverage == 1.0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coverage never recovered: %+v", cr)
		}
		time.Sleep(200 * time.Millisecond)
	}
	if cr.Peers["n2"] != "ok" {
		t.Fatalf("recovered peer outcome %q", cr.Peers["n2"])
	}
	_ = c3 // kept alive by cleanup; its survival is asserted via coverage
}
