package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// stubControl implements the Control surface without dragging the
// control package (and the simulator) into serve's tests — serve only
// depends on the interface.
type stubControl struct {
	applied []string
	fail    bool
}

func (c *stubControl) StatusJSON() any {
	return map[string]any{"policy": "stub", "ticks": 7}
}

func (c *stubControl) ApplyPolicyJSON(doc []byte) error {
	if c.fail {
		return fmt.Errorf("control: bad policy")
	}
	c.applied = append(c.applied, string(doc))
	return nil
}

// TestControlEndpointsDisabled: before AttachControl the control
// endpoints answer 404, like the lifecycle surface.
func TestControlEndpointsDisabled(t *testing.T) {
	_, base := newTestServer(t, Config{})
	for _, path := range []string{"/v1/control/status", "/v1/control/policy"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s before attach: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestControlStatusAndPolicyEndpoints: attached controller serves status,
// accepts policy POSTs, surfaces rejections as 422, and refuses other
// methods.
func TestControlStatusAndPolicyEndpoints(t *testing.T) {
	s, base := newTestServer(t, Config{})
	ctl := &stubControl{}
	s.AttachControl(ctl)

	resp, err := http.Get(base + "/v1/control/status")
	if err != nil {
		t.Fatal(err)
	}
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || st["policy"] != "stub" {
		t.Fatalf("status %d body %v", resp.StatusCode, st)
	}

	doc := `{"version":"chaos-capping/v1"}`
	resp, err = http.Post(base+"/v1/control/policy", "application/json", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("policy POST status %d", resp.StatusCode)
	}
	if len(ctl.applied) != 1 || ctl.applied[0] != doc {
		t.Fatalf("applied %v", ctl.applied)
	}

	// GET on /v1/control/policy answers the live status document.
	resp, err = http.Get(base + "/v1/control/policy")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("policy GET status %d", resp.StatusCode)
	}

	ctl.fail = true
	resp, err = http.Post(base+"/v1/control/policy", "application/json", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity || e.Error == "" {
		t.Fatalf("rejected policy: status %d error %q", resp.StatusCode, e.Error)
	}

	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/control/policy", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE status %d, want 405", resp.StatusCode)
	}
}
