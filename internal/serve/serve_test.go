package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/models"
	"repro/internal/online"
	"repro/internal/registry"
	"repro/internal/trace"
)

// testNames is the counter-stream order every test fixture uses.
var testNames = []string{"a", "b"}

// mkLinear builds a one-platform cluster model: watts = intercept + a + 2b.
func mkLinear(t *testing.T, intercept float64) *models.ClusterModel {
	t.Helper()
	mm := &models.MachineModel{
		Platform: "p",
		Spec:     models.FeatureSpec{Name: "test", Counters: testNames},
		Model:    &models.Linear{Intercept: intercept, Coef: []float64{1, 2}},
	}
	cm, err := models.NewClusterModel(mm)
	if err != nil {
		t.Fatal(err)
	}
	return cm
}

// newTestServer builds a registry with v1 (intercept 10) and v2
// (intercept 20), an engine, and a bound HTTP listener.
func newTestServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	reg := registry.New()
	if err := reg.Add("v1", mkLinear(t, 10), registry.Meta{Description: "ten"}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add("v2", mkLinear(t, 20), registry.Meta{Description: "twenty"}); err != nil {
		t.Fatal(err)
	}
	if cfg.Names == nil {
		cfg.Names = testNames
	}
	s, err := New(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Serve("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		h.Close()
		s.Close()
	})
	return s, "http://" + h.Addr()
}

func postJSON(t *testing.T, client *http.Client, url string, body any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func sample(machine string, a, b float64) SampleJSON {
	return SampleJSON{MachineID: machine, Platform: "p", Counters: []float64{a, b}}
}

func TestServeEstimateSingleEndpoint(t *testing.T) {
	_, base := newTestServer(t, Config{})
	client := &http.Client{}
	status, body := postJSON(t, client, base+"/v1/estimate", EstimateRequest{
		Samples: []SampleJSON{sample("m1", 3, 4), sample("m2", 1, 1)},
	})
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	var resp EstimateResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	// v1: m1 = 10+3+8 = 21, m2 = 10+1+2 = 13.
	if resp.ModelVersion != "v1" {
		t.Errorf("model_version = %q, want v1", resp.ModelVersion)
	}
	if resp.ClusterWatts != 34 {
		t.Errorf("cluster_watts = %g, want 34", resp.ClusterWatts)
	}
	if resp.PerMachine["m1"] != 21 || resp.PerMachine["m2"] != 13 {
		t.Errorf("per_machine = %v", resp.PerMachine)
	}
}

func TestServeEstimateBatchEndpoint(t *testing.T) {
	_, base := newTestServer(t, Config{})
	client := &http.Client{}
	req := BatchRequest{Requests: []EstimateRequest{
		{Samples: []SampleJSON{sample("m1", 3, 4)}},
		{Samples: []SampleJSON{sample("m2", 0, 0)}},
		{Samples: []SampleJSON{sample("m1", 1, 0)}},
	}}
	status, body := postJSON(t, client, base+"/v1/estimate/batch", req)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(resp.Results))
	}
	want := []float64{21, 10, 11}
	for i, r := range resp.Results {
		if r.Status != http.StatusOK || r.ClusterWatts != want[i] {
			t.Errorf("result %d = status %d watts %g, want 200/%g", i, r.Status, r.ClusterWatts, want[i])
		}
	}
}

func TestServeEstimateBadRequests(t *testing.T) {
	s, base := newTestServer(t, Config{})
	client := &http.Client{}
	cases := []struct {
		name string
		req  EstimateRequest
	}{
		{"no samples", EstimateRequest{}},
		{"unknown platform", EstimateRequest{Samples: []SampleJSON{{MachineID: "m", Platform: "nope", Counters: []float64{1, 2}}}}},
		{"wrong width", EstimateRequest{Samples: []SampleJSON{{MachineID: "m", Platform: "p", Counters: []float64{1}}}}},
	}
	for _, c := range cases {
		status, body := postJSON(t, client, base+"/v1/estimate", c.req)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", c.name, status, body)
		}
	}
	// Non-finite counters cannot travel as JSON (the encoder rejects NaN),
	// but the engine must still reject them for direct callers.
	if _, err := s.Estimate([]online.Sample{{MachineID: "m", Platform: "p", Counters: []float64{math.NaN(), 1}}}, 0, nil); err == nil {
		t.Error("non-finite counters should be rejected by the engine")
	}
	// Garbage body.
	resp, err := client.Post(base+"/v1/estimate", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: status = %d, want 400", resp.StatusCode)
	}
}

func TestServeModelsListActivateRollback(t *testing.T) {
	_, base := newTestServer(t, Config{})
	client := &http.Client{}

	resp, err := client.Get(base + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var list ModelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if list.Active != "v1" || len(list.Models) != 2 {
		t.Fatalf("models = active %q, %d versions; want v1, 2", list.Active, len(list.Models))
	}

	status, _ := postJSON(t, client, base+"/v1/models/activate", ActivateRequest{Version: "v2"})
	if status != http.StatusOK {
		t.Fatalf("activate v2: status %d", status)
	}
	status, body := postJSON(t, client, base+"/v1/models/activate", ActivateRequest{Version: "ghost"})
	if status != http.StatusBadRequest {
		t.Fatalf("activate ghost: status %d body %s", status, body)
	}
	// Estimates now use v2.
	status, body = postJSON(t, client, base+"/v1/estimate", EstimateRequest{Samples: []SampleJSON{sample("m1", 3, 4)}})
	if status != http.StatusOK {
		t.Fatalf("estimate: %d %s", status, body)
	}
	var er EstimateResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.ModelVersion != "v2" || er.ClusterWatts != 31 {
		t.Errorf("after swap: version %q watts %g, want v2/31", er.ModelVersion, er.ClusterWatts)
	}
	// Rollback returns to v1.
	status, body = postJSON(t, client, base+"/v1/models/activate", ActivateRequest{Rollback: true})
	if status != http.StatusOK {
		t.Fatalf("rollback: %d %s", status, body)
	}
	status, body = postJSON(t, client, base+"/v1/estimate", EstimateRequest{Samples: []SampleJSON{sample("m1", 3, 4)}})
	if status != http.StatusOK {
		t.Fatal("estimate after rollback failed")
	}
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.ModelVersion != "v1" || er.ClusterWatts != 21 {
		t.Errorf("after rollback: version %q watts %g, want v1/21", er.ModelVersion, er.ClusterWatts)
	}
}

func TestServeAddModelOverHTTP(t *testing.T) {
	_, base := newTestServer(t, Config{})
	client := &http.Client{}
	cm := mkLinear(t, 40)
	raw, err := json.Marshal(cm)
	if err != nil {
		t.Fatal(err)
	}
	status, body := postJSON(t, client, base+"/v1/models", AddModelRequest{
		Version: "v3", Description: "forty", Model: raw, Activate: true,
	})
	if status != http.StatusOK {
		t.Fatalf("add model: %d %s", status, body)
	}
	status, body = postJSON(t, client, base+"/v1/estimate", EstimateRequest{Samples: []SampleJSON{sample("m1", 0, 0)}})
	if status != http.StatusOK {
		t.Fatalf("estimate: %d %s", status, body)
	}
	var er EstimateResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.ModelVersion != "v3" || er.ClusterWatts != 40 {
		t.Errorf("got version %q watts %g, want v3/40", er.ModelVersion, er.ClusterWatts)
	}
	// A model whose features the stream cannot supply is rejected at
	// admission, before it could ever be activated.
	alien := &models.MachineModel{
		Platform: "p",
		Spec:     models.FeatureSpec{Name: "alien", Counters: []string{"zz", "ww"}},
		Model:    &models.Linear{Intercept: 1, Coef: []float64{1, 2}},
	}
	acm, err := models.NewClusterModel(alien)
	if err != nil {
		t.Fatal(err)
	}
	rawAlien, _ := json.Marshal(acm)
	status, body = postJSON(t, client, base+"/v1/models", AddModelRequest{Version: "v4", Model: rawAlien})
	if status != http.StatusBadRequest {
		t.Errorf("incompatible model admission: status %d body %s, want 400", status, body)
	}
	// Truncated model payload.
	// Syntactically valid JSON that is not a cluster model.
	status, _ = postJSON(t, client, base+"/v1/models", AddModelRequest{Version: "v5", Model: json.RawMessage(`"not a model"`)})
	if status != http.StatusBadRequest {
		t.Errorf("malformed model: status %d, want 400", status)
	}
}

// gateModel blocks Predict while gated, so tests can hold a worker busy
// deterministically. entered signals each arrival into Predict.
type gateModel struct {
	gate    atomic.Bool
	entered chan struct{}
	release chan struct{}
}

func (g *gateModel) Predict(row []float64) float64 {
	if g.gate.Load() {
		g.entered <- struct{}{}
		<-g.release
	}
	return 1
}
func (g *gateModel) Technique() models.Technique { return models.TechLinear }
func (g *gateModel) NumInputs() int              { return 2 }

// newGateServer builds a server whose active model can be frozen.
func newGateServer(t *testing.T, cfg Config) (*gateModel, string) {
	t.Helper()
	g := &gateModel{entered: make(chan struct{}, 64), release: make(chan struct{})}
	mm := &models.MachineModel{
		Platform: "p",
		Spec:     models.FeatureSpec{Name: "gate", Counters: testNames},
		Model:    g,
	}
	cm, err := models.NewClusterModel(mm)
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	if err := reg.Add("v1", cm, registry.Meta{}); err != nil {
		t.Fatal(err)
	}
	cfg.Names = testNames
	s, err := New(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Serve("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		h.Close()
		s.Close()
	})
	return g, "http://" + h.Addr()
}

// TestServeBackpressure429 fills the single shard's depth-2 queue while
// the worker is pinned inside a prediction, then checks that further
// requests shed with 429 instead of queueing unboundedly — and that every
// queued request still completes once the worker resumes.
func TestServeBackpressure429(t *testing.T) {
	g, base := newGateServer(t, Config{Shards: 1, QueueDepth: 2, BatchMax: 1, Deadline: 30 * time.Second})
	client := &http.Client{}
	g.gate.Store(true)

	results := make(chan int, 3)
	post := func() {
		status, _ := postJSON(t, client, base+"/v1/estimate", EstimateRequest{Samples: []SampleJSON{sample("m1", 1, 1)}})
		results <- status
	}
	go post()
	<-g.entered // worker now pinned inside Predict
	go post()
	go post() // these two occupy the depth-2 queue
	waitQueued(t, base, 2)

	// Queue full: the next requests must shed immediately with 429, each
	// carrying a Retry-After hint derived from the queue backlog so the
	// client backs off instead of hammering.
	for i := 0; i < 3; i++ {
		data, err := json.Marshal(EstimateRequest{Samples: []SampleJSON{sample("m1", 1, 1)}})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Post(base+"/v1/estimate", "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("overload request %d: status %d, want 429", i, resp.StatusCode)
		}
		ra := resp.Header.Get("Retry-After")
		if ra == "" {
			t.Fatalf("overload request %d: 429 without Retry-After header", i)
		}
		if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
			t.Fatalf("overload request %d: Retry-After %q, want integer seconds >= 1", i, ra)
		}
	}

	g.gate.Store(false)
	close(g.release)
	for i := 0; i < 3; i++ {
		if status := <-results; status != http.StatusOK {
			t.Errorf("pinned request %d finished with %d, want 200", i, status)
		}
	}
}

// waitQueued polls the metrics endpoint until the shard queue shows n
// entries (the two in-flight posts are enqueued asynchronously).
func waitQueued(t *testing.T, base string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body) //nolint:errcheck
		resp.Body.Close()
		if bytes.Contains(buf.Bytes(), []byte(fmt.Sprintf(`chaos_serve_queue_depth{shard="0"} %d`, n))) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("queue never reached depth %d", n)
}

// TestServeDeadlineExceeded pins the worker past a short per-request
// deadline and checks the queued request is answered 504, not silently
// dropped.
func TestServeDeadlineExceeded(t *testing.T) {
	g, base := newGateServer(t, Config{Shards: 1, QueueDepth: 8, BatchMax: 1, Deadline: 30 * time.Second})
	client := &http.Client{}
	g.gate.Store(true)

	first := make(chan int, 1)
	go func() {
		status, _ := postJSON(t, client, base+"/v1/estimate", EstimateRequest{Samples: []SampleJSON{sample("m1", 1, 1)}})
		first <- status
	}()
	<-g.entered // worker pinned

	late := make(chan int, 1)
	go func() {
		status, _ := postJSON(t, client, base+"/v1/estimate", EstimateRequest{
			Samples:    []SampleJSON{sample("m1", 1, 1)},
			DeadlineMS: 20,
		})
		late <- status
	}()
	time.Sleep(60 * time.Millisecond) // let the 20ms deadline lapse in queue
	g.gate.Store(false)
	close(g.release)

	if status := <-first; status != http.StatusOK {
		t.Errorf("pinned request: %d, want 200", status)
	}
	if status := <-late; status != http.StatusGatewayTimeout {
		t.Errorf("expired request: %d, want 504", status)
	}
}

// TestServeBatchThroughputAmortization is the acceptance check: the
// batched endpoint must sustain at least 5x the snapshot throughput of
// the single-sample endpoint at equal error, because one HTTP round trip
// and one queue wakeup amortize across the whole payload.
func TestServeBatchThroughputAmortization(t *testing.T) {
	_, base := newTestServer(t, Config{Shards: 2, QueueDepth: 4096, BatchMax: 256})
	traces := syntheticTraces(t, 3, 200)

	run := func(batch int) *LoadStats {
		stats, err := RunLoadGen(LoadGenConfig{
			TargetURL:    base,
			Traces:       traces,
			Snapshots:    2000,
			Clients:      4,
			Batch:        batch,
			IncludeMeter: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Failed != 0 || stats.Shed != 0 || stats.Late != 0 {
			t.Fatalf("batch=%d: failed %d shed %d late %d", batch, stats.Failed, stats.Shed, stats.Late)
		}
		if stats.OK != 2000 {
			t.Fatalf("batch=%d: ok %d, want 2000", batch, stats.OK)
		}
		return stats
	}
	single := run(1)
	batched := run(32)

	ratio := batched.SamplesPerSec / single.SamplesPerSec
	t.Logf("single: %.0f samples/s (p99 %s); batched: %.0f samples/s (p99 %s); ratio %.1fx",
		single.SamplesPerSec, single.LatencyP99, batched.SamplesPerSec, batched.LatencyP99, ratio)
	if ratio < 5 {
		t.Errorf("batched throughput only %.1fx single, want >= 5x", ratio)
	}
	// Equal error: identical model, identical inputs — identical estimates.
	if d := math.Abs(single.MeanAbsErr() - batched.MeanAbsErr()); d > 1e-9 {
		t.Errorf("batch path changed accuracy: single %.6f W vs batched %.6f W", single.MeanAbsErr(), batched.MeanAbsErr())
	}
}

// syntheticTraces builds n aligned machine traces over testNames whose
// metered power equals the v1 model's prediction, so MeanAbsErr is
// exactly zero when serving v1.
func syntheticTraces(t *testing.T, machines, seconds int) []*trace.Trace {
	t.Helper()
	out := make([]*trace.Trace, machines)
	for m := 0; m < machines; m++ {
		b := trace.NewBuilder("p", "synthetic", fmt.Sprintf("m%d", m), 0, testNames, 0)
		for i := 0; i < seconds; i++ {
			a := float64((i + m) % 50)
			bb := float64((i * (m + 1)) % 30)
			watts := 10 + a + 2*bb // matches mkLinear(10)
			if err := b.Add([]float64{a, bb}, watts, watts); err != nil {
				t.Fatal(err)
			}
		}
		tr, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		out[m] = tr
	}
	return out
}

// TestServeHotSwapUnderLoad is the satellite race test: hammer
// /v1/estimate from many goroutines while another goroutine flips the
// active version between v1 and v2 through the API. Every request must
// succeed, and every answer must be exactly a v1 or v2 prediction —
// never a torn mix.
func TestServeHotSwapUnderLoad(t *testing.T) {
	_, base := newTestServer(t, Config{Shards: 4, QueueDepth: 1024, Deadline: 30 * time.Second})
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 32}}

	const hammers = 8
	const perHammer = 150
	var failed atomic.Int64
	var torn atomic.Int64
	var wg sync.WaitGroup

	stopSwap := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		v := 0
		for {
			select {
			case <-stopSwap:
				return
			default:
			}
			v++
			version := []string{"v1", "v2"}[v%2]
			status, _ := postJSON(t, client, base+"/v1/models/activate", ActivateRequest{Version: version})
			if status != http.StatusOK {
				failed.Add(1)
			}
		}
	}()

	// Expected watts for row [3,4]: v1 -> 21, v2 -> 31.
	want := map[string]float64{"v1": 21, "v2": 31}
	var hwg sync.WaitGroup
	for h := 0; h < hammers; h++ {
		hwg.Add(1)
		go func(h int) {
			defer hwg.Done()
			machine := fmt.Sprintf("m%d", h)
			for i := 0; i < perHammer; i++ {
				status, body := postJSON(t, client, base+"/v1/estimate", EstimateRequest{
					Samples: []SampleJSON{sample(machine, 3, 4)},
				})
				if status != http.StatusOK {
					failed.Add(1)
					continue
				}
				var er EstimateResponse
				if err := json.Unmarshal(body, &er); err != nil {
					failed.Add(1)
					continue
				}
				if w, ok := want[er.ModelVersion]; !ok || er.ClusterWatts != w {
					torn.Add(1)
				}
			}
		}(h)
	}
	hwg.Wait()
	close(stopSwap)
	wg.Wait()

	if n := failed.Load(); n != 0 {
		t.Errorf("%d requests failed during hot-swap; want 0", n)
	}
	if n := torn.Load(); n != 0 {
		t.Errorf("%d torn reads (watts not matching the reported version); want 0", n)
	}
}

// TestServeCloseAnswersQueued checks a closing server still answers
// queued work instead of dropping it.
func TestServeCloseAnswersQueued(t *testing.T) {
	reg := registry.New()
	if err := reg.Add("v1", mkLinear(t, 10), registry.Meta{}); err != nil {
		t.Fatal(err)
	}
	s, err := New(reg, Config{Shards: 1, Names: testNames, Deadline: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.Estimate([]online.Sample{{MachineID: fmt.Sprintf("m%d", i), Platform: "p", Counters: []float64{1, 1}}}, 0, nil)
			if err != nil {
				errs <- err
				return
			}
			if res.ClusterWatts != 13 {
				errs <- fmt.Errorf("watts = %g", res.ClusterWatts)
			}
		}(i)
	}
	wg.Wait()
	s.Close()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// After close, estimates fail fast rather than deadlocking.
	if _, err := s.Estimate([]online.Sample{{MachineID: "m", Platform: "p", Counters: []float64{1, 1}}}, 0, nil); err == nil {
		t.Error("estimate after Close should fail")
	}
}

// TestLifecycleShadowMirrorInvisible locks the shadow-mirroring contract
// the lifecycle orchestrator depends on: while a mirror is active, every
// fully-metered snapshot produces one ShadowObserve callback scoring the
// challenger against the champion — and the challenger's predictions
// never leak into any response field.
func TestLifecycleShadowMirrorInvisible(t *testing.T) {
	type obs3 struct{ champ, chall, actual float64 }
	var mu sync.Mutex
	var observed []obs3
	var labeled []string
	s, _ := newTestServer(t, Config{
		ShadowObserve: func(champ, chall, actual float64) {
			mu.Lock()
			observed = append(observed, obs3{champ, chall, actual})
			mu.Unlock()
		},
		Labeled: func(_ []online.Sample, _ []float64, _ float64, version string) {
			mu.Lock()
			labeled = append(labeled, version)
			mu.Unlock()
		},
	})

	samples := []online.Sample{
		{MachineID: "m1", Platform: "p", Counters: []float64{3, 4}}, // v1: 21, v2: 31
		{MachineID: "m2", Platform: "p", Counters: []float64{1, 1}}, // v1: 13, v2: 23
	}
	metered := []float64{21, 13}

	// Mirror management: unknown versions are rejected, v2 is accepted.
	if err := s.StartShadow("nope"); err == nil {
		t.Fatal("StartShadow accepted an unknown version")
	}
	if s.ShadowVersion() != "" {
		t.Fatalf("shadow version = %q before any mirror", s.ShadowVersion())
	}
	if err := s.StartShadow("v2"); err != nil {
		t.Fatal(err)
	}
	if s.ShadowVersion() != "v2" {
		t.Fatalf("shadow version = %q, want v2", s.ShadowVersion())
	}

	res, err := s.Estimate(samples, time.Second, metered)
	if err != nil {
		t.Fatal(err)
	}
	// The response is pure champion: v1 watts, v1 version, no trace of v2.
	if res.ClusterWatts != 34 || res.PerMachine["m1"] != 21 || res.PerMachine["m2"] != 13 {
		t.Errorf("mirrored response carries wrong watts: %+v", res)
	}
	if res.Version() != "v1" {
		t.Errorf("mirrored response version = %q, want champion v1", res.Version())
	}
	// The mirror scored exactly one snapshot: champion 34, challenger 54.
	mu.Lock()
	if len(observed) != 1 || observed[0] != (obs3{34, 54, 34}) {
		t.Errorf("shadow observations = %+v, want [{34 54 34}]", observed)
	}
	if len(labeled) != 1 || labeled[0] != "v1" {
		t.Errorf("labeled versions = %v, want [v1]", labeled)
	}
	mu.Unlock()

	// Unmetered traffic mirrors silently: no observation, no label.
	if _, err := s.Estimate(samples, time.Second, nil); err != nil {
		t.Fatal(err)
	}
	// After StopShadow the mirror is gone.
	s.StopShadow()
	if s.ShadowVersion() != "" {
		t.Fatalf("shadow version = %q after StopShadow", s.ShadowVersion())
	}
	if _, err := s.Estimate(samples, time.Second, metered); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if len(observed) != 1 {
		t.Errorf("%d shadow observations after StopShadow, want still 1", len(observed))
	}
	mu.Unlock()
}

// TestLifecycleShadowMirrorUnderSwap races the mirror against hot-swaps:
// mirroring must never fail a request, and once the shadow version is
// promoted (shadow == active) the mirror yields no self-comparisons.
func TestLifecycleShadowMirrorUnderSwap(t *testing.T) {
	var selfCompare atomic.Int64
	var observations atomic.Int64
	s, _ := newTestServer(t, Config{
		Shards: 2,
		ShadowObserve: func(champ, chall, actual float64) {
			observations.Add(1)
			if champ == chall {
				// v1 and v2 differ by 10 W per machine on every row, so a
				// self-comparison means the mirror scored active vs active.
				selfCompare.Add(1)
			}
		},
	})
	if err := s.StartShadow("v2"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("sw%d", w)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				samples := []online.Sample{{MachineID: id, Platform: "p", Counters: []float64{float64(i % 7), 1}}}
				if _, err := s.Estimate(samples, 5*time.Second, []float64{15}); err != nil {
					t.Errorf("estimate under mirror+swap: %v", err)
					return
				}
			}
		}(w)
	}
	// Ping-pong activation v1 <-> v2 while the mirror targets v2.
	for i := 0; i < 40; i++ {
		v := "v1"
		if i%2 == 1 {
			v = "v2"
		}
		if err := s.reg.Activate(v); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if selfCompare.Load() != 0 {
		t.Errorf("%d self-comparisons (shadow scored against itself)", selfCompare.Load())
	}
	if observations.Load() == 0 {
		t.Error("mirror never produced an observation")
	}
}

// TestDistServeOwnershipRejection: a node with a partition check rejects
// estimates for machines it does not own with 421 and a redirect hint —
// serving them locally would use predictors whose lag history lives on
// the owning peer.
func TestDistServeOwnershipRejection(t *testing.T) {
	_, base := newTestServer(t, Config{
		Owner: func(machineID string) (string, string, bool) {
			if machineID == "m-local" {
				return "n1", "127.0.0.1:1", true
			}
			return "n2", "10.0.0.2:8080", false
		},
	})
	client := &http.Client{}

	status, body := postJSON(t, client, base+"/v1/estimate", EstimateRequest{
		Samples: []SampleJSON{sample("m-local", 1, 1)},
	})
	if status != http.StatusOK {
		t.Fatalf("owned machine: status %d body %s", status, body)
	}

	data, err := json.Marshal(EstimateRequest{
		Samples: []SampleJSON{sample("m-local", 1, 1), sample("m-remote", 2, 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(base+"/v1/estimate", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("non-owned machine: status %d, want 421", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Chaos-Owner"); got != "n2" {
		t.Errorf("X-Chaos-Owner = %q, want n2", got)
	}
	if got := resp.Header.Get("X-Chaos-Owner-Addr"); got != "10.0.0.2:8080" {
		t.Errorf("X-Chaos-Owner-Addr = %q, want 10.0.0.2:8080", got)
	}
	var er EstimateResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Owner != "n2" || er.OwnerAddr != "10.0.0.2:8080" {
		t.Fatalf("redirect hint = %+v, want owner n2 at 10.0.0.2:8080", er)
	}
}
