package store

import (
	"fmt"
	"sync"
	"time"
)

// Checkpointer periodically snapshots opaque state to a file, atomically.
// The source callback produces the full serialized state; each write goes
// through WriteFileAtomic, so a crash mid-checkpoint leaves the previous
// complete checkpoint in place. Flush writes on demand (the graceful-
// shutdown path); Close stops the ticker without a final write so callers
// control shutdown ordering explicitly.
type Checkpointer struct {
	path     string
	interval time.Duration
	source   func() ([]byte, error)

	mu        sync.Mutex
	lastBytes int
	lastErr   error

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewCheckpointer starts checkpointing source() to path every interval.
// interval must be positive; source is called on the checkpointer's own
// goroutine and must be safe to call concurrently with the state's owner.
func NewCheckpointer(path string, interval time.Duration, source func() ([]byte, error)) (*Checkpointer, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("store: checkpoint interval must be positive, got %v", interval)
	}
	if source == nil {
		return nil, fmt.Errorf("store: nil checkpoint source")
	}
	c := &Checkpointer{
		path:     path,
		interval: interval,
		source:   source,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go c.run()
	return c, nil
}

func (c *Checkpointer) run() {
	defer close(c.done)
	t := time.NewTicker(c.interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			n, err := c.Flush()
			c.mu.Lock()
			c.lastBytes, c.lastErr = n, err
			c.mu.Unlock()
		}
	}
}

// Flush serializes and writes one checkpoint now, returning the bytes
// written. Safe to call concurrently with the periodic loop and after
// Close (the final-checkpoint path).
func (c *Checkpointer) Flush() (int, error) {
	start := time.Now()
	data, err := c.source()
	if err != nil {
		return 0, fmt.Errorf("store: checkpoint source: %w", err)
	}
	if err := WriteFileAtomic(c.path, data, 0o644); err != nil {
		return 0, err
	}
	checkpointSecs.Observe(time.Since(start).Seconds())
	return len(data), nil
}

// LastErr returns the most recent periodic checkpoint error (nil when the
// last tick succeeded or none has run yet).
func (c *Checkpointer) LastErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastErr
}

// Close stops the periodic loop and waits for any in-flight tick. It does
// NOT write a final checkpoint — call Flush after Close so the final write
// happens at the right point in the shutdown order.
func (c *Checkpointer) Close() {
	c.once.Do(func() { close(c.stop) })
	<-c.done
}
