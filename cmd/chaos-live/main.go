// chaos-live runs the whole online loop against a live simulated cluster:
// train a model on the first workload, then stream a day-in-the-life
// sequence of jobs through the predictor, printing per-minute power
// summaries, drift alarms when the workload mix leaves the trained
// regime, and retrain events that restore accuracy.
//
// Usage:
//
//	chaos-live -platform Core2 -machines 3 -train Prime -stream Prime,Sort,PageRank
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/featsel"
	"repro/internal/models"
	"repro/internal/online"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	var (
		platform = flag.String("platform", "Core2", "platform class")
		machines = flag.Int("machines", 3, "machines in the cluster")
		train    = flag.String("train", "Prime", "workload to train on")
		stream   = flag.String("stream", "Prime,Sort", "comma-separated workload sequence to stream")
		seed     = flag.Int64("seed", 7, "simulation seed")
	)
	flag.Parse()
	if err := run(os.Stdout, *platform, *machines, *train, strings.Split(*stream, ","), *seed); err != nil {
		fmt.Fprintln(os.Stderr, "chaos-live:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, platform string, machines int, trainWL string, streamWLs []string, seed int64) error {
	// Train.
	ds, err := core.Collect(platform, machines, []string{trainWL}, 2, seed)
	if err != nil {
		return err
	}
	sel, err := ds.SelectFeatures(featsel.Options{})
	if err != nil {
		return err
	}
	spec := core.ClusterSpec(sel.Features)
	byRun := trace.ByRun(ds.ByWorkload[trainWL])
	var trainTraces []*trace.Trace
	for _, t := range byRun[0] {
		trainTraces = append(trainTraces, trace.Subsample(t, 2))
	}
	mm, err := models.FitMachineModel(models.TechQuadratic, trainTraces, spec,
		models.FitOptions{MaxKnots: 8})
	if err != nil {
		return err
	}
	cm, err := models.NewClusterModel(mm)
	if err != nil {
		return err
	}
	pred, actual, err := cm.PredictCluster(byRun[1])
	if err != nil {
		return err
	}
	baseline := rmse(pred, actual)
	fmt.Fprintf(w, "trained quadratic model on %s (%d features); held-out rMSE %.2f W\n",
		trainWL, len(sel.Features), baseline)

	// Stream the sequence on the same cluster instances the model was
	// trained for (same seed -> same machines; a deployed model monitors
	// the machines it was fitted on).
	cluster, err := telemetry.New(platform, machines, seed)
	if err != nil {
		return err
	}
	seq, err := cluster.RunSequence(streamWLs, 20, 3000, 0)
	if err != nil {
		return err
	}
	predictor, err := online.NewPredictor(cm, seq[0].Names)
	if err != nil {
		return err
	}
	monitor, err := online.NewMonitor(baseline, 16)
	if err != nil {
		return err
	}
	retrainer, err := online.NewRetrainer(seq[0].Names, 4000)
	if err != nil {
		return err
	}

	n := seq[0].Len()
	fmt.Fprintf(w, "streaming %s (%d s total)\n", strings.Join(streamWLs, " -> "), n)
	var drifted bool
	var minuteErr, minuteActual float64
	for i := 0; i < n; i++ {
		var samples []online.Sample
		var clusterActual float64
		for _, t := range seq {
			samples = append(samples, online.Sample{
				MachineID: t.MachineID, Platform: t.Platform, Counters: t.X.Row(i)})
			clusterActual += t.Power[i]
		}
		est, err := predictor.Step(samples)
		if err != nil {
			return err
		}
		for k, t := range seq {
			if err := retrainer.Add(samples[k], t.Power[i]); err != nil {
				return err
			}
		}
		minuteErr += math.Abs(est.ClusterWatts - clusterActual)
		minuteActual += clusterActual
		if i%60 == 59 {
			fmt.Fprintf(w, "t=%4ds  cluster %6.1f W  mean abs err %5.2f W  residual %.1fx baseline\n",
				i+1, minuteActual/60, minuteErr/60, monitor.EWMA())
			minuteErr, minuteActual = 0, 0
		}
		if monitor.Observe(est.ClusterWatts, clusterActual) && !drifted {
			drifted = true
			fmt.Fprintf(w, "t=%4ds  *** DRIFT: residual %.1fx baseline — scheduling retrain\n",
				i, monitor.EWMA())
		}
		// Retrain once enough post-drift samples are buffered.
		if drifted && i%120 == 119 {
			cm2, err := retrainer.Retrain(models.TechQuadratic, spec)
			if err != nil {
				return err
			}
			p2, err := online.NewPredictor(cm2, seq[0].Names)
			if err != nil {
				return err
			}
			predictor = p2
			monitor.Reset()
			drifted = false
			fmt.Fprintf(w, "t=%4ds  *** retrained on %d buffered seconds; monitor reset\n",
				i, retrainer.Buffered(seq[0].MachineID))
		}
	}
	fmt.Fprintln(w, "stream complete")
	return nil
}

func rmse(pred, actual []float64) float64 {
	var s float64
	for i := range pred {
		d := pred[i] - actual[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}
