package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Errorf("Variance = %v, want 4", v)
	}
	if s := StdDev(xs); s != 2 {
		t.Errorf("StdDev = %v, want 2", s)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("empty/short slices should yield zero")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = (%v, %v)", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Errorf("MinMax(nil) = (%v, %v)", min, max)
	}
}

func TestPercentileAndMedian(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {-5, 1}, {150, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Errorf("Median interpolation failed")
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) should be 0")
	}
	// Input must not be reordered.
	orig := []float64{5, 1, 3}
	Percentile(orig, 50)
	if orig[0] != 5 || orig[1] != 1 || orig[2] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if r := Correlation(xs, ys); !almostEqual(r, 1, 1e-12) {
		t.Errorf("perfect positive correlation = %v", r)
	}
	neg := []float64{8, 6, 4, 2}
	if r := Correlation(xs, neg); !almostEqual(r, -1, 1e-12) {
		t.Errorf("perfect negative correlation = %v", r)
	}
	if r := Correlation(xs, []float64{5, 5, 5, 5}); r != 0 {
		t.Errorf("constant series correlation = %v, want 0", r)
	}
	if r := Correlation(xs, []float64{1, 2}); r != 0 {
		t.Errorf("mismatched length correlation = %v, want 0", r)
	}
}

func TestCorrelationMatrix(t *testing.T) {
	m, _ := FromRows([][]float64{
		{1, 2, -1},
		{2, 4, -2},
		{3, 6, -3},
		{4, 8, -4},
	})
	cm := CorrelationMatrix(m)
	if cm.Rows != 3 || cm.Cols != 3 {
		t.Fatalf("dims = %dx%d", cm.Rows, cm.Cols)
	}
	for i := 0; i < 3; i++ {
		if cm.At(i, i) != 1 {
			t.Errorf("diag(%d) = %v", i, cm.At(i, i))
		}
	}
	if !almostEqual(cm.At(0, 1), 1, 1e-12) || !almostEqual(cm.At(0, 2), -1, 1e-12) {
		t.Errorf("off-diagonals = %v, %v", cm.At(0, 1), cm.At(0, 2))
	}
	if cm.At(1, 2) != cm.At(2, 1) {
		t.Error("correlation matrix is not symmetric")
	}
}

func TestStandardize(t *testing.T) {
	z, mean, scale := Standardize([]float64{1, 2, 3, 4, 5})
	if mean != 3 {
		t.Errorf("mean = %v", mean)
	}
	if !almostEqual(Mean(z), 0, 1e-12) || !almostEqual(StdDev(z), 1, 1e-12) {
		t.Errorf("standardized mean/sd = %v/%v", Mean(z), StdDev(z))
	}
	if scale <= 0 {
		t.Errorf("scale = %v", scale)
	}
	zc, _, sc := Standardize([]float64{7, 7, 7})
	if sc != 1 {
		t.Errorf("constant column scale = %v, want 1", sc)
	}
	for _, v := range zc {
		if v != 0 {
			t.Errorf("constant column standardized to %v, want 0", v)
		}
	}
}

func TestNormalSurvival(t *testing.T) {
	if !almostEqual(NormalSurvival(0), 0.5, 1e-12) {
		t.Errorf("NormalSurvival(0) = %v", NormalSurvival(0))
	}
	if !almostEqual(NormalSurvival(1.96), 0.025, 1e-3) {
		t.Errorf("NormalSurvival(1.96) = %v", NormalSurvival(1.96))
	}
	if NormalSurvival(10) > 1e-20 {
		t.Errorf("far tail should be tiny: %v", NormalSurvival(10))
	}
}

func TestWaldPValue(t *testing.T) {
	if p := WaldPValue(0, 1); !almostEqual(p, 1, 1e-12) {
		t.Errorf("zero coefficient p = %v, want 1", p)
	}
	if p := WaldPValue(1.96, 1); !almostEqual(p, 0.05, 2e-3) {
		t.Errorf("z=1.96 p = %v, want ~0.05", p)
	}
	if p := WaldPValue(5, 0); p != 1 {
		t.Errorf("zero se p = %v, want 1", p)
	}
	if p := WaldPValue(5, math.NaN()); p != 1 {
		t.Errorf("NaN se p = %v, want 1", p)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp misbehaves")
	}
}

func TestDeriveSeedStability(t *testing.T) {
	a := DeriveSeed(42, "machine-0")
	b := DeriveSeed(42, "machine-0")
	c := DeriveSeed(42, "machine-1")
	d := DeriveSeed(43, "machine-0")
	if a != b {
		t.Error("DeriveSeed is not deterministic")
	}
	if a == c || a == d {
		t.Error("DeriveSeed collisions across names/parents")
	}
}

func TestTruncatedNormalBounds(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := TruncatedNormal(r, 10, 2)
		if v < 10-3*2 || v > 10+3*2 {
			t.Fatalf("sample %v outside 3 sigma", v)
		}
	}
	if TruncatedNormal(r, 5, 0) != 5 {
		t.Error("zero stddev should return mean")
	}
}

// Property: Pearson correlation is symmetric and within [-1, 1].
func TestCorrelationProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(3))}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(30)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = r.NormFloat64()
		}
		rxy := Correlation(xs, ys)
		ryx := Correlation(ys, xs)
		return rxy == ryx && rxy >= -1-1e-12 && rxy <= 1+1e-12
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: correlation is invariant under positive affine transforms.
func TestCorrelationAffineInvariance(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(4))}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 25
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = xs[i]*2 + r.NormFloat64()
		}
		scaled := make([]float64, n)
		a := 0.5 + r.Float64()*10
		b := r.NormFloat64() * 100
		for i := range xs {
			scaled[i] = a*xs[i] + b
		}
		return almostEqual(Correlation(xs, ys), Correlation(scaled, ys), 1e-9)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
