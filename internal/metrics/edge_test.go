package metrics

import (
	"math"
	"testing"
)

// These cover the degenerate evaluation sets that guard the DRE division
// (Eq. 6): empty series, zero dynamic range, and single-sample series.

func TestEvaluateEmptySeries(t *testing.T) {
	if _, err := Evaluate(nil, nil, 10); err == nil {
		t.Error("expected error for empty series")
	}
	if _, err := Evaluate([]float64{}, []float64{}, 10); err == nil {
		t.Error("expected error for zero-length series")
	}
	if _, err := MSE(nil, nil); err == nil {
		t.Error("expected MSE error for empty series")
	}
	if _, err := RMSE(nil, nil); err == nil {
		t.Error("expected RMSE error for empty series")
	}
}

func TestEvaluateMismatchedLengths(t *testing.T) {
	if _, err := Evaluate([]float64{1, 2}, []float64{1}, 0); err == nil {
		t.Error("expected error for mismatched lengths")
	}
}

func TestEvaluateZeroDynamicRange(t *testing.T) {
	// All actuals at idle: pmax == pidle, so the DRE denominator is zero.
	pred := []float64{10, 10, 10}
	actual := []float64{10, 10, 10}
	if _, err := Evaluate(pred, actual, 10); err == nil {
		t.Error("expected error when dynamic range is empty")
	}
	// Idle above the observed maximum: negative range must also error.
	if _, err := Evaluate(pred, actual, 50); err == nil {
		t.Error("expected error when idle exceeds max actual")
	}
	if _, err := DRE(1, 10, 10); err == nil {
		t.Error("expected DRE error for pmax == pidle")
	}
	if _, err := DRE(1, 5, 10); err == nil {
		t.Error("expected DRE error for pmax < pidle")
	}
}

func TestEvaluateSingleSample(t *testing.T) {
	s, err := Evaluate([]float64{95}, []float64{100}, 60)
	if err != nil {
		t.Fatalf("single-sample evaluate: %v", err)
	}
	if s.N != 1 {
		t.Errorf("N = %d, want 1", s.N)
	}
	if math.Abs(s.RMSE-5) > 1e-12 {
		t.Errorf("RMSE = %g, want 5", s.RMSE)
	}
	if math.Abs(s.DRE-5.0/40) > 1e-12 {
		t.Errorf("DRE = %g, want 0.125", s.DRE)
	}
	if math.Abs(s.MedAbsE-5) > 1e-12 || math.Abs(s.MedRelE-0.05) > 1e-12 {
		t.Errorf("medians = %g, %g", s.MedAbsE, s.MedRelE)
	}
	if s.MaxErr != 5 {
		t.Errorf("MaxErr = %g, want 5", s.MaxErr)
	}
}

func TestEvaluateZeroActuals(t *testing.T) {
	// actual == 0 samples must not divide by zero in relative error or
	// percent error; the dynamic range still guards DRE.
	s, err := Evaluate([]float64{1, 2}, []float64{0, 4}, -1)
	if err != nil {
		t.Fatalf("evaluate with zero actual: %v", err)
	}
	if math.IsNaN(s.PctErr) || math.IsInf(s.PctErr, 0) {
		t.Errorf("PctErr = %g", s.PctErr)
	}
	if math.IsNaN(s.MedRelE) || math.IsInf(s.MedRelE, 0) {
		t.Errorf("MedRelE = %g", s.MedRelE)
	}
}

func TestAverageEmptyAndSingle(t *testing.T) {
	if got := Average(nil); got.N != 0 || got.RMSE != 0 {
		t.Errorf("Average(nil) = %+v", got)
	}
	one := Summary{N: 3, RMSE: 2, DRE: 0.1, MaxErr: 7}
	got := Average([]Summary{one})
	if got != one {
		t.Errorf("Average of one = %+v, want %+v", got, one)
	}
}

func TestEnergyWhEmpty(t *testing.T) {
	if got := EnergyWh(nil); got != 0 {
		t.Errorf("EnergyWh(nil) = %g", got)
	}
}
