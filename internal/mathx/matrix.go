// Package mathx provides the dense linear algebra and descriptive
// statistics primitives used by the regression, MARS, and feature-selection
// layers. It is intentionally small: dense row-major matrices, Householder
// QR least squares, and the handful of statistics the CHAOS pipeline needs.
//
// Everything is stdlib-only and deterministic.
package mathx

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense, row-major matrix. The zero value is an empty matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zeroed r x c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mathx: negative dimension %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return &Matrix{}, nil
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("mathx: ragged rows: row %d has %d cols, want %d", i, len(row), c)
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// SelectCols returns a new matrix containing the listed columns of m, in
// order. Indices may repeat.
func (m *Matrix) SelectCols(cols []int) *Matrix {
	out := NewMatrix(m.Rows, len(cols))
	for i := 0; i < m.Rows; i++ {
		base := i * m.Cols
		for k, j := range cols {
			out.Data[i*len(cols)+k] = m.Data[base+j]
		}
	}
	return out
}

// SelectRows returns a new matrix containing the listed rows of m, in order.
func (m *Matrix) SelectRows(rows []int) *Matrix {
	out := NewMatrix(len(rows), m.Cols)
	for k, i := range rows {
		copy(out.Data[k*m.Cols:(k+1)*m.Cols], m.Data[i*m.Cols:(i+1)*m.Cols])
	}
	return out
}

// MulVec returns m * x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("mathx: MulVec dimension mismatch: %d cols vs vector len %d", m.Cols, len(x))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		base := i * m.Cols
		for j := 0; j < m.Cols; j++ {
			s += m.Data[base+j] * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Mul returns m * b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("mathx: Mul dimension mismatch: %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out, nil
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// AppendCol returns a new matrix with col appended as the last column.
func (m *Matrix) AppendCol(col []float64) (*Matrix, error) {
	if m.Rows != 0 && len(col) != m.Rows {
		return nil, fmt.Errorf("mathx: AppendCol length %d, want %d", len(col), m.Rows)
	}
	rows := m.Rows
	if rows == 0 {
		rows = len(col)
	}
	out := NewMatrix(rows, m.Cols+1)
	for i := 0; i < rows; i++ {
		if m.Cols > 0 {
			copy(out.Data[i*out.Cols:], m.Data[i*m.Cols:(i+1)*m.Cols])
		}
		out.Data[i*out.Cols+m.Cols] = col[i]
	}
	return out, nil
}

// ErrSingular is returned when a system is numerically singular.
var ErrSingular = errors.New("mathx: matrix is singular to working precision")

// QRFactor holds a Householder QR factorization of an m x n matrix with
// m >= n. It supports least-squares solves and inversion of R.
type QRFactor struct {
	qr   *Matrix   // packed factors: R in upper triangle, Householder vectors below
	rdia []float64 // diagonal of R
	m, n int
}

// QR computes the Householder QR factorization of a (rows >= cols).
func QR(a *Matrix) (*QRFactor, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, fmt.Errorf("mathx: QR requires rows >= cols, got %dx%d", m, n)
	}
	qr := a.Clone()
	rdia := make([]float64, n)
	for k := 0; k < n; k++ {
		// Compute 2-norm of column k below the diagonal.
		nrm := 0.0
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm != 0 {
			if qr.At(k, k) < 0 {
				nrm = -nrm
			}
			for i := k; i < m; i++ {
				qr.Set(i, k, qr.At(i, k)/nrm)
			}
			qr.Set(k, k, qr.At(k, k)+1)
			// Apply transformation to remaining columns.
			for j := k + 1; j < n; j++ {
				s := 0.0
				for i := k; i < m; i++ {
					s += qr.At(i, k) * qr.At(i, j)
				}
				s = -s / qr.At(k, k)
				for i := k; i < m; i++ {
					qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
				}
			}
		}
		rdia[k] = -nrm
	}
	return &QRFactor{qr: qr, rdia: rdia, m: m, n: n}, nil
}

// IsFullRank reports whether all diagonal entries of R are nonzero to
// working precision, scaled by the matrix magnitude.
func (f *QRFactor) IsFullRank() bool {
	tol := f.tol()
	for _, d := range f.rdia {
		if math.Abs(d) <= tol {
			return false
		}
	}
	return true
}

func (f *QRFactor) tol() float64 {
	maxDiag := 0.0
	for _, d := range f.rdia {
		if a := math.Abs(d); a > maxDiag {
			maxDiag = a
		}
	}
	return math.Max(float64(f.m), float64(f.n)) * 1e-13 * maxDiag
}

// Solve returns the least-squares solution x minimizing ||Ax - b||₂.
func (f *QRFactor) Solve(b []float64) ([]float64, error) {
	if len(b) != f.m {
		return nil, fmt.Errorf("mathx: Solve rhs length %d, want %d", len(b), f.m)
	}
	if !f.IsFullRank() {
		return nil, ErrSingular
	}
	x := make([]float64, f.m)
	copy(x, b)
	// Compute Qᵀ b.
	for k := 0; k < f.n; k++ {
		if f.qr.At(k, k) == 0 {
			continue
		}
		s := 0.0
		for i := k; i < f.m; i++ {
			s += f.qr.At(i, k) * x[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < f.m; i++ {
			x[i] += s * f.qr.At(i, k)
		}
	}
	// Back-substitute R x = Qᵀ b.
	for k := f.n - 1; k >= 0; k-- {
		x[k] /= f.rdia[k]
		for i := 0; i < k; i++ {
			x[i] -= x[k] * f.qr.At(i, k)
		}
	}
	return x[:f.n], nil
}

// RInverse returns R⁻¹ (n x n upper triangular inverse).
func (f *QRFactor) RInverse() (*Matrix, error) {
	if !f.IsFullRank() {
		return nil, ErrSingular
	}
	n := f.n
	inv := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		// Solve R x = e_j by back substitution.
		x := make([]float64, n)
		x[j] = 1
		for k := j; k >= 0; k-- {
			x[k] /= f.rdia[k]
			for i := 0; i < k; i++ {
				x[i] -= x[k] * f.qr.At(i, k)
			}
		}
		for i := 0; i <= j; i++ {
			inv.Set(i, j, x[i])
		}
	}
	return inv, nil
}

// SolveLeastSquares computes the OLS solution of X·β = y via QR. If X is
// rank deficient, it retries with a small ridge penalty so callers always
// get a usable (if regularized) fit; the returned bool reports whether the
// ridge fallback was used.
func SolveLeastSquares(x *Matrix, y []float64) (beta []float64, ridged bool, err error) {
	f, err := QR(x)
	if err != nil {
		return nil, false, err
	}
	beta, err = f.Solve(y)
	if err == nil {
		return beta, false, nil
	}
	if !errors.Is(err, ErrSingular) {
		return nil, false, err
	}
	beta, err = RidgeSolve(x, y, 1e-6)
	return beta, true, err
}

// RidgeSolve solves (XᵀX + λI)β = Xᵀy by augmenting the design matrix with
// √λ·I rows and running QR on the stacked system, which is numerically
// gentler than forming normal equations.
func RidgeSolve(x *Matrix, y []float64, lambda float64) ([]float64, error) {
	if lambda <= 0 {
		return nil, fmt.Errorf("mathx: ridge lambda must be positive, got %g", lambda)
	}
	m, n := x.Rows, x.Cols
	aug := NewMatrix(m+n, n)
	copy(aug.Data[:m*n], x.Data)
	s := math.Sqrt(lambda)
	for j := 0; j < n; j++ {
		aug.Set(m+j, j, s)
	}
	rhs := make([]float64, m+n)
	copy(rhs, y)
	f, err := QR(aug)
	if err != nil {
		return nil, err
	}
	return f.Solve(rhs)
}

// XtXInverse returns (XᵀX)⁻¹ computed from the QR factorization as
// R⁻¹·R⁻ᵀ. This is the covariance kernel needed for OLS standard errors.
func XtXInverse(x *Matrix) (*Matrix, error) {
	f, err := QR(x)
	if err != nil {
		return nil, err
	}
	rinv, err := f.RInverse()
	if err != nil {
		return nil, err
	}
	return rinv.Mul(rinv.Transpose())
}
