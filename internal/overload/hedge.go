package overload

import (
	"sort"
	"sync"
	"time"
)

// LatencyTracker keeps a rolling window of observed latencies and answers
// quantile queries, used to arm hedges "after the rolling per-peer p95".
type LatencyTracker struct {
	mu   sync.Mutex
	ring []float64 // seconds
	idx  int
	n    int
}

// minQuantileSamples is how many observations the tracker needs before it
// reports a quantile; below this, hedging stays disarmed.
const minQuantileSamples = 8

// NewLatencyTracker builds a tracker over the last window observations
// (default 128 when window <= 0).
func NewLatencyTracker(window int) *LatencyTracker {
	if window <= 0 {
		window = 128
	}
	return &LatencyTracker{ring: make([]float64, window)}
}

// Observe records one latency sample.
func (t *LatencyTracker) Observe(d time.Duration) {
	s := d.Seconds()
	if s < 0 {
		s = 0
	}
	t.mu.Lock()
	t.ring[t.idx] = s
	t.idx = (t.idx + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
}

// Quantile returns the q-quantile (0 < q < 1) of the window, or 0 if the
// tracker has not seen enough samples yet.
func (t *LatencyTracker) Quantile(q float64) time.Duration {
	t.mu.Lock()
	if t.n < minQuantileSamples {
		t.mu.Unlock()
		return 0
	}
	buf := make([]float64, t.n)
	if t.n < len(t.ring) {
		copy(buf, t.ring[:t.n])
	} else {
		copy(buf, t.ring)
	}
	t.mu.Unlock()
	sort.Float64s(buf)
	if q <= 0 {
		q = 0
	}
	if q >= 1 {
		return time.Duration(buf[len(buf)-1] * float64(time.Second))
	}
	i := int(q * float64(len(buf)))
	if i >= len(buf) {
		i = len(buf) - 1
	}
	return time.Duration(buf[i] * float64(time.Second))
}

// Count returns the number of samples currently in the window.
func (t *LatencyTracker) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// HedgeBudget is a token bucket that bounds hedges to a fraction of
// primary calls, so hedging can never amplify an overload: each primary
// call accrues Rate tokens (capped at Burst), each hedge spends one.
type HedgeBudget struct {
	mu     sync.Mutex
	tokens float64
	rate   float64
	burst  float64
}

// NewHedgeBudget builds a budget allowing roughly rate hedges per primary
// call with a burst allowance. rate <= 0 disables hedging entirely;
// burst <= 0 defaults to 8. The bucket starts full.
func NewHedgeBudget(rate, burst float64) *HedgeBudget {
	if burst <= 0 {
		burst = 8
	}
	if rate < 0 {
		rate = 0
	}
	return &HedgeBudget{tokens: burst, rate: rate, burst: burst}
}

// NotePrimary accrues budget for one primary call.
func (h *HedgeBudget) NotePrimary() {
	h.mu.Lock()
	h.tokens += h.rate
	if h.tokens > h.burst {
		h.tokens = h.burst
	}
	h.mu.Unlock()
}

// Allow spends one token if available, reporting whether a hedge may be
// launched.
func (h *HedgeBudget) Allow() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.rate <= 0 || h.tokens < 1 {
		return false
	}
	h.tokens--
	return true
}
