package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedClock() time.Time {
	return time.Date(2026, 8, 5, 10, 0, 0, 0, time.UTC)
}

func TestEventSinkEmitsJSONLines(t *testing.T) {
	var sb strings.Builder
	reg := NewRegistry()
	s := NewEventSinkAt(&sb, fixedClock, reg)
	if err := s.Emit("drift", map[string]any{"residual_x": 4.2, "t_s": 840}); err != nil {
		t.Fatal(err)
	}
	if err := s.Emit("retrain", nil); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if ev["event"] != "drift" || ev["seq"] != float64(1) || ev["residual_x"] != 4.2 {
		t.Errorf("event = %v", ev)
	}
	if ev["ts"] != "2026-08-05T10:00:00Z" {
		t.Errorf("ts = %v", ev["ts"])
	}
	if reg.Counter("chaos_events_total", Labels{"event": "drift"}).Value() != 1 {
		t.Error("event counter not incremented")
	}
	if s.Seq() != 2 {
		t.Errorf("Seq = %d, want 2", s.Seq())
	}
}

func TestEventSinkReservedKeysAndErrors(t *testing.T) {
	var sb strings.Builder
	s := NewEventSinkAt(&sb, fixedClock, NewRegistry())
	if err := s.Emit("", nil); err == nil {
		t.Error("expected error for empty event name")
	}
	// A field named "event" must not clobber the event name.
	if err := s.Emit("estimate", map[string]any{"event": "spoof", "watts": 100.0}); err != nil {
		t.Fatal(err)
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(sb.String())), &ev); err != nil {
		t.Fatal(err)
	}
	if ev["event"] != "estimate" || ev["_event"] != "spoof" {
		t.Errorf("reserved-key collision mishandled: %v", ev)
	}
	if err := s.Emit("bad", map[string]any{"ch": make(chan int)}); err == nil {
		t.Error("expected marshal error for unmarshalable field")
	}
}

// TestEventSinkConcurrent checks emits interleave without torn lines; run
// with -race.
func TestEventSinkConcurrent(t *testing.T) {
	var mu sync.Mutex
	var sb strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sb.Write(p)
	})
	s := NewEventSinkAt(w, fixedClock, NewRegistry())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := s.Emit("tick", map[string]any{"g": g, "i": i}); err != nil {
					t.Error(err)
				}
			}
		}(g)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	n := 0
	seen := map[float64]bool{}
	for sc.Scan() {
		n++
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v", n, err)
		}
		seq := ev["seq"].(float64)
		if seen[seq] {
			t.Errorf("duplicate seq %v", seq)
		}
		seen[seq] = true
	}
	if n != 800 {
		t.Errorf("got %d lines, want 800", n)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
