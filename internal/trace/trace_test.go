package trace

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

func buildTrace(t *testing.T, machine string, run int, n int) *Trace {
	t.Helper()
	b := NewBuilder("Core2", "Sort", machine, run, []string{"c0", "c1", "c2"}, 25)
	for i := 0; i < n; i++ {
		if err := b.Add([]float64{float64(i), float64(i * 2), 7}, 30+float64(i), 30.5+float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuilderBasics(t *testing.T) {
	tr := buildTrace(t, "m0", 0, 10)
	if tr.Len() != 10 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.X.At(3, 1) != 6 {
		t.Errorf("X(3,1) = %v", tr.X.At(3, 1))
	}
	if tr.Power[9] != 39 || tr.TruePower[9] != 39.5 {
		t.Errorf("power values wrong: %v %v", tr.Power[9], tr.TruePower[9])
	}
	if tr.IdleWatts != 25 {
		t.Errorf("IdleWatts = %v", tr.IdleWatts)
	}
}

func TestBuilderRowLengthCheck(t *testing.T) {
	b := NewBuilder("p", "w", "m", 0, []string{"a", "b"}, 1)
	if err := b.Add([]float64{1}, 2, 2); err == nil {
		t.Error("expected row length error")
	}
}

func TestBuilderEmptyTrace(t *testing.T) {
	b := NewBuilder("p", "w", "m", 0, []string{"a"}, 1)
	tr, err := b.Build()
	if err != nil {
		t.Fatalf("empty build: %v", err)
	}
	if tr.Len() != 0 || tr.X.Cols != 1 {
		t.Errorf("empty trace: len=%d cols=%d", tr.Len(), tr.X.Cols)
	}
}

func TestValidateCatchesMismatch(t *testing.T) {
	tr := buildTrace(t, "m0", 0, 5)
	tr.Power = tr.Power[:3]
	if err := tr.Validate(); err == nil {
		t.Error("expected validation error for truncated power")
	}
}

func TestPool(t *testing.T) {
	a := buildTrace(t, "m0", 0, 4)
	b := buildTrace(t, "m1", 0, 6)
	x, y, err := Pool([]*Trace{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows != 10 || x.Cols != 3 || len(y) != 10 {
		t.Fatalf("pooled dims %dx%d, %d responses", x.Rows, x.Cols, len(y))
	}
	if x.At(4, 0) != 0 || y[4] != 30 {
		t.Errorf("second trace rows misplaced: x=%v y=%v", x.At(4, 0), y[4])
	}
}

func TestPoolMismatchedNames(t *testing.T) {
	a := buildTrace(t, "m0", 0, 3)
	b := buildTrace(t, "m1", 0, 3)
	b.Names = []string{"c0", "cX", "c2"}
	if _, _, err := Pool([]*Trace{a, b}); err == nil {
		t.Error("expected error for mismatched counter names")
	}
	if _, _, err := Pool(nil); err == nil {
		t.Error("expected error for empty pool")
	}
}

func TestSubsample(t *testing.T) {
	tr := buildTrace(t, "m0", 0, 10)
	s := Subsample(tr, 3)
	if s.Len() != 4 {
		t.Fatalf("subsampled len = %d, want 4", s.Len())
	}
	if s.Power[1] != 33 {
		t.Errorf("subsample picked wrong rows: %v", s.Power)
	}
	if got := Subsample(tr, 1); got != tr {
		t.Error("step<=1 should return the original")
	}
}

func TestSelectColumns(t *testing.T) {
	tr := buildTrace(t, "m0", 0, 5)
	s, err := SelectColumns(tr, []string{"c2", "c0"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Names, []string{"c2", "c0"}) {
		t.Errorf("Names = %v", s.Names)
	}
	if s.X.At(2, 0) != 7 || s.X.At(2, 1) != 2 {
		t.Errorf("column selection wrong: %v %v", s.X.At(2, 0), s.X.At(2, 1))
	}
	if _, err := SelectColumns(tr, []string{"nope"}); err == nil {
		t.Error("expected error for unknown counter")
	}
}

func TestByRunAndRuns(t *testing.T) {
	traces := []*Trace{
		buildTrace(t, "m0", 2, 2),
		buildTrace(t, "m1", 0, 2),
		buildTrace(t, "m0", 0, 2),
		buildTrace(t, "m1", 1, 2),
	}
	groups := ByRun(traces)
	if len(groups) != 3 || len(groups[0]) != 2 {
		t.Errorf("ByRun groups wrong: %v", groups)
	}
	if !reflect.DeepEqual(Runs(traces), []int{0, 1, 2}) {
		t.Errorf("Runs = %v", Runs(traces))
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := buildTrace(t, "m0", 3, 7)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.Platform != tr.Platform || got.Workload != tr.Workload ||
		got.MachineID != tr.MachineID || got.Run != tr.Run {
		t.Errorf("metadata mismatch: %+v", got)
	}
	if got.IdleWatts != tr.IdleWatts {
		t.Errorf("IdleWatts = %v", got.IdleWatts)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("length mismatch")
	}
	for i := 0; i < tr.Len(); i++ {
		if math.Abs(got.Power[i]-tr.Power[i]) > 1e-12 {
			t.Fatalf("power[%d] mismatch", i)
		}
		for j := 0; j < tr.X.Cols; j++ {
			if math.Abs(got.X.At(i, j)-tr.X.At(i, j)) > 1e-12 {
				t.Fatalf("X(%d,%d) mismatch", i, j)
			}
		}
	}
	if !reflect.DeepEqual(got.Names, tr.Names) {
		t.Errorf("names mismatch: %v", got.Names)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := ReadCSV(strings.NewReader("# platform=p\nbogus,header\n")); err == nil {
		t.Error("expected error for bad header")
	}
	bad := "# platform=p workload=w machine=m run=0 idle_watts=1\npower_w,true_power_w,c0\nNaNope,1,2\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Error("expected error for unparsable power")
	}
}
