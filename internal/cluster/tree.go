package cluster

import (
	"fmt"

	"repro/internal/counters"
	"repro/internal/mathx"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Topology is a built, simulatable hierarchy: the Level tree plus a flat
// view of every machine. Build it from a validated Spec.
type Topology struct {
	Name string
	Seed int64
	Root *Level
	// Levels lists every interior node (root first, then depth-first),
	// so drivers can stream per-level series without re-walking the tree.
	Levels []*Level
	// Machines indexes every leaf by its event index.
	Machines []*MachineNode
}

// Level is one interior node of the hierarchy (datacenter, row, or
// rack). It caches the summed watts of its subtree and a dirty bit; an
// event dirties only its machine's path to the root, and reads recompute
// only dirty nodes.
type Level struct {
	Name  string
	Depth int // root = 1

	parent   *Level
	Children []*Level
	Machines []*MachineNode // non-empty only on racks

	watts float64
	dirty bool

	// budget is an optional power cap in watts for this subtree, set by a
	// capping policy. Zero means unbudgeted. The tree only stores it; the
	// control loop decides how to enforce it.
	budget float64
}

// SetBudget installs (or clears, with 0) a power budget on this level.
func (l *Level) SetBudget(watts float64) { l.budget = watts }

// Budget returns the level's power budget in watts (0 = unbudgeted).
func (l *Level) Budget() float64 { return l.budget }

// Headroom returns budget minus current aggregate watts. It is negative
// when the subtree is over budget and meaningless (0, false) when no
// budget is set.
func (l *Level) Headroom() (float64, bool) {
	if l.budget <= 0 {
		return 0, false
	}
	return l.budget - l.Watts(), true
}

// MachineNode is one simulated machine: the unchanged sim.Machine leaf
// evaluator plus its fleet profile, burst stream, and current power
// estimate.
type MachineNode struct {
	ID      string
	Index   int
	Machine *sim.Machine
	Profile *workloads.FleetProfile

	parent *Level
	rng    *mathx.SplitMix64 // burst schedule stream
	watts  float64

	// trueWatts mirrors the sim's hidden ground-truth meter (TrueWatts on
	// step, idle watts when parked). It exists so verification can close
	// the loop against reality; the control plane must never read it.
	trueWatts float64

	// Burst state. A machine is either idle (no pending event beyond its
	// next wake) or inside a burst with a precomputed per-second demand.
	active       bool
	burstEnd     int64
	demand       sim.Demand
	pendingDur   int64
	pendingLevel float64
	// pendingWake is true while a wake event sits in the heap, so profile
	// migration can tell "parked forever" from "parked until its wake".
	pendingWake bool

	// capture switches the machine's steps to the full-signals path so
	// drivers can export its counter vector (for /v1/estimate/cluster).
	capture bool
	lastSig counters.Signals
}

// Watts returns the machine's current power estimate in watts.
func (m *MachineNode) Watts() float64 { return m.watts }

// TrueWatts returns the machine's hidden ground-truth power. Verification
// only: a controller reading this is cheating.
func (m *MachineNode) TrueWatts() float64 { return m.trueWatts }

// Active reports whether the machine is inside a burst.
func (m *MachineNode) Active() bool { return m.active }

// Rack returns the level the machine hangs off.
func (m *MachineNode) Rack() *Level { return m.parent }

// Build turns a validated spec into a simulatable topology. Machine
// seeds, burst streams, and (for grids) platform/profile assignment all
// derive from the spec seed, so the same document always builds the same
// fleet.
func Build(s *Spec) (*Topology, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	tree := s.Tree
	if s.Grid != nil {
		tree = s.Grid.expandTree(s.Name, s.Seed)
	}
	topo := &Topology{Name: s.Name, Seed: s.Seed}
	root, err := topo.buildLevel(tree, nil, 1)
	if err != nil {
		return nil, err
	}
	topo.Root = root
	// Seed the aggregates: everything starts dirty so the first read
	// performs one full bottom-up sum.
	for _, l := range topo.Levels {
		l.dirty = true
	}
	return topo, nil
}

func (t *Topology) buildLevel(n *Node, parent *Level, depth int) (*Level, error) {
	l := &Level{Name: n.Name, Depth: depth, parent: parent}
	t.Levels = append(t.Levels, l)
	for _, ms := range n.Machines {
		spec, err := sim.Platform(ms.Platform)
		if err != nil {
			return nil, err
		}
		kind := ms.Profile
		if kind == "" {
			kind = workloads.ProfileBursty
		}
		prof, err := workloads.FleetProfileByName(kind)
		if err != nil {
			return nil, err
		}
		m, err := sim.NewMachine(spec, ms.ID, mathx.DeriveSeed(t.Seed, "m:"+ms.ID))
		if err != nil {
			return nil, fmt.Errorf("cluster: building machine %q: %w", ms.ID, err)
		}
		mn := &MachineNode{
			ID:      ms.ID,
			Index:   len(t.Machines),
			Machine: m,
			Profile: prof,
			parent:  l,
			rng:     mathx.NewSplitMix(mathx.DeriveSeed(t.Seed, "burst:"+ms.ID)),
			watts:   m.IdleWatts(),
		}
		mn.trueWatts = m.IdleWatts()
		l.Machines = append(l.Machines, mn)
		t.Machines = append(t.Machines, mn)
	}
	for _, c := range n.Children {
		cl, err := t.buildLevel(c, l, depth+1)
		if err != nil {
			return nil, err
		}
		l.Children = append(l.Children, cl)
	}
	return l, nil
}

// Watts returns the level's aggregate power, recomputing only dirty
// subtrees. A clean node returns its cached sum unchanged, and a dirty
// node re-adds the same children in the same slice order as a full
// recompute would — which is why the incremental total is bit-identical
// to FullRecompute, not merely close.
func (l *Level) Watts() float64 {
	if !l.dirty {
		return l.watts
	}
	var sum float64
	if len(l.Machines) > 0 {
		for _, m := range l.Machines {
			sum += m.watts
		}
	} else {
		for _, c := range l.Children {
			sum += c.Watts()
		}
	}
	l.watts = sum
	l.dirty = false
	return sum
}

// GroundTruthWatts re-sums the subtree over the hidden per-machine
// TrueWatts. It bypasses the incremental cache on purpose: it is the
// verification meter a capping run is judged against, never a control
// input, so it does not need (or get) the dirty-bit fast path.
func (l *Level) GroundTruthWatts() float64 {
	var sum float64
	if len(l.Machines) > 0 {
		for _, m := range l.Machines {
			sum += m.trueWatts
		}
	} else {
		for _, c := range l.Children {
			sum += c.GroundTruthWatts()
		}
	}
	return sum
}

// FindLevel returns the first level (root first, depth-first) with the
// given name. Capping policies address budget targets this way.
func (t *Topology) FindLevel(name string) (*Level, bool) {
	for _, l := range t.Levels {
		if l.Name == name {
			return l, true
		}
	}
	return nil, false
}

// FullRecompute ignores every cache and dirty bit and re-sums the whole
// subtree. The composability property test holds Watts() to this value
// bit-for-bit after every event.
func (l *Level) FullRecompute() float64 {
	var sum float64
	if len(l.Machines) > 0 {
		for _, m := range l.Machines {
			sum += m.watts
		}
	} else {
		for _, c := range l.Children {
			sum += c.FullRecompute()
		}
	}
	return sum
}

// markDirty invalidates the path from this level to the root, stopping
// at the first already-dirty ancestor (its path is already invalid).
func (l *Level) markDirty() {
	for n := l; n != nil && !n.dirty; n = n.parent {
		n.dirty = true
	}
}
