package control

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/workloads"
)

// Config wires a Controller to its collaborators.
type Config struct {
	// Policy is the capping policy to enforce. Required.
	Policy *Policy
	// Registry supplies the admitted models the controller predicts with.
	// Required, with an active version covering every platform under a
	// budget.
	Registry *registry.Registry
	// Faults optionally injects meter dropout: while the meter is down
	// the controller senses through model predictions and never relaxes
	// caps (safe-hold).
	Faults *faults.Injector
	// Events optionally receives cap_violation / cap_recovered events.
	Events *obs.EventSink
}

// target is one resolved budget: the level, its machines (deterministic
// topology order), and the violation latch.
type target struct {
	name     string
	level    *cluster.Level
	budget   float64
	machines []*cluster.MachineNode
	// floor is the level's summed idle watts: no amount of capping or
	// migration can push metered power below it. A budget under the
	// floor is infeasible and flagged rather than silently thrashed at.
	floor float64

	violating  bool
	infeasible bool // cap_infeasible emitted once per policy
	sensed     float64

	gBudget, gActual, gHeadroom *obs.Gauge
}

// Controller runs the sense→predict→decide→actuate loop. All scheduling
// goes through the simulator's actuation events, so a controlled run is
// exactly as deterministic (and digest-reproducible) as an uncontrolled
// one. The mutex exists for the HTTP surface (StatusJSON /
// ApplyPolicyJSON), which may run off the simulation goroutine.
type Controller struct {
	mu   sync.Mutex
	cs   *cluster.ClusterSimulator
	pol  *Policy
	reg  *registry.Registry
	inj  *faults.Injector
	sink *obs.EventSink

	targets   []*target
	platforms []string
	// spares are idle-profile machines outside every budget, ascending
	// index; each migration consumes one.
	spares []int

	cooldownUntil []int64 // per machine: frozen until this simulated second

	modelVersion string
	modelTicks   int64 // ticks since the active model last changed
	builders     map[string]*rowBuilder

	ticks      int64
	decisions  int64 // what-if candidate evaluations
	freqActs   int64
	migActs    int64
	seq        uint32
	started    bool
}

var (
	actFreqTotal = obs.Default().Counter("chaos_actuations_total", obs.Labels{"kind": "freq_cap"})
	actMigTotal  = obs.Default().Counter("chaos_actuations_total", obs.Labels{"kind": "migration"})
)

// New builds a controller for the simulator: resolves every budget
// against the topology, verifies the active model covers every budgeted
// platform with control-derivable inputs, and inventories migration
// spares. It does not schedule anything until Start.
func New(cs *cluster.ClusterSimulator, cfg Config) (*Controller, error) {
	if cfg.Policy == nil {
		return nil, fmt.Errorf("control: nil policy")
	}
	if err := cfg.Policy.Validate(); err != nil {
		return nil, err
	}
	if cfg.Registry == nil || cfg.Registry.Active() == nil {
		return nil, fmt.Errorf("control: registry with an active model required")
	}
	c := &Controller{
		cs:            cs,
		pol:           cfg.Policy,
		reg:           cfg.Registry,
		inj:           cfg.Faults,
		sink:          cfg.Events,
		cooldownUntil: make([]int64, len(cs.Topology().Machines)),
	}
	targets, err := c.resolveTargets(cfg.Policy)
	if err != nil {
		return nil, err
	}
	c.targets = targets
	c.platforms = platformsOf(targets)
	e := c.reg.Active()
	builders, err := buildersFor(e, c.platforms)
	if err != nil {
		return nil, err
	}
	c.builders = builders
	c.modelVersion = e.Version

	inTarget := map[int]bool{}
	for _, t := range targets {
		for _, mn := range t.machines {
			inTarget[mn.Index] = true
		}
	}
	for _, mn := range cs.Topology().Machines {
		if !inTarget[mn.Index] && mn.Profile.Kind == workloads.ProfileIdle {
			c.spares = append(c.spares, mn.Index)
		}
	}
	return c, nil
}

func (c *Controller) resolveTargets(p *Policy) ([]*target, error) {
	topo := c.cs.Topology()
	var out []*target
	for _, b := range p.Budgets {
		l, ok := topo.FindLevel(b.Level)
		if !ok {
			return nil, fmt.Errorf("control: budget level %q not in topology", b.Level)
		}
		l.SetBudget(b.Watts)
		lbl := obs.Labels{"level": b.Level}
		machines := machinesUnder(l)
		floor := 0.0
		for _, mn := range machines {
			floor += mn.Machine.IdleWatts()
		}
		out = append(out, &target{
			name:      b.Level,
			level:     l,
			budget:    b.Watts,
			machines:  machines,
			floor:     floor,
			gBudget:   obs.Default().Gauge("chaos_cap_budget_watts", lbl),
			gActual:   obs.Default().Gauge("chaos_cap_actual_watts", lbl),
			gHeadroom: obs.Default().Gauge("chaos_cap_headroom_watts", lbl),
		})
	}
	return out, nil
}

func machinesUnder(l *cluster.Level) []*cluster.MachineNode {
	if len(l.Machines) > 0 {
		out := make([]*cluster.MachineNode, len(l.Machines))
		copy(out, l.Machines)
		return out
	}
	var out []*cluster.MachineNode
	for _, ch := range l.Children {
		out = append(out, machinesUnder(ch)...)
	}
	return out
}

func platformsOf(ts []*target) []string {
	seen := map[string]bool{}
	var out []string
	for _, t := range ts {
		for _, mn := range t.machines {
			if p := mn.Machine.Spec.Name; !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	sort.Strings(out)
	return out
}

func buildersFor(e *registry.Entry, platforms []string) (map[string]*rowBuilder, error) {
	out := map[string]*rowBuilder{}
	for _, p := range platforms {
		mm, ok := e.Model.ByPlatform[p]
		if !ok {
			return nil, fmt.Errorf("control: active model %q has no machine model for platform %q", e.Version, p)
		}
		rb, err := newRowBuilder(mm.Spec)
		if err != nil {
			return nil, fmt.Errorf("control: model %q platform %q: %w", e.Version, p, err)
		}
		out[p] = rb
	}
	return out, nil
}

// Start schedules the first control tick one interval from the current
// simulated second. Idempotent.
func (c *Controller) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return
	}
	c.started = true
	c.cs.ScheduleActuation(c.cs.Clock()+c.pol.IntervalS, c.tick)
}

// tick is one control cycle. It runs inside the simulator's event loop
// (as an actuation event), strictly before any machine step of the same
// second.
func (c *Controller) tick(now int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ticks++
	c.refreshModel()
	meterOK := c.inj == nil || c.inj.MeterAvailable(int(now))
	for _, t := range c.targets {
		sensed := c.sense(t, meterOK)
		t.sensed = sensed
		c.seq++
		c.cs.RecordControl(cluster.CtlTick, c.seq&0x0fff_ffff, sensed)
		t.gBudget.Set(t.budget)
		t.gActual.Set(sensed)
		t.gHeadroom.Set(t.budget - sensed)
		if t.budget < t.floor && !t.infeasible {
			// Shedding continues best-effort, but the operator must know
			// the budget cannot be met by any actuation this controller
			// has: the level's idle floor alone exceeds it.
			t.infeasible = true
			c.emit("cap_infeasible", map[string]any{
				"level": t.name, "t": now,
				"budget_watts": t.budget, "idle_floor_watts": t.floor,
			})
		}
		if sensed > t.budget {
			if !t.violating {
				t.violating = true
				c.emit("cap_violation", map[string]any{
					"level": t.name, "t": now,
					"budget_watts": t.budget, "sensed_watts": sensed,
				})
			}
		} else if t.violating && sensed <= t.budget-c.pol.HysteresisWatts {
			t.violating = false
			c.emit("cap_recovered", map[string]any{
				"level": t.name, "t": now,
				"budget_watts": t.budget, "sensed_watts": sensed,
			})
		}
		switch {
		case sensed > t.budget-c.pol.HysteresisWatts:
			c.shed(t, sensed-(t.budget-c.pol.HysteresisWatts), now, sensed > t.budget)
		case meterOK && sensed < t.budget-2*c.pol.HysteresisWatts:
			// Relaxing is only safe when the meter confirms the slack;
			// during dropout the controller holds caps where they are.
			c.relax(t, t.budget-2*c.pol.HysteresisWatts-sensed, now)
		}
	}
	c.cs.ScheduleActuation(now+c.pol.IntervalS, c.tick)
}

// refreshModel follows registry hot-swaps: when the active version
// changes, input builders are rebuilt; if the new model is unusable for
// control the old one is kept (and the staleness counter keeps growing).
func (c *Controller) refreshModel() {
	e := c.reg.Active()
	if e == nil || e.Version == c.modelVersion {
		c.modelTicks++
		return
	}
	builders, err := buildersFor(e, c.platforms)
	if err != nil {
		c.modelTicks++
		return
	}
	c.builders = builders
	c.modelVersion = e.Version
	c.modelTicks = 0
}

// sense returns the target's power as the controller is allowed to see
// it: the metered aggregate when the meter is up, otherwise the sum of
// admitted-model predictions from control-plane signals.
func (c *Controller) sense(t *target, meterOK bool) float64 {
	if meterOK {
		return t.level.Watts()
	}
	e := c.reg.Active()
	var sum float64
	for _, mn := range t.machines {
		sum += math.Max(0, c.predictNow(e, mn))
	}
	return sum
}

// predictNow evaluates the admitted model at the machine's current
// control-plane state.
func (c *Controller) predictNow(e *registry.Entry, mn *cluster.MachineNode) float64 {
	spec := mn.Machine.Spec
	mm := e.Model.ByPlatform[spec.Name]
	rb := c.builders[spec.Name]
	if mm == nil || rb == nil {
		return mn.Watts() // last recorded value: better than inventing zero
	}
	util, f := mn.Machine.LastCoreState()
	if f <= 0 { // parked in C1
		util, f = 0, spec.FreqStatesMHz[0]
	}
	return rb.predict(mm.Model, util, f)
}

type candidate struct {
	idx    int
	state  int     // target P-state cap for shed candidates
	saving float64 // predicted watts shed (or added, for relax)
	loss   float64 // predicted served-core loss
	score  float64
}

// shedConservatism discounts predicted savings when deciding how much
// more to shed: the model is evaluated at the instantaneous core state,
// but bursts arriving before the next tick erode whatever it promised.
// Without the discount the greedy stops exactly at the predicted budget
// line and the rack rides the boundary, violating on every burst.
const shedConservatism = 0.6

// shed brings the target back under budget: rank cap-down candidates —
// every reachable lower P-state of every capable machine — by predicted
// marginal watts per unit throughput lost, apply greedily (one cap write
// per machine per tick) until discounted predicted savings cover the
// excess or the per-tick actuation budget runs out, then fall back to
// migrating the hottest workloads onto spares outside every budget.
// While the target is in hard violation (sensed above budget, not merely
// inside the hysteresis band) the per-machine cooldown is bypassed:
// anti-thrash protection must not slow an emergency response.
func (c *Controller) shed(t *target, excess float64, now int64, hard bool) {
	e := c.reg.Active()
	var cands []candidate
	for _, mn := range t.machines {
		idx := mn.Index
		if (!hard && c.cooldownUntil[idx] > now) || !mn.Active() {
			continue
		}
		spec := mn.Machine.Spec
		capIdx := mn.Machine.FreqCap()
		if capIdx == 0 {
			continue // already at the floor; only migration can help
		}
		mm := e.Model.ByPlatform[spec.Name]
		rb := c.builders[spec.Name]
		if mm == nil || rb == nil {
			continue
		}
		util, f := mn.Machine.LastCoreState()
		if f <= 0 {
			continue
		}
		wNow := rb.predict(mm.Model, util, f)
		for k := capIdx - 1; k >= 0; k-- {
			c.decisions++
			wK, loss := whatIf(rb, mm.Model, spec, util, f, k)
			saving := wNow - wK
			if saving <= 0 {
				continue
			}
			cands = append(cands, candidate{idx: idx, state: k, saving: saving, loss: loss, score: saving / (loss + 0.01)})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		if cands[i].idx != cands[j].idx {
			return cands[i].idx < cands[j].idx
		}
		return cands[i].state < cands[j].state
	})
	remaining := excess
	acted := 0
	actedThisTick := make(map[int]bool)
	for _, cd := range cands {
		if remaining <= 0 || acted >= c.pol.MaxActuationsPerTick {
			break
		}
		if actedThisTick[cd.idx] {
			continue // one cap write per machine per tick
		}
		if err := c.cs.SetMachineFreqCap(cd.idx, cd.state); err != nil {
			continue
		}
		actedThisTick[cd.idx] = true
		c.cooldownUntil[cd.idx] = now + int64(c.pol.CooldownTicks)*c.pol.IntervalS
		c.freqActs++
		actFreqTotal.Inc()
		remaining -= cd.saving * shedConservatism
		acted++
	}
	if remaining <= 0 || !c.pol.Migration.Enabled || len(c.spares) == 0 {
		return
	}
	// Caps alone cannot reach the budget (DVFS cannot cut below the idle
	// floor): move the hottest workloads out of the budgeted subtree.
	var hot []candidate
	for _, mn := range t.machines {
		idx := mn.Index
		if actedThisTick[idx] || (!hard && c.cooldownUntil[idx] > now) {
			continue
		}
		if mn.Profile.Kind == workloads.ProfileIdle {
			continue // nothing to move
		}
		c.decisions++
		wNow := math.Max(0, c.predictNow(e, mn))
		idleW := mn.Machine.IdleWatts()
		saving := wNow - idleW
		if saving <= 0 {
			// The model can under-predict a frequency-capped or parked
			// machine below its true idle floor, which would starve
			// migration exactly when caps have run out of room. In hard
			// violation keep such machines eligible with a token saving:
			// the per-tick migration limit still bounds the response, and
			// moving any non-idle profile off the rack frees real watts
			// the next time it bursts.
			if !hard {
				continue
			}
			saving = 1
		}
		hot = append(hot, candidate{idx: idx, saving: saving, score: saving})
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].score != hot[j].score {
			return hot[i].score > hot[j].score
		}
		return hot[i].idx < hot[j].idx
	})
	migs := 0
	for _, cd := range hot {
		if remaining <= 0 || migs >= c.pol.Migration.MaxPerTick || len(c.spares) == 0 {
			break
		}
		dst := c.spares[0]
		if err := c.cs.MigrateProfile(cd.idx, dst); err != nil {
			continue
		}
		c.spares = c.spares[1:]
		c.cooldownUntil[cd.idx] = now + int64(c.pol.CooldownTicks)*c.pol.IntervalS
		c.migActs++
		actMigTotal.Inc()
		remaining -= cd.saving * shedConservatism
		migs++
	}
}

// relax steps caps back up when the meter confirms slack, cheapest
// predicted watts first, never exceeding the available margin.
func (c *Controller) relax(t *target, margin float64, now int64) {
	e := c.reg.Active()
	var cands []candidate
	for _, mn := range t.machines {
		idx := mn.Index
		if c.cooldownUntil[idx] > now {
			continue
		}
		spec := mn.Machine.Spec
		capIdx := mn.Machine.FreqCap()
		if capIdx >= len(spec.FreqStatesMHz)-1 {
			continue
		}
		mm := e.Model.ByPlatform[spec.Name]
		rb := c.builders[spec.Name]
		if mm == nil || rb == nil {
			continue
		}
		util, f := mn.Machine.LastCoreState()
		if f <= 0 {
			util, f = 0, spec.FreqStatesMHz[0]
		}
		c.decisions++
		wNow := rb.predict(mm.Model, util, f)
		wUp, _ := whatIf(rb, mm.Model, spec, util, f, capIdx+1)
		dW := math.Max(wUp-wNow, 0)
		// Saturated machines gain the most throughput per watt returned.
		cands = append(cands, candidate{idx: idx, saving: dW, score: util / (dW + 0.01)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].idx < cands[j].idx
	})
	spent := 0.0
	acted := 0
	for _, cd := range cands {
		if acted >= c.pol.MaxActuationsPerTick || spent+cd.saving > margin {
			break
		}
		mn := c.cs.Topology().Machines[cd.idx]
		if err := c.cs.SetMachineFreqCap(cd.idx, mn.Machine.FreqCap()+1); err != nil {
			continue
		}
		c.cooldownUntil[cd.idx] = now + int64(c.pol.CooldownTicks)*c.pol.IntervalS
		c.freqActs++
		actFreqTotal.Inc()
		spent += cd.saving
		acted++
	}
}

func (c *Controller) emit(event string, fields map[string]any) {
	if c.sink == nil {
		return
	}
	_ = c.sink.Emit(event, fields)
}

// TargetStatus is one budget's live state.
type TargetStatus struct {
	Level         string  `json:"level"`
	BudgetWatts   float64 `json:"budget_watts"`
	SensedWatts   float64 `json:"sensed_watts"`
	HeadroomWatts float64 `json:"headroom_watts"`
	// IdleFloorWatts is the level's summed idle power; a budget below it
	// is reported infeasible.
	IdleFloorWatts float64 `json:"idle_floor_watts"`
	Infeasible     bool    `json:"infeasible,omitempty"`
	Violating      bool    `json:"violating"`
	Machines       int     `json:"machines"`
}

// Status is the /v1/control/status document.
type Status struct {
	Policy       string         `json:"policy"`
	IntervalS    int64          `json:"interval_s"`
	ModelVersion string         `json:"model_version"`
	ModelTicks   int64          `json:"model_ticks_stale"`
	Ticks        int64          `json:"ticks"`
	Decisions    int64          `json:"decisions"`
	FreqCapActs  int64          `json:"freq_cap_actuations"`
	Migrations   int64          `json:"migrations"`
	SparesLeft   int            `json:"spares_left"`
	Targets      []TargetStatus `json:"targets"`
}

// StatusJSON implements the serve.Control surface.
func (c *Controller) StatusJSON() any {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Status{
		Policy:       c.pol.Name,
		IntervalS:    c.pol.IntervalS,
		ModelVersion: c.modelVersion,
		ModelTicks:   c.modelTicks,
		Ticks:        c.ticks,
		Decisions:    c.decisions,
		FreqCapActs:  c.freqActs,
		Migrations:   c.migActs,
		SparesLeft:   len(c.spares),
	}
	for _, t := range c.targets {
		s.Targets = append(s.Targets, TargetStatus{
			Level:          t.name,
			BudgetWatts:    t.budget,
			SensedWatts:    t.sensed,
			HeadroomWatts:  t.budget - t.sensed,
			IdleFloorWatts: t.floor,
			Infeasible:     t.budget < t.floor,
			Violating:      t.violating,
			Machines:       len(t.machines),
		})
	}
	return s
}

// ApplyPolicyJSON swaps in a new chaos-capping/v1 policy document at the
// next tick boundary: budgets are re-resolved against the topology, old
// budgets are cleared, and the violation latches reset. The running tick
// schedule is kept; the new interval takes effect from the next
// reschedule.
func (c *Controller) ApplyPolicyJSON(doc []byte) error {
	p, err := ParsePolicy(doc)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, t := range c.targets {
		t.level.SetBudget(0)
	}
	targets, err := c.resolveTargets(p)
	if err != nil {
		// Restore the previous budgets: the old policy stays in force.
		for _, t := range c.targets {
			t.level.SetBudget(t.budget)
		}
		return err
	}
	c.pol = p
	c.targets = targets
	c.platforms = platformsOf(targets)
	if builders, berr := buildersFor(c.reg.Active(), c.platforms); berr == nil {
		c.builders = builders
	}
	return nil
}

// Stats returns cumulative loop counters (ticks, candidate evaluations,
// cap actuations, migrations).
func (c *Controller) Stats() (ticks, decisions, freqActs, migActs int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ticks, c.decisions, c.freqActs, c.migActs
}
