package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runBenchCLI runs realMain with a tiny grid into dir and returns the
// decoded document.
func runBenchCLI(t *testing.T, out string, seed string) Doc {
	t.Helper()
	var stdout, stderr bytes.Buffer
	args := []string{
		"-out", out, "-seed", seed,
		"-machines", "2,3", "-batches", "1,8", "-snapshots", "120",
	}
	if code := realMain(args, &stdout, &stderr); code != 0 {
		t.Fatalf("chaos-bench exited %d: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc Doc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestBenchGridAndCheck runs a small grid end to end: the document must
// carry the full machines x batches grid, validate under -check, and
// record the tracing-overhead pair.
func TestBenchGridAndCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("boots real servers")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	doc := runBenchCLI(t, out, "7")
	if doc.Schema != Schema {
		t.Fatalf("schema %q", doc.Schema)
	}
	if len(doc.Cells) != 4 {
		t.Fatalf("want 2x2 grid, got %d cells", len(doc.Cells))
	}
	for _, c := range doc.Cells {
		if c.EstimatesPerSec <= 0 || c.Failed != 0 {
			t.Fatalf("bad cell: %+v", c)
		}
		wantEndpoint := "/v1/estimate/batch"
		if c.Batch == 1 {
			wantEndpoint = "/v1/estimate"
		}
		if c.Endpoint != wantEndpoint {
			t.Fatalf("cell batch=%d endpoint %q", c.Batch, c.Endpoint)
		}
	}
	if doc.TraceOverhead == nil || doc.TraceOverhead.BaseEstPerSec <= 0 {
		t.Fatalf("tracing overhead pair missing: %+v", doc.TraceOverhead)
	}
	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"-check", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("-check failed: %s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "ok") {
		t.Fatalf("check output: %s", stdout.String())
	}
}

// TestBenchDigestReproducible: the same seed must replay a byte-identical
// workload (the digest proves it); a different seed must not.
func TestBenchDigestReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("boots real servers")
	}
	dir := t.TempDir()
	a := runBenchCLI(t, filepath.Join(dir, "a.json"), "7")
	b := runBenchCLI(t, filepath.Join(dir, "b.json"), "7")
	c := runBenchCLI(t, filepath.Join(dir, "c.json"), "8")
	if a.WorkloadDigest != b.WorkloadDigest {
		t.Fatalf("same seed, different workloads: %s vs %s", a.WorkloadDigest, b.WorkloadDigest)
	}
	if a.WorkloadDigest == c.WorkloadDigest {
		t.Fatal("different seeds produced the same workload digest")
	}
}

// TestBenchCheckRejectsBadDocs: -check must fail on schema drift and on
// cells that record failures.
func TestBenchCheckRejectsBadDocs(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, doc Doc) string {
		data, _ := json.Marshal(doc)
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	digest := strings.Repeat("ab", 32)
	good := Cell{Machines: 3, Batch: 1, Snapshots: 10, EstimatesPerSec: 100, P50Ms: 1, P99Ms: 2}
	cases := map[string]Doc{
		"schema.json": {Schema: "chaos-bench/v0", WorkloadDigest: digest, Cells: []Cell{good}},
		"digest.json": {Schema: Schema, Cells: []Cell{good}},
		"failed.json": {Schema: Schema, WorkloadDigest: digest,
			Cells: []Cell{{Machines: 3, Batch: 1, Snapshots: 10, EstimatesPerSec: 100, Failed: 2}}},
		"tail.json": {Schema: Schema, WorkloadDigest: digest,
			Cells: []Cell{{Machines: 3, Batch: 1, Snapshots: 10, EstimatesPerSec: 100, P50Ms: 5, P99Ms: 1}}},
	}
	for name, doc := range cases {
		var stdout, stderr bytes.Buffer
		if code := realMain([]string{"-check", write(name, doc)}, &stdout, &stderr); code == 0 {
			t.Errorf("%s: -check accepted a bad document", name)
		}
	}
}
