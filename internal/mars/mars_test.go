package mars

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func TestHingeEval(t *testing.T) {
	pos := Hinge{Var: 0, Knot: 2, Sign: +1}
	neg := Hinge{Var: 0, Knot: 2, Sign: -1}
	cases := []struct {
		x, wantPos, wantNeg float64
	}{
		{0, 0, 2},
		{2, 0, 0},
		{5, 3, 0},
	}
	for _, c := range cases {
		if got := pos.Eval(c.x); got != c.wantPos {
			t.Errorf("pos.Eval(%v) = %v, want %v", c.x, got, c.wantPos)
		}
		if got := neg.Eval(c.x); got != c.wantNeg {
			t.Errorf("neg.Eval(%v) = %v, want %v", c.x, got, c.wantNeg)
		}
	}
}

func TestTermEval(t *testing.T) {
	intercept := Term{}
	if intercept.Eval([]float64{1, 2}) != 1 {
		t.Error("intercept term should evaluate to 1")
	}
	prod := Term{Factors: []Hinge{
		{Var: 0, Knot: 1, Sign: +1},
		{Var: 1, Knot: 3, Sign: -1},
	}}
	// (2-1) * (3-2) = 1.
	if got := prod.Eval([]float64{2, 2}); got != 1 {
		t.Errorf("product term = %v, want 1", got)
	}
	// First factor zero short-circuits.
	if got := prod.Eval([]float64{0, 2}); got != 0 {
		t.Errorf("zero factor = %v, want 0", got)
	}
}

func TestFitValidation(t *testing.T) {
	x := mathx.NewMatrix(5, 1)
	if _, err := Fit(x, make([]float64, 4), Options{}); err == nil {
		t.Error("expected length mismatch error")
	}
	if _, err := Fit(x, make([]float64, 5), Options{}); err == nil {
		t.Error("expected too-few-rows error")
	}
	if _, err := Fit(mathx.NewMatrix(20, 0), make([]float64, 20), Options{}); err == nil {
		t.Error("expected no-variables error")
	}
}

// genPiecewise builds data from a known piecewise-linear function of one
// variable with a kink at 5.
func genPiecewise(seed int64, n int, noise float64) (*mathx.Matrix, []float64) {
	r := rand.New(rand.NewSource(seed))
	x := mathx.NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := r.Float64() * 10
		x.Set(i, 0, v)
		f := 2 * v
		if v > 5 {
			f = 10 + 6*(v-5) // slope change at the knot
		}
		y[i] = f + r.NormFloat64()*noise
	}
	return x, y
}

func rmse(m *Model, x *mathx.Matrix, y []float64) float64 {
	s := 0.0
	for i := 0; i < x.Rows; i++ {
		d := m.Predict(x.Row(i)) - y[i]
		s += d * d
	}
	return math.Sqrt(s / float64(x.Rows))
}

func TestFitPiecewiseLinear(t *testing.T) {
	x, y := genPiecewise(30, 400, 0.1)
	m, err := Fit(x, y, Options{MaxDegree: 1, MaxTerms: 11, MaxKnots: 20})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if e := rmse(m, x, y); e > 0.5 {
		t.Errorf("training RMSE = %v, want < 0.5", e)
	}
	// Out-of-sample check.
	xt, yt := genPiecewise(31, 200, 0.1)
	if e := rmse(m, xt, yt); e > 0.7 {
		t.Errorf("test RMSE = %v, want < 0.7", e)
	}
	if m.NumTerms() < 2 {
		t.Errorf("model has %d terms, expected hinge terms beyond intercept", m.NumTerms())
	}
	if m.NumInputs != 1 {
		t.Errorf("NumInputs = %d", m.NumInputs)
	}
}

func TestFitLinearFunctionStaysSimple(t *testing.T) {
	// Pure linear data: a handful of hinge pairs can represent a line;
	// the key property is near-zero error, and GCV pruning should keep
	// the model modest.
	r := rand.New(rand.NewSource(32))
	n := 300
	x := mathx.NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := r.Float64() * 4
		x.Set(i, 0, v)
		y[i] = 3 + 2*v + r.NormFloat64()*0.05
	}
	m, err := Fit(x, y, Options{MaxDegree: 1})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if e := rmse(m, x, y); e > 0.2 {
		t.Errorf("RMSE on linear data = %v", e)
	}
	if m.NumTerms() > 9 {
		t.Errorf("GCV kept %d terms on linear data, expected pruning", m.NumTerms())
	}
}

func TestFitInteraction(t *testing.T) {
	// y depends on the product x0*x1 (for positive values): degree-2
	// MARS should fit it far better than degree-1.
	r := rand.New(rand.NewSource(33))
	n := 500
	x := mathx.NewMatrix(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a := r.Float64() * 4
		b := r.Float64() * 4
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y[i] = a*b + r.NormFloat64()*0.05
	}
	m1, err := Fit(x, y, Options{MaxDegree: 1, MaxTerms: 13})
	if err != nil {
		t.Fatalf("Fit d1: %v", err)
	}
	m2, err := Fit(x, y, Options{MaxDegree: 2, MaxTerms: 13})
	if err != nil {
		t.Fatalf("Fit d2: %v", err)
	}
	e1, e2 := rmse(m1, x, y), rmse(m2, x, y)
	if e2 >= e1 {
		t.Errorf("degree-2 RMSE %v should beat degree-1 RMSE %v on interaction data", e2, e1)
	}
	// Degree-2 terms should actually appear.
	has2 := false
	for _, term := range m2.Terms {
		if term.Degree() == 2 {
			has2 = true
		}
	}
	if !has2 {
		t.Error("degree-2 fit contains no interaction terms")
	}
}

func TestFitSelfInteractionQuadratic(t *testing.T) {
	// y = x² needs curvature; self-interaction hinges capture it better
	// than additive piecewise linear with few knots.
	r := rand.New(rand.NewSource(34))
	n := 400
	x := mathx.NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := r.Float64()*6 - 3
		x.Set(i, 0, v)
		y[i] = v*v + r.NormFloat64()*0.05
	}
	m, err := Fit(x, y, Options{MaxDegree: 2, SelfInteraction: true, MaxTerms: 13, MaxKnots: 8})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if e := rmse(m, x, y); e > 0.4 {
		t.Errorf("self-interaction RMSE = %v on quadratic data", e)
	}
}

func TestFitConstantInput(t *testing.T) {
	// A constant variable offers no knots; model should degrade to the
	// mean rather than fail.
	n := 50
	x := mathx.NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, 7)
		y[i] = 3
	}
	m, err := Fit(x, y, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if got := m.Predict([]float64{7}); math.Abs(got-3) > 1e-9 {
		t.Errorf("constant fit predicts %v, want 3", got)
	}
}

func TestFitRespectsMaxTerms(t *testing.T) {
	x, y := genPiecewise(35, 300, 0.5)
	m, err := Fit(x, y, Options{MaxTerms: 5, MaxKnots: 20})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if m.NumTerms() > 5 {
		t.Errorf("model has %d terms, MaxTerms was 5", m.NumTerms())
	}
}

func TestModelContinuity(t *testing.T) {
	// MARS models are continuous: check no jumps around knots.
	x, y := genPiecewise(36, 400, 0.1)
	m, err := Fit(x, y, Options{MaxKnots: 20})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	for _, term := range m.Terms {
		for _, h := range term.Factors {
			lo := m.Predict([]float64{h.Knot - 1e-9})
			hi := m.Predict([]float64{h.Knot + 1e-9})
			if math.Abs(hi-lo) > 1e-6 {
				t.Errorf("discontinuity at knot %v: %v vs %v", h.Knot, lo, hi)
			}
		}
	}
}

// Property: predictions are piecewise-linear in each variable — evaluating
// at the midpoint of two nearby points in a knot-free interval equals the
// average of the endpoint predictions.
func TestPiecewiseLinearityProperty(t *testing.T) {
	x, y := genPiecewise(37, 300, 0.2)
	m, err := Fit(x, y, Options{MaxKnots: 8})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	knots := map[float64]bool{}
	for _, term := range m.Terms {
		for _, h := range term.Factors {
			knots[h.Knot] = true
		}
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(38))}
	prop := func(seedF uint32) bool {
		r := rand.New(rand.NewSource(int64(seedF)))
		a := r.Float64() * 10
		b := a + 0.01
		// Skip straddling intervals containing a knot.
		for k := range knots {
			if k > a && k < b {
				return true
			}
		}
		mid := (a + b) / 2
		lin := (m.Predict([]float64{a}) + m.Predict([]float64{b})) / 2
		return math.Abs(m.Predict([]float64{mid})-lin) < 1e-9
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkFitDegree1(b *testing.B) {
	x, y := genPiecewise(40, 600, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(x, y, Options{MaxDegree: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitDegree2(b *testing.B) {
	r := rand.New(rand.NewSource(41))
	n := 600
	x := mathx.NewMatrix(n, 5)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 5; j++ {
			x.Set(i, j, r.Float64()*10)
		}
		y[i] = x.At(i, 0)*x.At(i, 1) + 2*x.At(i, 2) + r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(x, y, Options{MaxDegree: 2, MaxTerms: 13, MaxKnots: 8}); err != nil {
			b.Fatal(err)
		}
	}
}
