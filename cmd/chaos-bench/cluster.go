package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/cluster"
)

// ClusterSchema identifies the cluster-simulation benchmark document
// (BENCH_cluster.json); bump on incompatible change.
const ClusterSchema = "chaos-bench-cluster/v1"

// ClusterDoc is the cluster benchmark document: how fast the
// event-driven datacenter simulator chews through simulated time at
// each fleet size, and proof the runs reproduce.
type ClusterDoc struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	Seed       int64  `json:"seed"`
	SimSeconds int64  `json:"sim_seconds"`
	// ReproVerified is set after the smallest cell is run twice and both
	// runs produced identical event digests.
	ReproVerified bool          `json:"repro_verified"`
	Cells         []ClusterCell `json:"cells"`
}

// ClusterCell is one fleet-size measurement.
type ClusterCell struct {
	Machines int    `json:"machines"`
	Grid     string `json:"grid"`
	Events   int64  `json:"events"`
	Steps    int64  `json:"steps"`
	// ActiveFraction is steps over machines × sim-seconds: the share of
	// lockstep work the event loop actually had to do.
	ActiveFraction   float64 `json:"active_fraction"`
	EventsPerSec     float64 `json:"events_per_sec"`
	SimSecondsPerSec float64 `json:"sim_seconds_per_sec"`
	AllocsPerEvent   float64 `json:"allocs_per_event"`
	WallMS           float64 `json:"wall_ms"`
	DatacenterWatts  float64 `json:"datacenter_watts_end"`
	// Digest is the sha256 over every (time, machine, watts) update; the
	// same seed and size must reproduce it bit for bit.
	Digest string `json:"digest"`
}

// clusterGrid picks a rows × racks × machines-per-rack layout for a
// fleet size, preferring the shapes the committed document tracks.
func clusterGrid(n int) (rows, racks, perRack int, err error) {
	switch n {
	case 100:
		return 1, 5, 20, nil
	case 1000:
		return 5, 5, 40, nil
	case 20000:
		return 10, 50, 40, nil
	}
	// Fallback: one row of 40-machine racks (n must divide evenly).
	if n%40 == 0 {
		return 1, n / 40, 40, nil
	}
	if n < 1 {
		return 0, 0, 0, fmt.Errorf("cluster size %d", n)
	}
	return 1, 1, n, nil
}

func clusterSpec(n int, seed int64) (*cluster.Spec, error) {
	rows, racks, perRack, err := clusterGrid(n)
	if err != nil {
		return nil, err
	}
	return &cluster.Spec{
		Version: cluster.SpecVersion,
		Name:    fmt.Sprintf("bench-%d", n),
		Seed:    seed,
		Grid: &cluster.Grid{
			Rows: rows, RacksPerRow: racks, MachinesPerRack: perRack,
			Platforms: []cluster.Weighted{
				{Name: "XeonSAS", Weight: 0.35},
				{Name: "XeonSATA", Weight: 0.25},
				{Name: "Opteron", Weight: 0.25},
				{Name: "Athlon", Weight: 0.1},
				{Name: "Core2", Weight: 0.05},
			},
			Profiles: []cluster.Weighted{
				{Name: "bursty", Weight: 0.55},
				{Name: "diurnal", Weight: 0.25},
				{Name: "steady", Weight: 0.1},
				{Name: "idle", Weight: 0.1},
			},
		},
	}, nil
}

// runClusterCell simulates one fleet size for simSeconds and measures
// throughput and allocations per event.
func runClusterCell(n int, seed, simSeconds int64) (ClusterCell, error) {
	spec, err := clusterSpec(n, seed)
	if err != nil {
		return ClusterCell{}, err
	}
	topo, err := cluster.Build(spec)
	if err != nil {
		return ClusterCell{}, err
	}
	cs := cluster.NewSimulator(topo)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	// Interleave aggregate reads the way a monitoring driver would, so
	// the measured rate includes incremental re-aggregation.
	for t := simSeconds / 10; t <= simSeconds; t += simSeconds / 10 {
		cs.RunUntil(t)
		if w := topo.Root.Watts(); w <= 0 || math.IsNaN(w) {
			return ClusterCell{}, fmt.Errorf("size %d: datacenter watts %v at t=%d", n, w, t)
		}
	}
	cs.RunUntil(simSeconds)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	rows, racks, perRack, _ := clusterGrid(n)
	cell := ClusterCell{
		Machines:        n,
		Grid:            fmt.Sprintf("%dx%dx%d", rows, racks, perRack),
		Events:          cs.Events(),
		Steps:           cs.Steps(),
		ActiveFraction:  math.Round(float64(cs.Steps())/float64(int64(n)*simSeconds)*1e4) / 1e4,
		WallMS:          math.Round(wall.Seconds()*1e4) / 10,
		DatacenterWatts: math.Round(topo.Root.Watts()*10) / 10,
		Digest:          cs.Digest(),
	}
	if cs.Events() > 0 {
		cell.AllocsPerEvent = math.Round(float64(after.Mallocs-before.Mallocs)/float64(cs.Events())*100) / 100
	}
	if s := wall.Seconds(); s > 0 {
		cell.EventsPerSec = math.Round(float64(cs.Events()) / s)
		cell.SimSecondsPerSec = math.Round(float64(simSeconds)/s*10) / 10
	}
	return cell, nil
}

func runClusterBench(w io.Writer, out string, seed int64, sizes []int, simSeconds int64) error {
	if simSeconds < 10 {
		return fmt.Errorf("-sim-seconds must be ≥ 10")
	}
	doc := &ClusterDoc{
		Schema: ClusterSchema, GoVersion: runtime.Version(), NumCPU: runtime.NumCPU(),
		Seed: seed, SimSeconds: simSeconds,
	}
	for _, n := range sizes {
		cell, err := runClusterCell(n, seed, simSeconds)
		if err != nil {
			return err
		}
		doc.Cells = append(doc.Cells, cell)
		fmt.Fprintf(w, "machines=%-6d %12.0f events/s  %8.1f sim-s/s  active %.1f%%  allocs/event %.2f\n",
			n, cell.EventsPerSec, cell.SimSecondsPerSec, cell.ActiveFraction*100, cell.AllocsPerEvent)
	}
	// Reproducibility: the smallest cell rerun must replay the identical
	// event stream.
	rerun, err := runClusterCell(sizes[0], seed, simSeconds)
	if err != nil {
		return err
	}
	if rerun.Digest != doc.Cells[0].Digest {
		return fmt.Errorf("size %d not reproducible: digest %s then %s",
			sizes[0], doc.Cells[0].Digest, rerun.Digest)
	}
	doc.ReproVerified = true

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s (%d cells, repro verified)\n", out, len(doc.Cells))
	return nil
}

// checkClusterDoc validates a cluster benchmark document. Beyond shape,
// it enforces the scaling contract: per-event cost must not degrade more
// than 10× between the smallest and largest fleet (the event loop plus
// incremental aggregation is what keeps it flat).
func checkClusterDoc(path string, data []byte, w io.Writer) error {
	var doc ClusterDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if doc.Schema != ClusterSchema {
		return fmt.Errorf("%s: schema %q, want %q", path, doc.Schema, ClusterSchema)
	}
	if len(doc.Cells) < 2 {
		return fmt.Errorf("%s: %d cells, want at least 2 fleet sizes", path, len(doc.Cells))
	}
	if !doc.ReproVerified {
		return fmt.Errorf("%s: repro_verified is false", path)
	}
	for i, c := range doc.Cells {
		if c.Machines <= 0 || c.Events <= 0 || c.EventsPerSec <= 0 || c.SimSecondsPerSec <= 0 {
			return fmt.Errorf("%s: cell %d (%d machines) has no throughput", path, i, c.Machines)
		}
		if len(c.Digest) != 64 {
			return fmt.Errorf("%s: cell %d missing digest", path, i)
		}
		if c.ActiveFraction <= 0 || c.ActiveFraction >= 1 {
			return fmt.Errorf("%s: cell %d active fraction %v, want (0, 1) — an all-idle or lockstep fleet measures nothing", path, i, c.ActiveFraction)
		}
		if i > 0 && c.Machines <= doc.Cells[i-1].Machines {
			return fmt.Errorf("%s: cells not ordered by fleet size", path)
		}
	}
	small, large := doc.Cells[0], doc.Cells[len(doc.Cells)-1]
	if large.EventsPerSec < small.EventsPerSec/10 {
		return fmt.Errorf("%s: events/sec collapses with scale: %d machines at %.0f vs %d at %.0f (>10x)",
			path, small.Machines, small.EventsPerSec, large.Machines, large.EventsPerSec)
	}
	fmt.Fprintf(w, "%s: ok — %d fleet sizes up to %d machines, %.0f events/s at the largest\n",
		path, len(doc.Cells), large.Machines, large.EventsPerSec)
	return nil
}
