package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestClusterBenchRunAndCheck: -cluster produces a valid, reproducible
// document that -check accepts.
func TestClusterBenchRunAndCheck(t *testing.T) {
	out := filepath.Join(t.TempDir(), "cluster.json")
	var stdout, stderr bytes.Buffer
	args := []string{"-cluster", "-cluster-machines", "100,200", "-sim-seconds", "120", "-out", out}
	if code := realMain(args, &stdout, &stderr); code != 0 {
		t.Fatalf("chaos-bench -cluster exited %d: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc ClusterDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != ClusterSchema || !doc.ReproVerified || len(doc.Cells) != 2 {
		t.Fatalf("document malformed: schema=%q repro=%v cells=%d", doc.Schema, doc.ReproVerified, len(doc.Cells))
	}
	for _, c := range doc.Cells {
		if c.Events <= 0 || c.EventsPerSec <= 0 || len(c.Digest) != 64 {
			t.Fatalf("bad cell: %+v", c)
		}
		if c.ActiveFraction <= 0 || c.ActiveFraction > 0.6 {
			t.Fatalf("active fraction %v: event loop not sparse", c.ActiveFraction)
		}
		if c.AllocsPerEvent > 2 {
			t.Fatalf("allocs/event %v: hot path is allocating", c.AllocsPerEvent)
		}
	}
	stdout.Reset()
	if code := realMain([]string{"-check", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("-check rejected fresh cluster doc: %s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "ok") {
		t.Fatalf("check output: %s", stdout.String())
	}
}

// TestClusterBenchCheckRejectsBadDocs: schema drift, missing repro proof,
// and collapsing throughput all fail -check.
func TestClusterBenchCheckRejectsBadDocs(t *testing.T) {
	dir := t.TempDir()
	digest := strings.Repeat("ab", 32)
	cell := func(n int, rate float64) ClusterCell {
		return ClusterCell{Machines: n, Events: 1000, EventsPerSec: rate,
			SimSecondsPerSec: 10, ActiveFraction: 0.2, Digest: digest}
	}
	cases := map[string]ClusterDoc{
		"schema.json": {Schema: "chaos-bench-cluster/v0", ReproVerified: true,
			Cells: []ClusterCell{cell(100, 1e6), cell(1000, 1e6)}},
		"repro.json": {Schema: ClusterSchema,
			Cells: []ClusterCell{cell(100, 1e6), cell(1000, 1e6)}},
		"collapse.json": {Schema: ClusterSchema, ReproVerified: true,
			Cells: []ClusterCell{cell(100, 1e6), cell(20000, 5e4)}},
		"onecell.json": {Schema: ClusterSchema, ReproVerified: true,
			Cells: []ClusterCell{cell(100, 1e6)}},
		"unordered.json": {Schema: ClusterSchema, ReproVerified: true,
			Cells: []ClusterCell{cell(1000, 1e6), cell(100, 1e6)}},
	}
	for name, doc := range cases {
		data, _ := json.Marshal(doc)
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var stdout, stderr bytes.Buffer
		if code := realMain([]string{"-check", p}, &stdout, &stderr); code == 0 {
			t.Errorf("%s: -check accepted a bad cluster document", name)
		}
	}
}
