package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/store"
)

// lagGauge reports how many leader journal records this node has not yet
// applied — the replication-health headline (0 = fully caught up).
var lagGauge = obs.Default().Gauge("chaos_replication_lag_records", nil)

// FollowerConfig wires a replication follower to its leader.
type FollowerConfig struct {
	// LeaderURL is the leader's serve base URL ("http://host:port").
	LeaderURL string
	// Registry is this node's own persistent registry; replicated records
	// apply through its journaled mutation path.
	Registry *registry.Registry
	// CheckpointPath persists the tail position so a restarted follower
	// resumes without re-fetching (or re-applying) history.
	CheckpointPath string
	// Retry shapes the backoff between failed leader calls — the same
	// jittered exponential policy the fault-aware collectors use.
	Retry faults.RetryPolicy
	// Seed feeds the deterministic backoff jitter.
	Seed int64
	// NodeID keys this follower's jitter stream (decorrelated from other
	// followers of the same leader).
	NodeID string
	// PollWait is the long-poll window per tail request (default 1s).
	PollWait time.Duration
	// Client performs leader HTTP calls (default http.DefaultClient).
	Client *http.Client
	// Events, when set, receives replica_synced / replica_caught_up /
	// replica_resync events.
	Events *obs.EventSink
}

// checkpoint is the durable tail position. Applied counts records applied
// from the current epoch's journal; the offset is a byte position.
type checkpoint struct {
	Offset  int64 `json:"offset"`
	Epoch   int   `json:"epoch"`
	Applied int   `json:"applied"`
}

// Follower tails the leader's registry journal and applies each record
// idempotently. Ordering is the crash-safety story: records apply (each
// one fsynced into the follower's own journal) before the checkpoint
// advances, so a kill -9 between the two re-fetches an already-applied
// batch — and idempotent apply turns the replay into a no-op.
type Follower struct {
	cfg    FollowerConfig
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu            sync.Mutex
	ck            checkpoint
	leaderRecords int
	caughtUp      bool
}

// StartFollower loads any existing checkpoint and begins tailing in the
// background. Callers own Close.
func StartFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.LeaderURL == "" || cfg.Registry == nil || cfg.CheckpointPath == "" {
		return nil, fmt.Errorf("dist: follower needs a leader URL, a registry, and a checkpoint path")
	}
	if !cfg.Registry.Persistent() {
		return nil, fmt.Errorf("dist: follower registry must be persistent")
	}
	if cfg.PollWait <= 0 {
		cfg.PollWait = time.Second
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Retry.BackoffMS <= 0 {
		cfg.Retry.BackoffMS = 50
		cfg.Retry.Jitter = 0.5
	}
	ctx, cancel := context.WithCancel(context.Background())
	f := &Follower{cfg: cfg, ctx: ctx, cancel: cancel, done: make(chan struct{})}
	if data, err := os.ReadFile(cfg.CheckpointPath); err == nil {
		if err := json.Unmarshal(data, &f.ck); err != nil {
			// A corrupt checkpoint is not fatal: resync rebuilds it.
			f.ck = checkpoint{}
		}
	}
	go f.run()
	return f, nil
}

// Close stops the tail loop and waits for it to exit.
func (f *Follower) Close() {
	f.cancel()
	<-f.done
}

// Lag returns how many leader records are not yet applied (0 when caught
// up; the count is against the leader's last reported journal state).
func (f *Follower) Lag() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	lag := f.leaderRecords - f.ck.Applied
	if lag < 0 {
		lag = 0
	}
	return lag
}

// CaughtUp reports whether the last tail found nothing left to apply.
func (f *Follower) CaughtUp() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.caughtUp
}

// run is the tail loop: poll, apply, checkpoint, back off on failure.
func (f *Follower) run() {
	defer close(f.done)
	attempt := 0
	for {
		if f.ctx.Err() != nil {
			return
		}
		err := f.tailOnce()
		if err == nil {
			attempt = 0
			continue
		}
		if f.ctx.Err() != nil {
			return
		}
		// Jittered exponential backoff, exponent capped so a long leader
		// outage cannot push the retry horizon out indefinitely.
		attempt++
		k := attempt
		if k > 6 {
			k = 6
		}
		backoff := time.Duration(f.cfg.Retry.BackoffFor(f.cfg.Seed, f.cfg.NodeID, k) * float64(time.Millisecond))
		select {
		case <-f.ctx.Done():
			return
		case <-time.After(backoff):
		}
	}
}

// tailOnce performs one tail round trip and applies its records.
func (f *Follower) tailOnce() error {
	f.mu.Lock()
	ck := f.ck
	f.mu.Unlock()

	url := fmt.Sprintf("%s/v1/replicate/tail?offset=%d&epoch=%d&wait_ms=%d",
		f.cfg.LeaderURL, ck.Offset, ck.Epoch, f.cfg.PollWait.Milliseconds())
	ctx, cancel := context.WithTimeout(f.ctx, f.cfg.PollWait+10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()

	leaderRecords, _ := strconv.Atoi(resp.Header.Get(HeaderRecords))
	switch resp.StatusCode {
	case http.StatusOK:
		body, err := io.ReadAll(io.LimitReader(resp.Body, tailChunkBytes+1))
		if err != nil {
			return err
		}
		return f.applyChunk(body, leaderRecords)
	case http.StatusNoContent:
		f.setCaughtUp(leaderRecords)
		return nil
	case http.StatusGone:
		return f.resync()
	default:
		return fmt.Errorf("dist: tail %s: status %d", f.cfg.LeaderURL, resp.StatusCode)
	}
}

// applyChunk decodes and applies one tail response. A partial trailing
// frame (the leader's in-flight append) is left for the next poll; a
// corrupt frame or an un-applicable record means this follower's view
// has diverged and forces a snapshot resync.
func (f *Follower) applyChunk(body []byte, leaderRecords int) error {
	payloads, consumed, err := store.DecodeFrames(body)
	if err != nil {
		// Corrupt bytes mid-stream: do not guess at frame boundaries.
		return f.resync()
	}
	applied := 0
	for _, p := range payloads {
		if _, err := f.cfg.Registry.ApplyReplicated(p); err != nil {
			return f.resync()
		}
		applied++
	}
	if applied == 0 && consumed == 0 {
		// Nothing decodable yet (a lone partial frame — the leader's
		// in-flight or torn append). Wait out the tail instead of
		// hot-polling the same bytes; the next poll re-reads a longer
		// prefix, or a restarted leader truncates the torn frame away.
		select {
		case <-f.ctx.Done():
		case <-time.After(tailPollInterval):
		}
		return nil
	}

	f.mu.Lock()
	f.ck.Offset += int64(consumed)
	f.ck.Applied += applied
	ck := f.ck
	f.mu.Unlock()
	// Checkpoint strictly after apply: the records are already durable in
	// the follower's own journal, so losing the checkpoint write merely
	// re-applies a no-op batch after restart.
	if err := f.writeCheckpoint(ck); err != nil {
		return err
	}
	f.setCaughtUp(leaderRecords)
	return nil
}

// resync re-bootstraps from a leader snapshot — the recovery path for
// compactions, torn leader journals, and any stream divergence. Apply is
// idempotent, so resyncing on top of existing state never duplicates.
func (f *Follower) resync() error {
	f.emit("replica_resync", nil)
	ctx, cancel := context.WithTimeout(f.ctx, 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.cfg.LeaderURL+"/v1/replicate/snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dist: snapshot %s: status %d", f.cfg.LeaderURL, resp.StatusCode)
	}
	var sr SnapshotResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return err
	}
	if err := f.cfg.Registry.ApplySnapshot(sr.Snapshot); err != nil {
		return err
	}
	ck := checkpoint{Offset: sr.Offset, Epoch: sr.Epoch, Applied: sr.Records}
	f.mu.Lock()
	f.ck = ck
	f.mu.Unlock()
	if err := f.writeCheckpoint(ck); err != nil {
		return err
	}
	f.emit("replica_synced", map[string]any{
		"offset": sr.Offset, "epoch": sr.Epoch,
		"active": f.cfg.Registry.ActiveVersion(), "versions": f.cfg.Registry.Len(),
	})
	f.setCaughtUp(sr.Records)
	return nil
}

// setCaughtUp refreshes lag accounting and fires replica_caught_up on
// the behind -> current transition.
func (f *Follower) setCaughtUp(leaderRecords int) {
	f.mu.Lock()
	f.leaderRecords = leaderRecords
	lag := leaderRecords - f.ck.Applied
	if lag < 0 {
		lag = 0
	}
	was := f.caughtUp
	f.caughtUp = lag == 0
	transition := f.caughtUp && !was
	f.mu.Unlock()
	lagGauge.Set(float64(lag))
	if transition {
		f.emit("replica_caught_up", map[string]any{
			"active": f.cfg.Registry.ActiveVersion(), "versions": f.cfg.Registry.Len(),
		})
	}
}

// writeCheckpoint persists the tail position atomically.
func (f *Follower) writeCheckpoint(ck checkpoint) error {
	data, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	return store.WriteFileAtomic(f.cfg.CheckpointPath, data, 0o644)
}

func (f *Follower) emit(event string, fields map[string]any) {
	if f.cfg.Events == nil {
		return
	}
	if fields == nil {
		fields = map[string]any{}
	}
	fields["leader"] = f.cfg.LeaderURL
	f.cfg.Events.Emit(event, fields) //nolint:errcheck // telemetry only
}
