package main

import (
	"io"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// tinyCfg keeps the repro binary's test fast: one platform, one workload.
func tinyCfg() experiments.Config {
	return experiments.Config{
		Machines: 2, Runs: 2, Seed: 99,
		Platforms: []string{"Core2"},
		Workloads: []string{"Prime"},
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, tinyCfg(), "table1"); err != nil {
		t.Fatalf("run table1: %v", err)
	}
	if !strings.Contains(sb.String(), "Table I") {
		t.Error("missing Table I output")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(io.Discard, tinyCfg(), "table9000"); err == nil {
		t.Error("expected error for unknown experiment id")
	}
}

func TestRunFigureExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("figure experiments in -short mode")
	}
	var sb strings.Builder
	for _, id := range []string{"fig1", "fig2", "overhead", "variability"} {
		if err := run(&sb, tinyCfg(), id); err != nil {
			t.Fatalf("run %s: %v", id, err)
		}
	}
	out := sb.String()
	for _, want := range []string{"Figure 1", "Figure 2", "Collector overhead", "variability"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
