package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/featsel"
	"repro/internal/models"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// SensitivityNoise sweeps the simulator's observation-noise profile and
// reports the best quadratic/cluster model's DRE at each level. It
// addresses the central threat to validity of a simulation-based
// reproduction: how much of the measured accuracy is an artifact of the
// substrate's noise level? The expected (and observed) behavior is that
// absolute DRE scales with noise while every comparative conclusion is
// unchanged — at higher noise the reproduction's absolute errors approach
// the paper's.
func (s *Suite) SensitivityNoise(w io.Writer, platform, workload string, scales []float64) (map[float64]float64, error) {
	if len(scales) == 0 {
		scales = []float64{0.5, 1, 2, 4}
	}
	out := map[float64]float64{}
	section(w, fmt.Sprintf("Sensitivity: substrate noise level (%s, %s)", platform, workload))
	for _, scale := range scales {
		np := sim.DefaultNoise()
		np.MeterSD *= scale
		np.WanderSD *= scale
		cluster, err := telemetry.NewWithNoise(platform, s.Cfg.Machines, s.Cfg.Seed, np)
		if err != nil {
			return nil, err
		}
		traces, err := cluster.RunWorkload(workload, s.Cfg.Runs, 3000)
		if err != nil {
			return nil, err
		}
		sel, err := featsel.SelectCluster(traces, cluster.Registry, featsel.Options{})
		if err != nil {
			return nil, err
		}
		spec := core.ClusterSpec(ensureCounter(ensureCounter(sel.Features,
			counters.CPUFreqCore0), counters.CPUTotal))
		cv, err := core.CrossValidate(traces, core.CVConfig{Tech: models.TechQuadratic, Spec: spec})
		if err != nil {
			return nil, err
		}
		out[scale] = cv.Cluster.DRE
		fmt.Fprintf(w, "noise x%.1f  ->  quadratic/cluster DRE %5.1f%%  (%d features)\n",
			scale, cv.Cluster.DRE*100, len(spec.Counters))
	}
	return out, nil
}
