package featsel

import (
	"fmt"
	"math"

	"repro/internal/mathx"
	"repro/internal/regress"
	"repro/internal/trace"
)

// PoolingCheck is the §IV adequacy test for pooled fitting: the paper
// cites Gelman et al.'s recommended comparison of variance components to
// justify pooling machine data instead of building hierarchical models.
// Here a fixed-effects model with per-machine intercepts and shared slopes
// is fitted on the selected features; pooling is adequate when the
// between-machine intercept variance is small relative to the residual
// variance.
type PoolingCheck struct {
	// Ratio is between-machine intercept variance / residual variance
	// (the raw variance-component comparison).
	Ratio float64
	// SpreadFraction is the intercepts' standard deviation as a fraction
	// of the observed dynamic power range — the practical cost of
	// pooling away the per-machine offsets.
	SpreadFraction float64
	// Adequate reports SpreadFraction < threshold (default 0.10, matching
	// the up-to-10% machine variation the paper still pooled across): the
	// per-machine offsets are negligible against the range the model
	// must explain, so pooling loses no significant accuracy.
	Adequate bool
	// Intercepts is the per-machine intercept map (watts).
	Intercepts map[string]float64
}

// CheckPooling runs the pooling-adequacy test over the given traces using
// the selected feature columns. threshold <= 0 uses the default of 1.0.
func CheckPooling(traces []*trace.Trace, features []string, threshold float64) (*PoolingCheck, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("featsel: no traces for pooling check")
	}
	if len(features) == 0 {
		return nil, fmt.Errorf("featsel: no features for pooling check")
	}
	var subs []*trace.Trace
	var groups []string
	for _, t := range traces {
		sub, err := trace.SelectColumns(t, features)
		if err != nil {
			return nil, err
		}
		subs = append(subs, sub)
		for i := 0; i < sub.Len(); i++ {
			groups = append(groups, t.MachineID)
		}
	}
	x, y, err := trace.Pool(subs)
	if err != nil {
		return nil, err
	}
	fit, err := regress.MixedOLS(x, y, groups)
	if err != nil {
		return nil, err
	}
	if threshold <= 0 {
		threshold = 0.10
	}
	ratio, _ := fit.PoolingAdequate(1)
	min, max := mathx.MinMax(y)
	spread := 0.0
	if max > min {
		spread = math.Sqrt(fit.InterceptVar) / (max - min)
	}
	return &PoolingCheck{
		Ratio:          ratio,
		SpreadFraction: spread,
		Adequate:       spread < threshold,
		Intercepts:     fit.Intercepts,
	}, nil
}
