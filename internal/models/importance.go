package models

import (
	"fmt"
	"sort"

	"repro/internal/mars"
	"repro/internal/mathx"
	"repro/internal/trace"
)

// Importance is one input feature's contribution to a fitted model's
// output swing.
type Importance struct {
	Feature string
	// Weight is the estimated output range (watts) the feature can move
	// the prediction by, holding the others at their medians.
	Weight float64
}

// FeatureImportance estimates each input's influence on a fitted machine
// model by one-at-a-time sweeps over the evaluation traces: every feature
// is swept across its observed 5th–95th percentile range while the others
// sit at their medians, and the induced prediction swing is its weight.
// This is model-agnostic (works for linear, MARS, and switching models)
// and mirrors the per-feature significance reasoning of the paper's §V-D
// discussion. Results are sorted by weight descending.
func FeatureImportance(mm *MachineModel, ts []*trace.Trace) ([]Importance, error) {
	if mm == nil || mm.Model == nil {
		return nil, fmt.Errorf("models: nil machine model")
	}
	if len(ts) == 0 {
		return nil, fmt.Errorf("models: no traces for importance analysis")
	}
	x, _, err := BuildPooledDesign(ts, mm.Spec)
	if err != nil {
		return nil, err
	}
	p := x.Cols
	base := make([]float64, p)
	lo := make([]float64, p)
	hi := make([]float64, p)
	for j := 0; j < p; j++ {
		col := x.Col(j)
		base[j] = mathx.Median(col)
		lo[j] = mathx.Percentile(col, 5)
		hi[j] = mathx.Percentile(col, 95)
	}
	names := inputNames(mm.Spec)
	out := make([]Importance, 0, p)
	const steps = 9
	row := make([]float64, p)
	for j := 0; j < p; j++ {
		copy(row, base)
		min, max := 0.0, 0.0
		for s := 0; s <= steps; s++ {
			row[j] = lo[j] + (hi[j]-lo[j])*float64(s)/steps
			v := mm.Model.Predict(row)
			if s == 0 || v < min {
				min = v
			}
			if s == 0 || v > max {
				max = v
			}
		}
		out = append(out, Importance{Feature: names[j], Weight: max - min})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Weight != out[b].Weight {
			return out[a].Weight > out[b].Weight
		}
		return out[a].Feature < out[b].Feature
	})
	return out, nil
}

// inputNames lists the model's input labels including lag columns.
func inputNames(spec FeatureSpec) []string {
	names := append([]string(nil), spec.Counters...)
	for k := 1; k <= spec.NumInputs()-len(spec.Counters); k++ {
		names = append(names, fmt.Sprintf("MHz(t-%d)", k))
	}
	return names
}

// UsedTerms returns, for MARS-backed models, how many basis terms the
// fitted model kept — a complexity indicator for the paper's
// complexity-vs-accuracy tradeoff. Linear models report their coefficient
// count; switching models the number of frequency bins.
func UsedTerms(m Model) int {
	switch v := m.(type) {
	case *marsModel:
		return v.m.NumTerms()
	case *Linear:
		return len(v.Coef) + 1
	case *Switching:
		return len(v.Bins) + 1
	default:
		return 0
	}
}

// MARSOf exposes the underlying basis expansion of a piecewise/quadratic
// model for inspection, or nil for other techniques.
func MARSOf(m Model) *mars.Model {
	if v, ok := m.(*marsModel); ok {
		return v.m
	}
	return nil
}
