package counters

import (
	"fmt"
	"math/rand"

	"repro/internal/mathx"
)

// Expander turns a per-second base-signal sample into the full counter
// vector for one machine. It owns the per-counter observation-noise stream
// and the state lagged and random-walk counters need, so one Expander must
// be used per machine and fed samples in time order.
type Expander struct {
	reg  *Registry
	rng  *rand.Rand
	prev []float64 // previous full counter vector (for KindLagged)
	walk []float64 // random-walk state per counter (KindNoise)
	n    int       // samples produced
}

// NewExpander returns an Expander over reg seeded deterministically.
func NewExpander(reg *Registry, seed int64) *Expander {
	e := &Expander{
		reg:  reg,
		rng:  mathx.NewRand(seed),
		prev: make([]float64, reg.Len()),
		walk: make([]float64, reg.Len()),
	}
	for i, d := range reg.Defs {
		if d.Kind == KindNoise {
			e.walk[i] = d.Scale * (0.5 + e.rng.Float64())
		}
	}
	return e
}

// Sample produces the counter vector for one second of base signals.
// Counters are evaluated in registry order; KindScaled/KindSum/KindLagged
// sources must precede their dependents, which StandardRegistry guarantees
// by construction.
func (e *Expander) Sample(sig Signals) ([]float64, error) {
	out := make([]float64, e.reg.Len())
	for i, d := range e.reg.Defs {
		switch d.Kind {
		case KindSignal:
			v, ok := sig[d.Signal]
			if !ok {
				return nil, fmt.Errorf("counters: signal %q missing for counter %q", d.Signal, d.Name)
			}
			out[i] = e.noisy(v, d.NoiseSD)
		case KindScaled:
			src := out[d.Sources[0]]
			out[i] = e.noisy(d.Scale*src+d.Offset, d.NoiseSD)
		case KindSum:
			s := 0.0
			for _, j := range d.Sources {
				s += out[j]
			}
			out[i] = s
		case KindLagged:
			out[i] = e.prev[d.Sources[0]]
		case KindNoise:
			// Mean-reverting bounded walk so the counter wanders but
			// stays on a stable scale.
			e.walk[i] += e.rng.NormFloat64()*d.Scale*0.1 - (e.walk[i]-d.Scale)*0.05
			if e.walk[i] < 0 {
				e.walk[i] = 0
			}
			out[i] = e.walk[i]
		case KindConstant:
			out[i] = d.Offset
		default:
			return nil, fmt.Errorf("counters: counter %q has unknown kind %d", d.Name, d.Kind)
		}
	}
	copy(e.prev, out)
	e.n++
	return out, nil
}

// SampleCount returns how many samples the expander has produced.
func (e *Expander) SampleCount() int { return e.n }

// noisy applies multiplicative Gaussian observation noise scaled to the
// value, plus a tiny additive dither so zero-valued counters still jitter
// the way real Perfmon rates do.
// Perfmon counters are non-negative; the noise is truncated at zero.
func (e *Expander) noisy(v, sd float64) float64 {
	if sd <= 0 {
		return v
	}
	out := v*(1+e.rng.NormFloat64()*sd) + e.rng.NormFloat64()*sd*1e-3
	if out < 0 {
		out = 0
	}
	return out
}
