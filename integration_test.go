package repro

// End-to-end integration tests across module boundaries: the full CHAOS
// pipeline (simulate -> log CSV -> feature-select -> fit -> serialize ->
// reload -> predict online) exercised exactly the way the cmd tools and a
// downstream user would.

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/featsel"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/online"
	"repro/internal/trace"
)

func TestFullPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline in -short mode")
	}
	// 1. Collect.
	ds, err := core.Collect("Core2", 3, []string{"Prime"}, 3, 2024)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	traces := ds.ByWorkload["Prime"]

	// 2. Persist and reload every trace through CSV (the chaos-collect /
	// chaos-train boundary).
	var reloaded []*trace.Trace
	for _, tr := range traces {
		var buf bytes.Buffer
		if err := trace.WriteCSV(&buf, tr); err != nil {
			t.Fatalf("write csv: %v", err)
		}
		back, err := trace.ReadCSV(&buf)
		if err != nil {
			t.Fatalf("read csv: %v", err)
		}
		reloaded = append(reloaded, back)
	}

	// 3. Feature selection on the reloaded traces.
	sel, err := featsel.SelectCluster(reloaded, ds.Registry, featsel.Options{})
	if err != nil {
		t.Fatalf("featsel: %v", err)
	}
	if len(sel.Features) < 2 {
		t.Fatalf("selected too few features: %v", sel.Features)
	}
	// Pooling must be adequate for a homogeneous cluster (paper §IV).
	pool, err := featsel.CheckPooling(reloaded, sel.Features, 0)
	if err != nil {
		t.Fatalf("pooling check: %v", err)
	}
	if !pool.Adequate {
		t.Errorf("pooling inadequate (ratio %.2f) on a homogeneous cluster", pool.Ratio)
	}

	// 4. Cross-validated accuracy within the paper's bound.
	spec := core.ClusterSpec(sel.Features)
	cv, err := core.CrossValidate(reloaded, core.CVConfig{Tech: models.TechQuadratic, Spec: spec})
	if err != nil {
		t.Fatalf("cv: %v", err)
	}
	if cv.Cluster.DRE > 0.12 {
		t.Errorf("cluster DRE %.3f exceeds the paper's 12%% bound", cv.Cluster.DRE)
	}

	// 5. Fit a deployment model, serialize, reload (the chaos-train /
	// chaos-predict boundary).
	byRun := trace.ByRun(reloaded)
	var train []*trace.Trace
	for _, tr := range byRun[0] {
		train = append(train, trace.Subsample(tr, 2))
	}
	mm, err := models.FitMachineModel(models.TechQuadratic, train, spec, models.FitOptions{MaxKnots: 8})
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	cm, err := models.NewClusterModel(mm)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(cm)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var cm2 models.ClusterModel
	if err := json.Unmarshal(blob, &cm2); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}

	// 6. Offline prediction on a held-out run with the reloaded model.
	test := byRun[1]
	pred, actual, err := cm2.PredictCluster(test)
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	idle := 0.0
	for _, tr := range test {
		idle += tr.IdleWatts
	}
	sum, err := metrics.Evaluate(pred, actual, idle)
	if err != nil {
		t.Fatal(err)
	}
	if sum.DRE > 0.15 {
		t.Errorf("deployed model DRE %.3f too high", sum.DRE)
	}

	// 7. Online streaming with the reloaded model matches the offline
	// predictions sample for sample.
	p, err := online.NewPredictor(&cm2, test[0].Names)
	if err != nil {
		t.Fatalf("online predictor: %v", err)
	}
	for i := 0; i < test[0].Len(); i++ {
		var samples []online.Sample
		for _, tr := range test {
			samples = append(samples, online.Sample{
				MachineID: tr.MachineID, Platform: tr.Platform, Counters: tr.X.Row(i)})
		}
		est, err := p.Step(samples)
		if err != nil {
			t.Fatalf("online step: %v", err)
		}
		if math.Abs(est.ClusterWatts-pred[i]) > 1e-9 {
			t.Fatalf("online/offline mismatch at t=%d: %v vs %v", i, est.ClusterWatts, pred[i])
		}
	}
}

// TestRegistryStableAcrossProcesses: the standard registry must be
// deterministic — model files reference counters by name and the collector
// produces columns by registry order.
func TestRegistryStableAcrossProcesses(t *testing.T) {
	a := counters.StandardRegistry().Names()
	b := counters.StandardRegistry().Names()
	if len(a) != len(b) {
		t.Fatal("registry size unstable")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("registry order unstable at %d: %q vs %q", i, a[i], b[i])
		}
	}
}
