package online

import (
	"math"
	"testing"
)

// degradedFixture builds a predictor + degraded wrapper over the shared
// two-machine Core2 fixture.
func degradedFixture(t *testing.T, cfg DegradedConfig) (*fixture, *DegradedPredictor, []string) {
	t.Helper()
	fx := buildFixture(t, defaultSpec(), []string{"Prime"})
	p, err := NewPredictor(fx.model, fx.names)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, len(fx.streams))
	for i, tr := range fx.streams {
		ids[i] = tr.MachineID
	}
	dp, err := NewDegradedPredictor(p, ids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fx, dp, ids
}

// TestFaultDegradedTransitions walks one machine through the full health
// cycle — live -> stale (held with decay) -> down (zero contribution) ->
// recovered — and checks coverage and the cluster sum at every stage.
func TestFaultDegradedTransitions(t *testing.T) {
	const ttl, decay = 3, 0.9
	fx, dp, ids := degradedFixture(t, DegradedConfig{TTLSeconds: ttl, DecayPerSecond: decay})
	lost, kept := ids[0], ids[1]

	// Warm up with full coverage.
	var lastFull *DegradedEstimate
	for sec := 0; sec < 5; sec++ {
		est, err := dp.Step(sec, samplesAt(fx.streams, sec))
		if err != nil {
			t.Fatal(err)
		}
		if est.Coverage != 1 {
			t.Fatalf("full-sample coverage = %g", est.Coverage)
		}
		for _, id := range ids {
			if est.Health[id] != HealthLive {
				t.Fatalf("machine %s health %s with samples flowing", id, est.Health[id])
			}
		}
		lastFull = est
	}
	base := lastFull.PerMachine[lost]

	// Silence machine 0: held with decay while inside the TTL.
	for sec := 5; sec <= 4+ttl; sec++ {
		est, err := dp.Step(sec, samplesAt(fx.streams[1:], sec))
		if err != nil {
			t.Fatal(err)
		}
		if est.Health[lost] != HealthStale {
			t.Fatalf("t=%d: lost machine health %s, want stale", sec, est.Health[lost])
		}
		if est.Health[kept] != HealthLive {
			t.Fatalf("t=%d: surviving machine health %s", sec, est.Health[kept])
		}
		if est.Coverage != 0.5 {
			t.Fatalf("t=%d: coverage %g, want 0.5", sec, est.Coverage)
		}
		age := float64(sec - 4)
		want := base * math.Pow(decay, age)
		if math.Abs(est.PerMachine[lost]-want) > 1e-9 {
			t.Fatalf("t=%d: held estimate %g, want %g (decay^%g)", sec, est.PerMachine[lost], want, age)
		}
		if est.PerMachine[kept] <= 0 {
			t.Fatalf("t=%d: surviving machine estimate %g", sec, est.PerMachine[kept])
		}
	}

	// Past the TTL: down, contributing zero — the cluster estimate is
	// exactly the surviving machine.
	for sec := 5 + ttl; sec < 8+ttl; sec++ {
		est, err := dp.Step(sec, samplesAt(fx.streams[1:], sec))
		if err != nil {
			t.Fatal(err)
		}
		if est.Health[lost] != HealthDown {
			t.Fatalf("t=%d: lost machine health %s, want down", sec, est.Health[lost])
		}
		if est.PerMachine[lost] != 0 {
			t.Fatalf("t=%d: down machine contributes %g", sec, est.PerMachine[lost])
		}
		if math.Abs(est.ClusterWatts-est.PerMachine[kept]) > 1e-9 {
			t.Fatalf("t=%d: cluster %g != surviving machine %g", sec, est.ClusterWatts, est.PerMachine[kept])
		}
	}

	// Recovery: a fresh sample flips the machine straight back to live.
	rec := 8 + ttl
	est, err := dp.Step(rec, samplesAt(fx.streams, rec))
	if err != nil {
		t.Fatal(err)
	}
	if est.Health[lost] != HealthLive {
		t.Fatalf("recovered machine health %s, want live", est.Health[lost])
	}
	if est.Coverage != 1 {
		t.Fatalf("post-recovery coverage %g", est.Coverage)
	}
}

// TestFaultDegradedImputation corrupts single counters and checks they
// are imputed from history: health reports imputed, the estimate stays
// finite and close to the clean prediction.
func TestFaultDegradedImputation(t *testing.T) {
	fx, dp, ids := degradedFixture(t, DegradedConfig{})
	// Build imputation history.
	for sec := 0; sec < 8; sec++ {
		if _, err := dp.Step(sec, samplesAt(fx.streams, sec)); err != nil {
			t.Fatal(err)
		}
	}
	// Clean reference at t=8.
	cleanSamples := samplesAt(fx.streams, 8)
	clean, err := dp.Step(8, cleanSamples)
	if err != nil {
		t.Fatal(err)
	}
	// Same second replayed at t=9 with one counter of machine 0 NaN and
	// one +Inf: must be imputed, not propagated.
	corrupt := samplesAt(fx.streams, 8)
	row := append([]float64(nil), corrupt[0].Counters...)
	row[0] = math.NaN()
	row[len(row)-1] = math.Inf(1)
	corrupt[0].Counters = row
	est, err := dp.Step(9, corrupt)
	if err != nil {
		t.Fatal(err)
	}
	if est.Health[ids[0]] != HealthImputed {
		t.Fatalf("corrupt machine health %s, want imputed", est.Health[ids[0]])
	}
	if est.Health[ids[1]] != HealthLive {
		t.Fatalf("clean machine health %s, want live", est.Health[ids[1]])
	}
	if est.Coverage != 1 {
		t.Fatalf("coverage %g with all machines reporting", est.Coverage)
	}
	if !finite(est.ClusterWatts) {
		t.Fatalf("imputed estimate is not finite: %g", est.ClusterWatts)
	}
	// Imputed from an 8-second median ending at the same workload phase,
	// so the estimate should be near the clean one.
	diff := math.Abs(est.PerMachine[ids[0]] - clean.PerMachine[ids[0]])
	if diff > 0.25*clean.PerMachine[ids[0]] {
		t.Fatalf("imputed estimate %g too far from clean %g",
			est.PerMachine[ids[0]], clean.PerMachine[ids[0]])
	}
}

// TestFaultDegradedNeverNaN floods the wrapper with corrupt and missing
// samples from the start (no history to impute from) and checks every
// estimate stays finite.
func TestFaultDegradedNeverNaN(t *testing.T) {
	fx, dp, _ := degradedFixture(t, DegradedConfig{TTLSeconds: 2})
	for sec := 0; sec < 10; sec++ {
		samples := samplesAt(fx.streams, sec)
		// Machine 0: all-NaN counters. Machine 1: absent entirely.
		bad := make([]float64, len(samples[0].Counters))
		for j := range bad {
			bad[j] = math.NaN()
		}
		samples[0].Counters = bad
		est, err := dp.Step(sec, samples[:1])
		if err != nil {
			t.Fatal(err)
		}
		if !finite(est.ClusterWatts) {
			t.Fatalf("t=%d: non-finite cluster estimate %g", sec, est.ClusterWatts)
		}
		if est.Coverage != 0 {
			t.Fatalf("t=%d: coverage %g with no usable samples", sec, est.Coverage)
		}
	}
}

// TestFaultDegradedEmptyStep: an empty sample slice is valid in degraded
// mode — everything goes stale and then down instead of erroring.
func TestFaultDegradedEmptyStep(t *testing.T) {
	fx, dp, ids := degradedFixture(t, DegradedConfig{TTLSeconds: 1})
	if _, err := dp.Step(0, samplesAt(fx.streams, 0)); err != nil {
		t.Fatal(err)
	}
	est, err := dp.Step(1, nil)
	if err != nil {
		t.Fatalf("empty step errored: %v", err)
	}
	for _, id := range ids {
		if est.Health[id] != HealthStale {
			t.Fatalf("machine %s health %s after one silent second", id, est.Health[id])
		}
	}
	est, err = dp.Step(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if est.ClusterWatts != 0 {
		t.Fatalf("cluster estimate %g with every machine down", est.ClusterWatts)
	}
}

// TestFaultDegradedValidation covers constructor and Step error paths.
func TestFaultDegradedValidation(t *testing.T) {
	fx := buildFixture(t, defaultSpec(), []string{"Prime"})
	p, err := NewPredictor(fx.model, fx.names)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDegradedPredictor(nil, []string{"a"}, DegradedConfig{}); err == nil {
		t.Error("expected error for nil predictor")
	}
	if _, err := NewDegradedPredictor(p, nil, DegradedConfig{}); err == nil {
		t.Error("expected error for empty machine set")
	}
	if _, err := NewDegradedPredictor(p, []string{"a", "a"}, DegradedConfig{}); err == nil {
		t.Error("expected error for duplicate machine IDs")
	}
	if _, err := NewDegradedPredictor(p, []string{"a"}, DegradedConfig{TTLSeconds: -1}); err == nil {
		t.Error("expected error for negative TTL")
	}
	if _, err := NewDegradedPredictor(p, []string{"a"}, DegradedConfig{DecayPerSecond: 1.5}); err == nil {
		t.Error("expected error for decay > 1")
	}
	if _, err := NewDegradedPredictor(p, []string{"a"}, DegradedConfig{ImputeWindow: -2}); err == nil {
		t.Error("expected error for negative impute window")
	}
	dp, err := NewDegradedPredictor(p, []string{fx.streams[0].MachineID}, DegradedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := dp.SwapPredictor(nil); err == nil {
		t.Error("expected error swapping in nil predictor")
	}
	bogus := samplesAt(fx.streams, 0)
	bogus[0].MachineID = "not-in-cluster"
	if _, err := dp.Step(0, bogus[:1]); err == nil {
		t.Error("expected error for unknown machine sample")
	}
}
