// Package registry is the versioned model store behind the serving layer:
// it admits cluster power models (validated before they can ever serve),
// lists version metadata, and hot-swaps the active version through an
// atomic pointer so in-flight requests keep the model they started with —
// a swap or rollback never tears a prediction.
package registry

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/models"
	"repro/internal/obs"
)

// Registry-wide instruments, resolved once so Activate/Add stay cheap.
var (
	versionsGauge    = obs.Default().Gauge("chaos_model_versions", nil)
	activationsTotal = obs.Default().Counter("chaos_model_activations_total", nil)
	rollbacksTotal   = obs.Default().Counter("chaos_model_rollbacks_total", nil)
)

// Meta is caller-supplied metadata attached to a model version.
type Meta struct {
	Description string `json:"description,omitempty"`
	Source      string `json:"source,omitempty"` // e.g. training file, retrain event
}

// Entry is one admitted model version. Entries are immutable after Add;
// the serving layer holds whichever Entry was active when a batch started.
type Entry struct {
	Version   string
	Meta      Meta
	Model     *models.ClusterModel
	CreatedAt time.Time
	seq       int
}

// Info is the listing form of a version.
type Info struct {
	Version     string             `json:"version"`
	Active      bool               `json:"active"`
	Description string             `json:"description,omitempty"`
	Source      string             `json:"source,omitempty"`
	CreatedAt   time.Time          `json:"created_at"`
	Platforms   []string           `json:"platforms"`
	Models      []models.ModelInfo `json:"models"`
}

// Registry holds model versions and the active pointer. Mutations take a
// mutex; Active is a single atomic load, safe on the hottest path. A
// registry built with New is purely in-memory; one built with Open is
// backed by a journal so every admission and activation survives a crash.
type Registry struct {
	mu       sync.Mutex
	versions map[string]*Entry
	seq      int
	previous string // version active before the last Activate, for Rollback
	now      func() time.Time

	// persist, when non-nil, journals mutations (see persist.go).
	persist *persister

	active atomic.Pointer[Entry]
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{versions: map[string]*Entry{}, now: time.Now}
}

// Add validates and admits a model under a new version name. The first
// admitted version becomes active automatically, so a freshly booted
// server can serve as soon as one model loads.
func (r *Registry) Add(version string, cm *models.ClusterModel, meta Meta) error {
	if version == "" {
		return fmt.Errorf("registry: empty version name")
	}
	if err := cm.Validate(); err != nil {
		return fmt.Errorf("registry: rejecting %s: %w", version, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.versions[version]; dup {
		return fmt.Errorf("registry: version %q already exists", version)
	}
	r.seq++
	e := &Entry{Version: version, Meta: meta, Model: cm, CreatedAt: r.now(), seq: r.seq}
	r.versions[version] = e
	versionsGauge.Set(float64(len(r.versions)))
	if r.active.Load() == nil {
		r.active.Store(e)
		activationsTotal.Inc()
	}
	return r.journalAdmitLocked(e)
}

// AddJSON parses a serialized cluster model and admits it (the hot-load
// path of the /v1/models API and the -model flag).
func (r *Registry) AddJSON(version string, data []byte, meta Meta) error {
	var cm models.ClusterModel
	if err := json.Unmarshal(data, &cm); err != nil {
		return fmt.Errorf("registry: parsing model for %s: %w", version, err)
	}
	return r.Add(version, &cm, meta)
}

// LoadFile reads a model JSON file and admits it, recording the path as
// the version's source.
func (r *Registry) LoadFile(version, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("registry: loading model for %s: %w", version, err)
	}
	meta := Meta{Source: path}
	return r.AddJSON(version, data, meta)
}

// Activate makes the named version the serving model. The swap is a single
// atomic pointer store: requests already dispatched keep the entry they
// loaded, new requests see the new version, and nothing is ever dropped.
func (r *Registry) Activate(version string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	swapped, err := r.activateLocked(version)
	if err != nil || !swapped {
		return err
	}
	return r.journalActivateLocked(version)
}

// activateLocked performs the swap; the caller holds r.mu. It reports
// whether the active pointer actually changed (a no-op re-activation is
// not journaled).
func (r *Registry) activateLocked(version string) (swapped bool, err error) {
	e, ok := r.versions[version]
	if !ok {
		return false, fmt.Errorf("registry: unknown version %q", version)
	}
	if cur := r.active.Load(); cur != nil {
		if cur.Version == version {
			return false, nil // already active; keep rollback target unchanged
		}
		r.previous = cur.Version
	}
	r.active.Store(e)
	activationsTotal.Inc()
	return true, nil
}

// Rollback re-activates the version that was serving before the last
// Activate. It returns the version rolled back to. In a persistent
// registry a rollback journals as a plain activation of the previous
// version — the state transition is identical, so replay needs no
// separate record type.
func (r *Registry) Rollback() (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	prev := r.previous
	if prev == "" {
		return "", fmt.Errorf("registry: no previous version to roll back to")
	}
	swapped, err := r.activateLocked(prev)
	if err != nil {
		return "", err
	}
	rollbacksTotal.Inc()
	if swapped {
		if err := r.journalActivateLocked(prev); err != nil {
			return "", err
		}
	}
	return prev, nil
}

// Active returns the serving entry (nil when nothing is admitted yet).
// It is a single atomic load — callers on the request path pay nothing.
func (r *Registry) Active() *Entry { return r.active.Load() }

// ActiveVersion returns the serving version name, or "".
func (r *Registry) ActiveVersion() string {
	if e := r.active.Load(); e != nil {
		return e.Version
	}
	return ""
}

// Get returns the named version's entry.
func (r *Registry) Get(version string) (*Entry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.versions[version]
	return e, ok
}

// Len returns the number of admitted versions.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.versions)
}

// List returns every version's metadata in admission order.
func (r *Registry) List() []Info {
	r.mu.Lock()
	entries := make([]*Entry, 0, len(r.versions))
	for _, e := range r.versions {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	activeVersion := r.ActiveVersion()
	out := make([]Info, len(entries))
	for i, e := range entries {
		out[i] = Info{
			Version:     e.Version,
			Active:      e.Version == activeVersion,
			Description: e.Meta.Description,
			Source:      e.Meta.Source,
			CreatedAt:   e.CreatedAt,
			Platforms:   e.Model.Platforms(),
			Models:      e.Model.Infos(),
		}
	}
	return out
}
