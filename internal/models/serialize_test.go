package models

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/mathx"
)

// serializeFixture fits one model of each technique on a synthetic design
// matrix whose second column behaves like a quantized CPU frequency (so
// the switching technique has real P-state bins to split on).
func serializeFixture(t *testing.T, tech Technique) *ClusterModel {
	t.Helper()
	const n = 240
	rows := make([][]float64, n)
	y := make([]float64, n)
	freqs := []float64{1600, 2000, 2400}
	for i := 0; i < n; i++ {
		util := float64(i%100) / 100
		freq := freqs[i%len(freqs)]
		disk := float64((i*7)%40) / 10
		rows[i] = []float64{util, freq, disk}
		// Mildly nonlinear ground truth so MARS finds knots worth keeping.
		y[i] = 50 + 30*util + 0.01*freq + 2*disk + 10*util*util
	}
	x, err := mathx.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Fit(tech, x, y, FitOptions{FreqCol: 1, MaxKnots: 6})
	if err != nil {
		t.Fatalf("fit %s: %v", tech, err)
	}
	mm := &MachineModel{
		Platform: "p",
		Spec:     FeatureSpec{Name: "synthetic", Counters: []string{"util", "freq", "disk"}},
		Model:    m,
	}
	cm, err := NewClusterModel(mm)
	if err != nil {
		t.Fatal(err)
	}
	return cm
}

// probeRows cover the fitted range plus extrapolation on both sides (the
// MARS clamps and switching fallback paths must round-trip too).
var probeRows = [][]float64{
	{0, 1600, 0},
	{0.25, 2000, 1.4},
	{0.5, 2400, 2.8},
	{0.99, 1600, 3.9},
	{1.5, 3200, 8},   // beyond the training range
	{-0.2, 1200, -1}, // below it
}

// TestSerializeRoundTripAllTechniques locks the JSON wire format: for
// every technique, unmarshal(marshal(model)) must predict bit-identically
// (Go's encoder emits the shortest float64 representation, which parses
// back exactly), and the envelope metadata must survive.
func TestSerializeRoundTripAllTechniques(t *testing.T) {
	for _, tech := range Techniques() {
		t.Run(string(tech), func(t *testing.T) {
			cm := serializeFixture(t, tech)
			data, err := json.Marshal(cm)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			var back ClusterModel
			if err := json.Unmarshal(data, &back); err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			orig := cm.ByPlatform["p"]
			got := back.ByPlatform["p"]
			if got == nil {
				t.Fatal("platform p lost in round trip")
			}
			if got.Platform != "p" || got.Spec.Name != orig.Spec.Name ||
				len(got.Spec.Counters) != len(orig.Spec.Counters) {
				t.Errorf("metadata mangled: %+v", got)
			}
			if got.Model.Technique() != tech {
				t.Errorf("technique = %s, want %s", got.Model.Technique(), tech)
			}
			if got.Model.NumInputs() != orig.Model.NumInputs() {
				t.Errorf("NumInputs = %d, want %d", got.Model.NumInputs(), orig.Model.NumInputs())
			}
			for _, row := range probeRows {
				a, b := orig.Model.Predict(row), got.Model.Predict(row)
				if a != b {
					t.Errorf("predict(%v): %v != %v after round trip", row, a, b)
				}
				if math.IsNaN(a) || math.IsInf(a, 0) {
					t.Errorf("predict(%v) not finite: %v", row, a)
				}
			}
			// A second marshal of the round-tripped model is byte-identical:
			// the wire format is a fixed point.
			again, err := json.Marshal(&back)
			if err != nil {
				t.Fatal(err)
			}
			if string(again) != string(data) {
				t.Error("marshal(unmarshal(x)) != x; wire format is not stable")
			}
		})
	}
}

// TestSerializeRejectsMalformed locks the rejection paths: truncated and
// corrupt documents, unknown techniques, and inconsistent envelopes all
// fail loudly instead of yielding a half-built model.
func TestSerializeRejectsMalformed(t *testing.T) {
	good, err := json.Marshal(serializeFixture(t, TechQuadratic))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data string
		want string // substring of the expected error ("" = any)
	}{
		{"truncated", string(good[:len(good)/2]), ""},
		{"corrupt", "{]", ""},
		{"empty object", "{}", "no machine models"},
		{"unknown technique", `{"p":{"platform":"p","feature_spec":{"name":"s","counters":["a"]},"model":{"technique":"neural"}}}`, "unknown technique"},
		{"missing model", `{"p":{"platform":"p","feature_spec":{"name":"s","counters":["a"]}}}`, "missing model"},
		{"linear without payload", `{"p":{"platform":"p","feature_spec":{"name":"s","counters":["a"]},"model":{"technique":"linear"}}}`, "missing payload"},
		{"switching without payload", `{"p":{"platform":"p","feature_spec":{"name":"s","counters":["a"]},"model":{"technique":"switching"}}}`, "missing payload"},
		{"scaler mismatch", `{"p":{"platform":"p","feature_spec":{"name":"s","counters":["a"]},"model":{"technique":"quadratic","mars":{"num_inputs":1},"means":[0,0],"scales":[1]}}}`, "scaler mismatch"},
	}
	for _, c := range cases {
		var cm ClusterModel
		err := json.Unmarshal([]byte(c.data), &cm)
		if err == nil {
			t.Errorf("%s: unmarshal accepted malformed input", c.name)
			continue
		}
		if c.want != "" && !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestSerializeRejectsUnknownModelType locks the marshal side: a Model
// implementation the wire format does not know must fail to serialize
// rather than emit an envelope no reader can open.
func TestSerializeRejectsUnknownModelType(t *testing.T) {
	mm := &MachineModel{
		Platform: "p",
		Spec:     FeatureSpec{Name: "s", Counters: []string{"a"}},
		Model:    alienModel{},
	}
	if _, err := json.Marshal(mm); err == nil {
		t.Fatal("marshal accepted a foreign Model implementation")
	}
}

type alienModel struct{}

func (alienModel) Predict([]float64) float64 { return 0 }
func (alienModel) Technique() Technique      { return Technique("alien") }
func (alienModel) NumInputs() int            { return 1 }

// TestSerializeFileSizedModels round-trips every technique through the
// full file path a daemon start uses: bytes → cluster model → Validate.
func TestSerializeValidateAfterDecode(t *testing.T) {
	for _, tech := range Techniques() {
		data, err := json.Marshal(serializeFixture(t, tech))
		if err != nil {
			t.Fatal(err)
		}
		var cm ClusterModel
		if err := json.Unmarshal(data, &cm); err != nil {
			t.Fatalf("%s: %v", tech, err)
		}
		if err := cm.Validate(); err != nil {
			t.Errorf("%s: decoded model fails validation: %v", tech, err)
		}
	}
}
