package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/counters"
)

// TestMain lets the crash tests re-exec this test binary as a real
// chaos-serve process: when CHAOS_SERVE_CHILD is set the binary runs
// realMain with the JSON-encoded args instead of the test suite, so the
// parent can SIGKILL it mid-flight — something an in-process run can
// never simulate.
func TestMain(m *testing.M) {
	if os.Getenv("CHAOS_SERVE_CHILD") == "1" {
		var args []string
		if err := json.Unmarshal([]byte(os.Getenv("CHAOS_SERVE_ARGS")), &args); err != nil {
			panic("CHAOS_SERVE_ARGS: " + err.Error())
		}
		os.Exit(realMain(args, os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// child is a re-exec'd chaos-serve daemon under test control.
type child struct {
	t      *testing.T
	cmd    *exec.Cmd
	events chan map[string]any // closed on stdout EOF (process death)
	stderr *bytes.Buffer
	done   chan struct{} // closed when Wait returns
	err    error         // valid after done
}

func startChild(t *testing.T, args ...string) *child {
	t.Helper()
	encoded, err := json.Marshal(args)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"CHAOS_SERVE_CHILD=1",
		"CHAOS_SERVE_ARGS="+string(encoded))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	c := &child{
		t: t, cmd: cmd,
		events: make(chan map[string]any, 1024),
		stderr: &bytes.Buffer{},
		done:   make(chan struct{}),
	}
	cmd.Stderr = c.stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	go func() {
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			var ev map[string]any
			if json.Unmarshal([]byte(line), &ev) == nil {
				c.events <- ev
			}
		}
		close(c.events)
	}()
	go func() {
		c.err = cmd.Wait()
		close(c.done)
	}()
	t.Cleanup(func() {
		cmd.Process.Kill() //nolint:errcheck // already-exited is fine
		<-c.done
	})
	return c
}

// waitEvent consumes child events until one named name arrives.
func (c *child) waitEvent(name string, timeout time.Duration) map[string]any {
	c.t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case ev, ok := <-c.events:
			if !ok {
				c.t.Fatalf("child exited before %q event; stderr:\n%s", name, c.stderr.String())
			}
			if ev["event"] == name {
				return ev
			}
		case <-deadline:
			c.t.Fatalf("timed out waiting for %q event; stderr:\n%s", name, c.stderr.String())
		}
	}
}

// waitExit blocks until the child process is gone.
func (c *child) waitExit(timeout time.Duration) {
	c.t.Helper()
	select {
	case <-c.done:
	case <-time.After(timeout):
		c.t.Fatalf("child did not exit within %v; stderr:\n%s", timeout, c.stderr.String())
	}
}

// estimateResult is the full answer for one snapshot — the comparison
// unit for bit-identical recovery.
type estimateResult struct {
	Version    string
	Cluster    float64
	PerMachine map[string]float64
}

// postEstimate sends one two-machine snapshot built from row (machine m1
// gets row shifted by +1 per counter) and returns the parsed answer.
// metered > 0 labels every sample so the snapshot feeds the retrainer.
func postEstimate(t *testing.T, base string, row []float64, metered float64) estimateResult {
	t.Helper()
	mkSample := func(id string, shift float64) map[string]any {
		r := make([]float64, len(row))
		for i := range row {
			r[i] = row[i] + shift
		}
		s := map[string]any{"machine_id": id, "platform": "Core2", "counters": r}
		if metered > 0 {
			s["metered_watts"] = metered
		}
		return s
	}
	body, err := json.Marshal(map[string]any{
		"samples": []map[string]any{mkSample("m0", 0), mkSample("m1", 1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/estimate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var er struct {
		Status       int                `json:"status"`
		ModelVersion string             `json:"model_version"`
		ClusterWatts float64            `json:"cluster_watts"`
		PerMachine   map[string]float64 `json:"per_machine"`
		Error        string             `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate = %d (%s)", resp.StatusCode, er.Error)
	}
	return estimateResult{Version: er.ModelVersion, Cluster: er.ClusterWatts, PerMachine: er.PerMachine}
}

func activeVersion(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Active string `json:"active"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	return list.Active
}

// probeRows builds a few deterministic full-width counter rows whose
// estimates must come back bit-identical after the crash.
func probeRows() [][]float64 {
	width := len(counters.StandardRegistry().Names())
	rows := make([][]float64, 3)
	for k := range rows {
		row := make([]float64, width)
		for i := range row {
			row[i] = float64((i*(k+3))%11) + 0.25*float64(k+1)
		}
		rows[k] = row
	}
	return rows
}

// TestRecoveryCrashRestartServe is the headline crash e2e: a serving
// chaos-serve with lifecycle enabled is killed with SIGKILL mid-retrain;
// the restart on the same state dir must come back serving the exact
// pre-crash active version with bit-identical estimates.
func TestRecoveryCrashRestartServe(t *testing.T) {
	stateDir := t.TempDir()
	args := []string{
		"-listen", "127.0.0.1:0", "-json",
		"-machines", "2", "-workloads", "Prime", "-seed", "7",
		"-lifecycle", "-promote-margin", "0.99", "-probation", "8",
		"-state-dir", stateDir, "-checkpoint-interval", "50ms",
	}
	c1 := startChild(t, args...)
	serving := c1.waitEvent("serving", 90*time.Second)
	base := "http://" + serving["addr"].(string)

	// Fill the retrain buffers with labeled traffic so the manual trigger
	// has something to fit, and capture the pre-crash ground truth.
	rows := probeRows()
	for i := 0; i < 100; i++ {
		postEstimate(t, base, rows[i%len(rows)], 50+float64(i%13))
	}
	before := make([]estimateResult, len(rows))
	for k, row := range rows {
		before[k] = postEstimate(t, base, row, 0)
	}
	activeBefore := activeVersion(t, base)
	if activeBefore == "" {
		t.Fatal("no active version before crash")
	}

	// Kick off a retrain and kill -9 while it is (at best) mid-fit. The
	// journal may or may not carry the challenger admission — either way
	// the active version must survive.
	resp, err := http.Post(base+"/v1/lifecycle/retrain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("retrain trigger = %d, want 202", resp.StatusCode)
	}
	if err := c1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	c1.waitExit(30 * time.Second)

	// The restart: same state dir, no re-bootstrap. It must announce
	// recovery and serve the identical model state.
	c2 := startChild(t, args...)
	recovered := c2.waitEvent("recovered", 90*time.Second)
	if got := recovered["active"].(string); got != activeBefore {
		t.Errorf("recovered active = %q, want pre-crash %q", got, activeBefore)
	}
	if got := recovered["versions"].(float64); got < 2 {
		t.Errorf("recovered versions = %g, want >= 2", got)
	}
	serving2 := c2.waitEvent("serving", 90*time.Second)
	base2 := "http://" + serving2["addr"].(string)
	if got := activeVersion(t, base2); got != activeBefore {
		t.Errorf("active after restart = %q, want %q", got, activeBefore)
	}
	for k, row := range rows {
		after := postEstimate(t, base2, row, 0)
		if !reflect.DeepEqual(after, before[k]) {
			t.Errorf("estimate %d diverged across the crash:\n before %+v\n after  %+v", k, before[k], after)
		}
	}

	// The second boot must not have re-bootstrapped: no "trained" event.
	if got := serving2["active"].(string); got != activeBefore {
		t.Errorf("serving event active = %q, want %q", got, activeBefore)
	}
}

// TestRecoveryGracefulShutdownServe locks the SIGTERM path: the daemon
// drains its shards, takes a final lifecycle checkpoint, and emits the
// shutdown event with the drain and checkpoint accounting; a subsequent
// boot recovers the same state.
func TestRecoveryGracefulShutdownServe(t *testing.T) {
	stateDir := t.TempDir()
	args := []string{
		"-listen", "127.0.0.1:0", "-json",
		"-machines", "2", "-workloads", "Prime", "-seed", "7",
		"-lifecycle", "-promote-margin", "0.99",
		"-state-dir", stateDir,
	}
	c1 := startChild(t, args...)
	serving := c1.waitEvent("serving", 90*time.Second)
	base := "http://" + serving["addr"].(string)

	rows := probeRows()
	for i := 0; i < 20; i++ {
		postEstimate(t, base, rows[i%len(rows)], 40+float64(i))
	}
	activeBefore := activeVersion(t, base)

	if err := c1.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	shutdown := c1.waitEvent("shutdown", 60*time.Second)
	c1.waitExit(30 * time.Second)
	if c1.err != nil {
		t.Errorf("SIGTERM exit: %v (want clean exit 0); stderr:\n%s", c1.err, c1.stderr.String())
	}
	if _, ok := shutdown["drained_samples"].(float64); !ok {
		t.Errorf("shutdown event missing drained_samples: %+v", shutdown)
	}
	if got, ok := shutdown["checkpoint_bytes"].(float64); !ok || got <= 0 {
		t.Errorf("shutdown checkpoint_bytes = %v, want > 0 (final checkpoint flushed)", shutdown["checkpoint_bytes"])
	}
	if got := shutdown["active"].(string); got != activeBefore {
		t.Errorf("shutdown active = %q, want %q", got, activeBefore)
	}

	// The state dir holds the full durable layout.
	for _, rel := range []string{
		filepath.Join("models", "journal.log"), "meta.json", "lifecycle.ckpt",
	} {
		if _, err := os.Stat(filepath.Join(stateDir, rel)); err != nil {
			t.Errorf("after shutdown: %v", err)
		}
	}

	// And the next boot resumes from it.
	c2 := startChild(t, args...)
	recovered := c2.waitEvent("recovered", 90*time.Second)
	if got := recovered["active"].(string); got != activeBefore {
		t.Errorf("recovered active = %q, want %q", got, activeBefore)
	}
	if got, ok := recovered["lifecycle_state"].(string); !ok || got == "" {
		t.Errorf("recovered lifecycle_state = %v, want the restored state machine phase", recovered["lifecycle_state"])
	}
	c2.waitEvent("serving", 90*time.Second)
}

// TestRecoveryTornStateDirServe corrupts the journal tail on disk between
// two boots — the torn-write a kill -9 mid-append leaves behind — and
// checks the daemon reports the truncation and still serves the last
// intact state.
func TestRecoveryTornStateDirServe(t *testing.T) {
	stateDir := t.TempDir()
	args := []string{
		"-listen", "127.0.0.1:0", "-json",
		"-machines", "2", "-workloads", "Prime", "-seed", "7",
		"-state-dir", stateDir,
	}
	c1 := startChild(t, args...)
	serving := c1.waitEvent("serving", 90*time.Second)
	base := "http://" + serving["addr"].(string)
	rows := probeRows()
	before := postEstimate(t, base, rows[0], 0)
	activeBefore := activeVersion(t, base)
	if err := c1.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	c1.waitExit(30 * time.Second)

	// Tear the tail: append half a frame of garbage, as if the process
	// died mid-append.
	journal := filepath.Join(stateDir, "models", "journal.log")
	f, err := os.OpenFile(journal, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c2 := startChild(t, args...)
	truncated := c2.waitEvent("journal_truncated", 90*time.Second)
	if got := truncated["bytes"].(float64); got <= 0 {
		t.Errorf("journal_truncated bytes = %g, want > 0", got)
	}
	serving2 := c2.waitEvent("serving", 90*time.Second)
	base2 := "http://" + serving2["addr"].(string)
	if got := activeVersion(t, base2); got != activeBefore {
		t.Errorf("active after torn tail = %q, want %q", got, activeBefore)
	}
	if after := postEstimate(t, base2, rows[0], 0); !reflect.DeepEqual(after, before) {
		t.Errorf("estimate diverged across torn-tail recovery:\n before %+v\n after  %+v", before, after)
	}
}

// TestRecoveryColdStateDir locks the first-boot contract: an empty
// -state-dir bootstraps normally (trained event, no recovered event) and
// leaves a replayable journal behind.
func TestRecoveryColdStateDir(t *testing.T) {
	stateDir := filepath.Join(t.TempDir(), "nested", "state")
	var stdout bytes.Buffer
	probed := false
	cfg := config{
		Listen: "127.0.0.1:0", JSON: true,
		Platform: "Core2", Machines: 2, Workloads: []string{"Prime"}, Seed: 7, Tech: "linear",
		StateDir: stateDir,
		holdOpen: func(addr string) { probed = true },
	}
	if err := run(&stdout, cfg); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !probed {
		t.Fatal("holdOpen never ran")
	}
	events := parseEvents(t, stdout.String())
	if events["trained"] == nil {
		t.Error("first boot on an empty state dir should bootstrap (trained event)")
	}
	if events["recovered"] != nil {
		t.Error("first boot emitted a recovered event")
	}
	if fi, err := os.Stat(filepath.Join(stateDir, "models", "journal.log")); err != nil || fi.Size() == 0 {
		t.Errorf("journal after first boot: %v (size %v), want non-empty", err, fi)
	}
	if _, err := os.Stat(filepath.Join(stateDir, "meta.json")); err != nil {
		t.Errorf("meta.json after first boot: %v", err)
	}

	// Second in-process run on the same dir: recovered, same active model.
	var stdout2 bytes.Buffer
	cfg2 := cfg
	var active2 string
	cfg2.holdOpen = func(addr string) { active2 = activeVersion(t, "http://"+addr) }
	if err := run(&stdout2, cfg2); err != nil {
		t.Fatalf("second run: %v", err)
	}
	events2 := parseEvents(t, stdout2.String())
	if events2["recovered"] == nil {
		t.Fatalf("second boot missing recovered event:\n%s", stdout2.String())
	}
	if events2["trained"] != nil {
		t.Error("second boot re-bootstrapped despite a populated state dir")
	}
	if active2 != "v1" {
		t.Errorf("second boot active = %q, want v1", active2)
	}
}
