// Fleet profiles describe how one machine in a large simulated fleet
// oscillates between idleness and activity, as opposed to the Dryad jobs,
// which script a whole small cluster through one batch computation. A
// profile is a stateless burst generator: given the machine's private RNG
// stream and the current simulated second, it yields the next activity
// burst (start, duration, intensity). The event-driven cluster simulator
// turns those bursts into per-second demand with Demand, and schedules
// nothing at all between them — which is what makes tens of thousands of
// mostly-idle machines cheap to simulate.
package workloads

import (
	"fmt"
	"math"

	"repro/internal/mathx"
	"repro/internal/sim"
)

// Fleet profile kinds.
const (
	// ProfileIdle machines never run work: powered on, contributing idle
	// watts, generating zero simulation events.
	ProfileIdle = "idle"
	// ProfileSteady machines run a constant moderate load (storage or
	// database nodes): long bursts back to back.
	ProfileSteady = "steady"
	// ProfileBursty machines sit idle and periodically run short intense
	// jobs (batch workers): exponential gaps, CPU/network-heavy bursts.
	ProfileBursty = "bursty"
	// ProfileDiurnal machines follow the shared datacenter day/night
	// curve (web serving): busy fraction swings with simulated
	// time-of-day, identical curve for every machine, desynchronized
	// only by each machine's private stream.
	ProfileDiurnal = "diurnal"
	// ProfileHeavy machines run near-saturating CPU bursts back to back
	// (HPC / dedicated batch nodes). They spend most wall-clock time far
	// above the idle floor, which is what gives a power-capping
	// controller real dynamic range to work with.
	ProfileHeavy = "heavy"
)

// FleetProfileKinds returns the supported kinds in canonical order.
func FleetProfileKinds() []string {
	return []string{ProfileIdle, ProfileSteady, ProfileBursty, ProfileDiurnal, ProfileHeavy}
}

// FleetProfile generates a machine's activity bursts. Profiles hold no
// per-machine state: everything machine-specific flows through the rng.
type FleetProfile struct {
	Kind string
}

// FleetProfileByName returns the named profile.
func FleetProfileByName(kind string) (*FleetProfile, error) {
	for _, k := range FleetProfileKinds() {
		if k == kind {
			return &FleetProfile{Kind: kind}, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown fleet profile %q (want one of %v)", kind, FleetProfileKinds())
}

// diurnalBusyFraction is the shared datacenter activity curve: the busy
// probability by simulated time-of-day (86400-second period), lowest in
// the simulated night, peaking mid-day.
func diurnalBusyFraction(t int64) float64 {
	phase := 2 * math.Pi * float64(t%86400) / 86400
	return 0.12 + 0.38*(1+math.Sin(phase-math.Pi/2))/2
}

// NextBurst returns the machine's next activity burst starting at or
// after now: the start second, a duration in seconds (≥ 1), and an
// intensity level in (0, 1]. ok is false when the machine never becomes
// active again (the idle profile). Bursts are sampled from the machine's
// private stream, so the same (seed, profile) pair replays identically.
func (p *FleetProfile) NextBurst(rng *mathx.SplitMix64, now int64) (start, dur int64, level float64, ok bool) {
	switch p.Kind {
	case ProfileIdle:
		return 0, 0, 0, false
	case ProfileSteady:
		// Back-to-back long bursts; short gaps keep the governor honest.
		gap := int64(rng.Intn(3))
		dur = 240 + int64(rng.ExpFloat64()*120)
		level = clampLevel(0.35 + 0.2*rng.NormFloat64()*0.25 + 0.15*rng.Float64())
		return now + gap, dur, level, true
	case ProfileBursty:
		gap := int64(rng.ExpFloat64() * 600)
		dur = 1 + int64(rng.ExpFloat64()*60)
		level = clampLevel(0.55 + 0.4*rng.Float64())
		return now + 1 + gap, dur, level, true
	case ProfileDiurnal:
		// Mean gap keeps the long-run busy fraction near the shared
		// curve's value at the time the gap begins: with mean burst
		// length L and busy fraction b, the mean gap is L·(1-b)/b.
		const meanDur = 120.0
		b := diurnalBusyFraction(now)
		gap := int64(rng.ExpFloat64() * meanDur * (1 - b) / b)
		dur = 1 + int64(rng.ExpFloat64()*meanDur)
		level = clampLevel(b + 0.3*rng.Float64())
		return now + 1 + gap, dur, level, true
	case ProfileHeavy:
		// Nearly back-to-back hot bursts: ~97% duty cycle at high level.
		gap := int64(rng.Intn(3))
		dur = 120 + int64(rng.ExpFloat64()*90)
		level = clampLevel(0.65 + 0.2*rng.Float64() + 0.05*rng.NormFloat64())
		return now + gap, dur, level, true
	default:
		return 0, 0, 0, false
	}
}

func clampLevel(v float64) float64 { return math.Min(1, math.Max(0.05, v)) }

// Demand converts a burst intensity into one second of machine demand,
// sized against the platform's capabilities so a level-1.0 burst drives
// the machine near saturation on the profile's dominant resources.
func (p *FleetProfile) Demand(spec *sim.PlatformSpec, level float64) sim.Demand {
	cores := float64(spec.Cores)
	diskB := spec.DiskBytesPerSec()
	diskOps := spec.DiskOpsPerSec()
	netB := spec.NetBytesPerSec()
	memB := spec.MemBandwidthBytesPerSec()
	var d sim.Demand
	switch p.Kind {
	case ProfileSteady:
		// Storage/database shape: moderate CPU, sustained disk, some net.
		d = sim.Demand{
			CPU:            level * cores * 0.5,
			DiskReadBytes:  level * diskB * 0.35,
			DiskWriteBytes: level * diskB * 0.2,
			NetSendBytes:   level * netB * 0.2,
			NetRecvBytes:   level * netB * 0.15,
			MemTouchBytes:  level * memB * 0.25,
		}
	case ProfileBursty:
		// Batch-worker shape: CPU saturating, shuffle-style network.
		d = sim.Demand{
			CPU:           level * cores,
			DiskReadBytes: level * diskB * 0.15,
			NetSendBytes:  level * netB * 0.45,
			NetRecvBytes:  level * netB * 0.45,
			MemTouchBytes: level * memB * 0.5,
		}
	case ProfileDiurnal:
		// Web-serving shape: request traffic in and out, read-mostly
		// disk, fractional CPU per request.
		d = sim.Demand{
			CPU:           level * cores * 0.6,
			DiskReadBytes: level * diskB * 0.25,
			NetSendBytes:  level * netB * 0.5,
			NetRecvBytes:  level * netB * 0.3,
			MemTouchBytes: level * memB * 0.35,
		}
	case ProfileHeavy:
		// Compute-bound shape: CPU pinned near saturation, warm memory,
		// light IO. The dominant knob is DVFS, so these machines respond
		// strongly to frequency caps.
		d = sim.Demand{
			CPU:           level * cores,
			DiskReadBytes: level * diskB * 0.1,
			NetSendBytes:  level * netB * 0.15,
			NetRecvBytes:  level * netB * 0.1,
			MemTouchBytes: level * memB * 0.45,
		}
	default: // idle profile never produces demand
		return sim.Demand{}
	}
	const avgIO = 128 * 1024
	d.DiskReadOps = math.Min(d.DiskReadBytes/avgIO, diskOps*0.8)
	d.DiskWriteOps = math.Min(d.DiskWriteBytes/avgIO, diskOps*0.8)
	d.WorkingSet = level * float64(spec.MemGB) * 1e9 * 0.3
	d.RunningTasks = 1 + int(level*cores)
	return d
}
