package obs

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo is what a running daemon can report about the binary it was
// built from — the answer to "which code is this fleet actually running?"
// during an incident.
type BuildInfo struct {
	GoVersion     string `json:"go_version"`
	ModuleVersion string `json:"module_version"`
	VCSRevision   string `json:"vcs_revision"`
	VCSTime       string `json:"vcs_time,omitempty"`
	Modified      bool   `json:"vcs_modified,omitempty"`
}

// ReadBuild extracts build metadata from the binary. Fields the toolchain
// did not stamp (e.g. a plain `go test` binary has no VCS info) come back
// as "unknown" so the metric labels never go empty.
func ReadBuild() BuildInfo {
	out := BuildInfo{
		GoVersion:     runtime.Version(),
		ModuleVersion: "unknown",
		VCSRevision:   "unknown",
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	if bi.Main.Version != "" {
		out.ModuleVersion = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			if s.Value != "" {
				out.VCSRevision = s.Value
			}
		case "vcs.time":
			out.VCSTime = s.Value
		case "vcs.modified":
			out.Modified = s.Value == "true"
		}
	}
	return out
}

// RegisterBuildInfo sets the constant chaos_build_info gauge (value 1,
// identity in the labels — the standard Prometheus build-info idiom) on
// reg and returns what it read. Every daemon calls this once at startup.
func RegisterBuildInfo(reg *Registry) BuildInfo {
	if reg == nil {
		reg = Default()
	}
	bi := ReadBuild()
	reg.Gauge("chaos_build_info", Labels{
		"go_version":     bi.GoVersion,
		"module_version": bi.ModuleVersion,
		"vcs_revision":   bi.VCSRevision,
	}).Set(1)
	return bi
}
