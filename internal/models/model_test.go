package models

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/counters"
	"repro/internal/mathx"
	"repro/internal/trace"
)

// synthNonlinear builds data where power is nonlinear in util and depends
// on frequency state, like a DVFS machine.
func synthNonlinear(seed int64, n int) (*mathx.Matrix, []float64) {
	r := rand.New(rand.NewSource(seed))
	x := mathx.NewMatrix(n, 2) // util [0,100], freq {800, 1600, 2260}
	y := make([]float64, n)
	freqs := []float64{800, 1600, 2260}
	for i := 0; i < n; i++ {
		u := r.Float64() * 100
		f := freqs[r.Intn(3)]
		x.Set(i, 0, u)
		x.Set(i, 1, f)
		fr := f / 2260
		v := 0.6 + 0.4*fr
		y[i] = 25 + 21*fr*v*v*(0.2+0.8*u/100) + r.NormFloat64()*0.2
	}
	return x, y
}

func fitRMSE(t *testing.T, tech Technique, x *mathx.Matrix, y []float64, opts FitOptions) float64 {
	t.Helper()
	m, err := Fit(tech, x, y, opts)
	if err != nil {
		t.Fatalf("Fit(%s): %v", tech, err)
	}
	s := 0.0
	for i := 0; i < x.Rows; i++ {
		d := m.Predict(x.Row(i)) - y[i]
		s += d * d
	}
	return math.Sqrt(s / float64(x.Rows))
}

func TestFitAllTechniques(t *testing.T) {
	x, y := synthNonlinear(1, 800)
	lin := fitRMSE(t, TechLinear, x, y, FitOptions{})
	pw := fitRMSE(t, TechPiecewise, x, y, FitOptions{})
	q := fitRMSE(t, TechQuadratic, x, y, FitOptions{})
	sw := fitRMSE(t, TechSwitching, x, y, FitOptions{FreqCol: 1})
	// Nonlinear techniques must beat the linear baseline on DVFS data.
	if q >= lin || sw >= lin {
		t.Errorf("quadratic (%v) and switching (%v) should beat linear (%v)", q, sw, lin)
	}
	if pw > lin*1.05 {
		t.Errorf("piecewise (%v) should not lose badly to linear (%v)", pw, lin)
	}
	// The quadratic model captures the util x freq interaction.
	if q > 1.0 {
		t.Errorf("quadratic RMSE = %v, want small on its native data", q)
	}
}

func TestFitValidation(t *testing.T) {
	x, y := synthNonlinear(2, 50)
	if _, err := Fit(TechQuadratic, x.SelectCols([]int{0}), y, FitOptions{}); err == nil {
		t.Error("quadratic with one feature should fail (paper: requires multiple features)")
	}
	if _, err := Fit(TechSwitching, x.SelectCols([]int{0}), y, FitOptions{}); err == nil {
		t.Error("switching with one feature should fail")
	}
	if _, err := Fit(TechSwitching, x, y, FitOptions{FreqCol: -1}); err == nil {
		t.Error("switching without a frequency column should fail")
	}
	if _, err := Fit(Technique("cubist"), x, y, FitOptions{}); err == nil {
		t.Error("unknown technique should fail")
	}
	if _, err := Fit(TechLinear, mathx.NewMatrix(0, 0), nil, FitOptions{}); err == nil {
		t.Error("empty design should fail")
	}
}

func TestSwitchingBinsPerFrequency(t *testing.T) {
	x, y := synthNonlinear(3, 900)
	m, err := Fit(TechSwitching, x, y, FitOptions{FreqCol: 1})
	if err != nil {
		t.Fatal(err)
	}
	sw := m.(*Switching)
	if len(sw.Bins) != 3 {
		t.Errorf("got %d frequency bins, want 3 P-states", len(sw.Bins))
	}
	if sw.NumInputs() != 2 || sw.Technique() != TechSwitching {
		t.Errorf("metadata wrong: %d inputs, %s", sw.NumInputs(), sw.Technique())
	}
	// Each bin should predict its own regime well.
	for i := 0; i < x.Rows; i += 97 {
		row := x.Row(i)
		if p := m.Predict(row); math.Abs(p-y[i]) > 3 {
			t.Errorf("switching prediction %v vs actual %v at row %d", p, y[i], i)
		}
	}
}

func TestSwitchingSingleFrequencyFallsBack(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	n := 200
	x := mathx.NewMatrix(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		u := r.Float64() * 100
		x.Set(i, 0, u)
		x.Set(i, 1, 1600) // constant frequency
		y[i] = 20 + 0.1*u
	}
	m, err := Fit(TechSwitching, x, y, FitOptions{FreqCol: 1})
	if err != nil {
		t.Fatal(err)
	}
	sw := m.(*Switching)
	if len(sw.Bins) != 0 {
		t.Errorf("constant frequency should produce no bins, got %d", len(sw.Bins))
	}
	if p := m.Predict([]float64{50, 1600}); math.Abs(p-25) > 0.5 {
		t.Errorf("fallback prediction = %v, want ~25", p)
	}
}

func TestTechniqueShortCodes(t *testing.T) {
	want := map[Technique]string{TechLinear: "L", TechPiecewise: "P", TechQuadratic: "Q", TechSwitching: "S"}
	for tech, code := range want {
		if tech.Short() != code {
			t.Errorf("%s.Short() = %s", tech, tech.Short())
		}
	}
	if Technique("x").Short() != "?" {
		t.Error("unknown technique should map to ?")
	}
	if len(Techniques()) != 4 {
		t.Error("Techniques() should list all four")
	}
}

func TestFeatureSpecLabels(t *testing.T) {
	cases := []struct {
		spec FeatureSpec
		want string
	}{
		{FeatureSpec{Name: "cpu-only"}, "U"},
		{FeatureSpec{Name: "cluster"}, "C"},
		{FeatureSpec{Name: "general"}, "G"},
		{FeatureSpec{Name: "cluster", LagFreq: true}, "CP"},
		{FeatureSpec{Name: "custom"}, "custom"},
	}
	for _, c := range cases {
		if got := c.spec.Label(); got != c.want {
			t.Errorf("Label(%v) = %q, want %q", c.spec.Name, got, c.want)
		}
	}
}

// designTrace builds a small trace with three counters including the
// canonical frequency counter.
func designTrace(t *testing.T, n int) *trace.Trace {
	t.Helper()
	names := []string{counters.CPUTotal, counters.CPUFreqCore0, counters.DiskBytes}
	b := trace.NewBuilder("Core2", "Sort", "m0", 0, names, 25)
	for i := 0; i < n; i++ {
		if err := b.Add([]float64{float64(i), 1000 + float64(i)*10, float64(i * 1000)}, 30, 30); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuildDesignLagFreq(t *testing.T) {
	tr := designTrace(t, 5)
	spec := FeatureSpec{Name: "cluster", Counters: tr.Names, LagFreq: true}
	x, y, err := BuildDesign(tr, spec)
	if err != nil {
		t.Fatal(err)
	}
	if x.Cols != 4 || len(y) != 5 {
		t.Fatalf("design dims %dx%d", x.Rows, x.Cols)
	}
	// Lag column: row 0 repeats itself, row i carries row i-1's freq.
	if x.At(0, 3) != 1000 {
		t.Errorf("lag[0] = %v, want 1000", x.At(0, 3))
	}
	if x.At(3, 3) != 1020 {
		t.Errorf("lag[3] = %v, want freq at t=2 (1020)", x.At(3, 3))
	}
}

func TestBuildDesignLagFreqRequiresFreqCounter(t *testing.T) {
	tr := designTrace(t, 5)
	spec := FeatureSpec{Name: "x", Counters: []string{counters.CPUTotal}, LagFreq: true}
	if _, _, err := BuildDesign(tr, spec); err == nil {
		t.Error("expected error when LagFreq set without the frequency counter")
	}
}

func TestBuildPooledDesignIsolatesLagAcrossTraces(t *testing.T) {
	a := designTrace(t, 3)
	b := designTrace(t, 3)
	spec := FeatureSpec{Name: "cluster", Counters: a.Names, LagFreq: true}
	x, _, err := BuildPooledDesign([]*trace.Trace{a, b}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows != 6 {
		t.Fatalf("pooled rows = %d", x.Rows)
	}
	// Row 3 is the second trace's first sample: its lag must be its own
	// frequency, not the first trace's last.
	if x.At(3, 3) != 1000 {
		t.Errorf("cross-trace lag leak: lag = %v, want 1000", x.At(3, 3))
	}
}

func TestBuildDesignLagWindow(t *testing.T) {
	tr := designTrace(t, 6)
	spec := FeatureSpec{Name: "cluster", Counters: tr.Names, LagWindow: 3}
	x, _, err := BuildDesign(tr, spec)
	if err != nil {
		t.Fatal(err)
	}
	if x.Cols != 6 { // 3 counters + 3 lags
		t.Fatalf("cols = %d, want 6", x.Cols)
	}
	// Row 4: lags at t-1, t-2, t-3 carry freqs 1030, 1020, 1010.
	if x.At(4, 3) != 1030 || x.At(4, 4) != 1020 || x.At(4, 5) != 1010 {
		t.Errorf("lag window values = %v %v %v", x.At(4, 3), x.At(4, 4), x.At(4, 5))
	}
	// Early rows clamp to the first sample.
	if x.At(0, 5) != 1000 {
		t.Errorf("clamped lag = %v, want 1000", x.At(0, 5))
	}
	if spec.NumInputs() != 6 {
		t.Errorf("NumInputs = %d", spec.NumInputs())
	}
	if got := spec.Label(); got != "CP3" {
		t.Errorf("Label = %q, want CP3", got)
	}
}

func TestLagWindowOverridesLagFreq(t *testing.T) {
	spec := FeatureSpec{Name: "cluster", Counters: []string{counters.CPUFreqCore0}, LagFreq: true, LagWindow: 2}
	if spec.NumInputs() != 3 {
		t.Errorf("NumInputs = %d, want 3", spec.NumInputs())
	}
	if spec.Label() != "CP2" {
		t.Errorf("Label = %q", spec.Label())
	}
}

func TestCPUOnlySpec(t *testing.T) {
	s := CPUOnlySpec()
	if len(s.Counters) != 1 || s.Counters[0] != counters.CPUTotal {
		t.Errorf("CPUOnlySpec = %+v", s)
	}
	if s.NumInputs() != 1 {
		t.Errorf("NumInputs = %d", s.NumInputs())
	}
}
