package regress

import (
	"fmt"
	"math"

	"repro/internal/mathx"
	"repro/internal/obs"
)

// LassoResult holds an L1-regularized linear fit in the original (not
// standardized) coordinate system.
type LassoResult struct {
	Intercept  float64
	Coef       []float64
	Lambda     float64
	Iterations int
	Converged  bool
}

// Selected returns the indices of predictors with nonzero coefficients.
func (l *LassoResult) Selected() []int {
	var out []int
	for j, c := range l.Coef {
		if c != 0 {
			out = append(out, j)
		}
	}
	return out
}

// Predict returns the fitted value for one predictor row.
func (l *LassoResult) Predict(x []float64) float64 {
	y := l.Intercept
	for j, c := range l.Coef {
		y += c * x[j]
	}
	return y
}

func softThreshold(z, gamma float64) float64 {
	switch {
	case z > gamma:
		return z - gamma
	case z < -gamma:
		return z + gamma
	default:
		return 0
	}
}

// Lasso fits an L1-regularized linear regression by cyclic coordinate
// descent on standardized predictors (Friedman et al.'s glmnet update).
// lambda is expressed on the standardized scale; larger values zero out
// more coefficients. This is step 3 of the paper's Algorithm 1, used to
// discard irrelevant features in high-dimensional counter spaces.
func Lasso(x *mathx.Matrix, y []float64, lambda float64, maxIter int) (*LassoResult, error) {
	n, p := x.Rows, x.Cols
	if n != len(y) {
		return nil, fmt.Errorf("regress: %d rows but %d responses", n, len(y))
	}
	if n < 2 {
		return nil, fmt.Errorf("regress: lasso needs at least 2 observations, got %d", n)
	}
	if lambda < 0 {
		return nil, fmt.Errorf("regress: negative lambda %g", lambda)
	}
	if maxIter <= 0 {
		maxIter = 1000
	}
	// Standardize predictors and center the response.
	cols := make([][]float64, p)
	means := make([]float64, p)
	scales := make([]float64, p)
	for j := 0; j < p; j++ {
		cols[j], means[j], scales[j] = mathx.Standardize(x.Col(j))
	}
	ybar := mathx.Mean(y)
	resid := make([]float64, n)
	for i := range resid {
		resid[i] = y[i] - ybar
	}
	beta := make([]float64, p) // standardized-scale coefficients
	nf := float64(n)
	var iter int
	converged := false
	for iter = 0; iter < maxIter; iter++ {
		maxDelta := 0.0
		for j := 0; j < p; j++ {
			cj := cols[j]
			// rho = (1/n) Σ x_ij (resid_i + x_ij β_j); unit variance
			// columns make the denominator 1.
			rho := 0.0
			for i := 0; i < n; i++ {
				rho += cj[i] * resid[i]
			}
			rho = rho/nf + beta[j]
			newBeta := softThreshold(rho, lambda)
			if d := newBeta - beta[j]; d != 0 {
				for i := 0; i < n; i++ {
					resid[i] -= d * cj[i]
				}
				if a := math.Abs(d); a > maxDelta {
					maxDelta = a
				}
				beta[j] = newBeta
			}
		}
		if maxDelta < 1e-7 {
			converged = true
			break
		}
	}
	// Back-transform to original coordinates.
	out := &LassoResult{
		Coef:       make([]float64, p),
		Lambda:     lambda,
		Iterations: iter + 1,
		Converged:  converged,
	}
	intercept := ybar
	for j := 0; j < p; j++ {
		if beta[j] == 0 {
			continue
		}
		c := beta[j] / scales[j]
		out.Coef[j] = c
		intercept -= c * means[j]
	}
	out.Intercept = intercept
	return out, nil
}

// LassoMaxLambda returns the smallest lambda at which all coefficients are
// zero for the given data (on the standardized scale). Useful to construct
// a regularization path.
func LassoMaxLambda(x *mathx.Matrix, y []float64) float64 {
	n, p := x.Rows, x.Cols
	if n == 0 || p == 0 {
		return 0
	}
	ybar := mathx.Mean(y)
	maxAbs := 0.0
	for j := 0; j < p; j++ {
		z, _, _ := mathx.Standardize(x.Col(j))
		dot := 0.0
		for i := 0; i < n; i++ {
			dot += z[i] * (y[i] - ybar)
		}
		if a := math.Abs(dot) / float64(n); a > maxAbs {
			maxAbs = a
		}
	}
	return maxAbs
}

// LassoPath fits the lasso over a geometric grid of nLambda values from
// LassoMaxLambda down to ratio times it, returning fits from most to least
// regularized. It is used to pick a lambda that keeps roughly targetK
// features (Algorithm 1 step 3 wants "on the order of 10").
func LassoPath(x *mathx.Matrix, y []float64, nLambda int, ratio float64) ([]*LassoResult, error) {
	if nLambda < 2 {
		return nil, fmt.Errorf("regress: lasso path needs at least 2 lambdas, got %d", nLambda)
	}
	if ratio <= 0 || ratio >= 1 {
		return nil, fmt.Errorf("regress: lasso path ratio %g out of (0,1)", ratio)
	}
	lmax := LassoMaxLambda(x, y)
	if lmax == 0 {
		lmax = 1
	}
	out := make([]*LassoResult, 0, nLambda)
	for k := 0; k < nLambda; k++ {
		frac := float64(k) / float64(nLambda-1)
		lambda := lmax * math.Pow(ratio, frac)
		fit, err := Lasso(x, y, lambda, 2000)
		if err != nil {
			return nil, err
		}
		out = append(out, fit)
	}
	return out, nil
}

// LassoSelect runs a lasso path and returns the selected feature indices of
// the first (most regularized) fit that keeps at least targetK features; if
// none does, it returns the least-regularized fit's selection.
func LassoSelect(x *mathx.Matrix, y []float64, targetK int) ([]int, error) {
	span := obs.StartSpan("regress.lasso_select", obs.Int("cols", x.Cols), obs.Int("target_k", targetK))
	defer span.End()
	path, err := LassoPath(x, y, 30, 1e-3)
	if err != nil {
		return nil, err
	}
	for _, fit := range path {
		if sel := fit.Selected(); len(sel) >= targetK {
			return sel, nil
		}
	}
	return path[len(path)-1].Selected(), nil
}
