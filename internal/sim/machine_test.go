package sim

import (
	"math"
	"testing"

	"repro/internal/counters"
)

func newTestMachine(t *testing.T, platform string, seed int64) *Machine {
	t.Helper()
	spec, err := Platform(platform)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(spec, "m0", seed)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPlatformsValid(t *testing.T) {
	for name, spec := range Platforms() {
		if err := spec.Validate(); err != nil {
			t.Errorf("platform %s: %v", name, err)
		}
	}
	if len(PlatformNames()) != 6 {
		t.Errorf("expected 6 platforms, got %d", len(PlatformNames()))
	}
	for _, name := range PlatformNames() {
		if _, err := Platform(name); err != nil {
			t.Errorf("Platform(%q): %v", name, err)
		}
	}
	if _, err := Platform("PDP11"); err == nil {
		t.Error("expected error for unknown platform")
	}
}

func TestSpecValidateRejectsBadSpecs(t *testing.T) {
	base := *Platforms()["Core2"]
	bad := base
	bad.Cores = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected error for zero cores")
	}
	bad = base
	bad.FreqStatesMHz = []float64{2000, 1000}
	if err := bad.Validate(); err == nil {
		t.Error("expected error for descending P-states")
	}
	bad = base
	bad.IdlePowerW = 50
	bad.MaxPowerW = 40
	if err := bad.Validate(); err == nil {
		t.Error("expected error for inverted power range")
	}
	bad = base
	bad.CPUWeight = 0.1
	if err := bad.Validate(); err == nil {
		t.Error("expected error for weights not summing to 1")
	}
}

func idleDemand() Demand { return Demand{} }

func fullDemand(m *Machine) Demand {
	s := m.Spec
	return Demand{
		CPU:            float64(s.Cores) * 1.2,
		DiskReadBytes:  m.totalDiskBytes,
		DiskWriteBytes: m.totalDiskBytes,
		DiskReadOps:    m.totalDiskOps,
		DiskWriteOps:   m.totalDiskOps,
		NetSendBytes:   m.netBytesPerSec,
		NetRecvBytes:   m.netBytesPerSec,
		MemTouchBytes:  m.memBandwidth * 2,
		WorkingSet:     4e9,
		RunningTasks:   s.Cores,
	}
}

// TestPowerRangeCalibration: idle power should sit near the platform's
// Table I idle figure, and sustained full load should approach the max.
func TestPowerRangeCalibration(t *testing.T) {
	for _, name := range PlatformNames() {
		m := newTestMachine(t, name, 42)
		spec := m.Spec
		// Settle at idle.
		var idleSum float64
		for i := 0; i < 60; i++ {
			_, _, p := m.Step(idleDemand())
			if i >= 30 {
				idleSum += p.TrueWatts
			}
		}
		idleAvg := idleSum / 30
		if math.Abs(idleAvg-spec.IdlePowerW)/spec.IdlePowerW > 0.12 {
			t.Errorf("%s: idle power %.1f W, spec %.1f W", name, idleAvg, spec.IdlePowerW)
		}
		// Sustained full load (give the governor time to ramp).
		var maxSeen float64
		for i := 0; i < 60; i++ {
			_, _, p := m.Step(fullDemand(m))
			if p.TrueWatts > maxSeen {
				maxSeen = p.TrueWatts
			}
		}
		if maxSeen < spec.MaxPowerW*0.85 {
			t.Errorf("%s: max power %.1f W, spec %.1f W", name, maxSeen, spec.MaxPowerW)
		}
		if maxSeen > spec.MaxPowerW*1.15 {
			t.Errorf("%s: max power %.1f W exceeds spec %.1f W", name, maxSeen, spec.MaxPowerW)
		}
	}
}

func TestMeterErrorBounded(t *testing.T) {
	m := newTestMachine(t, "Opteron", 7)
	var n, within int
	for i := 0; i < 500; i++ {
		_, _, p := m.Step(fullDemand(m))
		n++
		if math.Abs(p.MeterWatts-p.TrueWatts)/p.TrueWatts <= 0.015 {
			within++
		}
		// Quantization to 0.1 W.
		r := math.Mod(math.Abs(p.MeterWatts)+1e-9, 0.1)
		if r > 1e-6 && r < 0.1-1e-6 {
			t.Fatalf("meter reading %v not quantized to 0.1 W", p.MeterWatts)
		}
	}
	if frac := float64(within) / float64(n); frac < 0.90 {
		t.Errorf("only %.0f%% of meter readings within 1.5%%", frac*100)
	}
}

func TestDVFSGovernorRampsUpAndDown(t *testing.T) {
	m := newTestMachine(t, "Core2", 11)
	top := len(m.Spec.FreqStatesMHz) - 1
	for i := 0; i < 30; i++ {
		m.Step(fullDemand(m))
	}
	if m.freqIdx[0] != top {
		t.Errorf("after sustained load, P-state = %d, want %d", m.freqIdx[0], top)
	}
	for i := 0; i < 60; i++ {
		m.Step(idleDemand())
	}
	if m.freqIdx[0] != 0 {
		t.Errorf("after sustained idle, P-state = %d, want 0", m.freqIdx[0])
	}
}

func TestAtomHasNoDVFS(t *testing.T) {
	m := newTestMachine(t, "Atom", 12)
	for i := 0; i < 20; i++ {
		_, sig, _ := m.Step(fullDemand(m))
		if f := sig["core_freq_0"]; math.Abs(f-1600) > 25 {
			t.Fatalf("Atom frequency = %v, want ~1600 (no DVFS)", f)
		}
	}
}

func TestServerEntersC1WhenIdle(t *testing.T) {
	m := newTestMachine(t, "XeonSATA", 13)
	for i := 0; i < 20; i++ {
		m.Step(idleDemand())
	}
	if !m.inC1 {
		t.Error("idle Xeon should be in C1")
	}
	_, sig, _ := m.Step(idleDemand())
	if sig["core_freq_0"] != 0 {
		t.Errorf("C1 frequency = %v, want 0", sig["core_freq_0"])
	}
	// Wake on demand.
	m.Step(fullDemand(m))
	if m.inC1 {
		t.Error("machine should exit C1 under load")
	}
}

func TestMobileNeverEntersC1(t *testing.T) {
	m := newTestMachine(t, "Core2", 14)
	for i := 0; i < 20; i++ {
		m.Step(idleDemand())
	}
	if m.inC1 {
		t.Error("Core2 must not enter C1")
	}
	_, sig, _ := m.Step(idleDemand())
	if sig["core_freq_0"] <= 0 {
		t.Errorf("Core2 idle frequency = %v, want lowest P-state > 0", sig["core_freq_0"])
	}
}

// TestSignalsCoverRegistry: every base signal the standard counter
// registry references must be produced by the machine.
func TestSignalsCoverRegistry(t *testing.T) {
	reg := counters.StandardRegistry()
	for _, name := range PlatformNames() {
		m := newTestMachine(t, name, 15)
		_, sig, _ := m.Step(fullDemand(m))
		for _, d := range reg.Defs {
			if d.Kind != counters.KindSignal {
				continue
			}
			if _, ok := sig[d.Signal]; !ok {
				t.Fatalf("%s: machine does not produce signal %q (counter %q)", name, d.Signal, d.Name)
			}
		}
	}
}

func TestServedNeverExceedsDemandOrCapacity(t *testing.T) {
	m := newTestMachine(t, "Athlon", 16)
	d := fullDemand(m)
	for i := 0; i < 40; i++ {
		served, _, _ := m.Step(d)
		if served.CPU > d.CPU+1e-9 {
			t.Fatalf("served CPU %v exceeds demand %v", served.CPU, d.CPU)
		}
		if served.CPU > float64(m.Spec.Cores)+1e-9 {
			t.Fatalf("served CPU %v exceeds physical capacity", served.CPU)
		}
		if served.DiskReadBytes+served.DiskWriteBytes > m.totalDiskBytes*1.001 {
			t.Fatal("served disk bytes exceed capacity")
		}
		if served.NetSendBytes+served.NetRecvBytes > m.netBytesPerSec*1.001 {
			t.Fatal("served network bytes exceed capacity")
		}
		if served.MemTouchBytes > m.memBandwidth*1.001 {
			t.Fatal("served memory touch exceeds bandwidth")
		}
	}
}

func TestMachineDeterminism(t *testing.T) {
	run := func() []float64 {
		m := newTestMachine(t, "Opteron", 99)
		var out []float64
		for i := 0; i < 50; i++ {
			var d Demand
			if i%10 < 5 {
				d = fullDemand(m)
			}
			_, _, p := m.Step(d)
			out = append(out, p.MeterWatts)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic power at step %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestMachineVariability(t *testing.T) {
	spec, _ := Platform("Core2")
	var idles []float64
	for i := 0; i < 12; i++ {
		m, err := NewMachine(spec, string(rune('a'+i)), int64(1000+i))
		if err != nil {
			t.Fatal(err)
		}
		idles = append(idles, m.IdleWatts())
	}
	min, max := idles[0], idles[0]
	for _, v := range idles {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if (max-min)/min < 0.01 {
		t.Errorf("machine idle power variation %.2f%% looks too uniform", (max-min)/min*100)
	}
	if (max-min)/min > 0.25 {
		t.Errorf("machine idle power variation %.2f%% looks too wild", (max-min)/min*100)
	}
}

func TestCoreDynamicMonotonicity(t *testing.T) {
	// More frequency or more utilization must never reduce CPU power.
	prev := 0.0
	for _, fr := range []float64{0, 0.25, 0.5, 0.75, 1} {
		v := coreDynamic(fr, 0.5)
		if v < prev {
			t.Errorf("coreDynamic not monotone in frequency at %v", fr)
		}
		prev = v
	}
	prev = 0
	for _, u := range []float64{0, 0.25, 0.5, 0.75, 1} {
		v := coreDynamic(1, u)
		if v < prev {
			t.Errorf("coreDynamic not monotone in utilization at %v", u)
		}
		prev = v
	}
	if coreDynamic(0, 1) != 0 {
		t.Error("C1 core should contribute zero power")
	}
}

func TestPsuEfficiencyShape(t *testing.T) {
	if psuEfficiency(0.45) <= psuEfficiency(0) || psuEfficiency(0.45) <= psuEfficiency(1) {
		t.Error("PSU efficiency should peak mid-load")
	}
	for _, l := range []float64{0, 0.25, 0.5, 0.75, 1} {
		e := psuEfficiency(l)
		if e <= 0.5 || e >= 1 {
			t.Errorf("efficiency(%v) = %v out of sane range", l, e)
		}
	}
}
