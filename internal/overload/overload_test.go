package overload

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// fakeClock drives a limiter deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1700000000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestOverloadParsePriority(t *testing.T) {
	cases := map[string]Priority{
		"":             Interactive,
		"interactive":  Interactive,
		"Interactive":  Interactive,
		" batch ":      Batch,
		"BACKGROUND":   Background,
		"nonsense-999": Interactive, // unknown must not demote
	}
	for in, want := range cases {
		if got := ParsePriority(in); got != want {
			t.Errorf("ParsePriority(%q) = %v, want %v", in, got, want)
		}
	}
	for p, name := range map[Priority]string{Interactive: "interactive", Batch: "batch", Background: "background"} {
		if p.String() != name {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), name)
		}
		if ParsePriority(p.String()) != p {
			t.Errorf("round trip failed for %q", name)
		}
	}
}

func TestOverloadLimiterGradient(t *testing.T) {
	clk := newFakeClock()
	l := newLimiterAt(LimiterConfig{Initial: 100, Min: 2, Max: 200, Tick: 10 * time.Millisecond}, clk.now)

	// Healthy latency establishes the baseline near 1ms.
	for i := 0; i < 50; i++ {
		if d := l.Acquire(Interactive); !d.Admit {
			t.Fatalf("healthy acquire %d shed", i)
		}
		l.Release(time.Millisecond)
		clk.advance(2 * time.Millisecond)
	}
	before := l.Snapshot().Limit

	// Sustained 50x latency must drive the limit down multiplicatively.
	for i := 0; i < 200; i++ {
		if d := l.Acquire(Interactive); d.Admit {
			l.Release(50 * time.Millisecond)
		}
		clk.advance(2 * time.Millisecond)
	}
	mid := l.Snapshot().Limit
	if mid >= before/2 {
		t.Fatalf("limit did not collapse under latency: before=%g mid=%g", before, mid)
	}

	// Recovery: healthy latency grows the limit back additively, gated on
	// the limit being exercised.
	for i := 0; i < 400; i++ {
		if d := l.Acquire(Interactive); d.Admit {
			l.Release(time.Millisecond)
		}
		clk.advance(2 * time.Millisecond)
	}
	after := l.Snapshot().Limit
	if after <= mid {
		t.Fatalf("limit did not recover: mid=%g after=%g", mid, after)
	}
}

func TestOverloadLimiterStrictPriorityThresholds(t *testing.T) {
	clk := newFakeClock()
	l := newLimiterAt(LimiterConfig{Initial: 10, Min: 10, Max: 10, Tick: time.Hour}, clk.now)

	// Fill to background's threshold (50% of 10 = 5).
	for i := 0; i < 5; i++ {
		if d := l.Acquire(Background); !d.Admit {
			t.Fatalf("background %d shed below threshold", i)
		}
	}
	// Background now at its threshold: next background sheds...
	if d := l.Acquire(Background); d.Admit {
		t.Fatal("background admitted past its tier threshold")
	}
	if d := l.Acquire(Background); d.Admit {
		t.Fatal("background admitted past its tier threshold")
	} else if d.RetryAfter <= 0 {
		t.Fatal("shed decision carries no RetryAfter")
	}
	// ...but batch and interactive still get in (7.5 and 10 thresholds).
	if d := l.Acquire(Batch); !d.Admit {
		t.Fatal("batch shed while under its threshold")
	}
	if d := l.Acquire(Interactive); !d.Admit {
		t.Fatal("interactive shed while under its threshold")
	}
}

func TestOverloadLimiterInversionGuards(t *testing.T) {
	clk := newFakeClock()
	l := newLimiterAt(LimiterConfig{Initial: 4, Min: 4, Max: 4, Tick: 10 * time.Millisecond}, clk.now)

	// Fill the limit entirely with background (threshold 2, then guard
	// boundary): 2 admitted.
	if !l.Acquire(Background).Admit || !l.Acquire(Background).Admit {
		t.Fatal("background could not fill its share")
	}
	// Interactive beyond the raw limit: 4 admitted at threshold 4 → two
	// more interactive fit, the next would shed...
	if !l.Acquire(Interactive).Admit || !l.Acquire(Interactive).Admit {
		t.Fatal("interactive shed under its threshold")
	}
	// ...but the inversion guard admits it because background (tier 2)
	// was admitted this tick.
	if d := l.Acquire(Interactive); !d.Admit {
		t.Fatal("inversion guard failed: interactive shed in a tick that admitted background")
	}

	// New tick: shed guard. Interactive fills the limit, then an
	// interactive shed must block later background for the rest of the
	// tick even if capacity frees up.
	clk.advance(20 * time.Millisecond)
	l2 := newLimiterAt(LimiterConfig{Initial: 2, Min: 2, Max: 2, Tick: time.Hour}, clk.now)
	if !l2.Acquire(Interactive).Admit || !l2.Acquire(Interactive).Admit {
		t.Fatal("interactive fill failed")
	}
	if l2.Acquire(Interactive).Admit {
		t.Fatal("interactive admitted past hard limit with no lower tier admitted")
	}
	l2.Release(time.Millisecond)
	l2.Release(time.Millisecond) // capacity is back...
	if l2.Acquire(Background).Admit {
		t.Fatal("shed guard failed: background admitted after interactive shed in the same tick")
	}
	if l2.Acquire(Interactive).Admit != true {
		t.Fatal("interactive should still be admissible")
	}
}

// TestOverloadLimiterNoInversionRace hammers one limiter from concurrent
// mixed-priority goroutines and asserts the structural invariant: no
// completed tick ever shed tier 0 while admitting tier 2.
func TestOverloadLimiterNoInversionRace(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 8, Min: 2, Max: 32, Tick: time.Millisecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				p := Priority(rng.Intn(NumPriorities))
				if d := l.Acquire(p); d.Admit {
					if rng.Intn(4) == 0 {
						l.Cancel(1)
					} else {
						l.Release(time.Duration(rng.Intn(3)) * time.Millisecond)
					}
				}
				if i%64 == 0 {
					time.Sleep(100 * time.Microsecond)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	l.Pressure() // roll the final tick
	if n := l.InversionTicks(); n != 0 {
		t.Fatalf("inversion ticks = %d, want 0", n)
	}
	st := l.Snapshot()
	if st.Inflight != 0 {
		t.Fatalf("inflight = %d after all releases, want 0", st.Inflight)
	}
}

func TestOverloadLadderHysteresis(t *testing.T) {
	b := NewLadder(LadderConfig{EnterTicks: 2, ExitTicks: 3})

	// One hot tick is not enough (EnterTicks=2).
	if lvl, ch := b.Observe(0.9); ch || lvl != 0 {
		t.Fatalf("entered on a single tick: lvl=%d", lvl)
	}
	if lvl, ch := b.Observe(0.9); !ch || lvl != 1 {
		t.Fatalf("did not enter after sustained pressure: lvl=%d", lvl)
	}
	// Climbing continues one rung at a time up to MaxLevel.
	for i := 0; i < 10; i++ {
		b.Observe(0.9)
	}
	if b.Level() != MaxLevel {
		t.Fatalf("level = %d, want max %d", b.Level(), MaxLevel)
	}

	// Pressure in the hysteresis band (below Enter, above Exit) holds.
	for i := 0; i < 10; i++ {
		if _, ch := b.Observe(0.3); ch {
			t.Fatal("level changed inside hysteresis band")
		}
	}
	if b.Level() != MaxLevel {
		t.Fatalf("level drifted in band: %d", b.Level())
	}

	// Quiet ticks descend, one rung per ExitTicks, all the way out.
	steps := 0
	for b.Level() > 0 {
		if _, ch := b.Observe(0.0); ch {
			steps++
		}
		if steps > 100 {
			t.Fatal("ladder never exited")
		}
	}
	if b.Level() != 0 {
		t.Fatalf("level = %d, want 0", b.Level())
	}
	// An exit interrupted by pressure resets the streak.
	b.Observe(0.9)
	b.Observe(0.9) // level 1
	b.Observe(0.0)
	b.Observe(0.0)
	b.Observe(0.9) // resets the down streak
	b.Observe(0.0)
	b.Observe(0.0)
	if b.Level() != 1 {
		t.Fatalf("down streak not reset by pressure: level=%d", b.Level())
	}
}

func TestOverloadLatencyTrackerQuantile(t *testing.T) {
	tr := NewLatencyTracker(64)
	if q := tr.Quantile(0.95); q != 0 {
		t.Fatalf("quantile before warmup = %v, want 0", q)
	}
	for i := 1; i <= 100; i++ {
		tr.Observe(time.Duration(i) * time.Millisecond)
	}
	// Window holds the last 64 samples: 37..100ms.
	p50 := tr.Quantile(0.5)
	if p50 < 60*time.Millisecond || p50 > 80*time.Millisecond {
		t.Fatalf("p50 = %v, want ≈69ms", p50)
	}
	p95 := tr.Quantile(0.95)
	if p95 < 90*time.Millisecond || p95 > 100*time.Millisecond {
		t.Fatalf("p95 = %v, want ≈97ms", p95)
	}
	if hi := tr.Quantile(1); hi != 100*time.Millisecond {
		t.Fatalf("q1 = %v, want 100ms", hi)
	}
}

func TestOverloadHedgeBudgetBounds(t *testing.T) {
	h := NewHedgeBudget(0.1, 4)
	// Burst allowance first.
	granted := 0
	for i := 0; i < 10; i++ {
		if h.Allow() {
			granted++
		}
	}
	if granted != 4 {
		t.Fatalf("burst granted %d hedges, want 4", granted)
	}
	// Then strictly rate-limited: 100 primaries accrue 10 tokens.
	granted = 0
	for i := 0; i < 100; i++ {
		h.NotePrimary()
		if h.Allow() {
			granted++
		}
	}
	if granted < 8 || granted > 12 {
		t.Fatalf("rate-limited grants = %d, want ≈10", granted)
	}
	// Disabled budget never allows.
	off := NewHedgeBudget(0, 4)
	off.NotePrimary()
	if off.Allow() {
		t.Fatal("zero-rate budget allowed a hedge")
	}
}

func TestOverloadControllerBrownoutLifecycle(t *testing.T) {
	clk := newFakeClock()
	c := NewController(2, Config{
		Tick:    10 * time.Millisecond,
		Limiter: LimiterConfig{Initial: 4, Min: 4, Max: 4, Tick: time.Hour},
		Ladder:  LadderConfig{EnterTicks: 2, ExitTicks: 3},
	})
	_ = clk
	if c.Level() != 0 {
		t.Fatalf("initial level = %d", c.Level())
	}
	// Generate sustained pressure on shard 0: fill the limit then shed.
	hammer := func() {
		for i := 0; i < 8; i++ {
			c.LimiterFor(0).Acquire(Background)
		}
	}
	hammer()
	c.Step()
	hammer()
	c.Step()
	if c.Level() < 1 {
		t.Fatalf("level = %d after sustained pressure, want >= 1", c.Level())
	}
	st := c.Snapshot()
	if st.Shed["background"] == 0 {
		t.Fatal("snapshot missing shed accounting")
	}
	if st.InversionTicks != 0 {
		t.Fatalf("inversion ticks = %d", st.InversionTicks)
	}
	// Quiet steps walk the ladder back out.
	for i := 0; i < 40 && c.Level() > 0; i++ {
		c.Step()
	}
	if c.Level() != 0 {
		t.Fatalf("level = %d after quiet period, want 0", c.Level())
	}
}
