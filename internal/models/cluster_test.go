package models

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"repro/internal/counters"
	"repro/internal/trace"
)

// powerTrace builds a trace whose power is a simple linear function of the
// counters plus noise, for machine-model fitting tests.
func powerTrace(t *testing.T, platform, machine string, run int, n int, seed int64) *trace.Trace {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	names := []string{counters.CPUTotal, counters.CPUFreqCore0}
	b := trace.NewBuilder(platform, "Synth", machine, run, names, 20)
	for i := 0; i < n; i++ {
		u := r.Float64() * 100
		f := []float64{800, 1600, 2260}[r.Intn(3)]
		power := 20 + 0.2*u + 0.002*f + r.NormFloat64()*0.1
		if err := b.Add([]float64{u, f}, power, power); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func clusterSpec() FeatureSpec {
	return FeatureSpec{Name: "cluster", Counters: []string{counters.CPUTotal, counters.CPUFreqCore0}}
}

func TestFitMachineModelAndPredictTrace(t *testing.T) {
	train := []*trace.Trace{
		powerTrace(t, "Core2", "m0", 0, 300, 1),
		powerTrace(t, "Core2", "m1", 0, 300, 2),
	}
	mm, err := FitMachineModel(TechLinear, train, clusterSpec(), FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if mm.Platform != "Core2" {
		t.Errorf("platform = %s", mm.Platform)
	}
	test := powerTrace(t, "Core2", "m2", 1, 100, 3)
	pred, err := mm.PredictTrace(test)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pred {
		if math.Abs(pred[i]-test.Power[i]) > 1.0 {
			t.Fatalf("prediction %v vs actual %v at %d", pred[i], test.Power[i], i)
		}
	}
}

func TestFitMachineModelNoTraces(t *testing.T) {
	if _, err := FitMachineModel(TechLinear, nil, clusterSpec(), FitOptions{}); err == nil {
		t.Error("expected error for empty training set")
	}
}

func TestClusterModelComposition(t *testing.T) {
	c2 := []*trace.Trace{powerTrace(t, "Core2", "m0", 0, 300, 4)}
	op := []*trace.Trace{powerTrace(t, "Opteron", "m1", 0, 300, 5)}
	mmC2, err := FitMachineModel(TechLinear, c2, clusterSpec(), FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mmOp, err := FitMachineModel(TechLinear, op, clusterSpec(), FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := NewClusterModel(mmC2, mmOp)
	if err != nil {
		t.Fatal(err)
	}
	// Heterogeneous prediction: one trace of each platform.
	testC2 := powerTrace(t, "Core2", "m2", 1, 80, 6)
	testOp := powerTrace(t, "Opteron", "m3", 1, 80, 7)
	pred, actual, err := cm.PredictCluster([]*trace.Trace{testC2, testOp})
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != 80 {
		t.Fatalf("prediction length %d", len(pred))
	}
	for i := range pred {
		if wantA := testC2.Power[i] + testOp.Power[i]; math.Abs(actual[i]-wantA) > 1e-9 {
			t.Fatalf("actual cluster power wrong at %d", i)
		}
		if math.Abs(pred[i]-actual[i]) > 2 {
			t.Fatalf("cluster prediction off by %v at %d", pred[i]-actual[i], i)
		}
	}
}

func TestClusterModelErrors(t *testing.T) {
	if _, err := NewClusterModel(); err == nil {
		t.Error("expected error for no machine models")
	}
	mm, err := FitMachineModel(TechLinear, []*trace.Trace{powerTrace(t, "Core2", "m0", 0, 200, 8)}, clusterSpec(), FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewClusterModel(mm, mm); err == nil {
		t.Error("expected error for duplicate platform")
	}
	cm, _ := NewClusterModel(mm)
	if _, _, err := cm.PredictCluster(nil); err == nil {
		t.Error("expected error for no traces")
	}
	if _, _, err := cm.PredictCluster([]*trace.Trace{powerTrace(t, "Atom", "x", 0, 10, 9)}); err == nil {
		t.Error("expected error for unknown platform")
	}
	a := powerTrace(t, "Core2", "m1", 0, 10, 10)
	b := powerTrace(t, "Core2", "m2", 0, 12, 11)
	if _, _, err := cm.PredictCluster([]*trace.Trace{a, b}); err == nil {
		t.Error("expected error for misaligned traces")
	}
}

func TestMachineModelJSONRoundTrip(t *testing.T) {
	train := []*trace.Trace{powerTrace(t, "Core2", "m0", 0, 400, 12)}
	for _, tech := range Techniques() {
		opts := FitOptions{}
		if tech == TechSwitching {
			opts.FreqCol = 1
		}
		mm, err := FitMachineModel(tech, train, clusterSpec(), opts)
		if err != nil {
			t.Fatalf("fit %s: %v", tech, err)
		}
		data, err := json.Marshal(mm)
		if err != nil {
			t.Fatalf("marshal %s: %v", tech, err)
		}
		var back MachineModel
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", tech, err)
		}
		if back.Platform != mm.Platform || back.Model.Technique() != tech {
			t.Fatalf("%s: metadata lost in round trip", tech)
		}
		// Same predictions after the round trip.
		test := powerTrace(t, "Core2", "m1", 1, 50, 13)
		p1, err := mm.PredictTrace(test)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := back.PredictTrace(test)
		if err != nil {
			t.Fatal(err)
		}
		for i := range p1 {
			if math.Abs(p1[i]-p2[i]) > 1e-12 {
				t.Fatalf("%s: prediction changed after serialization", tech)
			}
		}
	}
}

func TestClusterModelJSONRoundTrip(t *testing.T) {
	mm, err := FitMachineModel(TechQuadratic, []*trace.Trace{powerTrace(t, "Core2", "m0", 0, 400, 14)}, clusterSpec(), FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cm, _ := NewClusterModel(mm)
	data, err := json.Marshal(cm)
	if err != nil {
		t.Fatal(err)
	}
	var back ClusterModel
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.ByPlatform) != 1 || back.ByPlatform["Core2"] == nil {
		t.Fatalf("round trip lost platforms: %+v", back.ByPlatform)
	}
	var empty ClusterModel
	if err := json.Unmarshal([]byte(`{}`), &empty); err == nil {
		t.Error("expected error for empty cluster model JSON")
	}
}

func TestModelEnvelopeErrors(t *testing.T) {
	var mm MachineModel
	if err := json.Unmarshal([]byte(`{"platform":"x"}`), &mm); err == nil {
		t.Error("expected error for missing model payload")
	}
	if err := json.Unmarshal([]byte(`{"platform":"x","model":{"technique":"linear"}}`), &mm); err == nil {
		t.Error("expected error for empty linear payload")
	}
	if err := json.Unmarshal([]byte(`{"platform":"x","model":{"technique":"bogus"}}`), &mm); err == nil {
		t.Error("expected error for unknown technique")
	}
}
