package mars_test

import (
	"fmt"

	"repro/internal/mars"
	"repro/internal/mathx"
)

// Fit a piecewise-linear model to a function with a kink: MARS places a
// hinge near the knee and recovers both slopes.
func ExampleFit() {
	n := 200
	x := mathx.NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := float64(i) / 20 // 0..10
		x.Set(i, 0, v)
		if v <= 5 {
			y[i] = 2 * v
		} else {
			y[i] = 10 + 6*(v-5)
		}
	}
	m, _ := mars.Fit(x, y, mars.Options{MaxDegree: 1, MaxKnots: 20})
	fmt.Printf("f(2) = %.1f, f(8) = %.1f\n", m.Predict([]float64{2}), m.Predict([]float64{8}))
	// Output: f(2) = 4.0, f(8) = 28.0
}
