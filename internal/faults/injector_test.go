package faults

import (
	"fmt"
	"math"
	"reflect"
	"testing"
)

// chattyScenario exercises every fault type with high enough rates that a
// short run shows all of them.
func chattyScenario() *Scenario {
	return &Scenario{
		Name: "chatty",
		Defaults: MachineFaults{
			DropProb: 0.3, CorruptProb: 0.2,
			StuckProb: 0.1, StuckSeconds: 4,
			LatencyProb: 0.3, LatencyMS: 50,
		},
		Machines:      map[string]MachineFaults{"m1": {DropProb: 0.8}},
		MeterDropouts: []Window{{StartS: 10, EndS: 20}},
		Crashes:       []Crash{{Machine: "m0", AtS: 30, DowntimeS: 10}},
	}
}

// faultTranscript replays a fixed schedule of injector queries and
// serializes every outcome, so two replays can be compared exactly.
func faultTranscript(t *testing.T, seed int64) string {
	t.Helper()
	inj, err := NewInjector(chattyScenario(), seed)
	if err != nil {
		t.Fatal(err)
	}
	out := ""
	for sec := 0; sec < 60; sec++ {
		for _, m := range []string{"m0", "m1"} {
			for k := 0; k < 2; k++ {
				ao := inj.Attempt(m, sec, k)
				out += fmt.Sprintf("a:%s:%d:%d:%v:%g\n", m, sec, k, ao.Dropped, ao.LatencyMS)
			}
			row := []float64{float64(sec), 2, 3}
			tr := inj.Transform(m, sec, row)
			out += fmt.Sprintf("t:%s:%d:%v:%d:%v\n", m, sec, tr.Stuck, tr.Corrupted, row)
			out += fmt.Sprintf("d:%s:%d:%v\n", m, sec, inj.Down(m, sec))
		}
		out += fmt.Sprintf("meter:%d:%v\n", sec, inj.MeterAvailable(sec))
	}
	return out
}

// TestFaultInjectorDeterminism: same seed -> bit-identical fault
// sequence; a different seed diverges (so the transcript is not a
// constant).
func TestFaultInjectorDeterminism(t *testing.T) {
	a := faultTranscript(t, 42)
	b := faultTranscript(t, 42)
	if a != b {
		t.Fatal("same seed produced different fault sequences")
	}
	if c := faultTranscript(t, 43); c == a {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

// TestFaultInjectorCrashWindows checks the machine-down schedule is
// exactly the configured half-open window and only for the named machine.
func TestFaultInjectorCrashWindows(t *testing.T) {
	inj, err := NewInjector(&Scenario{
		Crashes: []Crash{{Machine: "m0", AtS: 5, DowntimeS: 3}},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for sec := 0; sec < 12; sec++ {
		want := sec >= 5 && sec < 8
		if got := inj.Down("m0", sec); got != want {
			t.Errorf("Down(m0, %d) = %v, want %v", sec, got, want)
		}
		if inj.Down("m1", sec) {
			t.Errorf("Down(m1, %d) = true for machine with no crash", sec)
		}
	}
}

// TestFaultInjectorMeterDropout checks dropout windows are half-open.
func TestFaultInjectorMeterDropout(t *testing.T) {
	inj, err := NewInjector(&Scenario{
		MeterDropouts: []Window{{StartS: 3, EndS: 6}},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for sec := 0; sec < 9; sec++ {
		want := !(sec >= 3 && sec < 6)
		if got := inj.MeterAvailable(sec); got != want {
			t.Errorf("MeterAvailable(%d) = %v, want %v", sec, got, want)
		}
	}
}

// TestFaultInjectorStuckFreezesRow: with StuckProb 1 the source wedges at
// the first sample's values and repeats them for StuckSeconds.
func TestFaultInjectorStuckFreezesRow(t *testing.T) {
	inj, err := NewInjector(&Scenario{
		Defaults: MachineFaults{StuckProb: 1, StuckSeconds: 3},
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	first := []float64{10, 20, 30}
	if tr := inj.Transform("m0", 0, append([]float64(nil), first...)); tr.Stuck {
		t.Fatal("entry second should still report live values")
	}
	for sec := 1; sec < 3; sec++ {
		row := []float64{float64(100 * sec), 0, 0}
		tr := inj.Transform("m0", sec, row)
		if !tr.Stuck {
			t.Fatalf("second %d not stuck", sec)
		}
		if !reflect.DeepEqual(row, first) {
			t.Fatalf("second %d row = %v, want frozen %v", sec, row, first)
		}
	}
}

// TestFaultInjectorCorruptionInjectsNonFinite: with CorruptProb 1 every
// row gains at least one NaN/Inf entry and the outcome reports the count.
func TestFaultInjectorCorruptionInjectsNonFinite(t *testing.T) {
	inj, err := NewInjector(&Scenario{
		Defaults: MachineFaults{CorruptProb: 1},
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	for sec := 0; sec < 20; sec++ {
		row := []float64{1, 2, 3, 4}
		tr := inj.Transform("m0", sec, row)
		if tr.Corrupted < 1 || tr.Corrupted > 3 {
			t.Fatalf("corrupted %d counters, want 1..3", tr.Corrupted)
		}
		bad := 0
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				bad++
			}
		}
		if bad == 0 {
			t.Fatalf("second %d: corruption reported but row %v is finite", sec, row)
		}
	}
}

// TestFaultInjectorPerMachineOverride: the override replaces the
// defaults wholesale, so m1 drops often while m0 never does.
func TestFaultInjectorPerMachineOverride(t *testing.T) {
	inj, err := NewInjector(&Scenario{
		Machines: map[string]MachineFaults{"m1": {DropProb: 1}},
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	for sec := 0; sec < 10; sec++ {
		if inj.Attempt("m0", sec, 0).Dropped {
			t.Fatalf("m0 dropped at %d with zero default drop prob", sec)
		}
		if !inj.Attempt("m1", sec, 0).Dropped {
			t.Fatalf("m1 kept sample at %d with drop prob 1", sec)
		}
	}
}

// TestFaultInjectorRejectsInvalidScenario: NewInjector revalidates.
func TestFaultInjectorRejectsInvalidScenario(t *testing.T) {
	if _, err := NewInjector(nil, 1); err == nil {
		t.Error("expected error for nil scenario")
	}
	if _, err := NewInjector(&Scenario{Defaults: MachineFaults{DropProb: 2}}, 1); err == nil {
		t.Error("expected error for invalid probability")
	}
}
