package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestMachineInvariantsUnderRandomDemand drives machines with arbitrary
// demand sequences and checks physical invariants: power stays inside a
// sane envelope, meter readings stay quantized and positive, and key
// signals remain non-negative and bounded.
func TestMachineInvariantsUnderRandomDemand(t *testing.T) {
	cfg := &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(77))}
	platforms := PlatformNames()
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec, _ := Platform(platforms[int(uint64(seed)%uint64(len(platforms)))])
		m, err := NewMachine(spec, "prop", seed)
		if err != nil {
			return false
		}
		for step := 0; step < 120; step++ {
			d := Demand{
				CPU:            r.Float64() * float64(spec.Cores) * 3,
				DiskReadBytes:  r.Float64() * 1e9,
				DiskWriteBytes: r.Float64() * 1e9,
				DiskReadOps:    r.Float64() * 1e4,
				DiskWriteOps:   r.Float64() * 1e4,
				NetSendBytes:   r.Float64() * 3e8,
				NetRecvBytes:   r.Float64() * 3e8,
				MemTouchBytes:  r.Float64() * 2e10,
				WorkingSet:     r.Float64() * 8e9,
				RunningTasks:   r.Intn(20),
			}
			if r.Float64() < 0.3 {
				d = Demand{} // idle bursts
			}
			served, sig, p := m.Step(d)
			// Power envelope: between well under idle and a bit over max.
			if p.TrueWatts < spec.IdlePowerW*0.7 || p.TrueWatts > spec.MaxPowerW*1.25 {
				t.Logf("power %v outside envelope [%v, %v]", p.TrueWatts, spec.IdlePowerW, spec.MaxPowerW)
				return false
			}
			if p.MeterWatts <= 0 || math.IsNaN(p.MeterWatts) {
				return false
			}
			// Served never exceeds demand (with background slack) or capacity.
			if served.CPU > d.CPU+0.2 || served.CPU > float64(spec.Cores)+1e-9 {
				return false
			}
			if served.NetSendBytes > d.NetSendBytes+1 {
				return false
			}
			// Key signals bounded and non-negative.
			if sig["cpu_util"] < 0 || sig["cpu_util"] > 100.0001 {
				return false
			}
			if sig["disk_busy"] < 0 || sig["disk_busy"] > 100.0001 {
				return false
			}
			for _, k := range []string{"page_faults", "net_send_bytes", "fs_pin_reads", "mem_committed"} {
				if sig[k] < 0 || math.IsNaN(sig[k]) {
					return false
				}
			}
			if sig["fs_pin_read_hit_pct"] < 0 || sig["fs_pin_read_hit_pct"] > 100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestIdlePowerStableOverLongIdle: a machine left idle for a long time
// stays near its calibrated idle power (no drift explosions from the
// wander process).
func TestIdlePowerStableOverLongIdle(t *testing.T) {
	for _, name := range PlatformNames() {
		m := newTestMachine(t, name, 5)
		var min, max float64 = math.Inf(1), 0
		for i := 0; i < 1200; i++ {
			_, _, p := m.Step(Demand{})
			if i < 60 {
				continue // settle the governor
			}
			if p.TrueWatts < min {
				min = p.TrueWatts
			}
			if p.TrueWatts > max {
				max = p.TrueWatts
			}
		}
		if (max-min)/m.IdleWatts() > 0.12 {
			t.Errorf("%s: idle power wandered [%v, %v] around idle %v", name, min, max, m.IdleWatts())
		}
	}
}

// TestPowerMonotoneInCPULoad: sustained higher CPU demand must not lower
// steady-state power.
func TestPowerMonotoneInCPULoad(t *testing.T) {
	for _, name := range PlatformNames() {
		spec, _ := Platform(name)
		var prev float64
		for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
			m := newTestMachine(t, name, 9)
			var sum float64
			for i := 0; i < 80; i++ {
				_, _, p := m.Step(Demand{CPU: frac * float64(spec.Cores), RunningTasks: 1})
				if i >= 40 {
					sum += p.TrueWatts
				}
			}
			avg := sum / 40
			if avg < prev-1.5 {
				t.Errorf("%s: power dropped from %v to %v as CPU load rose to %v", name, prev, avg, frac)
			}
			prev = avg
		}
	}
}
