package models

import (
	"math"
	"testing"

	"repro/internal/mathx"
	"repro/internal/sim"
)

// synthDesign builds a [util%, freqMHz] design over the given P-states
// with a physically shaped power response: idle floor plus dynamic power
// scaling with frequency and utilization. rowsPerState controls bin
// population (fitSwitching needs Cols*3+10 rows per bin).
func synthDesign(states []float64, idle, max float64, rowsPerState int) (*mathx.Matrix, []float64) {
	top := states[len(states)-1]
	n := len(states) * rowsPerState
	x := mathx.NewMatrix(n, 2)
	y := make([]float64, n)
	i := 0
	for _, f := range states {
		for r := 0; r < rowsPerState; r++ {
			util := float64(r) / float64(rowsPerState-1) // 0..1
			x.Set(i, 0, util*100)
			x.Set(i, 1, f)
			ratio := f / top
			y[i] = idle + (max-idle)*ratio*(0.25+0.75*util)
			i++
		}
	}
	return x, y
}

// TestControlSwitchingUnseenStateStaysPhysical is the satellite property
// test: fit Eq. 4 switching models with one or more P-states deliberately
// missing from the training window (the state a capping controller will
// actuate into), then predict at every P-state of the platform — seen or
// not — across the whole utilization range. No prediction may be NaN,
// infinite, negative, or outside a generous physical envelope. Before the
// nearest-bin fallback, unseen states fell through to the global
// unclamped linear fit, which extrapolates along the raw MHz axis.
func TestControlSwitchingUnseenStateStaysPhysical(t *testing.T) {
	for _, p := range sim.Platforms() {
		states := make([]float64, len(p.FreqStatesMHz))
		copy(states, p.FreqStatesMHz)
		if len(states) < 2 {
			continue // single-state platforms exercise the fallback test below
		}
		// Drop the lowest state, and for deeper ladders also a middle one.
		drops := [][]int{{0}}
		if len(states) >= 3 {
			drops = append(drops, []int{1}, []int{0, 1})
		}
		for _, drop := range drops {
			var train []float64
			dropped := map[int]bool{}
			for _, d := range drop {
				dropped[d] = true
			}
			for i, f := range states {
				if !dropped[i] {
					train = append(train, f)
				}
			}
			if len(train) < 1 {
				continue
			}
			idle, max := p.IdlePowerW, p.MaxPowerW
			x, y := synthDesign(train, idle, max, 40)
			m, err := Fit(TechSwitching, x, y, FitOptions{FreqCol: 1})
			if err != nil {
				t.Fatalf("%s drop %v: fit: %v", p.Name, drop, err)
			}
			sw, ok := m.(*Switching)
			if !ok {
				t.Fatalf("%s: got %T", p.Name, m)
			}
			for _, f := range states {
				for u := 0.0; u <= 1.0; u += 0.125 {
					got := sw.Predict([]float64{u * 100, f})
					if math.IsNaN(got) || math.IsInf(got, 0) {
						t.Fatalf("%s drop %v: predict(util=%.2f, f=%.0f) = %v", p.Name, drop, u, f, got)
					}
					if got < 0 {
						t.Fatalf("%s drop %v: negative watts %v at util=%.2f f=%.0f", p.Name, drop, got, u, f)
					}
					if got < idle*0.2 || got > max*3 {
						t.Fatalf("%s drop %v: predict %v outside physical envelope [%.1f, %.1f] at util=%.2f f=%.0f",
							p.Name, drop, got, idle*0.2, max*3, u, f)
					}
				}
			}
			// The unseen state must resolve to the nearest kept bin's
			// clamped prediction, not the global fallback.
			if len(sw.Bins) > 0 {
				fUnseen := states[drop[0]]
				row := []float64{50, fUnseen}
				got := sw.Predict(row)
				best, bestD := -1, math.MaxFloat64
				for i := range sw.Bins {
					b := &sw.Bins[i]
					if fUnseen >= b.Lo && fUnseen < b.Hi {
						best, bestD = i, 0
						break
					}
					d := b.Lo - fUnseen
					if fUnseen >= b.Hi {
						d = fUnseen - b.Hi
					}
					if d < bestD {
						best, bestD = i, d
					}
				}
				if want := sw.Bins[best].predict(row); math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("%s drop %v: unseen state used bin %d? got %v want %v", p.Name, drop, best, got, want)
				}
			}
		}
	}
}

// TestControlSwitchingNoBinsUsesFallback: a single-P-state platform fits
// no bins, so the global fallback must still answer (finitely) — and a
// NaN frequency must not select a bin.
func TestControlSwitchingNoBinsUsesFallback(t *testing.T) {
	x, y := synthDesign([]float64{1600}, 20, 45, 60)
	m, err := Fit(TechSwitching, x, y, FitOptions{FreqCol: 1})
	if err != nil {
		t.Fatal(err)
	}
	sw := m.(*Switching)
	if len(sw.Bins) != 0 {
		t.Fatalf("single-state fit produced %d bins", len(sw.Bins))
	}
	if got := sw.Predict([]float64{50, 1600}); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("fallback predict = %v", got)
	}

	// Multi-state model: NaN frequency falls through to the fallback
	// instead of matching or snapping to a bin.
	x2, y2 := synthDesign([]float64{800, 1600, 2260}, 25, 46, 40)
	m2, err := Fit(TechSwitching, x2, y2, FitOptions{FreqCol: 1})
	if err != nil {
		t.Fatal(err)
	}
	sw2 := m2.(*Switching)
	row := []float64{50, math.NaN()}
	if got, want := sw2.Predict(row), sw2.Fallback.Predict(row); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("NaN freq: got %v, want fallback %v", got, want)
	}
}
