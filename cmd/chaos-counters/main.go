// chaos-counters prints the candidate counter inventory: the ~250-counter
// namespace the feature-selection pipeline starts from, with each
// counter's category and generation kind, plus the declared co-dependency
// identities (a = b + c) that Algorithm 1 step 2 removes.
//
// Usage:
//
//	chaos-counters [-category Memory] [-deps]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/counters"
)

func main() {
	var (
		category = flag.String("category", "", "only list counters of this category")
		deps     = flag.Bool("deps", false, "list co-dependency identities instead")
	)
	flag.Parse()
	if err := run(os.Stdout, *category, *deps); err != nil {
		fmt.Fprintln(os.Stderr, "chaos-counters:", err)
		os.Exit(1)
	}
}

func kindName(k counters.Kind) string {
	switch k {
	case counters.KindSignal:
		return "signal"
	case counters.KindScaled:
		return "scaled"
	case counters.KindSum:
		return "sum"
	case counters.KindLagged:
		return "lagged"
	case counters.KindNoise:
		return "noise"
	case counters.KindConstant:
		return "constant"
	}
	return "?"
}

func run(w *os.File, category string, deps bool) error {
	reg := counters.StandardRegistry()
	if deps {
		for _, d := range reg.CoDependencies() {
			fmt.Fprintf(w, "%s =", reg.Defs[d.Sum].Name)
			for i, p := range d.Parts {
				if i > 0 {
					fmt.Fprint(w, " +")
				}
				fmt.Fprintf(w, " %s", reg.Defs[p].Name)
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	count := 0
	byCat := map[counters.Category]int{}
	for _, d := range reg.Defs {
		byCat[d.Category]++
		if category != "" && string(d.Category) != category {
			continue
		}
		fmt.Fprintf(w, "%-24s %-9s %s\n", d.Category, kindName(d.Kind), d.Name)
		count++
	}
	if category != "" && count == 0 {
		return fmt.Errorf("no counters in category %q", category)
	}
	fmt.Fprintf(w, "\n%d counters", count)
	if category == "" {
		fmt.Fprintf(w, " in %d categories", len(byCat))
	}
	fmt.Fprintln(w)
	return nil
}
