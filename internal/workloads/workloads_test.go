package workloads

import (
	"testing"
)

func TestBuildKnownWorkloads(t *testing.T) {
	for _, name := range Names() {
		job, err := Build(name, 5)
		if err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
		if err := job.Validate(); err != nil {
			t.Errorf("%s job invalid: %v", name, err)
		}
		if job.Name != name {
			t.Errorf("job name %q, want %q", job.Name, name)
		}
	}
	if _, err := Build("Mandelbrot", 5); err == nil {
		t.Error("expected error for unknown workload")
	}
}

func TestPageRankShape(t *testing.T) {
	job := PageRank(5)
	if got := job.TotalTasks(); got < 800 {
		t.Errorf("PageRank has %d tasks, paper says over 800", got)
	}
	if len(job.Stages) < 10 {
		t.Errorf("PageRank has %d supersteps, expected an iterative job", len(job.Stages))
	}
	// Supersteps are sequential.
	for i := 1; i < len(job.Stages); i++ {
		if len(job.Stages[i].DependsOn) != 1 || job.Stages[i].DependsOn[0] != i-1 {
			t.Fatalf("superstep %d does not depend on %d", i, i-1)
		}
	}
	// Network dominates.
	var net, disk float64
	for _, st := range job.Stages {
		for _, task := range st.Tasks {
			net += task.NetSendBytes + task.NetRecvBytes
			disk += task.DiskReadBytes + task.DiskWriteBytes
		}
	}
	if net <= disk {
		t.Errorf("PageRank should be network-heavy: net=%g disk=%g", net, disk)
	}
}

func TestSortShape(t *testing.T) {
	job := Sort(5)
	var read, write, net, cpu float64
	for _, st := range job.Stages {
		for _, task := range st.Tasks {
			read += task.DiskReadBytes
			write += task.DiskWriteBytes
			net += task.NetSendBytes + task.NetRecvBytes
			cpu += task.CPUWork
		}
	}
	// 4 GB per machine in and out.
	if read < 19*GB || read > 21*GB {
		t.Errorf("Sort reads %g bytes, want ~20 GB for 5 machines", read)
	}
	if write < 19*GB || write > 21*GB {
		t.Errorf("Sort writes %g bytes, want ~20 GB", write)
	}
	if net < 10*GB {
		t.Errorf("Sort shuffles %g bytes, want heavy network", net)
	}
}

func TestPrimeShape(t *testing.T) {
	job := Prime(5)
	var cpu, io float64
	for _, st := range job.Stages {
		for _, task := range st.Tasks {
			cpu += task.CPUWork
			io += task.DiskReadBytes + task.DiskWriteBytes + task.NetSendBytes + task.NetRecvBytes
		}
	}
	if cpu < 1000 {
		t.Errorf("Prime CPU work %g core-seconds looks too small", cpu)
	}
	// CPU-bound: byte traffic per core-second should be tiny.
	if io/cpu > 10*MB {
		t.Errorf("Prime is supposed to be CPU-bound: %g bytes per core-second", io/cpu)
	}
}

func TestWordCountShape(t *testing.T) {
	job := WordCount(5)
	var read, write, net float64
	for _, st := range job.Stages {
		for _, task := range st.Tasks {
			read += task.DiskReadBytes
			write += task.DiskWriteBytes
			net += task.NetSendBytes + task.NetRecvBytes
		}
	}
	if read < 2*GB {
		t.Errorf("WordCount reads %g bytes, want 500 MB x 5 partitions scaled", read)
	}
	if net > read/5 || write > read/5 {
		t.Errorf("WordCount should produce little network (%g) or write (%g) traffic vs reads (%g)", net, write, read)
	}
}

func TestExtendedWorkloads(t *testing.T) {
	for _, name := range []string{"IndexUpdate", "Analytics"} {
		job, err := Build(name, 4)
		if err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
		if err := job.Validate(); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
	}
	// Analytics is memory-heavy relative to its CPU work — the property
	// that puts it outside the paper's workload mix.
	job := Analytics(4)
	var mem, cpu float64
	for _, st := range job.Stages {
		for _, task := range st.Tasks {
			mem += task.MemTouchBytes
			cpu += task.CPUWork
		}
	}
	if mem/cpu < 100*MB {
		t.Errorf("Analytics memory/CPU ratio %g too low to be distinct", mem/cpu)
	}
	// IndexUpdate writes far more than any paper workload except Sort.
	iu := IndexUpdate(4)
	var writes float64
	for _, st := range iu.Stages {
		for _, task := range st.Tasks {
			writes += task.DiskWriteBytes
		}
	}
	if writes < 10*GB {
		t.Errorf("IndexUpdate writes %g bytes, expected a write-heavy job", writes)
	}
}

func TestCalibrationShape(t *testing.T) {
	job := Calibration(3)
	if err := job.Validate(); err != nil {
		t.Fatalf("Calibration invalid: %v", err)
	}
	if len(job.Stages) < 8 {
		t.Errorf("Calibration has %d stages, want a multi-regime staircase", len(job.Stages))
	}
	// Stages are strictly sequential.
	for i := 1; i < len(job.Stages); i++ {
		if len(job.Stages[i].DependsOn) != 1 || job.Stages[i].DependsOn[0] != i-1 {
			t.Fatalf("stage %d not sequential", i)
		}
	}
	// The CPU staircase rises.
	var prev float64
	for _, st := range job.Stages[:4] {
		rate := st.Tasks[0].CPURate
		if rate <= prev {
			t.Errorf("CPU staircase not rising at stage %s", st.Name)
		}
		prev = rate
	}
	// Build path covers it too.
	if _, err := Build("Calibration", 3); err != nil {
		t.Errorf("Build(Calibration): %v", err)
	}
}

func TestScalingWithClusterSize(t *testing.T) {
	// Heterogeneous experiment scales the cluster to 10 machines with
	// constant work per machine.
	small := Sort(5)
	big := Sort(10)
	var sr, br float64
	for _, st := range small.Stages {
		for _, task := range st.Tasks {
			sr += task.DiskReadBytes
		}
	}
	for _, st := range big.Stages {
		for _, task := range st.Tasks {
			br += task.DiskReadBytes
		}
	}
	ratio := br / sr
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("doubling machines should double Sort data: ratio %v", ratio)
	}
}
