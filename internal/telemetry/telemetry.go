// Package telemetry is the measurement infrastructure (paper §III-B): a
// 1 Hz collector that samples the OS counter namespace and the power meter
// on every machine, and a cluster runner that executes Dryad jobs on
// simulated clusters while logging traces.
//
// The collector times its own sampling work so the paper's "< 1% CPU
// overhead" claim can be checked against this implementation.
package telemetry

import (
	"fmt"
	"time"

	"repro/internal/counters"
	"repro/internal/dryad"
	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// samplesTotal counts every counter-vector sample taken by any collector;
// resolved once so the 1 Hz hot path pays only an atomic add.
var samplesTotal = obs.Default().Counter("chaos_collector_samples_total", nil)

// Collector samples one machine's counter vector at 1 Hz, accounting for
// its own CPU cost.
type Collector struct {
	exp        *counters.Expander
	overheadNS int64
	samples    int
}

// NewCollector returns a collector over the registry with a deterministic
// observation-noise stream.
func NewCollector(reg *counters.Registry, seed int64) *Collector {
	return &Collector{exp: counters.NewExpander(reg, seed)}
}

// Sample expands one second of base signals into the counter vector.
func (c *Collector) Sample(sig counters.Signals) ([]float64, error) {
	start := time.Now()
	row, err := c.exp.Sample(sig)
	c.overheadNS += time.Since(start).Nanoseconds()
	c.samples++
	samplesTotal.Inc()
	return row, err
}

// OverheadFraction returns the collector's measured CPU cost as a fraction
// of the sampling interval — the quantity the paper bounds below 1%.
// A zero or negative interval yields 0 rather than a division blow-up, so
// the overhead gauges can never publish Inf/NaN.
func (c *Collector) OverheadFraction(interval time.Duration) float64 {
	if c.samples == 0 || interval <= 0 {
		return 0
	}
	perSample := float64(c.overheadNS) / float64(c.samples)
	return perSample / float64(interval.Nanoseconds())
}

// Samples returns how many samples the collector has taken.
func (c *Collector) Samples() int { return c.samples }

// Cluster is a set of instrumented machines (possibly heterogeneous) that
// can execute Dryad jobs while logging per-machine traces.
type Cluster struct {
	Registry   *counters.Registry
	Machines   []*sim.Machine
	collectors []*Collector
	seed       int64
}

// New builds a homogeneous cluster of n machines of the named platform.
func New(platform string, n int, seed int64) (*Cluster, error) {
	names := make([]string, n)
	for i := range names {
		names[i] = platform
	}
	return NewHeterogeneous(names, seed)
}

// NewHeterogeneous builds a cluster with one machine per listed platform
// name (repeat names for multiple machines of a class).
func NewHeterogeneous(platforms []string, seed int64) (*Cluster, error) {
	return NewHeterogeneousNoisy(platforms, seed, sim.DefaultNoise())
}

// NewWithNoise builds a homogeneous cluster with an explicit simulator
// noise profile (used by the substrate-sensitivity ablation).
func NewWithNoise(platform string, n int, seed int64, np sim.NoiseProfile) (*Cluster, error) {
	names := make([]string, n)
	for i := range names {
		names[i] = platform
	}
	return NewHeterogeneousNoisy(names, seed, np)
}

// NewHeterogeneousNoisy is NewHeterogeneous with an explicit noise profile.
func NewHeterogeneousNoisy(platforms []string, seed int64, np sim.NoiseProfile) (*Cluster, error) {
	if len(platforms) == 0 {
		return nil, fmt.Errorf("telemetry: empty cluster")
	}
	reg := counters.StandardRegistry()
	c := &Cluster{Registry: reg, seed: seed}
	for i, p := range platforms {
		spec, err := sim.Platform(p)
		if err != nil {
			return nil, err
		}
		id := fmt.Sprintf("%s-%d", p, i)
		m, err := sim.NewMachineNoisy(spec, id, mathx.DeriveSeed(seed, "cluster:"+id), np)
		if err != nil {
			return nil, err
		}
		c.Machines = append(c.Machines, m)
		c.collectors = append(c.collectors, NewCollector(reg, mathx.DeriveSeed(seed, "collector:"+id)))
	}
	return c, nil
}

// Size returns the number of machines.
func (c *Cluster) Size() int { return len(c.Machines) }

// IdleWatts returns the cluster's summed measured idle power.
func (c *Cluster) IdleWatts() float64 {
	s := 0.0
	for _, m := range c.Machines {
		s += m.IdleWatts()
	}
	return s
}

// CollectorOverhead returns the worst per-machine collector overhead
// fraction observed so far at a 1 s sampling interval.
func (c *Cluster) CollectorOverhead() float64 {
	worst := 0.0
	for _, col := range c.collectors {
		if f := col.OverheadFraction(time.Second); f > worst {
			worst = f
		}
	}
	return worst
}

// publishOverhead exports every collector's measured overhead fraction —
// the quantity the paper bounds below 1% — as per-machine gauges, plus the
// cluster-worst value the dashboards alert on.
func (c *Cluster) publishOverhead() {
	reg := obs.Default()
	worst := 0.0
	for i, col := range c.collectors {
		f := col.OverheadFraction(time.Second)
		reg.Gauge("chaos_collector_overhead_fraction", obs.Labels{"machine": c.Machines[i].ID}).Set(f)
		if f > worst {
			worst = f
		}
	}
	reg.Gauge("chaos_collector_overhead_worst_fraction", nil).Set(worst)
}

// idlePadding is the number of near-idle seconds logged before and after
// each job, anchoring traces at the bottom of the power range the way the
// paper's run logs do.
const idlePadding = 12

// RunJob executes the job once (run index run) and returns one trace per
// machine. maxSeconds bounds the simulation; exceeding it is an error so
// miscalibrated workloads fail loudly instead of looping.
func (c *Cluster) RunJob(job *dryad.Job, run int, maxSeconds int) ([]*trace.Trace, error) {
	if maxSeconds <= 0 {
		maxSeconds = 3000
	}
	span := obs.StartSpan("telemetry.run_job",
		obs.String("job", job.Name), obs.Int("run", run), obs.Int("machines", len(c.Machines)))
	defer span.End()
	defer c.publishOverhead()
	slots := make([]int, len(c.Machines))
	for i, m := range c.Machines {
		slots[i] = m.Spec.Cores + 2
	}
	schedSeed := mathx.DeriveSeed(c.seed, fmt.Sprintf("run:%s:%d", job.Name, run))
	sched, err := dryad.NewScheduler(job, slots, schedSeed)
	if err != nil {
		return nil, err
	}

	builders := make([]*trace.Builder, len(c.Machines))
	for i, m := range c.Machines {
		builders[i] = trace.NewBuilder(m.Spec.Name, job.Name, m.ID, run, c.Registry.Names(), m.IdleWatts())
	}

	step := func(demandFor func(int) sim.Demand, apply bool) error {
		for i, m := range c.Machines {
			served, sig, power := m.Step(demandFor(i))
			row, err := c.collectors[i].Sample(sig)
			if err != nil {
				return err
			}
			if err := builders[i].Add(row, power.MeterWatts, power.TrueWatts); err != nil {
				return err
			}
			if apply {
				sched.Apply(i, served)
			}
		}
		return nil
	}

	for t := 0; t < idlePadding; t++ {
		if err := step(func(int) sim.Demand { return sim.Demand{} }, false); err != nil {
			return nil, err
		}
	}
	for t := 0; ; t++ {
		if sched.Done() {
			break
		}
		if t >= maxSeconds {
			return nil, fmt.Errorf("telemetry: job %q did not finish in %d s (%d/%d tasks done)",
				job.Name, maxSeconds, sched.Finished(), job.TotalTasks())
		}
		sched.Tick()
		if err := step(sched.Demand, true); err != nil {
			return nil, err
		}
	}
	for t := 0; t < idlePadding; t++ {
		if err := step(func(int) sim.Demand { return sim.Demand{} }, false); err != nil {
			return nil, err
		}
	}

	out := make([]*trace.Trace, len(builders))
	for i, b := range builders {
		tr, err := b.Build()
		if err != nil {
			return nil, err
		}
		out[i] = tr
	}
	return out, nil
}

// RunSequence executes several jobs back to back on the cluster and
// returns one continuous trace per machine — a day-in-the-life log where
// the workload mix changes mid-stream, which is what online drift
// detection faces in production. gapSeconds of idle separate consecutive
// jobs.
func (c *Cluster) RunSequence(workloadNames []string, gapSeconds, maxSecondsPerJob int, run int) ([]*trace.Trace, error) {
	if len(workloadNames) == 0 {
		return nil, fmt.Errorf("telemetry: empty sequence")
	}
	if gapSeconds < 0 {
		gapSeconds = 0
	}
	span := obs.StartSpan("telemetry.run_sequence",
		obs.Int("jobs", len(workloadNames)), obs.Int("machines", len(c.Machines)))
	defer span.End()
	defer c.publishOverhead()
	builders := make([]*trace.Builder, len(c.Machines))
	for i, m := range c.Machines {
		builders[i] = trace.NewBuilder(m.Spec.Name, "sequence", m.ID, run, c.Registry.Names(), m.IdleWatts())
	}
	appendTraces := func(ts []*trace.Trace) error {
		for i, t := range ts {
			for k := 0; k < t.Len(); k++ {
				if err := builders[i].Add(t.X.Row(k), t.Power[k], t.TruePower[k]); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for wi, name := range workloadNames {
		job, err := workloadJob(name, c.Size())
		if err != nil {
			return nil, err
		}
		ts, err := c.RunJob(job, run*100+wi, maxSecondsPerJob)
		if err != nil {
			return nil, err
		}
		if err := appendTraces(ts); err != nil {
			return nil, err
		}
		if wi < len(workloadNames)-1 && gapSeconds > 0 {
			for g := 0; g < gapSeconds; g++ {
				for i, m := range c.Machines {
					_, sig, power := m.Step(sim.Demand{})
					row, err := c.collectors[i].Sample(sig)
					if err != nil {
						return nil, err
					}
					if err := builders[i].Add(row, power.MeterWatts, power.TrueWatts); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	out := make([]*trace.Trace, len(builders))
	for i, b := range builders {
		t, err := b.Build()
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

// RunWorkload builds the named workload and executes it `runs` times,
// returning all machine traces. Each run gets a different scheduler seed,
// so work is partitioned differently (the paper's train/test separation
// relies on this).
func (c *Cluster) RunWorkload(name string, runs, maxSeconds int) ([]*trace.Trace, error) {
	if runs <= 0 {
		return nil, fmt.Errorf("telemetry: runs must be positive, got %d", runs)
	}
	job, err := workloadJob(name, c.Size())
	if err != nil {
		return nil, err
	}
	var all []*trace.Trace
	for r := 0; r < runs; r++ {
		traces, err := c.RunJob(job, r, maxSeconds)
		if err != nil {
			return nil, err
		}
		all = append(all, traces...)
	}
	return all, nil
}
