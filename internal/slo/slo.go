// Package slo turns the serving path's label and latency streams into
// live service-level objectives. A Tracker keeps rolling windows of
// estimation accuracy (DRE, the paper's Eq. 6 metric, over the window's
// observed dynamic range) and request latency, evaluates them against
// configured objectives with a fast/slow multi-window burn-rate rule,
// and emits slo_violation / slo_recovered events plus chaos_slo_*
// gauges on transitions.
//
// Evaluation is count-driven — every EvalEvery observations of the
// relevant stream — not wall-clock-driven, so tests and replays are
// deterministic: the same observation sequence always produces the same
// event sequence.
package slo

import (
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Config sets the objectives and window geometry for a Tracker.
type Config struct {
	// DREObjective is the maximum acceptable rolling cluster DRE
	// (dynamic-range error, rmse/range). 0 disables the accuracy SLO.
	DREObjective float64
	// P99Objective is the maximum acceptable request latency at the
	// 99th percentile. 0 disables the latency SLO.
	P99Objective time.Duration
	// FastWindow and SlowWindow are observation counts for the
	// multi-window burn evaluation. Defaults: 32 and 128.
	FastWindow int
	SlowWindow int
	// EvalEvery evaluates the burn rule every N observations of each
	// stream. Default: FastWindow/4, minimum 1.
	EvalEvery int
	// BurnThreshold is the burn rate (observed/objective for accuracy,
	// bad-fraction/budget for latency) that must be exceeded in BOTH
	// windows to trip a violation. Default 1.0.
	BurnThreshold float64
	// Events receives slo_violation / slo_recovered; nil drops them.
	Events *obs.EventSink
	// Reg carries the chaos_slo_* gauges; nil uses obs.Default().
	Reg *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.FastWindow <= 0 {
		c.FastWindow = 32
	}
	if c.SlowWindow < c.FastWindow {
		c.SlowWindow = 4 * c.FastWindow
	}
	if c.EvalEvery <= 0 {
		c.EvalEvery = c.FastWindow / 4
		if c.EvalEvery < 1 {
			c.EvalEvery = 1
		}
	}
	if c.BurnThreshold <= 0 {
		c.BurnThreshold = 1.0
	}
	if c.Reg == nil {
		c.Reg = obs.Default()
	}
	return c
}

// pairRing is a fixed ring of (estimate, metered) pairs.
type pairRing struct {
	est, met []float64
	idx, n   int
}

func newPairRing(cap int) *pairRing {
	return &pairRing{est: make([]float64, cap), met: make([]float64, cap)}
}

func (r *pairRing) push(e, m float64) {
	r.est[r.idx], r.met[r.idx] = e, m
	r.idx = (r.idx + 1) % len(r.est)
	if r.n < len(r.est) {
		r.n++
	}
}

// dre returns the window's dynamic-range error: rmse over the last
// min(w, n) pairs divided by the observed metered range. A window whose
// metered power never moves (range ~ 0) cannot be scored on a relative
// scale; it reports 0 so a flat, accurate idle period never pages.
func (r *pairRing) dre(w int) float64 {
	n := r.n
	if w < n {
		n = w
	}
	if n == 0 {
		return 0
	}
	var sq, lo, hi float64
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		j := (r.idx - 1 - i + len(r.est)) % len(r.est)
		d := r.est[j] - r.met[j]
		sq += d * d
		if r.met[j] < lo {
			lo = r.met[j]
		}
		if r.met[j] > hi {
			hi = r.met[j]
		}
	}
	rng := hi - lo
	if rng < 1e-9 {
		return 0
	}
	return math.Sqrt(sq/float64(n)) / rng
}

// durRing is a fixed ring of request durations in seconds.
type durRing struct {
	v      []float64
	idx, n int
}

func newDurRing(cap int) *durRing { return &durRing{v: make([]float64, cap)} }

func (r *durRing) push(secs float64) {
	r.v[r.idx] = secs
	r.idx = (r.idx + 1) % len(r.v)
	if r.n < len(r.v) {
		r.n++
	}
}

// badFraction returns the share of the last min(w, n) requests slower
// than the objective, and the window's p99 (by sorted rank).
func (r *durRing) badFraction(w int, objective float64) (frac, p99 float64) {
	n := r.n
	if w < n {
		n = w
	}
	if n == 0 {
		return 0, 0
	}
	window := make([]float64, n)
	bad := 0
	for i := 0; i < n; i++ {
		j := (r.idx - 1 - i + len(r.v)) % len(r.v)
		window[i] = r.v[j]
		if r.v[j] > objective {
			bad++
		}
	}
	sort.Float64s(window)
	rank := int(math.Ceil(0.99*float64(n))) - 1
	if rank < 0 {
		rank = 0
	}
	return float64(bad) / float64(n), window[rank]
}

// sloState is the per-objective violation state machine.
type sloState struct {
	name      string
	violating bool
	trips     int
	recovers  int
}

// Tracker evaluates live SLOs from the serving path's observation
// streams. It implements serve.Observer. All methods are safe for
// concurrent use.
type Tracker struct {
	cfg Config

	mu       sync.Mutex
	cluster  *pairRing
	machines map[string]*pairRing
	lats     *durRing
	labeled  uint64 // labeled observations seen
	requests uint64 // requests seen
	version  string // last model version observed

	accuracy sloState
	latency  sloState
}

// NewTracker builds a Tracker; zero-valued objectives disable the
// corresponding SLO but observations are still windowed and exported.
func NewTracker(cfg Config) *Tracker {
	cfg = cfg.withDefaults()
	t := &Tracker{
		cfg:      cfg,
		cluster:  newPairRing(cfg.SlowWindow),
		machines: make(map[string]*pairRing),
		lats:     newDurRing(cfg.SlowWindow),
		accuracy: sloState{name: "accuracy"},
		latency:  sloState{name: "latency"},
	}
	if cfg.DREObjective > 0 {
		cfg.Reg.Gauge("chaos_slo_objective", obs.Labels{"slo": "accuracy"}).Set(cfg.DREObjective)
	}
	if cfg.P99Objective > 0 {
		cfg.Reg.Gauge("chaos_slo_objective", obs.Labels{"slo": "latency"}).Set(cfg.P99Objective.Seconds())
	}
	return t
}

// ObserveRequest feeds one served request into the latency SLO.
// Non-2xx statuses count as latency-budget burn regardless of duration:
// a shed or failed request is never "within objective".
func (t *Tracker) ObserveRequest(endpoint string, d time.Duration, status int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	secs := d.Seconds()
	if status < 200 || status >= 300 {
		// Push it past the objective so errors burn budget however
		// quickly they failed (finite, so event JSON stays valid).
		if floor := 2 * t.cfg.P99Objective.Seconds(); secs < floor {
			secs = floor
		}
	}
	t.lats.push(secs)
	t.requests++
	if t.cfg.P99Objective > 0 && t.requests%uint64(t.cfg.EvalEvery) == 0 {
		t.evalLatencyLocked()
	}
}

// ObserveLabeled feeds one metered snapshot into the accuracy SLO: the
// cluster pair plus one pair per machine.
func (t *Tracker) ObserveLabeled(machineIDs []string, estimated, metered []float64, clusterEst float64, version string) {
	if t == nil || len(machineIDs) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.version = version
	var meteredSum float64
	for i, id := range machineIDs {
		if i >= len(estimated) || i >= len(metered) {
			break
		}
		meteredSum += metered[i]
		mr := t.machines[id]
		if mr == nil {
			mr = newPairRing(t.cfg.SlowWindow)
			t.machines[id] = mr
		}
		mr.push(estimated[i], metered[i])
		t.cfg.Reg.Gauge("chaos_slo_machine_dre", obs.Labels{"machine": id}).Set(mr.dre(t.cfg.FastWindow))
	}
	t.cluster.push(clusterEst, meteredSum)
	t.labeled++
	if t.cfg.DREObjective > 0 && t.labeled%uint64(t.cfg.EvalEvery) == 0 {
		t.evalAccuracyLocked()
	}
}

func (t *Tracker) evalAccuracyLocked() {
	fast := t.cluster.dre(t.cfg.FastWindow)
	slow := t.cluster.dre(t.cfg.SlowWindow)
	burnFast := fast / t.cfg.DREObjective
	burnSlow := slow / t.cfg.DREObjective
	t.cfg.Reg.Gauge("chaos_slo_dre", obs.Labels{"window": "fast"}).Set(fast)
	t.cfg.Reg.Gauge("chaos_slo_dre", obs.Labels{"window": "slow"}).Set(slow)
	t.transition(&t.accuracy, burnFast, burnSlow, map[string]any{
		"dre_fast":  fast,
		"dre_slow":  slow,
		"objective": t.cfg.DREObjective,
		"version":   t.version,
		"machine":   t.worstMachineLocked(),
	})
}

func (t *Tracker) evalLatencyLocked() {
	objective := t.cfg.P99Objective.Seconds()
	// Budget: 1% of requests may exceed the p99 objective.
	const budget = 0.01
	fracFast, p99Fast := t.lats.badFraction(t.cfg.FastWindow, objective)
	fracSlow, _ := t.lats.badFraction(t.cfg.SlowWindow, objective)
	burnFast := fracFast / budget
	burnSlow := fracSlow / budget
	t.cfg.Reg.Gauge("chaos_slo_p99_seconds", nil).Set(p99Fast)
	t.transition(&t.latency, burnFast, burnSlow, map[string]any{
		"p99_s":     p99Fast,
		"objective": objective,
		"version":   t.version,
	})
}

// transition runs the multi-window burn rule for one SLO: violation
// when BOTH the fast and slow windows burn past the threshold (the fast
// window reacts, the slow window confirms it is not a blip); recovery
// when BOTH drop back under. Events fire only on edges.
func (t *Tracker) transition(st *sloState, burnFast, burnSlow float64, fields map[string]any) {
	t.cfg.Reg.Gauge("chaos_slo_burn", obs.Labels{"slo": st.name, "window": "fast"}).Set(burnFast)
	t.cfg.Reg.Gauge("chaos_slo_burn", obs.Labels{"slo": st.name, "window": "slow"}).Set(burnSlow)
	violating := burnFast >= t.cfg.BurnThreshold && burnSlow >= t.cfg.BurnThreshold
	recovered := burnFast < t.cfg.BurnThreshold && burnSlow < t.cfg.BurnThreshold
	var event string
	switch {
	case violating && !st.violating:
		st.violating = true
		st.trips++
		event = "slo_violation"
	case recovered && st.violating:
		st.violating = false
		st.recovers++
		event = "slo_recovered"
	default:
		return
	}
	gauge := 0.0
	if st.violating {
		gauge = 1.0
	}
	t.cfg.Reg.Gauge("chaos_slo_violation", obs.Labels{"slo": st.name}).Set(gauge)
	if t.cfg.Events != nil {
		f := map[string]any{"slo": st.name, "burn_fast": burnFast, "burn_slow": burnSlow}
		for k, v := range fields {
			f[k] = v
		}
		t.cfg.Events.Emit(event, f) //nolint:errcheck // telemetry only
	}
}

// worstMachineLocked names the machine with the highest fast-window DRE.
func (t *Tracker) worstMachineLocked() string {
	worst, worstDRE := "", -1.0
	for id, r := range t.machines {
		if d := r.dre(t.cfg.FastWindow); d > worstDRE {
			worst, worstDRE = id, d
		}
	}
	return worst
}

// Status is a point-in-time view of the tracker for tests and the
// version endpoint.
type Status struct {
	ClusterDREFast   float64            `json:"cluster_dre_fast"`
	ClusterDRESlow   float64            `json:"cluster_dre_slow"`
	MachineDRE       map[string]float64 `json:"machine_dre"`
	P99Fast          time.Duration      `json:"p99_fast_ns"`
	AccuracyViolated bool               `json:"accuracy_violated"`
	LatencyViolated  bool               `json:"latency_violated"`
	AccuracyTrips    int                `json:"accuracy_trips"`
	AccuracyRecovers int                `json:"accuracy_recovers"`
	LatencyTrips     int                `json:"latency_trips"`
	Labeled          uint64             `json:"labeled"`
	Requests         uint64             `json:"requests"`
}

// Snapshot returns the current SLO state.
func (t *Tracker) Snapshot() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	md := make(map[string]float64, len(t.machines))
	for id, r := range t.machines {
		md[id] = r.dre(t.cfg.FastWindow)
	}
	_, p99 := t.lats.badFraction(t.cfg.FastWindow, math.Inf(1))
	return Status{
		ClusterDREFast:   t.cluster.dre(t.cfg.FastWindow),
		ClusterDRESlow:   t.cluster.dre(t.cfg.SlowWindow),
		MachineDRE:       md,
		P99Fast:          time.Duration(p99 * float64(time.Second)),
		AccuracyViolated: t.accuracy.violating,
		LatencyViolated:  t.latency.violating,
		AccuracyTrips:    t.accuracy.trips,
		AccuracyRecovers: t.accuracy.recovers,
		LatencyTrips:     t.latency.trips,
		Labeled:          t.labeled,
		Requests:         t.requests,
	}
}
