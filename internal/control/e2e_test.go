package control

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/faults"
)

// TestControlCapHoldsUnderChaos is the PR acceptance run: a 1000-machine
// fleet (5 rows × 5 racks × 40), every rack of row-0 budgeted to 80% of
// its own uncapped ground-truth peak, under chaos — two meter-dropout
// windows force model-based sensing, and the model itself is stale by
// construction (trained on the uncapped regime the controller then
// destroys). Closing the loop against the hidden meter:
//
//   - ground-truth rack power exceeds budget (beyond meter error, 1.5%)
//     in < 1% of simulated rack-seconds outside a one-loop-interval
//     settling window;
//   - fleet throughput retention ≥ 90% of the uncapped twin;
//   - the full run digest (machine records AND control records)
//     reproduces bit-for-bit across two same-seed runs.
func TestControlCapHoldsUnderChaos(t *testing.T) {
	const (
		seed     = int64(20260808)
		duration = int64(1500)
		interval = int64(15)
		settle   = 2 * interval // one interval to first tick + one to act
		tol      = 1.015        // meter error allowance on the budget
	)
	racks := []string{
		"row-0/rack-0", "row-0/rack-1", "row-0/rack-2", "row-0/rack-3", "row-0/rack-4",
	}

	build := func() (*cluster.Topology, *cluster.ClusterSimulator) {
		topo, err := cluster.Build(ctlSpec(5, 5, 40, seed))
		if err != nil {
			t.Fatal(err)
		}
		if len(topo.Machines) != 1000 {
			t.Fatalf("fleet is %d machines, want 1000", len(topo.Machines))
		}
		return topo, cluster.NewSimulator(topo)
	}

	// Uncapped twin: per-rack ground-truth peaks and fleet throughput.
	topoU, csU := build()
	peaks := make(map[string]float64, len(racks))
	levelsU := make(map[string]*cluster.Level, len(racks))
	for _, r := range racks {
		l, ok := topoU.FindLevel(r)
		if !ok {
			t.Fatalf("rack %s missing", r)
		}
		levelsU[r] = l
	}
	for ts := int64(1); ts <= duration; ts++ {
		csU.RunUntil(ts)
		for _, r := range racks {
			if gt := levelsU[r].GroundTruthWatts(); gt > peaks[r] {
				peaks[r] = gt
			}
		}
	}
	servedUncapped := csU.ServedCPU()
	if servedUncapped <= 0 {
		t.Fatal("uncapped run served nothing")
	}

	reg := bootReg(t)
	pol := &Policy{
		Version:              PolicyVersion,
		Name:                 "e2e-80pct",
		IntervalS:            interval,
		MaxActuationsPerTick: 12,
		Budgets:              make([]Budget, 0, len(racks)),
		Migration:            MigrationPolicy{Enabled: true, MaxPerTick: 12},
	}
	minBudget := 0.0
	for _, r := range racks {
		b := peaks[r] * 0.80
		pol.Budgets = append(pol.Budgets, Budget{Level: r, Watts: b})
		if minBudget == 0 || b < minBudget {
			minBudget = b
		}
	}
	pol.HysteresisWatts = minBudget * 0.04
	pol.applyDefaults()

	capped := func() (digest string, served float64, violations, counted int) {
		topo, cs := build()
		sc := &faults.Scenario{Name: "cap-chaos", MeterDropouts: []faults.Window{
			{StartS: 300, EndS: 450},
			{StartS: 900, EndS: 1050},
		}}
		inj, err := faults.NewInjector(sc, seed)
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(cs, Config{Policy: pol, Registry: reg, Faults: inj})
		if err != nil {
			t.Fatal(err)
		}
		c.Start()
		levels := make([]*cluster.Level, len(racks))
		for i, r := range racks {
			l, _ := topo.FindLevel(r)
			levels[i] = l
		}
		for ts := int64(1); ts <= duration; ts++ {
			cs.RunUntil(ts)
			if ts <= settle {
				continue
			}
			for i, r := range racks {
				counted++
				if levels[i].GroundTruthWatts() > pol.Budgets[i].Watts*tol {
					violations++
					_ = r
				}
			}
		}
		ticks, decisions, freqActs, _ := c.Stats()
		if ticks < duration/interval-2 {
			t.Fatalf("only %d ticks", ticks)
		}
		if freqActs == 0 || decisions == 0 {
			t.Fatalf("controller idle: %d actuations, %d decisions", freqActs, decisions)
		}
		return cs.Digest(), cs.ServedCPU(), violations, counted
	}

	dig1, served1, viol, counted := capped()
	if counted == 0 {
		t.Fatal("no seconds counted")
	}
	frac := float64(viol) / float64(counted)
	if frac >= 0.01 {
		t.Fatalf("ground truth exceeded budget in %.2f%% of rack-seconds (want < 1%%)", frac*100)
	}
	retention := served1 / servedUncapped
	if retention < 0.90 {
		t.Fatalf("throughput retention %.3f, want ≥ 0.90", retention)
	}
	t.Logf("violations %.3f%% of %d rack-seconds, retention %.3f", frac*100, counted, retention)

	dig2, served2, _, _ := capped()
	if dig1 != dig2 {
		t.Fatalf("capped run digest not reproducible:\n%s\n%s", dig1, dig2)
	}
	if served1 != served2 {
		t.Fatalf("served throughput not reproducible: %v vs %v", served1, served2)
	}
}

// TestControlRegistryDedicated ensures the e2e registry path matches what
// the CLIs build: a bootstrap model admitted as the first (auto-active)
// version.
func TestControlRegistryDedicated(t *testing.T) {
	reg := bootReg(t)
	e := reg.Active()
	if e == nil || e.Version != "boot-1" {
		t.Fatalf("active %+v", e)
	}
	if _, ok := e.Model.ByPlatform["Core2"]; !ok {
		t.Fatal("bootstrap model missing Core2")
	}
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	_ = fmt.Sprintf("%v", e.Version)
}
