package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/models"
)

// Grid returns (computing and caching on first use) the full technique x
// feature-set cross-validation grid for one platform and workload — the
// model exploration behind Figures 3/4 and Tables III/IV.
func (s *Suite) Grid(platform, workload string) ([]core.GridEntry, error) {
	key := platform + "/" + workload
	if s.grids == nil {
		s.grids = map[string][]core.GridEntry{}
	}
	if g, ok := s.grids[key]; ok {
		return g, nil
	}
	ds, err := s.Dataset(platform)
	if err != nil {
		return nil, err
	}
	traces, ok := ds.ByWorkload[workload]
	if !ok {
		return nil, fmt.Errorf("experiments: workload %q not collected for %s", workload, platform)
	}
	specs, err := s.Specs(platform)
	if err != nil {
		return nil, err
	}
	entries, err := core.EvaluateGrid(traces, models.Techniques(), specs, core.CVConfig{})
	if err != nil {
		return nil, err
	}
	s.grids[key] = entries
	return entries, nil
}

// Best returns the lowest-cluster-DRE entry of the platform/workload grid.
func (s *Suite) Best(platform, workload string) (core.GridEntry, error) {
	g, err := s.Grid(platform, workload)
	if err != nil {
		return core.GridEntry{}, err
	}
	return core.BestEntry(g)
}
