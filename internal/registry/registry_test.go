package registry

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/models"
)

// mkCluster builds a one-platform cluster model around a hand-written
// linear model: watts = intercept + 1*a + 2*b.
func mkCluster(t *testing.T, platform string, intercept float64) *models.ClusterModel {
	t.Helper()
	mm := &models.MachineModel{
		Platform: platform,
		Spec:     models.FeatureSpec{Name: "test", Counters: []string{"a", "b"}},
		Model:    &models.Linear{Intercept: intercept, Coef: []float64{1, 2}},
	}
	cm, err := models.NewClusterModel(mm)
	if err != nil {
		t.Fatal(err)
	}
	return cm
}

func TestServeRegistryAddActivateRollback(t *testing.T) {
	r := New()
	if r.Active() != nil || r.ActiveVersion() != "" {
		t.Fatal("empty registry should have no active model")
	}
	if err := r.Add("v1", mkCluster(t, "p", 10), Meta{Description: "first"}); err != nil {
		t.Fatal(err)
	}
	if got := r.ActiveVersion(); got != "v1" {
		t.Fatalf("first Add should auto-activate; active = %q", got)
	}
	if err := r.Add("v1", mkCluster(t, "p", 11), Meta{}); err == nil {
		t.Fatal("duplicate version should be rejected")
	}
	if err := r.Add("v2", mkCluster(t, "p", 20), Meta{}); err != nil {
		t.Fatal(err)
	}
	if got := r.ActiveVersion(); got != "v1" {
		t.Fatalf("second Add must not steal the active slot; active = %q", got)
	}
	if err := r.Activate("nope"); err == nil {
		t.Fatal("activating unknown version should fail")
	}
	if err := r.Activate("v2"); err != nil {
		t.Fatal(err)
	}
	if got := r.ActiveVersion(); got != "v2" {
		t.Fatalf("active = %q, want v2", got)
	}
	// Re-activating the active version must not clobber the rollback
	// target.
	if err := r.Activate("v2"); err != nil {
		t.Fatal(err)
	}
	back, err := r.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if back != "v1" || r.ActiveVersion() != "v1" {
		t.Fatalf("rollback went to %q (active %q), want v1", back, r.ActiveVersion())
	}
}

func TestServeRegistryRollbackWithoutHistory(t *testing.T) {
	r := New()
	if _, err := r.Rollback(); err == nil {
		t.Fatal("rollback on empty registry should fail")
	}
	if err := r.Add("v1", mkCluster(t, "p", 10), Meta{}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Rollback(); err == nil {
		t.Fatal("rollback with no prior activation should fail")
	}
}

func TestServeRegistryValidationRejects(t *testing.T) {
	r := New()
	if err := r.Add("", mkCluster(t, "p", 1), Meta{}); err == nil {
		t.Error("empty version name should be rejected")
	}
	if err := r.Add("v1", &models.ClusterModel{}, Meta{}); err == nil {
		t.Error("empty cluster model should be rejected")
	}
	// Spec width disagrees with the fitted model.
	bad := &models.MachineModel{
		Platform: "p",
		Spec:     models.FeatureSpec{Name: "test", Counters: []string{"a"}},
		Model:    &models.Linear{Intercept: 1, Coef: []float64{1, 2}},
	}
	if err := r.Add("v1", &models.ClusterModel{ByPlatform: map[string]*models.MachineModel{"p": bad}}, Meta{}); err == nil {
		t.Error("spec/model width mismatch should be rejected")
	}
	// Keyed under the wrong platform.
	mm := &models.MachineModel{
		Platform: "p",
		Spec:     models.FeatureSpec{Name: "test", Counters: []string{"a", "b"}},
		Model:    &models.Linear{Intercept: 1, Coef: []float64{1, 2}},
	}
	if err := r.Add("v1", &models.ClusterModel{ByPlatform: map[string]*models.MachineModel{"q": mm}}, Meta{}); err == nil {
		t.Error("platform key mismatch should be rejected")
	}
	if r.Len() != 0 || r.Active() != nil {
		t.Errorf("rejected adds must not leave state behind: len=%d active=%v", r.Len(), r.Active())
	}
}

func TestServeRegistryAddJSONAndList(t *testing.T) {
	r := New()
	cm := mkCluster(t, "p", 10)
	data, err := json.Marshal(cm)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AddJSON("v1", data, Meta{Description: "from json", Source: "test"}); err != nil {
		t.Fatal(err)
	}
	if err := r.AddJSON("v2", []byte(`{"truncated`), Meta{}); err == nil {
		t.Fatal("corrupt JSON should be rejected")
	}
	if err := r.Add("v2", mkCluster(t, "p", 20), Meta{}); err != nil {
		t.Fatal(err)
	}
	infos := r.List()
	if len(infos) != 2 {
		t.Fatalf("List returned %d versions, want 2", len(infos))
	}
	if infos[0].Version != "v1" || infos[1].Version != "v2" {
		t.Errorf("List order = %s, %s; want admission order v1, v2", infos[0].Version, infos[1].Version)
	}
	if !infos[0].Active || infos[1].Active {
		t.Errorf("active flags wrong: %+v", infos)
	}
	if infos[0].Description != "from json" || infos[0].Source != "test" {
		t.Errorf("meta not preserved: %+v", infos[0])
	}
	if len(infos[0].Platforms) != 1 || infos[0].Platforms[0] != "p" {
		t.Errorf("platforms = %v, want [p]", infos[0].Platforms)
	}
	if len(infos[0].Models) != 1 || infos[0].Models[0].Technique != models.TechLinear || infos[0].Models[0].Inputs != 2 {
		t.Errorf("model info = %+v", infos[0].Models)
	}
	// Entries round-trip through Get.
	e, ok := r.Get("v2")
	if !ok || e.Version != "v2" {
		t.Fatalf("Get(v2) = %v, %v", e, ok)
	}
	if w := e.Model.ByPlatform["p"].Model.Predict([]float64{3, 4}); w != 31 {
		t.Errorf("v2 predict = %g, want 31", w)
	}
}

func TestServeRegistryLoadFileMissing(t *testing.T) {
	r := New()
	err := r.LoadFile("v1", "/nonexistent/model.json")
	if err == nil {
		t.Fatal("missing file should be an error")
	}
	if !strings.Contains(err.Error(), "v1") {
		t.Errorf("error should name the version: %v", err)
	}
}
