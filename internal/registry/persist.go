package registry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/models"
	"repro/internal/store"
)

// Persistence: a registry built with Open journals every mutation to
// <dir>/journal.log — admissions as full model documents, activations
// (and rollbacks, which are state-identical) as small control records —
// through the store package's checksummed framing, so a kill -9 at any
// instant loses at most the one in-flight append. When the journal
// outgrows a size bound the whole state compacts into <dir>/snapshot.json
// (written atomically) and the journal resets; recovery loads the
// snapshot, then replays the journal on top. Replay is idempotent: a
// crash between snapshot write and journal reset re-admits versions the
// snapshot already holds, and those duplicates are skipped.

// journalName and snapshotName are the fixed file names inside a registry
// state directory.
const (
	journalName  = "journal.log"
	snapshotName = "snapshot.json"
)

// record is one journal entry. Admissions carry the full model document;
// activations carry just the version.
type record struct {
	Op        string          `json:"op"` // "admit" | "activate"
	Version   string          `json:"version"`
	Meta      Meta            `json:"meta,omitempty"`
	CreatedAt time.Time       `json:"created_at,omitempty"`
	Seq       int             `json:"seq,omitempty"`
	Model     json.RawMessage `json:"model,omitempty"`
}

// snapshotFile is the compacted full state.
type snapshotFile struct {
	Admits   []record `json:"admits"` // admission (seq) order
	Active   string   `json:"active,omitempty"`
	Previous string   `json:"previous,omitempty"`
}

// persister is the journal half of a persistent registry.
type persister struct {
	j            *store.Journal
	dir          string
	compactBytes int64
	compactions  int
	// records counts the journal's current record frames — what a
	// replication follower's applied count is measured against.
	records int
}

// OpenOptions tunes Open. Zero values take defaults.
type OpenOptions struct {
	// CompactBytes is the journal size that triggers compaction into a
	// snapshot (default 4 MiB). Compaction runs inline on the mutation
	// that crossed the bound — registry mutations are rare and snapshots
	// small, so the serving path never sees it.
	CompactBytes int64
}

// Recovery reports what Open found: the journal-level repairs plus
// registry-level replay accounting.
type Recovery struct {
	// Journal is the byte-level repair report (torn tail, quarantine).
	Journal store.Recovery
	// FromSnapshot is true when a compacted snapshot seeded the state.
	FromSnapshot bool
	// Versions and Active describe the recovered registry.
	Versions int
	Active   string
	// SkippedRecords counts checksum-valid records that were semantically
	// unusable — duplicate admissions (the idempotent-replay case), models
	// failing validation, activations of unknown versions. They are
	// ignored rather than allowed to poison the store.
	SkippedRecords int
}

// Open builds a registry backed by the state directory, creating it if
// needed. Existing state is recovered: snapshot first, then the journal
// replayed on top, with torn tails truncated and corrupt segments
// quarantined (see the Recovery report). The returned registry behaves
// exactly like an in-memory one, with every mutation journaled; callers
// own Close.
func Open(dir string, opts OpenOptions) (*Registry, *Recovery, error) {
	if opts.CompactBytes <= 0 {
		opts.CompactBytes = 4 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("registry: creating state dir: %w", err)
	}
	r := New()
	rec := &Recovery{}

	snapPath := filepath.Join(dir, snapshotName)
	if data, err := os.ReadFile(snapPath); err == nil {
		var snap snapshotFile
		if err := json.Unmarshal(data, &snap); err != nil {
			// snapshot.json is written atomically, so a parse failure is
			// not a crash artifact — refuse to guess at the state.
			return nil, nil, fmt.Errorf("registry: corrupt snapshot %s: %w", snapPath, err)
		}
		for i := range snap.Admits {
			r.applyAdmit(&snap.Admits[i], rec)
		}
		if snap.Active != "" {
			if e, ok := r.versions[snap.Active]; ok {
				r.active.Store(e)
			}
		}
		r.previous = snap.Previous
		rec.FromSnapshot = true
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("registry: reading snapshot: %w", err)
	}

	j, jrec, err := store.OpenJournal(filepath.Join(dir, journalName), func(b []byte) error {
		r.applyRecord(b, rec)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	rec.Journal = jrec
	r.persist = &persister{j: j, dir: dir, compactBytes: opts.CompactBytes, records: jrec.Records}
	rec.Versions = len(r.versions)
	rec.Active = r.ActiveVersion()
	return r, rec, nil
}

// Close releases the journal. In-memory registries close as a no-op.
func (r *Registry) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.persist == nil {
		return nil
	}
	return r.persist.j.Close()
}

// Persistent reports whether mutations are journaled.
func (r *Registry) Persistent() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.persist != nil
}

// applyRecord replays one journal record during Open. Semantic problems
// skip the record (counted) rather than abort: a checksum-valid record
// that cannot apply — a duplicate admit after an interrupted compaction,
// an activation of a version that never admitted — must not take the
// whole store down.
func (r *Registry) applyRecord(b []byte, rec *Recovery) {
	var rc record
	if err := json.Unmarshal(b, &rc); err != nil {
		rec.SkippedRecords++
		return
	}
	switch rc.Op {
	case "admit":
		r.applyAdmit(&rc, rec)
	case "activate":
		if _, ok := r.versions[rc.Version]; !ok {
			rec.SkippedRecords++
			return
		}
		if _, err := r.activateLocked(rc.Version); err != nil {
			rec.SkippedRecords++
		}
	default:
		rec.SkippedRecords++
	}
}

// applyAdmit reconstructs one admitted version. The model document is
// re-validated: the checksum proves the bytes are what was written, the
// validation proves what was written is a servable model.
func (r *Registry) applyAdmit(rc *record, rec *Recovery) {
	if rc.Version == "" || len(rc.Model) == 0 {
		rec.SkippedRecords++
		return
	}
	if _, dup := r.versions[rc.Version]; dup {
		rec.SkippedRecords++ // idempotent replay after interrupted compaction
		return
	}
	var cm models.ClusterModel
	if err := json.Unmarshal(rc.Model, &cm); err != nil {
		rec.SkippedRecords++
		return
	}
	if err := cm.Validate(); err != nil {
		rec.SkippedRecords++
		return
	}
	r.seq++
	e := &Entry{Version: rc.Version, Meta: rc.Meta, Model: &cm, CreatedAt: rc.CreatedAt, seq: r.seq}
	r.versions[rc.Version] = e
	versionsGauge.Set(float64(len(r.versions)))
	if r.active.Load() == nil {
		r.active.Store(e)
	}
}

// journalAdmitLocked appends an admission record; caller holds r.mu.
// In-memory registries no-op.
func (r *Registry) journalAdmitLocked(e *Entry) error {
	if r.persist == nil {
		return nil
	}
	model, err := json.Marshal(e.Model)
	if err != nil {
		return fmt.Errorf("registry: marshaling %s for journal: %w", e.Version, err)
	}
	return r.appendLocked(record{
		Op: "admit", Version: e.Version, Meta: e.Meta,
		CreatedAt: e.CreatedAt, Seq: e.seq, Model: model,
	})
}

// journalActivateLocked appends an activation record; caller holds r.mu.
func (r *Registry) journalActivateLocked(version string) error {
	if r.persist == nil {
		return nil
	}
	return r.appendLocked(record{Op: "activate", Version: version})
}

// appendLocked journals one record and compacts when the journal crosses
// the size bound.
func (r *Registry) appendLocked(rc record) error {
	b, err := json.Marshal(rc)
	if err != nil {
		return fmt.Errorf("registry: marshaling journal record: %w", err)
	}
	if err := r.persist.j.Append(b); err != nil {
		return err
	}
	r.persist.records++
	if r.persist.j.Size() > r.persist.compactBytes {
		return r.compactLocked()
	}
	return nil
}

// compactLocked rewrites the full state as an atomic snapshot and resets
// the journal. Ordering is what makes a crash anywhere safe: the snapshot
// lands (atomically) while the journal still holds everything, so a crash
// before the reset merely replays duplicates, which applyAdmit skips.
func (r *Registry) compactLocked() error {
	data, err := r.snapshotLocked()
	if err != nil {
		return err
	}
	if err := store.WriteFileAtomic(filepath.Join(r.persist.dir, snapshotName), data, 0o644); err != nil {
		return err
	}
	r.persist.compactions++
	if err := r.persist.j.Reset(); err != nil {
		return err
	}
	r.persist.records = 0
	return nil
}

// snapshotLocked marshals the full registry state — the compaction file
// and the replication bootstrap document are the same bytes. Caller holds
// r.mu.
func (r *Registry) snapshotLocked() ([]byte, error) {
	entries := make([]*Entry, 0, len(r.versions))
	for _, e := range r.versions {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	snap := snapshotFile{Previous: r.previous}
	if e := r.active.Load(); e != nil {
		snap.Active = e.Version
	}
	for _, e := range entries {
		model, err := json.Marshal(e.Model)
		if err != nil {
			return nil, fmt.Errorf("registry: marshaling %s for snapshot: %w", e.Version, err)
		}
		snap.Admits = append(snap.Admits, record{
			Op: "admit", Version: e.Version, Meta: e.Meta,
			CreatedAt: e.CreatedAt, Seq: e.seq, Model: model,
		})
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return nil, fmt.Errorf("registry: marshaling snapshot: %w", err)
	}
	return data, nil
}

// Compactions returns how many snapshot compactions have run (tests and
// the recovered event).
func (r *Registry) Compactions() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.persist == nil {
		return 0
	}
	return r.persist.compactions
}

// JournalSize returns the current journal size in bytes, -1 for
// in-memory registries.
func (r *Registry) JournalSize() int64 {
	r.mu.Lock()
	p := r.persist
	r.mu.Unlock()
	if p == nil {
		return -1
	}
	return p.j.Size()
}
