package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/overload"
	"repro/internal/registry"
	"repro/internal/serve"
	"repro/internal/trace"
)

// OverloadSchema identifies the overload benchmark document
// (BENCH_overload.json); bump on incompatible change.
const OverloadSchema = "chaos-bench-overload/v1"

// Overload-cell serving shape. PredictStall pins the predict path at
// overloadStall per batch, so engine capacity is exactly
// overloadShards x overloadBatchMax / overloadStall samples/s on any
// hardware — which is what lets committed goodput numbers mean the same
// thing across machines.
const (
	overloadShards   = 1
	overloadBatchMax = 4
	overloadStall    = 5 * time.Millisecond
	overloadDeadline = 100 * time.Millisecond
)

// overloadCapacity is the pinned engine drain rate in samples/s.
func overloadCapacity() int {
	return int(float64(overloadShards*overloadBatchMax) / overloadStall.Seconds())
}

// OverloadDoc is the overload benchmark document: per-priority goodput
// and tail latency at fixed multiples of pinned engine capacity.
type OverloadDoc struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	Seed      int64  `json:"seed"`
	// CapacityPerSec is the pinned engine drain rate every load multiple
	// is relative to.
	CapacityPerSec int     `json:"capacity_per_sec"`
	DeadlineMS     float64 `json:"deadline_ms"`
	// Weights is the interactive,batch,background traffic mix.
	Weights [overload.NumPriorities]int `json:"weights"`
	Seconds int                         `json:"seconds_per_cell"`
	// ReproVerified is set after the smallest cell is run twice and both
	// runs produced identical offered-workload digests.
	ReproVerified bool           `json:"repro_verified"`
	Cells         []OverloadCell `json:"cells"`
}

// OverloadCell is one load-multiple measurement.
type OverloadCell struct {
	// LoadX is the offered load as a multiple of engine capacity.
	LoadX      int        `json:"load_x"`
	OfferedPS  int        `json:"offered_per_sec"`
	Snapshots  int        `json:"snapshots"`
	WallMS     float64    `json:"wall_ms"`
	Shed       int        `json:"shed"`
	Late       int        `json:"late"`
	Failed     int        `json:"failed"`
	Tiers      []TierCell `json:"tiers"`
	Inversions uint64     `json:"inversion_ticks"`
	// Digest is the sha256 over the offered workload (seed, load shape,
	// and the exact per-tier request split); the same seed and cell must
	// reproduce it bit for bit.
	Digest string `json:"digest"`
}

// TierCell is one priority tier's slice of a cell.
type TierCell struct {
	Priority  string  `json:"priority"`
	Sent      int     `json:"sent"`
	OK        int     `json:"ok"`
	Shed      int     `json:"shed"`
	Late      int     `json:"late"`
	GoodputPS float64 `json:"goodput_per_sec"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
}

// overloadWeights is the fixed interactive,batch,background mix.
var overloadWeights = [overload.NumPriorities]int{1, 3, 4}

// runOverloadCell boots a fresh overload-protected engine and drives it
// at loadX times pinned capacity for roughly `seconds` of offered load.
func runOverloadCell(reg *registry.Registry, names []string, traces []*trace.Trace, seed int64, loadX, seconds int) (OverloadCell, error) {
	srv, err := serve.New(reg, serve.Config{
		Shards: overloadShards, QueueDepth: 256,
		BatchWindow: 500 * time.Microsecond, BatchMax: overloadBatchMax,
		Deadline:     overloadDeadline,
		PredictStall: overloadStall,
		Names:        names,
		Overload: &overload.Config{
			Limiter: overload.LimiterConfig{
				Min: 8, Tolerance: 3,
				TierFrac: [overload.NumPriorities]float64{1, 0.25, 0.1},
			},
		},
	})
	if err != nil {
		return OverloadCell{}, err
	}
	defer srv.Close()
	httpSrv, err := serve.Serve("127.0.0.1:0", srv)
	if err != nil {
		return OverloadCell{}, err
	}
	defer httpSrv.Close()

	offered := overloadCapacity() * loadX
	snapshots := offered * seconds
	start := time.Now()
	stats, err := serve.RunLoadGen(serve.LoadGenConfig{
		TargetURL: "http://" + httpSrv.Addr(),
		Traces:    traces,
		Snapshots: snapshots, Rate: float64(offered), Clients: 256, Batch: 1,
		Seed:            seed,
		PriorityWeights: overloadWeights,
	})
	if err != nil {
		return OverloadCell{}, err
	}
	wall := time.Since(start)

	cell := OverloadCell{
		LoadX: loadX, OfferedPS: offered, Snapshots: stats.Snapshots,
		WallMS: math.Round(wall.Seconds()*1e4) / 10,
		Shed:   stats.Shed, Late: stats.Late, Failed: stats.Failed,
		Inversions: srv.Overload().InversionTicks(),
	}
	for p := 0; p < overload.NumPriorities; p++ {
		ts := stats.Tiers[p]
		tc := TierCell{
			Priority: overload.Priority(p).String(),
			Sent:     ts.Sent, OK: ts.OK, Shed: ts.Shed, Late: ts.Late,
			P50Ms: roundMs(ts.P50), P99Ms: roundMs(ts.P99),
		}
		if s := wall.Seconds(); s > 0 {
			tc.GoodputPS = round1(float64(ts.OK) / s)
		}
		cell.Tiers = append(cell.Tiers, tc)
	}

	// The offered workload is a pure function of (seed, cell shape): the
	// digest covers the replayed power series and the exact per-tier
	// request split, so a rerun must reproduce it bit for bit.
	d := newDigest()
	for _, tr := range traces {
		d.WriteFloats(tr.Power)
	}
	split := make([]float64, 0, overload.NumPriorities+3)
	split = append(split, float64(seed), float64(loadX), float64(snapshots))
	for p := 0; p < overload.NumPriorities; p++ {
		split = append(split, float64(stats.Tiers[p].Sent))
	}
	d.WriteFloats(split)
	cell.Digest = d.Hex()
	return cell, nil
}

func runOverloadBench(w io.Writer, out string, seed int64, loads []int, seconds int) error {
	if seconds < 1 {
		return fmt.Errorf("-overload-seconds must be >= 1")
	}
	digest := newDigest()
	traces, err := simulate("Core2", 3, seed, []string{"Prime", "Sort"}, digest)
	if err != nil {
		return err
	}
	cm, err := fitModel(traces)
	if err != nil {
		return err
	}
	reg := registry.New()
	if err := reg.Add("v1", cm, registry.Meta{Description: "bench", Source: "sim"}); err != nil {
		return err
	}

	doc := &OverloadDoc{
		Schema: OverloadSchema, GoVersion: runtime.Version(), NumCPU: runtime.NumCPU(),
		Seed: seed, CapacityPerSec: overloadCapacity(),
		DeadlineMS: overloadDeadline.Seconds() * 1e3,
		Weights:    overloadWeights, Seconds: seconds,
	}
	for _, x := range loads {
		cell, err := runOverloadCell(reg, traces[0].Names, traces, seed, x, seconds)
		if err != nil {
			return err
		}
		doc.Cells = append(doc.Cells, cell)
		ti := cell.Tiers[overload.Interactive]
		fmt.Fprintf(w, "load=%dx offered=%d/s  interactive %4d/%-4d ok (%.0f/s, p99 %.1fms)  shed=%d late=%d\n",
			x, cell.OfferedPS, ti.OK, ti.Sent, ti.GoodputPS, ti.P99Ms, cell.Shed, cell.Late)
	}

	// Reproducibility: the smallest cell rerun must offer the identical
	// workload — same surge pacing, same per-tier split, same digest.
	rerun, err := runOverloadCell(reg, traces[0].Names, traces, seed, loads[0], seconds)
	if err != nil {
		return err
	}
	if rerun.Digest != doc.Cells[0].Digest {
		return fmt.Errorf("load %dx not reproducible: digest %s then %s",
			loads[0], doc.Cells[0].Digest, rerun.Digest)
	}
	doc.ReproVerified = true

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s (%d cells, repro verified)\n", out, len(doc.Cells))
	return nil
}

// checkOverloadDoc validates an overload benchmark document. Beyond
// shape, it enforces the protection contract the subsystem exists for:
// at the heaviest load the interactive tier must survive at a strictly
// higher rate than background, and no cell may record a priority
// inversion or a transport failure.
func checkOverloadDoc(path string, data []byte, w io.Writer) error {
	var doc OverloadDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if doc.Schema != OverloadSchema {
		return fmt.Errorf("%s: schema %q, want %q", path, doc.Schema, OverloadSchema)
	}
	if !doc.ReproVerified {
		return fmt.Errorf("%s: repro_verified is false", path)
	}
	if len(doc.Cells) < 2 {
		return fmt.Errorf("%s: %d cells, want at least 2 load multiples", path, len(doc.Cells))
	}
	if doc.CapacityPerSec <= 0 {
		return fmt.Errorf("%s: capacity_per_sec %d", path, doc.CapacityPerSec)
	}
	for i, c := range doc.Cells {
		if i > 0 && c.LoadX <= doc.Cells[i-1].LoadX {
			return fmt.Errorf("%s: cells not ordered by load multiple", path)
		}
		if len(c.Tiers) != overload.NumPriorities {
			return fmt.Errorf("%s: cell %dx has %d tiers, want %d", path, c.LoadX, len(c.Tiers), overload.NumPriorities)
		}
		if len(c.Digest) != 64 {
			return fmt.Errorf("%s: cell %dx missing digest", path, c.LoadX)
		}
		if c.Failed > 0 {
			return fmt.Errorf("%s: cell %dx recorded %d failed snapshots", path, c.LoadX, c.Failed)
		}
		if c.Inversions != 0 {
			return fmt.Errorf("%s: cell %dx recorded %d priority-inversion ticks", path, c.LoadX, c.Inversions)
		}
		for _, tr := range c.Tiers {
			if tr.Sent <= 0 {
				return fmt.Errorf("%s: cell %dx tier %s sent nothing", path, c.LoadX, tr.Priority)
			}
			if tr.OK > 0 && tr.P99Ms < tr.P50Ms {
				return fmt.Errorf("%s: cell %dx tier %s p99 < p50", path, c.LoadX, tr.Priority)
			}
		}
	}
	top := doc.Cells[len(doc.Cells)-1]
	if top.LoadX < 5 {
		return fmt.Errorf("%s: heaviest cell is %dx, want at least 5x capacity", path, top.LoadX)
	}
	if top.Shed == 0 {
		return fmt.Errorf("%s: %dx load shed nothing — the limiter did not engage", path, top.LoadX)
	}
	inter, back := top.Tiers[overload.Interactive], top.Tiers[overload.Background]
	interRate := float64(inter.OK) / float64(inter.Sent)
	backRate := float64(back.OK) / float64(back.Sent)
	if interRate <= backRate {
		return fmt.Errorf("%s: at %dx load interactive survival %.2f <= background %.2f — no priority protection",
			path, top.LoadX, interRate, backRate)
	}
	fmt.Fprintf(w, "%s: ok — %d load multiples up to %dx, interactive survives %.0f%% vs background %.0f%% at the top\n",
		path, len(doc.Cells), top.LoadX, interRate*100, backRate*100)
	return nil
}
