package attribution

import (
	"math"
	"testing"

	"repro/internal/counters"
)

func TestWeightsNormalize(t *testing.T) {
	w := Weights{CPU: 2, IO: 1, Memory: 1, Network: 0}.Normalize()
	if math.Abs(w.CPU-0.5) > 1e-12 || math.Abs(w.IO-0.25) > 1e-12 {
		t.Errorf("normalized = %+v", w)
	}
	z := Weights{}.Normalize()
	if z.CPU != 1 {
		t.Errorf("zero weights should default to CPU: %+v", z)
	}
}

func TestWeightsFromFeatures(t *testing.T) {
	reg := counters.StandardRegistry()
	w, err := WeightsFromFeatures([]string{
		counters.CPUTotal, counters.CPUFreqCore0, // 2 CPU votes
		counters.DiskBytes,    // 1 IO vote
		counters.NetDatagrams, // 1 network vote
	}, reg)
	if err != nil {
		t.Fatal(err)
	}
	if w.CPU <= w.IO || w.CPU <= w.Network {
		t.Errorf("CPU should dominate: %+v", w)
	}
	if math.Abs(w.CPU+w.IO+w.Memory+w.Network-1) > 1e-12 {
		t.Errorf("weights not normalized: %+v", w)
	}
	if _, err := WeightsFromFeatures([]string{"bogus"}, reg); err == nil {
		t.Error("expected error for unknown feature")
	}
	if _, err := WeightsFromFeatures(nil, reg); err == nil {
		t.Error("expected error for empty features")
	}
}

func TestAttributeSplitsDynamicPower(t *testing.T) {
	procs := []ProcessActivity{
		{Name: "a", CPUPercent: 75, IOBytes: 0},
		{Name: "b", CPUPercent: 25, IOBytes: 0},
	}
	shares, osW, err := Attribute(50, 30, procs, Weights{CPU: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Dynamic = 20 W split 75/25.
	if math.Abs(shares[0].Watts-15) > 1e-9 || shares[0].Name != "a" {
		t.Errorf("share a = %+v", shares[0])
	}
	if math.Abs(shares[1].Watts-5) > 1e-9 {
		t.Errorf("share b = %+v", shares[1])
	}
	if math.Abs(osW) > 1e-9 {
		t.Errorf("os residual = %v, want 0 (all activity owned)", osW)
	}
}

func TestAttributeResidualToOS(t *testing.T) {
	// Processes own half the CPU and there is I/O nobody claims.
	procs := []ProcessActivity{{Name: "a", CPUPercent: 50}}
	_, osW, err := Attribute(40, 20, procs, Weights{CPU: 0.5, IO: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Process a owns all the *listed* CPU, so CPU dimension fully
	// attributed; IO dimension has zero activity so nothing attributed:
	// os gets the IO half = 10 W.
	if math.Abs(osW-10) > 1e-9 {
		t.Errorf("os residual = %v, want 10", osW)
	}
}

func TestAttributeEdgeCases(t *testing.T) {
	// Total below idle: dynamic clamps to zero.
	shares, osW, err := Attribute(18, 20, []ProcessActivity{{Name: "a", CPUPercent: 100}}, Weights{CPU: 1})
	if err != nil {
		t.Fatal(err)
	}
	if shares[0].Watts != 0 || osW != 0 {
		t.Errorf("below-idle attribution should be zero: %+v %v", shares, osW)
	}
	if _, _, err := Attribute(-1, 0, nil, Weights{CPU: 1}); err == nil {
		t.Error("expected error for negative power")
	}
	if _, _, err := Attribute(10, 5, []ProcessActivity{{Name: "x", CPUPercent: -1}}, Weights{CPU: 1}); err == nil {
		t.Error("expected error for negative activity")
	}
	// No processes at all: everything is OS.
	none, osW, err := Attribute(30, 20, nil, Weights{CPU: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 || math.Abs(osW-10) > 1e-9 {
		t.Errorf("no-process attribution: %v %v", none, osW)
	}
}

func TestAttributeSortsByWatts(t *testing.T) {
	procs := []ProcessActivity{
		{Name: "small", CPUPercent: 10},
		{Name: "big", CPUPercent: 90},
	}
	shares, _, err := Attribute(100, 50, procs, Weights{CPU: 1})
	if err != nil {
		t.Fatal(err)
	}
	if shares[0].Name != "big" {
		t.Errorf("shares not sorted: %+v", shares)
	}
}

func TestMeterAccumulatesEnergy(t *testing.T) {
	m := NewMeter(Weights{CPU: 1})
	procs := []ProcessActivity{
		{Name: "a", CPUPercent: 60},
		{Name: "b", CPUPercent: 40},
	}
	// 3600 seconds at 30 W total, 10 W idle -> 20 Wh dynamic.
	for i := 0; i < 3600; i++ {
		if err := m.Step(30, 10, procs); err != nil {
			t.Fatal(err)
		}
	}
	wh := m.EnergyWh()
	if len(wh) != 2 || wh[0].Name != "a" {
		t.Fatalf("EnergyWh = %+v", wh)
	}
	if math.Abs(wh[0].Watts-12) > 1e-9 || math.Abs(wh[1].Watts-8) > 1e-9 {
		t.Errorf("energies = %v, %v; want 12, 8 Wh", wh[0].Watts, wh[1].Watts)
	}
	osWh, idleWh := m.OverheadWh()
	if math.Abs(osWh) > 1e-9 {
		t.Errorf("osWh = %v", osWh)
	}
	if math.Abs(idleWh-10) > 1e-9 {
		t.Errorf("idleWh = %v, want 10", idleWh)
	}
	if m.Seconds() != 3600 {
		t.Errorf("Seconds = %d", m.Seconds())
	}
}
