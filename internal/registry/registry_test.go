package registry

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/models"
)

// mkCluster builds a one-platform cluster model around a hand-written
// linear model: watts = intercept + 1*a + 2*b.
func mkCluster(t *testing.T, platform string, intercept float64) *models.ClusterModel {
	t.Helper()
	mm := &models.MachineModel{
		Platform: platform,
		Spec:     models.FeatureSpec{Name: "test", Counters: []string{"a", "b"}},
		Model:    &models.Linear{Intercept: intercept, Coef: []float64{1, 2}},
	}
	cm, err := models.NewClusterModel(mm)
	if err != nil {
		t.Fatal(err)
	}
	return cm
}

func TestServeRegistryAddActivateRollback(t *testing.T) {
	r := New()
	if r.Active() != nil || r.ActiveVersion() != "" {
		t.Fatal("empty registry should have no active model")
	}
	if err := r.Add("v1", mkCluster(t, "p", 10), Meta{Description: "first"}); err != nil {
		t.Fatal(err)
	}
	if got := r.ActiveVersion(); got != "v1" {
		t.Fatalf("first Add should auto-activate; active = %q", got)
	}
	if err := r.Add("v1", mkCluster(t, "p", 11), Meta{}); err == nil {
		t.Fatal("duplicate version should be rejected")
	}
	if err := r.Add("v2", mkCluster(t, "p", 20), Meta{}); err != nil {
		t.Fatal(err)
	}
	if got := r.ActiveVersion(); got != "v1" {
		t.Fatalf("second Add must not steal the active slot; active = %q", got)
	}
	if err := r.Activate("nope"); err == nil {
		t.Fatal("activating unknown version should fail")
	}
	if err := r.Activate("v2"); err != nil {
		t.Fatal(err)
	}
	if got := r.ActiveVersion(); got != "v2" {
		t.Fatalf("active = %q, want v2", got)
	}
	// Re-activating the active version must not clobber the rollback
	// target.
	if err := r.Activate("v2"); err != nil {
		t.Fatal(err)
	}
	back, err := r.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if back != "v1" || r.ActiveVersion() != "v1" {
		t.Fatalf("rollback went to %q (active %q), want v1", back, r.ActiveVersion())
	}
}

func TestServeRegistryRollbackWithoutHistory(t *testing.T) {
	r := New()
	if _, err := r.Rollback(); err == nil {
		t.Fatal("rollback on empty registry should fail")
	}
	if err := r.Add("v1", mkCluster(t, "p", 10), Meta{}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Rollback(); err == nil {
		t.Fatal("rollback with no prior activation should fail")
	}
}

func TestServeRegistryValidationRejects(t *testing.T) {
	r := New()
	if err := r.Add("", mkCluster(t, "p", 1), Meta{}); err == nil {
		t.Error("empty version name should be rejected")
	}
	if err := r.Add("v1", &models.ClusterModel{}, Meta{}); err == nil {
		t.Error("empty cluster model should be rejected")
	}
	// Spec width disagrees with the fitted model.
	bad := &models.MachineModel{
		Platform: "p",
		Spec:     models.FeatureSpec{Name: "test", Counters: []string{"a"}},
		Model:    &models.Linear{Intercept: 1, Coef: []float64{1, 2}},
	}
	if err := r.Add("v1", &models.ClusterModel{ByPlatform: map[string]*models.MachineModel{"p": bad}}, Meta{}); err == nil {
		t.Error("spec/model width mismatch should be rejected")
	}
	// Keyed under the wrong platform.
	mm := &models.MachineModel{
		Platform: "p",
		Spec:     models.FeatureSpec{Name: "test", Counters: []string{"a", "b"}},
		Model:    &models.Linear{Intercept: 1, Coef: []float64{1, 2}},
	}
	if err := r.Add("v1", &models.ClusterModel{ByPlatform: map[string]*models.MachineModel{"q": mm}}, Meta{}); err == nil {
		t.Error("platform key mismatch should be rejected")
	}
	if r.Len() != 0 || r.Active() != nil {
		t.Errorf("rejected adds must not leave state behind: len=%d active=%v", r.Len(), r.Active())
	}
}

func TestServeRegistryAddJSONAndList(t *testing.T) {
	r := New()
	cm := mkCluster(t, "p", 10)
	data, err := json.Marshal(cm)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AddJSON("v1", data, Meta{Description: "from json", Source: "test"}); err != nil {
		t.Fatal(err)
	}
	if err := r.AddJSON("v2", []byte(`{"truncated`), Meta{}); err == nil {
		t.Fatal("corrupt JSON should be rejected")
	}
	if err := r.Add("v2", mkCluster(t, "p", 20), Meta{}); err != nil {
		t.Fatal(err)
	}
	infos := r.List()
	if len(infos) != 2 {
		t.Fatalf("List returned %d versions, want 2", len(infos))
	}
	if infos[0].Version != "v1" || infos[1].Version != "v2" {
		t.Errorf("List order = %s, %s; want admission order v1, v2", infos[0].Version, infos[1].Version)
	}
	if !infos[0].Active || infos[1].Active {
		t.Errorf("active flags wrong: %+v", infos)
	}
	if infos[0].Description != "from json" || infos[0].Source != "test" {
		t.Errorf("meta not preserved: %+v", infos[0])
	}
	if len(infos[0].Platforms) != 1 || infos[0].Platforms[0] != "p" {
		t.Errorf("platforms = %v, want [p]", infos[0].Platforms)
	}
	if len(infos[0].Models) != 1 || infos[0].Models[0].Technique != models.TechLinear || infos[0].Models[0].Inputs != 2 {
		t.Errorf("model info = %+v", infos[0].Models)
	}
	// Entries round-trip through Get.
	e, ok := r.Get("v2")
	if !ok || e.Version != "v2" {
		t.Fatalf("Get(v2) = %v, %v", e, ok)
	}
	if w := e.Model.ByPlatform["p"].Model.Predict([]float64{3, 4}); w != 31 {
		t.Errorf("v2 predict = %g, want 31", w)
	}
}

// TestLifecycleRegistryConcurrentStress hammers the registry from four
// directions at once — admitters, activators, rollbackers, and listers —
// under the race detector, locking in the atomic-pointer invariants the
// lifecycle promotion path leans on: a reader always sees a complete,
// admitted entry (never nil mid-swap, never a torn version), List stays
// admission-ordered, and entries are immutable once admitted.
func TestLifecycleRegistryConcurrentStress(t *testing.T) {
	r := New()
	if err := r.Add("seed", mkCluster(t, "p", 1), Meta{}); err != nil {
		t.Fatal(err)
	}

	const (
		adders    = 4
		perAdder  = 50
		activator = 4
		rounds    = 200
	)
	var wg sync.WaitGroup

	// Admitters: each owns a disjoint version namespace, so every Add must
	// succeed exactly once.
	for a := 0; a < adders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < perAdder; i++ {
				v := fmt.Sprintf("w%d-%d", a, i)
				if err := r.Add(v, mkCluster(t, "p", float64(a*perAdder+i)), Meta{Source: "stress"}); err != nil {
					t.Errorf("Add(%s): %v", v, err)
					return
				}
			}
		}(a)
	}
	// Activators ping-pong activation across whatever versions exist.
	for a := 0; a < activator; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				v := fmt.Sprintf("w%d-%d", a%adders, i%perAdder)
				// Racing an admitter: unknown-version errors are expected,
				// activation of an admitted version is not allowed to fail.
				if _, ok := r.Get(v); ok {
					if err := r.Activate(v); err != nil {
						t.Errorf("Activate(%s): %v", v, err)
						return
					}
				}
			}
		}(a)
	}
	// Rollbackers: any outcome is legal except a panic or a torn active
	// pointer; "no previous version" errors race legitimately.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			_, _ = r.Rollback() //nolint:errcheck // racing history is legal
		}
	}()
	// Listers/readers: the active entry must always be complete.
	for l := 0; l < 2; l++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if e := r.Active(); e != nil {
					if e.Version == "" || e.Model == nil {
						t.Error("torn active entry observed")
						return
					}
					if w := e.Model.ByPlatform["p"].Model.Predict([]float64{0, 0}); w < 0 {
						t.Errorf("active model predicts %g, want >= 0", w)
						return
					}
				}
				infos := r.List()
				for j := 1; j < len(infos); j++ {
					if infos[j-1].CreatedAt.After(infos[j].CreatedAt) {
						t.Error("List out of admission order")
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	if got, want := r.Len(), 1+adders*perAdder; got != want {
		t.Errorf("Len = %d, want %d", got, want)
	}
	infos := r.List()
	active := 0
	for _, in := range infos {
		if in.Active {
			active++
		}
	}
	if active != 1 {
		t.Errorf("%d entries flagged active, want exactly 1", active)
	}
	if av := r.ActiveVersion(); av == "" {
		t.Error("no active version after the storm")
	}
}

func TestServeRegistryLoadFileMissing(t *testing.T) {
	r := New()
	err := r.LoadFile("v1", "/nonexistent/model.json")
	if err == nil {
		t.Fatal("missing file should be an error")
	}
	if !strings.Contains(err.Error(), "v1") {
		t.Errorf("error should name the version: %v", err)
	}
}
