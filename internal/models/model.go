// Package models implements the paper's four power-modeling techniques
// (Eqs. 1–4) behind a single interface — linear, piecewise linear (MARS),
// quadratic (MARS with degree-2 interactions), and switching (a separate
// linear model per CPU-frequency state) — plus the Eq. 5 composition of
// per-machine models into cluster power models, and JSON serialization for
// deploying fitted models.
package models

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mars"
	"repro/internal/mathx"
	"repro/internal/regress"
)

// Technique enumerates the four modeling techniques.
type Technique string

const (
	TechLinear    Technique = "linear"
	TechPiecewise Technique = "piecewise"
	TechQuadratic Technique = "quadratic"
	TechSwitching Technique = "switching"
)

// Techniques returns all techniques in the paper's presentation order.
func Techniques() []Technique {
	return []Technique{TechLinear, TechPiecewise, TechQuadratic, TechSwitching}
}

// Short returns the single-letter code the paper's Table IV uses.
func (t Technique) Short() string {
	switch t {
	case TechLinear:
		return "L"
	case TechPiecewise:
		return "P"
	case TechQuadratic:
		return "Q"
	case TechSwitching:
		return "S"
	}
	return "?"
}

// Model is a fitted machine-level power model: watts as a function of one
// row of feature values.
type Model interface {
	Predict(row []float64) float64
	Technique() Technique
	// NumInputs is the expected row width.
	NumInputs() int
}

// FitOptions tunes model fitting.
type FitOptions struct {
	// FreqCol is the index of the CPU-frequency feature, required by the
	// switching technique (-1 when absent).
	FreqCol int
	// MaxTerms bounds MARS basis growth (default 15 piecewise / 17 quadratic).
	MaxTerms int
	// MaxKnots bounds MARS knot candidates per feature (default 10).
	MaxKnots int
}

// Fit trains a model of the given technique on rows of x against watts y.
func Fit(tech Technique, x *mathx.Matrix, y []float64, opts FitOptions) (Model, error) {
	if x.Rows == 0 || x.Cols == 0 {
		return nil, fmt.Errorf("models: empty design matrix (%dx%d)", x.Rows, x.Cols)
	}
	switch tech {
	case TechLinear:
		return fitLinear(x, y)
	case TechPiecewise:
		maxTerms := opts.MaxTerms
		if maxTerms == 0 {
			maxTerms = 15
		}
		return fitMARS(x, y, TechPiecewise,
			mars.Options{MaxDegree: 1, MaxTerms: maxTerms, MaxKnots: opts.MaxKnots})
	case TechQuadratic:
		if x.Cols < 2 {
			return nil, fmt.Errorf("models: quadratic technique requires multiple features, got %d", x.Cols)
		}
		maxTerms := opts.MaxTerms
		if maxTerms == 0 {
			maxTerms = 17
		}
		return fitMARS(x, y, TechQuadratic,
			mars.Options{MaxDegree: 2, SelfInteraction: true, MaxTerms: maxTerms, MaxKnots: opts.MaxKnots})
	case TechSwitching:
		if x.Cols < 2 {
			return nil, fmt.Errorf("models: switching technique requires multiple features, got %d", x.Cols)
		}
		if opts.FreqCol < 0 || opts.FreqCol >= x.Cols {
			return nil, fmt.Errorf("models: switching technique needs a frequency column, got %d", opts.FreqCol)
		}
		return fitSwitching(x, y, opts.FreqCol)
	default:
		return nil, fmt.Errorf("models: unknown technique %q", tech)
	}
}

// --- Linear (Eq. 1) ------------------------------------------------------

// Linear is the baseline linear regression power model.
type Linear struct {
	Intercept float64   `json:"intercept"`
	Coef      []float64 `json:"coef"`
}

func fitLinear(x *mathx.Matrix, y []float64) (*Linear, error) {
	fit, err := regress.OLS(x, y)
	if err != nil {
		return nil, err
	}
	return &Linear{Intercept: fit.Intercept, Coef: fit.Coef}, nil
}

// Predict implements Model.
func (l *Linear) Predict(row []float64) float64 {
	y := l.Intercept
	for j, c := range l.Coef {
		y += c * row[j]
	}
	return y
}

// Technique implements Model.
func (l *Linear) Technique() Technique { return TechLinear }

// NumInputs implements Model.
func (l *Linear) NumInputs() int { return len(l.Coef) }

// --- Piecewise / Quadratic (Eqs. 2–3, via MARS) --------------------------

type marsModel struct {
	m    *mars.Model
	tech Technique
	// means/scales standardize inputs before the basis expansion; raw
	// counters span ten orders of magnitude, which would wreck knot
	// search numerics. Nil means the model was fitted on raw inputs.
	means, scales []float64
	// lo/hi clamp inputs to the training range at prediction time.
	// Hinge products extrapolate quadratically, so unseen operating
	// points (new workloads, bigger clusters) would otherwise produce
	// wild predictions; clamping freezes the estimate at the nearest
	// trained operating point instead.
	lo, hi []float64
}

// fitMARS standardizes the inputs, fits the basis expansion, and wraps the
// result with the scaler and the training-range clamps.
func fitMARS(x *mathx.Matrix, y []float64, tech Technique, opts mars.Options) (*marsModel, error) {
	n, p := x.Rows, x.Cols
	z := mathx.NewMatrix(n, p)
	means := make([]float64, p)
	scales := make([]float64, p)
	lo := make([]float64, p)
	hi := make([]float64, p)
	for j := 0; j < p; j++ {
		raw := x.Col(j)
		lo[j], hi[j] = mathx.MinMax(raw)
		col, mean, scale := mathx.Standardize(raw)
		means[j], scales[j] = mean, scale
		for i := 0; i < n; i++ {
			z.Set(i, j, col[i])
		}
	}
	m, err := mars.Fit(z, y, opts)
	if err != nil {
		return nil, err
	}
	return &marsModel{m: m, tech: tech, means: means, scales: scales, lo: lo, hi: hi}, nil
}

func (m *marsModel) Predict(row []float64) float64 {
	if m.means == nil {
		return m.m.Predict(row)
	}
	z := make([]float64, len(row))
	for j := range z {
		v := row[j]
		if m.lo != nil {
			v = mathx.Clamp(v, m.lo[j], m.hi[j])
		}
		z[j] = (v - m.means[j]) / m.scales[j]
	}
	return m.m.Predict(z)
}
func (m *marsModel) Technique() Technique { return m.tech }
func (m *marsModel) NumInputs() int       { return m.m.NumInputs }

// MARS exposes the underlying basis expansion (for inspection/serialization).
func (m *marsModel) MARS() *mars.Model { return m.m }

// --- Switching (Eq. 4) -----------------------------------------------------

// SwitchBin is one frequency state's linear model, covering frequency
// values in [Lo, Hi). Within a bin the frequency column (and any other
// near-constant column) carries no usable variation — a per-bin OLS would
// assign it an enormous, meaningless coefficient — so each bin records
// which columns it actually uses and the training range it clamps inputs
// to.
type SwitchBin struct {
	Lo    float64   `json:"lo"`
	Hi    float64   `json:"hi"`
	Cols  []int     `json:"cols"`
	ColLo []float64 `json:"col_lo"`
	ColHi []float64 `json:"col_hi"`
	M     *Linear   `json:"m"`
}

// predict evaluates the bin model on a full input row.
func (b *SwitchBin) predict(row []float64) float64 {
	in := make([]float64, len(b.Cols))
	for k, j := range b.Cols {
		in[k] = mathx.Clamp(row[j], b.ColLo[k], b.ColHi[k])
	}
	return b.M.Predict(in)
}

// Switching selects a per-P-state linear model with the CPU frequency as
// the indicator function I(f) of Eq. 4.
type Switching struct {
	FreqCol  int         `json:"freq_col"`
	Bins     []SwitchBin `json:"bins"`
	Fallback *Linear     `json:"fallback"`
	Inputs   int         `json:"inputs"`
}

// fitSwitching clusters the observed frequency values into states (gaps
// larger than 5% of the frequency span start a new state), fits a linear
// model per state with enough data, and a global fallback for the rest.
func fitSwitching(x *mathx.Matrix, y []float64, freqCol int) (*Switching, error) {
	fallback, err := fitLinear(x, y)
	if err != nil {
		return nil, err
	}
	sw := &Switching{FreqCol: freqCol, Fallback: fallback, Inputs: x.Cols}

	freqs := x.Col(freqCol)
	sorted := append([]float64(nil), freqs...)
	sort.Float64s(sorted)
	span := sorted[len(sorted)-1] - sorted[0]
	if span <= 0 {
		// Single frequency state: the fallback is the whole model.
		return sw, nil
	}
	gap := span * 0.05
	// Identify state boundaries.
	var edges []float64 // bin upper bounds (exclusive), last = +inf
	for i := 1; i < len(sorted); i++ {
		if sorted[i]-sorted[i-1] > gap {
			edges = append(edges, (sorted[i]+sorted[i-1])/2)
		}
	}
	edges = append(edges, math.MaxFloat64)
	lo := -math.MaxFloat64
	minRows := x.Cols*3 + 10
	for _, hi := range edges {
		var rows []int
		for i, f := range freqs {
			if f >= lo && f < hi {
				rows = append(rows, i)
			}
		}
		if len(rows) >= minRows {
			sub := x.SelectRows(rows)
			suby := make([]float64, len(rows))
			for k, i := range rows {
				suby[k] = y[i]
			}
			if bin := fitSwitchBin(sub, suby, lo, hi); bin != nil {
				sw.Bins = append(sw.Bins, *bin)
			}
		}
		lo = hi
	}
	return sw, nil
}

// fitSwitchBin fits one frequency state's linear model, keeping only
// columns with meaningful within-bin variation (relative to their scale)
// and recording the clamping range. Returns nil when no usable fit exists.
func fitSwitchBin(sub *mathx.Matrix, suby []float64, lo, hi float64) *SwitchBin {
	var cols []int
	var colLo, colHi []float64
	for j := 0; j < sub.Cols; j++ {
		col := sub.Col(j)
		min, max := mathx.MinMax(col)
		spread := max - min
		scale := math.Max(math.Abs(min), math.Abs(max))
		// Keep the column only if it moves by more than a sliver of its
		// own magnitude (the frequency column inside its bin fails this).
		if spread > 1e-6 && (scale == 0 || spread/scale > 1e-3) {
			cols = append(cols, j)
			colLo = append(colLo, min)
			colHi = append(colHi, max)
		}
	}
	if len(cols) == 0 {
		// All-constant bin: intercept-only model at the mean power.
		return &SwitchBin{Lo: lo, Hi: hi, M: &Linear{Intercept: mathx.Mean(suby)}}
	}
	m, err := fitLinear(sub.SelectCols(cols), suby)
	if err != nil {
		return nil
	}
	return &SwitchBin{Lo: lo, Hi: hi, Cols: cols, ColLo: colLo, ColHi: colHi, M: m}
}

// Predict implements Model.
//
// A frequency that lands inside a bin uses that bin's clamped linear
// model. A frequency in a gap between kept bins — an actuated P-state the
// training window never visited, or a bin dropped for too few rows —
// falls back to the NEAREST bin by edge distance rather than the global
// unclamped Linear: the global fit extrapolates along the raw frequency
// axis and can leave the physical power range entirely (negative or wild
// watts) exactly where a capping controller asks what-if questions. The
// global fallback remains only for models with no bins at all (single
// P-state platforms) and non-finite frequencies.
func (s *Switching) Predict(row []float64) float64 {
	f := row[s.FreqCol]
	nearest, nearestDist := -1, math.MaxFloat64
	for i := range s.Bins {
		b := &s.Bins[i]
		if f >= b.Lo && f < b.Hi {
			return b.predict(row)
		}
		var d float64
		switch {
		case f < b.Lo:
			d = b.Lo - f
		default: // f >= b.Hi
			d = f - b.Hi
		}
		if d < nearestDist {
			nearest, nearestDist = i, d
		}
	}
	if nearest >= 0 && !math.IsNaN(f) {
		return s.Bins[nearest].predict(row)
	}
	return s.Fallback.Predict(row)
}

// Technique implements Model.
func (s *Switching) Technique() Technique { return TechSwitching }

// NumInputs implements Model.
func (s *Switching) NumInputs() int { return s.Inputs }
