package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/trace"
)

// LoadGenConfig drives a replay of simulated cluster telemetry against
// the serving API, so throughput and tail latency are measurable in-repo.
type LoadGenConfig struct {
	// TargetURL is the API base, e.g. "http://127.0.0.1:8080".
	TargetURL string
	// Traces is one aligned trace per machine; snapshot t replays second
	// t mod Len of every trace.
	Traces []*trace.Trace
	// Snapshots is how many cluster seconds to replay.
	Snapshots int
	// Rate is snapshots per second; 0 replays as fast as the API absorbs
	// them (the throughput-measurement mode).
	Rate float64
	// Clients is the number of concurrent HTTP senders.
	Clients int
	// Batch is snapshots per HTTP request: 1 uses /v1/estimate, >1 packs
	// /v1/estimate/batch.
	Batch int
	// IncludeMeter attaches metered watts so the server's drift monitor
	// sees residuals.
	IncludeMeter bool
	// SwapEvery activates the next version of SwapVersions every N
	// snapshots (0 disables) — the hot-swap-under-load exercise.
	SwapEvery    int
	SwapVersions []string
	// Scenario, when set, routes every machine's row fetch through a
	// resilient faults.Collector — the client-side feeder — so collector
	// drops and corruption thin the replayed snapshots realistically.
	// Scenario.Load surge windows additionally scale Rate inside their
	// windows (deterministic overload storms).
	Scenario *faults.Scenario
	Seed     int64
	// PriorityWeights biases the priority class drawn per request group:
	// {interactive, batch, background}. All zero sends everything
	// interactive. Draws are deterministic in Seed and the group index.
	PriorityWeights [overload.NumPriorities]int
}

// LoadStats is the outcome of one load-generation run.
type LoadStats struct {
	Snapshots       int // snapshots attempted
	Samples         int // machine-samples sent
	OK              int // snapshots answered 200
	Shed            int // snapshots answered 429
	Late            int // snapshots answered 504
	Failed          int // transport errors or unexpected statuses
	SkippedRows     int // machine rows lost to the client-side fault feeder
	Swaps           int // hot-swaps performed mid-load
	Duration        time.Duration
	SnapshotsPerSec float64
	SamplesPerSec   float64
	LatencyP50      time.Duration // per HTTP request, client-measured
	LatencyP99      time.Duration
	// ServerP50/P99 are sourced from the same obs histogram the server
	// exports at /metrics (chaos_serve_request_seconds, delta over this
	// run), so the loadgen summary and a Prometheus scrape can never
	// disagree. Only populated when the target runs in this process —
	// the chaos-serve -loadgen arrangement. Each value is a histogram
	// bucket upper bound (ExpBuckets(1e-6, 4, 12): bounds 4x apart, top
	// finite bound ~4.2s), i.e. a conservative estimate quantized up to
	// one bucket above the true quantile; when the quantile lands in the
	// +Inf overflow bucket it is clamped to the top finite bound and
	// ServerTailSaturated is set.
	ServerP50 time.Duration
	ServerP99 time.Duration
	// ServerTailSaturated means ServerP99 fell in the histogram's +Inf
	// bucket: the true p99 exceeds the top finite bound and the reported
	// value is a floor, not an estimate.
	ServerTailSaturated bool
	ServerRequests      uint64  // histogram count delta over the run
	SumAbsErr           float64 // |estimate - metered| summed over OK snapshots with meter
	MeterOK             int     // OK snapshots that carried metered power
	// ByStatus splits every snapshot outcome by its final HTTP status
	// (200/429/503/504/...), so "Failed" is never a lumped mystery; the
	// legacy OK/Shed/Late/Failed counters are kept as rollups.
	ByStatus map[int]int
	// TransportErrors counts snapshots lost before any status arrived
	// (connection resets, timeouts). Also included in Failed.
	TransportErrors int
	// Tiers breaks the run down per priority class.
	Tiers [overload.NumPriorities]TierStats

	mu        sync.Mutex
	latencies []time.Duration
}

// TierStats is the per-priority-class slice of a load-generation run.
type TierStats struct {
	Sent   int // snapshots attempted at this tier
	OK     int
	Shed   int // 429
	Late   int // 504
	Failed int // transport errors or other statuses
	P50    time.Duration
	P99    time.Duration

	latencies []time.Duration
}

// account records one final status for n snapshots of tier p, updating
// the rollups, the per-status split, and the per-tier split together.
// Caller holds s.mu. Status 0 means a transport error.
func (s *LoadStats) account(p overload.Priority, status, n int) {
	if s.ByStatus == nil {
		s.ByStatus = make(map[int]int)
	}
	s.ByStatus[status] += n
	t := &s.Tiers[p]
	switch status {
	case http.StatusOK:
		s.OK += n
		t.OK += n
	case http.StatusTooManyRequests:
		s.Shed += n
		t.Shed += n
	case http.StatusGatewayTimeout:
		s.Late += n
		t.Late += n
	case 0:
		s.TransportErrors += n
		s.Failed += n
		t.Failed += n
	default:
		s.Failed += n
		t.Failed += n
	}
}

// MeanAbsErr returns the mean absolute cluster error over metered OK
// snapshots (0 when none).
func (s *LoadStats) MeanAbsErr() float64 {
	if s.MeterOK == 0 {
		return 0
	}
	return s.SumAbsErr / float64(s.MeterOK)
}

// snapshotPayload is one prepared cluster second.
type snapshotPayload struct {
	req      EstimateRequest
	actual   float64
	hasMeter bool
}

// RunLoadGen replays the traces against the API and reports stats.
func RunLoadGen(cfg LoadGenConfig) (*LoadStats, error) {
	if cfg.TargetURL == "" {
		return nil, fmt.Errorf("serve: loadgen needs a target URL")
	}
	if len(cfg.Traces) == 0 {
		return nil, fmt.Errorf("serve: loadgen needs traces to replay")
	}
	n := cfg.Traces[0].Len()
	for _, t := range cfg.Traces {
		if t.Len() != n {
			return nil, fmt.Errorf("serve: loadgen traces must be aligned (%d vs %d)", t.Len(), n)
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("serve: loadgen traces are empty")
	}
	if cfg.Snapshots <= 0 {
		cfg.Snapshots = n
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 1
	}
	if cfg.SwapEvery > 0 && len(cfg.SwapVersions) < 2 {
		return nil, fmt.Errorf("serve: -swap-every needs at least two versions")
	}

	// Client-side fault feeders: one resilient collector per machine, fed
	// in snapshot order by the single producer so stuck-row faults replay
	// deterministically.
	var inj *faults.Injector
	cols := make([]*faults.Collector, len(cfg.Traces))
	if cfg.Scenario != nil {
		var err error
		if inj, err = faults.NewInjector(cfg.Scenario, cfg.Seed); err != nil {
			return nil, err
		}
		for i, t := range cfg.Traces {
			if cols[i], err = faults.NewCollector(t.MachineID, inj, faults.DefaultRetry(), faults.DefaultBreaker()); err != nil {
				return nil, err
			}
		}
	}

	stats := &LoadStats{}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.Clients * 2,
		MaxIdleConnsPerHost: cfg.Clients * 2,
	}}

	// Snapshot the server-side latency histogram so the delta over this
	// run yields the server's own view of p50/p99 (valid when the target
	// is in-process, which is how chaos-serve -loadgen runs).
	endpoint := "estimate_batch"
	if cfg.Batch == 1 {
		endpoint = "estimate"
	}
	serverHist := RequestSeconds(endpoint)
	histBefore := serverHist.State()

	// Producer: builds snapshots in order (fault injection needs ordered
	// seconds), throttled to Rate, grouped Batch per send. Pacing runs on
	// virtual time so Scenario.Load surge windows scale the instantaneous
	// rate as a pure function of config: snapshot i is due at vt(i), where
	// each interval is 1/(Rate × multiplier at the current virtual second).
	// A sender that falls behind wall clock does not stretch the schedule.
	work := make(chan []snapshotPayload, cfg.Clients*2)
	var producerErr error
	go func() {
		defer close(work)
		paceStart := time.Now()
		vt := 0.0 // virtual seconds since start
		mixPriorities := false
		for _, w := range cfg.PriorityWeights {
			if w > 0 {
				mixPriorities = true
			}
		}
		group := make([]snapshotPayload, 0, cfg.Batch)
		groupIdx := 0
		swapIdx := 0
		for i := 0; i < cfg.Snapshots; i++ {
			if cfg.Rate > 0 {
				rate := cfg.Rate
				if inj != nil {
					rate *= inj.LoadMultiplier(int(vt))
				}
				vt += 1 / rate
				time.Sleep(time.Until(paceStart.Add(time.Duration(vt * float64(time.Second)))))
			}
			// Hot-swap mid-load: rotate the active version through the
			// API while the clients' requests are still in flight.
			if cfg.SwapEvery > 0 && i > 0 && i%cfg.SwapEvery == 0 {
				swapIdx++
				version := cfg.SwapVersions[swapIdx%len(cfg.SwapVersions)]
				if err := postActivate(client, cfg.TargetURL, version); err != nil {
					producerErr = err
					return
				}
				stats.mu.Lock()
				stats.Swaps++
				stats.mu.Unlock()
			}
			t := i % n
			snap, skipped, err := buildSnapshot(cfg, cols, i, t)
			if err != nil {
				producerErr = err
				return
			}
			if skipped > 0 {
				stats.mu.Lock()
				stats.SkippedRows += skipped
				stats.mu.Unlock()
			}
			if len(snap.req.Samples) == 0 {
				continue // every machine's feeder failed this second
			}
			// One deterministic priority draw per group; every snapshot in
			// the group shares it so batch requests stay single-class.
			if mixPriorities {
				if len(group) == 0 {
					snap.req.Priority = drawPriority(cfg.PriorityWeights, cfg.Seed, groupIdx).String()
					groupIdx++
				} else {
					snap.req.Priority = group[0].req.Priority
				}
			}
			group = append(group, snap)
			if len(group) == cfg.Batch {
				work <- group
				group = make([]snapshotPayload, 0, cfg.Batch)
			}
		}
		if len(group) > 0 {
			work <- group
		}
	}()

	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for group := range work {
				sendGroup(client, cfg, group, stats)
			}
		}()
	}
	wg.Wait()
	stats.Duration = time.Since(start)
	if producerErr != nil {
		return nil, producerErr
	}
	if stats.Duration > 0 {
		stats.SnapshotsPerSec = float64(stats.OK+stats.Shed+stats.Late) / stats.Duration.Seconds()
		stats.SamplesPerSec = float64(stats.Samples) / stats.Duration.Seconds()
	}
	stats.finishLatency()
	delta := serverHist.State().Sub(histBefore)
	stats.ServerRequests = delta.Count
	if delta.Count > 0 {
		stats.ServerP50, _ = quantileDuration(delta, 0.5)
		stats.ServerP99, stats.ServerTailSaturated = quantileDuration(delta, 0.99)
	}
	return stats, nil
}

// quantileDuration converts a histogram quantile (seconds) to a
// duration. A quantile in the +Inf overflow bucket has no finite bound;
// it is clamped to the top finite bound and reported as saturated so
// callers can flag the value as a floor on the true latency.
func quantileDuration(s obs.HistState, q float64) (time.Duration, bool) {
	v := s.Quantile(q)
	if math.IsInf(v, 1) {
		if len(s.Bounds) == 0 {
			return 0, true
		}
		return time.Duration(s.Bounds[len(s.Bounds)-1] * float64(time.Second)), true
	}
	return time.Duration(v * float64(time.Second)), false
}

// buildSnapshot assembles cluster second t (replay index i) into a wire
// request, routing rows through the fault feeders when enabled.
func buildSnapshot(cfg LoadGenConfig, cols []*faults.Collector, i, t int) (snapshotPayload, int, error) {
	snap := snapshotPayload{hasMeter: cfg.IncludeMeter}
	skipped := 0
	for k, tr := range cfg.Traces {
		row := tr.X.Row(t)
		if cols[k] != nil {
			res, err := cols[k].Collect(i, func() ([]float64, error) {
				return append([]float64(nil), tr.X.Row(t)...), nil
			})
			if err != nil {
				return snap, skipped, err
			}
			if !res.OK {
				skipped++
				continue
			}
			row = res.Row
		}
		sj := SampleJSON{MachineID: tr.MachineID, Platform: tr.Platform, Counters: row}
		if cfg.IncludeMeter {
			w := tr.Power[t]
			sj.MeteredWatts = &w
		}
		snap.req.Samples = append(snap.req.Samples, sj)
		snap.actual += tr.Power[t]
	}
	return snap, skipped, nil
}

// sendGroup sends one group as either a single-snapshot request or one
// batch request, and accounts the outcomes.
func sendGroup(client *http.Client, cfg LoadGenConfig, group []snapshotPayload, stats *LoadStats) {
	samples := 0
	for _, s := range group {
		samples += len(s.req.Samples)
	}
	var status int
	var results []EstimateResponse
	var rtt time.Duration
	var err error
	if cfg.Batch == 1 && len(group) == 1 {
		status, results, rtt, err = postOne(client, cfg.TargetURL+"/v1/estimate", group[0].req)
	} else {
		breq := BatchRequest{Requests: make([]EstimateRequest, len(group))}
		for i, s := range group {
			breq.Requests[i] = s.req
		}
		status, results, rtt, err = postBatch(client, cfg.TargetURL+"/v1/estimate/batch", breq)
	}

	prio := overload.ParsePriority(group[0].req.Priority)
	stats.mu.Lock()
	defer stats.mu.Unlock()
	stats.Snapshots += len(group)
	stats.Samples += samples
	stats.latencies = append(stats.latencies, rtt)
	tier := &stats.Tiers[prio]
	tier.Sent += len(group)
	tier.latencies = append(tier.latencies, rtt)
	if err != nil {
		stats.account(prio, 0, len(group))
		return
	}
	if status != http.StatusOK && len(results) == 0 {
		// Whole-request failure (e.g. single endpoint 429/504).
		stats.account(prio, status, len(group))
		return
	}
	for i, r := range results {
		stats.account(prio, r.Status, 1)
		if r.Status == http.StatusOK && i < len(group) && group[i].hasMeter {
			stats.MeterOK++
			d := r.ClusterWatts - group[i].actual
			if d < 0 {
				d = -d
			}
			stats.SumAbsErr += d
		}
	}
}

// drawPriority picks a priority class from the weight vector,
// deterministically in (seed, group): the mix a run replays is a pure
// function of its config.
func drawPriority(weights [overload.NumPriorities]int, seed int64, group int) overload.Priority {
	total := 0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return overload.Interactive
	}
	r := rand.New(rand.NewSource(mathx.DeriveSeed(seed, fmt.Sprintf("loadgen-prio:%d", group))))
	x := r.Intn(total)
	for p, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return overload.Priority(p)
		}
		x -= w
	}
	return overload.Interactive
}

// postOne posts a single snapshot; the response body carries the status
// too, so single and batch accounting share a shape.
func postOne(client *http.Client, url string, req EstimateRequest) (int, []EstimateResponse, time.Duration, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil, 0, err
	}
	start := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	rtt := time.Since(start)
	if err != nil {
		return 0, nil, rtt, err
	}
	defer resp.Body.Close()
	var er EstimateResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		return resp.StatusCode, nil, rtt, err
	}
	if er.Status == 0 {
		er.Status = resp.StatusCode
	}
	return resp.StatusCode, []EstimateResponse{er}, rtt, nil
}

func postBatch(client *http.Client, url string, req BatchRequest) (int, []EstimateResponse, time.Duration, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil, 0, err
	}
	start := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	rtt := time.Since(start)
	if err != nil {
		return 0, nil, rtt, err
	}
	defer resp.Body.Close()
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return resp.StatusCode, nil, rtt, err
	}
	return resp.StatusCode, br.Results, rtt, nil
}

func postActivate(client *http.Client, base, version string) error {
	body, _ := json.Marshal(ActivateRequest{Version: version})
	resp, err := client.Post(base+"/v1/models/activate", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: activate %s: status %d", version, resp.StatusCode)
	}
	return nil
}

// finishLatency computes request-latency percentiles from the recorded
// round trips, overall and per priority tier.
func (s *LoadStats) finishLatency() {
	s.LatencyP50, s.LatencyP99 = latencyQuantiles(s.latencies)
	for i := range s.Tiers {
		t := &s.Tiers[i]
		t.P50, t.P99 = latencyQuantiles(t.latencies)
	}
}

func latencyQuantiles(ds []time.Duration) (p50, p99 time.Duration) {
	if len(ds) == 0 {
		return 0, 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2], ds[(len(ds)*99)/100]
}
