package faults

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzScenario hardens the JSON scenario decoder the same way
// trace.FuzzReadCSV hardens the CSV parser: ParseScenario must return an
// error or a scenario, never panic; any scenario it accepts must pass
// Validate and survive a marshal/re-parse round trip (the decoder rejects
// unknown fields, so everything it accepts it can re-emit).
func FuzzScenario(f *testing.F) {
	// Seed corpus: a valid scenario exercising every field, then
	// progressively broken variants targeting each validation branch.
	f.Add(`{
		"name": "all-fields",
		"defaults": {"drop_prob": 0.1, "corrupt_prob": 0.05,
			"stuck_prob": 0.01, "stuck_seconds": 3,
			"latency_prob": 0.2, "latency_ms": 40},
		"machines": {"m1": {"drop_prob": 0.9}},
		"meter_dropouts": [{"start_s": 10, "end_s": 20}],
		"crashes": [{"machine": "m0", "at_s": 5, "downtime_s": 4}],
		"peers": {"n2": {"slow_prob": 0.2, "slow_ms": 250}},
		"load": [{"start_s": 2, "end_s": 8, "multiplier": 5}]
	}`)
	f.Add(`{}`)
	f.Add(``)
	f.Add(`null`)
	f.Add(`[]`)
	f.Add(`{"name": 42}`)
	f.Add(`{"no_such_field": true}`)
	f.Add(`{"defaults": {"drop_prob": 1.5}}`)
	f.Add(`{"defaults": {"drop_prob": -0.1}}`)
	f.Add(`{"defaults": {"stuck_prob": 0.5}}`)
	f.Add(`{"defaults": {"latency_prob": 0.5, "latency_ms": -1}}`)
	f.Add(`{"machines": {"": {}}}`)
	f.Add(`{"meter_dropouts": [{"start_s": 5, "end_s": 5}]}`)
	f.Add(`{"meter_dropouts": [{"start_s": -1, "end_s": 5}]}`)
	f.Add(`{"meter_dropouts": [{"start_s": 0, "end_s": 9}, {"start_s": 5, "end_s": 12}]}`)
	f.Add(`{"crashes": [{"machine": "", "at_s": 0, "downtime_s": 1}]}`)
	f.Add(`{"crashes": [{"machine": "m", "at_s": 0, "downtime_s": 0}]}`)
	f.Add(`{"crashes": [{"machine": "m", "at_s": 0, "downtime_s": 5}, {"machine": "m", "at_s": 3, "downtime_s": 5}]}`)
	f.Add(`{"name": "` + strings.Repeat("x", 1000) + `"}`)
	f.Add(strings.Repeat("{", 100))
	f.Add(`{"defaults": {"drop_prob": 1e999}}`)
	f.Add(`{"load": [{"start_s": 0, "end_s": 10, "multiplier": 0}]}`)
	f.Add(`{"load": [{"start_s": 0, "end_s": 10, "multiplier": -2}]}`)
	f.Add(`{"load": [{"start_s": 0, "end_s": 10, "multiplier": 1e999}]}`)
	f.Add(`{"load": [{"start_s": 5, "end_s": 5, "multiplier": 2}]}`)
	f.Add(`{"load": [{"start_s": 0, "end_s": 10, "multiplier": 2}, {"start_s": 5, "end_s": 15, "multiplier": 3}]}`)

	f.Fuzz(func(t *testing.T, data string) {
		s, err := ParseScenario(strings.NewReader(data))
		if err != nil {
			return
		}
		if s == nil {
			t.Fatal("nil scenario with nil error")
		}
		// ParseScenario validates before returning; accepted scenarios must
		// agree.
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted scenario fails Validate: %v", err)
		}
		// Round trip: everything accepted can be re-emitted and re-parsed
		// to an equally valid scenario.
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted scenario cannot be marshaled: %v", err)
		}
		back, err := ParseScenario(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("round trip failed: %v\njson: %s", err, out)
		}
		if back.Name != s.Name || len(back.Machines) != len(s.Machines) ||
			len(back.MeterDropouts) != len(s.MeterDropouts) || len(back.Crashes) != len(s.Crashes) ||
			len(back.Peers) != len(s.Peers) || len(back.Load) != len(s.Load) {
			t.Fatalf("round trip changed shape: %+v vs %+v", back, s)
		}
	})
}
