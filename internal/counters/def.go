// Package counters models the Windows-Perfmon-style OS performance counter
// namespace the paper samples at 1 Hz. It defines a registry of ~250
// candidate counters across the paper's seven categories (Table II), with
// the statistical structure the CHAOS feature-selection pipeline must cope
// with: counters that directly reflect hardware activity, highly correlated
// shadow counters, co-dependent aggregates (a = b + c) declared in counter
// definitions, lagged copies, constants, and pure-noise counters.
//
// The simulated machine exposes a small set of ground-truth base signals;
// an Expander turns those signals into the full counter vector each second.
package counters

import "fmt"

// Category mirrors the Perfmon counter object the paper draws features
// from (Table II's left column).
type Category string

// The seven categories used in the paper, plus System/PagingFile which the
// candidate superset also contains (the paper starts from ~250 counters in
// processor, memory, physical disk, process, job object, file system cache,
// and network categories).
const (
	CatProcessor     Category = "Processor"
	CatProcessorPerf Category = "Processor Performance"
	CatMemory        Category = "Memory"
	CatPhysicalDisk  Category = "Physical Disk"
	CatProcess       Category = "Process"
	CatJobObject     Category = "Job Object Details"
	CatFSCache       Category = "File System Cache"
	CatNetwork       Category = "Network"
	CatSystem        Category = "System"
	CatPagingFile    Category = "Paging File"
	CatOther         Category = "Other"
)

// Kind describes how a counter's value is produced from base signals or
// from other counters.
type Kind int

const (
	// KindSignal reads a base signal directly (with observation noise).
	KindSignal Kind = iota
	// KindScaled is an affine copy of another counter: Scale*src + Offset,
	// plus noise. Used to model the many near-duplicate counters Perfmon
	// exposes (per-core copies, unit conversions, cumulative variants).
	KindScaled
	// KindSum is the exact sum of two or more source counters — the
	// co-dependent counters (a = b + c) step 2 of Algorithm 1 removes by
	// definition.
	KindSum
	// KindLagged reports the source counter's previous-second value.
	KindLagged
	// KindNoise is an irrelevant counter following a bounded random walk.
	KindNoise
	// KindConstant never changes (capacity/configuration counters).
	KindConstant
)

// Def describes one counter.
type Def struct {
	Name     string
	Category Category
	Kind     Kind

	Signal  string  // KindSignal: base signal name
	Scale   float64 // KindScaled: multiplier (default 1)
	Offset  float64 // KindScaled/KindConstant: additive constant
	NoiseSD float64 // relative observation noise (fraction of value scale)
	Sources []int   // KindScaled/KindSum/KindLagged: indices of sources
}

// Signals is the per-second base signal vector produced by the machine
// simulator. Keys are stable signal names (see internal/sim).
type Signals map[string]float64

// Registry is an ordered set of counter definitions.
type Registry struct {
	Defs   []Def
	byName map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]int)}
}

// Add appends a definition and returns its index. It panics on duplicate
// names: the registry is built from static code, so a duplicate is a
// programming error.
func (r *Registry) Add(d Def) int {
	if _, dup := r.byName[d.Name]; dup {
		panic(fmt.Sprintf("counters: duplicate counter %q", d.Name))
	}
	if d.Kind == KindScaled && d.Scale == 0 {
		d.Scale = 1
	}
	idx := len(r.Defs)
	r.Defs = append(r.Defs, d)
	r.byName[d.Name] = idx
	return idx
}

// Index returns the index of the named counter and whether it exists.
func (r *Registry) Index(name string) (int, bool) {
	i, ok := r.byName[name]
	return i, ok
}

// MustIndex is Index for counters known to exist; it panics otherwise.
func (r *Registry) MustIndex(name string) int {
	i, ok := r.byName[name]
	if !ok {
		panic(fmt.Sprintf("counters: unknown counter %q", name))
	}
	return i
}

// Names returns the counter names in index order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.Defs))
	for i, d := range r.Defs {
		out[i] = d.Name
	}
	return out
}

// Len returns the number of counters.
func (r *Registry) Len() int { return len(r.Defs) }

// CoDependencies returns the (Sum, Parts) identities declared by KindSum
// counters, which Algorithm 1 step 2 consumes.
func (r *Registry) CoDependencies() []CoDependency {
	var out []CoDependency
	for i, d := range r.Defs {
		if d.Kind == KindSum {
			out = append(out, CoDependency{Sum: i, Parts: append([]int(nil), d.Sources...)})
		}
	}
	return out
}

// CoDependency mirrors regress.CoDependency without importing it, keeping
// this package dependency-free. Sum is the aggregate counter index; Parts
// are the component counter indices.
type CoDependency struct {
	Sum   int
	Parts []int
}

// Category returns the category of counter i.
func (r *Registry) Category(i int) Category { return r.Defs[i].Category }
