package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// EventSink writes machine-readable JSON events, one object per line.
// Every event carries a monotone sequence number, an RFC 3339 timestamp,
// and the event name; arbitrary flat fields ride along. Emits are
// serialized, so a sink is safe to share across goroutines.
//
// Example line:
//
//	{"event":"drift","residual_x":4.2,"seq":12,"t_s":840,"ts":"2026-08-05T10:00:00Z"}
type EventSink struct {
	mu  sync.Mutex
	w   io.Writer
	seq uint64
	now func() time.Time
	reg *Registry
}

// NewEventSink builds a sink writing to w and counting events in the
// default registry (chaos_events_total{event=...}).
func NewEventSink(w io.Writer) *EventSink {
	return &EventSink{w: w, now: time.Now, reg: defaultRegistry}
}

// NewEventSinkAt is NewEventSink with an explicit clock and registry, for
// deterministic tests. Either may be nil to take the default.
func NewEventSinkAt(w io.Writer, now func() time.Time, reg *Registry) *EventSink {
	s := NewEventSink(w)
	if now != nil {
		s.now = now
	}
	if reg != nil {
		s.reg = reg
	}
	return s
}

// reserved keys always present on an event; colliding field names get an
// underscore prefix rather than clobbering them.
var reservedKeys = map[string]bool{"seq": true, "ts": true, "event": true}

// Emit writes one event line. fields may be nil. Values must be
// JSON-marshalable; keys are emitted in sorted order (encoding/json sorts
// map keys), so output is stable for tests and log diffing.
func (s *EventSink) Emit(event string, fields map[string]any) error {
	if event == "" {
		return fmt.Errorf("obs: empty event name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	m := make(map[string]any, len(fields)+3)
	for k, v := range fields {
		if reservedKeys[k] {
			k = "_" + k
		}
		m[k] = v
	}
	m["seq"] = s.seq
	m["ts"] = s.now().UTC().Format(time.RFC3339Nano)
	m["event"] = event
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("obs: marshal event %q: %w", event, err)
	}
	data = append(data, '\n')
	if _, err := s.w.Write(data); err != nil {
		return fmt.Errorf("obs: write event %q: %w", event, err)
	}
	s.reg.Counter("chaos_events_total", Labels{"event": event}).Inc()
	return nil
}

// Seq returns the number of events emitted so far.
func (s *EventSink) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}
