package experiments

import (
	"testing"
)

func TestSuiteCachesDatasets(t *testing.T) {
	s := fastSuite(t)
	a, err := s.Dataset(s.Cfg.Platforms[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Dataset(s.Cfg.Platforms[0])
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Dataset not cached: two different pointers")
	}
	fa, err := s.Features(s.Cfg.Platforms[0])
	if err != nil {
		t.Fatal(err)
	}
	fb, err := s.Features(s.Cfg.Platforms[0])
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Error("Features not cached")
	}
	g1, err := s.Grid(s.Cfg.Platforms[0], s.Cfg.Workloads[0])
	if err != nil {
		t.Fatal(err)
	}
	g2, err := s.Grid(s.Cfg.Platforms[0], s.Cfg.Workloads[0])
	if err != nil {
		t.Fatal(err)
	}
	if &g1[0] != &g2[0] {
		t.Error("Grid not cached")
	}
}

func TestSeedDatasetsShares(t *testing.T) {
	s := fastSuite(t)
	ds, err := s.Dataset(s.Cfg.Platforms[0])
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewSuite(Fast())
	fresh.SeedDatasets(s.Datasets())
	got, err := fresh.Dataset(s.Cfg.Platforms[0])
	if err != nil {
		t.Fatal(err)
	}
	if got != ds {
		t.Error("SeedDatasets did not share the dataset pointer")
	}
}

func TestPickHelpers(t *testing.T) {
	s := NewSuite(Fast())
	if got := s.PickPlatform("Core2"); got != "Core2" {
		t.Errorf("PickPlatform(Core2) = %s", got)
	}
	if got := s.PickPlatform("Athlon"); got != s.Cfg.Platforms[len(s.Cfg.Platforms)-1] {
		t.Errorf("PickPlatform fallback = %s", got)
	}
	if got := s.PickWorkload(s.Cfg.Workloads[1]); got != s.Cfg.Workloads[1] {
		t.Errorf("PickWorkload = %s", got)
	}
	if got := s.PickWorkload("Nope"); got != s.Cfg.Workloads[0] {
		t.Errorf("PickWorkload fallback = %s", got)
	}
}

func TestUnknownDatasetWorkload(t *testing.T) {
	s := fastSuite(t)
	if _, err := s.Grid(s.Cfg.Platforms[0], "NotCollected"); err == nil {
		t.Error("expected error for uncollected workload")
	}
	fresh := NewSuite(Fast())
	if _, err := fresh.Dataset("PDP11"); err == nil {
		t.Error("expected error for unknown platform")
	}
}
