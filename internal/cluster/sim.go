package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Event kinds. Actuations sort before machine events at the same second,
// so a frequency cap installed "at t" constrains every machine step of
// second t — the same order a real control loop observes.
const (
	evActuation = iota
	evMachine
)

// event is one scheduled state change: a machine's burst/step event
// (kind evMachine, idx = machine index) or a queued control actuation
// (kind evActuation, idx = slot in the actuations slice). Each machine
// has at most one pending event and each actuation slot fires once, so
// (at, kind, idx) is unique and the heap order is total and
// deterministic.
type event struct {
	at   int64
	idx  int32
	kind uint8
}

func (e event) less(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	if e.kind != o.kind {
		return e.kind < o.kind
	}
	return e.idx < o.idx
}

// Evaluator maps a machine's step outcome to the watts recorded in the
// hierarchy. The default records the simulated power meter's reading
// (MeterWatts); drivers can substitute a model prediction to compose
// estimated rather than metered power.
type Evaluator func(m *MachineNode, served sim.Served, p sim.PowerSample) float64

// ClusterSimulator advances a Topology through simulated time
// event-drivenly: machines schedule their next state change (burst
// start, per-second step while active, burst end) on a shared clock, and
// nothing at all happens for idle machines. The exported primitives —
// HasPendingEvents, PeekNextEventTime, ProcessNextEvent — expose the
// loop one event at a time so tests can interleave invariant checks, and
// RunUntil drives them in bulk.
type ClusterSimulator struct {
	topo *Topology
	eval Evaluator

	heap  []event
	clock int64

	events int64 // processed events
	steps  int64 // machine-seconds actually simulated
	active int   // machines currently inside a burst

	// actuations holds queued control callbacks; an evActuation event's
	// idx addresses this slice, and slots are nil'd once fired.
	actuations []func(now int64)

	// servedCPU accumulates served CPU core-seconds across every machine
	// step — the throughput a capping run is judged against.
	servedCPU float64

	digest hash.Hash
	dbuf   [20]byte
}

// NewSimulator readies a built topology for simulation from t=0: every
// non-idle machine's first burst is scheduled, idle-profile machines are
// parked at their idle watts and never wake.
func NewSimulator(topo *Topology) *ClusterSimulator {
	cs := &ClusterSimulator{
		topo:   topo,
		digest: sha256.New(),
	}
	cs.eval = func(_ *MachineNode, _ sim.Served, p sim.PowerSample) float64 {
		return p.MeterWatts
	}
	for _, mn := range topo.Machines {
		cs.scheduleNextBurst(mn, 0)
	}
	return cs
}

// SetEvaluator replaces the leaf evaluator. Call before processing any
// events so the digest reflects one evaluator throughout.
func (cs *ClusterSimulator) SetEvaluator(ev Evaluator) { cs.eval = ev }

// Topology returns the simulated topology.
func (cs *ClusterSimulator) Topology() *Topology { return cs.topo }

// Clock returns the current simulated second.
func (cs *ClusterSimulator) Clock() int64 { return cs.clock }

// Events returns the number of processed events.
func (cs *ClusterSimulator) Events() int64 { return cs.events }

// Steps returns the number of machine-seconds actually simulated — the
// work a per-second lockstep loop would have multiplied by the fleet's
// idle fraction.
func (cs *ClusterSimulator) Steps() int64 { return cs.steps }

// ActiveMachines returns how many machines are currently inside a burst.
func (cs *ClusterSimulator) ActiveMachines() int { return cs.active }

// ServedCPU returns the cumulative served CPU core-seconds across every
// machine step so far. Throughput retention under a cap is this value
// relative to an uncapped twin run.
func (cs *ClusterSimulator) ServedCPU() float64 { return cs.servedCPU }

// Digest returns the hex SHA-256 over every (time, machine, wattsBits)
// update processed so far. Two runs of the same topology and duration
// must produce identical digests; the cluster benchmark asserts it.
func (cs *ClusterSimulator) Digest() string {
	return hex.EncodeToString(cs.digest.Sum(nil))
}

// HasPendingEvents reports whether any machine has a scheduled state
// change. A fleet of only idle-profile machines has none.
func (cs *ClusterSimulator) HasPendingEvents() bool { return len(cs.heap) > 0 }

// PeekNextEventTime returns the simulated second of the earliest pending
// event. It panics if no events are pending.
func (cs *ClusterSimulator) PeekNextEventTime() int64 {
	if len(cs.heap) == 0 {
		panic("cluster: PeekNextEventTime on empty event heap")
	}
	return cs.heap[0].at
}

// ProcessNextEvent pops and applies the earliest event: it advances the
// clock to the event's time, steps or parks the event's machine, dirties
// that machine's path to the root, and schedules the machine's next
// event. It reports false when no events remain.
func (cs *ClusterSimulator) ProcessNextEvent() bool {
	if len(cs.heap) == 0 {
		return false
	}
	ev := cs.pop()
	if ev.at > cs.clock {
		cs.clock = ev.at
	}
	cs.events++

	if ev.kind == evActuation {
		fn := cs.actuations[ev.idx]
		cs.actuations[ev.idx] = nil
		if fn != nil {
			fn(ev.at)
		}
		return true
	}

	mn := cs.topo.Machines[ev.idx]

	if !mn.active {
		// Wake: the pending burst begins now, with its per-second demand
		// computed once for the whole burst.
		mn.active = true
		mn.pendingWake = false
		mn.burstEnd = ev.at + mn.pendingDur
		mn.demand = mn.Profile.Demand(mn.Machine.Spec, mn.pendingLevel)
		cs.active++
	} else if ev.at >= mn.burstEnd {
		// Burst over: park the machine at idle watts and schedule its
		// next wake. No machine step happens at this boundary.
		mn.active = false
		cs.active--
		mn.trueWatts = mn.Machine.IdleWatts()
		cs.record(mn, ev.at, mn.Machine.IdleWatts())
		cs.scheduleNextBurst(mn, ev.at)
		return true
	}

	// Step one simulated second of the burst's demand.
	var (
		served sim.Served
		p      sim.PowerSample
	)
	if mn.capture {
		served, mn.lastSig, p = mn.Machine.Step(mn.demand)
	} else {
		served, p = mn.Machine.StepPower(mn.demand)
	}
	cs.steps++
	cs.servedCPU += served.CPU
	mn.trueWatts = p.TrueWatts
	cs.record(mn, ev.at, cs.eval(mn, served, p))
	cs.push(event{at: ev.at + 1, idx: ev.idx, kind: evMachine})
	return true
}

// RunUntil processes every event scheduled at or before end, then
// advances the clock to end. Idle stretches cost nothing: the clock
// jumps straight over them.
func (cs *ClusterSimulator) RunUntil(end int64) {
	for cs.HasPendingEvents() && cs.PeekNextEventTime() <= end {
		cs.ProcessNextEvent()
	}
	if end > cs.clock {
		cs.clock = end
	}
}

// checkIndex validates a caller-supplied machine index. Out-of-range
// indices used to panic deep inside the topology slice; they now count a
// metric and surface as an error the driver can handle.
func (cs *ClusterSimulator) checkIndex(idx int, op string) error {
	if idx < 0 || idx >= len(cs.topo.Machines) {
		obs.Default().Counter("chaos_cluster_bad_machine_index_total", obs.Labels{"op": op}).Inc()
		return fmt.Errorf("cluster: %s: machine index %d out of range [0, %d)", op, idx, len(cs.topo.Machines))
	}
	return nil
}

// SetCapture switches a machine to the full-signals step path so
// SampleSignals can export its counter state. Enable before the machine's
// first event.
func (cs *ClusterSimulator) SetCapture(idx int) error {
	if err := cs.checkIndex(idx, "SetCapture"); err != nil {
		return err
	}
	cs.topo.Machines[idx].capture = true
	return nil
}

// SampleSignals returns the machine's most recent OS counter signals and
// current watts. An idle machine has no recent step, so one out-of-band
// idle second is simulated for it (and recorded in the hierarchy, keeping
// the aggregate faithful to every step taken).
func (cs *ClusterSimulator) SampleSignals(idx int) (map[string]float64, float64, error) {
	if err := cs.checkIndex(idx, "SampleSignals"); err != nil {
		return nil, 0, err
	}
	mn := cs.topo.Machines[idx]
	if mn.active && mn.lastSig != nil {
		return mn.lastSig, mn.watts, nil
	}
	_, sig, p := mn.Machine.Step(sim.Demand{})
	mn.lastSig = sig
	mn.trueWatts = p.TrueWatts
	cs.record(mn, cs.clock, cs.eval(mn, sim.Served{}, p))
	return sig, mn.watts, nil
}

// Control-plane digest record kinds. Control records share the machine
// digest stream but set bit 31 of the index word (real machine indices
// never do), so a capped run's digest covers both what the fleet did and
// what the controller did to it.
const (
	CtlTick    = 1 // one controller tick: payload = sequence, value = sensed watts
	CtlFreqCap = 2 // payload = machine index, value = new cap index
	CtlMigrate = 3 // payload = source machine index, value = destination index
)

// RecordControl folds a control-plane action into the reproducibility
// digest: (kind, payload, value) with bit 31 set on the index word.
func (cs *ClusterSimulator) RecordControl(kind uint8, payload uint32, val float64) {
	tag := 1<<31 | uint32(kind&0x7)<<28 | payload&0x0fff_ffff
	binary.LittleEndian.PutUint64(cs.dbuf[0:8], uint64(cs.clock))
	binary.LittleEndian.PutUint32(cs.dbuf[8:12], tag)
	binary.LittleEndian.PutUint64(cs.dbuf[12:20], math.Float64bits(val))
	cs.digest.Write(cs.dbuf[:])
}

// ScheduleActuation queues fn to run at simulated second `at` (clamped to
// the current clock), ordered before every machine step of that second.
// The control loop lives on this: each tick senses, decides, actuates,
// and reschedules itself one interval later.
func (cs *ClusterSimulator) ScheduleActuation(at int64, fn func(now int64)) {
	if at < cs.clock {
		at = cs.clock
	}
	cs.actuations = append(cs.actuations, fn)
	cs.push(event{at: at, idx: int32(len(cs.actuations) - 1), kind: evActuation})
}

// SetMachineFreqCap clamps a machine's governor to P-state capIdx and
// folds the actuation into the digest. Cap = top P-state is the
// documented no-op: the governor behaves bit-identically to uncapped.
func (cs *ClusterSimulator) SetMachineFreqCap(idx, capIdx int) error {
	if err := cs.checkIndex(idx, "SetMachineFreqCap"); err != nil {
		return err
	}
	if err := cs.topo.Machines[idx].Machine.SetFreqCap(capIdx); err != nil {
		return err
	}
	cs.RecordControl(CtlFreqCap, uint32(idx), float64(capIdx))
	return nil
}

// MigrateProfile swaps the burst profiles of two machines — the sim's
// model of live-migrating a workload. Each machine keeps its private
// burst stream (determinism); the swap steers every burst scheduled
// after it. When the source is mid-burst and the destination is parked
// with no pending wake, the in-flight burst moves too: it ends on the
// source at the source's next event and its unserved remainder wakes on
// the destination one second later — power leaves the source subtree
// within a second instead of whenever the burst would have drained,
// which is what makes migration a usable actuator for a cap that sits
// near the idle floor. A machine left with no pending event gets its
// next burst scheduled from the new profile immediately.
func (cs *ClusterSimulator) MigrateProfile(from, to int) error {
	if err := cs.checkIndex(from, "MigrateProfile"); err != nil {
		return err
	}
	if err := cs.checkIndex(to, "MigrateProfile"); err != nil {
		return err
	}
	if from == to {
		return fmt.Errorf("cluster: MigrateProfile: source and destination are both machine %d", from)
	}
	a, b := cs.topo.Machines[from], cs.topo.Machines[to]
	a.Profile, b.Profile = b.Profile, a.Profile
	if a.active && !b.active && !b.pendingWake {
		if remaining := a.burstEnd - cs.clock; remaining > 0 {
			// Hand the burst's remainder to the destination. pendingLevel
			// still holds the in-flight burst's level; the destination's
			// demand is recomputed from its own spec at wake.
			b.pendingDur = remaining
			b.pendingLevel = a.pendingLevel
			b.pendingWake = true
			cs.push(event{at: cs.clock + 1, idx: int32(b.Index), kind: evMachine})
		}
		// The source's next event now takes the burst-end path.
		a.burstEnd = cs.clock
	}
	for _, mn := range []*MachineNode{a, b} {
		if !mn.active && !mn.pendingWake {
			cs.scheduleNextBurst(mn, cs.clock)
		}
	}
	cs.RecordControl(CtlMigrate, uint32(from), float64(to))
	return nil
}

// record writes a machine's new watts into the hierarchy: the leaf value,
// the dirty path to the root, and the reproducibility digest.
func (cs *ClusterSimulator) record(mn *MachineNode, at int64, watts float64) {
	mn.watts = watts
	mn.parent.markDirty()
	binary.LittleEndian.PutUint64(cs.dbuf[0:8], uint64(at))
	binary.LittleEndian.PutUint32(cs.dbuf[8:12], uint32(mn.Index))
	binary.LittleEndian.PutUint64(cs.dbuf[12:20], math.Float64bits(watts))
	cs.digest.Write(cs.dbuf[:])
}

func (cs *ClusterSimulator) scheduleNextBurst(mn *MachineNode, now int64) {
	start, dur, level, ok := mn.Profile.NextBurst(mn.rng, now)
	if !ok {
		return // idle profile: parked at idle watts forever
	}
	mn.pendingDur = dur
	mn.pendingLevel = level
	mn.pendingWake = true
	cs.push(event{at: start, idx: int32(mn.Index), kind: evMachine})
}

// push/pop implement a plain binary min-heap over the event slice;
// container/heap's interface would cost an allocation per operation.
func (cs *ClusterSimulator) push(e event) {
	cs.heap = append(cs.heap, e)
	i := len(cs.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !cs.heap[i].less(cs.heap[parent]) {
			break
		}
		cs.heap[i], cs.heap[parent] = cs.heap[parent], cs.heap[i]
		i = parent
	}
}

func (cs *ClusterSimulator) pop() event {
	top := cs.heap[0]
	n := len(cs.heap) - 1
	cs.heap[0] = cs.heap[n]
	cs.heap = cs.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && cs.heap[l].less(cs.heap[min]) {
			min = l
		}
		if r < n && cs.heap[r].less(cs.heap[min]) {
			min = r
		}
		if min == i {
			break
		}
		cs.heap[i], cs.heap[min] = cs.heap[min], cs.heap[i]
		i = min
	}
	return top
}
