package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/trace"
)

// Figure1Run summarizes one run's cluster power trace.
type Figure1Run struct {
	Workload        string
	Run             int
	Seconds         int
	MinW, MaxW, Avg float64
	EnergyWh        float64
	Series          []float64 // cluster power per second
}

// Figure1 reproduces the cluster power traces of the paper's Figure 1:
// every workload run on the mobile (Core2) cluster, with per-run dynamic
// ranges and ASCII sparklines. The paper's clusters swing roughly between
// 120 W and 220 W.
func (s *Suite) Figure1(w io.Writer, platform string) ([]Figure1Run, error) {
	if platform == "" {
		platform = "Core2"
	}
	ds, err := s.Dataset(platform)
	if err != nil {
		return nil, err
	}
	section(w, fmt.Sprintf("Figure 1: cluster power traces (%s, %d machines)", platform, s.Cfg.Machines))
	var out []Figure1Run
	for _, wl := range s.Cfg.Workloads {
		byRun := trace.ByRun(ds.ByWorkload[wl])
		for _, run := range trace.Runs(ds.ByWorkload[wl]) {
			series, err := clusterSeries(byRun[run])
			if err != nil {
				return nil, err
			}
			min, max := mathx.MinMax(series)
			r := Figure1Run{Workload: wl, Run: run, Seconds: len(series),
				MinW: min, MaxW: max, Avg: mathx.Mean(series),
				EnergyWh: metrics.EnergyWh(series), Series: series}
			out = append(out, r)
			fmt.Fprintf(w, "%-10s run %d  %4ds  [%6.1f, %6.1f] W  %5.1f Wh  %s\n",
				wl, run, r.Seconds, r.MinW, r.MaxW, r.EnergyWh, sparkline(series, 56))
		}
	}
	return out, nil
}

// clusterSeries sums aligned machine traces into the cluster power series.
func clusterSeries(ts []*trace.Trace) ([]float64, error) {
	if len(ts) == 0 {
		return nil, fmt.Errorf("experiments: empty run")
	}
	n := ts[0].Len()
	out := make([]float64, n)
	for _, t := range ts {
		if t.Len() != n {
			return nil, fmt.Errorf("experiments: misaligned traces")
		}
		for i := 0; i < n; i++ {
			out[i] += t.Power[i]
		}
	}
	return out, nil
}

// sparkline renders a series as a fixed-width ASCII intensity strip.
func sparkline(series []float64, width int) string {
	if len(series) == 0 || width <= 0 {
		return ""
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	min, max := mathx.MinMax(series)
	span := max - min
	if span == 0 {
		span = 1
	}
	var b strings.Builder
	for c := 0; c < width; c++ {
		lo := c * len(series) / width
		hi := (c + 1) * len(series) / width
		if hi <= lo {
			hi = lo + 1
		}
		v := mathx.Mean(series[lo:hi])
		g := int((v - min) / span * float64(len(glyphs)-1))
		if g < 0 {
			g = 0
		}
		if g > len(glyphs)-1 {
			g = len(glyphs) - 1
		}
		b.WriteRune(glyphs[g])
	}
	return b.String()
}

// Figure2 renders the feature-significance histogram with the selection
// threshold for one platform (paper Figure 2: the Opteron cluster).
func (s *Suite) Figure2(w io.Writer, platform string) (map[string]float64, float64, error) {
	if platform == "" {
		platform = "Opteron"
	}
	fr, err := s.Features(platform)
	if err != nil {
		return nil, 0, err
	}
	section(w, fmt.Sprintf("Figure 2: feature weighted-occurrence histogram (%s)", platform))
	type kv struct {
		name string
		w    float64
	}
	var hist []kv
	for f, wt := range fr.Histogram {
		hist = append(hist, kv{f, wt})
	}
	sort.Slice(hist, func(a, b int) bool {
		if hist[a].w != hist[b].w {
			return hist[a].w > hist[b].w
		}
		return hist[a].name < hist[b].name
	})
	fmt.Fprintf(w, "threshold = %.0f (raised from the initial value by cluster stepwise)\n", fr.Threshold)
	selected := map[string]bool{}
	for _, f := range fr.Features {
		selected[f] = true
	}
	shown := hist
	if len(shown) > 28 {
		shown = shown[:28]
	}
	for _, h := range shown {
		mark := " "
		if selected[h.name] {
			mark = "*"
		}
		fmt.Fprintf(w, "%s %-52s %5.1f %s\n", mark, truncate(h.name, 52), h.w,
			strings.Repeat("#", int(h.w)))
	}
	fmt.Fprintf(w, "(%d features with nonzero weight; '*' = in the final cluster set)\n", len(hist))
	return fr.Histogram, fr.Threshold, nil
}

// FigureGridRow is one bar of Figures 3/4: a technique+feature-set cell's
// fold-average cluster DRE.
type FigureGridRow struct {
	Technique models.Technique
	SpecLabel string
	DRE       float64
	Skipped   string
}

// FigureGrid renders the DRE-vs-model-complexity bar chart of Figures 3
// and 4 for the given platform and workload. Fig. 3 (PageRank) shows
// feature selection mattering most; Fig. 4 (Prime) shows modeling
// technique mattering most.
func (s *Suite) FigureGrid(w io.Writer, figure, platform, workload string) ([]FigureGridRow, error) {
	entries, err := s.Grid(platform, workload)
	if err != nil {
		return nil, err
	}
	section(w, fmt.Sprintf("%s: average cluster DRE by model and feature set (%s, %s)", figure, platform, workload))
	var rows []FigureGridRow
	for _, e := range entries {
		row := FigureGridRow{Technique: e.Tech, SpecLabel: e.Spec.Label(), Skipped: e.Skipped}
		if e.CV != nil {
			row.DRE = e.CV.Cluster.DRE
		}
		rows = append(rows, row)
		if e.Skipped != "" {
			fmt.Fprintf(w, "%-10s %-8s   (skipped: %s)\n", e.Tech, row.SpecLabel, e.Skipped)
			continue
		}
		fmt.Fprintf(w, "%-10s %-8s %6.1f%% %s\n", e.Tech, row.SpecLabel, row.DRE*100,
			strings.Repeat("#", int(row.DRE*200)))
	}
	return rows, nil
}

// Figure3 is the PageRank grid on the Opteron cluster.
func (s *Suite) Figure3(w io.Writer) ([]FigureGridRow, error) {
	return s.FigureGrid(w, "Figure 3", s.pickPlatform("Opteron"), s.pickWorkload("PageRank"))
}

// Figure4 is the Prime grid on the Opteron cluster.
func (s *Suite) Figure4(w io.Writer) ([]FigureGridRow, error) {
	return s.FigureGrid(w, "Figure 4", s.pickPlatform("Opteron"), s.pickWorkload("Prime"))
}

// PickPlatform returns preferred if configured, else the last configured
// platform (the most server-like in the canonical ordering).
func (s *Suite) PickPlatform(preferred string) string {
	if contains(s.Cfg.Platforms, preferred) {
		return preferred
	}
	return s.Cfg.Platforms[len(s.Cfg.Platforms)-1]
}

// PickWorkload returns preferred if configured, else the first configured
// workload.
func (s *Suite) PickWorkload(preferred string) string {
	if contains(s.Cfg.Workloads, preferred) {
		return preferred
	}
	return s.Cfg.Workloads[0]
}

func (s *Suite) pickPlatform(preferred string) string { return s.PickPlatform(preferred) }

func (s *Suite) pickWorkload(preferred string) string { return s.PickWorkload(preferred) }

// Figure5Result carries the worst-case trace comparison of paper Figure 5.
type Figure5Result struct {
	Platform, Workload string
	Model              core.Series // cluster quadratic model, general features
	Strawman           core.Series // scaled single-machine CPU-linear model
	ModelSummary       metrics.Summary
	StrawmanSummary    metrics.Summary
	// TopCoverage is the fraction of top-20%-of-range actual samples the
	// strawman under-predicts by more than 5% of the range; the paper's
	// point is that the linear strawman "does not predict the upper ~20%"
	// of the cluster power range.
	StrawmanTopMiss float64
	ModelTopMiss    float64
}

// Figure5 reproduces the worst-case full-system prediction comparison on
// the desktop (Athlon) cluster: the quadratic model with the general
// feature set tracks the whole dynamic range while the scaled CPU-linear
// single-machine strawman cannot reach the top of it.
func (s *Suite) Figure5(w io.Writer) (*Figure5Result, error) {
	// The paper's Fig. 5 is the desktop (Athlon) cluster; PageRank has
	// the most power variation and is the natural worst case.
	platform := s.pickPlatform("Athlon")
	workload := s.pickWorkload("PageRank")
	ds, err := s.Dataset(platform)
	if err != nil {
		return nil, err
	}
	gen, err := s.General()
	if err != nil {
		return nil, err
	}
	traces := ds.ByWorkload[workload]
	spec := core.GeneralSpec(gen)
	cfg := core.CVConfig{Tech: models.TechQuadratic, Spec: spec}

	// Find the worst fold of the quadratic/general model.
	cv, err := core.CrossValidate(traces, cfg)
	if err != nil {
		return nil, err
	}
	trainRun := cv.Folds[cv.WorstFold].TrainRun
	testRun := -1
	for _, r := range trace.Runs(traces) {
		if r != trainRun {
			testRun = r
			break
		}
	}
	model, err := core.PredictSeries(traces, cfg, trainRun, testRun)
	if err != nil {
		return nil, err
	}
	straw, err := core.StrawmanSeries(traces, trainRun, testRun, 2)
	if err != nil {
		return nil, err
	}
	res := &Figure5Result{Platform: platform, Workload: workload, Model: *model, Strawman: *straw}
	if res.ModelSummary, err = model.Summarize(ds.ClusterIdle); err != nil {
		return nil, err
	}
	if res.StrawmanSummary, err = straw.Summarize(ds.ClusterIdle); err != nil {
		return nil, err
	}
	res.ModelTopMiss = topMissFraction(model.Actual, model.Pred, ds.ClusterIdle)
	res.StrawmanTopMiss = topMissFraction(straw.Actual, straw.Pred, ds.ClusterIdle)

	section(w, fmt.Sprintf("Figure 5: worst-case cluster power prediction (%s, %s)", platform, workload))
	fmt.Fprintf(w, "actual   %s\n", sparkline(model.Actual, 64))
	fmt.Fprintf(w, "quad/gen %s  DRE %.1f%%\n", sparkline(model.Pred, 64), res.ModelSummary.DRE*100)
	fmt.Fprintf(w, "strawman %s  DRE %.1f%%\n", sparkline(straw.Pred, 64), res.StrawmanSummary.DRE*100)
	fmt.Fprintf(w, "top-of-range (upper 20%%) samples under-predicted by >5%% of range: model %.0f%%, strawman %.0f%%\n",
		res.ModelTopMiss*100, res.StrawmanTopMiss*100)
	return res, nil
}

// topMissFraction computes, over samples whose actual power lies in the
// top 20% of the dynamic range, the fraction the prediction misses low by
// more than 5% of the range.
func topMissFraction(actual, pred []float64, idle float64) float64 {
	_, pmax := mathx.MinMax(actual)
	rng := pmax - idle
	if rng <= 0 {
		return 0
	}
	cut := pmax - 0.2*rng
	var top, miss int
	for i := range actual {
		if actual[i] < cut {
			continue
		}
		top++
		if actual[i]-pred[i] > 0.05*rng {
			miss++
		}
	}
	if top == 0 {
		return 0
	}
	return float64(miss) / float64(top)
}
