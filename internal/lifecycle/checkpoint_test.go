package lifecycle

import (
	"testing"
	"time"

	"repro/internal/models"
	"repro/internal/registry"
	"repro/internal/serve"
)

// TestRecoveryCheckpointRoundTrip marshals a populated orchestrator and
// restores it into a fresh one: held-out window, retrain buffers,
// counters, and status must all survive the trip.
func TestRecoveryCheckpointRoundTrip(t *testing.T) {
	st := newStack(t, Config{}, serve.Config{Shards: 1})
	truth := func(a, b float64) float64 { return 10 + a + 2*b }
	for i := 0; i < 40; i++ {
		feedOne(t, st, i, truth)
	}
	data, err := st.orch.MarshalCheckpoint()
	if err != nil {
		t.Fatal(err)
	}

	restored, err := New(st.reg, Config{
		Names: testNames,
		Spec:  models.FeatureSpec{Name: "test", Counters: testNames},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if err := restored.RestoreCheckpoint(data); err != nil {
		t.Fatal(err)
	}
	was, now := st.orch.Status(), restored.Status()
	if now.State != "idle" || now.SnapshotsSinceRetrain != was.SnapshotsSinceRetrain ||
		now.HeldOutSnapshots != was.HeldOutSnapshots {
		t.Fatalf("restored status %+v, want to match %+v", now, was)
	}
	// The retrain buffers came back: both feeder machines hold their rows.
	for _, id := range []string{"f0", "f1"} {
		if got, want := restored.rt.Buffered(id), st.orch.rt.Buffered(id); got != want || got == 0 {
			t.Fatalf("machine %s restored %d buffered rows, want %d (nonzero)", id, got, want)
		}
	}
	// The restored held-out window scores identically to the original.
	cm := mkModel(t, 10, 1, 2)
	s1, err := ScoreWindow(cm, testNames, st.orch.window())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ScoreWindow(cm, testNames, restored.window())
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatalf("window score diverged across restore: %+v vs %+v", s1, s2)
	}

	// Restore after Start must be refused.
	late, err := New(st.reg, Config{
		Names: testNames,
		Spec:  models.FeatureSpec{Name: "test", Counters: testNames},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	if err := late.Start(nopEngine{}); err != nil {
		t.Fatal(err)
	}
	if err := late.RestoreCheckpoint(data); err == nil {
		t.Fatal("restore after Start accepted")
	}
	// Counter-order mismatch must be refused.
	other, err := New(st.reg, Config{
		Names: []string{"b", "a"},
		Spec:  models.FeatureSpec{Name: "test", Counters: []string{"b", "a"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if err := other.RestoreCheckpoint(data); err == nil {
		t.Fatal("counter-order mismatch accepted")
	}
}

// nopEngine satisfies Engine for tests that never reach shadowing.
type nopEngine struct{}

func (nopEngine) Drifted() bool            { return false }
func (nopEngine) ResetDrift()              {}
func (nopEngine) StartShadow(string) error { return nil }
func (nopEngine) StopShadow()              {}

// recordEngine records StartShadow calls.
type recordEngine struct {
	nopEngine
	started chan string
	fail    bool
}

func (e *recordEngine) StartShadow(v string) error {
	if e.fail {
		return errShadow
	}
	select {
	case e.started <- v:
	default:
	}
	return nil
}

var errShadow = &shadowErr{}

type shadowErr struct{}

func (*shadowErr) Error() string { return "no such challenger" }

// TestRecoveryShadowRearm checkpoints an orchestrator mid-shadow and
// restores it: Start must re-arm the live mirror against the restored
// challenger (the mirror died with the old process), and when the
// challenger cannot be mirrored the machine must fall back to idle
// rather than refuse to boot.
func TestRecoveryShadowRearm(t *testing.T) {
	reg := registry.New()
	if err := reg.Add("v1", mkModel(t, 10, 1, 2), registry.Meta{}); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Names:         testNames,
		Spec:          models.FeatureSpec{Name: "test", Counters: testNames},
		CheckInterval: time.Hour, // keep the loop quiet; only Start matters
	}
	o, err := New(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	o.mu.Lock()
	o.state = stateShadowing
	o.challenger = "auto-1"
	o.champion = "v1"
	o.live = accum{n: 7, champSSE: 3, challSSE: 2, minA: 1, maxA: 9}
	o.mu.Unlock()
	data, err := o.MarshalCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	o.Close()

	restored, err := New(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if err := restored.RestoreCheckpoint(data); err != nil {
		t.Fatal(err)
	}
	eng := &recordEngine{started: make(chan string, 1)}
	if err := restored.Start(eng); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-eng.started:
		if v != "auto-1" {
			t.Fatalf("re-armed shadow against %q, want auto-1", v)
		}
	default:
		t.Fatal("Start did not re-arm the shadow mirror")
	}
	if s := restored.Status(); s.State != "shadowing" || s.LiveShadowSnapshots != 7 {
		t.Fatalf("restored status %+v, want shadowing with 7 live snapshots", s)
	}

	// Same checkpoint, but the engine refuses the mirror: idle fallback.
	broken, err := New(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer broken.Close()
	if err := broken.RestoreCheckpoint(data); err != nil {
		t.Fatal(err)
	}
	if err := broken.Start(&recordEngine{fail: true}); err != nil {
		t.Fatal(err)
	}
	if s := broken.Status(); s.State != "idle" || s.LastError == "" {
		t.Fatalf("status %+v, want idle with the re-arm error recorded", s)
	}
}

// TestRecoveryMidProbationResume is the headline lifecycle crash test:
// promote a challenger, checkpoint while it is mid-probation, tear the
// whole stack down (the crash), rebuild over the same registry, restore —
// the orchestrator must resume probation (not skip it), and when the
// workload turns hostile the resumed probation must still roll back.
func TestRecoveryMidProbationResume(t *testing.T) {
	st := newStack(t, Config{
		MinTrainSnapshots:  40,
		ShadowSnapshots:    20,
		ProbationSnapshots: 60,
	}, serve.Config{
		Shards:       2,
		BaselineRMSE: 1,
	})
	distB := func(a, b float64) float64 { return 40 + 3*a + 0.5*b }
	distC := func(a, b float64) float64 { return 10 + a + 2*b } // v1's law

	i := 0
	driveUntil(t, st, &i, distB, 60*time.Second, "promotion",
		func(s Status) bool { return s.Promotions >= 1 && s.State == "probation" })
	promoted := st.reg.ActiveVersion()
	if promoted == "v1" {
		t.Fatal("expected a challenger to be active after promotion")
	}
	// Feed a little more good traffic so probation has accumulated
	// evidence worth preserving, then crash.
	for n := 0; n < 5; n++ {
		feedOne(t, st, i, distB)
		i++
	}
	data, err := st.orch.MarshalCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	st.orch.Close()
	st.srv.Close()

	// The restart: fresh orchestrator and server over the surviving
	// registry, state restored from the checkpoint.
	orch2, err := New(st.reg, Config{
		Names:              testNames,
		Spec:               models.FeatureSpec{Name: "test", Counters: testNames},
		MinTrainSnapshots:  40,
		ShadowSnapshots:    20,
		ProbationSnapshots: 60,
		CheckInterval:      2 * time.Millisecond,
		Cooldown:           time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := orch2.RestoreCheckpoint(data); err != nil {
		t.Fatal(err)
	}
	if s := orch2.Status(); s.State != "probation" {
		t.Fatalf("restored state %q, want probation (resume, not skip)", s.State)
	}
	srv2, err := serve.New(st.reg, serve.Config{
		Names:         testNames,
		Shards:        2,
		BaselineRMSE:  1,
		BatchWindow:   200 * time.Microsecond,
		Labeled:       orch2.Ingest,
		ShadowObserve: orch2.ObserveShadow,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := orch2.Start(srv2); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		orch2.Close()
		srv2.Close()
	})
	st2 := &stack{reg: st.reg, srv: srv2, orch: orch2}

	// The workload reverts to v1's law: the promoted model is now wrong,
	// and the RESUMED probation must catch it and roll back.
	final := driveUntil(t, st2, &i, distC, 60*time.Second, "rollback after restore",
		func(s Status) bool { return s.Rollbacks >= 1 })
	if active := st.reg.ActiveVersion(); active != "v1" {
		t.Errorf("active = %q after resumed-probation rollback, want v1", active)
	}
	if final.LastVerdict != "rolled_back" {
		t.Errorf("last verdict = %q, want rolled_back", final.LastVerdict)
	}
	// The pre-crash promotion is part of the restored history.
	if final.Promotions < 1 {
		t.Errorf("promotions = %d after restore, want the pre-crash promotion preserved", final.Promotions)
	}
}
