package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/sim"
	"repro/internal/trace"
)

// AblationMachineCount quantifies the abstract's scalability claim — the
// number of machines whose data must be pooled to reach a given error
// bound. For k = 1..Machines it trains the quadratic/cluster model on the
// first k machines of the training run and evaluates cluster DRE over all
// machines of the remaining runs.
func (s *Suite) AblationMachineCount(w io.Writer, platform, workload string) (map[int]float64, error) {
	ds, err := s.Dataset(platform)
	if err != nil {
		return nil, err
	}
	fr, err := s.Features(platform)
	if err != nil {
		return nil, err
	}
	traces := ds.ByWorkload[workload]
	spec := core.ClusterSpec(fr.Features)
	runs := trace.Runs(traces)
	byRun := trace.ByRun(traces)

	out := map[int]float64{}
	section(w, fmt.Sprintf("Ablation: machines sampled vs error bound (%s, %s)", platform, workload))
	for k := 1; k <= s.Cfg.Machines; k++ {
		var sums []metrics.Summary
		for _, trainRun := range runs {
			train := append([]*trace.Trace(nil), byRun[trainRun]...)
			sort.Slice(train, func(a, b int) bool { return train[a].MachineID < train[b].MachineID })
			if k < len(train) {
				train = train[:k]
			}
			var sub []*trace.Trace
			for _, t := range train {
				sub = append(sub, trace.Subsample(t, 2))
			}
			mm, err := models.FitMachineModel(models.TechQuadratic, sub, spec,
				models.FitOptions{MaxKnots: 8})
			if err != nil {
				return nil, err
			}
			cm, err := models.NewClusterModel(mm)
			if err != nil {
				return nil, err
			}
			for _, testRun := range runs {
				if testRun == trainRun {
					continue
				}
				pred, actual, err := cm.PredictCluster(byRun[testRun])
				if err != nil {
					return nil, err
				}
				idle := 0.0
				for _, t := range byRun[testRun] {
					idle += t.IdleWatts
				}
				sum, err := metrics.Evaluate(pred, actual, idle)
				if err != nil {
					return nil, err
				}
				sums = append(sums, sum)
			}
		}
		out[k] = metrics.Average(sums).DRE
		fmt.Fprintf(w, "%d machine(s) sampled -> cluster DRE %5.1f%%\n", k, out[k]*100)
	}
	return out, nil
}

// AblationLagWindow sweeps the frequency-history window (0 = none,
// 1 = the paper's MHz(t−1), larger = the Lewis-et-al-style window §VI
// discusses). The paper found historical frequency information did not
// significantly improve accuracy.
func (s *Suite) AblationLagWindow(w io.Writer, platform, workload string, windows []int) (map[int]float64, error) {
	if len(windows) == 0 {
		windows = []int{0, 1, 4}
	}
	ds, err := s.Dataset(platform)
	if err != nil {
		return nil, err
	}
	fr, err := s.Features(platform)
	if err != nil {
		return nil, err
	}
	traces := ds.ByWorkload[workload]
	out := map[int]float64{}
	section(w, fmt.Sprintf("Ablation: frequency-history window (%s, %s)", platform, workload))
	for _, win := range windows {
		spec := core.ClusterSpec(fr.Features)
		spec.LagWindow = win
		cv, err := core.CrossValidate(traces, core.CVConfig{Tech: models.TechQuadratic, Spec: spec})
		if err != nil {
			return nil, err
		}
		out[win] = cv.Cluster.DRE
		fmt.Fprintf(w, "window %d -> cluster DRE %5.1f%%\n", win, out[win]*100)
	}
	return out, nil
}

// CalibrationResult reports the calibration-training experiment.
type CalibrationResult struct {
	Platform string
	// PerWorkload maps workload name to cluster DRE when the model was
	// trained only on the calibration staircase.
	PerWorkload map[string]float64
	// WorkloadTrained maps workload name to the standard CV DRE for
	// comparison.
	WorkloadTrained map[string]float64
}

// CalibrationTraining trains the quadratic/cluster model on the synthetic
// calibration staircase alone and evaluates it on the real workloads —
// the "characterization phase" training mode the paper's §III sketches.
func (s *Suite) CalibrationTraining(w io.Writer, platform string) (*CalibrationResult, error) {
	ds, err := s.Dataset(platform)
	if err != nil {
		return nil, err
	}
	fr, err := s.Features(platform)
	if err != nil {
		return nil, err
	}
	spec := core.ClusterSpec(fr.Features)

	// Collect the calibration run on an identically-seeded cluster.
	calDS, err := core.Collect(platform, s.Cfg.Machines, []string{"Calibration"}, 1, s.Cfg.Seed)
	if err != nil {
		return nil, err
	}
	var train []*trace.Trace
	for _, t := range calDS.ByWorkload["Calibration"] {
		train = append(train, trace.Subsample(t, 2))
	}
	mm, err := models.FitMachineModel(models.TechQuadratic, train, spec,
		models.FitOptions{MaxKnots: 8})
	if err != nil {
		return nil, err
	}
	cm, err := models.NewClusterModel(mm)
	if err != nil {
		return nil, err
	}

	res := &CalibrationResult{Platform: platform,
		PerWorkload: map[string]float64{}, WorkloadTrained: map[string]float64{}}
	section(w, fmt.Sprintf("Calibration-phase training (%s)", platform))
	for _, wl := range s.Cfg.Workloads {
		traces := ds.ByWorkload[wl]
		var sums []metrics.Summary
		for _, run := range trace.Runs(traces) {
			rt := trace.ByRun(traces)[run]
			pred, actual, err := cm.PredictCluster(rt)
			if err != nil {
				return nil, err
			}
			idle := 0.0
			for _, t := range rt {
				idle += t.IdleWatts
			}
			sum, err := metrics.Evaluate(pred, actual, idle)
			if err != nil {
				return nil, err
			}
			sums = append(sums, sum)
		}
		res.PerWorkload[wl] = metrics.Average(sums).DRE
		best, err := s.Best(platform, wl)
		if err != nil {
			return nil, err
		}
		res.WorkloadTrained[wl] = best.CV.Cluster.DRE
		fmt.Fprintf(w, "%-10s calibration-trained DRE %5.1f%%  (workload-trained best %5.1f%%)\n",
			wl, res.PerWorkload[wl]*100, res.WorkloadTrained[wl]*100)
	}
	return res, nil
}

// AblationPerCoreFreq tests the §VI prediction that systems with
// independently clocked cores benefit from per-core frequency features:
// it compares the quadratic model using only core 0's frequency (the
// paper's proxy) against one with every core's frequency on a per-core
// DVFS platform.
func (s *Suite) AblationPerCoreFreq(w io.Writer, platform, workload string) (proxyDRE, perCoreDRE float64, err error) {
	ds, err := s.Dataset(platform)
	if err != nil {
		return 0, 0, err
	}
	fr, err := s.Features(platform)
	if err != nil {
		return 0, 0, err
	}
	traces := ds.ByWorkload[workload]

	base := core.ClusterSpec(fr.Features)
	cvBase, err := core.CrossValidate(traces, core.CVConfig{Tech: models.TechQuadratic, Spec: base})
	if err != nil {
		return 0, 0, err
	}
	proxyDRE = cvBase.Cluster.DRE

	spec, err := sim.Platform(platform)
	if err != nil {
		return 0, 0, err
	}
	extended := core.ClusterSpec(fr.Features)
	extended.Name = "cluster+percore"
	for c := 1; c < spec.Cores; c++ {
		name := fmt.Sprintf(`Processor Performance(%d)\Frequency MHz`, c)
		extended.Counters = ensureCounter(extended.Counters, name)
	}
	cvExt, err := core.CrossValidate(traces, core.CVConfig{Tech: models.TechQuadratic, Spec: extended})
	if err != nil {
		return 0, 0, err
	}
	perCoreDRE = cvExt.Cluster.DRE

	section(w, fmt.Sprintf("Ablation: core-0 frequency proxy vs per-core frequencies (%s, %s)", platform, workload))
	fmt.Fprintf(w, "core-0 proxy DRE %5.1f%%\nall-core DRE    %5.1f%%\n", proxyDRE*100, perCoreDRE*100)
	return proxyDRE, perCoreDRE, nil
}

// VariabilityStudy measures machine-to-machine power variation across a
// batch of identically-specified machines — the up-to-10% effect (§III-B,
// and Davis et al.'s EXERT study) that motivates Algorithm 1's pooling.
func VariabilityStudy(w io.Writer, platform string, nMachines int, seed int64) (idleSpread, maxSpread float64, err error) {
	spec, err := sim.Platform(platform)
	if err != nil {
		return 0, 0, err
	}
	if nMachines <= 1 {
		nMachines = 20
	}
	var idles, maxes []float64
	for i := 0; i < nMachines; i++ {
		m, err := sim.NewMachine(spec, fmt.Sprintf("v%d", i), mathx.DeriveSeed(seed, fmt.Sprintf("var%d", i)))
		if err != nil {
			return 0, 0, err
		}
		idles = append(idles, m.IdleWatts())
		// Drive to sustained full load and record the peak.
		peak := 0.0
		for t := 0; t < 40; t++ {
			_, _, p := m.Step(sim.Demand{
				CPU:            float64(spec.Cores) * 1.5,
				DiskReadBytes:  1e9,
				DiskWriteBytes: 1e9,
				DiskReadOps:    5000,
				DiskWriteOps:   5000,
				NetSendBytes:   1.25e8,
				NetRecvBytes:   1.25e8,
				MemTouchBytes:  1e10,
				WorkingSet:     4e9,
				RunningTasks:   spec.Cores,
			})
			if p.TrueWatts > peak {
				peak = p.TrueWatts
			}
		}
		maxes = append(maxes, peak)
	}
	spread := func(xs []float64) float64 {
		min, max := mathx.MinMax(xs)
		if min == 0 {
			return 0
		}
		return (max - min) / min
	}
	idleSpread, maxSpread = spread(idles), spread(maxes)
	section(w, fmt.Sprintf("Machine-to-machine variability (%d x %s)", nMachines, platform))
	fmt.Fprintf(w, "idle power spread %.1f%%, full-load spread %.1f%% (paper: up to 10%%)\n",
		idleSpread*100, maxSpread*100)
	return idleSpread, maxSpread, nil
}
