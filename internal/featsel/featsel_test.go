package featsel

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/counters"
	"repro/internal/trace"
)

// miniRegistry builds a small counter namespace with the structure
// Algorithm 1 must handle: real signals, a correlated shadow, a
// co-dependent sum, noise, and a constant.
//
// Layout:
//
//	0 util      (real driver of power)
//	1 freq      (real driver of power)
//	2 shadow    (scaled copy of util -> step 1 removes)
//	3 partA     (real driver, small)
//	4 partB     (irrelevant)
//	5 sum       (= partA + partB -> step 2 removes)
//	6 noise0
//	7 noise1
//	8 constant
func miniRegistry() *counters.Registry {
	r := counters.NewRegistry()
	r.Add(counters.Def{Name: "util", Category: counters.CatProcessor, Kind: counters.KindSignal, Signal: "util"})
	r.Add(counters.Def{Name: "freq", Category: counters.CatProcessorPerf, Kind: counters.KindSignal, Signal: "freq"})
	r.Add(counters.Def{Name: "shadow", Category: counters.CatProcess, Kind: counters.KindScaled, Sources: []int{0}, Scale: 2})
	r.Add(counters.Def{Name: "partA", Category: counters.CatPhysicalDisk, Kind: counters.KindSignal, Signal: "partA"})
	r.Add(counters.Def{Name: "partB", Category: counters.CatPhysicalDisk, Kind: counters.KindSignal, Signal: "partB"})
	r.Add(counters.Def{Name: "sum", Category: counters.CatPhysicalDisk, Kind: counters.KindSum, Sources: []int{3, 4}})
	r.Add(counters.Def{Name: "noise0", Category: counters.CatOther, Kind: counters.KindNoise, Scale: 1})
	r.Add(counters.Def{Name: "noise1", Category: counters.CatOther, Kind: counters.KindNoise, Scale: 1})
	r.Add(counters.Def{Name: "constant", Category: counters.CatOther, Kind: counters.KindConstant, Offset: 7})
	return r
}

// miniTrace generates one machine's trace over the mini registry: power is
// a nonlinear function of util/freq plus a small partA effect, with
// machine-specific gain.
func miniTrace(t *testing.T, machine string, run int, n int, seed int64, gain float64) *trace.Trace {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	names := []string{"util", "freq", "shadow", "partA", "partB", "sum", "noise0", "noise1", "constant"}
	b := trace.NewBuilder("Mini", "W", machine, run, names, 20)
	for i := 0; i < n; i++ {
		util := r.Float64() * 100
		freq := []float64{800, 1600, 2260}[r.Intn(3)]
		partA := r.Float64() * 50
		partB := r.Float64() * 50
		row := []float64{
			util, freq, 2*util + r.NormFloat64()*0.01,
			partA, partB, partA + partB,
			r.NormFloat64(), r.NormFloat64(), 7,
		}
		power := 20 + gain*(0.15*util*(freq/2260)+0.05*partA) + r.NormFloat64()*0.15
		if err := b.Add(row, power, power); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func miniTraces(t *testing.T, runs, perRun int) []*trace.Trace {
	t.Helper()
	var out []*trace.Trace
	for _, m := range []struct {
		id   string
		gain float64
	}{{"m0", 1.0}, {"m1", 1.05}, {"m2", 0.95}} {
		for run := 0; run < runs; run++ {
			out = append(out, miniTrace(t, m.id, run, perRun, int64(run*31)+int64(len(m.id))+int64(m.gain*100), m.gain))
		}
	}
	return out
}

func TestSelectClusterMini(t *testing.T) {
	traces := miniTraces(t, 2, 400)
	res, err := SelectCluster(traces, miniRegistry(), Options{InitialThreshold: 2})
	if err != nil {
		t.Fatalf("SelectCluster: %v", err)
	}
	has := func(name string) bool {
		for _, f := range res.Features {
			if f == name {
				return true
			}
		}
		return false
	}
	if !has("util") || !has("freq") {
		t.Errorf("true drivers missing from %v", res.Features)
	}
	if has("sum") {
		t.Errorf("co-dependent aggregate survived: %v", res.Features)
	}
	if has("shadow") && has("util") {
		// Correlation pruning keeps the first of the pair.
		t.Errorf("correlated shadow survived alongside util: %v", res.Features)
	}
	if has("constant") {
		t.Errorf("constant counter survived: %v", res.Features)
	}
	if has("noise0") || has("noise1") {
		t.Errorf("noise counters survived: %v", res.Features)
	}
	// Funnel must be monotonically narrowing.
	f := res.Funnel
	if f.Candidates != 9 || f.AfterConstant >= f.Candidates || f.AfterCorr > f.AfterConstant ||
		f.AfterCoDep > f.AfterCorr || f.Final > f.AfterCoDep {
		t.Errorf("funnel not narrowing: %+v", f)
	}
	if len(res.Histogram) == 0 {
		t.Error("empty histogram")
	}
	if res.Threshold < 2 {
		t.Errorf("threshold = %v", res.Threshold)
	}
}

func TestSelectClusterDeterminism(t *testing.T) {
	a, err := SelectCluster(miniTraces(t, 2, 300), miniRegistry(), Options{InitialThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SelectCluster(miniTraces(t, 2, 300), miniRegistry(), Options{InitialThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Features, b.Features) {
		t.Errorf("non-deterministic selection: %v vs %v", a.Features, b.Features)
	}
}

func TestSelectClusterValidation(t *testing.T) {
	if _, err := SelectCluster(nil, miniRegistry(), Options{}); err == nil {
		t.Error("expected error for no traces")
	}
	tr := miniTrace(t, "m0", 0, 50, 1, 1)
	tr.Names = tr.Names[:3]
	tr.X = tr.X.SelectCols([]int{0, 1, 2})
	if _, err := SelectCluster([]*trace.Trace{tr}, miniRegistry(), Options{}); err == nil {
		t.Error("expected error for registry mismatch")
	}
}

func TestGeneralFeatureSet(t *testing.T) {
	reg := counters.StandardRegistry()
	byCluster := map[string]*Result{
		"A": {Features: []string{counters.CPUTotal, counters.MemCacheFaults, counters.DiskBytes}},
		"B": {Features: []string{counters.CPUTotal, counters.MemCacheFaults, counters.NetDatagrams}},
		"C": {Features: []string{counters.CPUTotal, counters.MemPages, counters.JobPageFilePeak}},
	}
	gen, err := General(byCluster, reg, 2)
	if err != nil {
		t.Fatal(err)
	}
	set := map[string]bool{}
	for _, f := range gen {
		set[f] = true
	}
	// Always-on anchors.
	if !set[counters.CPUTotal] || !set[counters.CPUFreqCore0] {
		t.Errorf("anchors missing: %v", gen)
	}
	// Common across >= 2 clusters.
	if !set[counters.MemCacheFaults] {
		t.Errorf("common feature missing: %v", gen)
	}
	// Category coverage: disk/network/job-object categories appeared in
	// cluster sets, so each contributes a representative.
	if !set[counters.DiskBytes] && !set[counters.NetDatagrams] && !set[counters.JobPageFilePeak] {
		t.Errorf("category representatives missing: %v", gen)
	}
	if _, err := General(nil, reg, 1); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestGeneralRejectsUnknownCounter(t *testing.T) {
	reg := counters.StandardRegistry()
	byCluster := map[string]*Result{
		"A": {Features: []string{"Not\\A Counter"}},
		"B": {Features: []string{"Not\\A Counter"}},
	}
	if _, err := General(byCluster, reg, 1); err == nil {
		t.Error("expected error for unknown counter name")
	}
}

// correlatedMiniTraces builds machines that move in lockstep (one shared
// phase signal plus small per-machine noise), like MapReduce workers whose
// utilization the paper found to be highly correlated across a cluster.
func correlatedMiniTraces(t *testing.T, runs, perRun int) []*trace.Trace {
	t.Helper()
	names := []string{"util", "freq", "shadow", "partA", "partB", "sum", "noise0", "noise1", "constant"}
	var out []*trace.Trace
	for run := 0; run < runs; run++ {
		shared := rand.New(rand.NewSource(int64(1000 + run)))
		phases := make([]float64, perRun)
		freqs := make([]float64, perRun)
		for i := range phases {
			phases[i] = shared.Float64() * 100
			freqs[i] = []float64{800, 1600, 2260}[shared.Intn(3)]
		}
		for m := 0; m < 3; m++ {
			r := rand.New(rand.NewSource(int64(run*31 + m)))
			b := trace.NewBuilder("Mini", "W", "m"+string(rune('0'+m)), run, names, 20)
			for i := 0; i < perRun; i++ {
				util := phases[i] + r.NormFloat64()*1.5
				row := []float64{
					util, freqs[i], 2 * util,
					util * 0.4, r.Float64(), util * 0.4,
					r.NormFloat64(), r.NormFloat64(), 7,
				}
				power := 20 + 0.15*util*(freqs[i]/2260) + r.NormFloat64()*0.15
				if err := b.Add(row, power, power); err != nil {
					t.Fatal(err)
				}
			}
			tr, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, tr)
		}
	}
	return out
}

func TestNaivePooledSelectionIsRunFragile(t *testing.T) {
	// Machines running the same workload are near-duplicates, so which
	// machine's copy of a signal the naive pooled selector keeps is an
	// accident of the run — the paper's §IV-A failure: "fragile
	// workload-specific and even run-specific models". Selecting on two
	// different runs must disagree, while Algorithm 1's union-based
	// selection stays stable.
	feats := []string{"util", "freq", "partA"}
	run0 := correlatedMiniTraces(t, 1, 400)
	all := correlatedMiniTraces(t, 2, 400)
	var run1 []*trace.Trace
	for _, tr := range all {
		if tr.Run == 1 {
			run1 = append(run1, tr)
		}
	}
	a, err := NaivePooledSelection(run0, feats, 3)
	if err != nil {
		t.Fatalf("NaivePooledSelection run0: %v", err)
	}
	b, err := NaivePooledSelection(run1, feats, 3)
	if err != nil {
		t.Fatalf("NaivePooledSelection run1: %v", err)
	}
	if a.TotalSelected == 0 || b.TotalSelected == 0 {
		t.Fatal("naive selection kept nothing")
	}
	if reflect.DeepEqual(a.SelectedColumns, b.SelectedColumns) {
		t.Errorf("naive selection identical across runs (%v); fragility not reproduced", a.SelectedColumns)
	}

	// Algorithm 1 on the same two runs is stable.
	s0, err := SelectCluster(run0, miniRegistry(), Options{InitialThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := SelectCluster(run1, miniRegistry(), Options{InitialThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s0.Features, s1.Features) {
		t.Errorf("Algorithm 1 unstable across runs: %v vs %v", s0.Features, s1.Features)
	}
}

func TestNaivePooledSelectionValidation(t *testing.T) {
	if _, err := NaivePooledSelection(nil, []string{"util"}, 4); err == nil {
		t.Error("expected error for no traces")
	}
	traces := miniTraces(t, 1, 50)
	if _, err := NaivePooledSelection(traces, nil, 4); err == nil {
		t.Error("expected error for no features")
	}
	if _, err := NaivePooledSelection(traces, []string{"missing"}, 4); err == nil {
		t.Error("expected error for unknown feature")
	}
}

func TestCheckPooling(t *testing.T) {
	traces := miniTraces(t, 2, 300)
	check, err := CheckPooling(traces, []string{"util", "freq"}, 0)
	if err != nil {
		t.Fatalf("CheckPooling: %v", err)
	}
	// The mini machines differ only by small gain factors: pooling must
	// be adequate, as the paper found for its clusters.
	if !check.Adequate {
		t.Errorf("pooling inadequate (ratio %v) for nearly identical machines", check.Ratio)
	}
	if len(check.Intercepts) != 3 {
		t.Errorf("intercepts = %v, want one per machine", check.Intercepts)
	}
	if _, err := CheckPooling(nil, []string{"util"}, 0); err == nil {
		t.Error("expected error for no traces")
	}
	if _, err := CheckPooling(traces, nil, 0); err == nil {
		t.Error("expected error for no features")
	}
	if _, err := CheckPooling(traces, []string{"nope"}, 0); err == nil {
		t.Error("expected error for unknown feature")
	}
}

func TestCapRows(t *testing.T) {
	tr := miniTrace(t, "m0", 0, 100, 5, 1)
	x, y := tr.X, tr.Power
	cx, cy := capRows(x, y, 30)
	if cx.Rows > 34 || len(cy) != cx.Rows {
		t.Errorf("capRows produced %d rows", cx.Rows)
	}
	cx2, _ := capRows(x, y, 1000)
	if cx2 != x {
		t.Error("under-cap input should be returned unchanged")
	}
}

func TestTopK(t *testing.T) {
	hist := map[int]float64{1: 5, 2: 9, 3: 9, 4: 1}
	got := topK(hist, 2)
	if !reflect.DeepEqual(got, []int{2, 3}) {
		t.Errorf("topK = %v, want [2 3] (weight then index order)", got)
	}
	if got := topK(hist, 10); len(got) != 4 {
		t.Errorf("topK over-size = %v", got)
	}
}
