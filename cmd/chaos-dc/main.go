// chaos-dc simulates a datacenter-scale fleet event-drivenly and streams
// its hierarchically composed power series: per-rack, per-row, and
// whole-datacenter watts, each an incremental aggregate that recomputes
// only the subtrees events actually touched (Eq. 5 composability at 20k
// machines).
//
// The topology comes from a chaos-topology/v1 JSON document (see
// examples/dc-20k.json): either an explicit tree (datacenter → row →
// rack → machines) or a grid generator with weighted platform and
// workload-profile mixes. The same document and seed always replay the
// same fleet, burst for burst.
//
// With -feed, chaos-dc additionally samples a subset of machines at a
// fixed cadence, expands their OS counter signals into full counter
// vectors, and POSTs the snapshot to a running chaos-serve /
// chaos-dist /v1/estimate/cluster endpoint — closing the loop from
// simulated fleet to served estimates.
//
// Usage:
//
//	chaos-dc -topology examples/dc-20k.json -duration 1h
//	chaos-dc -topology dc.json -interval 60 -levels rack -json
//	chaos-dc -topology dc.json -feed http://localhost:8080 -feed-machines 50
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/counters"
	"repro/internal/mathx"
	"repro/internal/serve"
)

func main() {
	if err := realMain(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "chaos-dc:", err)
		os.Exit(1)
	}
}

type options struct {
	topology     string
	duration     time.Duration
	interval     int64
	levels       string
	jsonOut      bool
	feed         string
	feedMachines int
	feedInterval int64
	seed         int64
}

// tick is one streamed aggregate observation.
type tick struct {
	T     int64   `json:"t"`
	Level string  `json:"level"` // "datacenter", "row", "rack"
	Name  string  `json:"name"`
	Watts float64 `json:"watts"`
}

// summary is the final line of a run.
type summary struct {
	Topology       string  `json:"topology"`
	Machines       int     `json:"machines"`
	SimSeconds     int64   `json:"sim_seconds"`
	Events         int64   `json:"events"`
	Steps          int64   `json:"steps"`
	EventsPerSec   float64 `json:"events_per_sec"`
	SimSecPerSec   float64 `json:"sim_seconds_per_sec"`
	ActiveEnd      int     `json:"active_machines_end"`
	DatacenterW    float64 `json:"datacenter_watts_end"`
	Digest         string  `json:"digest"`
	FedSnapshots   int     `json:"fed_snapshots,omitempty"`
	FeedClusterW   float64 `json:"feed_cluster_watts_last,omitempty"`
	FeedSimW       float64 `json:"feed_sim_watts_last,omitempty"`
	FeedRelErrLast float64 `json:"feed_rel_err_last,omitempty"`
}

func realMain(argv []string, out io.Writer) error {
	fs := flag.NewFlagSet("chaos-dc", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.topology, "topology", "", "chaos-topology/v1 JSON document (required)")
	fs.DurationVar(&o.duration, "duration", time.Hour, "simulated duration")
	fs.Int64Var(&o.interval, "interval", 300, "reporting interval in simulated seconds")
	fs.StringVar(&o.levels, "levels", "datacenter,row", "comma-separated levels to stream: datacenter,row,rack")
	fs.BoolVar(&o.jsonOut, "json", false, "emit JSON lines instead of text")
	fs.StringVar(&o.feed, "feed", "", "base URL of a /v1/estimate/cluster endpoint to feed sampled snapshots")
	fs.IntVar(&o.feedMachines, "feed-machines", 20, "machines per fed snapshot (evenly spread over the fleet)")
	fs.Int64Var(&o.feedInterval, "feed-interval", 600, "simulated seconds between fed snapshots")
	fs.Int64Var(&o.seed, "seed", 0, "override the topology document's seed (0 keeps it)")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if o.topology == "" {
		return fmt.Errorf("-topology is required")
	}
	if o.interval < 1 || o.duration < time.Second {
		return fmt.Errorf("-interval and -duration must cover at least one simulated second")
	}

	data, err := os.ReadFile(o.topology)
	if err != nil {
		return err
	}
	spec, err := cluster.ParseSpec(data)
	if err != nil {
		return err
	}
	if o.seed != 0 {
		spec.Seed = o.seed
	}
	topo, err := cluster.Build(spec)
	if err != nil {
		return err
	}
	cs := cluster.NewSimulator(topo)

	want := map[string]bool{}
	for _, l := range strings.Split(o.levels, ",") {
		l = strings.TrimSpace(l)
		if l == "" {
			continue
		}
		if l != "datacenter" && l != "row" && l != "rack" {
			return fmt.Errorf("unknown level %q (want datacenter, row, or rack)", l)
		}
		want[l] = true
	}

	var feeder *feeder
	if o.feed != "" {
		feeder, err = newFeeder(cs, o)
		if err != nil {
			return err
		}
	}

	end := int64(o.duration / time.Second)
	start := time.Now()
	var fed summary
	for now := int64(0); now < end; {
		next := now + o.interval
		if next > end {
			next = end
		}
		if feeder != nil {
			// Feed snapshots on their own cadence inside the interval.
			for ft := feeder.next; ft <= next; ft += o.feedInterval {
				cs.RunUntil(ft)
				if err := feeder.snapshot(&fed); err != nil {
					return fmt.Errorf("feeding %s at t=%d: %w", o.feed, ft, err)
				}
				feeder.next = ft + o.feedInterval
			}
		}
		cs.RunUntil(next)
		now = next
		emit(out, o.jsonOut, now, topo, want)
	}
	wall := time.Since(start).Seconds()

	s := summary{
		Topology:     spec.Name,
		Machines:     len(topo.Machines),
		SimSeconds:   end,
		Events:       cs.Events(),
		Steps:        cs.Steps(),
		ActiveEnd:    cs.ActiveMachines(),
		DatacenterW:  topo.Root.Watts(),
		Digest:       cs.Digest(),
		FedSnapshots: fed.FedSnapshots,
	}
	if wall > 0 {
		s.EventsPerSec = float64(cs.Events()) / wall
		s.SimSecPerSec = float64(end) / wall
	}
	if fed.FedSnapshots > 0 {
		s.FeedClusterW = fed.FeedClusterW
		s.FeedSimW = fed.FeedSimW
		s.FeedRelErrLast = fed.FeedRelErrLast
	}
	if o.jsonOut {
		return json.NewEncoder(out).Encode(map[string]any{"summary": s})
	}
	fmt.Fprintf(out, "done: %s, %d machines, %ds simulated, %d events (%d steps), %.0f events/s, %.0f sim-s/s, %.0fW, digest %s\n",
		s.Topology, s.Machines, s.SimSeconds, s.Events, s.Steps, s.EventsPerSec, s.SimSecPerSec, s.DatacenterW, s.Digest[:16])
	if fed.FedSnapshots > 0 {
		fmt.Fprintf(out, "fed %d snapshots: served %.0fW vs simulated %.0fW on sampled machines (rel err %.3f)\n",
			fed.FedSnapshots, s.FeedClusterW, s.FeedSimW, s.FeedRelErrLast)
	}
	return nil
}

func emit(out io.Writer, jsonOut bool, now int64, topo *cluster.Topology, want map[string]bool) {
	for _, l := range topo.Levels {
		name := levelKind(l)
		if !want[name] {
			continue
		}
		t := tick{T: now, Level: name, Name: l.Name, Watts: l.Watts()}
		if jsonOut {
			b, _ := json.Marshal(t)
			fmt.Fprintln(out, string(b))
		} else {
			fmt.Fprintf(out, "t=%-7d %-10s %-18s %10.1f W\n", t.T, t.Level, t.Name, t.Watts)
		}
	}
}

// levelKind names a level for streaming filters: the root is the
// datacenter, any level holding machines is a rack, everything between
// is a row — which also does the right thing for trees shallower than
// the full four levels.
func levelKind(l *cluster.Level) string {
	if l.Depth == 1 {
		return "datacenter"
	}
	if len(l.Machines) > 0 {
		return "rack"
	}
	return "row"
}

// feeder POSTs sampled machine snapshots to a /v1/estimate/cluster
// endpoint. Each sampled machine gets its own counter Expander (the
// expander is stateful), seeded off the topology seed and machine id.
type feeder struct {
	cs        *cluster.ClusterSimulator
	url       string
	client    *http.Client
	indices   []int
	expanders []*counters.Expander
	next      int64
}

func newFeeder(cs *cluster.ClusterSimulator, o options) (*feeder, error) {
	topo := cs.Topology()
	n := o.feedMachines
	if n < 1 {
		return nil, fmt.Errorf("-feed-machines must be ≥ 1")
	}
	if n > len(topo.Machines) {
		n = len(topo.Machines)
	}
	if o.feedInterval < 1 {
		return nil, fmt.Errorf("-feed-interval must be ≥ 1")
	}
	f := &feeder{
		cs:     cs,
		url:    strings.TrimRight(o.feed, "/") + "/v1/estimate/cluster",
		client: &http.Client{Timeout: 30 * time.Second},
		next:   o.feedInterval,
	}
	reg := counters.StandardRegistry()
	stride := len(topo.Machines) / n
	for i := 0; i < n; i++ {
		idx := i * stride
		cs.SetCapture(idx)
		f.indices = append(f.indices, idx)
		f.expanders = append(f.expanders,
			counters.NewExpander(reg, mathx.DeriveSeed(topo.Seed, "exp:"+topo.Machines[idx].ID)))
	}
	return f, nil
}

func (f *feeder) snapshot(fed *summary) error {
	topo := f.cs.Topology()
	req := serve.EstimateRequest{}
	var simWatts float64
	for i, idx := range f.indices {
		sig, watts := f.cs.SampleSignals(idx)
		vec, err := f.expanders[i].Sample(sig)
		if err != nil {
			return fmt.Errorf("expanding machine %s: %w", topo.Machines[idx].ID, err)
		}
		w := watts
		simWatts += w
		req.Samples = append(req.Samples, serve.SampleJSON{
			MachineID:    topo.Machines[idx].ID,
			Platform:     topo.Machines[idx].Machine.Spec.Name,
			Counters:     vec,
			MeteredWatts: &w,
		})
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := f.client.Post(f.url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var cr struct {
		Status       int     `json:"status"`
		ClusterWatts float64 `json:"cluster_watts"`
		Error        string  `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		return fmt.Errorf("decoding response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, cr.Error)
	}
	fed.FedSnapshots++
	fed.FeedClusterW = cr.ClusterWatts
	fed.FeedSimW = simWatts
	if simWatts > 0 {
		rel := (cr.ClusterWatts - simWatts) / simWatts
		if rel < 0 {
			rel = -rel
		}
		fed.FeedRelErrLast = rel
	}
	return nil
}
