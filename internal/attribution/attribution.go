// Package attribution divides a machine's modeled power among the
// processes (or VMs/tasks) running on it — the Joulemeter-style power
// metering use case the paper cites (Kansal et al., SoCC 2010) as a
// consumer of exactly these full-system models.
//
// The machine's predicted power is split into a static part (the idle
// floor, owned by the machine) and a dynamic part, which is attributed to
// processes in proportion to their shares of the activity the model's
// features measure: CPU-ish features by CPU share, disk/filesystem
// features by I/O share, and so on per counter category.
package attribution

import (
	"fmt"
	"sort"

	"repro/internal/counters"
	"repro/internal/mathx"
)

// ProcessActivity is one process's resource consumption for one second,
// in the same units the machine-level counters use.
type ProcessActivity struct {
	Name         string
	CPUPercent   float64 // of total machine CPU time (0-100 x cores scale ok; shares matter)
	IOBytes      float64 // disk + network bytes moved
	MemoryBytes  float64 // working set
	NetworkBytes float64
}

// Weights control how the dynamic power is split across resource
// dimensions. They are derived from the model's feature categories: a
// model dominated by processor counters attributes mostly by CPU share.
type Weights struct {
	CPU, IO, Memory, Network float64
}

// Normalize scales the weights to sum to 1; all-zero weights become pure
// CPU attribution.
func (w Weights) Normalize() Weights {
	s := w.CPU + w.IO + w.Memory + w.Network
	if s <= 0 {
		return Weights{CPU: 1}
	}
	return Weights{CPU: w.CPU / s, IO: w.IO / s, Memory: w.Memory / s, Network: w.Network / s}
}

// WeightsFromFeatures derives attribution weights from a model's feature
// names using the counter registry's categories: each selected feature
// votes for the resource dimension its category measures.
func WeightsFromFeatures(features []string, reg *counters.Registry) (Weights, error) {
	if len(features) == 0 {
		return Weights{}, fmt.Errorf("attribution: no features")
	}
	var w Weights
	for _, f := range features {
		idx, ok := reg.Index(f)
		if !ok {
			return Weights{}, fmt.Errorf("attribution: feature %q not in registry", f)
		}
		switch reg.Category(idx) {
		case counters.CatProcessor, counters.CatProcessorPerf, counters.CatSystem:
			w.CPU++
		case counters.CatPhysicalDisk, counters.CatFSCache:
			w.IO++
		case counters.CatMemory, counters.CatJobObject, counters.CatPagingFile:
			w.Memory++
		case counters.CatNetwork:
			w.Network++
		case counters.CatProcess:
			// Process IO counters measure both disk and network work.
			w.IO += 0.5
			w.Network += 0.5
		}
	}
	return w.Normalize(), nil
}

// Share is one process's attributed power.
type Share struct {
	Name  string
	Watts float64
	// Fraction of the machine's dynamic power.
	Fraction float64
}

// Attribute splits one second of machine power across processes.
// totalWatts is the machine's (modeled or metered) power, idleWatts its
// static floor. The remainder is divided using the weights and each
// process's share of every resource dimension; activity not owned by any
// listed process ("the OS") is returned as the residual.
func Attribute(totalWatts, idleWatts float64, procs []ProcessActivity, w Weights) (shares []Share, osWatts float64, err error) {
	if totalWatts < 0 || idleWatts < 0 {
		return nil, 0, fmt.Errorf("attribution: negative power (%g, %g)", totalWatts, idleWatts)
	}
	dyn := totalWatts - idleWatts
	if dyn < 0 {
		dyn = 0
	}
	w = w.Normalize()

	var cpuSum, ioSum, memSum, netSum float64
	for _, p := range procs {
		if p.CPUPercent < 0 || p.IOBytes < 0 || p.MemoryBytes < 0 || p.NetworkBytes < 0 {
			return nil, 0, fmt.Errorf("attribution: process %q has negative activity", p.Name)
		}
		cpuSum += p.CPUPercent
		ioSum += p.IOBytes
		memSum += p.MemoryBytes
		netSum += p.NetworkBytes
	}
	frac := func(v, sum float64) float64 {
		if sum <= 0 {
			return 0
		}
		return v / sum
	}
	attributed := 0.0
	for _, p := range procs {
		f := w.CPU*frac(p.CPUPercent, cpuSum) +
			w.IO*frac(p.IOBytes, ioSum) +
			w.Memory*frac(p.MemoryBytes, memSum) +
			w.Network*frac(p.NetworkBytes, netSum)
		f = mathx.Clamp(f, 0, 1)
		shares = append(shares, Share{Name: p.Name, Watts: dyn * f, Fraction: f})
		attributed += f
	}
	sort.Slice(shares, func(a, b int) bool {
		if shares[a].Watts != shares[b].Watts {
			return shares[a].Watts > shares[b].Watts
		}
		return shares[a].Name < shares[b].Name
	})
	osWatts = dyn * mathx.Clamp(1-attributed, 0, 1)
	return shares, osWatts, nil
}

// Meter accumulates per-process energy over a run at 1 Hz.
type Meter struct {
	weights  Weights
	energyWs map[string]float64 // watt-seconds
	osWs     float64
	idleWs   float64
	seconds  int
}

// NewMeter creates an energy meter with the given attribution weights.
func NewMeter(w Weights) *Meter {
	return &Meter{weights: w.Normalize(), energyWs: map[string]float64{}}
}

// Step attributes one second of power to the running processes.
func (m *Meter) Step(totalWatts, idleWatts float64, procs []ProcessActivity) error {
	shares, osW, err := Attribute(totalWatts, idleWatts, procs, m.weights)
	if err != nil {
		return err
	}
	for _, s := range shares {
		m.energyWs[s.Name] += s.Watts
	}
	m.osWs += osW
	if totalWatts < idleWatts {
		idleWatts = totalWatts
	}
	m.idleWs += idleWatts
	m.seconds++
	return nil
}

// EnergyWh returns each process's accumulated energy in watt-hours,
// sorted by energy descending.
func (m *Meter) EnergyWh() []Share {
	out := make([]Share, 0, len(m.energyWs))
	for name, ws := range m.energyWs {
		out = append(out, Share{Name: name, Watts: ws / 3600})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Watts != out[b].Watts {
			return out[a].Watts > out[b].Watts
		}
		return out[a].Name < out[b].Name
	})
	return out
}

// OverheadWh returns the unattributed (OS) and idle energies in Wh.
func (m *Meter) OverheadWh() (osWh, idleWh float64) {
	return m.osWs / 3600, m.idleWs / 3600
}

// Seconds returns how many seconds have been metered.
func (m *Meter) Seconds() int { return m.seconds }
