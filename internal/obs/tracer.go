package obs

import (
	"fmt"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// SpanData is the record a finished span hands to a tracer sink.
type SpanData struct {
	Name     string
	Parent   string // parent span name, "" for roots
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
}

// spanBuckets covers 10 µs to ~40 s — the span durations the pipeline
// produces, from single OLS fits to full Algorithm 1 runs.
var spanBuckets = ExpBuckets(1e-5, 4, 12)

// Tracer creates spans and records their wall time into a registry
// histogram (chaos_span_seconds{span=name}). An optional sink receives the
// full SpanData of every finished span.
type Tracer struct {
	reg  *Registry
	now  func() time.Time
	mu   sync.RWMutex
	sink func(SpanData)
	// hist caches the per-name duration histogram so End avoids a registry
	// lookup (lock + key build) on every span in tight fit loops.
	hist sync.Map // span name -> *Histogram
}

// NewTracer builds a tracer recording into reg.
func NewTracer(reg *Registry) *Tracer {
	return &Tracer{reg: reg, now: time.Now}
}

// SetSink installs a callback invoked (synchronously) with every finished
// span. Pass nil to remove.
func (t *Tracer) SetSink(fn func(SpanData)) {
	t.mu.Lock()
	t.sink = fn
	t.mu.Unlock()
}

var defaultTracer = NewTracer(defaultRegistry)

// DefaultTracer returns the process-wide tracer the pipeline stages use.
func DefaultTracer() *Tracer { return defaultTracer }

// StartSpan starts a root span on the default tracer.
func StartSpan(name string, attrs ...Attr) *Span {
	return defaultTracer.Start(name, attrs...)
}

// Span is one timed region of work. Spans are not safe for concurrent
// mutation; give each goroutine its own (child) span.
type Span struct {
	t      *Tracer
	name   string
	parent string
	start  time.Time
	attrs  []Attr
	ended  bool
}

// Start begins a root span.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	return &Span{t: t, name: name, start: t.now(), attrs: attrs}
}

// Child begins a nested span. The child records its own histogram series
// under its own name and carries the parent name in its SpanData.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	return &Span{t: s.t, name: name, parent: s.name, start: s.t.now(), attrs: attrs}
}

// SetAttr appends an annotation to the span (visible to the sink).
func (s *Span) SetAttr(attrs ...Attr) {
	s.attrs = append(s.attrs, attrs...)
}

// Name returns the span name.
func (s *Span) Name() string { return s.name }

// End finishes the span, records its wall time, and returns the duration.
// A second End is a no-op returning zero.
func (s *Span) End() time.Duration {
	if s == nil || s.ended {
		return 0
	}
	s.ended = true
	d := s.t.now().Sub(s.start)
	h, ok := s.t.hist.Load(s.name)
	if !ok {
		h, _ = s.t.hist.LoadOrStore(s.name,
			s.t.reg.Histogram("chaos_span_seconds", Labels{"span": s.name}, spanBuckets))
	}
	h.(*Histogram).Observe(d.Seconds())
	s.t.mu.RLock()
	sink := s.t.sink
	s.t.mu.RUnlock()
	if sink != nil {
		sink(SpanData{Name: s.name, Parent: s.parent, Start: s.start, Duration: d, Attrs: s.attrs})
	}
	return d
}

// AttrString renders attrs as "k=v k=v" for log lines.
func AttrString(attrs []Attr) string {
	out := ""
	for i, a := range attrs {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%v", a.Key, a.Value)
	}
	return out
}
