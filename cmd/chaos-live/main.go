// chaos-live runs the whole online loop against a live simulated cluster:
// train a model on the first workload, then stream a day-in-the-life
// sequence of jobs through the predictor, printing per-minute power
// summaries, drift alarms when the workload mix leaves the trained
// regime, and retrain events that restore accuracy.
//
// With -listen the process also serves /metrics (Prometheus text format),
// /healthz, and /debug/pprof while streaming; with -json every event is
// emitted as one machine-readable JSON line instead of free-form text.
//
// With -faults the run replays a fault-injection scenario (collector
// drops, latency spikes, NaN/Inf counter corruption, stuck counters,
// meter dropouts, machine crashes — see examples/faults-crashy.json), and
// -degraded turns on degraded-mode estimation: per-machine staleness
// tracking, hold-last-estimate-with-decay, counter imputation, and
// live/stale/imputed/down health states with machine_stale, machine_down,
// machine_recovered, and degraded_estimate events.
//
// Usage:
//
//	chaos-live -platform Core2 -machines 3 -train Prime -stream Prime,Sort,PageRank
//	chaos-live -listen :9090 -json
//	chaos-live -machines 5 -faults examples/faults-crashy.json -degraded -json
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/featsel"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// config collects the run parameters of one chaos-live invocation.
type config struct {
	Platform string
	Machines int
	Train    string
	Stream   []string
	Seed     int64
	Listen   string // "" disables the metrics endpoint
	JSON     bool   // emit JSON event lines instead of human text
	Faults   string // path to a fault scenario JSON; "" disables injection
	Degraded bool   // degraded-mode estimation (staleness, decay, imputation)

	// scenario, when set, overrides Faults (used by tests to inject a
	// scenario without a file).
	scenario *faults.Scenario
	// holdOpen, when set, is called after the stream completes but before
	// the metrics server shuts down, so tests can probe the endpoints
	// without racing the end of the run.
	holdOpen func()
}

func main() {
	var (
		platform  = flag.String("platform", "Core2", "platform class")
		machines  = flag.Int("machines", 3, "machines in the cluster")
		train     = flag.String("train", "Prime", "workload to train on")
		stream    = flag.String("stream", "Prime,Sort", "comma-separated workload sequence to stream")
		seed      = flag.Int64("seed", 7, "simulation seed")
		listen    = flag.String("listen", "", "serve /metrics, /healthz, and pprof on this address (e.g. :9090)")
		jsonOut   = flag.Bool("json", false, "emit machine-readable JSON event lines instead of text")
		faultsArg = flag.String("faults", "", "fault-injection scenario JSON (canonical example: examples/faults-crashy.json)")
		degraded  = flag.Bool("degraded", false, "degraded-mode estimation: staleness TTL, hold-with-decay, imputation, health states")
	)
	flag.Parse()
	cfg := config{
		Platform: *platform, Machines: *machines, Train: *train,
		Stream: strings.Split(*stream, ","), Seed: *seed,
		Listen: *listen, JSON: *jsonOut,
		Faults: *faultsArg, Degraded: *degraded,
	}
	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "chaos-live:", err)
		os.Exit(1)
	}
}

// emitter routes run output either to the human text log or, in -json
// mode, through an obs.EventSink as one JSON line per event.
type emitter struct {
	w    io.Writer
	sink *obs.EventSink // nil in text mode
}

func (e *emitter) event(name, text string, fields map[string]any) error {
	if e.sink != nil {
		return e.sink.Emit(name, fields)
	}
	_, err := fmt.Fprintln(e.w, text)
	return err
}

func run(w io.Writer, cfg config) error {
	em := &emitter{w: w}
	if cfg.JSON {
		em.sink = obs.NewEventSink(w)
	}
	if cfg.Listen != "" {
		obs.RegisterBuildInfo(obs.Default())
		srv, err := obs.Serve(cfg.Listen, obs.Default())
		if err != nil {
			return err
		}
		defer srv.Close()
		if err := em.event("listening",
			fmt.Sprintf("metrics listening on http://%s/metrics", srv.Addr()),
			map[string]any{"addr": srv.Addr()}); err != nil {
			return err
		}
	}

	// Train.
	ds, err := core.Collect(cfg.Platform, cfg.Machines, []string{cfg.Train}, 2, cfg.Seed)
	if err != nil {
		return err
	}
	sel, err := ds.SelectFeatures(featsel.Options{})
	if err != nil {
		return err
	}
	spec := core.ClusterSpec(sel.Features)
	byRun := trace.ByRun(ds.ByWorkload[cfg.Train])
	var trainTraces []*trace.Trace
	for _, t := range byRun[0] {
		trainTraces = append(trainTraces, trace.Subsample(t, 2))
	}
	mm, err := models.FitMachineModel(models.TechQuadratic, trainTraces, spec,
		models.FitOptions{MaxKnots: 8})
	if err != nil {
		return err
	}
	cm, err := models.NewClusterModel(mm)
	if err != nil {
		return err
	}
	pred, actual, err := cm.PredictCluster(byRun[1])
	if err != nil {
		return err
	}
	baseline := rmse(pred, actual)
	if err := em.event("train",
		fmt.Sprintf("trained quadratic model on %s (%d features); held-out rMSE %.2f W",
			cfg.Train, len(sel.Features), baseline),
		map[string]any{
			"workload": cfg.Train, "features": len(sel.Features),
			"baseline_rmse_w": round2(baseline), "technique": "quadratic",
		}); err != nil {
		return err
	}

	// Stream the sequence on the same cluster instances the model was
	// trained for (same seed -> same machines; a deployed model monitors
	// the machines it was fitted on).
	cluster, err := telemetry.New(cfg.Platform, cfg.Machines, cfg.Seed)
	if err != nil {
		return err
	}
	seq, err := cluster.RunSequence(cfg.Stream, 20, 3000, 0)
	if err != nil {
		return err
	}
	predictor, err := online.NewPredictor(cm, seq[0].Names)
	if err != nil {
		return err
	}
	monitor, err := online.NewMonitor(baseline, 16)
	if err != nil {
		return err
	}
	retrainer, err := online.NewRetrainer(seq[0].Names, 4000)
	if err != nil {
		return err
	}

	ids := make([]string, len(seq))
	for k, tr := range seq {
		ids[k] = tr.MachineID
	}

	// Fault-injection harness: a deterministic injector over the scenario
	// plus one resilient collector (retry/backoff/timeout + breaker) per
	// machine, all sharing the sim clock.
	scen := cfg.scenario
	if scen == nil && cfg.Faults != "" {
		if scen, err = faults.LoadScenario(cfg.Faults); err != nil {
			return err
		}
	}
	var inj *faults.Injector
	var fcols []*faults.Collector
	if scen != nil {
		if inj, err = faults.NewInjector(scen, cfg.Seed); err != nil {
			return err
		}
		fcols = make([]*faults.Collector, len(seq))
		for k, id := range ids {
			if fcols[k], err = faults.NewCollector(id, inj, faults.DefaultRetry(), faults.DefaultBreaker()); err != nil {
				return err
			}
		}
		if err := em.event("faults_enabled",
			fmt.Sprintf("fault injection enabled: scenario %q (%d crashes, %d meter dropouts)",
				scen.Name, len(scen.Crashes), len(scen.MeterDropouts)),
			map[string]any{"scenario": scen.Name,
				"crashes": len(scen.Crashes), "meter_dropouts": len(scen.MeterDropouts)}); err != nil {
			return err
		}
	}
	var degraded *online.DegradedPredictor
	prevHealth := map[string]online.Health{}
	if cfg.Degraded {
		if degraded, err = online.NewDegradedPredictor(predictor, ids, online.DegradedConfig{}); err != nil {
			return err
		}
		for _, id := range ids {
			prevHealth[id] = online.HealthLive
		}
		if err := em.event("degraded_enabled",
			"degraded-mode estimation enabled (staleness TTL, hold-with-decay, imputation)",
			map[string]any{"machines": len(ids)}); err != nil {
			return err
		}
	}

	n := seq[0].Len()
	if err := em.event("stream_start",
		fmt.Sprintf("streaming %s (%d s total)", strings.Join(cfg.Stream, " -> "), n),
		map[string]any{"sequence": cfg.Stream, "seconds": n}); err != nil {
		return err
	}
	clock := faults.NewClock()
	var drifted bool
	var driftCount, retrainCount, skippedSeconds int
	var minuteErr, minuteActual, minuteEst float64
	minuteCoverage := 1.0
	perMachineMinute := map[string]float64{}
	for i := 0; i < n; i++ {
		t := clock.Tick()
		var samples []online.Sample
		var meterWatts []float64
		var clusterActual float64
		for k, tr := range seq {
			clusterActual += tr.Power[t]
			row := tr.X.Row(t)
			if inj != nil {
				res, err := fcols[k].Collect(t, func() ([]float64, error) {
					// Private copy: the injector mutates rows in place.
					return append([]float64(nil), tr.X.Row(t)...), nil
				})
				if err != nil {
					return err
				}
				if !res.OK {
					continue
				}
				row = res.Row
			}
			samples = append(samples, online.Sample{
				MachineID: tr.MachineID, Platform: tr.Platform, Counters: row})
			meterWatts = append(meterWatts, tr.Power[t])
		}
		meterOK := inj == nil || inj.MeterAvailable(t)

		var estWatts float64
		fullCoverage := len(samples) == len(seq)
		if degraded != nil {
			dest, err := degraded.Step(t, samples)
			if err != nil {
				return err
			}
			estWatts = dest.ClusterWatts
			fullCoverage = dest.Coverage == 1
			if dest.Coverage < minuteCoverage {
				minuteCoverage = dest.Coverage
			}
			for id, w := range dest.PerMachine {
				perMachineMinute[id] += w
			}
			if err := emitHealthTransitions(em, t, ids, prevHealth, dest.Health); err != nil {
				return err
			}
		} else {
			if len(samples) == 0 {
				// Every collector failed this second; without degraded
				// mode there is nothing to hold an estimate with.
				skippedSeconds++
				continue
			}
			est, err := predictor.Step(samples)
			if err != nil {
				if inj != nil {
					// All surviving samples were corrupt — an injected
					// data fault, not a program error.
					skippedSeconds++
					continue
				}
				return err
			}
			estWatts = est.ClusterWatts
		}

		// Labels and residuals only exist while the meter is attached.
		if meterOK {
			for k := range samples {
				if err := retrainer.Add(samples[k], meterWatts[k]); err != nil {
					return err
				}
			}
		}
		minuteErr += math.Abs(estWatts - clusterActual)
		minuteActual += clusterActual
		minuteEst += estWatts
		if i%60 == 59 {
			if err := em.event("estimate",
				fmt.Sprintf("t=%4ds  cluster %6.1f W  mean abs err %5.2f W  residual %.1fx baseline",
					i+1, minuteActual/60, minuteErr/60, monitor.EWMA()),
				map[string]any{
					"t_s": i + 1, "cluster_w": round2(minuteActual / 60),
					"mean_abs_err_w": round2(minuteErr / 60),
					"residual_x":     round2(monitor.EWMA()),
				}); err != nil {
				return err
			}
			if degraded != nil {
				machines := make(map[string]any, len(ids))
				for _, id := range ids {
					machines[id] = round2(perMachineMinute[id] / 60)
				}
				if err := em.event("degraded_estimate",
					fmt.Sprintf("t=%4ds  est %6.1f W  coverage %.2f", i+1, minuteEst/60, minuteCoverage),
					map[string]any{
						"t_s": i + 1, "est_w": round2(minuteEst / 60),
						"coverage": minuteCoverage, "machines": machines,
					}); err != nil {
					return err
				}
				minuteCoverage = 1
				perMachineMinute = map[string]float64{}
			}
			minuteErr, minuteActual, minuteEst = 0, 0, 0
		}
		// Residual monitoring is only meaningful when the meter is
		// attached and every machine contributed a fresh sample —
		// comparing a partial estimate against full metered power would
		// raise false drift alarms during outages.
		if meterOK && fullCoverage && monitor.Observe(estWatts, clusterActual) && !drifted {
			drifted = true
			driftCount++
			if err := em.event("drift",
				fmt.Sprintf("t=%4ds  *** DRIFT: residual %.1fx baseline — scheduling retrain",
					i, monitor.EWMA()),
				map[string]any{"t_s": i, "residual_x": round2(monitor.EWMA())}); err != nil {
				return err
			}
		}
		// Retrain once enough post-drift samples are buffered.
		if drifted && i%120 == 119 {
			cm2, err := retrainer.Retrain(models.TechQuadratic, spec)
			if err != nil {
				return err
			}
			p2, err := online.NewPredictor(cm2, seq[0].Names)
			if err != nil {
				return err
			}
			predictor = p2
			if degraded != nil {
				if err := degraded.SwapPredictor(p2); err != nil {
					return err
				}
			}
			monitor.Reset()
			drifted = false
			retrainCount++
			if err := em.event("retrain",
				fmt.Sprintf("t=%4ds  *** retrained on %d buffered seconds; monitor reset",
					i, retrainer.Buffered(seq[0].MachineID)),
				map[string]any{"t_s": i, "buffered_s": retrainer.Buffered(seq[0].MachineID)}); err != nil {
				return err
			}
		}
	}
	if err := em.event("complete", "stream complete",
		map[string]any{"seconds": n, "drift_alarms": driftCount, "retrains": retrainCount,
			"skipped_s": skippedSeconds}); err != nil {
		return err
	}
	if cfg.holdOpen != nil {
		cfg.holdOpen()
	}
	return nil
}

// emitHealthTransitions emits one event per machine whose degraded-mode
// health changed this second: machine_stale, machine_down, or (from
// stale/down back to a fresh sample) machine_recovered.
func emitHealthTransitions(em *emitter, t int, ids []string, prev map[string]online.Health, cur map[string]online.Health) error {
	for _, id := range ids {
		h, ph := cur[id], prev[id]
		if h == ph {
			continue
		}
		prev[id] = h
		fields := map[string]any{"t_s": t, "machine": id, "from": string(ph), "to": string(h)}
		switch h {
		case online.HealthStale:
			if err := em.event("machine_stale",
				fmt.Sprintf("t=%4ds  machine %s STALE (holding last estimate with decay)", t, id),
				fields); err != nil {
				return err
			}
		case online.HealthDown:
			if err := em.event("machine_down",
				fmt.Sprintf("t=%4ds  *** machine %s DOWN (silent past staleness TTL)", t, id),
				fields); err != nil {
				return err
			}
		case online.HealthLive, online.HealthImputed:
			if ph == online.HealthDown || ph == online.HealthStale {
				if err := em.event("machine_recovered",
					fmt.Sprintf("t=%4ds  machine %s RECOVERED (%s)", t, id, h),
					fields); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func rmse(pred, actual []float64) float64 {
	var s float64
	for i := range pred {
		d := pred[i] - actual[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// round2 keeps event payloads readable (two decimals is plenty for watts).
func round2(v float64) float64 { return math.Round(v*100) / 100 }
