package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/online"
	"repro/internal/serve"
)

var errNilLocal = fmt.Errorf("dist: node needs a local serving engine")

// ClusterResponse is the merged result of one scatter-gather. The
// degradation contract: the response is 200 whenever at least one
// requested machine was served; machines on dead, slow, or overloaded
// peers are listed in missing_machines and excluded from cluster_watts,
// and coverage reports the served fraction — the PR-2 coverage semantics
// lifted from per-machine predictors to whole nodes. 503 only when
// nothing at all could be served.
type ClusterResponse struct {
	Status          int                `json:"status"`
	ClusterWatts    float64            `json:"cluster_watts"`
	PerMachine      map[string]float64 `json:"per_machine,omitempty"`
	Coverage        float64            `json:"coverage"`
	MissingMachines []string           `json:"missing_machines,omitempty"`
	ModelVersions   []string           `json:"model_versions,omitempty"`
	// Peers maps each peer that was scattered to, to its outcome:
	// "ok", "local", "open" (breaker), "down", "degraded: <why>".
	Peers map[string]string `json:"peers"`
	Error string            `json:"error,omitempty"`
}

// peerResult is one peer's slice of the gather.
type peerResult struct {
	peerID   string
	outcome  string
	perMach  map[string]float64
	versions []string
}

// handleCluster is the /v1/estimate/cluster front door: split the
// snapshot by owner, serve the local slice directly, scatter the rest
// with per-peer deadlines, and merge whatever came back.
func (n *Node) handleCluster(w http.ResponseWriter, r *http.Request) {
	var req serve.EstimateRequest
	body, err := readBody(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ClusterResponse{Status: http.StatusBadRequest, Error: err.Error()})
		return
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, ClusterResponse{Status: http.StatusBadRequest, Error: "parsing body: " + err.Error()})
		return
	}
	if len(req.Samples) == 0 {
		writeJSON(w, http.StatusBadRequest, ClusterResponse{Status: http.StatusBadRequest, Error: "no samples"})
		return
	}

	// Split the snapshot by owning peer.
	byPeer := map[string][]serve.SampleJSON{}
	for _, s := range req.Samples {
		owner := n.part.Owner(s.MachineID).ID
		byPeer[owner] = append(byPeer[owner], s)
	}

	results := make(chan peerResult, len(byPeer))
	var wg sync.WaitGroup
	for peerID, samples := range byPeer {
		wg.Add(1)
		go func(peerID string, samples []serve.SampleJSON) {
			defer wg.Done()
			if peerID == n.part.Self() {
				results <- n.gatherLocal(samples, req.DeadlineMS)
				return
			}
			results <- n.gatherRemote(peerID, samples, req.DeadlineMS)
		}(peerID, samples)
	}
	wg.Wait()
	close(results)

	resp := ClusterResponse{PerMachine: map[string]float64{}, Peers: map[string]string{}}
	versions := map[string]bool{}
	for pr := range results {
		resp.Peers[pr.peerID] = pr.outcome
		for m, watts := range pr.perMach {
			resp.PerMachine[m] = watts
			resp.ClusterWatts += watts
		}
		for _, v := range pr.versions {
			if v != "" {
				versions[v] = true
			}
		}
	}
	for v := range versions {
		resp.ModelVersions = append(resp.ModelVersions, v)
	}
	sort.Strings(resp.ModelVersions)
	for _, s := range req.Samples {
		if _, ok := resp.PerMachine[s.MachineID]; !ok {
			resp.MissingMachines = append(resp.MissingMachines, s.MachineID)
		}
	}
	sort.Strings(resp.MissingMachines)
	resp.Coverage = float64(len(resp.PerMachine)) / float64(len(req.Samples))
	coverageGauge.Set(resp.Coverage)

	if len(resp.PerMachine) == 0 {
		resp.Status = http.StatusServiceUnavailable
		resp.Error = "no peer could serve any requested machine"
	} else {
		resp.Status = http.StatusOK
	}
	writeJSON(w, resp.Status, resp)
}

// gatherLocal serves this node's own slice through the local engine.
// Overload and deadline failures degrade exactly like a slow peer: the
// machines go missing, the rest of the cluster answer survives.
func (n *Node) gatherLocal(samples []serve.SampleJSON, deadlineMS float64) peerResult {
	pr := peerResult{peerID: n.part.Self(), outcome: "local"}
	in := make([]online.Sample, len(samples))
	for i, s := range samples {
		in[i] = online.Sample{MachineID: s.MachineID, Platform: s.Platform, Counters: s.Counters}
	}
	deadline := time.Duration(deadlineMS * float64(time.Millisecond))
	res, err := n.cfg.Local.Estimate(in, deadline, nil)
	if res != nil {
		pr.perMach = res.PerMachine
		pr.versions = res.Versions
	}
	if err != nil {
		pr.outcome = "degraded: " + err.Error()
	}
	return pr
}

// gatherRemote calls one owning peer, guarded by its breaker and subject
// to injected node-level chaos. Failure taxonomy: transport errors and
// 5xx trip the breaker (the peer itself is sick); 429/503/504 do not
// (the peer answered — it is overloaded, not dead).
func (n *Node) gatherRemote(peerID string, samples []serve.SampleJSON, deadlineMS float64) peerResult {
	pr := peerResult{peerID: peerID}
	peer, _ := n.part.Peer(peerID)
	brk := n.breaker(peerID)
	if brk != nil && !brk.Allow() {
		pr.outcome = "open"
		return pr
	}

	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.PeerDeadline)
	defer cancel()

	// Node-level chaos rides the same second index as machine faults.
	if inj := n.cfg.Injector; inj != nil {
		t := n.simSecond()
		if inj.PeerDown(peerID, t) {
			pr.outcome = "down"
			n.fail(peerID, brk)
			return pr
		}
		if inj.PeerPartitioned(peerID, t) {
			<-ctx.Done() // partition: the call hangs until its deadline
			pr.outcome = "down"
			n.fail(peerID, brk)
			return pr
		}
		if ms := inj.PeerLatencyMS(peerID, t, 0); ms > 0 {
			select {
			case <-time.After(time.Duration(ms) * time.Millisecond):
			case <-ctx.Done():
				pr.outcome = "down"
				n.fail(peerID, brk)
				return pr
			}
		}
	}

	reqBody, err := json.Marshal(serve.EstimateRequest{Samples: samples, DeadlineMS: deadlineMS})
	if err != nil {
		pr.outcome = "degraded: " + err.Error()
		return pr
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+peer.Addr+"/v1/estimate", bytes.NewReader(reqBody))
	if err != nil {
		pr.outcome = "degraded: " + err.Error()
		return pr
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpResp, err := n.cfg.Client.Do(httpReq)
	if err != nil {
		pr.outcome = "down"
		n.fail(peerID, brk)
		return pr
	}
	defer httpResp.Body.Close()

	var er serve.EstimateResponse
	decodeErr := json.NewDecoder(httpResp.Body).Decode(&er)
	switch {
	case httpResp.StatusCode == http.StatusOK && decodeErr == nil:
		pr.perMach = er.PerMachine
		pr.versions = []string{er.ModelVersion}
		pr.outcome = "ok"
		n.ok(peerID, brk)
	case httpResp.StatusCode >= http.StatusInternalServerError &&
		httpResp.StatusCode != http.StatusServiceUnavailable &&
		httpResp.StatusCode != http.StatusGatewayTimeout:
		pr.outcome = "down"
		n.fail(peerID, brk)
	default:
		// The peer answered: overloaded (429), model-less (503), late
		// (504), or misdirected (421, stale partition view). Its machines
		// are missing from this snapshot but the node is alive.
		pr.outcome = fmt.Sprintf("degraded: peer status %d", httpResp.StatusCode)
		n.ok(peerID, brk)
	}
	return pr
}

// ok and fail update breaker plus health gauge together.
func (n *Node) ok(peerID string, brk *Breaker) {
	if brk != nil {
		brk.Success()
	}
	n.notePeer(peerID, true)
}

func (n *Node) fail(peerID string, brk *Breaker) {
	if brk != nil {
		brk.Failure()
	}
	n.notePeer(peerID, false)
}

// readBody caps and reads one request body.
func readBody(r *http.Request) ([]byte, error) {
	defer r.Body.Close()
	buf := &bytes.Buffer{}
	if _, err := buf.ReadFrom(http.MaxBytesReader(nil, r.Body, 64<<20)); err != nil {
		return nil, fmt.Errorf("reading body: %w", err)
	}
	return buf.Bytes(), nil
}

// writeJSON mirrors the serve package's response helper.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone
}
