package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/control"
	"repro/internal/registry"
)

// ControlSchema identifies the power-capping control benchmark document
// (BENCH_control.json); bump on incompatible change.
const ControlSchema = "chaos-bench-control/v1"

// ControlDoc is the control benchmark document: at each fleet size, an
// uncapped twin establishes per-rack peaks and baseline throughput, then
// the model-predictive controller holds the same racks to 80% of peak
// and we score it against the simulator's hidden ground-truth meter.
type ControlDoc struct {
	Schema         string `json:"schema"`
	GoVersion      string `json:"go_version"`
	NumCPU         int    `json:"num_cpu"`
	Seed           int64  `json:"seed"`
	SimSeconds     int64  `json:"sim_seconds"`
	IntervalS      int64  `json:"interval_s"`
	BudgetFraction float64 `json:"budget_fraction"`
	// ReproVerified is set after the smallest cell is run twice and both
	// runs produced identical digests and served-throughput totals.
	ReproVerified bool          `json:"repro_verified"`
	Cells         []ControlCell `json:"cells"`
}

// ControlCell is one fleet-size measurement of the closed control loop.
type ControlCell struct {
	Machines int    `json:"machines"`
	Grid     string `json:"grid"`
	Budgets  int    `json:"budgets"`
	// CompliancePct is the share of budgeted (rack, second) samples
	// outside the settling window where hidden ground truth stayed at or
	// under budget (with the 1.5% meter-error allowance).
	CompliancePct float64 `json:"compliance_pct"`
	// ThroughputRetention is capped fleet CPU-seconds served over the
	// uncapped twin's — what the budget actually cost.
	ThroughputRetention float64 `json:"throughput_retention"`
	Ticks               int64   `json:"ticks"`
	Decisions           int64   `json:"decisions"`
	FreqActuations      int64   `json:"freq_actuations"`
	Migrations          int64   `json:"migrations"`
	DecisionsPerSec     float64 `json:"decisions_per_sec"`
	SimSecondsPerSec    float64 `json:"sim_seconds_per_sec"`
	WallMS              float64 `json:"wall_ms"`
	// Digest covers every machine record and control record of the
	// capped run; same seed and size must reproduce it bit for bit.
	Digest string `json:"digest"`
}

// controlGrid mirrors clusterGrid but keeps the 100-machine cell wide
// enough (2 racks) that budgets plus spare capacity both exist.
func controlGrid(n int) (rows, racks, perRack int, err error) {
	switch n {
	case 100:
		return 2, 2, 25, nil
	case 1000:
		return 5, 5, 40, nil
	case 20000:
		return 10, 50, 40, nil
	}
	return clusterGrid(n)
}

// controlSpec builds a Core2 fleet with the heavy/idle mix the control
// tests use: heavy machines give the controller real work, idle ones are
// migration headroom.
func controlSpec(n int, seed int64) (*cluster.Spec, error) {
	rows, racks, perRack, err := controlGrid(n)
	if err != nil {
		return nil, err
	}
	return &cluster.Spec{
		Version: cluster.SpecVersion,
		Name:    fmt.Sprintf("bench-ctl-%d", n),
		Seed:    seed,
		Grid: &cluster.Grid{
			Rows: rows, RacksPerRow: racks, MachinesPerRack: perRack,
			Platforms: []cluster.Weighted{{Name: "Core2", Weight: 1}},
			Profiles: []cluster.Weighted{
				{Name: "heavy", Weight: 0.65},
				{Name: "idle", Weight: 0.35},
			},
		},
	}, nil
}

// controlRacks picks which racks get budgets: row-0, capped at five so
// the scoring cost stays proportionate at 20k machines.
func controlRacks(n int) ([]string, error) {
	_, racks, _, err := controlGrid(n)
	if err != nil {
		return nil, err
	}
	if racks > 5 {
		racks = 5
	}
	out := make([]string, racks)
	for i := range out {
		out[i] = fmt.Sprintf("row-0/rack-%d", i)
	}
	return out, nil
}

const (
	ctlIntervalS      = int64(15)
	ctlBudgetFraction = 0.80
	ctlMeterTol       = 1.015
)

// runControlCell measures one fleet size: uncapped twin for peaks and
// baseline throughput, then the capped run scored per budgeted rack per
// second against ground truth.
func runControlCell(n int, seed, simSeconds int64, reg *registry.Registry) (ControlCell, error) {
	spec, err := controlSpec(n, seed)
	if err != nil {
		return ControlCell{}, err
	}
	rackNames, err := controlRacks(n)
	if err != nil {
		return ControlCell{}, err
	}
	build := func() (*cluster.Topology, *cluster.ClusterSimulator, []*cluster.Level, error) {
		topo, err := cluster.Build(spec)
		if err != nil {
			return nil, nil, nil, err
		}
		levels := make([]*cluster.Level, len(rackNames))
		for i, r := range rackNames {
			l, ok := topo.FindLevel(r)
			if !ok {
				return nil, nil, nil, fmt.Errorf("size %d: rack %s missing", n, r)
			}
			levels[i] = l
		}
		return topo, cluster.NewSimulator(topo), levels, nil
	}

	// Uncapped twin: per-rack ground-truth peaks and fleet throughput.
	_, csU, levelsU, err := build()
	if err != nil {
		return ControlCell{}, err
	}
	peaks := make([]float64, len(levelsU))
	for ts := int64(1); ts <= simSeconds; ts++ {
		csU.RunUntil(ts)
		for i, l := range levelsU {
			if gt := l.GroundTruthWatts(); gt > peaks[i] {
				peaks[i] = gt
			}
		}
	}
	servedUncapped := csU.ServedCPU()
	if servedUncapped <= 0 {
		return ControlCell{}, fmt.Errorf("size %d: uncapped twin served nothing", n)
	}

	pol := &control.Policy{
		Version:              control.PolicyVersion,
		Name:                 fmt.Sprintf("bench-%d", n),
		IntervalS:            ctlIntervalS,
		MaxActuationsPerTick: 12,
		Migration:            control.MigrationPolicy{Enabled: true, MaxPerTick: 12},
	}
	minBudget := math.Inf(1)
	for i, r := range rackNames {
		b := peaks[i] * ctlBudgetFraction
		pol.Budgets = append(pol.Budgets, control.Budget{Level: r, Watts: b})
		if b < minBudget {
			minBudget = b
		}
	}
	pol.HysteresisWatts = minBudget * 0.04
	if err := pol.Validate(); err != nil {
		return ControlCell{}, err
	}

	// Capped run: score ground truth per budgeted rack per second.
	_, cs, levels, err := build()
	if err != nil {
		return ControlCell{}, err
	}
	ctl, err := control.New(cs, control.Config{Policy: pol, Registry: reg})
	if err != nil {
		return ControlCell{}, err
	}
	ctl.Start()
	settle := 2 * ctlIntervalS
	var samples, violations int64
	start := time.Now()
	for ts := int64(1); ts <= simSeconds; ts++ {
		cs.RunUntil(ts)
		if ts <= settle {
			continue
		}
		for i, l := range levels {
			samples++
			if l.GroundTruthWatts() > pol.Budgets[i].Watts*ctlMeterTol {
				violations++
			}
		}
	}
	wall := time.Since(start)
	ticks, decisions, freqActs, migActs := ctl.Stats()
	if samples == 0 {
		return ControlCell{}, fmt.Errorf("size %d: no scored seconds", n)
	}
	rows, racks, perRack, _ := controlGrid(n)
	cell := ControlCell{
		Machines:            n,
		Grid:                fmt.Sprintf("%dx%dx%d", rows, racks, perRack),
		Budgets:             len(rackNames),
		CompliancePct:       math.Round((1-float64(violations)/float64(samples))*1e4) / 100,
		ThroughputRetention: math.Round(cs.ServedCPU()/servedUncapped*1e4) / 1e4,
		Ticks:               ticks,
		Decisions:           decisions,
		FreqActuations:      freqActs,
		Migrations:          migActs,
		WallMS:              math.Round(wall.Seconds()*1e4) / 10,
		Digest:              cs.Digest(),
	}
	if s := wall.Seconds(); s > 0 {
		cell.DecisionsPerSec = math.Round(float64(decisions)/s*10) / 10
		cell.SimSecondsPerSec = math.Round(float64(simSeconds)/s*10) / 10
	}
	return cell, nil
}

func runControlBench(w io.Writer, out string, seed int64, sizes []int, simSeconds int64) error {
	if simSeconds < 10*ctlIntervalS {
		return fmt.Errorf("-sim-seconds must be ≥ %d for -control (ten loop intervals)", 10*ctlIntervalS)
	}
	// One bootstrap model serves every cell — same as the CLIs: trained
	// on calibration telemetry, admitted to a registry, never shown the
	// simulator's ground truth.
	cm, err := control.Bootstrap([]string{"Core2"}, seed)
	if err != nil {
		return err
	}
	reg := registry.New()
	if err := reg.Add("boot-1", cm, registry.Meta{Description: "control bench bootstrap", Source: "telemetry"}); err != nil {
		return err
	}
	doc := &ControlDoc{
		Schema: ControlSchema, GoVersion: runtime.Version(), NumCPU: runtime.NumCPU(),
		Seed: seed, SimSeconds: simSeconds,
		IntervalS: ctlIntervalS, BudgetFraction: ctlBudgetFraction,
	}
	for _, n := range sizes {
		cell, err := runControlCell(n, seed, simSeconds, reg)
		if err != nil {
			return err
		}
		doc.Cells = append(doc.Cells, cell)
		fmt.Fprintf(w, "machines=%-6d compliance %6.2f%%  retention %.4f  %8.1f decisions/s  %7.1f sim-s/s\n",
			n, cell.CompliancePct, cell.ThroughputRetention, cell.DecisionsPerSec, cell.SimSecondsPerSec)
	}
	// Reproducibility: the smallest cell rerun must replay the identical
	// machine + control record stream.
	rerun, err := runControlCell(sizes[0], seed, simSeconds, reg)
	if err != nil {
		return err
	}
	if rerun.Digest != doc.Cells[0].Digest {
		return fmt.Errorf("size %d not reproducible: digest %s then %s",
			sizes[0], doc.Cells[0].Digest, rerun.Digest)
	}
	doc.ReproVerified = true

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s (%d cells, repro verified)\n", out, len(doc.Cells))
	return nil
}

// checkControlDoc validates a control benchmark document. Beyond shape,
// it enforces the control contract the e2e test establishes: high cap
// compliance without giving up throughput, at every fleet size.
func checkControlDoc(path string, data []byte, w io.Writer) error {
	var doc ControlDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if doc.Schema != ControlSchema {
		return fmt.Errorf("%s: schema %q, want %q", path, doc.Schema, ControlSchema)
	}
	if len(doc.Cells) < 2 {
		return fmt.Errorf("%s: %d cells, want at least 2 fleet sizes", path, len(doc.Cells))
	}
	if !doc.ReproVerified {
		return fmt.Errorf("%s: repro_verified is false", path)
	}
	for i, c := range doc.Cells {
		if c.Machines <= 0 || c.Budgets <= 0 {
			return fmt.Errorf("%s: cell %d missing fleet or budgets", path, i)
		}
		if c.CompliancePct < 95 {
			return fmt.Errorf("%s: cell %d (%d machines) compliance %.2f%%, want ≥ 95%%", path, i, c.Machines, c.CompliancePct)
		}
		// The floor is 0.80 rather than the e2e test's 0.90 because the
		// 100-machine cell budgets half its fleet (2 of 4 racks), so
		// fleet-wide retention is structurally lower there.
		if c.ThroughputRetention < 0.80 || c.ThroughputRetention > 1.001 {
			return fmt.Errorf("%s: cell %d retention %v, want [0.80, 1]", path, i, c.ThroughputRetention)
		}
		if c.Ticks <= 0 || c.Decisions <= 0 || c.FreqActuations <= 0 {
			return fmt.Errorf("%s: cell %d controller never acted", path, i)
		}
		if c.DecisionsPerSec <= 0 || c.SimSecondsPerSec <= 0 {
			return fmt.Errorf("%s: cell %d has no throughput", path, i)
		}
		if len(c.Digest) != 64 {
			return fmt.Errorf("%s: cell %d missing digest", path, i)
		}
		if i > 0 && c.Machines <= doc.Cells[i-1].Machines {
			return fmt.Errorf("%s: cells not ordered by fleet size", path)
		}
	}
	large := doc.Cells[len(doc.Cells)-1]
	fmt.Fprintf(w, "%s: ok — %d fleet sizes up to %d machines, %.2f%% compliant at the largest\n",
		path, len(doc.Cells), large.Machines, large.CompliancePct)
	return nil
}
