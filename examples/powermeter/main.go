// Powermeter: Joulemeter-style per-process power metering (the Kansal et
// al. use case the paper cites in §II). A CHAOS machine model predicts a
// machine's power from OS counters; the attribution layer then splits the
// dynamic part among the worker processes using their per-process
// counters — giving software energy metering with no hardware at all.
package main

import (
	"fmt"
	"log"

	"repro/internal/attribution"
	"repro/internal/core"
	"repro/internal/featsel"
	"repro/internal/models"
	"repro/internal/trace"
)

func main() {
	ds, err := core.Collect("Opteron", 3, []string{"Sort"}, 2, 29)
	if err != nil {
		log.Fatal(err)
	}
	sel, err := ds.SelectFeatures(featsel.Options{})
	if err != nil {
		log.Fatal(err)
	}
	spec := core.ClusterSpec(sel.Features)

	var train []*trace.Trace
	for _, t := range trace.ByRun(ds.ByWorkload["Sort"])[0] {
		train = append(train, trace.Subsample(t, 2))
	}
	mm, err := models.FitMachineModel(models.TechQuadratic, train, spec,
		models.FitOptions{MaxKnots: 8})
	if err != nil {
		log.Fatal(err)
	}

	// Attribution weights follow the model's feature categories.
	weights, err := attribution.WeightsFromFeatures(sel.Features, ds.Registry)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attribution weights from model features: CPU %.2f, IO %.2f, Mem %.2f, Net %.2f\n\n",
		weights.CPU, weights.IO, weights.Memory, weights.Network)

	// Meter one machine over a held-out run. The synthetic per-process
	// counters (Process(workerN)\...) play the role of the per-VM
	// counters Joulemeter reads.
	target := trace.ByRun(ds.ByWorkload["Sort"])[1][0]
	pred, err := mm.PredictTrace(target)
	if err != nil {
		log.Fatal(err)
	}
	meter := attribution.NewMeter(weights)
	procCols := make(map[string][3]int) // worker -> cpu, io, ws columns
	for w := 0; w < 4; w++ {
		name := fmt.Sprintf("worker%d", w)
		cpu, ok1 := indexOf(target, fmt.Sprintf(`Process(%s)\%% Processor Time`, name))
		io, ok2 := indexOf(target, fmt.Sprintf(`Process(%s)\IO Data Bytes/sec`, name))
		ws, ok3 := indexOf(target, fmt.Sprintf(`Process(%s)\Working Set`, name))
		if !ok1 || !ok2 || !ok3 {
			log.Fatalf("per-process counters for %s missing from the trace", name)
		}
		procCols[name] = [3]int{cpu, io, ws}
	}
	for i := 0; i < target.Len(); i++ {
		var procs []attribution.ProcessActivity
		for name, cols := range procCols {
			procs = append(procs, attribution.ProcessActivity{
				Name:         name,
				CPUPercent:   target.X.At(i, cols[0]),
				IOBytes:      target.X.At(i, cols[1]),
				MemoryBytes:  target.X.At(i, cols[2]),
				NetworkBytes: target.X.At(i, cols[1]) * 0.5,
			})
		}
		if err := meter.Step(pred[i], target.IdleWatts, procs); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("per-process energy over %d s on %s (modeled, no hardware):\n", meter.Seconds(), target.MachineID)
	for _, s := range meter.EnergyWh() {
		fmt.Printf("  %-10s %6.2f Wh\n", s.Name, s.Watts)
	}
	osWh, idleWh := meter.OverheadWh()
	fmt.Printf("  %-10s %6.2f Wh\n", "(os)", osWh)
	fmt.Printf("  %-10s %6.2f Wh (static floor)\n", "(idle)", idleWh)
}

func indexOf(t *trace.Trace, name string) (int, bool) {
	for i, n := range t.Names {
		if n == name {
			return i, true
		}
	}
	return 0, false
}
