// Package trace holds the measured datasets the modeling pipeline works
// from: per-machine time series of OS counter vectors plus metered wall
// power, sampled at 1 Hz — the moral equivalent of the paper's
// Perfmon+WattsUp logs. It also provides CSV persistence, pooling, and the
// run-based cross-validation splits the evaluation uses.
package trace

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/mathx"
)

// Trace is one machine's log for one workload run.
type Trace struct {
	Platform  string
	Workload  string
	MachineID string
	Run       int

	Names []string      // counter names, one per column of X
	X     *mathx.Matrix // T x len(Names) counter samples
	Power []float64     // metered wall power, watts, len T

	// TruePower is the simulator's hidden ground truth. It is carried for
	// experiment diagnostics only; the modeling pipeline never reads it.
	TruePower []float64

	// IdleWatts is the machine's measured idle power (the Power_idle term
	// of the DRE metric).
	IdleWatts float64
}

// Len returns the number of 1 Hz samples.
func (t *Trace) Len() int { return len(t.Power) }

// Validate checks internal consistency.
func (t *Trace) Validate() error {
	if t.X == nil {
		return fmt.Errorf("trace: nil counter matrix")
	}
	if t.X.Rows != len(t.Power) {
		return fmt.Errorf("trace: %d counter rows but %d power samples", t.X.Rows, len(t.Power))
	}
	if t.X.Cols != len(t.Names) {
		return fmt.Errorf("trace: %d counter columns but %d names", t.X.Cols, len(t.Names))
	}
	if len(t.TruePower) != 0 && len(t.TruePower) != len(t.Power) {
		return fmt.Errorf("trace: %d true-power samples but %d metered", len(t.TruePower), len(t.Power))
	}
	return nil
}

// Builder accumulates samples row by row.
type Builder struct {
	t    Trace
	rows [][]float64
}

// NewBuilder starts a trace with the given metadata and counter names.
func NewBuilder(platform, workload, machineID string, run int, names []string, idleWatts float64) *Builder {
	return &Builder{t: Trace{
		Platform: platform, Workload: workload, MachineID: machineID,
		Run: run, Names: append([]string(nil), names...), IdleWatts: idleWatts,
	}}
}

// Add appends one second of samples. It keeps its own copy of row.
func (b *Builder) Add(row []float64, meterWatts, trueWatts float64) error {
	if len(row) != len(b.t.Names) {
		return fmt.Errorf("trace: row has %d values, want %d", len(row), len(b.t.Names))
	}
	b.rows = append(b.rows, append([]float64(nil), row...))
	b.t.Power = append(b.t.Power, meterWatts)
	b.t.TruePower = append(b.t.TruePower, trueWatts)
	return nil
}

// Build finalizes the trace.
func (b *Builder) Build() (*Trace, error) {
	x, err := mathx.FromRows(b.rows)
	if err != nil {
		return nil, err
	}
	if len(b.rows) == 0 {
		x = mathx.NewMatrix(0, len(b.t.Names))
	}
	t := b.t
	t.X = x
	return &t, t.Validate()
}

// Pool concatenates the rows of several traces (which must share the same
// counter names in the same order) into a single design matrix and power
// vector — the paper's strategy of pooling counters and power across all
// machines in a cluster for model fitting.
func Pool(traces []*Trace) (*mathx.Matrix, []float64, error) {
	if len(traces) == 0 {
		return nil, nil, fmt.Errorf("trace: nothing to pool")
	}
	names := traces[0].Names
	total := 0
	for _, t := range traces {
		if err := t.Validate(); err != nil {
			return nil, nil, err
		}
		if len(t.Names) != len(names) {
			return nil, nil, fmt.Errorf("trace: pooling traces with different counter sets (%d vs %d)", len(t.Names), len(names))
		}
		for i := range names {
			if t.Names[i] != names[i] {
				return nil, nil, fmt.Errorf("trace: counter name mismatch at %d: %q vs %q", i, t.Names[i], names[i])
			}
		}
		total += t.Len()
	}
	x := mathx.NewMatrix(total, len(names))
	y := make([]float64, 0, total)
	row := 0
	for _, t := range traces {
		copy(x.Data[row*x.Cols:], t.X.Data)
		row += t.X.Rows
		y = append(y, t.Power...)
	}
	return x, y, nil
}

// Subsample returns a copy of t keeping every step-th sample, used to make
// training sets ~10x smaller than test sets as in the paper's evaluation.
func Subsample(t *Trace, step int) *Trace {
	if step <= 1 {
		return t
	}
	var rows []int
	for i := 0; i < t.Len(); i += step {
		rows = append(rows, i)
	}
	out := &Trace{
		Platform: t.Platform, Workload: t.Workload, MachineID: t.MachineID,
		Run: t.Run, Names: t.Names, IdleWatts: t.IdleWatts,
		X: t.X.SelectRows(rows),
	}
	for _, i := range rows {
		out.Power = append(out.Power, t.Power[i])
		if len(t.TruePower) > 0 {
			out.TruePower = append(out.TruePower, t.TruePower[i])
		}
	}
	return out
}

// SelectColumns returns a copy of t keeping only the named counters, in
// the given order.
func SelectColumns(t *Trace, names []string) (*Trace, error) {
	idx := make([]int, 0, len(names))
	byName := map[string]int{}
	for i, n := range t.Names {
		byName[n] = i
	}
	for _, n := range names {
		j, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("trace: counter %q not in trace", n)
		}
		idx = append(idx, j)
	}
	return &Trace{
		Platform: t.Platform, Workload: t.Workload, MachineID: t.MachineID,
		Run: t.Run, Names: append([]string(nil), names...), IdleWatts: t.IdleWatts,
		X: t.X.SelectCols(idx), Power: t.Power, TruePower: t.TruePower,
	}, nil
}

// ByRun groups traces by run number, returning runs in ascending order.
func ByRun(traces []*Trace) map[int][]*Trace {
	out := map[int][]*Trace{}
	for _, t := range traces {
		out[t.Run] = append(out[t.Run], t)
	}
	return out
}

// Runs returns the sorted distinct run numbers present.
func Runs(traces []*Trace) []int {
	seen := map[int]bool{}
	var out []int
	for _, t := range traces {
		if !seen[t.Run] {
			seen[t.Run] = true
			out = append(out, t.Run)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// WriteCSV serializes a trace: metadata comment lines, a header row, then
// one row per second (power, true power, counters...).
func WriteCSV(w io.Writer, t *Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# platform=%s workload=%s machine=%s run=%d idle_watts=%g\n",
		t.Platform, t.Workload, t.MachineID, t.Run, t.IdleWatts)
	cw := csv.NewWriter(bw)
	header := append([]string{"power_w", "true_power_w"}, t.Names...)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for i := 0; i < t.Len(); i++ {
		row[0] = strconv.FormatFloat(t.Power[i], 'g', -1, 64)
		tp := 0.0
		if len(t.TruePower) > 0 {
			tp = t.TruePower[i]
		}
		row[1] = strconv.FormatFloat(tp, 'g', -1, 64)
		for j := 0; j < t.X.Cols; j++ {
			row[2+j] = strconv.FormatFloat(t.X.At(i, j), 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	meta, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("trace: reading metadata line: %w", err)
	}
	t := &Trace{}
	meta = strings.TrimSpace(strings.TrimPrefix(meta, "#"))
	for _, field := range strings.Fields(meta) {
		kv := strings.SplitN(field, "=", 2)
		if len(kv) != 2 {
			continue
		}
		switch kv[0] {
		case "platform":
			t.Platform = kv[1]
		case "workload":
			t.Workload = kv[1]
		case "machine":
			t.MachineID = kv[1]
		case "run":
			if t.Run, err = strconv.Atoi(kv[1]); err != nil {
				return nil, fmt.Errorf("trace: bad run %q: %w", kv[1], err)
			}
		case "idle_watts":
			if t.IdleWatts, err = strconv.ParseFloat(kv[1], 64); err != nil {
				return nil, fmt.Errorf("trace: bad idle_watts %q: %w", kv[1], err)
			}
		}
	}
	cr := csv.NewReader(br)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if len(header) < 3 || header[0] != "power_w" || header[1] != "true_power_w" {
		return nil, fmt.Errorf("trace: unexpected header %v", header)
	}
	t.Names = append([]string(nil), header[2:]...)
	var rows [][]float64
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: reading row: %w", err)
		}
		p, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad power %q: %w", rec[0], err)
		}
		tp, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad true power %q: %w", rec[1], err)
		}
		row := make([]float64, len(rec)-2)
		for j := 2; j < len(rec); j++ {
			if row[j-2], err = strconv.ParseFloat(rec[j], 64); err != nil {
				return nil, fmt.Errorf("trace: bad counter value %q: %w", rec[j], err)
			}
		}
		t.Power = append(t.Power, p)
		t.TruePower = append(t.TruePower, tp)
		rows = append(rows, row)
	}
	t.X, err = mathx.FromRows(rows)
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		t.X = mathx.NewMatrix(0, len(t.Names))
	}
	return t, t.Validate()
}
