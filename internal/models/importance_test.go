package models

import (
	"testing"

	"repro/internal/counters"
	"repro/internal/trace"
)

func TestFeatureImportanceRanksDrivers(t *testing.T) {
	// Power depends strongly on utilization, weakly on frequency (in this
	// synthetic trace freq varies but with a small coefficient).
	train := []*trace.Trace{powerTrace(t, "Core2", "m0", 0, 500, 61)}
	mm, err := FitMachineModel(TechQuadratic, train, clusterSpec(), FitOptions{MaxKnots: 8})
	if err != nil {
		t.Fatal(err)
	}
	imp, err := FeatureImportance(mm, train)
	if err != nil {
		t.Fatalf("FeatureImportance: %v", err)
	}
	if len(imp) != 2 {
		t.Fatalf("importances = %d", len(imp))
	}
	// powerTrace: power = 20 + 0.2*util + 0.002*freq; util spans ~100
	// (swing 20 W), freq spans ~1460 (swing ~2.9 W).
	if imp[0].Feature != counters.CPUTotal {
		t.Errorf("top feature = %s, want utilization", imp[0].Feature)
	}
	if imp[0].Weight < imp[1].Weight*2 {
		t.Errorf("utilization weight %.2f should dominate frequency %.2f", imp[0].Weight, imp[1].Weight)
	}
	if imp[0].Weight < 10 || imp[0].Weight > 30 {
		t.Errorf("utilization swing %.2f W outside expected ~18 W", imp[0].Weight)
	}
}

func TestFeatureImportanceLagColumns(t *testing.T) {
	spec := clusterSpec()
	spec.LagWindow = 2
	train := []*trace.Trace{powerTrace(t, "Core2", "m0", 0, 400, 62)}
	mm, err := FitMachineModel(TechLinear, train, spec, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	imp, err := FeatureImportance(mm, train)
	if err != nil {
		t.Fatal(err)
	}
	if len(imp) != 4 {
		t.Fatalf("importances = %d, want counters + 2 lags", len(imp))
	}
	found := map[string]bool{}
	for _, e := range imp {
		found[e.Feature] = true
	}
	if !found["MHz(t-1)"] || !found["MHz(t-2)"] {
		t.Errorf("lag columns unnamed: %+v", imp)
	}
}

func TestFeatureImportanceValidation(t *testing.T) {
	if _, err := FeatureImportance(nil, nil); err == nil {
		t.Error("expected error for nil model")
	}
	train := []*trace.Trace{powerTrace(t, "Core2", "m0", 0, 300, 63)}
	mm, err := FitMachineModel(TechLinear, train, clusterSpec(), FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FeatureImportance(mm, nil); err == nil {
		t.Error("expected error for no traces")
	}
}

func TestUsedTermsAndMARSOf(t *testing.T) {
	train := []*trace.Trace{powerTrace(t, "Core2", "m0", 0, 400, 64)}
	for _, tech := range Techniques() {
		opts := FitOptions{MaxKnots: 8}
		if tech == TechSwitching {
			opts.FreqCol = 1
		}
		mm, err := FitMachineModel(tech, train, clusterSpec(), opts)
		if err != nil {
			t.Fatalf("fit %s: %v", tech, err)
		}
		if n := UsedTerms(mm.Model); n <= 0 {
			t.Errorf("%s: UsedTerms = %d", tech, n)
		}
		m := MARSOf(mm.Model)
		isMARS := tech == TechPiecewise || tech == TechQuadratic
		if isMARS && m == nil {
			t.Errorf("%s: MARSOf returned nil", tech)
		}
		if !isMARS && m != nil {
			t.Errorf("%s: MARSOf should be nil", tech)
		}
	}
}
