// Package store is the durability layer under the serving stack: atomic
// file replacement (temp file + fsync + rename + directory fsync), an
// append-only journal of CRC32-checksummed length-prefixed records with
// crash recovery (torn-tail truncation, quarantine of mid-file corrupt
// segments), and a periodic checkpointer that snapshots opaque state
// atomically. Everything is stdlib-only and fsync-honest: after Append or
// WriteFileAtomic returns, the bytes survive a kill -9 — a crash loses at
// most the one append that was in flight.
package store

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/obs"
)

// Durability instruments, resolved once so appends stay cheap.
var (
	fsyncsTotal      = obs.Default().Counter("chaos_store_fsyncs_total", nil)
	bytesTotal       = obs.Default().Counter("chaos_store_bytes_total", nil)
	truncatedRecords = obs.Default().Counter("chaos_recovery_truncated_records_total", nil)
	quarantinesTotal = obs.Default().Counter("chaos_recovery_quarantines_total", nil)
	checkpointSecs   = obs.Default().Histogram("chaos_checkpoint_seconds", nil, obs.ExpBuckets(1e-5, 4, 12))
)

// WriteFileAtomic replaces path with data so a crash at any instant leaves
// either the old complete file or the new complete file — never a torn
// mix. The data lands in a temp file in the same directory, is fsynced,
// renamed over the target, and the directory entry is fsynced too (the
// rename itself must survive the crash, not just the bytes).
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return fmt.Errorf("store: creating temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	// Any failure below removes the temp file; the target is untouched.
	fail := func(stage string, err error) error {
		tmp.Close()        //nolint:errcheck // already failing
		os.Remove(tmpName) //nolint:errcheck // best effort
		return fmt.Errorf("store: %s for %s: %w", stage, path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail("writing temp", err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fail("chmod temp", err)
	}
	if err := tmp.Sync(); err != nil {
		return fail("fsync temp", err)
	}
	fsyncsTotal.Inc()
	if err := tmp.Close(); err != nil {
		return fail("closing temp", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fail("renaming temp", err)
	}
	bytesTotal.Add(float64(len(data)))
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames and creates inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: opening dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: fsync dir %s: %w", dir, err)
	}
	fsyncsTotal.Inc()
	return nil
}
