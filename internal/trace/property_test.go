package trace

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestCSVRoundTripProperty: arbitrary traces survive serialization exactly
// (modulo float formatting, which strconv 'g' keeps bit-exact).
func TestCSVRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(55))}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nCols := 1 + r.Intn(6)
		nRows := r.Intn(40)
		names := make([]string, nCols)
		for j := range names {
			names[j] = fmt.Sprintf("Counter %d\\With, Comma And\\Backslash", j)
		}
		b := NewBuilder("P", "W", fmt.Sprintf("m%d", r.Intn(9)), r.Intn(5), names, r.Float64()*100)
		for i := 0; i < nRows; i++ {
			row := make([]float64, nCols)
			for j := range row {
				switch r.Intn(4) {
				case 0:
					row[j] = r.NormFloat64() * math.Pow(10, float64(r.Intn(20)-10))
				case 1:
					row[j] = 0
				case 2:
					row[j] = -r.Float64()
				default:
					row[j] = float64(r.Int63())
				}
			}
			if err := b.Add(row, r.Float64()*500, r.Float64()*500); err != nil {
				return false
			}
		}
		tr, err := b.Build()
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tr); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		if got.Platform != tr.Platform || got.Run != tr.Run || got.MachineID != tr.MachineID {
			return false
		}
		if got.Len() != tr.Len() || got.X.Cols != tr.X.Cols {
			return false
		}
		for i := 0; i < tr.Len(); i++ {
			if got.Power[i] != tr.Power[i] || got.TruePower[i] != tr.TruePower[i] {
				return false
			}
			for j := 0; j < tr.X.Cols; j++ {
				if got.X.At(i, j) != tr.X.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestPoolPreservesRowOrder: pooling concatenates rows in trace order.
func TestPoolPreservesRowOrder(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(56))}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nTraces := 1 + r.Intn(4)
		var traces []*Trace
		var wantPower []float64
		for k := 0; k < nTraces; k++ {
			b := NewBuilder("P", "W", fmt.Sprintf("m%d", k), 0, []string{"c"}, 1)
			n := 1 + r.Intn(10)
			for i := 0; i < n; i++ {
				p := r.Float64() * 100
				wantPower = append(wantPower, p)
				if err := b.Add([]float64{p * 2}, p, p); err != nil {
					return false
				}
			}
			tr, err := b.Build()
			if err != nil {
				return false
			}
			traces = append(traces, tr)
		}
		x, y, err := Pool(traces)
		if err != nil {
			return false
		}
		if len(y) != len(wantPower) {
			return false
		}
		for i := range y {
			if y[i] != wantPower[i] || x.At(i, 0) != wantPower[i]*2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestSubsampleProperty: subsampling keeps every step-th sample and
// preserves values.
func TestSubsampleProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(57))}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		step := 1 + r.Intn(7)
		b := NewBuilder("P", "W", "m", 0, []string{"c"}, 1)
		for i := 0; i < n; i++ {
			if err := b.Add([]float64{float64(i)}, float64(i), float64(i)); err != nil {
				return false
			}
		}
		tr, err := b.Build()
		if err != nil {
			return false
		}
		sub := Subsample(tr, step)
		want := (n + step - 1) / step
		if step <= 1 {
			want = n
		}
		if sub.Len() != want {
			return false
		}
		for i := 0; i < sub.Len(); i++ {
			if sub.Power[i] != float64(i*step) && step > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
