package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/featsel"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/trace"
)

// HeterogeneousResult carries the mixed-cluster composability experiment.
type HeterogeneousResult struct {
	Platforms   []string
	Workload    string
	MeanDRE     float64
	WorstDRE    float64
	PerRunDRE   []float64
	ClusterIdle float64
}

// Heterogeneous reproduces §V-B's composability test: machine models are
// trained on each platform's *homogeneous* cluster, then applied, with no
// refitting, to a mixed Core2+Opteron cluster of twice the size running
// scaled workloads. The paper reports the same worst-case 12% DRE as the
// homogeneous clusters.
func (s *Suite) Heterogeneous(w io.Writer) (*HeterogeneousResult, error) {
	pa, pb := s.pickPlatform("Core2"), s.pickPlatform("Opteron")
	if pa == pb && len(s.Cfg.Platforms) > 1 {
		pa, pb = s.Cfg.Platforms[0], s.Cfg.Platforms[1]
	}
	workload := s.pickWorkload("Sort")

	// Train one machine model per platform on its homogeneous dataset
	// (first run, subsampled — the same budget a CV fold gets).
	var mms []*models.MachineModel
	for _, p := range []string{pa, pb} {
		ds, err := s.Dataset(p)
		if err != nil {
			return nil, err
		}
		fr, err := s.Features(p)
		if err != nil {
			return nil, err
		}
		byRun := trace.ByRun(ds.ByWorkload[workload])
		runs := trace.Runs(ds.ByWorkload[workload])
		var train []*trace.Trace
		for _, t := range byRun[runs[0]] {
			train = append(train, trace.Subsample(t, 2))
		}
		spec := core.ClusterSpec(fr.Features)
		mm, err := models.FitMachineModel(models.TechQuadratic, train, spec,
			models.FitOptions{MaxKnots: 8})
		if err != nil {
			return nil, err
		}
		mms = append(mms, mm)
	}
	cm, err := models.NewClusterModel(mms...)
	if err != nil {
		return nil, err
	}

	// Collect the mixed cluster: Machines of each class.
	mixed := make([]string, 0, 2*s.Cfg.Machines)
	for i := 0; i < s.Cfg.Machines; i++ {
		mixed = append(mixed, pa)
	}
	for i := 0; i < s.Cfg.Machines; i++ {
		mixed = append(mixed, pb)
	}
	hds, err := core.CollectHeterogeneous("Hetero", mixed, []string{workload}, s.Cfg.Runs, s.Cfg.Seed+99)
	if err != nil {
		return nil, err
	}
	res := &HeterogeneousResult{Platforms: mixed, Workload: workload, ClusterIdle: hds.ClusterIdle}
	byRun := trace.ByRun(hds.ByWorkload[workload])
	for _, run := range trace.Runs(hds.ByWorkload[workload]) {
		pred, actual, err := cm.PredictCluster(byRun[run])
		if err != nil {
			return nil, err
		}
		sum, err := metrics.Evaluate(pred, actual, hds.ClusterIdle)
		if err != nil {
			return nil, err
		}
		res.PerRunDRE = append(res.PerRunDRE, sum.DRE)
		res.MeanDRE += sum.DRE
		if sum.DRE > res.WorstDRE {
			res.WorstDRE = sum.DRE
		}
	}
	res.MeanDRE /= float64(len(res.PerRunDRE))

	section(w, fmt.Sprintf("Heterogeneous cluster (%d x %s + %d x %s, %s)",
		s.Cfg.Machines, pa, s.Cfg.Machines, pb, workload))
	fmt.Fprintf(w, "machine models trained on homogeneous clusters, applied unchanged\n")
	fmt.Fprintf(w, "mean cluster DRE %.1f%%, worst %.1f%% (paper: worst-case 12%%)\n",
		res.MeanDRE*100, res.WorstDRE*100)
	return res, nil
}

// Overhead reports the collector's measured per-sample cost as a fraction
// of the 1 Hz sampling interval for every collected dataset (paper: < 1%
// CPU on a mobile-class machine).
func (s *Suite) Overhead(w io.Writer) (map[string]float64, error) {
	out := map[string]float64{}
	section(w, "Collector overhead (fraction of the 1 s sampling interval)")
	for _, p := range s.Cfg.Platforms {
		ds, err := s.Dataset(p)
		if err != nil {
			return nil, err
		}
		out[p] = ds.CollectorOverhead
		fmt.Fprintf(w, "%-9s %.4f%%\n", p, ds.CollectorOverhead*100)
	}
	return out, nil
}

// AblationPooling compares the paper's pooled fitting strategy (one model
// from all machines' data) against fitting on a single machine and
// applying it cluster-wide — quantifying why Algorithm 1 pools.
func (s *Suite) AblationPooling(w io.Writer, platform, workload string) (pooledDRE, singleDRE float64, err error) {
	ds, err := s.Dataset(platform)
	if err != nil {
		return 0, 0, err
	}
	fr, err := s.Features(platform)
	if err != nil {
		return 0, 0, err
	}
	traces := ds.ByWorkload[workload]
	spec := core.ClusterSpec(fr.Features)
	cfg := core.CVConfig{Tech: models.TechQuadratic, Spec: spec}
	cv, err := core.CrossValidate(traces, cfg)
	if err != nil {
		return 0, 0, err
	}
	pooledDRE = cv.Cluster.DRE

	// Single-machine variant: train on machine 0's data only.
	runs := trace.Runs(traces)
	byRun := trace.ByRun(traces)
	var sums []metrics.Summary
	for _, trainRun := range runs {
		train := byRun[trainRun]
		var one *trace.Trace
		for _, t := range train {
			if one == nil || t.MachineID < one.MachineID {
				one = t
			}
		}
		mm, err := models.FitMachineModel(models.TechQuadratic,
			[]*trace.Trace{trace.Subsample(one, 2)}, spec, models.FitOptions{MaxKnots: 8})
		if err != nil {
			return 0, 0, err
		}
		cm, err := models.NewClusterModel(mm)
		if err != nil {
			return 0, 0, err
		}
		for _, testRun := range runs {
			if testRun == trainRun {
				continue
			}
			pred, actual, err := cm.PredictCluster(byRun[testRun])
			if err != nil {
				return 0, 0, err
			}
			idle := 0.0
			for _, t := range byRun[testRun] {
				idle += t.IdleWatts
			}
			sum, err := metrics.Evaluate(pred, actual, idle)
			if err != nil {
				return 0, 0, err
			}
			sums = append(sums, sum)
		}
	}
	singleDRE = metrics.Average(sums).DRE

	section(w, fmt.Sprintf("Ablation: pooled vs single-machine fitting (%s, %s)", platform, workload))
	fmt.Fprintf(w, "pooled (paper)  DRE %.1f%%\nsingle machine  DRE %.1f%%\n",
		pooledDRE*100, singleDRE*100)
	return pooledDRE, singleDRE, nil
}

// AblationCorrThreshold sweeps the step-1 correlation threshold of
// Algorithm 1 (the paper did a sensitivity analysis around 0.95) and
// reports how many features survive to the final set.
func (s *Suite) AblationCorrThreshold(w io.Writer, platform string, thresholds []float64) (map[float64]int, error) {
	if len(thresholds) == 0 {
		thresholds = []float64{0.80, 0.90, 0.95, 0.99}
	}
	ds, err := s.Dataset(platform)
	if err != nil {
		return nil, err
	}
	out := map[float64]int{}
	section(w, fmt.Sprintf("Ablation: correlation-pruning threshold (%s)", platform))
	for _, th := range thresholds {
		res, err := featsel.SelectCluster(ds.AllTraces(), ds.Registry, featsel.Options{CorrThreshold: th})
		if err != nil {
			return nil, err
		}
		out[th] = len(res.Features)
		fmt.Fprintf(w, "|r| > %.2f  ->  %2d features after step 1: %3d\n",
			th, len(res.Features), res.Funnel.AfterCorr)
	}
	return out, nil
}
