package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"repro/internal/counters"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// writeTraces simulates a small cluster and writes trace CSVs for the
// train/predict tools.
func writeTraces(t *testing.T, dir string, runs int) {
	t.Helper()
	c, err := telemetry.New("Core2", 2, 13)
	if err != nil {
		t.Fatal(err)
	}
	traces, err := c.RunWorkload("Prime", runs, 3000)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range traces {
		f, err := os.Create(filepath.Join(dir, filenameFor(i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteCSV(f, tr); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
}

func filenameFor(i int) string { return "t" + string(rune('a'+i)) + ".csv" }

func TestTrainAutoFeatures(t *testing.T) {
	dir := t.TempDir()
	writeTraces(t, dir, 2)
	out := filepath.Join(dir, "model.json")
	if err := run(dir, "quadratic", "auto", out, ""); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var cm models.ClusterModel
	if err := json.Unmarshal(data, &cm); err != nil {
		t.Fatalf("model JSON invalid: %v", err)
	}
	if cm.ByPlatform["Core2"] == nil {
		t.Error("model missing Core2 platform")
	}
	if cm.ByPlatform["Core2"].Model.Technique() != models.TechQuadratic {
		t.Errorf("technique = %s", cm.ByPlatform["Core2"].Model.Technique())
	}
}

func TestTrainExplicitFeatures(t *testing.T) {
	dir := t.TempDir()
	writeTraces(t, dir, 2)
	out := filepath.Join(dir, "model.json")
	feats := counters.CPUTotal + "," + counters.CPUFreqCore0
	if err := run(dir, "switching", feats, out, ""); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run(dir, "linear", "cpu-only", out, ""); err != nil {
		t.Fatalf("run cpu-only: %v", err)
	}
}

func TestTrainErrors(t *testing.T) {
	if err := run(t.TempDir(), "quadratic", "auto", "x.json", ""); err == nil {
		t.Error("expected error for empty trace dir")
	}
	dir := t.TempDir()
	writeTraces(t, dir, 2)
	if err := run(dir, "cubist", "cpu-only", filepath.Join(dir, "m.json"), ""); err == nil {
		t.Error("expected error for unknown technique")
	}
}

func TestLoadTracesRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.csv"), []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadTraces(dir); err == nil {
		t.Error("expected error for malformed CSV")
	}
}

func TestTrainListenServesMetrics(t *testing.T) {
	dir := t.TempDir()
	writeTraces(t, dir, 2)
	out := filepath.Join(dir, "model.json")
	// Capture stdout to learn the bound port.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(dir, "linear", "cpu-only", out, "127.0.0.1:0")
	w.Close()
	os.Stdout = old
	buf, _ := io.ReadAll(r)
	if runErr != nil {
		t.Fatalf("run: %v", runErr)
	}
	m := regexp.MustCompile(`http://([^/]+)/metrics`).FindSubmatch(buf)
	if m == nil {
		t.Fatalf("no listening line in output:\n%s", buf)
	}
	// run already returned so the server is closed; the address line and
	// the span metrics in the default registry prove the wiring.
	if got := obs.Default().Histogram("chaos_span_seconds", obs.Labels{"span": "train.run"}, nil).Count(); got == 0 {
		t.Error("train.run span not recorded")
	}
	if err := run(dir, "linear", "cpu-only", out, "256.0.0.1:bad"); err == nil {
		t.Error("expected error for bad listen address")
	}
}
