package cluster

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"
)

func gridSpec(rows, racks, machines int, seed int64) *Spec {
	return &Spec{
		Version: SpecVersion,
		Name:    "test-dc",
		Seed:    seed,
		Grid: &Grid{
			Rows:            rows,
			RacksPerRow:     racks,
			MachinesPerRack: machines,
			Platforms: []Weighted{
				{Name: "XeonSAS", Weight: 0.5},
				{Name: "Opteron", Weight: 0.3},
				{Name: "Athlon", Weight: 0.2},
			},
			Profiles: []Weighted{
				{Name: "bursty", Weight: 0.5},
				{Name: "diurnal", Weight: 0.2},
				{Name: "steady", Weight: 0.15},
				{Name: "idle", Weight: 0.15},
			},
		},
	}
}

// TestClusterIncrementalMatchesFullRecompute is the Eq. 5 composability
// property: after EVERY processed event, the incrementally maintained
// aggregate at EVERY level of the hierarchy is bit-identical — not
// approximately equal — to a from-scratch recompute of that subtree.
func TestClusterIncrementalMatchesFullRecompute(t *testing.T) {
	topo, err := Build(gridSpec(3, 3, 4, 77))
	if err != nil {
		t.Fatal(err)
	}
	cs := NewSimulator(topo)
	const end = 900
	checked := 0
	for cs.HasPendingEvents() && cs.PeekNextEventTime() <= end {
		if !cs.ProcessNextEvent() {
			t.Fatal("ProcessNextEvent returned false with pending events")
		}
		for _, l := range topo.Levels {
			full := l.FullRecompute()
			inc := l.Watts()
			if math.Float64bits(full) != math.Float64bits(inc) {
				t.Fatalf("event %d: level %q incremental %v (bits %x) != full %v (bits %x)",
					cs.Events(), l.Name, inc, math.Float64bits(inc), full, math.Float64bits(full))
			}
		}
		checked++
	}
	if checked < 1000 {
		t.Fatalf("only %d events in %d simulated seconds; fleet looks stuck", checked, end)
	}
	// Root must aggregate a plausible fleet: 36 machines, each ≥ idle watts.
	var idleSum float64
	for _, m := range topo.Machines {
		idleSum += m.Machine.IdleWatts()
	}
	if got := topo.Root.Watts(); got < idleSum || got > idleSum*5 {
		t.Fatalf("datacenter watts %v implausible (fleet idle floor %v)", got, idleSum)
	}
}

// TestClusterDirtyPathIsSparse: an event must dirty only its machine's
// path to the root, leaving sibling subtrees untouched — the property
// that makes 20k-machine estimates O(changed) instead of O(n).
func TestClusterDirtyPathIsSparse(t *testing.T) {
	topo, err := Build(gridSpec(4, 4, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	cs := NewSimulator(topo)
	topo.Root.Watts() // settle: everything clean
	for _, l := range topo.Levels {
		if l.dirty {
			t.Fatalf("level %q still dirty after full read", l.Name)
		}
	}
	if !cs.ProcessNextEvent() {
		t.Fatal("no events")
	}
	dirty := 0
	for _, l := range topo.Levels {
		if l.dirty {
			dirty++
		}
	}
	// One machine changed: exactly its rack, its row, and the root.
	if dirty != 3 {
		t.Fatalf("one event dirtied %d levels, want 3 (rack, row, root)", dirty)
	}
}

// TestClusterIdleFleetHasNoEvents: a fleet of idle-profile machines
// schedules nothing — simulating an hour costs zero events — yet still
// reports the fleet's idle power.
func TestClusterIdleFleetHasNoEvents(t *testing.T) {
	s := gridSpec(2, 2, 5, 1)
	s.Grid.Profiles = []Weighted{{Name: "idle", Weight: 1}}
	topo, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	cs := NewSimulator(topo)
	if cs.HasPendingEvents() {
		t.Fatal("idle fleet has pending events")
	}
	cs.RunUntil(3600)
	if cs.Events() != 0 || cs.Clock() != 3600 {
		t.Fatalf("events=%d clock=%d, want 0 and 3600", cs.Events(), cs.Clock())
	}
	var idleSum float64
	for _, m := range topo.Machines {
		idleSum += m.Machine.IdleWatts()
	}
	if got := topo.Root.Watts(); math.Float64bits(got) != math.Float64bits(topo.Root.FullRecompute()) || math.Abs(got-idleSum) > 1e-9 {
		t.Fatalf("idle fleet watts %v, want %v", got, idleSum)
	}
}

// TestClusterSimulationDeterministic: same spec, same duration — same
// event count, same step count, same digest, same total watts bits.
func TestClusterSimulationDeterministic(t *testing.T) {
	run := func() (int64, int64, string, uint64) {
		topo, err := Build(gridSpec(2, 3, 5, 42))
		if err != nil {
			t.Fatal(err)
		}
		cs := NewSimulator(topo)
		cs.RunUntil(1200)
		return cs.Events(), cs.Steps(), cs.Digest(), math.Float64bits(topo.Root.Watts())
	}
	e1, s1, d1, w1 := run()
	e2, s2, d2, w2 := run()
	if e1 != e2 || s1 != s2 || d1 != d2 || w1 != w2 {
		t.Fatalf("runs diverged: events %d/%d steps %d/%d digest %s/%s watts %x/%x",
			e1, e2, s1, s2, d1, d2, w1, w2)
	}
	if e1 == 0 || s1 == 0 {
		t.Fatal("no work simulated")
	}
}

// TestClusterEventLoopPrimitives: PeekNextEventTime orders events, the
// clock never runs backwards, and events for one machine arrive in time
// order.
func TestClusterEventLoopPrimitives(t *testing.T) {
	topo, err := Build(gridSpec(2, 2, 3, 9))
	if err != nil {
		t.Fatal(err)
	}
	cs := NewSimulator(topo)
	last := int64(-1)
	for i := 0; i < 5000 && cs.HasPendingEvents(); i++ {
		at := cs.PeekNextEventTime()
		if at < last {
			t.Fatalf("event time went backwards: %d after %d", at, last)
		}
		last = at
		cs.ProcessNextEvent()
		if cs.Clock() != at && cs.Clock() < at {
			t.Fatalf("clock %d behind processed event %d", cs.Clock(), at)
		}
	}
	if cs.Events() == 0 {
		t.Fatal("no events processed")
	}
}

// TestClusterGridAssignmentStable: grid platform/profile assignment is a
// pure function of (seed, machine id) — independent of grid dimensions
// enumerating the same ids, and different under a different seed.
func TestClusterGridAssignmentStable(t *testing.T) {
	a, err := Build(gridSpec(2, 2, 4, 5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(gridSpec(2, 2, 4, 5))
	if err != nil {
		t.Fatal(err)
	}
	differs := false
	for i, m := range a.Machines {
		if m.ID != b.Machines[i].ID || m.Machine.Spec.Name != b.Machines[i].Machine.Spec.Name ||
			m.Profile.Kind != b.Machines[i].Profile.Kind {
			t.Fatalf("machine %d differs across identical builds", i)
		}
	}
	c, err := Build(gridSpec(2, 2, 4, 6))
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range a.Machines {
		if m.Machine.Spec.Name != c.Machines[i].Machine.Spec.Name || m.Profile.Kind != c.Machines[i].Profile.Kind {
			differs = true
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical assignments")
	}
}

// TestClusterTopologyValidation: the documented rejection rules.
func TestClusterTopologyValidation(t *testing.T) {
	mach := func(id string) MachineSpec { return MachineSpec{ID: id, Platform: "Atom"} }
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{
			name: "wrong version",
			spec: Spec{Version: "chaos-topology/v2", Name: "x", Grid: gridSpec(1, 1, 1, 0).Grid},
			want: "version",
		},
		{
			name: "missing name",
			spec: Spec{Version: SpecVersion, Grid: gridSpec(1, 1, 1, 0).Grid},
			want: "name",
		},
		{
			name: "both layouts",
			spec: Spec{Version: SpecVersion, Name: "x", Grid: gridSpec(1, 1, 1, 0).Grid,
				Tree: &Node{Name: "r", Machines: []MachineSpec{mach("a")}}},
			want: "exactly one",
		},
		{
			name: "neither layout",
			spec: Spec{Version: SpecVersion, Name: "x"},
			want: "exactly one",
		},
		{
			name: "duplicate machine ids",
			spec: Spec{Version: SpecVersion, Name: "x", Tree: &Node{Name: "dc", Children: []*Node{
				{Name: "rack-a", Machines: []MachineSpec{mach("m1"), mach("m2")}},
				{Name: "rack-b", Machines: []MachineSpec{mach("m1")}},
			}}},
			want: `duplicate machine id "m1"`,
		},
		{
			name: "empty rack",
			spec: Spec{Version: SpecVersion, Name: "x", Tree: &Node{Name: "dc", Children: []*Node{
				{Name: "rack-a", Machines: []MachineSpec{mach("m1")}},
				{Name: "rack-b"},
			}}},
			want: "empty",
		},
		{
			name: "machines deeper than four levels",
			spec: Spec{Version: SpecVersion, Name: "x", Tree: &Node{Name: "dc", Children: []*Node{
				{Name: "row", Children: []*Node{
					{Name: "rack", Children: []*Node{
						{Name: "shelf", Machines: []MachineSpec{mach("m1")}},
					}},
				}},
			}}},
			want: "deeper than 4",
		},
		{
			name: "unknown platform",
			spec: Spec{Version: SpecVersion, Name: "x", Tree: &Node{
				Name: "rack", Machines: []MachineSpec{{ID: "m1", Platform: "PDP11"}}}},
			want: "m1",
		},
		{
			name: "unknown profile",
			spec: Spec{Version: SpecVersion, Name: "x", Tree: &Node{
				Name: "rack", Machines: []MachineSpec{{ID: "m1", Platform: "Atom", Profile: "frantic"}}}},
			want: "m1",
		},
		{
			name: "grid with zero dimension",
			spec: func() Spec { s := gridSpec(0, 2, 2, 0); return *s }(),
			want: "≥ 1",
		},
		{
			name: "grid with unknown profile",
			spec: func() Spec {
				s := gridSpec(1, 1, 1, 0)
				s.Grid.Profiles = []Weighted{{Name: "frantic", Weight: 1}}
				return *s
			}(),
			want: "profiles mix",
		},
		{
			name: "grid with non-positive weight",
			spec: func() Spec {
				s := gridSpec(1, 1, 1, 0)
				s.Grid.Platforms = []Weighted{{Name: "Atom", Weight: 0}}
				return *s
			}(),
			want: "weight",
		},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if err == nil {
			t.Errorf("%s: accepted, want error containing %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// A maximal-depth valid tree must pass: dc → row → rack → machines.
	valid := Spec{Version: SpecVersion, Name: "x", Tree: &Node{Name: "dc", Children: []*Node{
		{Name: "row", Children: []*Node{
			{Name: "rack", Machines: []MachineSpec{mach("m1"), {ID: "m2", Platform: "Core2", Profile: "steady"}}},
		}},
	}}}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid 4-level tree rejected: %v", err)
	}
	if got := valid.MachineCount(); got != 2 {
		t.Fatalf("MachineCount = %d, want 2", got)
	}
}

// TestClusterParseSpecStrict: unknown fields and trailing garbage are
// rejected rather than silently dropped.
func TestClusterParseSpecStrict(t *testing.T) {
	good := fmt.Sprintf(`{"version":%q,"name":"dc","seed":1,"tree":{"name":"rack","machines":[{"id":"m1","platform":"Atom"}]}}`, SpecVersion)
	s, err := ParseSpec([]byte(good))
	if err != nil {
		t.Fatalf("valid doc rejected: %v", err)
	}
	if s.MachineCount() != 1 {
		t.Fatal("wrong machine count")
	}
	for _, bad := range []string{
		`{"version":"chaos-topology/v1","name":"dc","grid":{"rows":1,"racksPerRow":1}}`, // unknown field casing
		good + `{"more":true}`, // trailing document
		`{`,                    // truncated
	} {
		if _, err := ParseSpec([]byte(bad)); err == nil {
			t.Errorf("accepted bad doc: %s", bad)
		}
	}
}

// FuzzClusterTopology: the decoder never panics, and any accepted
// document validates and survives a canonical marshal → parse → marshal
// round-trip byte-for-byte.
func FuzzClusterTopology(f *testing.F) {
	f.Add([]byte(fmt.Sprintf(`{"version":%q,"name":"dc","seed":7,"tree":{"name":"rack","machines":[{"id":"m1","platform":"Atom","profile":"bursty"}]}}`, SpecVersion)))
	seed, _ := json.Marshal(gridSpec(2, 2, 2, 3))
	f.Add(seed)
	f.Add([]byte(`{"version":"chaos-topology/v1","name":"dc","tree":{"name":"r","machines":[{"id":"a","platform":"Atom"},{"id":"a","platform":"Atom"}]}}`))
	f.Add([]byte(`{"version":"chaos-topology/v1","name":"dc","tree":{"name":"r","children":[{"name":"c"}]}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("ParseSpec accepted a document Validate rejects: %v", err)
		}
		canon, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted document does not marshal: %v", err)
		}
		s2, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\n%s", err, canon)
		}
		canon2, err := json.Marshal(s2)
		if err != nil {
			t.Fatal(err)
		}
		if string(canon) != string(canon2) {
			t.Fatalf("round-trip not stable:\n%s\n%s", canon, canon2)
		}
	})
}

// TestClusterCaptureAndSampling: captured machines expose counter
// signals; sampling an idle machine simulates one idle second out of
// band and keeps the hierarchy bit-consistent.
func TestClusterCaptureAndSampling(t *testing.T) {
	topo, err := Build(gridSpec(1, 2, 3, 11))
	if err != nil {
		t.Fatal(err)
	}
	cs := NewSimulator(topo)
	if err := cs.SetCapture(0); err != nil {
		t.Fatal(err)
	}
	cs.RunUntil(600)
	sig, watts, err := cs.SampleSignals(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig) == 0 {
		t.Fatal("no signals captured")
	}
	if _, ok := sig["cpu_util"]; !ok {
		t.Fatalf("signals missing cpu_util: have %d keys", len(sig))
	}
	if math.IsNaN(watts) || watts <= 0 {
		t.Fatalf("sampled watts = %v", watts)
	}
	// Sampling a never-captured idle machine works too (out-of-band step).
	sig2, _, err := cs.SampleSignals(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig2) == 0 {
		t.Fatal("idle sample produced no signals")
	}
	if got, want := topo.Root.Watts(), topo.Root.FullRecompute(); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("hierarchy inconsistent after out-of-band sampling: %v vs %v", got, want)
	}
}

// TestClusterTwentyThousandMachinesOneHour is the scale acceptance run:
// a 20k-machine grid simulates a full simulated hour with the
// incremental aggregate read (and spot-verified) along the way. Skipped
// in -short mode; the committed cluster benchmark covers it too.
func TestClusterTwentyThousandMachinesOneHour(t *testing.T) {
	if testing.Short() {
		t.Skip("20k-machine hour in -short mode")
	}
	topo, err := Build(gridSpec(10, 50, 40, 20260808))
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Machines) != 20000 {
		t.Fatalf("machines = %d", len(topo.Machines))
	}
	cs := NewSimulator(topo)
	for tick := int64(600); tick <= 3600; tick += 600 {
		cs.RunUntil(tick)
		inc := topo.Root.Watts()
		full := topo.Root.FullRecompute()
		if math.Float64bits(inc) != math.Float64bits(full) {
			t.Fatalf("t=%d: incremental %v != full %v", tick, inc, full)
		}
		if inc <= 0 || math.IsNaN(inc) {
			t.Fatalf("t=%d: datacenter watts %v", tick, inc)
		}
	}
	if cs.Clock() != 3600 || cs.Events() == 0 {
		t.Fatalf("clock=%d events=%d", cs.Clock(), cs.Events())
	}
	// The event loop must beat lockstep: machine-seconds simulated must be
	// well under machines × seconds (the fleet is mostly idle).
	lockstep := int64(len(topo.Machines)) * 3600
	if cs.Steps() >= lockstep/2 {
		t.Fatalf("steps = %d of %d lockstep: fleet not sparse enough for event-driven payoff", cs.Steps(), lockstep)
	}
	t.Logf("20k-machine hour: %d events, %d steps (%.1f%% of lockstep), %d active at end",
		cs.Events(), cs.Steps(), 100*float64(cs.Steps())/float64(lockstep), cs.ActiveMachines())
}
