// Package faults is a deterministic fault-injection harness for the
// streaming path. The paper's own deployment setting — 1 Hz Perfmon
// collectors, occasionally-available WattsUp meters, five-machine clusters
// whose members reboot — is full of partial failures, and the cluster
// model (Eq. 5) sums per-machine predictions, so a single flaky collector
// must not take down the cluster-wide estimate. This package makes every
// such failure mode reproducible: a Scenario describes what goes wrong
// and when, an Injector replays it from a seed, and a Collector wraps the
// per-machine sampling path with bounded retry, a per-sample timeout, and
// a circuit breaker, so degraded-mode estimation can be tested second by
// second.
package faults

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// MachineFaults are the per-second stochastic fault rates applied to one
// machine's sample collection. A machine listed in Scenario.Machines uses
// its entry verbatim; it does not merge with Scenario.Defaults.
type MachineFaults struct {
	// DropProb is the probability that one collection attempt returns
	// nothing (flaky collector RPC, lost Perfmon poll).
	DropProb float64 `json:"drop_prob,omitempty"`
	// CorruptProb is the per-sample probability that one to three
	// counters in a successfully collected row are replaced with NaN/±Inf.
	CorruptProb float64 `json:"corrupt_prob,omitempty"`
	// StuckProb is the per-sample probability that the counter source
	// wedges: the row freezes at its current values for StuckSeconds.
	StuckProb float64 `json:"stuck_prob,omitempty"`
	// StuckSeconds is how long a wedged counter source stays frozen.
	// Required (> 0) when StuckProb > 0.
	StuckSeconds int `json:"stuck_seconds,omitempty"`
	// LatencyProb is the per-attempt probability of a latency spike of
	// LatencyMS milliseconds (slow WMI query, scheduler stall). Spikes
	// count against the collector's per-sample timeout budget.
	LatencyProb float64 `json:"latency_prob,omitempty"`
	// LatencyMS is the size of one latency spike in milliseconds.
	LatencyMS float64 `json:"latency_ms,omitempty"`
}

// Window is a half-open interval of simulation seconds [StartS, EndS).
type Window struct {
	StartS int `json:"start_s"`
	EndS   int `json:"end_s"`
}

// contains reports whether second t falls inside the window.
func (w Window) contains(t int) bool { return t >= w.StartS && t < w.EndS }

// Crash takes one machine offline: every collection attempt in
// [AtS, AtS+DowntimeS) fails, modeling a reboot or network partition.
type Crash struct {
	Machine   string `json:"machine"`
	AtS       int    `json:"at_s"`
	DowntimeS int    `json:"downtime_s"`
}

// window returns the crash's downtime as a Window.
func (c Crash) window() Window { return Window{StartS: c.AtS, EndS: c.AtS + c.DowntimeS} }

// PeerFaults are node-level faults applied to one serving peer in a
// distributed deployment: whole-process outages and network-level
// degradation, as seen from the node doing the scatter-gather.
type PeerFaults struct {
	// Crashes are windows when the peer process is down entirely (killed,
	// rebooting): every call to it fails fast.
	Crashes []Window `json:"crashes,omitempty"`
	// Partitions are windows when the peer is up but unreachable from
	// this node (network partition): calls hang until deadline.
	Partitions []Window `json:"partitions,omitempty"`
	// SlowProb is the per-call probability of an injected latency of
	// SlowMS milliseconds (overloaded peer, congested link).
	SlowProb float64 `json:"slow_prob,omitempty"`
	// SlowMS is the size of one injected peer latency in milliseconds.
	// Required (> 0) when SlowProb > 0.
	SlowMS float64 `json:"slow_ms,omitempty"`
}

// LoadSurge is one offered-load window: inside [start_s, end_s) the load
// generator multiplies its configured arrival rate by Multiplier, making
// overload storms seedable and deterministic. Multipliers below 1 model
// traffic dips the same way.
type LoadSurge struct {
	StartS int `json:"start_s"`
	EndS   int `json:"end_s"`
	// Multiplier scales the arrival rate inside the window. Must be
	// positive and finite.
	Multiplier float64 `json:"multiplier"`
}

// window returns the surge interval as a Window.
func (l LoadSurge) window() Window { return Window{StartS: l.StartS, EndS: l.EndS} }

// Scenario is a reproducible fault-injection plan for one streaming run.
// Scenarios are plain JSON (see examples/faults-crashy.json); unknown
// fields are rejected so schema typos fail loudly.
type Scenario struct {
	// Name identifies the scenario in logs and events.
	Name string `json:"name,omitempty"`
	// Defaults apply to every machine without an explicit Machines entry.
	Defaults MachineFaults `json:"defaults,omitempty"`
	// Machines overrides Defaults wholesale for the named machine IDs.
	Machines map[string]MachineFaults `json:"machines,omitempty"`
	// MeterDropouts are windows when the power meter is unavailable
	// (the paper's WattsUp meters were only occasionally attached);
	// residual monitoring and retraining must pause inside them.
	MeterDropouts []Window `json:"meter_dropouts,omitempty"`
	// Crashes are machine outages. Windows for the same machine must not
	// overlap.
	Crashes []Crash `json:"crashes,omitempty"`
	// Peers are node-level faults keyed by peer ID, injected into the
	// scatter-gather path of a distributed deployment.
	Peers map[string]PeerFaults `json:"peers,omitempty"`
	// Load are offered-load surge windows applied by the load generator.
	// Windows must not overlap.
	Load []LoadSurge `json:"load,omitempty"`
}

// validateFaults checks one machine's fault rates.
func validateFaults(who string, mf MachineFaults) error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"drop_prob", mf.DropProb},
		{"corrupt_prob", mf.CorruptProb},
		{"stuck_prob", mf.StuckProb},
		{"latency_prob", mf.LatencyProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: %s: %s %g outside [0, 1]", who, p.name, p.v)
		}
	}
	if mf.StuckSeconds < 0 {
		return fmt.Errorf("faults: %s: negative stuck_seconds %d", who, mf.StuckSeconds)
	}
	if mf.StuckProb > 0 && mf.StuckSeconds == 0 {
		return fmt.Errorf("faults: %s: stuck_prob %g needs stuck_seconds > 0", who, mf.StuckProb)
	}
	if mf.LatencyMS < 0 {
		return fmt.Errorf("faults: %s: negative latency_ms %g", who, mf.LatencyMS)
	}
	if mf.LatencyProb > 0 && mf.LatencyMS == 0 {
		return fmt.Errorf("faults: %s: latency_prob %g needs latency_ms > 0", who, mf.LatencyProb)
	}
	return nil
}

// checkWindows rejects malformed or overlapping windows (sorted copy, so
// the scenario order does not matter).
func checkWindows(what string, ws []Window) error {
	sorted := append([]Window(nil), ws...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].StartS < sorted[j].StartS })
	for i, w := range sorted {
		if w.StartS < 0 {
			return fmt.Errorf("faults: %s window starts at negative second %d", what, w.StartS)
		}
		if w.EndS <= w.StartS {
			return fmt.Errorf("faults: %s window [%d, %d) is empty or inverted", what, w.StartS, w.EndS)
		}
		if i > 0 && sorted[i-1].EndS > w.StartS {
			return fmt.Errorf("faults: %s windows [%d, %d) and [%d, %d) overlap",
				what, sorted[i-1].StartS, sorted[i-1].EndS, w.StartS, w.EndS)
		}
	}
	return nil
}

// Validate checks the scenario for impossible probabilities, malformed
// windows, and overlapping outages.
func (s *Scenario) Validate() error {
	if err := validateFaults("defaults", s.Defaults); err != nil {
		return err
	}
	for id, mf := range s.Machines {
		if id == "" {
			return fmt.Errorf("faults: machines entry with empty machine ID")
		}
		if err := validateFaults("machine "+id, mf); err != nil {
			return err
		}
	}
	if err := checkWindows("meter_dropouts", s.MeterDropouts); err != nil {
		return err
	}
	byMachine := map[string][]Window{}
	for _, c := range s.Crashes {
		if c.Machine == "" {
			return fmt.Errorf("faults: crash with empty machine ID")
		}
		if c.AtS < 0 {
			return fmt.Errorf("faults: crash of %s at negative second %d", c.Machine, c.AtS)
		}
		if c.DowntimeS <= 0 {
			return fmt.Errorf("faults: crash of %s has non-positive downtime %d", c.Machine, c.DowntimeS)
		}
		byMachine[c.Machine] = append(byMachine[c.Machine], c.window())
	}
	for id, ws := range byMachine {
		if err := checkWindows("crashes("+id+")", ws); err != nil {
			return err
		}
	}
	for id, pf := range s.Peers {
		if id == "" {
			return fmt.Errorf("faults: peers entry with empty peer ID")
		}
		if pf.SlowProb < 0 || pf.SlowProb > 1 {
			return fmt.Errorf("faults: peer %s: slow_prob %g outside [0, 1]", id, pf.SlowProb)
		}
		if pf.SlowMS < 0 {
			return fmt.Errorf("faults: peer %s: negative slow_ms %g", id, pf.SlowMS)
		}
		if pf.SlowProb > 0 && pf.SlowMS == 0 {
			return fmt.Errorf("faults: peer %s: slow_prob %g needs slow_ms > 0", id, pf.SlowProb)
		}
		if err := checkWindows("peer("+id+") crashes", pf.Crashes); err != nil {
			return err
		}
		if err := checkWindows("peer("+id+") partitions", pf.Partitions); err != nil {
			return err
		}
	}
	loadWindows := make([]Window, 0, len(s.Load))
	for _, l := range s.Load {
		// NaN fails every comparison, so check the valid range directly.
		if !(l.Multiplier > 0) || l.Multiplier > 1e6 {
			return fmt.Errorf("faults: load window [%d, %d): multiplier %g outside (0, 1e6]",
				l.StartS, l.EndS, l.Multiplier)
		}
		loadWindows = append(loadWindows, l.window())
	}
	if err := checkWindows("load", loadWindows); err != nil {
		return err
	}
	return nil
}

// ParseScenario decodes and validates a scenario from JSON. Unknown
// fields are errors.
func ParseScenario(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("faults: parse scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadScenario reads and validates a scenario file.
func LoadScenario(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	defer f.Close()
	s, err := ParseScenario(f)
	if err != nil {
		return nil, fmt.Errorf("faults: scenario %s: %w", path, err)
	}
	return s, nil
}
